// Deterministic chaos harness (ctest label: chaos; *Fast* tests also run
// in the fast suite). Kill points simulate a process death at exact
// instants inside the checkpoint write and the tell path; the tests then
// recover the service from disk the way a restarted pwu_serve would and
// assert the resumed session replays the remaining schedule bit-identically
// against an uninterrupted control run.

#include "util/fs_atomic.hpp"
#include "util/killpoints.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "service/session_manager.hpp"
#include "util/rng.hpp"
#include "workloads/registry.hpp"

namespace pwu::util {
namespace {

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "pwu_chaos_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    disarm_killpoints();
    std::filesystem::remove_all(dir_);
  }
  std::string path(const std::string& file) const { return dir_ + "/" + file; }

  std::string dir_;
};

TEST_F(ChaosTest, Crc32AndFooterMatchTheKnownVectorFast) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
  const std::string footer = crc_footer("123456789");
  EXPECT_EQ(footer, "pwu-crc32 cbf43926 9\n");
}

TEST_F(ChaosTest, AtomicWriteRoundTripsAndRotatesTheBackupFast) {
  const std::string file = path("state.txt");
  atomic_write_file(file, "version one\n");
  VerifiedRead read = read_verified_file(file);
  ASSERT_EQ(read.status, ReadStatus::Ok);
  EXPECT_EQ(read.payload, "version one\n");

  atomic_write_file(file, "version two\n");
  read = read_verified_file(file);
  ASSERT_EQ(read.status, ReadStatus::Ok);
  EXPECT_EQ(read.payload, "version two\n");
  // The previous good copy rotated to the backup.
  const VerifiedRead backup = read_verified_file(backup_path(file));
  ASSERT_EQ(backup.status, ReadStatus::Ok);
  EXPECT_EQ(backup.payload, "version one\n");
}

TEST_F(ChaosTest, TornAndFooterlessFilesReadCorruptMissingReadsMissingFast) {
  EXPECT_EQ(read_verified_file(path("absent")).status, ReadStatus::Missing);

  const std::string file = path("state.txt");
  atomic_write_file(file, "a payload that will be torn in half\n");
  const auto size = std::filesystem::file_size(file);
  std::filesystem::resize_file(file, size / 2);
  EXPECT_EQ(read_verified_file(file).status, ReadStatus::Corrupt);

  std::ofstream(path("no_footer")) << "just some text\n";
  EXPECT_EQ(read_verified_file(path("no_footer")).status,
            ReadStatus::Corrupt);
}

TEST_F(ChaosTest, FallbackReadPrefersNewestThenBackupFast) {
  const std::string file = path("state.txt");
  atomic_write_file(file, "v1\n");
  atomic_write_file(file, "v2\n");

  RecoveredRead read = read_checkpoint_with_fallback(file);
  ASSERT_EQ(read.status, ReadStatus::Ok);
  EXPECT_EQ(read.payload, "v2\n");
  EXPECT_FALSE(read.used_fallback);
  EXPECT_EQ(read.source_path, file);

  // Corrupt the newest copy: the backup supplies the payload.
  std::filesystem::resize_file(file, 3);
  read = read_checkpoint_with_fallback(file);
  ASSERT_EQ(read.status, ReadStatus::Ok);
  EXPECT_EQ(read.payload, "v1\n");
  EXPECT_TRUE(read.used_fallback);
  EXPECT_EQ(read.source_path, backup_path(file));

  // Both copies bad: Corrupt dominates Missing — a torn file existed.
  std::filesystem::resize_file(backup_path(file), 2);
  EXPECT_EQ(read_checkpoint_with_fallback(file).status, ReadStatus::Corrupt);
  EXPECT_EQ(read_checkpoint_with_fallback(path("never")).status,
            ReadStatus::Missing);
}

TEST_F(ChaosTest, KillpointsFireOnceAfterTheArmedCountFast) {
  killpoint("chaos.test.point");  // disarmed: a no-op
  EXPECT_EQ(killpoint_hits("chaos.test.point"), 0);

  arm_killpoint("chaos.test.point", 2);
  killpoint("chaos.test.point");
  killpoint("chaos.test.point");
  EXPECT_EQ(killpoint_hits("chaos.test.point"), 2);
  EXPECT_THROW(killpoint("chaos.test.point"), KillSignal);
  // One-shot: once fired, the point is spent.
  killpoint("chaos.test.point");

  try {
    arm_killpoint("chaos.test.point");
    killpoint("chaos.test.point");
    FAIL() << "armed kill point did not fire";
  } catch (const KillSignal& signal) {
    EXPECT_EQ(signal.point, "chaos.test.point");
  }
  disarm_killpoints();
  killpoint("chaos.test.point");
}

TEST_F(ChaosTest, KillMidWriteLeavesThePreviousFileIntact) {
  const std::string file = path("state.txt");
  atomic_write_file(file, "old good state\n");

  arm_killpoint("atomic_write.mid_write");
  EXPECT_THROW(atomic_write_file(file, "new state, never completed\n"),
               KillSignal);
  disarm_killpoints();

  // The tmp file was torn, the final path never touched.
  const RecoveredRead read = read_checkpoint_with_fallback(file);
  ASSERT_EQ(read.status, ReadStatus::Ok);
  EXPECT_EQ(read.payload, "old good state\n");
  EXPECT_FALSE(read.used_fallback);
}

TEST_F(ChaosTest, KillAfterBackupRotationRecoversFromTheBackup) {
  const std::string file = path("state.txt");
  atomic_write_file(file, "old good state\n");

  // Die after the previous good file rotated to .bak but before the new
  // file renamed into place: the final path is momentarily absent.
  arm_killpoint("atomic_write.after_backup");
  EXPECT_THROW(atomic_write_file(file, "new state\n"), KillSignal);
  disarm_killpoints();

  EXPECT_FALSE(std::filesystem::exists(file));
  const RecoveredRead read = read_checkpoint_with_fallback(file);
  ASSERT_EQ(read.status, ReadStatus::Ok);
  EXPECT_EQ(read.payload, "old good state\n");
  EXPECT_TRUE(read.used_fallback);
  EXPECT_EQ(read.source_path, backup_path(file));
}

// ---------------------------------------------------------------------------
// Full-service chaos: a client drives a session with auto-checkpointing
// while scheduled kills tear the process down at exact instants. After each
// kill the client recovers exactly like a restarted service would — resume
// from the newest good checkpoint file, rewind its measurement stream to
// the recovered label count — and the finished run must be bit-identical
// to a run that never crashed.

service::SessionSpec chaos_spec() {
  service::SessionSpec spec;
  spec.workload = "gesummv";
  spec.learner.n_init = 6;
  spec.learner.n_batch = 3;
  spec.learner.n_max = 15;
  spec.learner.forest.num_trees = 6;
  spec.pool_size = 120;
  spec.seed = 13;
  return spec;
}

std::string rng_state(const util::Rng& rng) {
  std::ostringstream os;
  rng.save(os);
  return os.str();
}

void rng_rewind(util::Rng& rng, const std::string& state) {
  std::istringstream is(state);
  rng.load(is);
}

struct DriveResult {
  int crashes = 0;
  bool used_fallback = false;
  service::SessionStatus status;
  /// Full serialized session state at the end of the run.
  std::string final_image;
};

/// Drives one session to completion, killing and recovering the manager at
/// each scheduled (kill point, after_hits) instant. An empty schedule is
/// the uninterrupted control run over the identical code path.
DriveResult drive_with_crashes(
    const std::string& dir,
    std::vector<std::pair<std::string, int>> kill_schedule) {
  const service::SessionSpec spec = chaos_spec();
  const std::string ckpt = dir + "/s.ckpt";

  auto manager = std::make_unique<service::SessionManager>();
  manager->enable_auto_checkpoint(dir, 1);
  const service::SessionStatus created = manager->create("s", spec);
  // Baseline checkpoint so even a death on the very first tell recovers.
  manager->checkpoint_to_file("s", ckpt);

  const auto workload = workloads::make_workload(spec.workload);
  util::Rng measure_rng(created.measure_seed);
  // Measurement-stream snapshot per label count — what a persistent client
  // keeps next to its own state to make recovery deterministic.
  std::map<std::size_t, std::string> rng_at;
  std::size_t labeled = 0;
  rng_at[labeled] = rng_state(measure_rng);

  auto next_kill = kill_schedule.begin();
  if (next_kill != kill_schedule.end()) {
    arm_killpoint(next_kill->first, next_kill->second);
  }

  DriveResult result;
  std::vector<service::Candidate> batch;
  std::size_t next = 0;
  std::size_t batch_start = 0;  // label count when `batch` was asked
  for (;;) {
    if (next >= batch.size()) {
      batch = manager->ask("s");
      next = 0;
      batch_start = labeled;
      if (batch.empty()) break;
    }
    const service::Candidate& c = batch[next];
    const double label = workload->measure(c.config, measure_rng, 1);
    try {
      const service::TellOutcome outcome = manager->tell("s", c.config, label);
      ++next;
      labeled = outcome.labeled;
      rng_at[labeled] = rng_state(measure_rng);
    } catch (const KillSignal&) {
      // -- the process died here --
      ++result.crashes;
      disarm_killpoints();
      manager.reset();  // whatever was in memory is gone

      manager = std::make_unique<service::SessionManager>();
      manager->enable_auto_checkpoint(dir, 1);
      const service::ResumeOutcome recovered =
          manager->resume_from_file("s", ckpt);
      result.used_fallback |= recovered.used_fallback;
      labeled = recovered.status.labeled;
      rng_rewind(measure_rng, rng_at.at(labeled));
      if (recovered.status.pending == 0) {
        // Recovered to a batch boundary: re-ask (the restored RNG state
        // makes the next ask reproduce the same batch).
        batch.clear();
        next = 0;
      } else {
        // Recovered mid-batch: replay the lost suffix of this batch.
        EXPECT_GE(labeled, batch_start);
        next = labeled - batch_start;
      }
      if (++next_kill != kill_schedule.end()) {
        arm_killpoint(next_kill->first, next_kill->second);
      }
    }
  }

  result.status = manager->status("s");
  std::ostringstream image;
  manager->checkpoint("s", image);
  result.final_image = image.str();
  return result;
}

void expect_bit_identical(const DriveResult& chaos,
                          const DriveResult& control) {
  EXPECT_EQ(chaos.status.labeled, control.status.labeled);
  EXPECT_EQ(chaos.status.iteration, control.status.iteration);
  EXPECT_EQ(chaos.status.pool_remaining, control.status.pool_remaining);
  // Bit-identical, not approximately equal.
  EXPECT_EQ(chaos.status.cumulative_cost, control.status.cumulative_cost);
  EXPECT_EQ(chaos.status.best_observed, control.status.best_observed);
  EXPECT_TRUE(chaos.status.done);
  // The strongest form: the complete serialized session state matches.
  EXPECT_EQ(chaos.final_image, control.final_image);
}

TEST_F(ChaosTest, SessionKilledMidCheckpointWriteResumesBitIdentically) {
  const std::string control_dir = path("control");
  const std::string chaos_dir = path("chaos");
  std::filesystem::create_directories(control_dir);
  std::filesystem::create_directories(chaos_dir);

  const DriveResult control = drive_with_crashes(control_dir, {});
  ASSERT_EQ(control.crashes, 0);
  ASSERT_EQ(control.status.labeled, chaos_spec().learner.n_max);

  // Die inside the 4th and (after recovery) 7th checkpoint write — torn
  // tmp files mid cold start and mid strategy batch.
  const DriveResult chaos = drive_with_crashes(
      chaos_dir,
      {{"atomic_write.mid_write", 3}, {"atomic_write.mid_write", 6}});
  EXPECT_EQ(chaos.crashes, 2);
  expect_bit_identical(chaos, control);
}

TEST_F(ChaosTest, SessionKilledMidBatchResumesBitIdentically) {
  const std::string control_dir = path("control");
  const std::string chaos_dir = path("chaos");
  std::filesystem::create_directories(control_dir);
  std::filesystem::create_directories(chaos_dir);

  const DriveResult control = drive_with_crashes(control_dir, {});

  // Die after the tell mutated the in-memory session but before its
  // checkpoint was written: first at the 8th tell (mid-way through the
  // first strategy batch), then at the 7th tell after recovery (mid-way
  // through the final batch). The label each dying tell applied is lost
  // with the process and must be re-measured on replay.
  const DriveResult chaos = drive_with_crashes(
      chaos_dir, {{"session_manager.tell.applied", 7},
                  {"session_manager.tell.applied", 6}});
  EXPECT_EQ(chaos.crashes, 2);
  expect_bit_identical(chaos, control);
}

TEST_F(ChaosTest, CorruptNewestCheckpointFallsBackToThePreviousGood) {
  service::SessionManager manager;
  manager.enable_auto_checkpoint(dir_, 1);
  const service::SessionStatus created = manager.create("s", chaos_spec());
  const auto workload = workloads::make_workload("gesummv");
  util::Rng measure_rng(created.measure_seed);

  const auto batch = manager.ask("s");
  ASSERT_GE(batch.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    manager.tell("s", batch[i].config,
                 workload->measure(batch[i].config, measure_rng, 1));
  }

  // Tear the newest checkpoint (labeled=3); its .bak holds labeled=2.
  const std::string ckpt = path("s.ckpt");
  std::filesystem::resize_file(ckpt, std::filesystem::file_size(ckpt) / 2);

  service::SessionManager restarted;
  const service::ResumeOutcome recovered =
      restarted.resume_from_file("s", ckpt);
  EXPECT_TRUE(recovered.used_fallback);
  EXPECT_EQ(recovered.source_path, backup_path(ckpt));
  EXPECT_EQ(recovered.status.labeled, 2u);

  // With the backup torn as well, recovery correctly refuses.
  std::filesystem::resize_file(backup_path(ckpt),
                               std::filesystem::file_size(backup_path(ckpt)) /
                                   2);
  service::SessionManager no_luck;
  EXPECT_THROW(no_luck.resume_from_file("s2", ckpt), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Eviction chaos: the memory-budget enforcer constantly checkpoints idle
// sessions to disk and drops them; the next touch lazily resumes them. Two
// interleaved sessions under a budget that can hold only one must finish
// with exactly the serialized state of an unevicted control run — eviction
// is invisible apart from latency.

TEST_F(ChaosTest, EvictedSessionsResumeBitIdenticallyFast) {
  auto run = [&](std::size_t budget_bytes, const std::string& dir)
      -> std::vector<std::string> {
    service::ServiceLimits limits;
    limits.memory_budget_bytes = budget_bytes;
    service::SessionManager manager(nullptr, limits);
    manager.enable_auto_checkpoint(dir, 1);
    const auto workload = workloads::make_workload("gesummv");

    std::vector<std::string> names = {"ea", "eb"};
    std::map<std::string, util::Rng> measure;
    for (std::size_t i = 0; i < names.size(); ++i) {
      service::SessionSpec spec = chaos_spec();
      spec.seed = 77 + i;
      const service::SessionStatus st = manager.create(names[i], spec);
      measure.emplace(names[i], util::Rng(st.measure_seed));
    }
    // Interleave one batch at a time: every ask on one session makes the
    // other one the LRU eviction victim under the tight budget.
    for (bool progress = true; progress;) {
      progress = false;
      for (const std::string& name : names) {
        const auto batch = manager.ask(name);
        if (batch.empty()) continue;
        progress = true;
        for (const service::Candidate& c : batch) {
          manager.tell(name, c.config,
                       workload->measure(c.config, measure.at(name), 1));
        }
      }
    }
    std::vector<std::string> images;
    for (const std::string& name : names) {
      EXPECT_TRUE(manager.status(name).done);
      std::ostringstream image;
      manager.checkpoint(name, image);
      images.push_back(image.str());
    }
    if (budget_bytes != 0) {
      const service::HealthReport health = manager.health();
      EXPECT_GT(health.evictions, 0u);
      EXPECT_GT(health.lazy_resumes, 0u);
    }
    return images;
  };

  const std::string evicted_dir = path("evicted");
  const std::string control_dir = path("control");
  std::filesystem::create_directories(evicted_dir);
  std::filesystem::create_directories(control_dir);
  // 1 byte: every idle session is over budget, so eviction churns on every
  // touch. 0: unlimited, the control never evicts.
  const std::vector<std::string> churned = run(1, evicted_dir);
  const std::vector<std::string> control = run(0, control_dir);
  ASSERT_EQ(churned.size(), control.size());
  for (std::size_t i = 0; i < control.size(); ++i) {
    EXPECT_EQ(churned[i], control[i]) << "session " << i;
  }
}

TEST_F(ChaosTest, KillWhileEvictionChurnsRecoversBitIdentically) {
  // Eviction and crash-recovery share the checkpoint files. A process
  // death in the middle of an eviction-churning run must recover from the
  // same files eviction wrote — and still finish bit-identical to the
  // undisturbed control.
  const service::SessionSpec spec = chaos_spec();
  const auto workload = workloads::make_workload(spec.workload);

  auto run = [&](const std::string& dir, bool crash) -> std::string {
    service::ServiceLimits limits;
    limits.memory_budget_bytes = 1;
    auto manager = std::make_unique<service::SessionManager>(nullptr, limits);
    manager->enable_auto_checkpoint(dir, 1);
    const service::SessionStatus created = manager->create("s", spec);
    manager->checkpoint_to_file("s", dir + "/s.ckpt");

    util::Rng measure_rng(created.measure_seed);
    std::map<std::size_t, std::string> rng_at;
    std::size_t labeled = 0;
    rng_at[labeled] = rng_state(measure_rng);
    if (crash) arm_killpoint("session_manager.tell.applied", 8);

    std::vector<service::Candidate> batch;
    std::size_t next = 0;
    std::size_t batch_start = 0;  // label count when `batch` was asked
    for (;;) {
      if (next >= batch.size()) {
        batch = manager->ask("s");
        next = 0;
        batch_start = labeled;
        if (batch.empty()) break;
      }
      const double label =
          workload->measure(batch[next].config, measure_rng, 1);
      try {
        labeled = manager->tell("s", batch[next].config, label).labeled;
        ++next;
        rng_at[labeled] = rng_state(measure_rng);
      } catch (const KillSignal&) {
        disarm_killpoints();
        manager.reset();
        manager = std::make_unique<service::SessionManager>(nullptr, limits);
        manager->enable_auto_checkpoint(dir, 1);
        const service::ResumeOutcome recovered =
            manager->resume_from_file("s", dir + "/s.ckpt");
        labeled = recovered.status.labeled;
        rng_rewind(measure_rng, rng_at.at(labeled));
        if (recovered.status.pending == 0) {
          batch.clear();
          next = 0;
        } else {
          // Recovered mid-batch: replay the lost suffix of this batch.
          EXPECT_GE(labeled, batch_start);
          next = labeled - batch_start;
        }
      }
    }
    EXPECT_TRUE(manager->status("s").done);
    std::ostringstream image;
    manager->checkpoint("s", image);
    return image.str();
  };

  const std::string crash_dir = path("crash");
  const std::string control_dir = path("control");
  std::filesystem::create_directories(crash_dir);
  std::filesystem::create_directories(control_dir);
  EXPECT_EQ(run(crash_dir, true), run(control_dir, false));
}

}  // namespace
}  // namespace pwu::util
