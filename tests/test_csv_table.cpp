#include "util/csv.hpp"
#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace pwu::util {
namespace {

class CsvWriterTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "pwu_csv_test.csv";

  void TearDown() override { std::remove(path_.c_str()); }

  std::string read_back() {
    std::ifstream in(path_);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
};

TEST_F(CsvWriterTest, WritesPlainRows) {
  {
    CsvWriter csv(path_);
    csv.write_header({"a", "b"});
    csv.write_row({"1", "2"});
  }
  EXPECT_EQ(read_back(), "a,b\n1,2\n");
}

TEST_F(CsvWriterTest, EscapesSpecialCharacters) {
  {
    CsvWriter csv(path_);
    csv.write_row({"plain", "has,comma", "has\"quote", "has\nnewline"});
  }
  EXPECT_EQ(read_back(),
            "plain,\"has,comma\",\"has\"\"quote\",\"has\nnewline\"\n");
}

TEST_F(CsvWriterTest, NumericFieldsRoundTrip) {
  EXPECT_EQ(CsvWriter::field(std::size_t{42}), "42");
  const std::string f = CsvWriter::field(0.125);
  EXPECT_EQ(std::stod(f), 0.125);
}

TEST_F(CsvWriterTest, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/file.csv"), std::runtime_error);
}

TEST(TextTable, AlignsColumns) {
  TextTable table;
  table.set_header({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "22"});
  const std::string out = table.to_string();
  // Header, separator rule, two data rows.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Each line should have consistent column starts: "value" begins after
  // the widest first column ("longer" = 6 chars + 2 gap).
  std::istringstream lines(out);
  std::string header;
  std::getline(lines, header);
  EXPECT_EQ(header.find("value"), 8u);
}

TEST(TextTable, HandlesRaggedRows) {
  TextTable table;
  table.add_row({"a"});
  table.add_row({"b", "c", "d"});
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_NE(table.to_string().find("d"), std::string::npos);
}

TEST(TextTable, CellFormatting) {
  EXPECT_EQ(TextTable::cell(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::cell(2.0, 0), "2");
  const std::string sci = TextTable::cell_sci(12345.0, 2);
  EXPECT_NE(sci.find('e'), std::string::npos);
}

TEST(TextTable, NoHeaderMeansNoRule) {
  TextTable table;
  table.add_row({"just", "data"});
  EXPECT_EQ(table.to_string().find("---"), std::string::npos);
}

}  // namespace
}  // namespace pwu::util
