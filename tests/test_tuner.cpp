#include "core/tuner.hpp"

#include <gtest/gtest.h>

#include "core/active_learner.hpp"
#include "workloads/synthetic.hpp"

namespace pwu::core {
namespace {

class TunerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload_ = workloads::make_quadratic_bowl(4, 8, 0.1, /*noisy=*/true);
    util::Rng rng(1);
    candidates_ = space::sample_unique(workload_->space(), 250, rng);
    config_.n_init = 10;
    config_.iterations = 30;
    config_.forest.num_trees = 15;
  }

  workloads::WorkloadPtr workload_;
  std::vector<space::Configuration> candidates_;
  TunerConfig config_;
};

TEST_F(TunerTest, BestSoFarIsMonotoneNonIncreasing) {
  util::Rng rng(2);
  const TuningTrace trace =
      tune_direct(*workload_, candidates_, config_, rng);
  ASSERT_EQ(trace.best_true_time.size(),
            config_.n_init + config_.iterations);
  for (std::size_t i = 1; i < trace.best_true_time.size(); ++i) {
    EXPECT_LE(trace.best_true_time[i], trace.best_true_time[i - 1]);
  }
}

TEST_F(TunerTest, TunerImprovesOverColdStart) {
  util::Rng rng(3);
  const TuningTrace trace =
      tune_direct(*workload_, candidates_, config_, rng);
  const double after_cold = trace.best_true_time[config_.n_init - 1];
  const double final_best = trace.best_true_time.back();
  EXPECT_LE(final_best, after_cold);
}

TEST_F(TunerTest, BestConfigMatchesReportedBest) {
  util::Rng rng(4);
  const TuningTrace trace =
      tune_direct(*workload_, candidates_, config_, rng);
  EXPECT_DOUBLE_EQ(workload_->base_time(trace.best_config),
                   trace.best_true_time.back());
}

TEST_F(TunerTest, SurrogateTunerFindsGoodConfigWithoutTrueLabels) {
  // Train a surrogate via active learning first.
  util::Rng rng(5);
  const auto split = space::make_pool_split(workload_->space(), 300, 150, rng);
  const TestSet test = build_test_set(*workload_, split.test, rng);
  LearnerConfig lc;
  lc.n_init = 10;
  lc.n_max = 80;
  lc.forest.num_trees = 20;
  lc.eval_every = 100;
  ActiveLearner learner(*workload_, lc);
  const auto learned = learner.run(*make_pwu(0.05), split.pool, test, rng);

  util::Rng tune_rng(6);
  const TuningTrace surrogate_trace = tune_with_surrogate(
      *workload_, *learned.model, candidates_, config_, tune_rng);

  // The surrogate-annotated tuner must land within 2x of the candidate-set
  // optimum (paper Fig. 8: comparable to ground truth).
  double optimum = 1e300;
  for (const auto& c : candidates_) {
    optimum = std::min(optimum, workload_->base_time(c));
  }
  EXPECT_LT(surrogate_trace.best_true_time.back(), 2.0 * optimum);
}

TEST_F(TunerTest, RejectsBudgetLargerThanCandidates) {
  util::Rng rng(7);
  TunerConfig big = config_;
  big.iterations = 1000;
  EXPECT_THROW(tune_direct(*workload_, candidates_, big, rng),
               std::invalid_argument);
}

TEST_F(TunerTest, DeterministicGivenSeed) {
  util::Rng rng_a(8), rng_b(8);
  const TuningTrace a = tune_direct(*workload_, candidates_, config_, rng_a);
  const TuningTrace b = tune_direct(*workload_, candidates_, config_, rng_b);
  EXPECT_EQ(a.best_true_time, b.best_true_time);
  EXPECT_EQ(a.best_config, b.best_config);
}

}  // namespace
}  // namespace pwu::core
