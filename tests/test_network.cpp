#include "sim/network_model.hpp"

#include <gtest/gtest.h>

namespace pwu::sim {
namespace {

class NetworkModelTest : public ::testing::Test {
 protected:
  Platform platform_ = platform_b();
  NetworkModel net_{platform_};
};

TEST_F(NetworkModelTest, P2pAlphaBetaStructure) {
  const double tiny = net_.p2p_seconds(8.0);
  const double big = net_.p2p_seconds(8.0 * 1024.0 * 1024.0);
  EXPECT_GT(tiny, 0.0);
  EXPECT_GT(big, tiny);
  // Latency term: even a zero-byte message costs about the latency.
  EXPECT_NEAR(net_.p2p_seconds(0.0), platform_.network_latency_us * 1e-6,
              1e-9);
  // Bandwidth term: an 8 MiB message is dominated by bytes/bw.
  EXPECT_NEAR(big, 8.0 * 1024.0 * 1024.0 /
                        (platform_.network_bandwidth_gbs * 1e9),
              big * 0.2);
}

TEST_F(NetworkModelTest, NoNetworkFallsBackToSharedMemory) {
  const Platform a = platform_a();
  const NetworkModel local(a);
  const double t = local.p2p_seconds(1024.0);
  EXPECT_GT(t, 0.0);
  // Intra-node copies should be far cheaper than the OPA latency path for
  // small messages is on B... but both are sub-microsecond-ish; just check
  // finiteness and monotonicity.
  EXPECT_GT(local.p2p_seconds(1024.0 * 1024.0), t);
}

TEST_F(NetworkModelTest, AllreduceScalesLogarithmically) {
  const double p2 = net_.allreduce_seconds(1024.0, 2);
  const double p4 = net_.allreduce_seconds(1024.0, 4);
  const double p16 = net_.allreduce_seconds(1024.0, 16);
  EXPECT_GT(p4, p2);
  EXPECT_GT(p16, p4);
  // Single rank: free.
  EXPECT_DOUBLE_EQ(net_.allreduce_seconds(1024.0, 1), 0.0);
  // log scaling: 16 ranks ~ 4 rounds vs 2 ranks ~ 1 round, modulo
  // contention. Should be clearly sub-linear in p.
  EXPECT_LT(p16, 8.0 * p2);
}

TEST_F(NetworkModelTest, SweepPipelineCostsGrowWithGrid) {
  const double g1 = net_.sweep_pipeline_seconds(1024.0, 1, 1);
  const double g22 = net_.sweep_pipeline_seconds(1024.0, 2, 2);
  const double g44 = net_.sweep_pipeline_seconds(1024.0, 4, 4);
  EXPECT_DOUBLE_EQ(g1, 0.0);  // no pipeline on a single rank
  EXPECT_GT(g22, 0.0);
  EXPECT_GT(g44, g22);
}

TEST_F(NetworkModelTest, HaloExchangeIsSixFaces) {
  const double one_face = net_.p2p_seconds(4096.0);
  EXPECT_NEAR(net_.halo_exchange_seconds(4096.0), 6.0 * one_face, 1e-12);
}

TEST_F(NetworkModelTest, ContentionKicksInWhenOversubscribed) {
  const double at_cores =
      net_.contention_factor(static_cast<std::size_t>(platform_.cores));
  const double oversubscribed =
      net_.contention_factor(static_cast<std::size_t>(platform_.cores) * 4);
  EXPECT_GE(at_cores, 1.0);
  EXPECT_GT(oversubscribed, at_cores);
}

TEST_F(NetworkModelTest, ContentionMonotoneInProcs) {
  double prev = 0.0;
  for (std::size_t p : {1u, 2u, 8u, 32u, 128u, 512u}) {
    const double f = net_.contention_factor(p);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

}  // namespace
}  // namespace pwu::sim
