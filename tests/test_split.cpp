#include "rf/split.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace pwu::rf {
namespace {

std::vector<std::size_t> all_indices(const Dataset& d) {
  std::vector<std::size_t> idx(d.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  return idx;
}

double parent_score(const Dataset& d) {
  double sum = 0.0;
  for (std::size_t i = 0; i < d.size(); ++i) sum += d.y(i);
  return sum * sum / static_cast<double>(d.size());
}

TEST(Split, FindsPerfectNumericalThreshold) {
  // Labels are 0 below x=10, 100 above: the best split must cut between
  // 4 and 16 with maximal gain.
  Dataset d(1);
  for (double x : {1.0, 2.0, 3.0, 4.0}) d.add(std::vector<double>{x}, 0.0);
  for (double x : {16.0, 17.0, 18.0, 19.0}) {
    d.add(std::vector<double>{x}, 100.0);
  }
  SplitWorkspace ws;
  const Split s =
      best_split_on_feature(d, all_indices(d), 0, parent_score(d), 1, ws);
  ASSERT_TRUE(s.valid());
  EXPECT_FALSE(s.categorical);
  EXPECT_GT(s.threshold, 4.0);
  EXPECT_LT(s.threshold, 16.0);
  EXPECT_GT(s.gain, 0.0);
  EXPECT_TRUE(s.goes_left(4.0));
  EXPECT_FALSE(s.goes_left(16.0));
}

TEST(Split, MidpointThresholdBetweenDistinctValues) {
  Dataset d(1);
  d.add(std::vector<double>{2.0}, 0.0);
  d.add(std::vector<double>{6.0}, 10.0);
  SplitWorkspace ws;
  const Split s =
      best_split_on_feature(d, all_indices(d), 0, parent_score(d), 1, ws);
  ASSERT_TRUE(s.valid());
  EXPECT_DOUBLE_EQ(s.threshold, 4.0);
}

TEST(Split, ConstantFeatureYieldsNoSplit) {
  Dataset d(1);
  for (double y : {1.0, 2.0, 3.0}) d.add(std::vector<double>{5.0}, y);
  SplitWorkspace ws;
  const Split s =
      best_split_on_feature(d, all_indices(d), 0, parent_score(d), 1, ws);
  EXPECT_FALSE(s.valid());
}

TEST(Split, RespectsMinSamplesLeaf) {
  // 1 sample vs 9 samples: with min_samples_leaf = 2 the lone outlier must
  // not be split off alone.
  Dataset d(1);
  d.add(std::vector<double>{0.0}, 100.0);
  for (int i = 1; i <= 9; ++i) {
    d.add(std::vector<double>{static_cast<double>(i * 10)}, 0.0);
  }
  SplitWorkspace ws;
  const Split s =
      best_split_on_feature(d, all_indices(d), 0, parent_score(d), 2, ws);
  if (s.valid()) {
    // Whatever split was chosen, both sides must hold >= 2 samples.
    std::size_t left = 0;
    for (std::size_t i = 0; i < d.size(); ++i) {
      if (s.goes_left(d.x(i, 0))) ++left;
    }
    EXPECT_GE(left, 2u);
    EXPECT_GE(d.size() - left, 2u);
  }
}

TEST(Split, CategoricalGroupsByMeanLabel) {
  // Levels {0, 2} are fast, {1, 3} are slow: Breiman's ordering must
  // recover the grouping regardless of level ids.
  Dataset d(1, {true}, {4});
  for (int rep = 0; rep < 3; ++rep) {
    d.add(std::vector<double>{0.0}, 1.0);
    d.add(std::vector<double>{2.0}, 1.1);
    d.add(std::vector<double>{1.0}, 10.0);
    d.add(std::vector<double>{3.0}, 10.2);
  }
  SplitWorkspace ws;
  const Split s =
      best_split_on_feature(d, all_indices(d), 0, parent_score(d), 1, ws);
  ASSERT_TRUE(s.valid());
  EXPECT_TRUE(s.categorical);
  const bool fast_left = s.goes_left(0.0);
  EXPECT_EQ(s.goes_left(2.0), fast_left);
  EXPECT_EQ(s.goes_left(1.0), !fast_left);
  EXPECT_EQ(s.goes_left(3.0), !fast_left);
}

TEST(Split, CategoricalUnseenLevelGoesRight) {
  Dataset d(1, {true}, {8});
  for (int rep = 0; rep < 2; ++rep) {
    d.add(std::vector<double>{0.0}, 1.0);
    d.add(std::vector<double>{1.0}, 9.0);
  }
  SplitWorkspace ws;
  const Split s =
      best_split_on_feature(d, all_indices(d), 0, parent_score(d), 1, ws);
  ASSERT_TRUE(s.valid());
  EXPECT_FALSE(s.goes_left(7.0));  // level 7 never observed
}

TEST(Split, CategoricalSingleLevelNoSplit) {
  Dataset d(1, {true}, {4});
  for (double y : {1.0, 2.0}) d.add(std::vector<double>{2.0}, y);
  SplitWorkspace ws;
  const Split s =
      best_split_on_feature(d, all_indices(d), 0, parent_score(d), 1, ws);
  EXPECT_FALSE(s.valid());
}

TEST(Split, TooFewSamplesNoSplit) {
  Dataset d(1);
  d.add(std::vector<double>{1.0}, 1.0);
  SplitWorkspace ws;
  const Split s =
      best_split_on_feature(d, all_indices(d), 0, parent_score(d), 1, ws);
  EXPECT_FALSE(s.valid());
}

TEST(Split, GainMatchesVarianceReduction) {
  // Perfect binary separation: gain must equal the full between-group
  // sum-of-squares difference. parent = (sum)^2/n; children scores
  // sum_L^2/n_L + sum_R^2/n_R.
  Dataset d(1);
  d.add(std::vector<double>{0.0}, 2.0);
  d.add(std::vector<double>{0.0}, 2.0);
  d.add(std::vector<double>{1.0}, 8.0);
  d.add(std::vector<double>{1.0}, 8.0);
  SplitWorkspace ws;
  const double parent = parent_score(d);  // 20^2/4 = 100
  const Split s = best_split_on_feature(d, all_indices(d), 0, parent, 1, ws);
  ASSERT_TRUE(s.valid());
  // Children: 4^2/2 + 16^2/2 = 8 + 128 = 136; gain = 36.
  EXPECT_NEAR(s.gain, 36.0, 1e-9);
}

TEST(Split, InvalidSplitRoutingDefaults) {
  const Split s;
  EXPECT_FALSE(s.valid());
  EXPECT_EQ(s.feature, -1);
}

TEST(Split, CategoricalMaskRoutingAboveRangeIsRight) {
  Split s;
  s.feature = 0;
  s.categorical = true;
  s.left_mask = 0b101;
  EXPECT_TRUE(s.goes_left(0.0));
  EXPECT_FALSE(s.goes_left(1.0));
  EXPECT_TRUE(s.goes_left(2.0));
  EXPECT_FALSE(s.goes_left(100.0));  // out-of-mask level
}

}  // namespace
}  // namespace pwu::rf
