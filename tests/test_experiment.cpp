#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "workloads/synthetic.hpp"

namespace pwu::core {
namespace {

ExperimentSpec tiny_spec() {
  ExperimentSpec spec;
  spec.strategies = {"pwu", "random"};
  spec.alpha = 0.05;
  spec.repeats = 2;
  spec.pool_size = 150;
  spec.test_size = 80;
  spec.learner.n_init = 8;
  spec.learner.n_max = 24;
  spec.learner.forest.num_trees = 10;
  spec.learner.eval_every = 4;
  spec.seed = 7;
  return spec;
}

TEST(Experiment, ProducesAlignedAveragedSeries) {
  auto workload = workloads::make_quadratic_bowl(3, 8, 0.1, true);
  const ExperimentResult result = run_experiment(*workload, tiny_spec());
  EXPECT_EQ(result.workload, "quadratic_bowl");
  EXPECT_DOUBLE_EQ(result.alpha, 0.05);
  ASSERT_EQ(result.series.size(), 2u);
  EXPECT_EQ(result.series[0].strategy, "pwu");
  EXPECT_EQ(result.series[1].strategy, "random");

  for (const auto& series : result.series) {
    ASSERT_FALSE(series.points.empty());
    EXPECT_EQ(series.points.front().num_samples, 8u);
    EXPECT_EQ(series.points.back().num_samples, 24u);
    for (const auto& p : series.points) {
      EXPECT_TRUE(std::isfinite(p.rmse_mean));
      EXPECT_GE(p.rmse_stddev, 0.0);
      EXPECT_GT(p.cc_mean, 0.0);
    }
  }
  // Both strategies share the evaluation grid.
  ASSERT_EQ(result.series[0].points.size(), result.series[1].points.size());
  for (std::size_t i = 0; i < result.series[0].points.size(); ++i) {
    EXPECT_EQ(result.series[0].points[i].num_samples,
              result.series[1].points[i].num_samples);
  }
}

TEST(Experiment, DeterministicForFixedSeed) {
  auto workload = workloads::make_quadratic_bowl(3, 8, 0.1, true);
  const ExperimentResult a = run_experiment(*workload, tiny_spec());
  const ExperimentResult b = run_experiment(*workload, tiny_spec());
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t s = 0; s < a.series.size(); ++s) {
    for (std::size_t p = 0; p < a.series[s].points.size(); ++p) {
      EXPECT_DOUBLE_EQ(a.series[s].points[p].rmse_mean,
                       b.series[s].points[p].rmse_mean);
      EXPECT_DOUBLE_EQ(a.series[s].points[p].cc_mean,
                       b.series[s].points[p].cc_mean);
    }
  }
}

TEST(Experiment, FindLocatesSeriesByName) {
  auto workload = workloads::make_quadratic_bowl(2, 6, 0.1, true);
  const ExperimentResult result = run_experiment(*workload, tiny_spec());
  EXPECT_EQ(result.find("pwu").strategy, "pwu");
  EXPECT_THROW(result.find("nope"), std::out_of_range);
}

TEST(Experiment, ValidationRejectsEmptySpecs) {
  auto workload = workloads::make_quadratic_bowl(2, 6);
  ExperimentSpec spec = tiny_spec();
  spec.strategies.clear();
  EXPECT_THROW(run_experiment(*workload, spec), std::invalid_argument);
  spec = tiny_spec();
  spec.repeats = 0;
  EXPECT_THROW(run_experiment(*workload, spec), std::invalid_argument);
}

// ---- StrategySeries analytics on hand-built series ----

StrategySeries synthetic_series(std::vector<double> rmse,
                                std::vector<double> cc) {
  StrategySeries s;
  s.strategy = "synthetic";
  for (std::size_t i = 0; i < rmse.size(); ++i) {
    SeriesPoint p;
    p.num_samples = 10 * (i + 1);
    p.rmse_mean = rmse[i];
    p.cc_mean = cc[i];
    s.points.push_back(p);
  }
  return s;
}

TEST(StrategySeries, CostToReachInterpolates) {
  const StrategySeries s =
      synthetic_series({10.0, 6.0, 2.0}, {1.0, 2.0, 3.0});
  // Target 4.0 lies midway between 6.0 and 2.0 -> cc = 2.5.
  EXPECT_NEAR(s.cost_to_reach_rmse(4.0), 2.5, 1e-12);
  // Already met at the first point.
  EXPECT_DOUBLE_EQ(s.cost_to_reach_rmse(10.0), 1.0);
  // Never reached.
  EXPECT_TRUE(std::isnan(s.cost_to_reach_rmse(1.0)));
}

TEST(StrategySeries, FinalAndBestRmse) {
  const StrategySeries s =
      synthetic_series({10.0, 2.0, 5.0}, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.final_rmse(), 5.0);
  EXPECT_DOUBLE_EQ(s.best_rmse(), 2.0);
  const StrategySeries empty;
  EXPECT_TRUE(std::isnan(empty.final_rmse()));
  EXPECT_TRUE(std::isnan(empty.best_rmse()));
}

TEST(StrategySeries, CostSpeedupComparesMatchedError) {
  ExperimentResult result;
  result.workload = "synthetic";
  result.series.push_back(synthetic_series({10.0, 4.0, 2.0}, {1.0, 2.0, 3.0}));
  result.series[0].strategy = "pwu";
  result.series.push_back(
      synthetic_series({10.0, 8.0, 2.2}, {2.0, 6.0, 12.0}));
  result.series[1].strategy = "pbus";
  const double speedup = cost_speedup(result, "pwu", "pbus", 1.10);
  EXPECT_TRUE(std::isfinite(speedup));
  EXPECT_GT(speedup, 1.0);  // pbus pays more to reach the matched error
}

TEST(StrategySeries, CostSpeedupNanWhenUnreachable) {
  ExperimentResult result;
  result.workload = "synthetic";
  StrategySeries flat = synthetic_series({10.0, 10.0}, {1.0, 2.0});
  flat.strategy = "pwu";
  result.series.push_back(flat);
  StrategySeries never = synthetic_series({20.0, 15.0}, {1.0, 2.0});
  never.strategy = "pbus";
  result.series.push_back(never);
  // Matched target = 1.1 * max(best) = 1.1 * 15 = 16.5; pwu reaches 10 <=
  // 16.5 immediately, pbus never dips below 15 <= 16.5 at point 2 — both
  // reachable here, so craft a truly unreachable case:
  StrategySeries rising = synthetic_series({5.0, 30.0}, {1.0, 2.0});
  // best_rmse = 5; target = 1.1 * max(2(pwu best=10), 5) = 11; pwu reaches
  // 10 <= 11 at cc=1... use direct API instead for clarity:
  EXPECT_TRUE(std::isnan(rising.cost_to_reach_rmse(1.0)));
}

}  // namespace
}  // namespace pwu::core
