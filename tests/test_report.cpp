#include "core/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace pwu::core {
namespace {

ExperimentResult fixture_result() {
  ExperimentResult result;
  result.workload = "atax";
  result.alpha = 0.05;
  for (const char* name : {"pwu", "pbus"}) {
    StrategySeries series;
    series.strategy = name;
    for (std::size_t i = 1; i <= 4; ++i) {
      SeriesPoint p;
      p.num_samples = 10 * i;
      p.rmse_mean = 1.0 / static_cast<double>(i);
      p.rmse_stddev = 0.01;
      p.cc_mean = static_cast<double>(i) * 2.0;
      p.cc_stddev = 0.1;
      p.full_rmse_mean = 1.5 / static_cast<double>(i);
      series.points.push_back(p);
    }
    result.series.push_back(std::move(series));
  }
  return result;
}

TEST(Report, SeriesTableListsAllStrategiesAndRows) {
  std::ostringstream os;
  print_series_table(os, fixture_result());
  const std::string out = os.str();
  EXPECT_NE(out.find("pwu:rmse"), std::string::npos);
  EXPECT_NE(out.find("pbus:cc"), std::string::npos);
  EXPECT_NE(out.find("40"), std::string::npos);  // last sample count
}

TEST(Report, ChartsRenderWithLegends) {
  const ExperimentResult result = fixture_result();
  std::ostringstream rmse, cost, rmse_vs_cost;
  print_rmse_chart(rmse, result, "Fig 2 style");
  print_cost_chart(cost, result, "Fig 3 style");
  print_rmse_vs_cost_chart(rmse_vs_cost, result, "Fig 5 style");
  EXPECT_NE(rmse.str().find("Fig 2 style"), std::string::npos);
  EXPECT_NE(rmse.str().find("pwu"), std::string::npos);
  EXPECT_NE(cost.str().find("cumulative cost"), std::string::npos);
  EXPECT_NE(rmse_vs_cost.str().find("cumulative cost (s)"),
            std::string::npos);
}

TEST(Report, StrategyMarkersAreDistinct) {
  EXPECT_NE(strategy_marker("pwu"), strategy_marker("pbus"));
  EXPECT_NE(strategy_marker("maxu"), strategy_marker("brs"));
  EXPECT_EQ(strategy_marker("unknown-strategy"), '+');
}

TEST(Report, CsvDumpWritesAllPoints) {
  const std::string dir = ::testing::TempDir();
  write_series_csv(dir, fixture_result(), "testtag");
  const std::string path = dir + "/atax_testtag.csv";
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  // Header + 2 strategies x 4 points.
  EXPECT_EQ(lines, 9u);
  std::remove(path.c_str());
}

TEST(Report, EmptyOutDirSkipsCsv) {
  EXPECT_NO_THROW(write_series_csv("", fixture_result(), "tag"));
}

}  // namespace
}  // namespace pwu::core
