#include "space/pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

namespace pwu::space {
namespace {

ParameterSpace big_space() {
  ParameterSpace s;
  for (int i = 0; i < 6; ++i) {
    s.add(Parameter::ordinal("t" + std::to_string(i),
                             {1, 16, 32, 64, 128, 256, 512}));
  }
  return s;  // 7^6 = 117649 configs
}

ParameterSpace tiny_space() {
  ParameterSpace s;
  s.add(Parameter::ordinal("a", {0, 1, 2}));
  s.add(Parameter::boolean("b"));
  return s;  // 6 configs
}

TEST(SampleUnique, ProducesDistinctConfigs) {
  const ParameterSpace s = big_space();
  util::Rng rng(1);
  const auto configs = sample_unique(s, 500, rng);
  EXPECT_EQ(configs.size(), 500u);
  std::unordered_set<Configuration, ConfigurationHash> set(configs.begin(),
                                                           configs.end());
  EXPECT_EQ(set.size(), 500u);
  for (const auto& c : configs) EXPECT_TRUE(s.contains(c));
}

TEST(SampleUnique, RejectsMoreThanSpaceSize) {
  const ParameterSpace s = tiny_space();
  util::Rng rng(2);
  EXPECT_THROW(sample_unique(s, 7, rng), std::invalid_argument);
}

TEST(SampleUnique, CanDrainExactSpaceSize) {
  const ParameterSpace s = tiny_space();
  util::Rng rng(3);
  const auto all = sample_unique(s, 6, rng);
  std::unordered_set<Configuration, ConfigurationHash> set(all.begin(),
                                                           all.end());
  EXPECT_EQ(set.size(), 6u);
}

TEST(MakePoolSplit, LargeSpaceSplitSizes) {
  const ParameterSpace s = big_space();
  util::Rng rng(4);
  const PoolSplit split = make_pool_split(s, 700, 300, rng);
  EXPECT_EQ(split.pool.size(), 700u);
  EXPECT_EQ(split.test.size(), 300u);
  // Pool and test are disjoint.
  std::unordered_set<Configuration, ConfigurationHash> pool_set(
      split.pool.begin(), split.pool.end());
  for (const auto& t : split.test) {
    EXPECT_FALSE(pool_set.contains(t));
  }
}

TEST(MakePoolSplit, EnumerableSpaceUsesWholeSpaceProportionally) {
  // kripke/hypre-style small spaces: the whole space is enumerated and
  // split ~70/30.
  const ParameterSpace s = tiny_space();
  util::Rng rng(5);
  const PoolSplit split = make_pool_split(s, 7000, 3000, rng);
  EXPECT_EQ(split.pool.size() + split.test.size(), 6u);
  EXPECT_GE(split.pool.size(), 1u);
  EXPECT_GE(split.test.size(), 1u);
  EXPECT_GT(split.pool.size(), split.test.size());
}

TEST(MakePoolSplit, DifferentSeedsGiveDifferentSplits) {
  const ParameterSpace s = big_space();
  util::Rng rng_a(10);
  util::Rng rng_b(11);
  const PoolSplit a = make_pool_split(s, 50, 20, rng_a);
  const PoolSplit b = make_pool_split(s, 50, 20, rng_b);
  EXPECT_NE(a.pool, b.pool);
}

TEST(CandidatePool, TakeRemovesAndReturns) {
  const ParameterSpace s = tiny_space();
  CandidatePool pool(s.enumerate());
  EXPECT_EQ(pool.size(), 6u);
  const Configuration target = pool.at(2);
  const Configuration taken = pool.take(2);
  EXPECT_EQ(taken, target);
  EXPECT_EQ(pool.size(), 5u);
  // The taken config must no longer be present.
  for (std::size_t i = 0; i < pool.size(); ++i) {
    EXPECT_NE(pool.at(i), taken);
  }
}

TEST(CandidatePool, TakeOutOfRangeThrows) {
  CandidatePool pool({Configuration({0})});
  EXPECT_THROW(pool.take(1), std::out_of_range);
}

TEST(CandidatePool, TakeManyHandlesUnsortedAndDuplicateIndices) {
  const ParameterSpace s = tiny_space();
  const auto all = s.enumerate();
  CandidatePool pool(all);
  const Configuration a = pool.at(4);
  const Configuration b = pool.at(1);
  const auto taken = pool.take_many({4, 1, 4});  // duplicate 4 collapses
  EXPECT_EQ(taken.size(), 2u);
  EXPECT_EQ(pool.size(), 4u);
  // Both requested configs were removed (order of return: descending idx).
  EXPECT_EQ(taken[0], a);
  EXPECT_EQ(taken[1], b);
}

TEST(CandidatePool, SampleIndicesAreDistinctAndInRange) {
  const ParameterSpace s = big_space();
  util::Rng rng(7);
  CandidatePool pool(sample_unique(s, 100, rng));
  const auto indices = pool.sample_indices(10, rng);
  EXPECT_EQ(indices.size(), 10u);
  std::unordered_set<std::size_t> set(indices.begin(), indices.end());
  EXPECT_EQ(set.size(), 10u);
  for (std::size_t i : indices) EXPECT_LT(i, pool.size());
}

TEST(CandidatePool, SampleIndicesRejectsOversizedK) {
  CandidatePool pool({Configuration({0}), Configuration({1})});
  util::Rng rng(8);
  EXPECT_THROW(pool.sample_indices(3, rng), std::invalid_argument);
}

TEST(CandidatePool, DrainCompletely) {
  const ParameterSpace s = tiny_space();
  CandidatePool pool(s.enumerate());
  std::unordered_set<Configuration, ConfigurationHash> taken;
  while (!pool.empty()) {
    taken.insert(pool.take(0));
  }
  EXPECT_EQ(taken.size(), 6u);  // every config exactly once
}

}  // namespace
}  // namespace pwu::space
