#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "rf/random_forest.hpp"
#include "space/pool.hpp"
#include "workloads/synthetic.hpp"

namespace pwu::core {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload_ = workloads::make_quadratic_bowl(3, 8, 0.1, /*noisy=*/false);
    util::Rng rng(1);
    const auto configs =
        space::sample_unique(workload_->space(), 200, rng);
    test_ = build_test_set(*workload_, configs, rng);

    // Fit a forest on an independent training sample.
    util::Rng train_rng(2);
    const auto& s = workload_->space();
    rf::Dataset train(s.num_params(), s.categorical_mask(),
                      s.cardinalities());
    for (int i = 0; i < 300; ++i) {
      const auto c = s.random_config(train_rng);
      train.add(s.features(c), workload_->base_time(c));
    }
    rf::ForestConfig cfg;
    cfg.num_trees = 25;
    model_.fit(train, cfg, train_rng);
  }

  workloads::WorkloadPtr workload_;
  TestSet test_;
  rf::RandomForest model_;
};

TEST_F(MetricsTest, TestSetLabelsAndRanking) {
  EXPECT_EQ(test_.size(), 200u);
  EXPECT_EQ(test_.features.num_rows(), test_.labels.size());
  // Ranking is a permutation sorted by label ascending.
  ASSERT_EQ(test_.ranking.size(), 200u);
  for (std::size_t r = 1; r < test_.ranking.size(); ++r) {
    EXPECT_LE(test_.labels[test_.ranking[r - 1]],
              test_.labels[test_.ranking[r]]);
  }
  std::vector<std::size_t> sorted = test_.ranking;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST_F(MetricsTest, TopAlphaRmseUsesOnlyThePrefix) {
  // A model fit on true data: its top-1% error must not exceed the error
  // on the full set by orders of magnitude, and both must be finite.
  const double top01 = top_alpha_rmse(model_, test_, 0.01);
  const double top100 = top_alpha_rmse(model_, test_, 1.0);
  EXPECT_TRUE(std::isfinite(top01));
  EXPECT_TRUE(std::isfinite(top100));
  EXPECT_NEAR(top100, full_rmse(model_, test_), 1e-12);
}

TEST_F(MetricsTest, AlphaValidation) {
  EXPECT_THROW(top_alpha_rmse(model_, test_, 0.0), std::invalid_argument);
  EXPECT_THROW(top_alpha_rmse(model_, test_, 1.5), std::invalid_argument);
}

TEST_F(MetricsTest, TinyAlphaStillEvaluatesAtLeastOneSample) {
  // floor(200 * 0.001) = 0 -> clamped to 1 sample.
  EXPECT_NO_THROW(top_alpha_rmse(model_, test_, 0.001));
}

TEST_F(MetricsTest, RankingTauHighForGoodModel) {
  EXPECT_GT(ranking_tau(model_, test_), 0.5);
}

TEST(Metrics, PerfectModelHasZeroError) {
  // A forest trained to interpolate the exact test points.
  auto workload = workloads::make_quadratic_bowl(2, 4, 0.1, false);
  const auto& s = workload->space();
  const auto all = s.enumerate();
  util::Rng rng(3);
  TestSet test = build_test_set(*workload, all, rng);

  rf::Dataset train(s.num_params(), s.categorical_mask(), s.cardinalities());
  for (const auto& c : all) {
    train.add(s.features(c), workload->base_time(c));
  }
  rf::ForestConfig cfg;
  cfg.num_trees = 1;
  cfg.bootstrap = false;
  cfg.tree.mtry = s.num_params();
  rf::RandomForest model;
  model.fit(train, cfg, rng);

  EXPECT_NEAR(top_alpha_rmse(model, test, 0.05), 0.0, 1e-12);
  EXPECT_NEAR(full_rmse(model, test), 0.0, 1e-12);
  // The symmetric bowl has tied labels; tau-a counts tied pairs in the
  // denominator, so even the perfect predictor stays below 1.
  EXPECT_GT(ranking_tau(model, test), 0.75);
}

TEST(Metrics, CumulativeCostIsPlainSum) {
  const std::vector<double> labels = {0.5, 1.5, 2.0};
  EXPECT_DOUBLE_EQ(cumulative_cost(labels), 4.0);
  EXPECT_DOUBLE_EQ(cumulative_cost(std::vector<double>{}), 0.0);
}

TEST(Metrics, BuildTestSetMeasurementNoiseRespectsRepetitions) {
  auto workload = workloads::make_quadratic_bowl(2, 6, 0.1, /*noisy=*/true);
  util::Rng rng(4);
  const auto configs = space::sample_unique(workload->space(), 30, rng);
  const TestSet noisy1 = build_test_set(*workload, configs, rng, 1);
  const TestSet noisy35 = build_test_set(*workload, configs, rng, 35);
  // 35-rep averaging must land closer to the noiseless truth on average.
  double err1 = 0.0, err35 = 0.0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const double base = workload->base_time(configs[i]);
    err1 += std::abs(noisy1.labels[i] - base);
    err35 += std::abs(noisy35.labels[i] - base);
  }
  EXPECT_LT(err35, err1);
}

TEST(Metrics, EmptyTestSetRejected) {
  auto workload = workloads::make_quadratic_bowl(1, 3);
  const auto& s = workload->space();
  util::Rng rng(5);
  rf::Dataset train(s.num_params());
  const auto c = s.random_config(rng);
  train.add(s.features(c), 1.0);
  rf::ForestConfig cfg;
  cfg.num_trees = 2;
  rf::RandomForest model;
  model.fit(train, cfg, rng);
  const TestSet empty;
  EXPECT_THROW(top_alpha_rmse(model, empty, 0.05), std::invalid_argument);
}

}  // namespace
}  // namespace pwu::core
