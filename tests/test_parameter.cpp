#include "space/parameter.hpp"

#include <gtest/gtest.h>

namespace pwu::space {
namespace {

TEST(Parameter, IntRangeLevels) {
  const Parameter p = Parameter::int_range("u", 1, 31);
  EXPECT_EQ(p.name(), "u");
  EXPECT_EQ(p.kind(), ParamKind::kIntRange);
  EXPECT_EQ(p.num_levels(), 31u);
  EXPECT_DOUBLE_EQ(p.numeric_value(0), 1.0);
  EXPECT_DOUBLE_EQ(p.numeric_value(30), 31.0);
  EXPECT_EQ(p.label(4), "5");
  EXPECT_FALSE(p.is_categorical());
}

TEST(Parameter, IntRangeWithStep) {
  const Parameter p = Parameter::int_range("s", 0, 10, 5);
  EXPECT_EQ(p.num_levels(), 3u);
  EXPECT_DOUBLE_EQ(p.numeric_value(1), 5.0);
}

TEST(Parameter, IntRangeRejectsBadArgs) {
  EXPECT_THROW(Parameter::int_range("x", 5, 1), std::invalid_argument);
  EXPECT_THROW(Parameter::int_range("x", 1, 5, 0), std::invalid_argument);
}

TEST(Parameter, OrdinalTileLevels) {
  const Parameter p =
      Parameter::ordinal("T1", {1, 16, 32, 64, 128, 256, 512});
  EXPECT_EQ(p.kind(), ParamKind::kOrdinal);
  EXPECT_EQ(p.num_levels(), 7u);
  EXPECT_DOUBLE_EQ(p.numeric_value(3), 64.0);
  EXPECT_EQ(p.label(3), "64");
  EXPECT_FALSE(p.is_categorical());
}

TEST(Parameter, CategoricalUsesLevelIndexAsValue) {
  const Parameter p = Parameter::categorical("layout", {"DGZ", "ZGD"});
  EXPECT_EQ(p.kind(), ParamKind::kCategorical);
  EXPECT_TRUE(p.is_categorical());
  EXPECT_DOUBLE_EQ(p.numeric_value(0), 0.0);
  EXPECT_DOUBLE_EQ(p.numeric_value(1), 1.0);
  EXPECT_EQ(p.label(1), "ZGD");
}

TEST(Parameter, BooleanLevels) {
  const Parameter p = Parameter::boolean("VEC");
  EXPECT_EQ(p.kind(), ParamKind::kBoolean);
  EXPECT_EQ(p.num_levels(), 2u);
  EXPECT_FALSE(p.is_categorical());  // ordered 0/1, numeric split works
  EXPECT_DOUBLE_EQ(p.numeric_value(0), 0.0);
  EXPECT_DOUBLE_EQ(p.numeric_value(1), 1.0);
  EXPECT_EQ(p.label(0), "false");
  EXPECT_EQ(p.label(1), "true");
}

TEST(Parameter, LevelOutOfRangeThrows) {
  const Parameter p = Parameter::boolean("b");
  EXPECT_THROW(p.numeric_value(2), std::out_of_range);
  EXPECT_THROW(p.label(2), std::out_of_range);
}

TEST(Parameter, EmptyDomainRejected) {
  EXPECT_THROW(Parameter::ordinal("e", {}), std::invalid_argument);
  EXPECT_THROW(Parameter::categorical("e", {}), std::invalid_argument);
}

TEST(Parameter, NearestLevelSnapsToClosestValue) {
  const Parameter p = Parameter::ordinal("T", {1, 16, 32, 64});
  EXPECT_EQ(p.nearest_level(0.0), 0u);
  EXPECT_EQ(p.nearest_level(20.0), 1u);
  EXPECT_EQ(p.nearest_level(25.0), 2u);
  EXPECT_EQ(p.nearest_level(1000.0), 3u);
}

TEST(Parameter, NearestLevelRejectedForCategorical) {
  const Parameter p = Parameter::categorical("c", {"a", "b"});
  EXPECT_THROW(p.nearest_level(0.4), std::logic_error);
}

TEST(Parameter, KindNames) {
  EXPECT_STREQ(to_string(ParamKind::kIntRange), "int");
  EXPECT_STREQ(to_string(ParamKind::kOrdinal), "ordinal");
  EXPECT_STREQ(to_string(ParamKind::kCategorical), "categorical");
  EXPECT_STREQ(to_string(ParamKind::kBoolean), "boolean");
}

}  // namespace
}  // namespace pwu::space
