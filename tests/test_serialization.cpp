// Forest persistence: save/load must round-trip predictions exactly.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "rf/random_forest.hpp"
#include "util/rng.hpp"

namespace pwu::rf {
namespace {

Dataset training_data(util::Rng& rng, std::size_t n = 200) {
  Dataset d(3, {false, false, true}, {0, 0, 4});
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(0.0, 10.0);
    const double b = rng.uniform(-5.0, 5.0);
    const auto cat = static_cast<double>(rng.index(4));
    d.add(std::vector<double>{a, b, cat}, a * 2.0 + b * b + 10.0 * cat);
  }
  return d;
}

RandomForest fitted_forest(const Dataset& data) {
  ForestConfig cfg;
  cfg.num_trees = 15;
  cfg.tree.max_depth = 9;
  cfg.tree.min_samples_leaf = 2;
  RandomForest forest;
  util::Rng rng(11);
  forest.fit(data, cfg, rng);
  return forest;
}

TEST(Serialization, StreamRoundTripPreservesPredictions) {
  util::Rng rng(1);
  const Dataset data = training_data(rng);
  const RandomForest original = fitted_forest(data);

  std::stringstream stream;
  original.save(stream);
  RandomForest restored;
  restored.load(stream);

  EXPECT_EQ(restored.num_trees(), original.num_trees());
  EXPECT_EQ(restored.total_nodes(), original.total_nodes());
  util::Rng probe(2);
  for (int t = 0; t < 100; ++t) {
    const std::vector<double> row = {probe.uniform(0.0, 10.0),
                                     probe.uniform(-5.0, 5.0),
                                     static_cast<double>(probe.index(4))};
    EXPECT_DOUBLE_EQ(restored.predict(row), original.predict(row));
    EXPECT_DOUBLE_EQ(restored.predict_stats(row).stddev,
                     original.predict_stats(row).stddev);
  }
}

TEST(Serialization, ConfigStructureSurvives) {
  util::Rng rng(3);
  const Dataset data = training_data(rng);
  const RandomForest original = fitted_forest(data);
  std::stringstream stream;
  original.save(stream);
  RandomForest restored;
  restored.load(stream);
  EXPECT_EQ(restored.config().tree.max_depth, 9u);
  EXPECT_EQ(restored.config().tree.min_samples_leaf, 2u);
  EXPECT_EQ(restored.config().num_trees, 15u);
}

TEST(Serialization, FileRoundTrip) {
  util::Rng rng(4);
  const Dataset data = training_data(rng);
  const RandomForest original = fitted_forest(data);
  const std::string path = ::testing::TempDir() + "pwu_forest_test.model";
  original.save_file(path);
  const RandomForest restored = RandomForest::load_file(path);
  const std::vector<double> row = {5.0, 0.0, 2.0};
  EXPECT_DOUBLE_EQ(restored.predict(row), original.predict(row));
  std::remove(path.c_str());
}

TEST(Serialization, SaveBeforeFitRejected) {
  const RandomForest unfitted;
  std::stringstream stream;
  EXPECT_THROW(unfitted.save(stream), std::logic_error);
}

TEST(Serialization, LoadRejectsGarbage) {
  RandomForest forest;
  std::stringstream bad_magic("not-a-forest 1\n");
  EXPECT_THROW(forest.load(bad_magic), std::runtime_error);
  std::stringstream bad_version("pwu-random-forest 99\n");
  EXPECT_THROW(forest.load(bad_version), std::runtime_error);
  std::stringstream truncated("pwu-random-forest 1\n3 0 1 2 0 1\ntree 5\n1 0");
  EXPECT_THROW(forest.load(truncated), std::runtime_error);
}

TEST(Serialization, LoadRejectsCorruptChildIndices) {
  RandomForest forest;
  // One "tree" whose root claims children beyond the node table.
  std::stringstream corrupt(
      "pwu-random-forest 1\n1 0 1 2 0 1\ntree 1\n0 0 0.5 0 1.0 3.0 5 6\n");
  EXPECT_THROW(forest.load(corrupt), std::runtime_error);
}

TEST(Serialization, LoadFileMissingPathRejected) {
  EXPECT_THROW(RandomForest::load_file("/nonexistent/forest.model"),
               std::runtime_error);
}

}  // namespace
}  // namespace pwu::rf
