#include "rf/decision_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

namespace pwu::rf {
namespace {

std::vector<std::size_t> all_indices(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  return idx;
}

Dataset grid_2d(std::size_t side) {
  Dataset d(2);
  for (std::size_t i = 0; i < side; ++i) {
    for (std::size_t j = 0; j < side; ++j) {
      const double x = static_cast<double>(i);
      const double y = static_cast<double>(j);
      d.add(std::vector<double>{x, y}, x * x + 3.0 * y);
    }
  }
  return d;
}

TreeConfig full_tree() {
  TreeConfig cfg;
  cfg.mtry = 2;  // consider every feature
  return cfg;
}

TEST(DecisionTree, InterpolatesTrainingDataWhenFullyGrown) {
  const Dataset d = grid_2d(8);
  DecisionTree tree;
  util::Rng rng(1);
  tree.fit(d, all_indices(d.size()), full_tree(), rng);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_NEAR(tree.predict(d.row(i)), d.y(i), 1e-9);
  }
}

TEST(DecisionTree, PredictionsBoundedByLabelRange) {
  const Dataset d = grid_2d(6);
  DecisionTree tree;
  util::Rng rng(2);
  TreeConfig cfg = full_tree();
  cfg.max_depth = 3;
  tree.fit(d, all_indices(d.size()), cfg, rng);
  double lo = d.y(0), hi = d.y(0);
  for (std::size_t i = 0; i < d.size(); ++i) {
    lo = std::min(lo, d.y(i));
    hi = std::max(hi, d.y(i));
  }
  util::Rng probe(3);
  for (int t = 0; t < 100; ++t) {
    const std::vector<double> row = {probe.uniform(-2.0, 8.0),
                                     probe.uniform(-2.0, 8.0)};
    const double p = tree.predict(row);
    EXPECT_GE(p, lo - 1e-9);
    EXPECT_LE(p, hi + 1e-9);
  }
}

TEST(DecisionTree, MaxDepthHonored) {
  const Dataset d = grid_2d(8);
  DecisionTree tree;
  util::Rng rng(4);
  TreeConfig cfg = full_tree();
  cfg.max_depth = 2;
  tree.fit(d, all_indices(d.size()), cfg, rng);
  EXPECT_LE(tree.depth(), 2u);
  EXPECT_LE(tree.num_leaves(), 4u);
}

TEST(DecisionTree, UnlimitedDepthGrowsDeeper) {
  const Dataset d = grid_2d(8);
  DecisionTree shallow, deep;
  util::Rng rng(5);
  TreeConfig cfg = full_tree();
  cfg.max_depth = 1;
  shallow.fit(d, all_indices(d.size()), cfg, rng);
  cfg.max_depth = 0;
  deep.fit(d, all_indices(d.size()), cfg, rng);
  EXPECT_GT(deep.depth(), shallow.depth());
  EXPECT_GT(deep.num_nodes(), shallow.num_nodes());
}

TEST(DecisionTree, MinSamplesLeafLimitsLeafSize) {
  const Dataset d = grid_2d(6);
  DecisionTree tree;
  util::Rng rng(6);
  TreeConfig cfg = full_tree();
  cfg.min_samples_leaf = 5;
  tree.fit(d, all_indices(d.size()), cfg, rng);
  // 36 samples, leaves of >= 5 samples => at most 7 leaves.
  EXPECT_LE(tree.num_leaves(), 7u);
}

TEST(DecisionTree, ConstantLabelsGiveSingleLeaf) {
  Dataset d(1);
  for (int i = 0; i < 10; ++i) {
    d.add(std::vector<double>{static_cast<double>(i)}, 7.0);
  }
  DecisionTree tree;
  util::Rng rng(7);
  tree.fit(d, all_indices(d.size()), full_tree(), rng);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{99.0}), 7.0);
}

TEST(DecisionTree, SingleSampleIsALeaf) {
  Dataset d(1);
  d.add(std::vector<double>{1.0}, 5.0);
  DecisionTree tree;
  util::Rng rng(8);
  tree.fit(d, all_indices(1), full_tree(), rng);
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{0.0}), 5.0);
}

TEST(DecisionTree, EmptyIndexSetRejected) {
  Dataset d(1);
  d.add(std::vector<double>{1.0}, 5.0);
  DecisionTree tree;
  util::Rng rng(9);
  EXPECT_THROW(tree.fit(d, {}, full_tree(), rng), std::invalid_argument);
}

TEST(DecisionTree, PredictBeforeFitThrows) {
  const DecisionTree tree;
  EXPECT_THROW(tree.predict(std::vector<double>{1.0}), std::logic_error);
  EXPECT_FALSE(tree.fitted());
}

TEST(DecisionTree, DeterministicGivenSeed) {
  const Dataset d = grid_2d(7);
  DecisionTree a, b;
  TreeConfig cfg;
  cfg.mtry = 1;  // force the random feature subspace to matter
  util::Rng rng_a(42), rng_b(42);
  a.fit(d, all_indices(d.size()), cfg, rng_a);
  b.fit(d, all_indices(d.size()), cfg, rng_b);
  util::Rng probe(10);
  for (int t = 0; t < 50; ++t) {
    const std::vector<double> row = {probe.uniform(0.0, 7.0),
                                     probe.uniform(0.0, 7.0)};
    EXPECT_DOUBLE_EQ(a.predict(row), b.predict(row));
  }
}

TEST(DecisionTree, HandlesCategoricalFeature) {
  // Label depends on a 5-level categorical only.
  Dataset d(2, {true, false}, {5, 0});
  util::Rng rng(11);
  for (int rep = 0; rep < 10; ++rep) {
    for (int level = 0; level < 5; ++level) {
      d.add(std::vector<double>{static_cast<double>(level), rng.uniform()},
            level % 2 == 0 ? 1.0 : 9.0);
    }
  }
  DecisionTree tree;
  util::Rng fit_rng(12);
  tree.fit(d, all_indices(d.size()), full_tree(), fit_rng);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.0, 0.5}), 1.0, 1e-9);
  EXPECT_NEAR(tree.predict(std::vector<double>{3.0, 0.5}), 9.0, 1e-9);
}

TEST(DecisionTree, DuplicatedBootstrapIndicesWork) {
  const Dataset d = grid_2d(5);
  // A bootstrap-style index multiset (with repeats) must fit cleanly.
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < d.size(); ++i) {
    indices.push_back(i % (d.size() / 2));
  }
  DecisionTree tree;
  util::Rng rng(13);
  tree.fit(d, std::move(indices), full_tree(), rng);
  EXPECT_TRUE(tree.fitted());
}

TEST(TreeConfig, MtryDefaultsToThirdOfFeatures) {
  TreeConfig cfg;
  EXPECT_EQ(cfg.resolve_mtry(30), 10u);
  EXPECT_EQ(cfg.resolve_mtry(2), 1u);  // floor at 1
  cfg.mtry = 50;
  EXPECT_EQ(cfg.resolve_mtry(30), 30u);  // clamped to feature count
}

}  // namespace
}  // namespace pwu::rf
