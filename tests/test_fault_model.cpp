// FaultModel — the seeded config -> failure-region hash — and the
// Executor's failure semantics: what each region costs, what it returns,
// and that the whole thing replays bit-identically from a seeded stream.

#include "sim/fault_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <stdexcept>
#include <vector>

#include "sim/executor.hpp"
#include "space/pool.hpp"
#include "util/rng.hpp"
#include "workloads/synthetic.hpp"

namespace pwu::sim {
namespace {

FaultConfig lively_config(std::uint64_t seed = 7) {
  FaultConfig fc;
  fc.compile_fail_fraction = 0.10;
  fc.crash_fraction = 0.10;
  fc.crash_probability = 0.5;
  fc.timeout_fraction = 0.05;
  fc.timeout_seconds = 30.0;
  fc.seed = seed;
  return fc;
}

std::vector<space::Configuration> sample_configs(std::size_t count,
                                                 std::uint64_t seed = 3) {
  auto workload = workloads::make_quadratic_bowl(4, 8, 0.1, /*noisy=*/false);
  util::Rng rng(seed);
  return space::sample_unique(workload->space(), count, rng);
}

TEST(FailureKind, StringNamesRoundTrip) {
  for (FailureKind kind : {FailureKind::None, FailureKind::CompileError,
                           FailureKind::Crash, FailureKind::Timeout}) {
    const auto parsed = failure_kind_from_string(to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(failure_kind_from_string("exploded").has_value());
  EXPECT_FALSE(failure_kind_from_string("").has_value());
}

TEST(FaultModel, DefaultModelIsAllHealthy) {
  const FaultModel model;
  EXPECT_TRUE(model.all_healthy());
  for (const auto& config : sample_configs(50)) {
    EXPECT_EQ(model.region(config), FailureKind::None);
  }
}

TEST(FaultModel, ConstructorValidatesItsConfig) {
  auto bad = lively_config();
  bad.compile_fail_fraction = -0.1;
  EXPECT_THROW(FaultModel{bad}, std::invalid_argument);
  bad = lively_config();
  bad.compile_fail_fraction = 0.5;
  bad.crash_fraction = 0.4;
  bad.timeout_fraction = 0.2;  // sums to 1.1
  EXPECT_THROW(FaultModel{bad}, std::invalid_argument);
  bad = lively_config();
  bad.crash_probability = 1.5;
  EXPECT_THROW(FaultModel{bad}, std::invalid_argument);
  bad = lively_config();
  bad.timeout_seconds = 0.0;
  EXPECT_THROW(FaultModel{bad}, std::invalid_argument);
}

TEST(FaultModel, RegionIsAPureFunctionOfConfigAndSeed) {
  const FaultModel a(lively_config(7));
  const FaultModel b(lively_config(7));
  const FaultModel other_seed(lively_config(8));
  bool any_seed_difference = false;
  for (const auto& config : sample_configs(200)) {
    const FailureKind kind = a.region(config);
    // Stable across calls and across independently built models.
    EXPECT_EQ(a.region(config), kind);
    EXPECT_EQ(b.region(config), kind);
    const double u = a.hash_unit(config);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    any_seed_difference |= (other_seed.region(config) != kind);
  }
  // A different salt must actually move the regions.
  EXPECT_TRUE(any_seed_difference);
}

TEST(FaultModel, RegionPartitionsTheHashInOrder) {
  const FaultConfig fc = lively_config();
  const FaultModel model(fc);
  for (const auto& config : sample_configs(500)) {
    const double u = model.hash_unit(config);
    FailureKind expected = FailureKind::None;
    if (u < fc.compile_fail_fraction) {
      expected = FailureKind::CompileError;
    } else if (u < fc.compile_fail_fraction + fc.crash_fraction) {
      expected = FailureKind::Crash;
    } else if (u < fc.compile_fail_fraction + fc.crash_fraction +
                       fc.timeout_fraction) {
      expected = FailureKind::Timeout;
    }
    EXPECT_EQ(model.region(config), expected);
  }
}

TEST(FaultModel, RegionFractionsRoughlyMatchTheConfig) {
  const FaultConfig fc = lively_config();
  const FaultModel model(fc);
  std::map<FailureKind, int> counts;
  const auto configs = sample_configs(4000);
  for (const auto& config : configs) ++counts[model.region(config)];
  const double n = static_cast<double>(configs.size());
  EXPECT_NEAR(counts[FailureKind::CompileError] / n,
              fc.compile_fail_fraction, 0.02);
  EXPECT_NEAR(counts[FailureKind::Crash] / n, fc.crash_fraction, 0.02);
  EXPECT_NEAR(counts[FailureKind::Timeout] / n, fc.timeout_fraction, 0.015);
}

TEST(Executor, CompileErrorCostsNothingAndYieldsNoLabel) {
  auto workload = workloads::make_quadratic_bowl(4, 8, 0.1, /*noisy=*/false);
  FaultConfig fc = lively_config();
  fc.compile_fail_fraction = 1.0;  // the whole space fails to compile
  fc.crash_fraction = fc.timeout_fraction = 0.0;
  const FaultModel model(fc);
  Executor executor(5, &model);
  util::Rng rng(11);
  const auto result =
      executor.measure(*workload, workload->space().random_config(rng), rng);
  EXPECT_EQ(result.status, FailureKind::CompileError);
  EXPECT_TRUE(std::isnan(result.time));
  EXPECT_EQ(result.cost, 0.0);
  EXPECT_EQ(executor.total_runs(), 0u);
  EXPECT_EQ(executor.failed_measurements(), 1u);
  EXPECT_EQ(executor.total_cost_seconds(), 0.0);
}

TEST(Executor, TimeoutChargesTheFullHarnessTimeout) {
  auto workload = workloads::make_quadratic_bowl(4, 8, 0.1, /*noisy=*/false);
  FaultConfig fc = lively_config();
  fc.timeout_fraction = 1.0;
  fc.compile_fail_fraction = fc.crash_fraction = 0.0;
  const FaultModel model(fc);
  Executor executor(5, &model);
  util::Rng rng(12);
  const auto result =
      executor.measure(*workload, workload->space().random_config(rng), rng);
  EXPECT_EQ(result.status, FailureKind::Timeout);
  EXPECT_TRUE(std::isnan(result.time));
  // The tuner pays the timeout in full — once, not per repetition.
  EXPECT_DOUBLE_EQ(result.cost, fc.timeout_seconds);
  EXPECT_DOUBLE_EQ(executor.total_cost_seconds(), fc.timeout_seconds);
  EXPECT_EQ(executor.failed_measurements(), 1u);
}

TEST(Executor, CrashChargesAPartialRunAndIsTransient) {
  auto workload = workloads::make_quadratic_bowl(4, 8, 0.1, /*noisy=*/false);
  FaultConfig fc = lively_config();
  fc.crash_fraction = 1.0;
  fc.crash_probability = 1.0;  // every run crashes
  fc.compile_fail_fraction = fc.timeout_fraction = 0.0;
  const FaultModel model(fc);
  Executor executor(5, &model);
  util::Rng rng(13);
  const auto config = workload->space().random_config(rng);
  const auto result = executor.measure(*workload, config, rng);
  EXPECT_EQ(result.status, FailureKind::Crash);
  EXPECT_TRUE(std::isnan(result.time));
  // A crashed run burns part of one run, never the full repetition sweep.
  EXPECT_GT(result.cost, 0.0);
  EXPECT_LE(result.cost, workload->base_time(config) * 10.0);

  // With crash probability 0 the same region always measures cleanly.
  fc.crash_probability = 0.0;
  const FaultModel calm(fc);
  Executor healthy_executor(5, &calm);
  const auto ok = healthy_executor.measure(*workload, config, rng);
  ASSERT_TRUE(ok.ok());
  EXPECT_NEAR(ok.time, workload->base_time(config), 1e-12);
}

TEST(Executor, SeededStreamReplaysBitIdentically) {
  auto workload = workloads::make_quadratic_bowl(4, 8, 0.1, /*noisy=*/true);
  const FaultModel model(lively_config());
  const auto configs = sample_configs(60);

  const auto run = [&](std::vector<MeasurementResult>& out) {
    Executor executor(3, &model);
    util::Rng rng(21);
    for (const auto& config : configs) {
      out.push_back(executor.measure(*workload, config, rng));
    }
    return executor.total_cost_seconds();
  };
  std::vector<MeasurementResult> first, second;
  const double cost_a = run(first);
  const double cost_b = run(second);
  EXPECT_EQ(cost_a, cost_b);
  ASSERT_EQ(first.size(), second.size());
  bool saw_failure = false, saw_success = false;
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].status, second[i].status);
    EXPECT_EQ(first[i].cost, second[i].cost);
    if (first[i].ok()) {
      saw_success = true;
      EXPECT_EQ(first[i].time, second[i].time);
    } else {
      saw_failure = true;
    }
  }
  // The fractions above make both outcomes near-certain over 60 configs.
  EXPECT_TRUE(saw_failure);
  EXPECT_TRUE(saw_success);
}

}  // namespace
}  // namespace pwu::sim
