// Warm-standby replication and live ring growth, driven entirely
// in-process (the `ha` suite). The acceptance bar mirrors the router
// chaos harness: across promotions, staleness fallbacks, and mid-traffic
// growth, the client-visible response stream must stay bit-identical
// (modulo the "checkpoint" path field) to a lone healthy SessionManager.
//
// The kill-switch transport injects the same connection-death shapes the
// multi-process harness produces with real SIGKILLs; replication-specific
// needles ("op":"replicate", "op":"promote") let tests kill standbys at
// the exact protocol step under test.

#include "router/replication.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "router/hash_ring.hpp"
#include "router/router.hpp"
#include "service/protocol.hpp"
#include "service/session_manager.hpp"
#include "service/transport.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "workloads/registry.hpp"

namespace pwu::router {
namespace {

namespace json = util::json;
namespace fs = std::filesystem;

// ---- fixtures --------------------------------------------------------------

std::string fresh_dir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() / ("pwu_ha_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Same deterministic connection-death injector the router suite uses.
class KillSwitchTransport : public service::Transport {
 public:
  explicit KillSwitchTransport(const std::string& checkpoint_dir,
                               std::size_t checkpoint_every = 1)
      : inner_(nullptr, service::ServiceLimits{}, checkpoint_dir,
               checkpoint_every) {}

  void arm_send_kill(std::string needle, int nth) {
    send_needle_ = std::move(needle);
    send_countdown_ = nth;
  }

  void arm_recv_kill(std::string needle, int nth) {
    recv_needle_ = std::move(needle);
    recv_countdown_ = nth;
  }

  void send(const std::string& line) override {
    if (dead_) throw service::TransportError("connection killed");
    if (send_countdown_ > 0 && line.find(send_needle_) != std::string::npos &&
        --send_countdown_ == 0) {
      dead_ = true;
      throw service::TransportError("connection killed on send");
    }
    const bool poison = recv_countdown_ > 0 &&
                        line.find(recv_needle_) != std::string::npos &&
                        --recv_countdown_ == 0;
    inner_.send(line);
    poison_.push_back(poison);
  }

  std::string recv() override {
    if (dead_) throw service::TransportError("connection killed");
    const bool poison = poison_.front();
    poison_.erase(poison_.begin());
    const std::string line = inner_.recv();
    if (poison) {
      dead_ = true;
      throw service::TransportError("connection killed on recv");
    }
    return line;
  }

  bool alive() const override { return !dead_; }

 private:
  service::InProcessTransport inner_;
  std::string send_needle_;
  int send_countdown_ = 0;
  std::string recv_needle_;
  int recv_countdown_ = 0;
  std::vector<bool> poison_;
  bool dead_ = false;
};

/// N-shard router over kill-switch transports (shards named s0..sN-1).
struct Fleet {
  std::unique_ptr<Router> router;
  std::vector<KillSwitchTransport*> transports;
  std::vector<std::string> dirs;
};

Fleet make_fleet(const std::string& tag, std::size_t shards,
                 RouterOptions options = {}, std::size_t checkpoint_every = 1) {
  Fleet fleet;
  std::vector<ShardSpec> specs(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    const std::string name = "s" + std::to_string(i);
    fleet.dirs.push_back(fresh_dir(tag + "_" + name));
    auto transport = std::make_unique<KillSwitchTransport>(fleet.dirs[i],
                                                           checkpoint_every);
    fleet.transports.push_back(transport.get());
    specs[i].name = name;
    specs[i].transport = std::move(transport);
    specs[i].checkpoint_dir = fleet.dirs[i];
  }
  fleet.router = std::make_unique<Router>(std::move(specs), options);
  return fleet;
}

/// Slot owning `session` on a ring of `shards` members, plus the slot of
/// its ring successor (the standby host).
std::pair<int, int> placement(const std::string& session,
                              std::size_t shards) {
  HashRing ring;
  for (std::size_t i = 0; i < shards; ++i) ring.add("s" + std::to_string(i));
  const auto order = ring.owners(session, 2);
  const auto slot = [](const std::string& name) {
    return std::stoi(name.substr(1));
  };
  return {slot(order[0]), order.size() > 1 ? slot(order[1]) : -1};
}

/// A session name homed on `owner` (and, when standby >= 0, whose ring
/// successor is `standby`) on a ring of `shards` members.
std::string session_at(std::size_t shards, int owner, int standby = -1,
                       int salt = 0) {
  for (int i = salt * 1000;; ++i) {
    const std::string name = "sess-" + std::to_string(i);
    const auto [got_owner, got_standby] = placement(name, shards);
    if (got_owner == owner && (standby < 0 || got_standby == standby)) {
      return name;
    }
  }
}

// ---- protocol helpers ------------------------------------------------------

json::Value create_request(const std::string& name, unsigned seed) {
  return json::parse(
      R"({"op":"create","session":")" + name +
      R"(","workload":"gesummv","n_init":6,"n_batch":2,"n_max":18,)"
      R"("trees":8,"pool_size":150,"seed":)" + std::to_string(seed) + "}");
}

json::Value session_request(const std::string& op, const std::string& name) {
  json::Object obj;
  obj.emplace("op", json::Value(op));
  obj.emplace("session", json::Value(name));
  return json::Value(std::move(obj));
}

json::Value tell_request(const std::string& name, const json::Value& levels,
                         double time) {
  json::Object obj;
  obj.emplace("op", json::Value("tell"));
  obj.emplace("session", json::Value(name));
  obj.emplace("levels", levels);
  obj.emplace("time", json::Value(time));
  return json::Value(std::move(obj));
}

std::string canonical(json::Value response) {
  if (response.is_object()) response.as_object().erase("checkpoint");
  return response.dump();
}

template <typename Dispatch>
json::Value call(Dispatch&& dispatch, const json::Value& request) {
  for (int attempt = 0; attempt < 20; ++attempt) {
    json::Value response = dispatch(request);
    if (!response.bool_or("redirected", false)) return response;
  }
  ADD_FAILURE() << "request redirected 20 times: " << request.dump();
  return json::Value();
}

/// Drives one session to completion, recording every canonical response.
template <typename Dispatch>
std::vector<std::string> drive(Dispatch&& dispatch, const std::string& name,
                               unsigned seed) {
  std::vector<std::string> stream;
  const json::Value created = call(dispatch, create_request(name, seed));
  EXPECT_TRUE(created.bool_or("ok", false)) << created.dump();
  stream.push_back(canonical(created));
  const auto workload = workloads::make_workload("gesummv");
  util::Rng measure_rng(
      std::stoull(created.at("measure_seed").as_string()));
  for (;;) {
    const json::Value batch = call(dispatch, session_request("ask", name));
    EXPECT_TRUE(batch.bool_or("ok", false)) << batch.dump();
    stream.push_back(canonical(batch));
    const json::Array& candidates = batch.at("candidates").as_array();
    if (candidates.empty()) break;
    for (const json::Value& candidate : candidates) {
      const auto config =
          service::configuration_from_json(candidate.at("levels"));
      const double t = workload->measure(config, measure_rng, 1);
      const json::Value told =
          call(dispatch, tell_request(name, candidate.at("levels"), t));
      EXPECT_TRUE(told.bool_or("ok", false)) << told.dump();
      stream.push_back(canonical(told));
    }
  }
  stream.push_back(canonical(call(dispatch, session_request("status", name))));
  return stream;
}

std::vector<std::string> drive_direct(const std::string& name,
                                      unsigned seed) {
  service::SessionManager manager;
  return drive(
      [&](const json::Value& request) {
        return service::handle_request(manager, request);
      },
      name, seed);
}

std::vector<std::string> drive_router(Router& router, const std::string& name,
                                      unsigned seed) {
  return drive(
      [&](const json::Value& request) { return router.handle(request); },
      name, seed);
}

void expect_streams_equal(const std::vector<std::string>& got,
                          const std::vector<std::string>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "response " << i;
  }
}

// ---- StandbyTracker units --------------------------------------------------

TEST(StandbyTracker, ArmEnqueueFlushAckLifecycle) {
  StandbyTracker tracker;
  EXPECT_EQ(tracker.state("a"), nullptr);
  EXPECT_EQ(tracker.lag("a"), 0u);

  tracker.arm("a", 2);
  const StandbyState* st = tracker.state("a");
  ASSERT_NE(st, nullptr);
  EXPECT_TRUE(st->valid);
  EXPECT_FALSE(st->stale);
  EXPECT_EQ(st->shard, 2u);

  OpRecord record;
  record.request = R"({"op":"ask","session":"a"})";
  tracker.enqueue("a", record);
  tracker.enqueue("a", record);
  EXPECT_EQ(tracker.lag("a"), 2u);

  const std::vector<OpRecord> outbox = tracker.take_outbox("a");
  EXPECT_EQ(outbox.size(), 2u);
  EXPECT_EQ(tracker.lag("a"), 0u);
  tracker.ack("a", outbox.size());
  EXPECT_EQ(tracker.state("a")->acked_ops, 2u);

  // Enqueue on an untracked session is a silent no-op, not a crash.
  tracker.drop("a");
  tracker.enqueue("a", record);
  EXPECT_EQ(tracker.lag("a"), 0u);
  EXPECT_EQ(tracker.state("a"), nullptr);
}

TEST(StandbyTracker, ReArmClearsStaleness) {
  StandbyTracker tracker;
  tracker.arm("a", 0);
  tracker.mark_stale("a");
  EXPECT_TRUE(tracker.state("a")->stale);
  tracker.arm("a", 1);
  EXPECT_FALSE(tracker.state("a")->stale);
  EXPECT_EQ(tracker.state("a")->shard, 1u);
}

TEST(StandbyTracker, InvalidateShardMarksOnlyItsShadowsStale) {
  StandbyTracker tracker;
  tracker.arm("a", 0);
  tracker.arm("b", 1);
  tracker.arm("c", 0);
  tracker.invalidate_shard(0);
  EXPECT_TRUE(tracker.state("a")->stale);
  EXPECT_FALSE(tracker.state("b")->stale);
  EXPECT_TRUE(tracker.state("c")->stale);
}

// ---- digest / ack verification units ---------------------------------------

TEST(Replication, DigestIgnoresCheckpointPathsOnly) {
  const json::Value a = json::parse(
      R"({"ok":true,"labeled":7,"checkpoint":"/tmp/s0/x.ckpt"})");
  const json::Value b = json::parse(
      R"({"ok":true,"labeled":7,"checkpoint":"/tmp/s1/x.ckpt"})");
  const json::Value c = json::parse(
      R"({"ok":true,"labeled":8,"checkpoint":"/tmp/s0/x.ckpt"})");
  EXPECT_EQ(response_digest(a), response_digest(b));
  EXPECT_NE(response_digest(a), response_digest(c));
}

TEST(Replication, AckVerificationChecksOkDigestAndLabeled) {
  OpRecord record;
  record.request = R"({"op":"tell","session":"a","levels":[1],"time":0.5})";
  const json::Value applied =
      json::parse(R"({"ok":true,"labeled":3,"refit":true,"done":false})");
  record.digest = response_digest(applied);
  record.expect_labeled = 3;

  json::Object good;
  good.emplace("ok", json::Value(true));
  good.emplace("applied", applied);
  EXPECT_TRUE(replicate_ack_matches(record, json::Value(good)));

  // Outer failure, missing applied, inner failure, digest drift, and
  // labeled drift each individually fail verification.
  json::Object outer_bad = good;
  outer_bad["ok"] = json::Value(false);
  EXPECT_FALSE(replicate_ack_matches(record, json::Value(outer_bad)));

  json::Object no_applied;
  no_applied.emplace("ok", json::Value(true));
  EXPECT_FALSE(replicate_ack_matches(record, json::Value(no_applied)));

  json::Object drifted = good;
  drifted["applied"] =
      json::parse(R"({"ok":true,"labeled":3,"refit":false,"done":false})");
  EXPECT_FALSE(replicate_ack_matches(record, json::Value(drifted)));

  OpRecord labeled_only;
  labeled_only.request = record.request;
  labeled_only.expect_labeled = 4;
  EXPECT_FALSE(replicate_ack_matches(labeled_only, json::Value(good)));

  // With no hooks armed, outer+inner ok is enough (checkpoint mirrors).
  OpRecord unarmed;
  unarmed.request = record.request;
  EXPECT_TRUE(replicate_ack_matches(unarmed, json::Value(good)));
}

// ---- protocol-level shadow lifecycle ---------------------------------------

TEST(Replication, ReplicatedShadowIsHiddenUntilPromoted) {
  const std::string dir = fresh_dir("shadow_lifecycle");
  service::SessionManager primary;
  service::SessionManager standby;

  const json::Value created =
      service::handle_request(primary, create_request("shadowed", 5));
  ASSERT_TRUE(created.bool_or("ok", false)) << created.dump();
  primary.checkpoint_to_file("shadowed", dir + "/shadowed.ckpt");

  // Replicate a resume record: the shadow materializes but stays hidden.
  json::Object wrapped;
  wrapped.emplace("op", json::Value("replicate"));
  wrapped.emplace("session", json::Value("shadowed"));
  wrapped.emplace("record",
                  json::parse(R"({"op":"resume","session":"shadowed",)"
                              R"("path":")" + dir + R"(/shadowed.ckpt"})"));
  const json::Value replicated =
      service::handle_request(standby, json::Value(wrapped));
  ASSERT_TRUE(replicated.bool_or("ok", false)) << replicated.dump();
  EXPECT_TRUE(replicated.at("applied").bool_or("ok", false));
  EXPECT_TRUE(standby.is_shadow("shadowed"));

  const json::Value listed =
      service::handle_request(standby, json::parse(R"({"op":"list"})"));
  EXPECT_TRUE(listed.at("sessions").as_array().empty()) << listed.dump();
  const json::Value health =
      service::handle_request(standby, json::parse(R"({"op":"health"})"));
  EXPECT_EQ(health.at("health").number_or("sessions_shadow", -1.0), 1.0);

  // Promotion flips it into an ordinary serving session.
  const json::Value promoted = service::handle_request(
      standby, session_request("promote", "shadowed"));
  ASSERT_TRUE(promoted.bool_or("ok", false)) << promoted.dump();
  EXPECT_FALSE(standby.is_shadow("shadowed"));
  EXPECT_EQ(service::handle_request(standby, json::parse(R"({"op":"list"})"))
                .at("sessions")
                .as_array()
                .size(),
            1u);
}

TEST(Replication, ExportImportRoundTripsAcrossManagers) {
  service::SessionManager source;
  service::SessionManager target;
  ASSERT_TRUE(service::handle_request(source, create_request("mover", 9))
                  .bool_or("ok", false));
  // Leave pending asks outstanding: the image must carry them.
  const json::Value asked =
      service::handle_request(source, session_request("ask", "mover"));
  ASSERT_TRUE(asked.bool_or("ok", false));

  // Chunked export (tiny max_bytes forces the multi-chunk path).
  std::string image;
  std::size_t offset = 0;
  for (int guard = 0; guard < 10000; ++guard) {
    json::Object req;
    req.emplace("op", json::Value("export"));
    req.emplace("session", json::Value("mover"));
    req.emplace("offset", json::Value(offset));
    req.emplace("max_bytes", json::Value(static_cast<std::size_t>(512)));
    const json::Value chunk =
        service::handle_request(source, json::Value(std::move(req)));
    ASSERT_TRUE(chunk.bool_or("ok", false)) << chunk.dump();
    image += chunk.at("chunk").as_string();
    offset = image.size();
    if (chunk.bool_or("eof", true)) break;
  }
  EXPECT_GT(image.size(), 512u);  // really went through multiple chunks

  // Stage in two pieces, commit, and verify the copy answers identically.
  const std::size_t half = image.size() / 2;
  for (const std::string& piece :
       {image.substr(0, half), image.substr(half)}) {
    json::Object req;
    req.emplace("op", json::Value("import"));
    req.emplace("session", json::Value("mover"));
    req.emplace("chunk", json::Value(piece));
    ASSERT_TRUE(service::handle_request(target, json::Value(std::move(req)))
                    .bool_or("ok", false));
  }
  json::Object commit;
  commit.emplace("op", json::Value("import"));
  commit.emplace("session", json::Value("mover"));
  commit.emplace("commit", json::Value(true));
  const json::Value committed =
      service::handle_request(target, json::Value(std::move(commit)));
  ASSERT_TRUE(committed.bool_or("ok", false)) << committed.dump();

  const std::string src_status = canonical(
      service::handle_request(source, session_request("status", "mover")));
  const std::string dst_status = canonical(
      service::handle_request(target, session_request("status", "mover")));
  EXPECT_EQ(src_status, dst_status);
}

// ---- warm promotion --------------------------------------------------------

TEST(Replication, WarmPromotionKeepsStreamBitIdentical) {
  RouterOptions options;
  options.standby = true;
  options.replication_lag_max = 2;
  Fleet fleet = make_fleet("promote", 2, options);
  const std::string name = session_at(2, 0, 1);
  // The primary applies and auto-checkpoints the 5th tell, then dies
  // before answering — the hardest failover shape (synthesize-vs-replay).
  fleet.transports[0]->arm_recv_kill(R"("op":"tell")", 5);

  const auto via_router = drive_router(*fleet.router, name, 7);
  const auto direct = drive_direct(name, 7);
  expect_streams_equal(via_router, direct);
  EXPECT_EQ(fleet.router->stats().failovers, 1u);
  EXPECT_EQ(fleet.router->stats().promotions, 1u);
  EXPECT_EQ(fleet.router->stats().rehomes, 0u);
  EXPECT_EQ(fleet.router->stats().standby_fallbacks, 0u);
  EXPECT_GT(fleet.router->stats().replicated_ops, 0u);
  EXPECT_FALSE(fleet.router->shard_up("s0"));
}

TEST(Replication, PromotionNeverSynthesizesUnreplicatedTells) {
  // The interrupted tell was never acked, so it was never streamed: the
  // promoted shadow sits exactly at the ack horizon and the router must
  // REPLAY the tell (apply it once on the shadow), never synthesize.
  RouterOptions options;
  options.standby = true;
  Fleet fleet = make_fleet("promote_replay", 2, options);
  const std::string name = session_at(2, 1, 0);
  fleet.transports[1]->arm_recv_kill(R"("op":"tell")", 4);

  const auto via_router = drive_router(*fleet.router, name, 13);
  const auto direct = drive_direct(name, 13);
  expect_streams_equal(via_router, direct);
  EXPECT_EQ(fleet.router->stats().promotions, 1u);
  EXPECT_EQ(fleet.router->stats().synthesized, 0u);
  EXPECT_EQ(fleet.router->stats().replays, 1u);
}

TEST(Replication, DeadStandbyFallsBackToColdRehome) {
  // 3 shards: the primary dies mid-tell and the standby dies on the very
  // promote request — the worst failover shape. Promotion is impossible,
  // so failover must fall back to the PR-6 cold checkpoint path on the
  // remaining survivor — still bit-identical (the interrupted tell was
  // durably applied on the primary, so the cold path must synthesize it).
  RouterOptions options;
  options.standby = true;
  options.replication_lag_max = 1;  // every acked op flushes immediately
  Fleet fleet = make_fleet("stale", 3, options);
  const std::string name = session_at(3, 0, 1);
  fleet.transports[1]->arm_send_kill(R"("op":"promote")", 1);
  fleet.transports[0]->arm_recv_kill(R"("op":"tell")", 6);

  const auto via_router = drive_router(*fleet.router, name, 23);
  const auto direct = drive_direct(name, 23);
  expect_streams_equal(via_router, direct);
  EXPECT_EQ(fleet.router->stats().promotions, 0u);
  EXPECT_GE(fleet.router->stats().standby_fallbacks, 1u);
  EXPECT_GE(fleet.router->stats().rehomes, 1u);
  EXPECT_EQ(fleet.router->stats().failovers, 2u);
  EXPECT_FALSE(fleet.router->shard_up("s0"));
  EXPECT_FALSE(fleet.router->shard_up("s1"));
  EXPECT_TRUE(fleet.router->shard_up("s2"));
}

TEST(Replication, ReplayLogCapForcesCheckpointsAndSurvivesPromotion) {
  // Workers that checkpoint lazily (every 100 tells) leave acked asks
  // undurable; the replay log holds one entry per ask since the last
  // durable point, and the configured cap must bound it by forcing an
  // explicit checkpoint (mirrored to the standby) when exceeded.
  RouterOptions options;
  options.standby = true;
  options.max_replay_log = 2;
  Fleet fleet = make_fleet("replay_cap", 2, options, /*checkpoint_every=*/100);
  Router& router = *fleet.router;
  const std::string name = session_at(2, 0, 1);
  const json::Value created = router.handle(create_request(name, 21));
  ASSERT_TRUE(created.bool_or("ok", false)) << created.dump();
  const auto workload = workloads::make_workload("gesummv");
  util::Rng measure_rng(std::stoull(created.at("measure_seed").as_string()));

  // Three ask/tell rounds with no durable tell checkpoint in between: the
  // third ask trips the cap and forces a checkpoint, clearing the log.
  for (int round = 0; round < 3; ++round) {
    const json::Value batch = router.handle(session_request("ask", name));
    ASSERT_TRUE(batch.bool_or("ok", false)) << batch.dump();
    if (round == 2) break;  // leave the capping ask's candidates pending
    for (const json::Value& candidate : batch.at("candidates").as_array()) {
      const auto config =
          service::configuration_from_json(candidate.at("levels"));
      const double t = workload->measure(config, measure_rng, 1);
      ASSERT_TRUE(router.handle(tell_request(name, candidate.at("levels"), t))
                      .bool_or("ok", false));
    }
  }
  const json::Value health = router.handle(json::parse(R"({"op":"health"})"));
  const json::Value& replication = health.at("health").at("replication");
  EXPECT_TRUE(replication.bool_or("enabled", false));
  EXPECT_EQ(replication.number_or("max_replay_log", 0.0), 2.0);
  const json::Array& sessions = replication.at("sessions").as_array();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].string_or("session", ""), name);
  EXPECT_EQ(sessions[0].string_or("home", ""), "s0");
  EXPECT_EQ(sessions[0].string_or("standby", ""), "s1");
  EXPECT_FALSE(sessions[0].bool_or("stale", true));
  EXPECT_LE(sessions[0].number_or("replay_log_depth", 99.0), 2.0);

  // The capped session still promotes warm with its outstanding asks.
  fleet.transports[0]->arm_send_kill(R"("op":"status")", 1);
  const json::Value status =
      call([&](const json::Value& r) { return router.handle(r); },
           session_request("status", name));
  ASSERT_TRUE(status.bool_or("ok", false)) << status.dump();
  EXPECT_EQ(router.stats().promotions, 1u);
  EXPECT_EQ(status.at("status").number_or("pending", -1.0), 2.0);
}

TEST(Replication, StandbyShadowsAreInvisibleToClients) {
  RouterOptions options;
  options.standby = true;
  Fleet fleet = make_fleet("hidden", 2, options);
  const std::string name = session_at(2, 0, 1);
  ASSERT_TRUE(
      fleet.router->handle(create_request(name, 3)).bool_or("ok", false));

  // The shadow physically exists on s1 (its bootstrap checkpoint proves
  // it), yet the merged list shows exactly one session.
  const json::Value listed =
      fleet.router->handle(json::parse(R"({"op":"list"})"));
  ASSERT_TRUE(listed.bool_or("ok", false));
  EXPECT_EQ(listed.at("sessions").as_array().size(), 1u);
  EXPECT_TRUE(fs::exists(fs::path(fleet.dirs[1]) / (name + ".ckpt")));
}

// ---- ring growth -----------------------------------------------------------

/// Adds a fresh in-process shard named `name` to the fleet's router.
json::Value grow(Fleet& fleet, const std::string& name) {
  const std::string dir = fresh_dir("grow_" + name);
  ShardSpec spec;
  spec.name = name;
  spec.checkpoint_dir = dir;
  spec.transport = std::make_unique<service::InProcessTransport>(
      nullptr, service::ServiceLimits{}, dir, 1);
  return fleet.router->add_shard(std::move(spec));
}

TEST(Growth, MidTrafficGrowKeepsStreamsBitIdentical) {
  // Several sessions driven halfway, the ring grows (migrating whichever
  // sessions the new shard claims), then the drives finish. Every stream
  // must match a never-growing control fleet bit for bit.
  Fleet fleet = make_fleet("grow_a", 2);
  Fleet control = make_fleet("grow_b", 2);
  const auto workload = workloads::make_workload("gesummv");

  struct Driven {
    std::string name;
    util::Rng rng{0};
    bool done = false;
  };
  std::vector<Driven> driven;
  for (int i = 0; i < 4; ++i) {
    Driven d;
    d.name = "grow-sess-" + std::to_string(i);
    driven.push_back(std::move(d));
  }

  std::vector<std::vector<std::string>> streams(2);  // [fleet, control]
  const auto step =
      [&](Router& router, std::vector<std::string>& stream, Driven& d,
          bool init) {
        if (d.done) return;
        if (init) {
          const json::Value created =
              router.handle(create_request(d.name, 77));
          ASSERT_TRUE(created.bool_or("ok", false)) << created.dump();
          stream.push_back(canonical(created));
          d.rng = util::Rng(
              std::stoull(created.at("measure_seed").as_string()));
          return;
        }
        const json::Value batch =
            router.handle(session_request("ask", d.name));
        ASSERT_TRUE(batch.bool_or("ok", false)) << batch.dump();
        stream.push_back(canonical(batch));
        const json::Array& candidates = batch.at("candidates").as_array();
        if (candidates.empty()) {
          d.done = true;
          return;
        }
        for (const json::Value& candidate : candidates) {
          const auto config =
              service::configuration_from_json(candidate.at("levels"));
          const double t = workload->measure(config, d.rng, 1);
          const json::Value told = router.handle(
              tell_request(d.name, candidate.at("levels"), t));
          ASSERT_TRUE(told.bool_or("ok", false)) << told.dump();
          stream.push_back(canonical(told));
        }
      };

  // RNG streams must advance identically in both fleets, so run the same
  // schedule twice with independent Driven state.
  for (int run = 0; run < 2; ++run) {
    Router& router = run == 0 ? *fleet.router : *control.router;
    std::vector<Driven> local = driven;
    // Halfway: create + two ask/tell rounds.
    for (Driven& d : local) step(router, streams[run], d, true);
    for (int round = 0; round < 2; ++round) {
      for (Driven& d : local) step(router, streams[run], d, false);
    }
    if (run == 0) {
      const json::Value grown = grow(fleet, "s2");
      ASSERT_TRUE(grown.bool_or("ok", false)) << grown.dump();
      EXPECT_GE(grown.number_or("migrated", -1.0), 1.0);
      EXPECT_TRUE(fleet.router->ring().contains("s2"));
      EXPECT_EQ(fleet.router->stats().grows, 1u);
    }
    // Finish every session.
    for (int guard = 0; guard < 100; ++guard) {
      bool all_done = true;
      for (Driven& d : local) {
        step(router, streams[run], d, false);
        all_done = all_done && d.done;
      }
      if (all_done) break;
    }
    for (Driven& d : local) {
      streams[run].push_back(
          canonical(router.handle(session_request("status", d.name))));
    }
  }
  expect_streams_equal(streams[0], streams[1]);
  EXPECT_GE(fleet.router->stats().migrated_sessions, 1u);
}

TEST(Growth, GrowRespectsMinimalRemappingOnTheLiveRouter) {
  // Only the sessions the grown ring assigns to the new shard migrate;
  // everything else keeps its home (checkpoint dirs prove placement).
  Fleet fleet = make_fleet("grow_minimal", 2);
  std::vector<std::string> names;
  for (int i = 0; i < 6; ++i) {
    names.push_back("min-sess-" + std::to_string(i));
    ASSERT_TRUE(fleet.router->handle(create_request(names.back(), 50 + i))
                    .bool_or("ok", false));
  }
  HashRing before;
  before.add("s0");
  before.add("s1");
  HashRing after = before;
  after.add_node("s2");

  ASSERT_TRUE(grow(fleet, "s2").bool_or("ok", false));
  std::uint64_t expected_moves = 0;
  for (const std::string& name : names) {
    if (after.owner(name) == "s2") ++expected_moves;
    // Post-grow placement must match the pure-ring prediction; status is
    // served from the predicted home (no redirect, no error).
    const json::Value status =
        fleet.router->handle(session_request("status", name));
    EXPECT_TRUE(status.bool_or("ok", false)) << status.dump();
  }
  EXPECT_EQ(fleet.router->stats().migrated_sessions, expected_moves);
}

TEST(Growth, DuplicateAndUnreachableShardsAreRefused) {
  Fleet fleet = make_fleet("grow_refuse", 2);
  const json::Value dup = grow(fleet, "s0");
  EXPECT_FALSE(dup.bool_or("ok", true));
  EXPECT_NE(dup.string_or("error", "").find("duplicate"), std::string::npos);

  ShardSpec no_transport;
  no_transport.name = "s9";
  no_transport.checkpoint_dir = fresh_dir("grow_nt");
  const json::Value refused =
      fleet.router->add_shard(std::move(no_transport));
  EXPECT_FALSE(refused.bool_or("ok", true));
  EXPECT_EQ(fleet.router->stats().grows, 0u);
  EXPECT_FALSE(fleet.router->ring().contains("s9"));
}

TEST(Growth, GrownShardParticipatesInStandbyReplication) {
  // After growth the rearm pass must cover migrated sessions: kill their
  // new home and expect a warm promotion, not a cold re-home.
  RouterOptions options;
  options.standby = true;
  Fleet fleet = make_fleet("grow_standby", 2, options);
  // Three names the grown 3-member ring assigns to s2 (they start on
  // s0/s1 and must migrate) plus three that stay homed on s0.
  std::vector<std::string> names;
  for (int i = 0; i < 3; ++i) names.push_back(session_at(3, 2, -1, i + 1));
  for (int i = 0; i < 3; ++i) names.push_back(session_at(3, 0, -1, i + 1));
  for (std::size_t i = 0; i < names.size(); ++i) {
    ASSERT_TRUE(
        fleet.router->handle(create_request(names[i], 60 + static_cast<int>(i)))
            .bool_or("ok", false));
  }
  ASSERT_TRUE(grow(fleet, "s2").bool_or("ok", false));
  ASSERT_GE(fleet.router->stats().migrated_sessions, 1u);

  // Kill s0 on its next session op; every session homed there must come
  // back warm (promotion) or cold (rehome) — but never lost.
  fleet.transports[0]->arm_send_kill(R"("op":"status")", 1);
  for (const std::string& name : names) {
    const json::Value status =
        call([&](const json::Value& r) { return fleet.router->handle(r); },
             session_request("status", name));
    EXPECT_TRUE(status.bool_or("ok", false)) << status.dump();
  }
  EXPECT_GE(fleet.router->stats().promotions, 1u);
}

}  // namespace
}  // namespace pwu::router
