#include "space/design.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pwu::space {
namespace {

TEST(LatinHypercube, ProducesRequestedCount) {
  ParameterSpace s;
  s.add(Parameter::ordinal("t", {1, 16, 32, 64, 128, 256, 512}));
  s.add(Parameter::int_range("u", 1, 31));
  util::Rng rng(1);
  const auto design = latin_hypercube(s, 70, rng);
  EXPECT_EQ(design.size(), 70u);
  for (const auto& c : design) EXPECT_TRUE(s.contains(c));
}

TEST(LatinHypercube, StratifiesEachDimension) {
  // With count a multiple of the level count, every level of every
  // dimension appears exactly count/levels times — the defining LHS
  // property on a discrete grid.
  ParameterSpace s;
  s.add(Parameter::ordinal("a", {0, 1, 2, 3, 4}));
  s.add(Parameter::ordinal("b", {0, 1}));
  util::Rng rng(2);
  const std::size_t count = 40;
  const auto design = latin_hypercube(s, count, rng);

  std::vector<int> counts_a(5, 0);
  std::vector<int> counts_b(2, 0);
  for (const auto& c : design) {
    ++counts_a[c.level(0)];
    ++counts_b[c.level(1)];
  }
  for (int c : counts_a) EXPECT_EQ(c, 8);
  for (int c : counts_b) EXPECT_EQ(c, 20);
}

TEST(LatinHypercube, CoversLevelsEvenWithSmallCount) {
  // count == levels: each level appears exactly once per dimension.
  ParameterSpace s;
  s.add(Parameter::ordinal("a", {0, 1, 2, 3, 4, 5, 6}));
  util::Rng rng(3);
  const auto design = latin_hypercube(s, 7, rng);
  std::vector<int> counts(7, 0);
  for (const auto& c : design) ++counts[c.level(0)];
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(LatinHypercube, DimensionsShuffledIndependently) {
  // If columns were shuffled together, level(0) would determine level(1).
  ParameterSpace s;
  s.add(Parameter::ordinal("a", {0, 1, 2, 3, 4, 5, 6, 7}));
  s.add(Parameter::ordinal("b", {0, 1, 2, 3, 4, 5, 6, 7}));
  util::Rng rng(4);
  const auto design = latin_hypercube(s, 64, rng);
  int diagonal = 0;
  for (const auto& c : design) {
    if (c.level(0) == c.level(1)) ++diagonal;
  }
  EXPECT_LT(diagonal, 32);  // perfectly coupled columns would give 64
}

TEST(LatinHypercube, DeterministicUnderSeed) {
  ParameterSpace s;
  s.add(Parameter::int_range("x", 0, 9));
  util::Rng rng_a(5);
  util::Rng rng_b(5);
  EXPECT_EQ(latin_hypercube(s, 20, rng_a), latin_hypercube(s, 20, rng_b));
}

}  // namespace
}  // namespace pwu::space
