// Application-model physics: the kripke and hypre simulators must show the
// qualitative trade-offs the real codes exhibit.

#include <gtest/gtest.h>

#include <cmath>

#include "workloads/hypre_model.hpp"
#include "workloads/kripke_model.hpp"

namespace pwu::workloads {
namespace {

space::Configuration with_param(const space::ParameterSpace& s,
                                space::Configuration base,
                                const std::string& name, std::uint32_t level) {
  base.set_level(s.index_of(name), level);
  return base;
}

class KripkeTest : public ::testing::Test {
 protected:
  WorkloadPtr kripke_ = make_kripke();
  const space::ParameterSpace& space_ = kripke_->space();

  space::Configuration base_config() {
    // layout DGZ, gset 4, dset 16, sweep, 16 procs.
    space::Configuration c(std::vector<std::uint32_t>(space_.num_params(), 0));
    c = with_param(space_, c, "layout", 0);
    c = with_param(space_, c, "gset", 2);
    c = with_param(space_, c, "dset", 1);
    c = with_param(space_, c, "pmethod", 0);
    c = with_param(space_, c, "nprocs", 4);
    return c;
  }
};

TEST_F(KripkeTest, SpaceMatchesTableII) {
  EXPECT_EQ(space_.num_params(), 5u);
  EXPECT_EQ(space_.param(space_.index_of("layout")).num_levels(), 6u);
  EXPECT_EQ(space_.param(space_.index_of("gset")).num_levels(), 8u);
  EXPECT_EQ(space_.param(space_.index_of("dset")).num_levels(), 3u);
  EXPECT_EQ(space_.param(space_.index_of("pmethod")).num_levels(), 2u);
  EXPECT_EQ(space_.param(space_.index_of("nprocs")).num_levels(), 8u);
  EXPECT_EQ(static_cast<long long>(space_.size()), 6LL * 8 * 3 * 2 * 8);
}

TEST_F(KripkeTest, StrongScalingHelpsInitially) {
  // 1 -> 16 processes on a compute-dominated problem must speed it up.
  const auto p1 = with_param(space_, base_config(), "nprocs", 0);
  const auto p16 = with_param(space_, base_config(), "nprocs", 4);
  EXPECT_LT(kripke_->base_time(p16), kripke_->base_time(p1));
}

TEST_F(KripkeTest, ScalingEventuallySaturates) {
  // Going from 64 to 128 ranks (beyond the 28-core node, more pipeline
  // stages) must give much less than the ideal 2x.
  const auto p64 = with_param(space_, base_config(), "nprocs", 6);
  const auto p128 = with_param(space_, base_config(), "nprocs", 7);
  const double speedup =
      kripke_->base_time(p64) / kripke_->base_time(p128);
  EXPECT_LT(speedup, 1.7);
}

TEST_F(KripkeTest, ZoneOutermostLayoutsAreSlower) {
  const auto dgz = with_param(space_, base_config(), "layout", 0);
  const auto zgd = with_param(space_, base_config(), "layout", 5);
  EXPECT_LT(kripke_->base_time(dgz), kripke_->base_time(zgd));
}

TEST_F(KripkeTest, BlockJacobiTradesPipelineForIterations) {
  // On one rank there is no pipeline to win back: bj's extra iterations
  // must make it slower than sweep.
  auto single = with_param(space_, base_config(), "nprocs", 0);
  const auto sweep1 = with_param(space_, single, "pmethod", 0);
  const auto bj1 = with_param(space_, single, "pmethod", 1);
  EXPECT_LT(kripke_->base_time(sweep1), kripke_->base_time(bj1));
}

TEST_F(KripkeTest, OversizedGsetWastesPadding) {
  // gset=128 > 64 groups: degenerate group sets must not be free.
  const auto g4 = with_param(space_, base_config(), "gset", 2);
  const auto g128 = with_param(space_, base_config(), "gset", 7);
  EXPECT_GT(kripke_->base_time(g128), kripke_->base_time(g4));
}

class HypreTest : public ::testing::Test {
 protected:
  WorkloadPtr hypre_ = make_hypre();
  const space::ParameterSpace& space_ = hypre_->space();

  space::Configuration base_config() {
    space::Configuration c(std::vector<std::uint32_t>(space_.num_params(), 0));
    c = with_param(space_, c, "solver", 1);      // AMG-PCG
    c = with_param(space_, c, "coarsening", 0);  // pmis
    c = with_param(space_, c, "smtype", 3);      // hybrid GS default
    c = with_param(space_, c, "nprocs", 2);      // 32 ranks
    return c;
  }
};

TEST_F(HypreTest, SpaceMatchesTableIII) {
  EXPECT_EQ(space_.num_params(), 4u);
  EXPECT_EQ(space_.param(space_.index_of("solver")).num_levels(), 24u);
  EXPECT_EQ(space_.param(space_.index_of("coarsening")).num_levels(), 2u);
  EXPECT_EQ(space_.param(space_.index_of("smtype")).num_levels(), 9u);
  EXPECT_EQ(space_.param(space_.index_of("nprocs")).num_levels(), 7u);
  // #process ordinal starts at 8 (Table III).
  EXPECT_DOUBLE_EQ(space_.param(space_.index_of("nprocs")).numeric_value(0),
                   8.0);
}

TEST_F(HypreTest, SolverParameterIsCategorical) {
  EXPECT_TRUE(space_.param(space_.index_of("solver")).is_categorical());
  EXPECT_TRUE(space_.param(space_.index_of("coarsening")).is_categorical());
}

TEST_F(HypreTest, AmgPcgBeatsDiagonalScaledCgOnLaplacian) {
  const auto amg = with_param(space_, base_config(), "solver", 1);
  const auto ds = with_param(space_, base_config(), "solver", 2);
  EXPECT_LT(hypre_->base_time(amg), hypre_->base_time(ds));
}

TEST_F(HypreTest, SmootherIrrelevantForNonAmgSolvers) {
  // DS-PCG has no AMG hierarchy: smtype must be an inactive parameter.
  auto ds = with_param(space_, base_config(), "solver", 2);
  const auto sm0 = with_param(space_, ds, "smtype", 0);
  const auto sm7 = with_param(space_, ds, "smtype", 7);
  EXPECT_DOUBLE_EQ(hypre_->base_time(sm0), hypre_->base_time(sm7));
}

TEST_F(HypreTest, SmootherMattersForAmgSolvers) {
  const auto jacobi = with_param(space_, base_config(), "smtype", 0);
  const auto cheby = with_param(space_, base_config(), "smtype", 7);
  EXPECT_NE(hypre_->base_time(jacobi), hypre_->base_time(cheby));
}

TEST_F(HypreTest, HmisCoarseningChangesAmgCost) {
  const auto pmis = with_param(space_, base_config(), "coarsening", 0);
  const auto hmis = with_param(space_, base_config(), "coarsening", 1);
  EXPECT_NE(hypre_->base_time(pmis), hypre_->base_time(hmis));
  // And it must not affect a non-AMG solver.
  auto ds = with_param(space_, base_config(), "solver", 2);
  EXPECT_DOUBLE_EQ(
      hypre_->base_time(with_param(space_, ds, "coarsening", 0)),
      hypre_->base_time(with_param(space_, ds, "coarsening", 1)));
}

TEST_F(HypreTest, ScalingHelpsThenSaturates) {
  const auto p8 = with_param(space_, base_config(), "nprocs", 0);
  const auto p64 = with_param(space_, base_config(), "nprocs", 3);
  const auto p512 = with_param(space_, base_config(), "nprocs", 6);
  EXPECT_LT(hypre_->base_time(p64), hypre_->base_time(p8));
  // 64 -> 512: an 8x rank increase must fall well short of 8x speedup.
  EXPECT_GT(hypre_->base_time(p512) * 4.0, hypre_->base_time(p64));
}

TEST_F(HypreTest, ApplicationTimesAreSecondsScale) {
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const double t = hypre_->base_time(space_.random_config(rng));
    EXPECT_GT(t, 0.1);
    EXPECT_LT(t, 600.0);
  }
}

}  // namespace
}  // namespace pwu::workloads
