#include "util/ascii_chart.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pwu::util {
namespace {

ChartSeries line(const char* label, char marker) {
  ChartSeries s;
  s.label = label;
  s.marker = marker;
  for (int i = 0; i <= 10; ++i) {
    s.x.push_back(i);
    s.y.push_back(i * i);
  }
  return s;
}

TEST(AsciiChart, RendersSeriesMarkersAndLegend) {
  ChartOptions opt;
  opt.title = "test chart";
  const std::string out = render_chart({line("quadratic", '*')}, opt);
  EXPECT_NE(out.find("test chart"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("quadratic"), std::string::npos);
}

TEST(AsciiChart, MultipleSeriesAllInLegend) {
  ChartOptions opt;
  const std::string out =
      render_chart({line("a", 'a'), line("b", 'b')}, opt);
  EXPECT_NE(out.find("'a' a"), std::string::npos);
  EXPECT_NE(out.find("'b' b"), std::string::npos);
}

TEST(AsciiChart, EmptyDataDoesNotCrash) {
  ChartOptions opt;
  const std::string out = render_chart({ChartSeries{}}, opt);
  EXPECT_NE(out.find("no finite data"), std::string::npos);
}

TEST(AsciiChart, ConstantSeriesHandled) {
  ChartSeries s;
  s.label = "flat";
  s.x = {1.0, 2.0, 3.0};
  s.y = {5.0, 5.0, 5.0};
  const std::string out = render_chart({s}, ChartOptions{});
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiChart, LogScaleMentionedInLabels) {
  ChartOptions opt;
  opt.log_y = true;
  opt.y_label = "rmse";
  const std::string out = render_chart({line("s", '*')}, opt);
  EXPECT_NE(out.find("log scale"), std::string::npos);
}

TEST(AsciiChart, NonFinitePointsAreSkipped) {
  ChartSeries s;
  s.label = "partial";
  s.x = {1.0, 2.0, 3.0};
  s.y = {1.0, std::nan(""), 3.0};
  const std::string out = render_chart({s}, ChartOptions{});
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiChart, ScatterShowsBothClouds) {
  ChartSeries bg;
  bg.label = "pool";
  bg.marker = '.';
  ChartSeries fg;
  fg.label = "selected";
  fg.marker = 'x';
  for (int i = 0; i < 30; ++i) {
    bg.x.push_back(i % 7);
    bg.y.push_back(i % 5);
    if (i % 3 == 0) {
      fg.x.push_back(i % 7 + 0.5);
      fg.y.push_back(i % 5 + 0.5);
    }
  }
  const std::string out = render_scatter(bg, fg, ChartOptions{});
  EXPECT_NE(out.find('.'), std::string::npos);
  EXPECT_NE(out.find('x'), std::string::npos);
}

TEST(AsciiChart, RespectsMinimumDimensions) {
  ChartOptions opt;
  opt.width = 1;   // below the floor
  opt.height = 1;  // below the floor
  const std::string out = render_chart({line("s", '*')}, opt);
  EXPECT_GT(out.size(), 50u);  // still renders a usable grid
}

}  // namespace
}  // namespace pwu::util
