#include "core/convergence.hpp"

#include <gtest/gtest.h>

namespace pwu::core {
namespace {

std::vector<IterationRecord> trace_from(std::vector<double> rmse,
                                        std::size_t samples_step = 10) {
  std::vector<IterationRecord> trace;
  for (std::size_t i = 0; i < rmse.size(); ++i) {
    IterationRecord rec;
    rec.num_samples = (i + 1) * samples_step;
    rec.top_alpha_rmse = {rmse[i]};
    trace.push_back(rec);
  }
  return trace;
}

ConvergenceCriterion loose() {
  ConvergenceCriterion c;
  c.window = 3;
  c.min_relative_improvement = 0.05;
  c.min_samples = 0;
  return c;
}

TEST(Convergence, FlatTailDetected) {
  // Sharp improvement, then a flat tail: the detector must fire once the
  // window covers only the flat part.
  const auto trace =
      trace_from({10.0, 5.0, 2.0, 1.0, 0.99, 0.985, 0.984, 0.983});
  const std::size_t point = convergence_point(trace, loose());
  ASSERT_LT(point, trace.size());
  EXPECT_GE(point, 4u);  // not during the steep descent
}

TEST(Convergence, SteadyImprovementNeverConverges) {
  // 20% improvement per step throughout.
  std::vector<double> rmse;
  double v = 10.0;
  for (int i = 0; i < 10; ++i) {
    rmse.push_back(v);
    v *= 0.8;
  }
  const auto trace = trace_from(rmse);
  EXPECT_EQ(convergence_point(trace, loose()), trace.size());
}

TEST(Convergence, MinSamplesDelaysDetection) {
  const auto trace = trace_from({1.0, 1.0, 1.0, 1.0, 1.0, 1.0});
  ConvergenceCriterion c = loose();
  c.min_samples = 45;  // records carry 10, 20, ..., 60 samples
  const std::size_t point = convergence_point(trace, c);
  ASSERT_LT(point, trace.size());
  EXPECT_GE(trace[point].num_samples, 45u);
}

TEST(Convergence, ShortTraceNeverConverges) {
  const auto trace = trace_from({1.0, 1.0});
  EXPECT_EQ(convergence_point(trace, loose()), trace.size());
}

TEST(Convergence, NoiseBumpsDoNotResetDetection) {
  // Converged level with noisy oscillation — windowed *best* comparison
  // must still fire.
  const auto trace =
      trace_from({5.0, 2.0, 1.0, 1.05, 0.98, 1.1, 0.99, 1.02});
  EXPECT_LT(convergence_point(trace, loose()), trace.size());
}

TEST(Convergence, SampleCountHelper) {
  const auto converged =
      trace_from({10.0, 1.0, 1.0, 1.0, 1.0, 1.0});
  EXPECT_GT(converged_sample_count(converged, loose()), 0u);
  std::vector<double> improving;
  double v = 8.0;
  for (int i = 0; i < 8; ++i) {
    improving.push_back(v);
    v *= 0.7;
  }
  EXPECT_EQ(converged_sample_count(trace_from(improving), loose()), 0u);
}

TEST(Convergence, Validation) {
  const auto trace = trace_from({1.0, 1.0, 1.0, 1.0});
  ConvergenceCriterion c = loose();
  c.window = 0;
  EXPECT_THROW(convergence_point(trace, c), std::invalid_argument);
  EXPECT_THROW(convergence_point(trace, loose(), /*alpha_index=*/5),
               std::out_of_range);
}

TEST(Convergence, PaperScaleSanity) {
  // A curve shaped like the paper's Fig. 2 panels (steep drop then slow
  // tail, evaluations every 25 samples to 500) converges in the last
  // third of the budget — consistent with the paper's "begins to converge
  // when collecting about 500 samples" reading at their scale.
  std::vector<double> rmse;
  for (int i = 1; i <= 40; ++i) {
    rmse.push_back(1.0 / static_cast<double>(i * i) + 0.01);
  }
  const auto trace = trace_from(rmse, 12);  // evaluations up to 480 samples
  ConvergenceCriterion c;
  c.window = 4;
  c.min_relative_improvement = 0.02;
  c.min_samples = 100;
  const std::size_t point = convergence_point(trace, c);
  ASSERT_LT(point, trace.size());
  EXPECT_GT(trace[point].num_samples, 200u);
}

}  // namespace
}  // namespace pwu::core
