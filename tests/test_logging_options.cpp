#include "util/logging.hpp"
#include "util/options.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace pwu::util {
namespace {

TEST(Logging, ParseLogLevelNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("garbage"), LogLevel::kInfo);
}

TEST(Logging, SetLevelOverrides) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(before);
}

TEST(Logging, StreamApiDoesNotCrash) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);  // silence the output below
  log_info() << "value=" << 42 << " name=" << "test";
  log_debug() << "below threshold";
  set_log_level(before);
}

class OptionsEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* name :
         {"PWU_FULL", "PWU_REPEATS", "PWU_NMAX", "PWU_NINIT", "PWU_POOL",
          "PWU_TEST", "PWU_TREES", "PWU_EVAL_EVERY", "PWU_SEED", "PWU_OUT"}) {
      unsetenv(name);
    }
  }
  void TearDown() override { SetUp(); }
};

TEST_F(OptionsEnvTest, DefaultsAreCiScale) {
  const BenchOptions opts = BenchOptions::from_env();
  EXPECT_FALSE(opts.full);
  EXPECT_EQ(opts.n_init, 10u);
  EXPECT_GT(opts.n_max, opts.n_init);
  EXPECT_GT(opts.pool_size, opts.n_max);
  EXPECT_TRUE(opts.out_dir.empty());
}

TEST_F(OptionsEnvTest, FullFlagUpgradesToPaperScale) {
  setenv("PWU_FULL", "1", 1);
  const BenchOptions opts = BenchOptions::from_env();
  EXPECT_TRUE(opts.full);
  EXPECT_EQ(opts.repeats, 10u);
  EXPECT_EQ(opts.n_max, 500u);
  EXPECT_EQ(opts.pool_size, 7000u);
  EXPECT_EQ(opts.test_size, 3000u);
}

TEST_F(OptionsEnvTest, IndividualOverridesWin) {
  setenv("PWU_FULL", "1", 1);
  setenv("PWU_NMAX", "123", 1);
  setenv("PWU_SEED", "999", 1);
  setenv("PWU_OUT", "/tmp/pwu-out", 1);
  const BenchOptions opts = BenchOptions::from_env();
  EXPECT_EQ(opts.n_max, 123u);
  EXPECT_EQ(opts.seed, 999u);
  EXPECT_EQ(opts.out_dir, "/tmp/pwu-out");
  EXPECT_EQ(opts.pool_size, 7000u);  // untouched full-scale default
}

TEST_F(OptionsEnvTest, InvalidNumbersAreIgnored) {
  setenv("PWU_REPEATS", "not-a-number", 1);
  setenv("PWU_NMAX", "-5", 1);
  const BenchOptions defaults{};
  const BenchOptions opts = BenchOptions::from_env();
  EXPECT_EQ(opts.repeats, defaults.repeats);
  EXPECT_EQ(opts.n_max, defaults.n_max);
}

TEST_F(OptionsEnvTest, EnvIntParsesExactly) {
  setenv("PWU_SEED", "77", 1);
  EXPECT_EQ(env_int("PWU_SEED").value(), 77);
  setenv("PWU_SEED", "77x", 1);
  EXPECT_FALSE(env_int("PWU_SEED").has_value());
  unsetenv("PWU_SEED");
  EXPECT_FALSE(env_int("PWU_SEED").has_value());
}

TEST_F(OptionsEnvTest, DescribeMentionsScale) {
  const BenchOptions opts = BenchOptions::from_env();
  EXPECT_NE(opts.describe().find("ci-scale"), std::string::npos);
  setenv("PWU_FULL", "1", 1);
  EXPECT_NE(BenchOptions::from_env().describe().find("paper-scale"),
            std::string::npos);
}

}  // namespace
}  // namespace pwu::util
