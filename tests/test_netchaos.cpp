// Network-chaos harness for the serving tier (`ctest -L netchaos`).
//
// Real pwu_serve workers forked behind checksummed framed pipes, with a
// seeded sim::FaultyTransport spliced between the router's framing layer
// and each wire:
//
//   Router -> FramedTransport( FaultyTransport( PipeTransport ) )
//
// so injected loss, duplication, reordering, corruption, and truncation
// hit the checksummed bytes and the resilience layer (DESIGN.md §15) is
// what has to survive them. Acceptance:
//
//   * under a seeded fault schedule the client-visible response stream is
//     bit-identical to a fault-free control fleet — and to a second run of
//     the same seed (a failing schedule is a deterministic regression);
//   * no tell is ever applied twice (labeled-count audit): rid matching
//     plus idempotency-key replay make corrupt-reply resends exactly-once;
//   * split-brain is fenced: a partition-declared death leaves a live
//     stale primary behind; once the partition heals, the fence sweep
//     raises its epoch and a write stamped with the pre-failover epoch is
//     rejected `fenced` instead of forking the session's history.

#include "router/router.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "router/hash_ring.hpp"
#include "service/protocol.hpp"
#include "service/transport.hpp"
#include "sim/faulty_transport.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "workloads/registry.hpp"

#ifndef PWU_SERVE_BIN
#define PWU_SERVE_BIN "pwu_serve"  // overridden by CMake with the real path
#endif

namespace pwu::router {
namespace {

namespace json = util::json;
namespace fs = std::filesystem;

using sim::FaultSchedule;
using sim::FaultStats;
using sim::FaultyTransport;

std::string fresh_dir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() / ("pwu_netchaos_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// A fleet of real forked workers behind framed, fault-injected wires.
/// `wires[i]` stays valid for the router's lifetime — schedules, scripts,
/// and partitions are driven through it mid-test.
struct Fleet {
  std::unique_ptr<Router> router;
  std::vector<FaultyTransport*> wires;

  FaultStats total_faults() const {
    FaultStats sum;
    for (const FaultyTransport* wire : wires) {
      const FaultStats& s = wire->stats();
      sum.delivered += s.delivered;
      sum.dropped += s.dropped;
      sum.duplicated += s.duplicated;
      sum.reordered += s.reordered;
      sum.delayed += s.delayed;
      sum.corrupted += s.corrupted;
      sum.truncated += s.truncated;
      sum.partition_rejections += s.partition_rejections;
    }
    return sum;
  }
};

Fleet make_fleet(const std::string& tag, std::size_t workers,
                 const FaultSchedule& schedule) {
  RouterOptions options;
  options.frame = true;  // the router wraps each wire in FramedTransport
  Fleet fleet;
  std::vector<ShardSpec> specs(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    const std::string dir = fresh_dir(tag + "_" + std::to_string(i));
    const std::string command = std::string("'") + PWU_SERVE_BIN +
                                "' --checkpoint-dir '" + dir +
                                "' --checkpoint-every 1";
    FaultSchedule per_wire = schedule;
    per_wire.seed = schedule.seed * 1000003 + i;  // independent per shard
    auto wire = std::make_unique<FaultyTransport>(
        std::make_unique<service::PipeTransport>(command, 120.0), per_wire);
    fleet.wires.push_back(wire.get());
    specs[i].name = "shard-" + std::to_string(i);
    specs[i].checkpoint_dir = dir;
    specs[i].transport = std::move(wire);
  }
  fleet.router = std::make_unique<Router>(std::move(specs), options);
  return fleet;
}

json::Value create_request(const std::string& name, unsigned seed) {
  return json::parse(
      R"({"op":"create","session":")" + name +
      R"(","workload":"gesummv","n_init":6,"n_batch":2,"n_max":16,)"
      R"("trees":8,"pool_size":120,"seed":)" + std::to_string(seed) + "}");
}

json::Value session_request(const std::string& op, const std::string& name) {
  json::Object obj;
  obj.emplace("op", json::Value(op));
  obj.emplace("session", json::Value(name));
  return json::Value(std::move(obj));
}

/// Checkpoint paths legitimately differ across homes; everything else in
/// the stream must match bit for bit.
std::string canonical(json::Value response) {
  if (response.is_object()) response.as_object().erase("checkpoint");
  return response.dump();
}

json::Value call_router(Router& router, const json::Value& request) {
  for (int attempt = 0; attempt < 20; ++attempt) {
    json::Value response = router.handle(request);
    if (!response.bool_or("redirected", false)) return response;
  }
  ADD_FAILURE() << "request redirected 20 times: " << request.dump();
  return json::Value();
}

/// Drives one session to completion, recording every canonicalized
/// response — the client-visible stream the acceptance compares.
std::vector<std::string> drive(Router& router, const std::string& name,
                               unsigned seed) {
  std::vector<std::string> stream;
  const json::Value created = call_router(router, create_request(name, seed));
  EXPECT_TRUE(created.bool_or("ok", false)) << created.dump();
  stream.push_back(canonical(created));
  const auto workload = workloads::make_workload("gesummv");
  util::Rng measure_rng(std::stoull(created.at("measure_seed").as_string()));
  for (;;) {
    const json::Value batch = call_router(router, session_request("ask", name));
    EXPECT_TRUE(batch.bool_or("ok", false)) << batch.dump();
    stream.push_back(canonical(batch));
    const json::Array& candidates = batch.at("candidates").as_array();
    if (candidates.empty()) break;
    for (const json::Value& candidate : candidates) {
      const auto config =
          service::configuration_from_json(candidate.at("levels"));
      const double t = workload->measure(config, measure_rng, 1);
      json::Object tell;
      tell.emplace("op", json::Value("tell"));
      tell.emplace("session", json::Value(name));
      tell.emplace("levels", candidate.at("levels"));
      tell.emplace("time", json::Value(t));
      const json::Value told = call_router(router, json::Value(std::move(tell)));
      EXPECT_TRUE(told.bool_or("ok", false)) << told.dump();
      stream.push_back(canonical(told));
    }
  }
  stream.push_back(canonical(call_router(router, session_request("status", name))));
  return stream;
}

void expect_streams_equal(const std::vector<std::string>& got,
                          const std::vector<std::string>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "response " << i;
  }
}

/// The labeled-count audit: every session finished with *exactly* n_max
/// samples — a tell applied twice (a resend the idempotency window failed
/// to dedup) would overshoot.
void expect_labeled_exactly(Router& router,
                            const std::vector<std::string>& names,
                            double n_max) {
  const json::Value listed = router.handle(json::parse(R"({"op":"list"})"));
  ASSERT_TRUE(listed.bool_or("ok", false));
  const json::Array& sessions = listed.at("sessions").as_array();
  ASSERT_EQ(sessions.size(), names.size());
  for (const json::Value& session : sessions) {
    EXPECT_TRUE(session.bool_or("done", false)) << session.dump();
    EXPECT_EQ(session.number_or("labeled", 0.0), n_max) << session.dump();
  }
}

/// The netchaos probability mix: every reply-side fate the stack claims to
/// survive, heavy enough that a 16-sample session sees dozens of faults.
FaultSchedule chaos_schedule(std::uint64_t seed) {
  FaultSchedule schedule;
  schedule.drop = 0.03;
  schedule.duplicate = 0.09;
  schedule.corrupt_payload = 0.04;
  schedule.corrupt_header = 0.02;
  schedule.truncate = 0.02;
  schedule.seed = seed;
  return schedule;
}

TEST(NetChaos, SeededFaultsKeepClientStreamsBitIdentical) {
  Fleet control = make_fleet("ctl", 4, FaultSchedule{});
  Fleet chaos = make_fleet("chaos", 4, chaos_schedule(41));

  const std::vector<std::string> names = {"net-a", "net-b"};
  std::vector<std::vector<std::string>> expected, observed;
  for (std::size_t i = 0; i < names.size(); ++i) {
    expected.push_back(drive(*control.router, names[i], 311 + unsigned(i)));
    observed.push_back(drive(*chaos.router, names[i], 311 + unsigned(i)));
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    expect_streams_equal(observed[i], expected[i]);
  }

  // The schedule really fired — this was not a lucky fault-free run.
  const FaultStats faults = chaos.total_faults();
  EXPECT_GT(faults.dropped + faults.corrupted + faults.truncated, 0u)
      << "schedule injected no detectable faults; raise the probabilities";
  EXPECT_GT(faults.duplicated, 0u);
  EXPECT_EQ(control.total_faults().dropped, 0u);

  // Every detected corruption was absorbed below the failover threshold:
  // the fleet never lost a shard to line noise.
  EXPECT_EQ(chaos.router->stats().failovers, 0u);

  // Labeled-count audit on both fleets, and the router's health surfaces
  // the retry work the chaos fleet did.
  expect_labeled_exactly(*control.router, names, 16.0);
  expect_labeled_exactly(*chaos.router, names, 16.0);
  const json::Value health =
      chaos.router->handle(json::parse(R"({"op":"health"})"));
  ASSERT_TRUE(health.bool_or("ok", false));
  double corrupt_replies = 0.0;
  for (const json::Value& shard :
       health.at("health").at("shards").as_array()) {
    corrupt_replies += shard.number_or("corrupt_replies", 0.0);
  }
  EXPECT_GT(corrupt_replies, 0.0);

  chaos.router->handle(json::parse(R"({"op":"shutdown"})"));
  control.router->handle(json::parse(R"({"op":"shutdown"})"));
}

TEST(NetChaos, SameSeedReplaysTheSameRun) {
  // The whole point of seeding the injector: a failing schedule can be
  // re-run. Two fleets with the same seed must see the same fault counts
  // and produce the same stream.
  Fleet first = make_fleet("rep1", 4, chaos_schedule(43));
  Fleet second = make_fleet("rep2", 4, chaos_schedule(43));

  const auto stream_a = drive(*first.router, "net-replay", 331);
  const auto stream_b = drive(*second.router, "net-replay", 331);
  expect_streams_equal(stream_b, stream_a);

  const FaultStats a = first.total_faults();
  const FaultStats b = second.total_faults();
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.duplicated, b.duplicated);
  EXPECT_EQ(a.corrupted, b.corrupted);
  EXPECT_EQ(a.truncated, b.truncated);
  EXPECT_GT(a.dropped + a.duplicated + a.corrupted + a.truncated, 0u);

  first.router->handle(json::parse(R"({"op":"shutdown"})"));
  second.router->handle(json::parse(R"({"op":"shutdown"})"));
}

TEST(NetChaos, PipelinedBatchesSurviveReorderDelayAndDuplication) {
  // Batches pipeline several sessions' requests down one wire, which is
  // where reordering and delay actually bite (a single in-flight request
  // has nothing to be reordered against). Every response must land on its
  // own request — rid matching, not arrival order.
  FaultSchedule schedule;
  schedule.reorder = 0.2;
  schedule.delay = 0.1;
  schedule.duplicate = 0.1;
  schedule.seed = 47;
  Fleet fleet = make_fleet("pipe", 4, schedule);

  std::vector<std::string> names;
  for (int i = 0; i < 6; ++i) {
    const std::string name = "net-pipe-" + std::to_string(i);
    names.push_back(name);
    const json::Value created = call_router(
        *fleet.router, create_request(name, 401 + unsigned(i)));
    ASSERT_TRUE(created.bool_or("ok", false)) << created.dump();
  }

  for (int round = 0; round < 10; ++round) {
    std::vector<json::Value> batch;
    for (const std::string& name : names) {
      batch.push_back(session_request("status", name));
    }
    const std::vector<json::Value> responses =
        fleet.router->handle_batch(batch);
    ASSERT_EQ(responses.size(), names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
      EXPECT_TRUE(responses[i].bool_or("ok", false)) << responses[i].dump();
      EXPECT_EQ(responses[i].at("status").string_or("session", ""), names[i])
          << "slot " << i << " answered with the wrong session";
    }
  }

  const FaultStats faults = fleet.total_faults();
  EXPECT_GT(faults.reordered + faults.delayed, 0u)
      << "no window ever had two requests in flight on one wire";
  EXPECT_GT(faults.duplicated, 0u);
  EXPECT_EQ(fleet.router->stats().failovers, 0u);
  fleet.router->handle(json::parse(R"({"op":"shutdown"})"));
}

// ---- split brain -------------------------------------------------------------

/// Sends one framed request straight down a shard's wire — impersonating a
/// stale router that still believes it owns the shard — and returns the
/// worker's (frame-verified) reply.
json::Value stale_write(FaultyTransport& wire, const json::Value& request) {
  const std::string line = request.dump();
  wire.send(service::frame_header(line));
  wire.send(line);
  const std::string header_line = wire.recv();
  service::FrameHeader header;
  EXPECT_TRUE(service::parse_frame_header(header_line, header))
      << header_line;
  const std::string payload = wire.recv();
  EXPECT_TRUE(service::frame_payload_matches(header, payload));
  return json::parse(payload);
}

TEST(NetChaos, SplitBrainStaleEpochWriteIsFenced) {
  Fleet fleet = make_fleet("brain", 2, FaultSchedule{});
  Router& router = *fleet.router;
  const std::string name = "net-brain";
  const std::size_t owner =
      router.ring().owner(name) == "shard-0" ? 0 : 1;

  // A live session with a few tells on the owner, then a partition: the
  // router declares the shard dead and fails the session over, but the
  // worker process survives behind the partition — a stale primary.
  const json::Value created = call_router(router, create_request(name, 349));
  ASSERT_TRUE(created.bool_or("ok", false)) << created.dump();
  const std::uint64_t stale_epoch = router.ring().epoch();  // 2 (two adds)
  fleet.wires[owner]->partition_for(1u << 20);

  const json::Value asked = call_router(router, session_request("ask", name));
  EXPECT_TRUE(asked.bool_or("ok", false)) << asked.dump();
  EXPECT_EQ(router.stats().failovers, 1u);
  EXPECT_GT(router.ring().epoch(), stale_epoch);
  const std::uint64_t fence_epoch = router.ring().epoch();

  // While partitioned the fence cannot be delivered; it stays pending.
  json::Value health = router.handle(json::parse(R"({"op":"health"})"));
  EXPECT_EQ(health.at("health").at("counters").number_or("fences_pending",
                                                         -1.0),
            1.0);
  EXPECT_EQ(router.stats().fences_delivered, 0u);

  // Partition heals. Before the fence sweep reaches the stale worker, a
  // write stamped with the old epoch is still *accepted* — this is the
  // split-brain window the sweep exists to close. Probe it with a ghost
  // session so nothing real mutates: "unknown session" means the fence
  // check passed the request through.
  fleet.wires[owner]->heal();
  json::Object ghost;
  ghost.emplace("op", json::Value("ask"));
  ghost.emplace("session", json::Value("ghost"));
  ghost.emplace("epoch", json::Value(static_cast<std::size_t>(stale_epoch)));
  const json::Value open_window =
      stale_write(*fleet.wires[owner], json::Value(ghost));
  EXPECT_FALSE(open_window.bool_or("ok", true));
  EXPECT_FALSE(open_window.bool_or("fenced", false)) << open_window.dump();
  EXPECT_NE(open_window.string_or("error", "").find("no session named"),
            std::string::npos);

  // The health probe sweeps pending fences now that the wire is back.
  health = router.handle(json::parse(R"({"op":"health"})"));
  ASSERT_TRUE(health.bool_or("ok", false));
  EXPECT_EQ(router.stats().fences_delivered, 1u);
  EXPECT_EQ(health.at("health").at("counters").number_or("fences_pending",
                                                         -1.0),
            0.0);

  // The same stale-epoch request is now rejected with the structured
  // fenced response — and so is a real write to the session the stale
  // primary still holds a copy of: its post-promotion history cannot fork.
  const json::Value fenced =
      stale_write(*fleet.wires[owner], json::Value(ghost));
  EXPECT_FALSE(fenced.bool_or("ok", true));
  EXPECT_TRUE(fenced.bool_or("fenced", false)) << fenced.dump();
  EXPECT_EQ(fenced.number_or("epoch", 0.0),
            static_cast<double>(fence_epoch));

  json::Object tell;
  tell.emplace("op", json::Value("tell"));
  tell.emplace("session", json::Value(name));
  tell.emplace("levels", json::Value(json::Array{json::Value(0)}));
  tell.emplace("time", json::Value(0.125));
  tell.emplace("epoch", json::Value(static_cast<std::size_t>(stale_epoch)));
  const json::Value stale_tell =
      stale_write(*fleet.wires[owner], json::Value(std::move(tell)));
  EXPECT_TRUE(stale_tell.bool_or("fenced", false)) << stale_tell.dump();

  // The promoted home is unaffected: the session finishes normally with
  // exactly n_max labels.
  const auto workload = workloads::make_workload("gesummv");
  util::Rng measure_rng(std::stoull(created.at("measure_seed").as_string()));
  // Replay the first batch's measurements so the drive loop can continue
  // from the ask that triggered the failover.
  for (const json::Value& candidate : asked.at("candidates").as_array()) {
    const auto config =
        service::configuration_from_json(candidate.at("levels"));
    json::Object t;
    t.emplace("op", json::Value("tell"));
    t.emplace("session", json::Value(name));
    t.emplace("levels", candidate.at("levels"));
    t.emplace("time", json::Value(workload->measure(config, measure_rng, 1)));
    const json::Value told = call_router(router, json::Value(std::move(t)));
    EXPECT_TRUE(told.bool_or("ok", false)) << told.dump();
  }
  for (;;) {
    const json::Value batch = call_router(router, session_request("ask", name));
    ASSERT_TRUE(batch.bool_or("ok", false)) << batch.dump();
    const json::Array& candidates = batch.at("candidates").as_array();
    if (candidates.empty()) break;
    for (const json::Value& candidate : candidates) {
      const auto config =
          service::configuration_from_json(candidate.at("levels"));
      json::Object t;
      t.emplace("op", json::Value("tell"));
      t.emplace("session", json::Value(name));
      t.emplace("levels", candidate.at("levels"));
      t.emplace("time",
                json::Value(workload->measure(config, measure_rng, 1)));
      const json::Value told = call_router(router, json::Value(std::move(t)));
      EXPECT_TRUE(told.bool_or("ok", false)) << told.dump();
    }
  }
  expect_labeled_exactly(router, {name}, 16.0);
  router.handle(json::parse(R"({"op":"shutdown"})"));
}

TEST(NetChaos, FaultsDuringFailoverStayExactlyOnce) {
  // Faults and a real shard death at the same time: the chaos fleet loses
  // a worker to a partition mid-run *while* the surviving wires corrupt
  // and duplicate replies. The stream must still match a clean control
  // fleet that also loses the shard at the same instant — resilience
  // layers compose, they don't interfere.
  const std::string name = "net-both";
  Fleet control = make_fleet("both_ctl", 3, FaultSchedule{});
  Fleet chaos = make_fleet("both_chaos", 3, chaos_schedule(53));

  const auto run = [&](Fleet& fleet) {
    std::vector<std::string> stream;
    Router& router = *fleet.router;
    const std::size_t owner = [&] {
      const std::string who = router.ring().owner(name);
      return static_cast<std::size_t>(who.back() - '0');
    }();
    const json::Value created =
        call_router(router, create_request(name, 359));
    EXPECT_TRUE(created.bool_or("ok", false)) << created.dump();
    stream.push_back(canonical(created));
    const auto workload = workloads::make_workload("gesummv");
    util::Rng measure_rng(
        std::stoull(created.at("measure_seed").as_string()));
    int asks = 0;
    for (;;) {
      if (++asks == 3) fleet.wires[owner]->partition_for(1u << 20);
      const json::Value batch =
          call_router(router, session_request("ask", name));
      EXPECT_TRUE(batch.bool_or("ok", false)) << batch.dump();
      stream.push_back(canonical(batch));
      const json::Array& candidates = batch.at("candidates").as_array();
      if (candidates.empty()) break;
      for (const json::Value& candidate : candidates) {
        const auto config =
            service::configuration_from_json(candidate.at("levels"));
        json::Object tell;
        tell.emplace("op", json::Value("tell"));
        tell.emplace("session", json::Value(name));
        tell.emplace("levels", candidate.at("levels"));
        tell.emplace(
            "time", json::Value(workload->measure(config, measure_rng, 1)));
        const json::Value told =
            call_router(router, json::Value(std::move(tell)));
        EXPECT_TRUE(told.bool_or("ok", false)) << told.dump();
        stream.push_back(canonical(told));
      }
    }
    return stream;
  };

  const auto expected = run(control);
  const auto observed = run(chaos);
  expect_streams_equal(observed, expected);

  EXPECT_EQ(control.router->stats().failovers, 1u);
  EXPECT_EQ(chaos.router->stats().failovers, 1u);
  expect_labeled_exactly(*control.router, {name}, 16.0);
  expect_labeled_exactly(*chaos.router, {name}, 16.0);
  chaos.router->handle(json::parse(R"({"op":"shutdown"})"));
  control.router->handle(json::parse(R"({"op":"shutdown"})"));
}

}  // namespace
}  // namespace pwu::router
