#include "gp/linalg.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pwu::gp {
namespace {

Matrix spd_3x3() {
  // A = L L^T with L = [[2,0,0],[1,3,0],[0.5,1,1.5]].
  Matrix a(3, 3);
  const double l[3][3] = {{2, 0, 0}, {1, 3, 0}, {0.5, 1, 1.5}};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      double sum = 0.0;
      for (int k = 0; k < 3; ++k) sum += l[i][k] * l[j][k];
      a.at(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) = sum;
    }
  }
  return a;
}

TEST(Matrix, BasicAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
  m.at(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m.row(0)[1], 7.0);
}

TEST(Matrix, AddDiagonal) {
  Matrix m(2, 2, 1.0);
  m.add_diagonal(0.5);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 1.0);
  Matrix rect(2, 3);
  EXPECT_THROW(rect.add_diagonal(1.0), std::logic_error);
}

TEST(Cholesky, RecoversKnownFactor) {
  Matrix a = spd_3x3();
  ASSERT_TRUE(cholesky_factorize(a));
  EXPECT_NEAR(a.at(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(a.at(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(a.at(1, 1), 3.0, 1e-12);
  EXPECT_NEAR(a.at(2, 0), 0.5, 1e-12);
  EXPECT_NEAR(a.at(2, 1), 1.0, 1e-12);
  EXPECT_NEAR(a.at(2, 2), 1.5, 1e-12);
  // Upper triangle zeroed.
  EXPECT_DOUBLE_EQ(a.at(0, 2), 0.0);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = a.at(1, 0) = 2.0;
  a.at(1, 1) = 1.0;  // eigenvalues 3, -1
  EXPECT_FALSE(cholesky_factorize(a));
}

TEST(Cholesky, SolveRoundTrips) {
  Matrix a = spd_3x3();
  const Matrix original = a;
  ASSERT_TRUE(cholesky_factorize(a));
  const std::vector<double> x_true = {1.0, -2.0, 0.5};
  // b = A x.
  std::vector<double> b(3, 0.0);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) b[i] += original.at(i, j) * x_true[j];
  }
  const std::vector<double> x = cholesky_solve(a, b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

TEST(Cholesky, TriangularSolvesAreInverses) {
  Matrix a = spd_3x3();
  ASSERT_TRUE(cholesky_factorize(a));
  const std::vector<double> b = {3.0, 1.0, -2.0};
  const auto y = forward_substitute(a, b);
  // L y should reproduce b.
  for (std::size_t i = 0; i < 3; ++i) {
    double sum = 0.0;
    for (std::size_t k = 0; k <= i; ++k) sum += a.at(i, k) * y[k];
    EXPECT_NEAR(sum, b[i], 1e-12);
  }
  const auto x = backward_substitute(a, y);
  // L^T x should reproduce y.
  for (std::size_t i = 0; i < 3; ++i) {
    double sum = 0.0;
    for (std::size_t k = i; k < 3; ++k) sum += a.at(k, i) * x[k];
    EXPECT_NEAR(sum, y[i], 1e-12);
  }
}

TEST(Cholesky, SizeValidation) {
  Matrix rect(2, 3);
  EXPECT_THROW(cholesky_factorize(rect), std::invalid_argument);
  Matrix l(2, 2, 1.0);
  const std::vector<double> wrong = {1.0, 2.0, 3.0};
  EXPECT_THROW(forward_substitute(l, wrong), std::invalid_argument);
  EXPECT_THROW(backward_substitute(l, wrong), std::invalid_argument);
}

TEST(Dot, BasicAndValidation) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0 - 10.0 + 18.0);
  const std::vector<double> c = {1.0};
  EXPECT_THROW(dot(a, c), std::invalid_argument);
}

}  // namespace
}  // namespace pwu::gp
