// Network-resilience layer (DESIGN.md §15) — checksummed wire framing,
// idempotency-key replay, fencing epochs, the seeded fault injector, and
// the ShardClient recovery paths that ride on them. Everything here is
// deterministic and in-process (plus one forked /bin/sh for the
// pipe-buffer regression); the multi-process schedules live in
// test_netchaos.cpp (`ctest -L netchaos`).

#include "service/protocol.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "router/shard_client.hpp"
#include "service/session_manager.hpp"
#include "service/transport.hpp"
#include "sim/faulty_transport.hpp"
#include "util/json.hpp"

namespace pwu::service {
namespace {

namespace json = util::json;

// ---- frame helpers ----------------------------------------------------------

TEST(FrameWire, HeaderRoundTrip) {
  const std::string payload = R"({"op":"status","session":"s1"})";
  const std::string header_line = frame_header(payload);
  EXPECT_EQ(header_line.substr(0, kFrameMagic.size()), kFrameMagic);

  FrameHeader header;
  ASSERT_TRUE(parse_frame_header(header_line, header));
  EXPECT_EQ(header.len, payload.size());
  EXPECT_TRUE(frame_payload_matches(header, payload));

  // Any single-byte change is caught by the CRC...
  std::string flipped = payload;
  flipped[5] ^= 0x01;
  EXPECT_FALSE(frame_payload_matches(header, flipped));
  // ...and a truncation by the length check.
  EXPECT_FALSE(
      frame_payload_matches(header, payload.substr(0, payload.size() / 2)));
}

TEST(FrameWire, ParseRejectsMalformedHeaders) {
  FrameHeader header;
  EXPECT_FALSE(parse_frame_header("", header));
  EXPECT_FALSE(parse_frame_header("pwu1", header));
  EXPECT_FALSE(parse_frame_header("pwu1 ", header));
  EXPECT_FALSE(parse_frame_header("pwu1 12", header));
  EXPECT_FALSE(parse_frame_header("pwu1 x deadbeef", header));
  EXPECT_FALSE(parse_frame_header("pwu1 12 nothexxx", header));
  EXPECT_FALSE(parse_frame_header("pwu2 12 deadbeef", header));
  EXPECT_FALSE(parse_frame_header(R"({"op":"list"})", header));
  // A real header is accepted even with one corrupted *digit* elsewhere
  // rejected — the parse is strict about the shape.
  EXPECT_TRUE(parse_frame_header(frame_header("x"), header));
}

TEST(FrameWire, EncodeIsHeaderThenPayload) {
  const std::string payload = R"({"ok":true})";
  const std::string wire = frame_encode(payload);
  std::istringstream lines(wire);
  std::string first, second, extra;
  ASSERT_TRUE(std::getline(lines, first));
  ASSERT_TRUE(std::getline(lines, second));
  EXPECT_FALSE(std::getline(lines, extra));
  FrameHeader header;
  ASSERT_TRUE(parse_frame_header(first, header));
  EXPECT_EQ(second, payload);
  EXPECT_TRUE(frame_payload_matches(header, second));
}

// ---- serve loop: negotiation, verification, resync --------------------------

std::vector<json::Value> parse_framed_stream(const std::string& text) {
  std::istringstream lines(text);
  std::vector<json::Value> responses;
  std::string line;
  while (std::getline(lines, line)) {
    FrameHeader header;
    if (parse_frame_header(line, header)) {
      std::string payload;
      EXPECT_TRUE(std::getline(lines, payload)) << "torn trailing frame";
      EXPECT_TRUE(frame_payload_matches(header, payload)) << payload;
      responses.push_back(json::parse(payload));
    } else {
      responses.push_back(json::parse(line));
    }
  }
  return responses;
}

TEST(FramedServeLoop, HelloFlipsResponsesToFramed) {
  SessionManager manager;
  const std::string input = "{\"frame\":true,\"op\":\"hello\"}\n" +
                            frame_encode(R"({"op":"list"})") +
                            "{\"op\":\"shutdown\"}\n";
  std::istringstream in(input);
  std::ostringstream out;
  EXPECT_EQ(run_serve_loop(in, out, manager), 3u);

  // Every response from the hello on — the hello reply included — must be
  // a verifiable frame.
  std::istringstream lines(out.str());
  std::string line;
  std::size_t frames = 0;
  while (std::getline(lines, line)) {
    FrameHeader header;
    ASSERT_TRUE(parse_frame_header(line, header)) << line;
    std::string payload;
    ASSERT_TRUE(std::getline(lines, payload));
    EXPECT_TRUE(frame_payload_matches(header, payload));
    ++frames;
  }
  EXPECT_EQ(frames, 3u);

  const auto responses = parse_framed_stream(out.str());
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].string_or("proto", ""), "pwu1");
  EXPECT_TRUE(responses[0].bool_or("frame", false));
  EXPECT_EQ(responses[0].number_or("fence_epoch", -1.0), 0.0);
  EXPECT_TRUE(responses[1].bool_or("ok", false));
  EXPECT_TRUE(responses[2].bool_or("shutdown", false));
}

TEST(FramedServeLoop, CorruptFrameReportsBadFrameAndResyncs) {
  SessionManager manager;
  std::string corrupt = frame_encode(R"({"op":"list"})");
  corrupt[corrupt.find("list")] = 'L';  // payload byte no longer matches CRC
  const std::string input = corrupt + frame_encode(R"({"op":"list"})") +
                            "{\"op\":\"shutdown\"}\n";
  std::istringstream in(input);
  std::ostringstream out;
  run_serve_loop(in, out, manager);

  const auto responses = parse_framed_stream(out.str());
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_FALSE(responses[0].bool_or("ok", true));
  EXPECT_TRUE(responses[0].bool_or("bad_frame", false));
  // The loop resynced at the next header: the follow-up frame is served
  // normally, not mis-parsed as part of the damaged one.
  EXPECT_TRUE(responses[1].bool_or("ok", false));
  EXPECT_TRUE(responses[2].bool_or("shutdown", false));
}

TEST(FramedServeLoop, LegacyUnframedLinesAlwaysAccepted) {
  SessionManager manager;
  // Framed and unframed requests interleave freely; without a hello the
  // responses stay unframed (a legacy client never sees a pwu1 line).
  const std::string input = frame_encode(R"({"op":"list"})") +
                            "{\"op\":\"list\"}\n"
                            "{\"op\":\"shutdown\"}\n";
  std::istringstream in(input);
  std::ostringstream out;
  run_serve_loop(in, out, manager);

  std::istringstream lines(out.str());
  std::string line;
  std::vector<json::Value> responses;
  while (std::getline(lines, line)) {
    FrameHeader header;
    EXPECT_FALSE(parse_frame_header(line, header)) << "unexpected frame";
    responses.push_back(json::parse(line));
  }
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(responses[0].bool_or("ok", false));
  EXPECT_TRUE(responses[1].bool_or("ok", false));
}

// ---- idempotency keys --------------------------------------------------------

json::Value request_obj(
    std::initializer_list<std::pair<const std::string, json::Value>> fields) {
  return json::Value(json::Object(fields));
}

json::Value small_create(const std::string& name) {
  return json::parse(
      R"({"op":"create","session":")" + name +
      R"(","workload":"gesummv","n_init":4,"n_batch":2,"n_max":12,)"
      R"("trees":6,"pool_size":100,"seed":31})");
}

TEST(Idempotency, DuplicateTellReplaysTheOriginalReply) {
  SessionManager manager;
  ASSERT_TRUE(handle_request(manager, small_create("s")).bool_or("ok", false));
  const json::Value asked = handle_request(
      manager, request_obj({{"op", json::Value("ask")},
                            {"session", json::Value("s")}}));
  ASSERT_TRUE(asked.bool_or("ok", false));
  const json::Array& candidates = asked.at("candidates").as_array();
  ASSERT_FALSE(candidates.empty());

  json::Object tell{{"op", json::Value("tell")},
                    {"session", json::Value("s")},
                    {"levels", candidates[0].at("levels")},
                    {"time", json::Value(0.25)},
                    {"idem", json::Value("key-1")},
                    {"rid", json::Value("r1")}};
  json::Value first = handle_request(manager, json::Value(tell));
  ASSERT_TRUE(first.bool_or("ok", false)) << first.dump();
  EXPECT_EQ(first.string_or("rid", ""), "r1");
  const double labeled = manager.status("s").labeled;

  // Same key again (a client resend after a lost reply): the original
  // reply comes back verbatim — except the rid, which must be the
  // *retry's* — and the tell is not applied twice.
  tell["rid"] = json::Value("r2");
  json::Value replay = handle_request(manager, json::Value(tell));
  EXPECT_EQ(replay.string_or("rid", ""), "r2");
  replay.as_object().erase("rid");
  first.as_object().erase("rid");
  EXPECT_EQ(replay.dump(), first.dump());
  EXPECT_EQ(manager.status("s").labeled, labeled);
  EXPECT_EQ(manager.health().idem_replays, 1u);
}

TEST(Idempotency, WindowIsBoundedAndErasedOnClose) {
  SessionManager manager;
  manager.set_idempotency_window(2);
  manager.remember_reply("s", "k1", R"({"ok":true,"n":1})");
  manager.remember_reply("s", "k2", R"({"ok":true,"n":2})");
  manager.remember_reply("s", "k3", R"({"ok":true,"n":3})");
  // Oldest key evicted at capacity 2; the survivors replay.
  EXPECT_FALSE(manager.idempotent_reply("s", "k1").has_value());
  EXPECT_TRUE(manager.idempotent_reply("s", "k2").has_value());
  EXPECT_EQ(manager.idempotent_reply("s", "k3").value_or(""),
            R"({"ok":true,"n":3})");

  // Closing the session drops its window — a later session reusing the
  // name must not see stale replies.
  ASSERT_TRUE(handle_request(manager, small_create("s")).bool_or("ok", false));
  handle_request(manager, request_obj({{"op", json::Value("close")},
                                       {"session", json::Value("s")}}));
  EXPECT_FALSE(manager.idempotent_reply("s", "k2").has_value());
}

TEST(Idempotency, ZeroWindowDisablesDedup) {
  SessionManager manager;
  manager.set_idempotency_window(0);
  manager.remember_reply("s", "k1", R"({"ok":true})");
  EXPECT_FALSE(manager.idempotent_reply("s", "k1").has_value());
}

// ---- fencing epochs ----------------------------------------------------------

TEST(Fencing, StaleEpochWriteIsRejectedStructured) {
  SessionManager manager;
  json::Value create = small_create("s");
  create.as_object().emplace("epoch", json::Value(5));
  ASSERT_TRUE(handle_request(manager, create).bool_or("ok", false));
  EXPECT_EQ(manager.fence_epoch(), 5u);

  // A write from an epoch the ring has moved past: structured rejection,
  // nothing applied.
  const json::Value stale = handle_request(
      manager, request_obj({{"op", json::Value("checkpoint")},
                            {"session", json::Value("s")},
                            {"path", json::Value("/tmp/pwu_fence_t.ckpt")},
                            {"epoch", json::Value(4)}}));
  EXPECT_FALSE(stale.bool_or("ok", true));
  EXPECT_TRUE(stale.bool_or("fenced", false));
  EXPECT_EQ(stale.number_or("epoch", -1.0), 5.0);
  EXPECT_NE(stale.string_or("error", "").find("stale epoch 4 < fence 5"),
            std::string::npos);

  // Reads are never fenced — a stale observer may still look.
  const json::Value status = handle_request(
      manager, request_obj({{"op", json::Value("status")},
                            {"session", json::Value("s")},
                            {"epoch", json::Value(4)}}));
  EXPECT_TRUE(status.bool_or("ok", false)) << status.dump();

  // The explicit fence op raises monotonically (and never lowers).
  const json::Value fence = handle_request(
      manager, request_obj({{"op", json::Value("fence")},
                            {"epoch", json::Value(9)}}));
  EXPECT_TRUE(fence.bool_or("ok", false));
  EXPECT_EQ(fence.number_or("epoch", -1.0), 9.0);
  handle_request(manager, request_obj({{"op", json::Value("fence")},
                                       {"epoch", json::Value(3)}}));
  EXPECT_EQ(manager.fence_epoch(), 9u);

  const json::Value old_write = handle_request(
      manager, request_obj({{"op", json::Value("ask")},
                            {"session", json::Value("s")},
                            {"epoch", json::Value(8)}}));
  EXPECT_TRUE(old_write.bool_or("fenced", false));
}

TEST(Fencing, RidIsEchoedEvenOnRejections) {
  SessionManager manager;
  handle_request(manager, request_obj({{"op", json::Value("fence")},
                                       {"epoch", json::Value(2)}}));
  const json::Value fenced = handle_request(
      manager, request_obj({{"op", json::Value("tell")},
                            {"session", json::Value("nope")},
                            {"epoch", json::Value(1)},
                            {"rid", json::Value("abc#9")}}));
  EXPECT_TRUE(fenced.bool_or("fenced", false));
  EXPECT_EQ(fenced.string_or("rid", ""), "abc#9");
}

// ---- FaultyTransport ---------------------------------------------------------

/// Loopback peer: every sent line is echoed back as the reply.
class EchoTransport : public Transport {
 public:
  void send(const std::string& line) override {
    sent.push_back(line);
    replies.push_back(line);
  }
  std::string recv() override {
    if (replies.empty()) {
      throw TransportError("echo transport: no reply outstanding");
    }
    std::string line = std::move(replies.front());
    replies.pop_front();
    return line;
  }
  void ensure_running() override {}
  bool alive() const override { return true; }

  std::vector<std::string> sent;
  std::deque<std::string> replies;
};

using sim::FaultSchedule;
using sim::FaultyTransport;
using sim::WireFate;

std::unique_ptr<FaultyTransport> echo_faulty(FaultSchedule schedule = {}) {
  return std::make_unique<FaultyTransport>(
      std::make_unique<EchoTransport>(), schedule);
}

TEST(FaultyTransport, RejectsMalformedSchedules) {
  FaultSchedule negative;
  negative.drop = -0.1;
  EXPECT_THROW(echo_faulty(negative), std::invalid_argument);
  FaultSchedule overfull;
  overfull.drop = 0.6;
  overfull.corrupt_payload = 0.6;
  EXPECT_THROW(echo_faulty(overfull), std::invalid_argument);
}

TEST(FaultyTransport, ScriptedFatesApplyExactly) {
  auto wire = echo_faulty();
  wire->script({WireFate::Deliver, WireFate::Duplicate, WireFate::Drop});

  wire->send("a");
  EXPECT_EQ(wire->recv(), "a");

  wire->send("b");
  EXPECT_EQ(wire->recv(), "b");
  EXPECT_EQ(wire->recv(), "b");  // the duplicate, back to back

  wire->send("c");
  EXPECT_THROW(wire->recv(), FrameError);  // dropped

  // Script exhausted, zero probabilities: back to clean delivery.
  wire->send("d");
  EXPECT_EQ(wire->recv(), "d");

  EXPECT_EQ(wire->stats().delivered, 2u);
  EXPECT_EQ(wire->stats().duplicated, 1u);
  EXPECT_EQ(wire->stats().dropped, 1u);
}

TEST(FaultyTransport, ReorderSwapsWithTheNextUnit) {
  auto wire = echo_faulty();
  wire->script({WireFate::Reorder});
  wire->send("a");
  wire->send("b");
  EXPECT_EQ(wire->recv(), "b");
  EXPECT_EQ(wire->recv(), "a");
  EXPECT_EQ(wire->stats().reordered, 1u);
}

TEST(FaultyTransport, ReorderWithNothingOutstandingDemotesToDeliver) {
  // A schedule-driven run must never stall waiting for a reply nobody
  // requested: with no later unit to swap with, Reorder delivers.
  auto wire = echo_faulty();
  wire->script({WireFate::Reorder});
  wire->send("only");
  EXPECT_EQ(wire->recv(), "only");
  EXPECT_EQ(wire->stats().reordered, 0u);
  EXPECT_EQ(wire->stats().delivered, 1u);
}

TEST(FaultyTransport, DelayReleasesOnTheVirtualClock) {
  auto wire = echo_faulty();
  wire->script({WireFate::Delay, WireFate::Deliver, WireFate::Deliver});
  wire->send("a");
  wire->send("b");
  wire->send("c");
  EXPECT_EQ(wire->recv(), "b");  // "a" held while later units pass
  EXPECT_EQ(wire->recv(), "a");
  EXPECT_EQ(wire->recv(), "c");
  EXPECT_EQ(wire->stats().delayed, 1u);
}

TEST(FaultyTransport, CorruptionChangesExactlyOneByte) {
  auto wire = echo_faulty();
  wire->script({WireFate::CorruptPayload, WireFate::Truncate});
  const std::string line = R"({"ok":true,"value":123456789})";
  wire->send(line);
  const std::string corrupted = wire->recv();
  ASSERT_EQ(corrupted.size(), line.size());
  std::size_t differing = 0;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (corrupted[i] != line[i]) ++differing;
  }
  EXPECT_EQ(differing, 1u);

  wire->send(line);
  EXPECT_EQ(wire->recv().size(), line.size() / 2);
  EXPECT_EQ(wire->stats().corrupted, 1u);
  EXPECT_EQ(wire->stats().truncated, 1u);
}

TEST(FaultyTransport, PartitionRejectsWithoutTouchingThePeer) {
  auto wire = echo_faulty();
  auto* echo = static_cast<EchoTransport*>(&wire->inner());
  wire->partition_for(2);
  EXPECT_TRUE(wire->partitioned());
  EXPECT_FALSE(wire->alive());
  EXPECT_THROW(wire->send("x"), TransportError);
  EXPECT_THROW(wire->recv(), TransportError);
  // The peer saw nothing — the process behind the partition is intact.
  EXPECT_TRUE(echo->sent.empty());

  // Window consumed: the wire heals on its own.
  EXPECT_FALSE(wire->partitioned());
  EXPECT_TRUE(wire->alive());
  wire->send("x");
  EXPECT_EQ(wire->recv(), "x");

  wire->partition_for(100);
  wire->heal();
  EXPECT_TRUE(wire->alive());
}

TEST(FaultyTransport, FramedUnitsTravelAndFailTogether) {
  auto wire = echo_faulty();
  wire->script({WireFate::Reorder});
  const std::string p1 = R"({"n":1})";
  const std::string p2 = R"({"n":2})";
  // Two framed messages: header+payload must swap as whole units, never
  // tear into interleaved lines.
  wire->send(frame_header(p1));
  wire->send(p1);
  wire->send(frame_header(p2));
  wire->send(p2);
  EXPECT_EQ(wire->recv(), frame_header(p2));
  EXPECT_EQ(wire->recv(), p2);
  EXPECT_EQ(wire->recv(), frame_header(p1));
  EXPECT_EQ(wire->recv(), p1);
}

TEST(FaultyTransport, SameSeedSameFaultSequence) {
  FaultSchedule schedule;
  schedule.drop = 0.15;
  schedule.duplicate = 0.15;
  schedule.corrupt_payload = 0.2;
  schedule.seed = 97;

  const auto run = [&]() {
    auto wire = echo_faulty(schedule);
    std::vector<std::string> outcomes;
    for (int i = 0; i < 60; ++i) {
      const std::string line = "msg-" + std::to_string(i);
      wire->send(line);
      try {
        outcomes.push_back(wire->recv());
      } catch (const FrameError&) {
        outcomes.push_back("<dropped>");
      }
    }
    // Drain duplicates left in the queue.
    outcomes.push_back("tail:" + std::to_string(wire->stats().duplicated));
    return outcomes;
  };

  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
}

// ---- ShardClient under injected faults ---------------------------------------

/// Minimal in-process shard: answers every request line with
/// {"ok":true,"rid":...,"k":<k field>} so rid matching and resend logic
/// can be exercised without a real worker.
class MiniShard : public Transport {
 public:
  void send(const std::string& line) override {
    received.push_back(line);
    const json::Value request = json::parse(line);
    json::Object reply;
    reply.emplace("ok", json::Value(true));
    reply.emplace("rid", request.at("rid"));
    reply.emplace("k", request.at("k"));
    if (request.has("idem")) reply.emplace("idem", request.at("idem"));
    replies.push_back(json::Value(std::move(reply)).dump());
  }
  std::string recv() override {
    if (replies.empty()) {
      throw TransportError("mini shard: no reply outstanding");
    }
    std::string line = std::move(replies.front());
    replies.pop_front();
    return line;
  }
  void ensure_running() override {}
  bool alive() const override { return true; }

  std::vector<std::string> received;
  std::deque<std::string> replies;
};

struct PipelineRig {
  FaultyTransport* wire = nullptr;
  MiniShard* shard = nullptr;
  std::unique_ptr<router::ShardClient> client;
};

PipelineRig make_rig() {
  PipelineRig rig;
  auto shard = std::make_unique<MiniShard>();
  rig.shard = shard.get();
  auto wire =
      std::make_unique<FaultyTransport>(std::move(shard), FaultSchedule{});
  rig.wire = wire.get();
  router::ShardClientOptions options;
  options.retries = 3;
  options.backoff_ms = 1;
  rig.client = std::make_unique<router::ShardClient>("shard-t",
                                                     std::move(wire), options);
  return rig;
}

std::vector<json::Value> window(std::size_t n, const std::string& op) {
  std::vector<json::Value> requests;
  for (std::size_t i = 0; i < n; ++i) {
    json::Object obj;
    obj.emplace("op", json::Value(op));
    obj.emplace("session", json::Value("w" + std::to_string(i)));
    obj.emplace("k", json::Value(i));
    requests.push_back(json::Value(std::move(obj)));
  }
  return requests;
}

void expect_in_order(const router::ShardClient::PipelineResult& result,
                     std::size_t n) {
  EXPECT_FALSE(result.died) << result.error;
  ASSERT_EQ(result.responses.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(result.responses[i].bool_or("ok", false));
    EXPECT_EQ(result.responses[i].number_or("k", -1.0),
              static_cast<double>(i))
        << "slot " << i;
    // Wire-level stamps are stripped before the caller sees the response.
    EXPECT_FALSE(result.responses[i].has("rid"));
  }
}

TEST(ShardClientPipeline, DuplicatedRepliesWithinTheWindowAreDiscarded) {
  PipelineRig rig = make_rig();
  rig.wire->script({WireFate::Duplicate, WireFate::Deliver,
                    WireFate::Duplicate, WireFate::Deliver});
  expect_in_order(rig.client->call_pipelined(window(4, "status")), 4);
  EXPECT_EQ(rig.wire->stats().duplicated, 2u);
  EXPECT_EQ(rig.client->corrupt_replies(), 0u);  // never looked like loss
}

TEST(ShardClientPipeline, ReorderedRepliesRematchByRid) {
  PipelineRig rig = make_rig();
  // Swap (0,1) and (2,3): every slot must still land on its own request.
  rig.wire->script({WireFate::Reorder, WireFate::Reorder});
  expect_in_order(rig.client->call_pipelined(window(4, "status")), 4);
  EXPECT_EQ(rig.wire->stats().reordered, 2u);
}

TEST(ShardClientPipeline, DuplicatedAndReorderedTogether) {
  PipelineRig rig = make_rig();
  rig.wire->script({WireFate::Duplicate, WireFate::Reorder,
                    WireFate::Duplicate});
  expect_in_order(rig.client->call_pipelined(window(5, "status")), 5);
}

TEST(ShardClientPipeline, DroppedReplyIsResentWithTheSameStamps) {
  PipelineRig rig = make_rig();
  rig.wire->script({WireFate::Drop});
  const auto requests = window(3, "tell");  // mutating: stamp() adds idem
  expect_in_order(rig.client->call_pipelined(requests), 3);
  EXPECT_EQ(rig.client->corrupt_replies(), 1u);

  // The resend re-used the original wire lines bit for bit — same rid,
  // same idempotency key — so the server side dedups instead of
  // double-applying.
  ASSERT_EQ(rig.shard->received.size(), 6u);  // 3 sends + 3 resends
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.shard->received[i], rig.shard->received[i + 3]);
    const json::Value request = json::parse(rig.shard->received[i]);
    EXPECT_FALSE(request.string_or("idem", "").empty());
  }
}

TEST(ShardClient, SingleCallSurvivesADroppedReply) {
  PipelineRig rig = make_rig();
  rig.wire->script({WireFate::Drop});
  json::Object obj;
  obj.emplace("op", json::Value("status"));
  obj.emplace("session", json::Value("s"));
  obj.emplace("k", json::Value(std::size_t{7}));
  const json::Value response = rig.client->call(json::Value(std::move(obj)));
  EXPECT_TRUE(response.bool_or("ok", false));
  EXPECT_EQ(response.number_or("k", -1.0), 7.0);
  EXPECT_EQ(rig.client->corrupt_replies(), 1u);
  EXPECT_TRUE(rig.client->alive());
}

TEST(ShardClient, PersistentCorruptionBecomesShardDeath) {
  PipelineRig rig = make_rig();
  rig.wire->script({WireFate::Drop, WireFate::Drop, WireFate::Drop,
                    WireFate::Drop, WireFate::Drop});
  json::Object obj;
  obj.emplace("op", json::Value("status"));
  obj.emplace("session", json::Value("s"));
  obj.emplace("k", json::Value(std::size_t{0}));
  EXPECT_THROW(rig.client->call(json::Value(std::move(obj))), TransportError);
  EXPECT_FALSE(rig.client->alive());
}

// ---- FramedTransport ---------------------------------------------------------

/// Inner transport whose replies the test queues by hand.
class ScriptedTransport : public Transport {
 public:
  void send(const std::string& line) override { sent.push_back(line); }
  std::string recv() override {
    if (replies.empty()) {
      throw TransportError("scripted transport: out of replies");
    }
    std::string line = std::move(replies.front());
    replies.pop_front();
    return line;
  }
  void ensure_running() override {}
  bool alive() const override { return true; }

  void queue_frame(const std::string& payload) {
    replies.push_back(frame_header(payload));
    replies.push_back(payload);
  }

  std::vector<std::string> sent;
  std::deque<std::string> replies;
};

TEST(FramedTransport, NegotiatesAndSpeaksFrames) {
  auto scripted = std::make_unique<ScriptedTransport>();
  auto* inner = scripted.get();
  inner->queue_frame(R"({"fence_epoch":0,"frame":true,"ok":true})");
  inner->queue_frame(R"({"ok":true,"sessions":[]})");

  FramedTransport framed(std::move(scripted));
  framed.send(R"({"op":"list"})");
  // Wire order: the unframed hello, then header+payload of the request.
  ASSERT_EQ(inner->sent.size(), 3u);
  EXPECT_EQ(inner->sent[0], "{\"frame\":true,\"op\":\"hello\"}");
  FrameHeader header;
  EXPECT_TRUE(parse_frame_header(inner->sent[1], header));
  EXPECT_EQ(inner->sent[2], R"({"op":"list"})");

  EXPECT_EQ(framed.recv(), R"({"ok":true,"sessions":[]})");
  EXPECT_EQ(framed.corrupt_replies(), 0u);
}

TEST(FramedTransport, LegacyPeerFallsBackToPassthrough) {
  auto scripted = std::make_unique<ScriptedTransport>();
  auto* inner = scripted.get();
  // A legacy server answers the hello with a plain unknown-op error.
  inner->replies.push_back(R"({"error":"unknown op 'hello'","ok":false})");
  inner->replies.push_back(R"({"ok":true})");

  FramedTransport framed(std::move(scripted));
  framed.send(R"({"op":"list"})");
  ASSERT_EQ(inner->sent.size(), 2u);
  EXPECT_EQ(inner->sent[1], R"({"op":"list"})");  // no header line
  EXPECT_EQ(framed.recv(), R"({"ok":true})");
}

TEST(FramedTransport, ChecksumMismatchThrowsFrameError) {
  auto scripted = std::make_unique<ScriptedTransport>();
  auto* inner = scripted.get();
  inner->queue_frame(R"({"fence_epoch":0,"frame":true,"ok":true})");
  const std::string good = R"({"ok":true,"value":1})";
  inner->replies.push_back(frame_header(good));
  inner->replies.push_back(R"({"ok":true,"value":2})");  // wrong payload
  inner->queue_frame(good);

  FramedTransport framed(std::move(scripted));
  framed.send(R"({"op":"x"})");
  EXPECT_THROW(framed.recv(), FrameError);
  EXPECT_EQ(framed.corrupt_replies(), 1u);
  // The stream is at a frame boundary: the next frame reads clean.
  EXPECT_EQ(framed.recv(), good);
}

TEST(FramedTransport, CorruptHeaderResyncsToTheNextFrame) {
  auto scripted = std::make_unique<ScriptedTransport>();
  auto* inner = scripted.get();
  inner->queue_frame(R"({"fence_epoch":0,"frame":true,"ok":true})");
  // A corrupted header followed by its (now orphaned) payload — both must
  // be consumed before the next good frame.
  inner->replies.push_back("pwu1 garbage notahex0");
  inner->replies.push_back(R"({"orphaned":"payload"})");
  const std::string good = R"({"ok":true})";
  inner->queue_frame(good);

  FramedTransport framed(std::move(scripted));
  framed.send(R"({"op":"x"})");
  EXPECT_THROW(framed.recv(), FrameError);
  EXPECT_EQ(framed.resyncs(), 1u);
  EXPECT_EQ(framed.recv(), good);
}

TEST(FramedTransport, ResyncPushesBackAStandaloneGarbageLine) {
  auto scripted = std::make_unique<ScriptedTransport>();
  auto* inner = scripted.get();
  inner->queue_frame(R"({"fence_epoch":0,"frame":true,"ok":true})");
  // Garbage line standing alone, directly followed by a good frame: the
  // resync must not eat the good frame's header.
  inner->replies.push_back("%%% line noise %%%");
  const std::string good = R"({"ok":true,"value":3})";
  inner->queue_frame(good);

  FramedTransport framed(std::move(scripted));
  framed.send(R"({"op":"x"})");
  EXPECT_THROW(framed.recv(), FrameError);
  EXPECT_EQ(framed.recv(), good);
}

// ---- PipeTransport short reads -----------------------------------------------

TEST(PipeTransport, LongReplySplitAcrossPipeBufferBoundaries) {
  // The reply is ~120 KiB on one line — far past the 64 KiB pipe capacity,
  // so the kernel delivers it in several short reads and recv() must loop
  // to the newline instead of surfacing a truncated prefix.
  const std::string command =
      "sh -c 'read -r line; "
      "printf \"{\\\"ok\\\":true,\\\"pad\\\":\\\"\"; "
      "head -c 120000 /dev/zero | tr \"\\\\0\" x; "
      "printf \"\\\"}\\n\"'";
  PipeTransport pipe(command, 30.0);
  const std::string reply = pipe.request(R"({"op":"status"})");
  ASSERT_GT(reply.size(), 120000u);
  const json::Value parsed = json::parse(reply);
  EXPECT_TRUE(parsed.bool_or("ok", false));
  EXPECT_EQ(parsed.at("pad").as_string().size(), 120000u);
}

}  // namespace
}  // namespace pwu::service
