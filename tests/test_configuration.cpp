#include "space/configuration.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace pwu::space {
namespace {

TEST(Configuration, EqualityByLevels) {
  const Configuration a({1, 2, 3});
  const Configuration b({1, 2, 3});
  const Configuration c({1, 2, 4});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Configuration, AccessorsAndMutation) {
  Configuration c({0, 5});
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.level(1), 5u);
  c.set_level(1, 7);
  EXPECT_EQ(c.level(1), 7u);
  EXPECT_THROW(c.level(2), std::out_of_range);
  EXPECT_THROW(c.set_level(2, 0), std::out_of_range);
}

TEST(Configuration, HashConsistentWithEquality) {
  const Configuration a({4, 4, 4});
  const Configuration b({4, 4, 4});
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(Configuration, HashSeparatesNearbyConfigs) {
  // Swapped levels and shifted levels must hash differently — this is what
  // pool de-duplication relies on.
  const Configuration a({1, 2});
  const Configuration b({2, 1});
  const Configuration c({1, 3});
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_NE(a.hash(), c.hash());
}

TEST(Configuration, WorksInUnorderedSet) {
  std::unordered_set<Configuration, ConfigurationHash> set;
  set.insert(Configuration({0, 1}));
  set.insert(Configuration({0, 1}));  // duplicate
  set.insert(Configuration({1, 0}));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(Configuration({0, 1})));
  EXPECT_FALSE(set.contains(Configuration({9, 9})));
}

TEST(Configuration, EmptyConfiguration) {
  const Configuration empty;
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty, Configuration{});
}

TEST(Configuration, LevelsSpanView) {
  const Configuration c({3, 1, 4});
  const auto levels = c.levels();
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[2], 4u);
}

}  // namespace
}  // namespace pwu::space
