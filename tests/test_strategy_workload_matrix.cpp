// Cross-product robustness sweep: every sampling strategy must drive a
// complete, invariant-respecting Algorithm-1 run on workloads of every
// flavour (numeric kernel, categorical-heavy application, synthetic).

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "core/active_learner.hpp"
#include "space/pool.hpp"
#include "workloads/registry.hpp"
#include "workloads/synthetic.hpp"

namespace pwu::core {
namespace {

struct MatrixCase {
  std::string workload;
  std::string strategy;
};

std::vector<MatrixCase> matrix_cases() {
  std::vector<MatrixCase> cases;
  for (const char* workload : {"gesummv", "kripke", "hypre", "stencil3d"}) {
    for (const char* strategy : {"pwu", "pbus", "maxu", "bestperf", "brs",
                                 "random", "cv", "egreedy", "ei", "diverse"}) {
      cases.push_back({workload, strategy});
    }
  }
  return cases;
}

class StrategyWorkloadMatrix
    : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(StrategyWorkloadMatrix, CompletesWithInvariants) {
  const MatrixCase& param = GetParam();
  const auto workload = workloads::make_workload(param.workload);
  util::Rng rng(99);
  const auto split =
      space::make_pool_split(workload->space(), 160, 90, rng);
  const TestSet test = build_test_set(*workload, split.test, rng);

  LearnerConfig cfg;
  cfg.n_init = 8;
  cfg.n_max = 24;
  cfg.forest.num_trees = 10;
  cfg.eval_every = 8;
  ActiveLearner learner(*workload, cfg);

  StrategyPtr strategy = make_strategy(param.strategy, 0.05);
  util::Rng run_rng(7);
  const auto result = learner.run(*strategy, split.pool, test, run_rng);

  // Budget hit exactly, no duplicate evaluations, finite metrics, CC sums.
  EXPECT_EQ(result.train_configs.size(), 24u);
  std::unordered_set<space::Configuration, space::ConfigurationHash> seen;
  for (const auto& c : result.train_configs) {
    EXPECT_TRUE(seen.insert(c).second);
  }
  for (const auto& rec : result.trace) {
    EXPECT_TRUE(std::isfinite(rec.top_alpha_rmse.at(0)));
    EXPECT_GT(rec.cumulative_cost, 0.0);
  }
  EXPECT_NEAR(result.trace.back().cumulative_cost,
              cumulative_cost(result.train_labels), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, StrategyWorkloadMatrix, ::testing::ValuesIn(matrix_cases()),
    [](const auto& info) {
      return info.param.workload + "_" + info.param.strategy;
    });

}  // namespace
}  // namespace pwu::core
