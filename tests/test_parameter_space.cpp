#include "space/parameter_space.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.hpp"

namespace pwu::space {
namespace {

ParameterSpace small_space() {
  ParameterSpace s;
  s.add(Parameter::ordinal("tile", {1, 16, 32}));
  s.add(Parameter::boolean("vec"));
  s.add(Parameter::categorical("layout", {"a", "b", "c", "d"}));
  return s;
}

TEST(ParameterSpace, AddReturnsIndexAndRejectsDuplicates) {
  ParameterSpace s;
  EXPECT_EQ(s.add(Parameter::boolean("x")), 0u);
  EXPECT_EQ(s.add(Parameter::boolean("y")), 1u);
  EXPECT_THROW(s.add(Parameter::boolean("x")), std::invalid_argument);
}

TEST(ParameterSpace, IndexOfFindsByName) {
  const ParameterSpace s = small_space();
  EXPECT_EQ(s.index_of("vec"), 1u);
  EXPECT_THROW(s.index_of("nope"), std::out_of_range);
}

TEST(ParameterSpace, SizeIsProductOfLevels) {
  const ParameterSpace s = small_space();
  EXPECT_EQ(static_cast<long long>(s.size()), 3 * 2 * 4);
  EXPECT_NEAR(s.log10_size(), std::log10(24.0), 1e-12);
}

TEST(ParameterSpace, RandomConfigIsValid) {
  const ParameterSpace s = small_space();
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const Configuration c = s.random_config(rng);
    EXPECT_TRUE(s.contains(c));
  }
}

TEST(ParameterSpace, RandomConfigCoversSpace) {
  const ParameterSpace s = small_space();
  util::Rng rng(6);
  std::set<std::size_t> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(s.random_config(rng).hash());
  }
  EXPECT_EQ(seen.size(), 24u);  // all configurations eventually drawn
}

TEST(ParameterSpace, FeaturesUseNumericValues) {
  const ParameterSpace s = small_space();
  const Configuration c({2, 1, 3});
  const auto f = s.features(c);
  ASSERT_EQ(f.size(), 3u);
  EXPECT_DOUBLE_EQ(f[0], 32.0);  // ordinal actual value
  EXPECT_DOUBLE_EQ(f[1], 1.0);   // boolean
  EXPECT_DOUBLE_EQ(f[2], 3.0);   // categorical level index
}

TEST(ParameterSpace, FeaturesShapeMismatchThrows) {
  const ParameterSpace s = small_space();
  EXPECT_THROW(s.features(Configuration({0, 0})), std::invalid_argument);
}

TEST(ParameterSpace, CategoricalMaskAndCardinalities) {
  const ParameterSpace s = small_space();
  const auto mask = s.categorical_mask();
  ASSERT_EQ(mask.size(), 3u);
  EXPECT_FALSE(mask[0]);
  EXPECT_FALSE(mask[1]);
  EXPECT_TRUE(mask[2]);
  const auto card = s.cardinalities();
  EXPECT_EQ(card, (std::vector<std::size_t>{3, 2, 4}));
}

TEST(ParameterSpace, DescribeNamesEveryParameter) {
  const ParameterSpace s = small_space();
  const std::string d = s.describe(Configuration({0, 1, 2}));
  EXPECT_EQ(d, "tile=1, vec=true, layout=c");
}

TEST(ParameterSpace, ContainsRejectsBadShapesAndLevels) {
  const ParameterSpace s = small_space();
  EXPECT_FALSE(s.contains(Configuration({0, 0})));
  EXPECT_FALSE(s.contains(Configuration({3, 0, 0})));  // tile has 3 levels
  EXPECT_TRUE(s.contains(Configuration({2, 1, 3})));
}

TEST(ParameterSpace, EnumerateProducesAllDistinctConfigs) {
  const ParameterSpace s = small_space();
  const auto all = s.enumerate();
  EXPECT_EQ(all.size(), 24u);
  std::set<std::size_t> hashes;
  for (const auto& c : all) {
    EXPECT_TRUE(s.contains(c));
    hashes.insert(c.hash());
  }
  EXPECT_EQ(hashes.size(), 24u);
}

TEST(ParameterSpace, EnumerateRespectsLimit) {
  const ParameterSpace s = small_space();
  EXPECT_THROW(s.enumerate(10), std::length_error);
}

TEST(ParameterSpace, EmptySpaceHasSizeOne) {
  const ParameterSpace s;
  EXPECT_EQ(static_cast<long long>(s.size()), 1);
  EXPECT_DOUBLE_EQ(s.log10_size(), 0.0);
}

}  // namespace
}  // namespace pwu::space
