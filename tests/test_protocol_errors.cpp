// Hardened protocol surface: a table of malformed, hostile, and merely
// confused request lines runs through the serve loop, and every one must
// come back as a structured {"ok":false,"error":...} response — with the
// server still alive and serving valid requests afterwards. A parse error
// must never terminate pwu_serve.

#include "service/protocol.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "service/session_manager.hpp"
#include "util/json.hpp"

namespace pwu::service {
namespace {

namespace json = util::json;

struct MalformedCase {
  const char* name;
  std::string request;
  /// Substring the structured error must contain ("" = any non-empty).
  std::string error_contains;
};

std::vector<MalformedCase> malformed_cases() {
  return {
      {"truncated JSON", R"({"op":"create","session":"x")", ""},
      {"not JSON at all", "garbage in, structured error out", ""},
      {"op of the wrong type", R"({"op":42})", ""},
      {"unknown op", R"({"op":"frobnicate"})", "unknown op"},
      {"ask without session", R"({"op":"ask"})", "session"},
      {"unknown session", R"({"op":"ask","session":"ghost"})",
       "no session named"},
      {"levels of the wrong type",
       R"({"op":"tell","session":"s","levels":"abc","time":1.0})",
       "levels"},
      {"fractional level index",
       R"({"op":"tell","session":"s","levels":[1.5,0],"time":1.0})", ""},
      {"negative level index",
       R"({"op":"tell","session":"s","levels":[-3,0],"time":1.0})", ""},
      {"tell without time",
       R"({"op":"tell","session":"s","levels":[0,0,0,0,0,0,0,0]})",
       "time"},
      {"tell with unknown failure status",
       R"({"op":"tell","session":"s","levels":[0,0,0,0,0,0,0,0],)"
       R"("status":"exploded"})",
       "unknown status"},
      {"tell with negative failure cost",
       R"({"op":"tell","session":"s","levels":[0,0,0,0,0,0,0,0],)"
       R"("status":"crash","cost":-1.0})",
       "cost"},
      {"tell for a non-outstanding config",
       R"({"op":"tell","session":"s","levels":[0],"time":1.0})", ""},
      {"create with unknown workload",
       R"({"op":"create","session":"y","workload":"no-such-kernel"})",
       ""},
      {"create with an unparseable seed",
       R"({"op":"create","session":"y","workload":"atax",)"
       R"("seed":"notanumber"})",
       ""},
      {"create with a path-hostile session name",
       R"({"op":"create","session":"../escape","workload":"atax"})", ""},
      {"resume from a missing checkpoint",
       R"({"op":"resume","session":"z","path":"/nonexistent/z.ckpt"})",
       ""},
      {"request line exceeding the size cap",
       std::string((1 << 20) + 100, 'x'), "exceeds 1 MiB"},
  };
}

std::string valid_create() {
  return R"({"op":"create","session":"s","workload":"gesummv",)"
         R"("n_init":4,"n_batch":2,"n_max":8,"pool_size":60,"trees":4,)"
         R"("seed":13})";
}

TEST(ProtocolErrors, MalformedLinesGetStructuredErrorsAndServerSurvives) {
  const auto cases = malformed_cases();

  // One serve loop sees everything: a valid create, then each malformed
  // line immediately followed by a liveness probe, then a valid ask and a
  // shutdown — interleaved blank lines must be skipped without responses.
  std::ostringstream in_text;
  in_text << valid_create() << '\n';
  for (const auto& c : cases) {
    in_text << c.request << '\n';
    in_text << "\n  \t \n";  // blank lines between requests are ignored
    in_text << R"({"op":"status","session":"s"})" << '\n';
  }
  in_text << R"({"op":"ask","session":"s"})" << '\n';
  in_text << R"({"op":"shutdown"})" << '\n';

  SessionManager manager;
  std::istringstream in(in_text.str());
  std::ostringstream out;
  const std::size_t handled = run_serve_loop(in, out, manager);

  std::vector<json::Value> responses;
  std::istringstream lines(out.str());
  for (std::string line; std::getline(lines, line);) {
    ASSERT_FALSE(line.empty());
    responses.push_back(json::parse(line));  // every reply is valid JSON
  }

  // create + (error + probe) per case + ask + shutdown; blank lines
  // produced no responses and counted as nothing handled.
  const std::size_t expected = 1 + 2 * cases.size() + 2;
  EXPECT_EQ(handled, expected);
  ASSERT_EQ(responses.size(), expected);

  ASSERT_TRUE(responses.front().at("ok").as_bool())
      << responses.front().dump();

  for (std::size_t i = 0; i < cases.size(); ++i) {
    const json::Value& error = responses[1 + 2 * i];
    const json::Value& probe = responses[2 + 2 * i];
    SCOPED_TRACE(cases[i].name);
    ASSERT_TRUE(error.is_object()) << error.dump();
    EXPECT_FALSE(error.at("ok").as_bool()) << error.dump();
    ASSERT_TRUE(error.at("error").is_string()) << error.dump();
    const std::string& message = error.at("error").as_string();
    EXPECT_FALSE(message.empty());
    if (!cases[i].error_contains.empty()) {
      EXPECT_NE(message.find(cases[i].error_contains), std::string::npos)
          << message;
    }
    // The very next request on the same connection succeeded: the server
    // is alive, and the session untouched by the malformed line.
    ASSERT_TRUE(probe.at("ok").as_bool()) << probe.dump();
    EXPECT_DOUBLE_EQ(probe.at("status").at("labeled").as_number(), 0.0);
  }

  // The post-table ask still works and the shutdown is acknowledged.
  const json::Value& asked = responses[expected - 2];
  ASSERT_TRUE(asked.at("ok").as_bool()) << asked.dump();
  EXPECT_EQ(asked.at("candidates").as_array().size(), 4u);  // n_init
  const json::Value& bye = responses.back();
  EXPECT_TRUE(bye.at("ok").as_bool());
  EXPECT_TRUE(bye.at("shutdown").as_bool());
}

TEST(ProtocolErrors, HandleRequestNeverThrowsForRequestLevelErrors) {
  SessionManager manager;
  for (const auto& c : malformed_cases()) {
    if (c.request.size() > (1 << 20)) continue;  // serve-loop-level guard
    SCOPED_TRACE(c.name);
    json::Value request;
    try {
      request = json::parse(c.request);
    } catch (const std::exception&) {
      continue;  // parse errors are the serve loop's department
    }
    json::Value response;
    EXPECT_NO_THROW(response = handle_request(manager, request));
    ASSERT_TRUE(response.is_object());
    EXPECT_FALSE(response.at("ok").as_bool()) << response.dump();
  }
  EXPECT_EQ(manager.size(), 0u);  // nothing malformed ever created state
}

}  // namespace
}  // namespace pwu::service
