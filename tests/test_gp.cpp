#include "gp/gaussian_process.hpp"
#include "gp/kernel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace pwu::gp {
namespace {

// ---- kernels ----

TEST(Kernels, RbfBasicProperties) {
  const auto k = make_rbf(2.0, 0.5);
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> y = {1.2, 2.3};
  // Symmetric, maximal at zero distance, positive.
  EXPECT_DOUBLE_EQ((*k)(x, x), 2.0);
  EXPECT_DOUBLE_EQ((*k)(x, y), (*k)(y, x));
  EXPECT_LT((*k)(x, y), 2.0);
  EXPECT_GT((*k)(x, y), 0.0);
  EXPECT_DOUBLE_EQ(k->self_variance(), 2.0);
}

TEST(Kernels, RbfDecaysWithDistance) {
  const auto k = make_rbf(1.0, 0.5);
  const std::vector<double> origin = {0.0};
  double prev = 2.0;
  for (double d : {0.1, 0.5, 1.0, 2.0}) {
    const std::vector<double> x = {d};
    const double v = (*k)(origin, x);
    EXPECT_LT(v, prev);
    prev = v;
  }
}

TEST(Kernels, Matern52MatchesClosedForm) {
  const auto k = make_matern52(1.0, 1.0);
  const std::vector<double> a = {0.0};
  const std::vector<double> b = {1.0};
  const double r = 1.0;
  const double sqrt5 = std::sqrt(5.0);
  const double expected =
      (1.0 + sqrt5 * r + 5.0 / 3.0 * r * r) * std::exp(-sqrt5 * r);
  EXPECT_NEAR((*k)(a, b), expected, 1e-12);
}

TEST(Kernels, ArdWeighsDimensionsDifferently) {
  const auto k = make_rbf_ard(1.0, {0.1, 10.0});
  const std::vector<double> origin = {0.0, 0.0};
  const std::vector<double> dx = {0.5, 0.0};  // short lengthscale: decays fast
  const std::vector<double> dy = {0.0, 0.5};  // long lengthscale: barely
  EXPECT_LT((*k)(origin, dx), (*k)(origin, dy));
}

TEST(Kernels, ParameterValidation) {
  EXPECT_THROW(make_rbf(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(make_rbf(1.0, -1.0), std::invalid_argument);
  EXPECT_THROW(make_matern52(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(make_rbf_ard(1.0, {1.0, 0.0}), std::invalid_argument);
}

// ---- Gaussian process regression ----

rf::Dataset sine_data(std::size_t n, util::Rng& rng, double noise = 0.0) {
  rf::Dataset d(1);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(0.0, 6.28);
    d.add(std::vector<double>{x},
          std::sin(x) + (noise > 0.0 ? rng.normal(0.0, noise) : 0.0));
  }
  return d;
}

TEST(GaussianProcess, InterpolatesNoiseFreeData) {
  util::Rng rng(1);
  const rf::Dataset train = sine_data(40, rng);
  GaussianProcess gp;
  GpConfig config;
  config.noise_variance = 1e-8;
  gp.fit(train, config);
  for (std::size_t i = 0; i < train.size(); i += 5) {
    EXPECT_NEAR(gp.predict(train.row(i)), train.y(i), 1e-2);
  }
}

TEST(GaussianProcess, PredictsSmoothFunctionOutOfSample) {
  util::Rng rng(2);
  const rf::Dataset train = sine_data(80, rng);
  GaussianProcess gp;
  gp.fit(train);
  util::Rng probe(3);
  double max_err = 0.0;
  for (int t = 0; t < 50; ++t) {
    const double x = probe.uniform(0.3, 6.0);
    max_err = std::max(max_err,
                       std::abs(gp.predict(std::vector<double>{x}) -
                                std::sin(x)));
  }
  EXPECT_LT(max_err, 0.15);
}

TEST(GaussianProcess, UncertaintyGrowsAwayFromData) {
  // Train only on [0, 2]; the posterior variance at x = 6 must dominate
  // the variance inside the data.
  rf::Dataset train(1);
  util::Rng rng(4);
  for (int i = 0; i < 30; ++i) {
    const double x = rng.uniform(0.0, 2.0);
    train.add(std::vector<double>{x}, x * x);
  }
  GaussianProcess gp;
  GpConfig config;
  config.median_heuristic = false;
  config.lengthscale = 0.1;
  gp.fit(train, config);
  const double inside = gp.predict_full(std::vector<double>{1.0}).stddev;
  const double outside = gp.predict_full(std::vector<double>{6.0}).stddev;
  EXPECT_GT(outside, inside * 3.0);
}

TEST(GaussianProcess, VarianceNonNegativeEverywhere) {
  util::Rng rng(5);
  const rf::Dataset train = sine_data(60, rng, 0.05);
  GaussianProcess gp;
  gp.fit(train);
  util::Rng probe(6);
  for (int t = 0; t < 100; ++t) {
    const auto p = gp.predict_full(std::vector<double>{probe.uniform(-2.0, 9.0)});
    EXPECT_GE(p.variance, 0.0);
    EXPECT_TRUE(std::isfinite(p.mean));
  }
}

TEST(GaussianProcess, HandlesConstantLabels) {
  rf::Dataset train(1);
  for (int i = 0; i < 10; ++i) {
    train.add(std::vector<double>{static_cast<double>(i)}, 3.0);
  }
  GaussianProcess gp;
  gp.fit(train);
  EXPECT_NEAR(gp.predict(std::vector<double>{4.5}), 3.0, 1e-6);
}

TEST(GaussianProcess, HandlesConstantFeatures) {
  rf::Dataset train(2);
  util::Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    train.add(std::vector<double>{x, 5.0}, 2.0 * x);
  }
  GaussianProcess gp;
  EXPECT_NO_THROW(gp.fit(train));
  EXPECT_NEAR(gp.predict(std::vector<double>{0.5, 5.0}), 1.0, 0.1);
}

TEST(GaussianProcess, RejectsEmptyDataAndUnknownKernel) {
  GaussianProcess gp;
  rf::Dataset empty(1);
  EXPECT_THROW(gp.fit(empty), std::invalid_argument);
  EXPECT_THROW(gp.predict(std::vector<double>{1.0}), std::logic_error);

  rf::Dataset one(1);
  one.add(std::vector<double>{0.0}, 1.0);
  GpConfig bad;
  bad.kernel = "perceptron";
  EXPECT_THROW(gp.fit(one, bad), std::invalid_argument);
}

TEST(GaussianProcess, MedianHeuristicBeatsWildFixedLengthscale) {
  util::Rng rng(8);
  const rf::Dataset train = sine_data(60, rng);
  util::Rng probe_rng(9);

  GaussianProcess heuristic, fixed;
  GpConfig h_cfg;
  h_cfg.median_heuristic = true;
  heuristic.fit(train, h_cfg);
  GpConfig f_cfg;
  f_cfg.median_heuristic = false;
  f_cfg.lengthscale = 50.0;  // absurdly wide: everything correlates
  fixed.fit(train, f_cfg);

  double err_h = 0.0, err_f = 0.0;
  for (int t = 0; t < 50; ++t) {
    const double x = probe_rng.uniform(0.5, 5.8);
    err_h += std::abs(heuristic.predict(std::vector<double>{x}) - std::sin(x));
    err_f += std::abs(fixed.predict(std::vector<double>{x}) - std::sin(x));
  }
  EXPECT_LT(err_h, err_f);
}

TEST(GaussianProcess, BothKernelFamiliesWork) {
  util::Rng rng(10);
  const rf::Dataset train = sine_data(50, rng);
  for (const char* kernel : {"rbf", "matern52"}) {
    GaussianProcess gp;
    GpConfig config;
    config.kernel = kernel;
    gp.fit(train, config);
    EXPECT_NEAR(gp.predict(std::vector<double>{1.57}), 1.0, 0.2) << kernel;
  }
}

}  // namespace
}  // namespace pwu::gp
