// The flat inference engine's contract is bit-exactness: compiling trees
// into the contiguous layout and evaluating in cache-blocked order must
// change performance only — never a single output bit. These tests pin that
// across every workload space in the registry and against a golden forest
// saved by the pre-overhaul implementation.

#include "rf/flat_forest.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "rf/feature_matrix.hpp"
#include "rf/random_forest.hpp"
#include "util/thread_pool.hpp"
#include "workloads/registry.hpp"

#ifndef PWU_TEST_DATA_DIR
#define PWU_TEST_DATA_DIR "tests/data"
#endif

namespace pwu::rf {
namespace {

TEST(FeatureMatrix, RowAccessAndWidthEnforcement) {
  FeatureMatrix m;
  m.add_row(std::vector<double>{1.0, 2.0});
  m.add_row(std::vector<double>{3.0, 4.0});
  EXPECT_EQ(m.num_rows(), 2u);
  EXPECT_EQ(m.num_cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_THROW(m.add_row(std::vector<double>{1.0, 2.0, 3.0}),
               std::invalid_argument);
  m.row(0)[1] = 9.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 9.0);
}

TEST(FeatureMatrix, RemoveRowSwapMirrorsPoolTake) {
  FeatureMatrix m = FeatureMatrix::from_rows({{0.0}, {1.0}, {2.0}, {3.0}});
  m.remove_row_swap(1);  // last row (3) moves into slot 1
  ASSERT_EQ(m.num_rows(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  m.remove_row_swap(2);  // removing the last row is a plain pop
  ASSERT_EQ(m.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
  EXPECT_THROW(m.remove_row_swap(5), std::out_of_range);
}

/// Training set drawn from a workload's own space (so categorical features
/// carry real level indices) with the workload's analytic time as label.
Dataset space_dataset(const workloads::Workload& workload, std::size_t n,
                      util::Rng& rng) {
  const auto& space = workload.space();
  Dataset data(space.num_params(), space.categorical_mask(),
               space.cardinalities());
  for (std::size_t i = 0; i < n; ++i) {
    const auto config = space.random_config(rng);
    data.add(space.features(config), workload.measure(config, rng, 1));
  }
  return data;
}

TEST(FlatForest, BitExactAcrossAllWorkloadSpaces) {
  // Property over the paper's full benchmark set (12 kernels + kripke +
  // hypre): flat mean AND variance equal the tree-walk reference exactly,
  // scalar and batched, serial and parallel.
  util::ThreadPool pool(3);
  for (const auto& name : workloads::all_names()) {
    SCOPED_TRACE(name);
    const auto workload = workloads::make_workload(name);
    util::Rng rng(0xF1A7 + std::hash<std::string>{}(name) % 1000);
    const Dataset train = space_dataset(*workload, 80, rng);

    ForestConfig cfg;
    cfg.num_trees = 15;
    util::Rng fit_rng(99);
    RandomForest forest;
    forest.fit(train, cfg, fit_rng);

    const auto& space = workload->space();
    FeatureMatrix probes =
        FeatureMatrix::with_capacity(space.num_params(), 60);
    for (std::size_t i = 0; i < 60; ++i) {
      space.write_features(space.random_config(rng), probes.append_row());
    }

    const auto serial = forest.predict_stats_batch(probes);
    const auto parallel = forest.predict_stats_batch(probes, &pool);
    ASSERT_EQ(serial.size(), probes.num_rows());
    for (std::size_t i = 0; i < probes.num_rows(); ++i) {
      const PredictionStats ref =
          forest.predict_stats_reference(probes.row(i));
      const PredictionStats one = forest.predict_stats(probes.row(i));
      // EXPECT_EQ, not NEAR: the contract is bit-identity.
      EXPECT_EQ(one.mean, ref.mean);
      EXPECT_EQ(one.variance, ref.variance);
      EXPECT_EQ(serial[i].mean, ref.mean);
      EXPECT_EQ(serial[i].variance, ref.variance);
      EXPECT_EQ(parallel[i].mean, ref.mean);
      EXPECT_EQ(parallel[i].variance, ref.variance);
    }
  }
}

TEST(FlatForest, CompiledLayoutMatchesTreeWalkPerTree) {
  util::Rng rng(5);
  Dataset data(3);
  for (int i = 0; i < 200; ++i) {
    const std::vector<double> row = {rng.uniform(0.0, 4.0),
                                     rng.uniform(0.0, 4.0),
                                     rng.uniform(0.0, 4.0)};
    data.add(row, row[0] * row[1] - row[2]);
  }
  ForestConfig cfg;
  cfg.num_trees = 8;
  util::Rng fit_rng(6);
  RandomForest forest;
  forest.fit(data, cfg, fit_rng);

  const FlatForest& flat = forest.flat();
  EXPECT_EQ(flat.num_trees(), 8u);
  EXPECT_EQ(flat.num_nodes(), forest.total_nodes());

  std::vector<double> per_tree(flat.num_trees());
  const std::vector<double> probe = {1.5, 2.5, 0.5};
  flat.predict_per_tree(probe, per_tree);
  double sum = 0.0;
  for (double p : per_tree) sum += p;
  EXPECT_EQ(flat.predict_one(probe), sum / 8.0);
}

TEST(FlatForest, EmptyAndMismatchedInputsThrow) {
  FlatForest flat;
  EXPECT_TRUE(flat.empty());
  const std::vector<double> row = {1.0};
  EXPECT_THROW(flat.predict_one(row), std::logic_error);

  util::Rng rng(7);
  Dataset data(1);
  for (int i = 0; i < 30; ++i) {
    data.add(std::vector<double>{rng.uniform(0.0, 1.0)}, rng.uniform(0.0, 1.0));
  }
  ForestConfig cfg;
  cfg.num_trees = 3;
  RandomForest forest;
  forest.fit(data, cfg, rng);
  std::vector<PredictionStats> out(2);
  const FeatureMatrix rows = FeatureMatrix::from_rows({{0.5}});
  EXPECT_THROW(forest.flat().predict_stats(rows, out), std::invalid_argument);
  std::vector<double> small(1);
  EXPECT_THROW(forest.flat().predict_per_tree(row, small),
               std::invalid_argument);
}

TEST(FlatForest, GoldenPreOverhaulForestPredictsIdentically) {
  // Fixture captured before the flat-engine/presorted-fitter overhaul: a
  // forest saved by the old implementation (mixed numerical/categorical
  // splits) plus 40 probe rows with its predict_stats outputs at full
  // precision. Loading it today must reproduce every double exactly —
  // the serialized-model compatibility guarantee checkpoint/resume
  // depends on.
  const std::string path =
      std::string(PWU_TEST_DATA_DIR) + "/golden_forest_v0.txt";
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing fixture " << path;

  std::string t1, t2, t3;
  ASSERT_TRUE(in >> t1 >> t2 >> t3);
  ASSERT_EQ(t2, "MODEL");

  RandomForest forest;
  forest.load(in);
  EXPECT_EQ(forest.num_trees(), 7u);

  ASSERT_TRUE(in >> t1 >> t2 >> t3);
  ASSERT_EQ(t2, "PREDICTIONS");
  std::size_t count = 0;
  ASSERT_TRUE(in >> count);
  ASSERT_GT(count, 0u);

  std::vector<double> row(4);
  for (std::size_t i = 0; i < count; ++i) {
    double expected_mean = 0.0, expected_variance = 0.0;
    ASSERT_TRUE(in >> row[0] >> row[1] >> row[2] >> row[3] >>
                expected_mean >> expected_variance)
        << "truncated fixture at row " << i;
    const PredictionStats flat = forest.predict_stats(row);
    const PredictionStats ref = forest.predict_stats_reference(row);
    EXPECT_EQ(flat.mean, expected_mean) << "row " << i;
    EXPECT_EQ(flat.variance, expected_variance) << "row " << i;
    EXPECT_EQ(ref.mean, expected_mean) << "row " << i;
    EXPECT_EQ(ref.variance, expected_variance) << "row " << i;
  }
}

}  // namespace
}  // namespace pwu::rf
