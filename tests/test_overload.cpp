// Unit coverage for the overload-resilience layer: watchdog/cancellation
// primitives, resource budgets, cancellable forest fits, admission control,
// deadline-degraded asks, quarantine, eviction/lazy-resume, and the
// hardened protocol surface. The multi-hundred-session schedules live in
// test_soak.cpp; these are the building blocks, one behavior at a time.

#include <gtest/gtest.h>

#include <filesystem>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "rf/dataset.hpp"
#include "rf/random_forest.hpp"
#include "service/overload.hpp"
#include "service/protocol.hpp"
#include "service/session_manager.hpp"
#include "space/pool.hpp"
#include "util/json.hpp"
#include "util/resource_budget.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/watchdog.hpp"
#include "workloads/registry.hpp"

namespace pwu {
namespace {

// ---------------------------------------------------------------------------
// util primitives
// ---------------------------------------------------------------------------

TEST(Watchdog, ExpiresOnManualClock) {
  util::ManualTickSource ticks;
  util::Watchdog dog;
  EXPECT_FALSE(dog.armed());
  EXPECT_FALSE(dog.expired());

  dog.arm(ticks, 10);
  EXPECT_TRUE(dog.armed());
  EXPECT_FALSE(dog.expired());
  EXPECT_EQ(dog.elapsed_ms(), 0);

  ticks.advance(10);
  EXPECT_FALSE(dog.expired());  // budget not *exceeded* yet
  ticks.advance(1);
  EXPECT_TRUE(dog.expired());
  EXPECT_EQ(dog.elapsed_ms(), 11);

  dog.disarm();
  EXPECT_FALSE(dog.armed());
  EXPECT_FALSE(dog.expired());
  EXPECT_EQ(dog.elapsed_ms(), 0);
}

TEST(Watchdog, ZeroBudgetMeansUnsupervised) {
  util::ManualTickSource ticks;
  util::Watchdog dog;
  dog.arm(ticks, 0);
  ticks.advance(1000000);
  EXPECT_FALSE(dog.armed());
  EXPECT_FALSE(dog.expired());
}

TEST(CancelToken, RequestAndThrow) {
  util::CancelToken token;
  EXPECT_FALSE(token.requested());
  EXPECT_NO_THROW(token.throw_if_requested());
  token.request();
  EXPECT_TRUE(token.requested());
  EXPECT_THROW(token.throw_if_requested(), util::Cancelled);
  token.reset();
  EXPECT_NO_THROW(token.throw_if_requested());
}

TEST(ResourceBudget, ChargesReplaceAndRelease) {
  util::ResourceBudget budget(100);
  EXPECT_EQ(budget.capacity(), 100u);
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_FALSE(budget.over_capacity());

  EXPECT_EQ(budget.charge("a", 60), 60u);
  EXPECT_EQ(budget.charge("b", 30), 90u);
  EXPECT_FALSE(budget.over_capacity());
  EXPECT_EQ(budget.excess(), 0u);

  // A new charge for the same key replaces, never accumulates.
  EXPECT_EQ(budget.charge("a", 80), 110u);
  EXPECT_TRUE(budget.over_capacity());
  EXPECT_EQ(budget.excess(), 10u);
  EXPECT_EQ(budget.used("a"), 80u);

  EXPECT_EQ(budget.charge("a", 0), 30u);  // released
  EXPECT_EQ(budget.used("a"), 0u);
  EXPECT_FALSE(budget.over_capacity());
}

TEST(ResourceBudget, ZeroCapacityIsUnlimited) {
  util::ResourceBudget budget;
  budget.charge("a", std::size_t{1} << 40);
  EXPECT_FALSE(budget.over_capacity());
  EXPECT_EQ(budget.excess(), 0u);
}

// ---------------------------------------------------------------------------
// cancellable forest fit
// ---------------------------------------------------------------------------

rf::Dataset tiny_dataset(std::size_t rows) {
  const auto workload = workloads::make_workload("gesummv");
  const auto& space = workload->space();
  util::Rng rng(11);
  rf::Dataset data(space.num_params(), space.categorical_mask(),
                   space.cardinalities());
  for (std::size_t i = 0; i < rows; ++i) {
    const auto config = space.random_config(rng);
    data.add(space.features(config), workload->measure(config, rng, 1));
  }
  return data;
}

TEST(CancellableFit, PreRequestedCancelLeavesForestUnfitted) {
  const rf::Dataset data = tiny_dataset(30);
  rf::ForestConfig cfg;
  cfg.num_trees = 8;
  util::CancelToken cancel;
  cancel.request();

  rf::RandomForest forest;
  util::Rng rng(5);
  EXPECT_THROW(forest.fit(data, cfg, rng, nullptr, &cancel), util::Cancelled);
  EXPECT_FALSE(forest.fitted());

  // The same forest object fits fine once the cancellation is withdrawn.
  cancel.reset();
  util::Rng rng2(5);
  EXPECT_NO_THROW(forest.fit(data, cfg, rng2, nullptr, &cancel));
  EXPECT_TRUE(forest.fitted());
  EXPECT_GT(forest.memory_bytes(), 0u);
}

TEST(CancellableFit, CancelledSessionRefitRetriesIdentically) {
  // A cancelled AskTellSession::refit must roll its rng back so the retried
  // fit replays the exact model an uncancelled fit would have produced.
  const auto workload = workloads::make_workload("gesummv");
  core::LearnerConfig learner;
  learner.n_init = 4;
  learner.n_batch = 2;
  learner.n_max = 8;
  learner.forest.num_trees = 4;

  auto make_session = [&]() {
    util::Rng split_rng(77);
    auto split = space::make_pool_split(workload->space(), 40, 0, split_rng);
    return service::AskTellSession(workload->space(), service::StrategySpec{},
                                   learner, std::move(split.pool), 123);
  };
  auto drive_cold = [&](service::AskTellSession& session) {
    util::Rng measure(9);
    for (const auto& c : session.ask()) {
      session.tell(c.config, workload->measure(c.config, measure, 1));
    }
  };

  service::AskTellSession cancelled = make_session();
  service::AskTellSession plain = make_session();
  drive_cold(cancelled);
  drive_cold(plain);
  ASSERT_TRUE(cancelled.refit_due());

  util::CancelToken token;
  token.request();
  EXPECT_THROW(cancelled.refit(&token), util::Cancelled);
  EXPECT_TRUE(cancelled.refit_due());  // still due, rng rolled back
  EXPECT_TRUE(cancelled.refit());
  EXPECT_TRUE(plain.refit());

  // Same asks after the retried fit == never-cancelled fit, bit for bit.
  const auto a = cancelled.ask();
  const auto b = plain.ask();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].config, b[i].config);
    EXPECT_EQ(a[i].predicted_mean, b[i].predicted_mean);
    EXPECT_EQ(a[i].predicted_stddev, b[i].predicted_stddev);
  }
}

// ---------------------------------------------------------------------------
// session-level degraded asks + v3 checkpoint
// ---------------------------------------------------------------------------

TEST(DegradedSession, RandomFallbackCountsAndCheckpoints) {
  const auto workload = workloads::make_workload("gesummv");
  core::LearnerConfig learner;
  learner.n_init = 4;
  learner.n_batch = 2;
  learner.n_max = 12;
  learner.forest.num_trees = 4;
  util::Rng split_rng(3);
  auto split = space::make_pool_split(workload->space(), 40, 0, split_rng);
  service::AskTellSession session(workload->space(), service::StrategySpec{},
                                  learner, std::move(split.pool), 55);

  // Cold start, no model anywhere: degraded ask falls back to seeded
  // random picks and counts them.
  const auto batch = session.ask_degraded(0, nullptr);
  ASSERT_EQ(batch.size(), 2u);  // n_batch (no cold-start special case)
  for (const auto& c : batch) EXPECT_FALSE(c.has_prediction);
  EXPECT_EQ(session.degraded_random_asks(), 1u);
  EXPECT_EQ(session.degraded_stale_asks(), 0u);

  // A second degraded ask with a batch outstanding is a logic error, same
  // contract as ask().
  EXPECT_THROW(session.ask_degraded(0, nullptr), std::logic_error);

  // v3 checkpoint round-trip preserves the degraded state.
  std::stringstream image;
  session.save(image);
  service::AskTellSession restored =
      service::AskTellSession::restore(workload->space(), image);
  EXPECT_EQ(restored.degraded_random_asks(), 1u);
  EXPECT_EQ(restored.pending_count(), session.pending_count());

  // Both copies continue identically through the pending batch.
  util::Rng measure(21);
  for (const auto& c : batch) {
    const double label = workload->measure(c.config, measure, 1);
    session.tell(c.config, label);
    restored.tell(c.config, label);
  }
  EXPECT_EQ(session.num_labeled(), restored.num_labeled());
  EXPECT_EQ(session.best_observed(), restored.best_observed());
  EXPECT_GT(session.memory_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// manager-level admission, degradation, quarantine, eviction
// ---------------------------------------------------------------------------

service::SessionSpec tiny_spec(std::uint64_t seed) {
  service::SessionSpec spec;
  spec.workload = "gesummv";
  spec.learner.n_init = 4;
  spec.learner.n_batch = 2;
  spec.learner.n_max = 16;
  spec.learner.forest.num_trees = 4;
  spec.pool_size = 60;
  spec.test_size = 0;
  spec.seed = seed;
  return spec;
}

/// Occupies every worker of `pool` until the returned promise is
/// fulfilled — queued refits cannot start while the gate is closed.
class PoolGate {
 public:
  PoolGate(util::ThreadPool& pool, unsigned workers) {
    std::shared_future<void> open = open_.get_future().share();
    blockers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
      blockers_.push_back(pool.submit([open] { open.wait(); }));
    }
  }
  void release() {
    if (released_) return;
    released_ = true;
    open_.set_value();
    for (auto& f : blockers_) f.get();
  }
  ~PoolGate() { release(); }

 private:
  std::promise<void> open_;
  std::vector<std::future<void>> blockers_;
  bool released_ = false;
};

TEST(Admission, SessionCapShedsWithRetryHint) {
  service::ServiceLimits limits;
  limits.max_sessions = 1;
  limits.retry_after_ms = 250;
  service::SessionManager manager(nullptr, limits);
  manager.create("one", tiny_spec(1));
  try {
    manager.create("two", tiny_spec(2));
    FAIL() << "expected OverloadError";
  } catch (const service::OverloadError& e) {
    EXPECT_EQ(e.retry_after_ms(), 250);
  }
  EXPECT_EQ(manager.size(), 1u);
  EXPECT_EQ(manager.health().overloaded_sheds, 1u);

  // Closing frees the slot.
  EXPECT_TRUE(manager.close("one"));
  EXPECT_NO_THROW(manager.create("two", tiny_spec(2)));
}

TEST(Admission, PendingAskCapShedsOversizedAsks) {
  service::ServiceLimits limits;
  limits.max_pending_asks = 3;
  service::SessionManager manager(nullptr, limits);
  manager.create("s", tiny_spec(5));
  // Cold start always serves exactly n_init=4 > 3 — an explicit smaller
  // count does not shrink it, so the admission check sheds either way.
  EXPECT_THROW(manager.ask("s"), service::OverloadError);
  EXPECT_THROW(manager.ask("s", 2), service::OverloadError);
  EXPECT_EQ(manager.health().overloaded_sheds, 2u);

  // A cap that admits the cold batch: n_init passes, and in the iteration
  // phase explicit counts are honored against the same cap.
  service::ServiceLimits roomy;
  roomy.max_pending_asks = 4;
  service::SessionManager manager2(nullptr, roomy);
  manager2.create("s", tiny_spec(5));
  const auto workload = workloads::make_workload("gesummv");
  util::Rng measure(manager2.status("s").measure_seed);
  for (const auto& c : manager2.ask("s")) {
    manager2.tell("s", c.config, workload->measure(c.config, measure, 1));
  }
  EXPECT_THROW(manager2.ask("s", 5), service::OverloadError);
  EXPECT_EQ(manager2.ask("s", 2).size(), 2u);
}

TEST(DegradedAsks, StaleModelThenRandomUnderBusyPool) {
  util::ThreadPool workers(2);
  service::SessionManager manager(&workers);
  manager.create("s", tiny_spec(9));
  const auto workload = workloads::make_workload("gesummv");
  util::Rng measure(manager.status("s").measure_seed);

  auto tell_all = [&](const std::vector<service::Candidate>& batch) {
    for (const auto& c : batch) {
      manager.tell("s", c.config, workload->measure(c.config, measure, 1));
    }
  };

  // Cold start with the pool gated: the refit is queued but cannot run, and
  // there is no previous model — a zero-deadline ask degrades to random.
  {
    PoolGate gate(workers, 2);
    tell_all(manager.ask("s"));
    const service::AskOutcome degraded = manager.ask_with_deadline("s", 0, 0);
    EXPECT_EQ(degraded.degraded, service::DegradedMode::Random);
    ASSERT_EQ(degraded.candidates.size(), 2u);
    for (const auto& c : degraded.candidates) {
      EXPECT_FALSE(c.has_prediction);
    }
    gate.release();
    tell_all(degraded.candidates);
  }

  // Let a fit complete so a last-good snapshot exists, then gate *before*
  // the tells that schedule the next refit: it queues behind the gate, and
  // the next zero-deadline ask serves from the stale model.
  const std::vector<service::Candidate> fresh =
      manager.ask_with_deadline("s", 0, -1).candidates;
  {
    PoolGate gate(workers, 2);
    tell_all(fresh);
    const service::AskOutcome degraded = manager.ask_with_deadline("s", 0, 0);
    EXPECT_EQ(degraded.degraded, service::DegradedMode::StaleModel);
    ASSERT_FALSE(degraded.candidates.empty());
    for (const auto& c : degraded.candidates) {
      EXPECT_TRUE(c.has_prediction);
      EXPECT_GE(c.predicted_stddev, 0.0);
    }
    gate.release();
    tell_all(degraded.candidates);
  }

  const service::HealthReport health = manager.health();
  EXPECT_EQ(health.degraded_random_asks, 1u);
  EXPECT_EQ(health.degraded_stale_asks, 1u);
  EXPECT_EQ(health.overloaded_sheds, 0u);
}

TEST(Quarantine, RepeatedWatchdogTimeoutsFenceTheSession) {
  util::ManualTickSource ticks;
  service::ServiceLimits limits;
  limits.refit_watchdog_ms = 10;
  limits.refit_retries = 0;
  util::ThreadPool workers(2);
  service::SessionManager manager(&workers, limits, &ticks);
  manager.create("s", tiny_spec(13));
  const auto workload = workloads::make_workload("gesummv");
  util::Rng measure(manager.status("s").measure_seed);

  std::vector<service::Candidate> degraded;
  {
    PoolGate gate(workers, 2);
    for (const auto& c : manager.ask("s")) {
      manager.tell("s", c.config, workload->measure(c.config, measure, 1));
    }
    // The refit is queued behind the gate; blow its wall-clock budget.
    ticks.advance(100);
    const service::AskOutcome outcome = manager.ask_with_deadline("s", 0, 0);
    EXPECT_EQ(outcome.degraded, service::DegradedMode::Random);
    degraded = outcome.candidates;
    EXPECT_EQ(manager.health().watchdog_timeouts, 1u);
    gate.release();
  }
  // The cancelled fit is harvested by the next touch; with zero retries the
  // session is quarantined and its writes shed.
  ASSERT_FALSE(degraded.empty());
  EXPECT_THROW(manager.tell("s", degraded.front().config, 0.5),
               service::OverloadError);

  const service::HealthReport health = manager.health();
  EXPECT_EQ(health.sessions_quarantined, 1u);
  ASSERT_EQ(health.sessions.size(), 1u);
  EXPECT_EQ(health.sessions.front().state, "quarantined");
  EXPECT_EQ(health.sessions.front().refit_timeouts, 1u);

  // Reads and teardown still work on a quarantined session.
  EXPECT_NO_THROW(manager.status("s"));
  EXPECT_TRUE(manager.close("s"));
}

TEST(Eviction, BudgetPressureEvictsAndLazilyResumes) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "pwu_overload_evict_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  service::ServiceLimits limits;
  limits.memory_budget_bytes = 1;  // everything is over budget
  service::SessionManager manager(nullptr, limits);
  manager.enable_auto_checkpoint(dir.string(), 1);

  manager.create("a", tiny_spec(21));
  manager.create("b", tiny_spec(22));
  {
    const service::HealthReport health = manager.health();
    EXPECT_EQ(health.sessions_evicted, 2u);
    EXPECT_GE(health.evictions, 2u);
    EXPECT_TRUE(std::filesystem::exists(dir / "a.ckpt"));
  }

  // Any touch transparently resumes; the session is fully usable.
  const auto workload = workloads::make_workload("gesummv");
  util::Rng measure(manager.status("a").measure_seed);
  for (const auto& c : manager.ask("a")) {
    manager.tell("a", c.config, workload->measure(c.config, measure, 1));
  }
  const service::SessionStatus status = manager.status("a");
  EXPECT_EQ(status.labeled, 4u);
  EXPECT_GT(manager.health().lazy_resumes, 0u);

  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// hardened protocol surface
// ---------------------------------------------------------------------------

util::json::Value rpc(service::SessionManager& manager,
                      const std::string& line) {
  return service::handle_request(manager, util::json::parse(line));
}

TEST(ProtocolHardening, OverloadedResponsesAreStructured) {
  service::ServiceLimits limits;
  limits.max_sessions = 1;
  limits.retry_after_ms = 42;
  service::SessionManager manager(nullptr, limits);
  ASSERT_TRUE(
      rpc(manager,
          R"({"op":"create","session":"a","workload":"gesummv","pool_size":40})")
          .at("ok")
          .as_bool());
  const util::json::Value shed = rpc(
      manager,
      R"({"op":"create","session":"b","workload":"gesummv","pool_size":40})");
  EXPECT_FALSE(shed.at("ok").as_bool());
  EXPECT_TRUE(shed.bool_or("overloaded", false));
  EXPECT_EQ(shed.number_or("retry_after_ms", 0), 42.0);
}

TEST(ProtocolHardening, HealthOpReportsCounters) {
  service::SessionManager manager;
  rpc(manager,
      R"({"op":"create","session":"a","workload":"gesummv","pool_size":40})");
  const util::json::Value response = rpc(manager, R"({"op":"health"})");
  ASSERT_TRUE(response.at("ok").as_bool());
  const util::json::Value& health = response.at("health");
  EXPECT_EQ(health.number_or("sessions_live", -1), 1.0);
  EXPECT_EQ(health.at("sessions").as_array().size(), 1u);
  EXPECT_EQ(health.at("sessions").as_array().front().string_or("state", ""),
            "live");
}

TEST(ProtocolHardening, MalformedNumbersAreRejectedNotCast) {
  service::SessionManager manager;
  // Fractional, huge, and out-of-range numeric fields must produce
  // structured errors, never a bogus cast.
  for (const char* line : {
           R"({"op":"create","session":"x","workload":"gesummv","pool_size":2.5})",
           R"({"op":"create","session":"x","workload":"gesummv","n_max":1e300})",
           R"({"op":"create","session":"x","workload":"gesummv","trees":999999999999})",
           R"({"op":"ask","session":"x","deadline_ms":1e300})",
           R"({"op":"ask","session":"x","count":-3})",
       }) {
    const util::json::Value response = rpc(manager, line);
    EXPECT_FALSE(response.at("ok").as_bool()) << line;
    EXPECT_FALSE(response.at("error").as_string().empty()) << line;
  }
  // Levels outside uint32 range.
  rpc(manager,
      R"({"op":"create","session":"x","workload":"gesummv","pool_size":40})");
  const util::json::Value bad_levels = rpc(
      manager,
      R"({"op":"tell","session":"x","levels":[4294967296],"time":1.0})");
  EXPECT_FALSE(bad_levels.at("ok").as_bool());
}

TEST(ProtocolHardening, DeepNestingIsRejectedNotRecursed) {
  std::string bomb = R"({"op":"ask","session":)";
  bomb.append(5000, '[');
  bomb.append(5000, ']');
  bomb.push_back('}');
  EXPECT_THROW(util::json::parse(bomb), std::runtime_error);

  // Sane nesting still parses.
  EXPECT_NO_THROW(util::json::parse(R"({"a":[[[[{"b":[1,2,[3]]}]]]]})"));

  // Through the serve loop: one structured error line, loop survives.
  service::SessionManager manager;
  std::istringstream in(bomb + "\n" + R"({"op":"list"})" + "\n");
  std::ostringstream out;
  service::run_serve_loop(in, out, manager);
  std::istringstream lines(out.str());
  std::string first, second;
  ASSERT_TRUE(std::getline(lines, first));
  ASSERT_TRUE(std::getline(lines, second));
  EXPECT_FALSE(util::json::parse(first).at("ok").as_bool());
  EXPECT_TRUE(util::json::parse(second).at("ok").as_bool());
}

}  // namespace
}  // namespace pwu
