// The Surrogate interface: RF and GP adapters must behave identically to
// their wrapped models and interoperate with the full learning pipeline.

#include "core/surrogate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/active_learner.hpp"
#include "space/pool.hpp"
#include "workloads/synthetic.hpp"

namespace pwu::core {
namespace {

rf::Dataset smooth_data(std::size_t n, util::Rng& rng) {
  rf::Dataset d(2);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(0.0, 5.0);
    const double b = rng.uniform(0.0, 5.0);
    d.add(std::vector<double>{a, b}, a * a + b);
  }
  return d;
}

TEST(Surrogate, FactoryBuildsBothKindsAndRejectsUnknown) {
  EXPECT_EQ(make_surrogate("rf")->name(), "random-forest");
  EXPECT_EQ(make_surrogate("gp")->name(), "gaussian-process");
  EXPECT_THROW(make_surrogate("svm"), std::invalid_argument);
}

TEST(Surrogate, RfAdapterMatchesDirectForest) {
  util::Rng rng(1);
  const rf::Dataset data = smooth_data(200, rng);
  rf::ForestConfig cfg;
  cfg.num_trees = 20;

  RandomForestSurrogate adapter(cfg);
  util::Rng fit_a(7);
  adapter.fit(data, fit_a, nullptr);
  rf::RandomForest direct;
  util::Rng fit_b(7);
  direct.fit(data, cfg, fit_b);

  const std::vector<double> row = {2.5, 2.5};
  EXPECT_DOUBLE_EQ(adapter.predict(row), direct.predict(row));
  EXPECT_DOUBLE_EQ(adapter.predict_stats(row).stddev,
                   direct.predict_stats(row).stddev);
}

TEST(Surrogate, GpAdapterLearnsSmoothFunction) {
  util::Rng rng(2);
  const rf::Dataset data = smooth_data(150, rng);
  GaussianProcessSurrogate gp{gp::GpConfig{}};
  util::Rng fit_rng(3);
  gp.fit(data, fit_rng, nullptr);
  EXPECT_TRUE(gp.fitted());
  const std::vector<double> row = {2.0, 3.0};
  EXPECT_NEAR(gp.predict(row), 7.0, 1.0);
  EXPECT_GE(gp.predict_stats(row).variance, 0.0);
}

TEST(Surrogate, BatchDefaultMatchesScalar) {
  util::Rng rng(4);
  const rf::Dataset data = smooth_data(100, rng);
  GaussianProcessSurrogate gp{gp::GpConfig{}};
  util::Rng fit_rng(5);
  gp.fit(data, fit_rng, nullptr);
  const rf::FeatureMatrix rows =
      rf::FeatureMatrix::from_rows({{1.0, 1.0}, {4.0, 0.5}});
  const auto batch = gp.predict_stats_batch(rows);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_DOUBLE_EQ(batch[0].mean, gp.predict_stats(rows.row(0)).mean);
  EXPECT_DOUBLE_EQ(batch[1].mean, gp.predict_stats(rows.row(1)).mean);
}

TEST(Surrogate, AsForestExposesOnlyForests) {
  auto rf_surrogate = make_surrogate("rf");
  auto gp_surrogate = make_surrogate("gp");
  // Unfitted RF surrogate still identifies as a forest.
  EXPECT_NE(as_forest(*rf_surrogate), nullptr);
  EXPECT_EQ(as_forest(*gp_surrogate), nullptr);
}

TEST(Surrogate, ActiveLearningRunsWithGpSurrogate) {
  // The full Algorithm-1 loop with a GP in place of the forest — the
  // comparison configuration of bench/ablation_surrogate.
  auto workload = workloads::make_quadratic_bowl(3, 8, 0.1, true);
  util::Rng rng(6);
  const auto split = space::make_pool_split(workload->space(), 200, 100, rng);
  const auto test = build_test_set(*workload, split.test, rng);

  LearnerConfig cfg;
  cfg.surrogate = "gp";
  cfg.n_init = 10;
  cfg.n_max = 40;
  cfg.eval_every = 10;
  ActiveLearner learner(*workload, cfg);
  const auto result = learner.run(*make_pwu(0.05), split.pool, test, rng);
  EXPECT_EQ(result.train_configs.size(), 40u);
  EXPECT_EQ(result.model->name(), "gaussian-process");
  EXPECT_TRUE(std::isfinite(result.trace.back().top_alpha_rmse[0]));
  // Learning happened: error at the end beats the cold start.
  EXPECT_LT(result.trace.back().top_alpha_rmse[0],
            result.trace.front().top_alpha_rmse[0] * 1.2);
}

TEST(Surrogate, RfBeatsGpOnCategoricalHeavySpace) {
  // The paper's Section II-B claim, reproduced end-to-end. The decisive
  // regime is a high-cardinality categorical (hypre's solver has 24
  // levels) with few samples per level: the forest's set-membership splits
  // pool levels with similar behaviour, while the GP either interpolates
  // across meaningless level-index distances or has to learn each level
  // slice from a handful of points.
  auto workload = workloads::make_mixed_modes(/*modes=*/20, /*dims=*/2,
                                              /*levels=*/10, 0.1);
  util::Rng rng(7);
  const auto split = space::make_pool_split(workload->space(), 350, 180, rng);
  const auto test = build_test_set(*workload, split.test, rng);

  auto run_with = [&](const std::string& kind) {
    LearnerConfig cfg;
    cfg.surrogate = kind;
    cfg.n_init = 10;
    cfg.n_max = 70;
    cfg.forest.num_trees = 30;
    cfg.eval_every = 60;
    ActiveLearner learner(*workload, cfg);
    util::Rng run_rng(8);
    return learner.run(*make_pwu(0.05), split.pool, test, run_rng);
  };
  const double rf_error = run_with("rf").trace.back().full_rmse;
  const double gp_error = run_with("gp").trace.back().full_rmse;
  EXPECT_LT(rf_error, gp_error);
}

}  // namespace
}  // namespace pwu::core
