// Diversity-aware batch PWU: scoring follows Eq. 1, but batches spread out
// in feature space instead of piling onto near-duplicates.

#include <gtest/gtest.h>

#include <set>

#include "core/active_learner.hpp"
#include "core/sampling_strategy.hpp"
#include "space/pool.hpp"
#include "workloads/synthetic.hpp"

namespace pwu::core {
namespace {

PoolPrediction clustered_prediction() {
  // Candidates 0-2: one tight cluster of top-score near-duplicates.
  // Candidate 3: slightly lower score, far away.
  // Candidate 4: low score, far away.
  PoolPrediction p;
  p.mean = {0.10, 0.10, 0.10, 0.12, 0.50};
  p.stddev = {0.20, 0.19, 0.18, 0.15, 0.05};
  p.features = rf::FeatureMatrix::from_rows({{0.0, 0.0},
                                             {0.01, 0.0},
                                             {0.0, 0.01},
                                             {1.0, 1.0},
                                             {0.0, 1.0}});
  return p;
}

TEST(DiversePwu, SingleBatchMatchesPlainPwu) {
  const PoolPrediction p = clustered_prediction();
  util::Rng rng_a(1), rng_b(1);
  EXPECT_EQ(make_diverse_pwu(0.05)->select(p, 1, rng_a),
            make_pwu(0.05)->select(p, 1, rng_b));
}

TEST(DiversePwu, ZeroWeightMatchesPlainPwu) {
  const PoolPrediction p = clustered_prediction();
  util::Rng rng_a(2), rng_b(2);
  EXPECT_EQ(make_diverse_pwu(0.05, 0.0)->select(p, 3, rng_a),
            make_pwu(0.05)->select(p, 3, rng_b));
}

TEST(DiversePwu, MissingFeaturesFallsBackToRanking) {
  PoolPrediction p = clustered_prediction();
  p.features.clear();
  util::Rng rng_a(3), rng_b(3);
  EXPECT_EQ(make_diverse_pwu(0.05)->select(p, 3, rng_a),
            make_pwu(0.05)->select(p, 3, rng_b));
}

TEST(DiversePwu, BatchAvoidsNearDuplicates) {
  const PoolPrediction p = clustered_prediction();
  util::Rng rng(4);
  const auto picks = make_diverse_pwu(0.05, 2.0)->select(p, 2, rng);
  ASSERT_EQ(picks.size(), 2u);
  // First pick is the top score (candidate 0).
  EXPECT_EQ(picks[0], 0u);
  // Second pick must escape the duplicate cluster {1, 2}.
  EXPECT_TRUE(picks[1] == 3 || picks[1] == 4) << picks[1];
}

TEST(DiversePwu, PlainTopKWouldHaveTakenTheCluster) {
  // Contrast: plain PWU's top-2 is the duplicate pair — the failure mode
  // the diverse variant exists to avoid.
  const PoolPrediction p = clustered_prediction();
  util::Rng rng(5);
  const auto plain = make_pwu(0.05)->select(p, 2, rng);
  EXPECT_EQ(plain[0], 0u);
  EXPECT_EQ(plain[1], 1u);
}

TEST(DiversePwu, DistinctInRangeBatches) {
  const PoolPrediction p = clustered_prediction();
  util::Rng rng(6);
  for (std::size_t batch : {1u, 2u, 3u, 5u}) {
    const auto picks = make_diverse_pwu(0.05)->select(p, batch, rng);
    EXPECT_EQ(picks.size(), batch);
    std::set<std::size_t> set(picks.begin(), picks.end());
    EXPECT_EQ(set.size(), batch);
    for (std::size_t idx : picks) EXPECT_LT(idx, p.size());
  }
}

TEST(DiversePwu, RejectsNegativeWeight) {
  EXPECT_THROW(make_diverse_pwu(0.05, -1.0), std::invalid_argument);
}

TEST(DiversePwu, RunsThroughTheFullLoop) {
  auto workload = workloads::make_quadratic_bowl(3, 8, 0.1, true);
  util::Rng rng(7);
  const auto split = space::make_pool_split(workload->space(), 200, 100, rng);
  const auto test = build_test_set(*workload, split.test, rng);
  LearnerConfig cfg;
  cfg.n_init = 10;
  cfg.n_batch = 5;
  cfg.n_max = 40;
  cfg.forest.num_trees = 10;
  ActiveLearner learner(*workload, cfg);
  const auto result =
      learner.run(*make_diverse_pwu(0.05), split.pool, test, rng);
  EXPECT_EQ(result.train_configs.size(), 40u);
}

}  // namespace
}  // namespace pwu::core
