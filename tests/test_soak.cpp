// Deterministic overload soak harness (`ctest -L soak`, `soak` preset).
//
// Drives hundreds of sessions through burst, churn, slow-refit, and
// memory-pressure schedules against a capped SessionManager and asserts
// the service-level overload contract end to end:
//
//   * no deadlock — every schedule runs to completion;
//   * every request is answered: a normal reply, a degraded batch, or a
//     structured OverloadError — never a crash, hang, or silent drop;
//   * memory stays bounded — the budget enforcer keeps charged footprints
//     under the configured capacity;
//   * sessions the overload never touched ("undisturbed") finish
//     bit-identical to an unloaded run — load may change timing and
//     *other* sessions, never their labels.
//
// Slow refits are scripted, not raced: a PoolGate occupies every worker so
// queued refits cannot start, and a util::ManualTickSource advances the
// watchdog clock explicitly. The *Fast* subset (single-threaded schedules)
// also runs in the fast suite; the threaded schedules are soak-only.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "service/overload.hpp"
#include "service/protocol.hpp"
#include "service/session_manager.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/watchdog.hpp"
#include "workloads/registry.hpp"

namespace pwu::service {
namespace {

SessionSpec soak_spec(std::uint64_t seed) {
  SessionSpec spec;
  spec.workload = "gesummv";
  spec.learner.n_init = 4;
  spec.learner.n_batch = 2;
  spec.learner.n_max = 10;
  spec.learner.forest.num_trees = 4;
  spec.pool_size = 60;
  spec.test_size = 0;
  spec.seed = seed;
  return spec;
}

struct DriveResult {
  std::vector<double> labels;
  double best = 0.0;
  std::size_t degraded_asks = 0;
};

/// Client loop with a per-ask deadline. Measures with the stream the
/// server hands back and tells in ask order, so a deadline of -1 (never
/// degrade) reproduces the batch driver label for label.
DriveResult drive(SessionManager& manager, const std::string& name,
                  std::int64_t deadline_ms) {
  DriveResult result;
  const SessionStatus st = manager.status(name);
  const auto workload = workloads::make_workload(st.workload);
  util::Rng measure(st.measure_seed);
  for (;;) {
    const AskOutcome out = manager.ask_with_deadline(name, 0, deadline_ms);
    if (out.degraded != DegradedMode::None) ++result.degraded_asks;
    if (out.candidates.empty()) break;
    for (const Candidate& c : out.candidates) {
      const double label = workload->measure(c.config, measure, 1);
      manager.tell(name, c.config, label);
      result.labels.push_back(label);
    }
  }
  result.best = manager.status(name).best_observed;
  return result;
}

/// Reference result from a dedicated unloaded, un-capped manager.
DriveResult unloaded_reference(std::uint64_t seed) {
  SessionManager manager;
  manager.create("ref", soak_spec(seed));
  return drive(manager, "ref", -1);
}

/// Occupies every worker of `pool` until released — queued refits cannot
/// start while the gate is closed, making "the refit is slow" a scripted
/// fact instead of a scheduler accident.
class PoolGate {
 public:
  PoolGate(util::ThreadPool& pool, unsigned workers) {
    std::shared_future<void> open = open_.get_future().share();
    blockers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
      blockers_.push_back(pool.submit([open] { open.wait(); }));
    }
  }
  void release() {
    if (released_) return;
    released_ = true;
    open_.set_value();
    for (auto& f : blockers_) f.get();
  }
  ~PoolGate() { release(); }

 private:
  std::promise<void> open_;
  std::vector<std::future<void>> blockers_;
  bool released_ = false;
};

// ---------------------------------------------------------------------------
// Burst: 200 create requests against a 12-session cap, via the protocol.
// ---------------------------------------------------------------------------

TEST(Soak, BurstAdmissionEveryRequestAnsweredFast) {
  constexpr std::size_t kBurst = 200;
  constexpr std::size_t kCap = 12;
  ServiceLimits limits;
  limits.max_sessions = kCap;
  limits.retry_after_ms = 5;
  SessionManager manager(nullptr, limits);

  std::size_t accepted = 0;
  std::size_t shed = 0;
  for (std::size_t i = 0; i < kBurst; ++i) {
    const util::json::Value response = handle_request(
        manager,
        util::json::parse(
            R"({"op":"create","session":"burst)" + std::to_string(i) +
            R"(","workload":"gesummv","n_init":4,"n_batch":2,"n_max":10,"pool_size":60,"test_size":0,"trees":4,"seed":)" +
            std::to_string(100 + i) + "}"));
    // The contract: every request is answered, structurally.
    ASSERT_TRUE(response.at("ok").is_bool());
    if (response.at("ok").as_bool()) {
      ++accepted;
    } else {
      ASSERT_TRUE(response.bool_or("overloaded", false));
      ASSERT_EQ(response.number_or("retry_after_ms", 0), 5.0);
      ++shed;
    }
  }
  EXPECT_EQ(accepted, kCap);
  EXPECT_EQ(shed, kBurst - kCap);
  EXPECT_EQ(manager.size(), kCap);
  EXPECT_EQ(manager.health().overloaded_sheds, shed);

  // The admitted sessions are fully functional and finish bit-identically
  // to an unloaded run — shedding the rest disturbed nothing.
  const DriveResult first = drive(manager, "burst0", -1);
  EXPECT_EQ(first.labels, unloaded_reference(100).labels);

  // Freed slots are immediately reusable.
  EXPECT_TRUE(manager.close("burst1"));
  EXPECT_NO_THROW(manager.create("late", soak_spec(999)));
}

// ---------------------------------------------------------------------------
// Slow refits: deadline-0 clients are always answered (degraded when the
// fit is not ready), and a patient session in the same manager stays
// bit-identical.
// ---------------------------------------------------------------------------

TEST(Soak, SlowRefitDegradedAsksAnsweredFast) {
  util::ThreadPool workers(2);
  SessionManager manager(&workers);
  manager.create("impatient", soak_spec(500));
  manager.create("patient", soak_spec(501));
  const auto workload = workloads::make_workload("gesummv");

  // Script one degraded round on the impatient session: gate the pool,
  // finish its cold batch (refit queues behind the gate), ask with a zero
  // deadline.
  util::Rng measure(manager.status("impatient").measure_seed);
  std::vector<double> impatient_labels;
  std::vector<Candidate> degraded_batch;
  {
    PoolGate gate(workers, 2);
    for (const Candidate& c :
         manager.ask_with_deadline("impatient", 0, 0).candidates) {
      const double label = workload->measure(c.config, measure, 1);
      manager.tell("impatient", c.config, label);
      impatient_labels.push_back(label);
    }
    const AskOutcome degraded = manager.ask_with_deadline("impatient", 0, 0);
    EXPECT_EQ(degraded.degraded, DegradedMode::Random);
    ASSERT_FALSE(degraded.candidates.empty());
    degraded_batch = degraded.candidates;
    gate.release();
  }
  for (const Candidate& c : degraded_batch) {
    const double label = workload->measure(c.config, measure, 1);
    manager.tell("impatient", c.config, label);
    impatient_labels.push_back(label);
  }
  // Finish out the budget: every remaining request is answered too.
  const DriveResult rest = drive(manager, "impatient", 0);
  EXPECT_EQ(impatient_labels.size() + rest.labels.size(), 10u);
  EXPECT_TRUE(manager.status("impatient").done);

  // The patient session shared the manager and the worker pool with all of
  // that — and is label-for-label what an unloaded run produces.
  const DriveResult patient = drive(manager, "patient", -1);
  EXPECT_EQ(patient.degraded_asks, 0u);
  EXPECT_EQ(patient.labels, unloaded_reference(501).labels);

  const HealthReport health = manager.health();
  EXPECT_GE(health.degraded_random_asks, 1u);
  EXPECT_EQ(health.overloaded_sheds, 0u);
}

// ---------------------------------------------------------------------------
// Watchdog schedule: refits for every third session blow their wall-clock
// budget (on a hand-cranked clock) and, with zero retries, quarantine the
// session; every other session runs to completion, bit-identical.
// ---------------------------------------------------------------------------

TEST(Soak, WatchdogQuarantineScheduleFast) {
  constexpr std::size_t kSessions = 30;
  util::ManualTickSource ticks;
  ServiceLimits limits;
  limits.refit_watchdog_ms = 10;
  limits.refit_retries = 0;
  util::ThreadPool workers(2);
  SessionManager manager(&workers, limits, &ticks);
  const auto workload = workloads::make_workload("gesummv");

  std::size_t quarantined = 0;
  for (std::size_t i = 0; i < kSessions; ++i) {
    const std::string name = "w" + std::to_string(i);
    manager.create(name, soak_spec(3000 + i));
    if (i % 3 == 0) {
      // Scripted slow refit: queue it behind a gate, blow the budget,
      // observe the degraded answer, then let the cancellation land.
      util::Rng measure(manager.status(name).measure_seed);
      std::vector<Candidate> degraded;
      {
        PoolGate gate(workers, 2);
        for (const Candidate& c :
             manager.ask_with_deadline(name, 0, 0).candidates) {
          manager.tell(name, c.config, workload->measure(c.config, measure, 1));
        }
        ticks.advance(100);
        const AskOutcome out = manager.ask_with_deadline(name, 0, 0);
        EXPECT_EQ(out.degraded, DegradedMode::Random);
        degraded = out.candidates;
        gate.release();
      }
      // The harvested cancellation exceeds the retry budget: the session
      // is fenced, and every further write is shed structurally.
      ASSERT_FALSE(degraded.empty());
      EXPECT_THROW(manager.tell(name, degraded.front().config, 0.5),
                   OverloadError);
      EXPECT_THROW(manager.ask_with_deadline(name, 0, 0), OverloadError);
      ++quarantined;
    } else {
      // Undisturbed neighbors: full run, no degradation, identical labels.
      const DriveResult run = drive(manager, name, -1);
      EXPECT_EQ(run.degraded_asks, 0u);
      EXPECT_EQ(run.labels, unloaded_reference(3000 + i).labels) << name;
    }
  }

  const HealthReport health = manager.health();
  EXPECT_EQ(health.sessions_quarantined, quarantined);
  EXPECT_EQ(health.watchdog_timeouts, quarantined);
  EXPECT_EQ(health.sessions_live + health.sessions_quarantined, kSessions);
  // Reads and teardown still work on every session, fenced or not.
  for (std::size_t i = 0; i < kSessions; ++i) {
    EXPECT_NO_THROW(manager.status("w" + std::to_string(i)));
  }
}

// ---------------------------------------------------------------------------
// Memory pressure: 40 sessions against a budget that holds only a few,
// driven round-robin so eviction/lazy-resume cycles constantly. Labels
// must survive the churn bit for bit, and the charged footprint must stay
// under the budget after every round.
// ---------------------------------------------------------------------------

TEST(Soak, MemoryBudgetRoundRobinEvictionFast) {
  constexpr std::size_t kSessions = 40;
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "pwu_soak_evict";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  ServiceLimits limits;
  limits.memory_budget_bytes = 64 * 1024;
  SessionManager manager(nullptr, limits);
  manager.enable_auto_checkpoint(dir.string(), 1);

  std::vector<std::string> names;
  std::vector<util::Rng> measures;
  const auto workload = workloads::make_workload("gesummv");
  for (std::size_t i = 0; i < kSessions; ++i) {
    names.push_back("m" + std::to_string(i));
    const SessionStatus st = manager.create(names.back(), soak_spec(7000 + i));
    measures.emplace_back(st.measure_seed);
  }

  // Round-robin one batch at a time across all sessions until all done —
  // the worst case for the LRU: every touch lands on the coldest entry.
  std::vector<std::vector<double>> labels(kSessions);
  for (bool progress = true; progress;) {
    progress = false;
    for (std::size_t i = 0; i < kSessions; ++i) {
      const AskOutcome out = manager.ask_with_deadline(names[i], 0, -1);
      if (out.candidates.empty()) continue;
      progress = true;
      for (const Candidate& c : out.candidates) {
        const double label = workload->measure(c.config, measures[i], 1);
        manager.tell(names[i], c.config, label);
        labels[i].push_back(label);
      }
      // Bounded memory: the enforcer ran after the ops above.
      EXPECT_LE(manager.health().budget_used_bytes,
                limits.memory_budget_bytes);
    }
  }

  const HealthReport health = manager.health();
  EXPECT_GT(health.evictions, 0u);
  EXPECT_GT(health.lazy_resumes, 0u);
  EXPECT_EQ(health.degraded_stale_asks + health.degraded_random_asks, 0u);

  // Bit-identical through arbitrarily many evict/resume cycles.
  for (std::size_t i = 0; i < kSessions; ++i) {
    EXPECT_TRUE(manager.status(names[i]).done);
    EXPECT_EQ(labels[i], unloaded_reference(7000 + i).labels) << names[i];
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Threaded churn (soak-only): 8 driver threads over 64 capped sessions
// with a deferral-prone refit queue, create/close churn, and a health
// poller. No deadlock, every session bit-identical.
// ---------------------------------------------------------------------------

TEST(Soak, ThreadedChurnBitIdentical) {
  constexpr std::size_t kSessions = 64;
  constexpr std::size_t kThreads = 8;

  // References first, from unloaded managers.
  std::vector<std::vector<double>> reference(kSessions);
  for (std::size_t i = 0; i < kSessions; ++i) {
    reference[i] = unloaded_reference(5000 + i).labels;
  }

  ServiceLimits limits;
  limits.max_sessions = kSessions + 4;  // room for the churn sessions
  limits.max_refit_queue = 2;           // force deferrals under load
  util::ThreadPool workers(4);
  SessionManager manager(&workers, limits);
  for (std::size_t i = 0; i < kSessions; ++i) {
    manager.create("t" + std::to_string(i), soak_spec(5000 + i));
  }

  std::atomic<std::size_t> finished{0};
  std::atomic<std::size_t> violations{0};
  std::vector<std::thread> drivers;
  drivers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    drivers.emplace_back([&, t] {
      for (std::size_t i = t; i < kSessions; i += kThreads) {
        const DriveResult run = drive(manager, "t" + std::to_string(i), -1);
        if (run.degraded_asks != 0 || run.labels != reference[i]) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
      finished.fetch_add(1, std::memory_order_relaxed);
    });
  }

  // Churn thread: short-lived sessions appear and vanish. Creates may shed
  // at the cap (structured), which is itself part of the contract.
  std::thread churn([&] {
    std::size_t n = 0;
    std::size_t shed = 0;
    while (finished.load(std::memory_order_relaxed) < kThreads) {
      const std::string name = "churn" + std::to_string(n++ % 4);
      try {
        manager.create(name, soak_spec(9000 + n));
        manager.ask_with_deadline(name, 0, 0);
        manager.close(name);
      } catch (const OverloadError&) {
        ++shed;  // structurally refused — acceptable under churn
        manager.close(name);
      }
      std::this_thread::yield();
    }
  });

  // Health poller: must never block or throw while everything churns.
  std::thread poller([&] {
    while (finished.load(std::memory_order_relaxed) < kThreads) {
      const HealthReport health = manager.health();
      if (health.sessions.size() < kSessions) {
        violations.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::yield();
    }
  });

  for (auto& t : drivers) t.join();
  churn.join();
  poller.join();

  EXPECT_EQ(violations.load(), 0u);
  for (std::size_t i = 0; i < kSessions; ++i) {
    EXPECT_TRUE(manager.status("t" + std::to_string(i)).done);
  }
}

// ---------------------------------------------------------------------------
// Mixed pressure (soak-only): impatient (deadline-0) and patient drivers
// share one capped manager; every impatient request is answered (fresh,
// degraded, or shed), and every patient session stays bit-identical.
// ---------------------------------------------------------------------------

TEST(Soak, MixedDeadlinePressureUndisturbedBitIdentical) {
  constexpr std::size_t kPairs = 24;

  std::vector<std::vector<double>> reference(kPairs);
  for (std::size_t i = 0; i < kPairs; ++i) {
    reference[i] = unloaded_reference(6000 + i).labels;
  }

  ServiceLimits limits;
  limits.max_refit_queue = 1;
  util::ThreadPool workers(4);
  SessionManager manager(&workers, limits);
  for (std::size_t i = 0; i < kPairs; ++i) {
    manager.create("patient" + std::to_string(i), soak_spec(6000 + i));
    manager.create("rushed" + std::to_string(i), soak_spec(8000 + i));
  }

  std::atomic<std::size_t> violations{0};
  std::atomic<std::size_t> degraded_total{0};
  std::thread patient_thread([&] {
    for (std::size_t i = 0; i < kPairs; ++i) {
      const DriveResult run =
          drive(manager, "patient" + std::to_string(i), -1);
      if (run.degraded_asks != 0 || run.labels != reference[i]) {
        violations.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::thread rushed_thread([&] {
    for (std::size_t i = 0; i < kPairs; ++i) {
      const DriveResult run = drive(manager, "rushed" + std::to_string(i), 0);
      degraded_total.fetch_add(run.degraded_asks, std::memory_order_relaxed);
      // Rushed sessions still finish their budget — degraded batches are
      // answers, not drops.
      if (run.labels.size() != 10) {
        violations.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  patient_thread.join();
  rushed_thread.join();

  EXPECT_EQ(violations.load(), 0u);
  for (std::size_t i = 0; i < kPairs; ++i) {
    EXPECT_TRUE(manager.status("patient" + std::to_string(i)).done);
    EXPECT_TRUE(manager.status("rushed" + std::to_string(i)).done);
  }
  const HealthReport health = manager.health();
  EXPECT_EQ(health.degraded_stale_asks + health.degraded_random_asks,
            degraded_total.load());
}

}  // namespace
}  // namespace pwu::service
