// util::json — parse/serialize round-trips, accessor contracts, and the
// error positions the protocol layer depends on for its diagnostics.

#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace pwu::util::json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse("-3.25e2").as_number(), -325.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedContainers) {
  const Value v = parse(R"({"a":[1,2,{"b":null}],"c":{"d":true}})");
  ASSERT_TRUE(v.is_object());
  const Array& a = v.at("a").as_array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[1].as_number(), 2.0);
  EXPECT_TRUE(a[2].at("b").is_null());
  EXPECT_TRUE(v.at("c").at("d").as_bool());
}

TEST(Json, StringEscapes) {
  const Value v = parse(R"("line\nquote\"slash\\tab\t")");
  EXPECT_EQ(v.as_string(), "line\nquote\"slash\\tab\t");
  // \u escapes in the basic plane come out as UTF-8.
  EXPECT_EQ(parse(R"("Aé")").as_string(), "A\xc3\xa9");
}

TEST(Json, DumpRoundTripsStructure) {
  const std::string text =
      R"({"alpha":0.05,"labels":[0.125,-7,true,null],"name":"pwu"})";
  const Value v = parse(text);
  EXPECT_EQ(v.dump(), text);  // keys are sorted, so dump is canonical
  EXPECT_EQ(parse(v.dump()), v);
}

TEST(Json, DumpEscapesControlCharacters) {
  const Value v(std::string("a\"b\\c\nd\x01"));
  const Value back = parse(v.dump());
  EXPECT_EQ(back.as_string(), v.as_string());
}

TEST(Json, DoublesRoundTripExactly) {
  // Shortest-exact serialization: every double survives dump -> parse.
  for (double d : {0.1, 1.0 / 3.0, 1e-300, 6.02214076e23,
                   -0.49999999999999994, 1013.2568493815352}) {
    const Value v(d);
    EXPECT_EQ(parse(v.dump()).as_number(), d) << v.dump();
  }
}

TEST(Json, NonFiniteNumbersDumpAsNull) {
  EXPECT_EQ(Value(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
  EXPECT_EQ(Value(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, AtReturnsNullForMissingKeys) {
  const Value v = parse(R"({"x":1})");
  EXPECT_TRUE(v.at("missing").is_null());
  EXPECT_FALSE(v.has("missing"));
  EXPECT_TRUE(v.has("x"));
  // at() on a non-object is also null, never a throw.
  EXPECT_TRUE(Value(3.0).at("x").is_null());
}

TEST(Json, DefaultedGetters) {
  const Value v = parse(R"({"n":7,"s":"abc","b":true})");
  EXPECT_DOUBLE_EQ(v.number_or("n", -1.0), 7.0);
  EXPECT_DOUBLE_EQ(v.number_or("nope", -1.0), -1.0);
  EXPECT_EQ(v.string_or("s", "zz"), "abc");
  EXPECT_EQ(v.string_or("nope", "zz"), "zz");
  EXPECT_TRUE(v.bool_or("b", false));
  EXPECT_FALSE(v.bool_or("nope", false));
}

TEST(Json, AccessorsThrowOnTypeMismatch) {
  const Value v(1.5);
  EXPECT_THROW(v.as_string(), std::runtime_error);
  EXPECT_THROW(v.as_array(), std::runtime_error);
  EXPECT_THROW(v.as_object(), std::runtime_error);
  EXPECT_THROW(Value("x").as_number(), std::runtime_error);
}

TEST(Json, ParseErrorsThrow) {
  EXPECT_THROW(parse(""), std::runtime_error);
  EXPECT_THROW(parse("{"), std::runtime_error);
  EXPECT_THROW(parse("[1,]"), std::runtime_error);
  EXPECT_THROW(parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(parse("tru"), std::runtime_error);
  EXPECT_THROW(parse("01"), std::runtime_error);
  EXPECT_THROW(parse("1 2"), std::runtime_error);  // trailing garbage
}

TEST(Json, ParseErrorsCarryByteOffsets) {
  try {
    parse(R"({"key": )");
    FAIL() << "expected parse failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(Json, WhitespaceTolerated) {
  const Value v = parse("  { \"a\" :\t[ 1 ,\n 2 ] }  ");
  EXPECT_EQ(v.at("a").as_array().size(), 2u);
}

TEST(Json, LargeSeedsSurviveAsStrings) {
  // The protocol's rationale for string seeds: this value is > 2^53 and
  // would be rounded as a JSON double.
  const std::string seed = "17077330957171731598";
  const Value v = parse("{\"measure_seed\":\"" + seed + "\"}");
  EXPECT_EQ(v.at("measure_seed").as_string(), seed);
}

}  // namespace
}  // namespace pwu::util::json
