// Warm-started active learning (the paper's Section VI future work) and
// the platform-variant workload wrapper behind it.

#include <gtest/gtest.h>

#include <cmath>

#include "core/active_learner.hpp"
#include "space/pool.hpp"
#include "util/statistics.hpp"
#include "workloads/registry.hpp"
#include "workloads/synthetic.hpp"

namespace pwu::core {
namespace {

TEST(PlatformVariant, SharesSpaceAndWarpsTime) {
  auto base = workloads::make_workload("atax");
  const auto* base_space = &base->space();
  auto variant = workloads::make_platform_variant(std::move(base));
  EXPECT_EQ(&variant->space(), base_space);
  EXPECT_EQ(variant->name(), "atax-variant");
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto c = variant->space().random_config(rng);
    const double t = variant->base_time(c);
    EXPECT_TRUE(std::isfinite(t));
    EXPECT_GT(t, 0.0);
  }
}

TEST(PlatformVariant, DeterministicPerConfig) {
  auto variant =
      workloads::make_platform_variant(workloads::make_workload("atax"));
  util::Rng rng(2);
  const auto c = variant->space().random_config(rng);
  EXPECT_DOUBLE_EQ(variant->base_time(c), variant->base_time(c));
}

TEST(PlatformVariant, StronglyRankCorrelatedWithBase) {
  auto base = workloads::make_workload("atax");
  auto variant = workloads::make_platform_variant(
      workloads::make_workload("atax"));
  util::Rng rng(3);
  std::vector<double> base_times, variant_times;
  for (int i = 0; i < 300; ++i) {
    const auto c = base->space().random_config(rng);
    base_times.push_back(base->base_time(c));
    variant_times.push_back(variant->base_time(c));
  }
  const double tau = util::kendall_tau(base_times, variant_times);
  EXPECT_GT(tau, 0.6);   // related platforms rank alike...
  EXPECT_LT(tau, 0.999); // ...but not identically
}

TEST(PlatformVariant, ParameterValidation) {
  EXPECT_THROW(workloads::make_platform_variant(
                   workloads::make_workload("atax"), -1.0),
               std::invalid_argument);
  EXPECT_THROW(workloads::make_platform_variant(
                   workloads::make_workload("atax"), 1.0, 1.0, 1.5),
               std::invalid_argument);
}

class WarmStartTest : public ::testing::Test {
 protected:
  void SetUp() override {
    source_ = workloads::make_workload("atax");
    target_ = workloads::make_platform_variant(
        workloads::make_workload("atax"));
    util::Rng rng(4);
    const auto split =
        space::make_pool_split(target_->space(), 400, 200, rng);
    pool_ = split.pool;
    test_ = build_test_set(*target_, split.test, rng);

    // Source model data: configurations labeled on the *source* task.
    const auto& s = source_->space();
    warm_ = std::make_unique<rf::Dataset>(
        s.num_params(), s.categorical_mask(), s.cardinalities());
    util::Rng source_rng(5);
    for (int i = 0; i < 120; ++i) {
      const auto c = s.random_config(source_rng);
      warm_->add(s.features(c), source_->measure(c, source_rng, 1));
    }
  }

  LearnerConfig config(std::size_t n_max) {
    LearnerConfig cfg;
    cfg.n_init = 10;
    cfg.n_max = n_max;
    cfg.forest.num_trees = 20;
    cfg.eval_every = 10;
    return cfg;
  }

  workloads::WorkloadPtr source_, target_;
  std::vector<space::Configuration> pool_;
  TestSet test_;
  std::unique_ptr<rf::Dataset> warm_;
};

TEST_F(WarmStartTest, BudgetCountsOnlyTargetSamples) {
  ActiveLearner learner(*target_, config(30));
  util::Rng rng(6);
  const auto result =
      learner.run_warm(*make_pwu(0.05), pool_, test_, *warm_, rng);
  EXPECT_EQ(result.train_configs.size(), 30u);  // target evaluations only
  EXPECT_EQ(result.trace.front().num_samples, 10u);
  EXPECT_EQ(result.trace.back().num_samples, 30u);
  // CC counts target labels only.
  EXPECT_NEAR(result.trace.back().cumulative_cost,
              cumulative_cost(result.train_labels), 1e-9);
}

TEST_F(WarmStartTest, WarmStartLowersEarlyError) {
  // At a tiny target budget, seeding with 120 related-source samples must
  // beat learning from scratch (averaged over repeats for robustness).
  double cold_total = 0.0, warm_total = 0.0;
  for (std::uint64_t rep = 0; rep < 3; ++rep) {
    ActiveLearner learner(*target_, config(25));
    util::Rng rng_cold(100 + rep), rng_warm(100 + rep);
    const auto cold =
        learner.run(*make_pwu(0.05), pool_, test_, rng_cold);
    const auto warm =
        learner.run_warm(*make_pwu(0.05), pool_, test_, *warm_, rng_warm);
    cold_total += cold.trace.back().full_rmse;
    warm_total += warm.trace.back().full_rmse;
  }
  EXPECT_LT(warm_total, cold_total);
}

TEST_F(WarmStartTest, SchemaMismatchRejected) {
  ActiveLearner learner(*target_, config(20));
  util::Rng rng(7);
  rf::Dataset wrong(3);
  wrong.add(std::vector<double>{1.0, 2.0, 3.0}, 0.5);
  EXPECT_THROW(
      learner.run_warm(*make_pwu(0.05), pool_, test_, wrong, rng),
      std::invalid_argument);
}

TEST_F(WarmStartTest, EmptyWarmStartEqualsColdStart) {
  ActiveLearner learner(*target_, config(25));
  const auto& s = target_->space();
  const rf::Dataset empty(s.num_params(), s.categorical_mask(),
                          s.cardinalities());
  util::Rng rng_a(8), rng_b(8);
  const auto warm =
      learner.run_warm(*make_pwu(0.05), pool_, test_, empty, rng_a);
  const auto cold = learner.run(*make_pwu(0.05), pool_, test_, rng_b);
  ASSERT_EQ(warm.train_configs.size(), cold.train_configs.size());
  for (std::size_t i = 0; i < warm.train_configs.size(); ++i) {
    EXPECT_EQ(warm.train_configs[i], cold.train_configs[i]);
  }
}

}  // namespace
}  // namespace pwu::core
