// Multi-process chaos harness for the router tier (`ctest -L shard`).
//
// Real pwu_serve workers forked behind PipeTransports, killed at armed
// kill points (--kill-at) so the crash is a genuine process abort at a
// precise protocol instant, with real torn pipes and real checkpoint
// files. Three crash instants cover the failover decision table:
//
//   ask_tell_session.fit_model     tell applied AND auto-checkpointed,
//                                  worker dies in the refit → the router
//                                  must SYNTHESIZE the lost ack;
//   session_manager.tell.applied   tell applied in memory only, nothing
//                                  durable → the router must REPLAY it;
//   atomic_write.mid_write         worker dies half-way through writing
//                                  the post-tell checkpoint → the torn
//                                  temp file is invisible, the previous
//                                  image resumes, the tell REPLAYS.
//
// Acceptance in every case: the client-visible response stream (modulo
// the "checkpoint" path field) is bit-identical to an unkilled control
// fleet, and the session finishes with zero lost state.

#include "router/router.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "router/hash_ring.hpp"
#include "service/protocol.hpp"
#include "service/transport.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "workloads/registry.hpp"

#ifndef PWU_SERVE_BIN
#define PWU_SERVE_BIN "pwu_serve"  // overridden by CMake with the real path
#endif

namespace pwu::router {
namespace {

namespace json = util::json;
namespace fs = std::filesystem;

std::string fresh_dir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() / ("pwu_shard_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// A two-worker fleet over real forked pwu_serve processes. `kill_spec`
/// (NAME[:HITS], empty = healthy) arms the shard that owns `victim`.
std::unique_ptr<Router> make_fleet(const std::string& tag,
                                   const std::string& victim,
                                   const std::string& kill_spec) {
  HashRing ring;
  ring.add("shard-0");
  ring.add("shard-1");
  const std::string owner = ring.owner(victim);
  std::vector<ShardSpec> specs(2);
  for (int i = 0; i < 2; ++i) {
    const std::string name = "shard-" + std::to_string(i);
    const std::string dir = fresh_dir(tag + "_" + std::to_string(i));
    std::string command = std::string("'") + PWU_SERVE_BIN +
                          "' --checkpoint-dir '" + dir +
                          "' --checkpoint-every 1";
    if (!kill_spec.empty() && name == owner) {
      command += " --kill-at " + kill_spec;
    }
    specs[i].name = name;
    specs[i].transport =
        std::make_unique<service::PipeTransport>(command, 120.0);
    specs[i].checkpoint_dir = dir;
  }
  return std::make_unique<Router>(std::move(specs));
}

json::Value create_request(const std::string& name, unsigned seed) {
  return json::parse(
      R"({"op":"create","session":")" + name +
      R"(","workload":"gesummv","n_init":6,"n_batch":2,"n_max":16,)"
      R"("trees":8,"pool_size":120,"seed":)" + std::to_string(seed) + "}");
}

json::Value session_request(const std::string& op, const std::string& name) {
  json::Object obj;
  obj.emplace("op", json::Value(op));
  obj.emplace("session", json::Value(name));
  return json::Value(std::move(obj));
}

/// Checkpoint paths legitimately differ across homes; everything else in
/// the stream must match bit for bit.
std::string canonical(json::Value response) {
  if (response.is_object()) response.as_object().erase("checkpoint");
  return response.dump();
}

/// Drives one session to completion, recording every canonicalized
/// response. Redirects (re-home in progress) are retried like pwu_client
/// does, without entering the stream — the control fleet never emits
/// them, and the contract is about the *accepted* responses.
std::vector<std::string> drive(Router& router, const std::string& name,
                               unsigned seed) {
  const auto call = [&](const json::Value& request) {
    for (int attempt = 0; attempt < 20; ++attempt) {
      json::Value response = router.handle(request);
      if (!response.bool_or("redirected", false)) return response;
    }
    ADD_FAILURE() << "request redirected 20 times: " << request.dump();
    return json::Value();
  };

  std::vector<std::string> stream;
  const json::Value created = call(create_request(name, seed));
  EXPECT_TRUE(created.bool_or("ok", false)) << created.dump();
  stream.push_back(canonical(created));
  const auto workload = workloads::make_workload("gesummv");
  util::Rng measure_rng(std::stoull(created.at("measure_seed").as_string()));
  for (;;) {
    const json::Value batch = call(session_request("ask", name));
    EXPECT_TRUE(batch.bool_or("ok", false)) << batch.dump();
    stream.push_back(canonical(batch));
    const json::Array& candidates = batch.at("candidates").as_array();
    if (candidates.empty()) break;
    for (const json::Value& candidate : candidates) {
      const auto config =
          service::configuration_from_json(candidate.at("levels"));
      const double t = workload->measure(config, measure_rng, 1);
      json::Object tell;
      tell.emplace("op", json::Value("tell"));
      tell.emplace("session", json::Value(name));
      tell.emplace("levels", candidate.at("levels"));
      tell.emplace("time", json::Value(t));
      const json::Value told = call(json::Value(std::move(tell)));
      EXPECT_TRUE(told.bool_or("ok", false)) << told.dump();
      stream.push_back(canonical(told));
    }
  }
  stream.push_back(canonical(call(session_request("status", name))));
  return stream;
}

/// Runs the kill scenario against its control and asserts the streams are
/// bit-identical and the session survived to completion.
void expect_bit_identical_failover(const std::string& tag,
                                   const std::string& kill_spec,
                                   unsigned seed) {
  const std::string name = "chaos-" + tag;
  auto control = make_fleet(tag + "_ctl", name, "");
  auto chaos = make_fleet(tag + "_kill", name, kill_spec);

  const auto expected = drive(*control, name, seed);
  const auto observed = drive(*chaos, name, seed);

  ASSERT_EQ(observed.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(observed[i], expected[i]) << "response " << i;
  }

  // The kill really happened and really failed over.
  EXPECT_EQ(chaos->stats().failovers, 1u);
  EXPECT_EQ(chaos->stats().rehomes, 1u);
  EXPECT_EQ(control->stats().failovers, 0u);

  // Zero lost sessions: the fleet still lists and serves it.
  const json::Value listed = chaos->handle(json::parse(R"({"op":"list"})"));
  ASSERT_TRUE(listed.bool_or("ok", false));
  const json::Array& sessions = listed.at("sessions").as_array();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].string_or("session", ""), name);
  EXPECT_TRUE(sessions[0].bool_or("done", false));
  EXPECT_EQ(sessions[0].number_or("labeled", 0.0), 16.0);

  chaos->handle(json::parse(R"({"op":"shutdown"})"));
  control->handle(json::parse(R"({"op":"shutdown"})"));
}

// ---- warm-standby and ring-growth schedules --------------------------------

/// N-worker fleet with per-worker kill schedules ("shard-i" -> NAME:HITS)
/// and explicit router options (the HA schedules run with --standby
/// semantics: RouterOptions::standby = true).
std::unique_ptr<Router> make_ha_fleet(
    const std::string& tag, std::size_t workers,
    const std::map<std::string, std::string>& kills,
    RouterOptions options = {}) {
  std::vector<ShardSpec> specs(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    const std::string name = "shard-" + std::to_string(i);
    const std::string dir = fresh_dir(tag + "_" + std::to_string(i));
    std::string command = std::string("'") + PWU_SERVE_BIN +
                          "' --checkpoint-dir '" + dir +
                          "' --checkpoint-every 1";
    const auto kill = kills.find(name);
    if (kill != kills.end()) command += " --kill-at " + kill->second;
    specs[i].name = name;
    specs[i].transport =
        std::make_unique<service::PipeTransport>(command, 120.0);
    specs[i].checkpoint_dir = dir;
  }
  return std::make_unique<Router>(std::move(specs), options);
}

/// Forks one more pwu_serve and offers it to the router's ring; the
/// returned response reports whether the grow committed or aborted.
json::Value grow_fleet(Router& router, const std::string& tag,
                       const std::string& name,
                       const std::string& kill_spec = "") {
  const std::string dir = fresh_dir(tag + "_" + name);
  std::string command = std::string("'") + PWU_SERVE_BIN +
                        "' --checkpoint-dir '" + dir +
                        "' --checkpoint-every 1";
  if (!kill_spec.empty()) command += " --kill-at " + kill_spec;
  ShardSpec spec;
  spec.name = name;
  spec.checkpoint_dir = dir;
  spec.transport = std::make_unique<service::PipeTransport>(command, 120.0);
  return router.add_shard(std::move(spec));
}

/// First "<stem><i>" owned by `owner` on the N-member ring — and, when
/// `grown_owner` is set, claimed by that member once "shard-N" joins.
/// Lets a schedule pin exactly which worker hosts (and loses) a session.
std::string find_session(const std::string& stem, std::size_t workers,
                         const std::string& owner,
                         const std::string& grown_owner = "") {
  HashRing base;
  for (std::size_t i = 0; i < workers; ++i) {
    base.add("shard-" + std::to_string(i));
  }
  HashRing grown = base;
  grown.add_node("shard-" + std::to_string(workers));
  for (int i = 0;; ++i) {
    const std::string name = stem + std::to_string(i);
    if (base.owner(name) != owner) continue;
    if (!grown_owner.empty() && grown.owner(name) != grown_owner) continue;
    return name;
  }
}

json::Value call_router(Router& router, const json::Value& request) {
  for (int attempt = 0; attempt < 20; ++attempt) {
    json::Value response = router.handle(request);
    if (!response.bool_or("redirected", false)) return response;
  }
  ADD_FAILURE() << "request redirected 20 times: " << request.dump();
  return json::Value();
}

/// One session stepped round by round, so a schedule can interleave
/// sessions and splice a ring grow mid-traffic.
struct Stepper {
  std::string name;
  unsigned seed = 0;
  util::Rng rng{0};
  bool done = false;
};

void start_session(Router& router, std::vector<std::string>& stream,
                   Stepper& s) {
  const json::Value created =
      call_router(router, create_request(s.name, s.seed));
  EXPECT_TRUE(created.bool_or("ok", false)) << created.dump();
  stream.push_back(canonical(created));
  s.rng = util::Rng(std::stoull(created.at("measure_seed").as_string()));
}

void step_session(Router& router, std::vector<std::string>& stream,
                  Stepper& s, const auto& workload) {
  if (s.done) return;
  const json::Value batch =
      call_router(router, session_request("ask", s.name));
  EXPECT_TRUE(batch.bool_or("ok", false)) << batch.dump();
  stream.push_back(canonical(batch));
  const json::Array& candidates = batch.at("candidates").as_array();
  if (candidates.empty()) {
    s.done = true;
    return;
  }
  for (const json::Value& candidate : candidates) {
    const auto config =
        service::configuration_from_json(candidate.at("levels"));
    const double t = workload->measure(config, s.rng, 1);
    json::Object tell;
    tell.emplace("op", json::Value("tell"));
    tell.emplace("session", json::Value(s.name));
    tell.emplace("levels", candidate.at("levels"));
    tell.emplace("time", json::Value(t));
    const json::Value told = call_router(router, json::Value(std::move(tell)));
    EXPECT_TRUE(told.bool_or("ok", false)) << told.dump();
    stream.push_back(canonical(told));
  }
}

/// Creates every session, runs two interleaved rounds, fires `mid`
/// (e.g. a ring grow), then drives everything to completion.
std::vector<std::string> run_schedule(
    Router& router, std::vector<Stepper> sessions,
    const std::function<void(Router&)>& mid = {}) {
  std::vector<std::string> stream;
  const auto workload = workloads::make_workload("gesummv");
  for (Stepper& s : sessions) start_session(router, stream, s);
  for (int round = 0; round < 2; ++round) {
    for (Stepper& s : sessions) step_session(router, stream, s, workload);
  }
  if (mid) mid(router);
  for (int guard = 0; guard < 100; ++guard) {
    bool all_done = true;
    for (Stepper& s : sessions) {
      step_session(router, stream, s, workload);
      all_done = all_done && s.done;
    }
    if (all_done) break;
  }
  for (Stepper& s : sessions) {
    stream.push_back(
        canonical(call_router(router, session_request("status", s.name))));
  }
  return stream;
}

void expect_streams_equal(const std::vector<std::string>& got,
                          const std::vector<std::string>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "response " << i;
  }
}

TEST(RouterChaos, WarmPromotionOnPrimaryDeathMidReplication) {
  // --standby fleet: the primary dies with a tell applied in memory only,
  // mid-replication-window (the record for it was never acked, so it was
  // never streamed). The ring successor's live shadow sits exactly at the
  // ack horizon; failover must PROMOTE it and replay the in-flight tell —
  // zero cold resume, bit-identical stream.
  RouterOptions options;
  options.standby = true;
  const std::string name = "chaos-warm";
  HashRing ring;
  ring.add("shard-0");
  ring.add("shard-1");
  const std::string owner = ring.owner(name);

  auto control = make_ha_fleet("warm_ctl", 2, {}, options);
  auto chaos = make_ha_fleet(
      "warm_kill", 2, {{owner, "session_manager.tell.applied:5"}}, options);

  const auto expected = drive(*control, name, 211);
  const auto observed = drive(*chaos, name, 211);
  expect_streams_equal(observed, expected);

  EXPECT_EQ(chaos->stats().failovers, 1u);
  EXPECT_EQ(chaos->stats().promotions, 1u);
  EXPECT_EQ(chaos->stats().rehomes, 0u);
  EXPECT_EQ(chaos->stats().standby_fallbacks, 0u);
  EXPECT_EQ(chaos->stats().synthesized, 0u);
  EXPECT_EQ(chaos->stats().replays, 1u);
  EXPECT_GT(chaos->stats().replicated_ops, 0u);
  chaos->handle(json::parse(R"({"op":"shutdown"})"));
  control->handle(json::parse(R"({"op":"shutdown"})"));
}

TEST(RouterChaos, StandbyDeathMidPromotionFallsBackToColdRehome) {
  // The standby is armed to die on the promote request itself — the
  // narrowest window in the failover path. The router must detect the
  // second death mid-promotion and fall back to the cold checkpoint
  // re-home on the last survivor, still bit-identically.
  RouterOptions options;
  options.standby = true;
  const std::string name = "chaos-standby-dies";
  HashRing ring;
  ring.add("shard-0");
  ring.add("shard-1");
  ring.add("shard-2");
  const auto order = ring.owners(name, 2);

  auto control = make_ha_fleet("sdie_ctl", 3, {}, options);
  auto chaos = make_ha_fleet("sdie_kill", 3,
                             {{order[0], "session_manager.tell.applied:5"},
                              {order[1], "protocol.promote"}},
                             options);

  const auto expected = drive(*control, name, 223);
  const auto observed = drive(*chaos, name, 223);
  expect_streams_equal(observed, expected);

  EXPECT_EQ(chaos->stats().failovers, 2u);
  EXPECT_EQ(chaos->stats().promotions, 0u);
  EXPECT_EQ(chaos->stats().standby_fallbacks, 1u);
  EXPECT_EQ(chaos->stats().rehomes, 1u);
  chaos->handle(json::parse(R"({"op":"shutdown"})"));
  control->handle(json::parse(R"({"op":"shutdown"})"));
}

TEST(RouterChaos, GrowAbortsCleanlyWhenImporterDiesAtCommit) {
  // Mid-migration death on the receiving end: the new worker dies at the
  // import-commit kill point. The grow must abort all-or-nothing — ring
  // unchanged, the session keeps serving from its old home, stream
  // bit-identical to a fleet that never grew.
  const std::string mover = find_session("chaos-mig-", 2, "shard-0",
                                         "shard-2");
  std::vector<Stepper> sessions(1);
  sessions[0].name = mover;
  sessions[0].seed = 227;

  auto control = make_ha_fleet("icommit_ctl", 2, {});
  auto chaos = make_ha_fleet("icommit_kill", 2, {});
  const auto expected = run_schedule(*control, sessions);
  const auto observed =
      run_schedule(*chaos, sessions, [](Router& router) {
        const json::Value grown =
            grow_fleet(router, "icommit", "shard-2",
                       "session_manager.import.commit");
        EXPECT_FALSE(grown.bool_or("ok", true)) << grown.dump();
        EXPECT_NE(grown.string_or("error", "").find("grow aborted"),
                  std::string::npos);
      });
  expect_streams_equal(observed, expected);

  EXPECT_EQ(chaos->stats().grows, 0u);
  EXPECT_EQ(chaos->stats().migrated_sessions, 0u);
  EXPECT_EQ(chaos->stats().rehomes, 0u);
  EXPECT_FALSE(chaos->ring().contains("shard-2"));
  chaos->handle(json::parse(R"({"op":"shutdown"})"));
  control->handle(json::parse(R"({"op":"shutdown"})"));
}

TEST(RouterChaos, GrowSurvivesExporterDeathMidMigration) {
  // Mid-migration death on the sending end: the old owner dies on the
  // export request. The grow aborts, the exporter's death triggers a
  // normal failover, and the session finishes from its checkpoint on the
  // survivor — bit-identical throughout.
  const std::string mover = find_session("chaos-exp-", 2, "shard-0",
                                         "shard-2");
  std::vector<Stepper> sessions(1);
  sessions[0].name = mover;
  sessions[0].seed = 229;

  auto control = make_ha_fleet("export_ctl", 2, {});
  auto chaos =
      make_ha_fleet("export_kill", 2, {{"shard-0", "protocol.export"}});
  const auto expected = run_schedule(*control, sessions);
  const auto observed =
      run_schedule(*chaos, sessions, [](Router& router) {
        const json::Value grown = grow_fleet(router, "export", "shard-2");
        EXPECT_FALSE(grown.bool_or("ok", true)) << grown.dump();
      });
  expect_streams_equal(observed, expected);

  EXPECT_EQ(chaos->stats().grows, 0u);
  EXPECT_EQ(chaos->stats().rehomes, 1u);
  EXPECT_GE(chaos->stats().failovers, 1u);
  EXPECT_FALSE(chaos->ring().contains("shard-2"));
  EXPECT_FALSE(chaos->shard_up("shard-0"));
  chaos->handle(json::parse(R"({"op":"shutdown"})"));
  control->handle(json::parse(R"({"op":"shutdown"})"));
}

TEST(RouterChaos, GrowUnderBurstKeepsStreamsBitIdentical) {
  // Three interleaved sessions mid-drive when a healthy worker joins the
  // ring: exactly the sessions the grown ring claims migrate (checkpoint
  // image + replay tail over the pipe), ownership flips atomically, and
  // every stream stays bit-identical to a never-growing control fleet.
  std::vector<Stepper> sessions(3);
  sessions[0].name = find_session("chaos-burst-a-", 2, "shard-0", "shard-2");
  sessions[0].seed = 233;
  sessions[1].name = find_session("chaos-burst-b-", 2, "shard-0", "shard-0");
  sessions[1].seed = 239;
  sessions[2].name = find_session("chaos-burst-c-", 2, "shard-1", "shard-1");
  sessions[2].seed = 241;

  auto control = make_ha_fleet("burst_ctl", 2, {});
  auto chaos = make_ha_fleet("burst_grow", 2, {});
  const auto expected = run_schedule(*control, sessions);
  const auto observed =
      run_schedule(*chaos, sessions, [](Router& router) {
        const json::Value grown = grow_fleet(router, "burst", "shard-2");
        EXPECT_TRUE(grown.bool_or("ok", false)) << grown.dump();
        EXPECT_GE(grown.number_or("migrated", 0.0), 1.0);
      });
  expect_streams_equal(observed, expected);

  EXPECT_EQ(chaos->stats().grows, 1u);
  EXPECT_GE(chaos->stats().migrated_sessions, 1u);
  EXPECT_EQ(chaos->stats().failovers, 0u);
  EXPECT_TRUE(chaos->ring().contains("shard-2"));

  // The migrated session is served from the new worker, not redirected.
  const json::Value status =
      chaos->handle(session_request("status", sessions[0].name));
  EXPECT_TRUE(status.bool_or("ok", false)) << status.dump();
  chaos->handle(json::parse(R"({"op":"shutdown"})"));
  control->handle(json::parse(R"({"op":"shutdown"})"));
}

TEST(RouterChaos, KillMidFitSynthesizesTheCheckpointedTell) {
  // The worker dies inside the refit: the triggering tell is already
  // durable (workers checkpoint before fitting), only the ack was lost.
  expect_bit_identical_failover("fit", "ask_tell_session.fit_model:3", 101);
}

TEST(RouterChaos, KillAfterTellAppliedReplaysTheUndurableTell) {
  // The worker dies after applying the tell in memory but before the
  // auto-checkpoint: nothing durable changed, so the replay on the new
  // home is the first real application.
  expect_bit_identical_failover("tell", "session_manager.tell.applied:4",
                                103);
}

TEST(RouterChaos, KillMidCheckpointWriteResumesThePreviousImage) {
  // The worker dies half-way through writing the post-tell checkpoint.
  // The atomic-write protocol leaves the previous image intact (the torn
  // temp never renamed over it), so failover resumes one tell back and
  // replays the in-flight tell.
  expect_bit_identical_failover("ckpt", "atomic_write.mid_write:2", 107);
}

TEST(RouterChaos, HealthReportsTheFailoverAftermath) {
  const std::string name = "chaos-health";
  auto fleet = make_fleet("health", name, "ask_tell_session.fit_model:1");
  drive(*fleet, name, 109);

  const json::Value response =
      fleet->handle(json::parse(R"({"op":"health"})"));
  ASSERT_TRUE(response.bool_or("ok", false));
  const json::Value& health = response.at("health");
  EXPECT_EQ(health.string_or("role", ""), "router");
  EXPECT_EQ(health.at("ring").at("members").as_array().size(), 1u);
  EXPECT_EQ(health.at("counters").number_or("failovers", 0.0), 1.0);
  EXPECT_EQ(health.at("counters").number_or("rehomes", 0.0), 1.0);
  EXPECT_EQ(health.number_or("sessions_parked", -1.0), 0.0);

  std::size_t up = 0, down = 0;
  for (const json::Value& shard : health.at("shards").as_array()) {
    if (shard.string_or("state", "") == "up") {
      ++up;
      EXPECT_TRUE(shard.at("worker").is_object());
    } else {
      ++down;
    }
  }
  EXPECT_EQ(up, 1u);
  EXPECT_EQ(down, 1u);
  fleet->handle(json::parse(R"({"op":"shutdown"})"));
}

}  // namespace
}  // namespace pwu::router
