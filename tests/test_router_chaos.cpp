// Multi-process chaos harness for the router tier (`ctest -L shard`).
//
// Real pwu_serve workers forked behind PipeTransports, killed at armed
// kill points (--kill-at) so the crash is a genuine process abort at a
// precise protocol instant, with real torn pipes and real checkpoint
// files. Three crash instants cover the failover decision table:
//
//   ask_tell_session.fit_model     tell applied AND auto-checkpointed,
//                                  worker dies in the refit → the router
//                                  must SYNTHESIZE the lost ack;
//   session_manager.tell.applied   tell applied in memory only, nothing
//                                  durable → the router must REPLAY it;
//   atomic_write.mid_write         worker dies half-way through writing
//                                  the post-tell checkpoint → the torn
//                                  temp file is invisible, the previous
//                                  image resumes, the tell REPLAYS.
//
// Acceptance in every case: the client-visible response stream (modulo
// the "checkpoint" path field) is bit-identical to an unkilled control
// fleet, and the session finishes with zero lost state.

#include "router/router.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "router/hash_ring.hpp"
#include "service/protocol.hpp"
#include "service/transport.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "workloads/registry.hpp"

#ifndef PWU_SERVE_BIN
#define PWU_SERVE_BIN "pwu_serve"  // overridden by CMake with the real path
#endif

namespace pwu::router {
namespace {

namespace json = util::json;
namespace fs = std::filesystem;

std::string fresh_dir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() / ("pwu_shard_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// A two-worker fleet over real forked pwu_serve processes. `kill_spec`
/// (NAME[:HITS], empty = healthy) arms the shard that owns `victim`.
std::unique_ptr<Router> make_fleet(const std::string& tag,
                                   const std::string& victim,
                                   const std::string& kill_spec) {
  HashRing ring;
  ring.add("shard-0");
  ring.add("shard-1");
  const std::string owner = ring.owner(victim);
  std::vector<ShardSpec> specs(2);
  for (int i = 0; i < 2; ++i) {
    const std::string name = "shard-" + std::to_string(i);
    const std::string dir = fresh_dir(tag + "_" + std::to_string(i));
    std::string command = std::string("'") + PWU_SERVE_BIN +
                          "' --checkpoint-dir '" + dir +
                          "' --checkpoint-every 1";
    if (!kill_spec.empty() && name == owner) {
      command += " --kill-at " + kill_spec;
    }
    specs[i].name = name;
    specs[i].transport =
        std::make_unique<service::PipeTransport>(command, 120.0);
    specs[i].checkpoint_dir = dir;
  }
  return std::make_unique<Router>(std::move(specs));
}

json::Value create_request(const std::string& name, unsigned seed) {
  return json::parse(
      R"({"op":"create","session":")" + name +
      R"(","workload":"gesummv","n_init":6,"n_batch":2,"n_max":16,)"
      R"("trees":8,"pool_size":120,"seed":)" + std::to_string(seed) + "}");
}

json::Value session_request(const std::string& op, const std::string& name) {
  json::Object obj;
  obj.emplace("op", json::Value(op));
  obj.emplace("session", json::Value(name));
  return json::Value(std::move(obj));
}

/// Checkpoint paths legitimately differ across homes; everything else in
/// the stream must match bit for bit.
std::string canonical(json::Value response) {
  if (response.is_object()) response.as_object().erase("checkpoint");
  return response.dump();
}

/// Drives one session to completion, recording every canonicalized
/// response. Redirects (re-home in progress) are retried like pwu_client
/// does, without entering the stream — the control fleet never emits
/// them, and the contract is about the *accepted* responses.
std::vector<std::string> drive(Router& router, const std::string& name,
                               unsigned seed) {
  const auto call = [&](const json::Value& request) {
    for (int attempt = 0; attempt < 20; ++attempt) {
      json::Value response = router.handle(request);
      if (!response.bool_or("redirected", false)) return response;
    }
    ADD_FAILURE() << "request redirected 20 times: " << request.dump();
    return json::Value();
  };

  std::vector<std::string> stream;
  const json::Value created = call(create_request(name, seed));
  EXPECT_TRUE(created.bool_or("ok", false)) << created.dump();
  stream.push_back(canonical(created));
  const auto workload = workloads::make_workload("gesummv");
  util::Rng measure_rng(std::stoull(created.at("measure_seed").as_string()));
  for (;;) {
    const json::Value batch = call(session_request("ask", name));
    EXPECT_TRUE(batch.bool_or("ok", false)) << batch.dump();
    stream.push_back(canonical(batch));
    const json::Array& candidates = batch.at("candidates").as_array();
    if (candidates.empty()) break;
    for (const json::Value& candidate : candidates) {
      const auto config =
          service::configuration_from_json(candidate.at("levels"));
      const double t = workload->measure(config, measure_rng, 1);
      json::Object tell;
      tell.emplace("op", json::Value("tell"));
      tell.emplace("session", json::Value(name));
      tell.emplace("levels", candidate.at("levels"));
      tell.emplace("time", json::Value(t));
      const json::Value told = call(json::Value(std::move(tell)));
      EXPECT_TRUE(told.bool_or("ok", false)) << told.dump();
      stream.push_back(canonical(told));
    }
  }
  stream.push_back(canonical(call(session_request("status", name))));
  return stream;
}

/// Runs the kill scenario against its control and asserts the streams are
/// bit-identical and the session survived to completion.
void expect_bit_identical_failover(const std::string& tag,
                                   const std::string& kill_spec,
                                   unsigned seed) {
  const std::string name = "chaos-" + tag;
  auto control = make_fleet(tag + "_ctl", name, "");
  auto chaos = make_fleet(tag + "_kill", name, kill_spec);

  const auto expected = drive(*control, name, seed);
  const auto observed = drive(*chaos, name, seed);

  ASSERT_EQ(observed.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(observed[i], expected[i]) << "response " << i;
  }

  // The kill really happened and really failed over.
  EXPECT_EQ(chaos->stats().failovers, 1u);
  EXPECT_EQ(chaos->stats().rehomes, 1u);
  EXPECT_EQ(control->stats().failovers, 0u);

  // Zero lost sessions: the fleet still lists and serves it.
  const json::Value listed = chaos->handle(json::parse(R"({"op":"list"})"));
  ASSERT_TRUE(listed.bool_or("ok", false));
  const json::Array& sessions = listed.at("sessions").as_array();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].string_or("session", ""), name);
  EXPECT_TRUE(sessions[0].bool_or("done", false));
  EXPECT_EQ(sessions[0].number_or("labeled", 0.0), 16.0);

  chaos->handle(json::parse(R"({"op":"shutdown"})"));
  control->handle(json::parse(R"({"op":"shutdown"})"));
}

TEST(RouterChaos, KillMidFitSynthesizesTheCheckpointedTell) {
  // The worker dies inside the refit: the triggering tell is already
  // durable (workers checkpoint before fitting), only the ack was lost.
  expect_bit_identical_failover("fit", "ask_tell_session.fit_model:3", 101);
}

TEST(RouterChaos, KillAfterTellAppliedReplaysTheUndurableTell) {
  // The worker dies after applying the tell in memory but before the
  // auto-checkpoint: nothing durable changed, so the replay on the new
  // home is the first real application.
  expect_bit_identical_failover("tell", "session_manager.tell.applied:4",
                                103);
}

TEST(RouterChaos, KillMidCheckpointWriteResumesThePreviousImage) {
  // The worker dies half-way through writing the post-tell checkpoint.
  // The atomic-write protocol leaves the previous image intact (the torn
  // temp never renamed over it), so failover resumes one tell back and
  // replays the in-flight tell.
  expect_bit_identical_failover("ckpt", "atomic_write.mid_write:2", 107);
}

TEST(RouterChaos, HealthReportsTheFailoverAftermath) {
  const std::string name = "chaos-health";
  auto fleet = make_fleet("health", name, "ask_tell_session.fit_model:1");
  drive(*fleet, name, 109);

  const json::Value response =
      fleet->handle(json::parse(R"({"op":"health"})"));
  ASSERT_TRUE(response.bool_or("ok", false));
  const json::Value& health = response.at("health");
  EXPECT_EQ(health.string_or("role", ""), "router");
  EXPECT_EQ(health.at("ring").at("members").as_array().size(), 1u);
  EXPECT_EQ(health.at("counters").number_or("failovers", 0.0), 1.0);
  EXPECT_EQ(health.at("counters").number_or("rehomes", 0.0), 1.0);
  EXPECT_EQ(health.number_or("sessions_parked", -1.0), 0.0);

  std::size_t up = 0, down = 0;
  for (const json::Value& shard : health.at("shards").as_array()) {
    if (shard.string_or("state", "") == "up") {
      ++up;
      EXPECT_TRUE(shard.at("worker").is_object());
    } else {
      ++down;
    }
  }
  EXPECT_EQ(up, 1u);
  EXPECT_EQ(down, 1u);
  fleet->handle(json::parse(R"({"op":"shutdown"})"));
}

}  // namespace
}  // namespace pwu::router
