// Contract macro tests — the machinery (handler hook, message formatting,
// lazy message evaluation) plus regression coverage for the call sites that
// replaced bare assert()s: Rng range preconditions and Dataset accessor
// bounds. Contracts are compiled out under NDEBUG, so in a Release suite
// these skip; the asan/tsan presets (Debug) exercise them on every run.

#include "util/contracts.hpp"

#include <gtest/gtest.h>

#include <string>

#include "rf/dataset.hpp"
#include "util/rng.hpp"

namespace pwu::util {
namespace {

#if PWU_CONTRACTS_ENABLED

/// Installs a throwing handler for the test's scope so a violation becomes
/// a catchable exception instead of an abort.
class ThrowingHandlerScope {
 public:
  ThrowingHandlerScope()
      : previous_(set_contract_handler(
            [](const ContractViolation& v) -> void { throw v; })) {}
  ~ThrowingHandlerScope() { set_contract_handler(previous_); }

 private:
  ContractHandler previous_;
};

TEST(Contracts, ViolationCarriesStructuredDiagnostic) {
  ThrowingHandlerScope scope;
  const int n = -3;
  try {
    PWU_REQUIRE(n >= 0, "n=" << n << " must be non-negative");
    FAIL() << "PWU_REQUIRE(false) did not fire";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), "precondition");
    EXPECT_EQ(v.expression(), "n >= 0");
    EXPECT_EQ(v.message(), "n=-3 must be non-negative");
    EXPECT_NE(v.file().find("test_contracts.cpp"), std::string::npos);
    EXPECT_GT(v.line(), 0);
    EXPECT_NE(std::string(v.what()).find("precondition"), std::string::npos);
    EXPECT_NE(std::string(v.what()).find("n >= 0"), std::string::npos);
  }
}

TEST(Contracts, EachMacroReportsItsKind) {
  ThrowingHandlerScope scope;
  try {
    PWU_ENSURE(false, "post");
    FAIL();
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), "postcondition");
  }
  try {
    PWU_ASSERT(false);
    FAIL();
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), "invariant");
    EXPECT_TRUE(v.message().empty());  // the message chain is optional
  }
}

TEST(Contracts, PassingCheckEvaluatesNoMessage) {
  ThrowingHandlerScope scope;
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return std::string("never built");
  };
  PWU_REQUIRE(1 + 1 == 2, expensive());
  EXPECT_EQ(evaluations, 0);  // message streams only on failure
}

TEST(Contracts, HandlerInstallReturnsPrevious) {
  const ContractHandler thrower = [](const ContractViolation& v) -> void {
    throw v;
  };
  const ContractHandler before = set_contract_handler(thrower);
  EXPECT_EQ(set_contract_handler(before), thrower);
}

// ---- regression: the assert() call sites converted to contracts ----

TEST(Contracts, RngIndexRejectsEmptyRange) {
  ThrowingHandlerScope scope;
  Rng rng(7);
  EXPECT_THROW(rng.index(0), ContractViolation);
  EXPECT_LT(rng.index(5), 5u);  // in-range draws still work
}

TEST(Contracts, RngUniformIntRejectsReversedBounds) {
  ThrowingHandlerScope scope;
  Rng rng(7);
  try {
    rng.uniform_int(5, 2);
    FAIL() << "reversed bounds accepted";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), "precondition");
    EXPECT_NE(v.message().find("lo=5"), std::string::npos);
    EXPECT_NE(v.message().find("hi=2"), std::string::npos);
  }
  const auto ok = rng.uniform_int(2, 5);
  EXPECT_GE(ok, 2);
  EXPECT_LE(ok, 5);
}

TEST(Contracts, DatasetAccessorsRejectOutOfRange) {
  ThrowingHandlerScope scope;
  rf::Dataset data(2);
  data.add(std::vector<double>{1.0, 2.0}, 3.0);
  EXPECT_DOUBLE_EQ(data.x(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(data.y(0), 3.0);
  EXPECT_THROW(data.x(1, 0), ContractViolation);  // row past size()
  EXPECT_THROW(data.x(0, 2), ContractViolation);  // col past width
  EXPECT_THROW(data.y(9), ContractViolation);
  EXPECT_THROW(data.row(1), ContractViolation);
}

#else  // !PWU_CONTRACTS_ENABLED

TEST(Contracts, CompiledOutInThisBuild) {
  GTEST_SKIP() << "contracts are compiled out (NDEBUG); run the asan or "
                  "tsan preset to exercise them";
}

#endif

}  // namespace
}  // namespace pwu::util
