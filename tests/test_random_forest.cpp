#include "rf/random_forest.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/statistics.hpp"

namespace pwu::rf {
namespace {

Dataset smooth_function_data(std::size_t n, util::Rng& rng) {
  Dataset d(3);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(0.0, 10.0);
    const double b = rng.uniform(0.0, 10.0);
    const double c = rng.uniform(0.0, 10.0);
    d.add(std::vector<double>{a, b, c}, a * a + 2.0 * b - 0.5 * c);
  }
  return d;
}

ForestConfig default_forest(std::size_t trees = 30) {
  ForestConfig cfg;
  cfg.num_trees = trees;
  cfg.tree.mtry = 2;
  return cfg;
}

TEST(RandomForest, LearnsSmoothFunction) {
  util::Rng rng(1);
  const Dataset train = smooth_function_data(600, rng);
  RandomForest forest;
  util::Rng fit_rng(2);
  forest.fit(train, default_forest(), fit_rng);

  // Out-of-sample error must be far below the label spread.
  util::Rng test_rng(3);
  const Dataset test = smooth_function_data(200, test_rng);
  double sq_err = 0.0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const double e = forest.predict(test.row(i)) - test.y(i);
    sq_err += e * e;
  }
  const double rmse = std::sqrt(sq_err / static_cast<double>(test.size()));
  const double label_sd = util::stddev(test.labels());
  EXPECT_LT(rmse, 0.3 * label_sd);
}

TEST(RandomForest, PredictionWithinLabelRange) {
  util::Rng rng(4);
  const Dataset train = smooth_function_data(200, rng);
  RandomForest forest;
  util::Rng fit_rng(5);
  forest.fit(train, default_forest(), fit_rng);
  const double lo = util::min_value(train.labels());
  const double hi = util::max_value(train.labels());
  util::Rng probe(6);
  for (int t = 0; t < 100; ++t) {
    const std::vector<double> row = {probe.uniform(-5.0, 15.0),
                                     probe.uniform(-5.0, 15.0),
                                     probe.uniform(-5.0, 15.0)};
    const double p = forest.predict(row);
    EXPECT_GE(p, lo - 1e-9);
    EXPECT_LE(p, hi + 1e-9);
  }
}

TEST(RandomForest, PredictStatsConsistentWithPredict) {
  util::Rng rng(7);
  const Dataset train = smooth_function_data(100, rng);
  RandomForest forest;
  util::Rng fit_rng(8);
  forest.fit(train, default_forest(), fit_rng);
  const std::vector<double> row = {5.0, 5.0, 5.0};
  const PredictionStats stats = forest.predict_stats(row);
  EXPECT_NEAR(stats.mean, forest.predict(row), 1e-12);
  EXPECT_GE(stats.variance, 0.0);
  EXPECT_NEAR(stats.stddev, std::sqrt(stats.variance), 1e-12);
}

TEST(RandomForest, UncertaintyPositiveAwayFromDataAndShrinksWithData) {
  // The across-tree spread is the active-learning signal: more training
  // data in a region must (on average) shrink it.
  util::Rng rng(9);
  const Dataset small = smooth_function_data(40, rng);
  util::Rng rng2(10);
  const Dataset large = smooth_function_data(1000, rng2);

  RandomForest forest_small, forest_large;
  util::Rng fit_a(11), fit_b(11);
  forest_small.fit(small, default_forest(), fit_a);
  forest_large.fit(large, default_forest(), fit_b);

  util::Rng probe(12);
  double sigma_small = 0.0, sigma_large = 0.0;
  const int probes = 200;
  for (int t = 0; t < probes; ++t) {
    const std::vector<double> row = {probe.uniform(0.0, 10.0),
                                     probe.uniform(0.0, 10.0),
                                     probe.uniform(0.0, 10.0)};
    sigma_small += forest_small.predict_stats(row).stddev;
    sigma_large += forest_large.predict_stats(row).stddev;
  }
  EXPECT_GT(sigma_small, 0.0);
  EXPECT_LT(sigma_large, sigma_small);
}

TEST(RandomForest, DeterministicGivenSeed) {
  util::Rng rng(13);
  const Dataset train = smooth_function_data(150, rng);
  RandomForest a, b;
  util::Rng fit_a(99), fit_b(99);
  a.fit(train, default_forest(), fit_a);
  b.fit(train, default_forest(), fit_b);
  util::Rng probe(14);
  for (int t = 0; t < 50; ++t) {
    const std::vector<double> row = {probe.uniform(0.0, 10.0),
                                     probe.uniform(0.0, 10.0),
                                     probe.uniform(0.0, 10.0)};
    EXPECT_DOUBLE_EQ(a.predict(row), b.predict(row));
    EXPECT_DOUBLE_EQ(a.predict_stats(row).stddev,
                     b.predict_stats(row).stddev);
  }
}

TEST(RandomForest, ParallelFitMatchesSerialFit) {
  util::Rng rng(15);
  const Dataset train = smooth_function_data(200, rng);
  RandomForest serial, parallel;
  util::Rng fit_a(7), fit_b(7);
  util::ThreadPool pool(4);
  serial.fit(train, default_forest(), fit_a, nullptr);
  parallel.fit(train, default_forest(), fit_b, &pool);
  util::Rng probe(16);
  for (int t = 0; t < 50; ++t) {
    const std::vector<double> row = {probe.uniform(0.0, 10.0),
                                     probe.uniform(0.0, 10.0),
                                     probe.uniform(0.0, 10.0)};
    EXPECT_DOUBLE_EQ(serial.predict(row), parallel.predict(row));
  }
}

TEST(RandomForest, PredictStatsBatchMatchesScalar) {
  util::Rng rng(17);
  const Dataset train = smooth_function_data(100, rng);
  RandomForest forest;
  util::Rng fit_rng(18);
  forest.fit(train, default_forest(), fit_rng);
  FeatureMatrix rows;
  util::Rng probe(19);
  for (int t = 0; t < 300; ++t) {
    const std::vector<double> row = {probe.uniform(0.0, 10.0),
                                     probe.uniform(0.0, 10.0),
                                     probe.uniform(0.0, 10.0)};
    rows.add_row(row);
  }
  util::ThreadPool pool(3);
  const auto batch = forest.predict_stats_batch(rows, &pool);
  ASSERT_EQ(batch.size(), rows.num_rows());
  for (std::size_t i = 0; i < rows.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i].mean, forest.predict_stats(rows.row(i)).mean);
  }
}

TEST(RandomForest, OobErrorIsReasonable) {
  util::Rng rng(20);
  const Dataset train = smooth_function_data(400, rng);
  RandomForest forest;
  ForestConfig cfg = default_forest(40);
  cfg.compute_oob = true;
  util::Rng fit_rng(21);
  forest.fit(train, cfg, fit_rng);
  const double oob = forest.oob_rmse();
  EXPECT_TRUE(std::isfinite(oob));
  EXPECT_GT(oob, 0.0);
  EXPECT_LT(oob, util::stddev(train.labels()));
}

TEST(RandomForest, OobNanWithoutComputeFlag) {
  util::Rng rng(22);
  const Dataset train = smooth_function_data(50, rng);
  RandomForest forest;
  util::Rng fit_rng(23);
  forest.fit(train, default_forest(), fit_rng);
  EXPECT_TRUE(std::isnan(forest.oob_rmse()));
}

TEST(RandomForest, PermutationImportanceOrdersFeatures) {
  // y = a^2 + 2b - 0.5c: importance(a) > importance(b) > importance(c)
  // over [0,10]^3 (a contributes variance ~ 888, b ~ 33, c ~ 2).
  util::Rng rng(24);
  const Dataset train = smooth_function_data(800, rng);
  RandomForest forest;
  util::Rng fit_rng(25);
  forest.fit(train, default_forest(40), fit_rng);
  util::Rng perm_rng(26);
  const auto importance = forest.permutation_importance(train, perm_rng);
  ASSERT_EQ(importance.size(), 3u);
  EXPECT_GT(importance[0], importance[1]);
  EXPECT_GT(importance[1], importance[2]);
}

TEST(RandomForest, NoBootstrapTreesInterpolateTrainingPoints) {
  // Without bagging every fully-grown tree sees the whole training set and
  // interpolates it exactly, so the across-tree spread at any training
  // point is zero — even though equal-gain tie-breaks may differ between
  // trees elsewhere.
  util::Rng rng(27);
  const Dataset train = smooth_function_data(100, rng);
  RandomForest forest;
  ForestConfig cfg = default_forest(10);
  cfg.bootstrap = false;
  cfg.tree.mtry = 3;
  util::Rng fit_rng(28);
  forest.fit(train, cfg, fit_rng);
  for (std::size_t i = 0; i < train.size(); i += 10) {
    const PredictionStats stats = forest.predict_stats(train.row(i));
    EXPECT_NEAR(stats.mean, train.y(i), 1e-9);
    EXPECT_NEAR(stats.stddev, 0.0, 1e-9);
  }
}

TEST(RandomForest, InvalidInputsRejected) {
  RandomForest forest;
  util::Rng rng(29);
  Dataset empty(2);
  EXPECT_THROW(forest.fit(empty, default_forest(), rng),
               std::invalid_argument);
  Dataset one(1);
  one.add(std::vector<double>{1.0}, 1.0);
  ForestConfig zero_trees;
  zero_trees.num_trees = 0;
  EXPECT_THROW(forest.fit(one, zero_trees, rng), std::invalid_argument);
  EXPECT_THROW(forest.predict(std::vector<double>{1.0}), std::logic_error);
}

TEST(RandomForest, StructureStatsExposed) {
  util::Rng rng(30);
  const Dataset train = smooth_function_data(100, rng);
  RandomForest forest;
  util::Rng fit_rng(31);
  forest.fit(train, default_forest(5), fit_rng);
  EXPECT_EQ(forest.num_trees(), 5u);
  EXPECT_GT(forest.total_nodes(), 5u);
  EXPECT_GT(forest.max_depth(), 1u);
}

TEST(RandomForest, LabelScalingEquivariance) {
  // Variance-reduction split gains scale with the square of a label
  // scaling, so the chosen splits are identical and predictions scale
  // through: f_{a*y}(x) = a * f_y(x). A power-of-two factor keeps the
  // floating-point arithmetic exact, so equality is bit-level (a general
  // affine transform only holds approximately: rounding can flip
  // near-tied split choices deep in a tree).
  util::Rng data_rng(50);
  const Dataset base = smooth_function_data(250, data_rng);
  Dataset scaled(3);
  for (std::size_t i = 0; i < base.size(); ++i) {
    scaled.add(base.row(i), 4.0 * base.y(i));
  }
  RandomForest f_base, f_scaled;
  util::Rng fit_a(51), fit_b(51);
  f_base.fit(base, default_forest(), fit_a);
  f_scaled.fit(scaled, default_forest(), fit_b);
  util::Rng probe(52);
  for (int t = 0; t < 60; ++t) {
    const std::vector<double> row = {probe.uniform(0.0, 10.0),
                                     probe.uniform(0.0, 10.0),
                                     probe.uniform(0.0, 10.0)};
    EXPECT_DOUBLE_EQ(f_scaled.predict(row), 4.0 * f_base.predict(row));
  }
}

TEST(RandomForest, UncertaintyScalesWithLabelScale) {
  // Same property for the spread: sigma_{a*y}(x) = a * sigma_y(x).
  util::Rng data_rng(53);
  const Dataset base = smooth_function_data(250, data_rng);
  Dataset scaled(3);
  for (std::size_t i = 0; i < base.size(); ++i) {
    scaled.add(base.row(i), 4.0 * base.y(i));
  }
  RandomForest f_base, f_scaled;
  util::Rng fit_a(54), fit_b(54);
  f_base.fit(base, default_forest(), fit_a);
  f_scaled.fit(scaled, default_forest(), fit_b);
  const std::vector<double> row = {5.0, 5.0, 5.0};
  EXPECT_NEAR(f_scaled.predict_stats(row).stddev,
              4.0 * f_base.predict_stats(row).stddev, 1e-9);
}

struct ForestParam {
  std::size_t trees;
  std::size_t max_depth;
  std::size_t min_leaf;
};

class ForestConfigSweep : public ::testing::TestWithParam<ForestParam> {};

// Property sweep: any sane hyper-parameter combination must produce a
// usable model whose error beats predicting the mean.
TEST_P(ForestConfigSweep, FitsAndBeatsMeanPredictor) {
  const ForestParam param = GetParam();
  util::Rng rng(32);
  const Dataset train = smooth_function_data(300, rng);
  util::Rng rng2(33);
  const Dataset test = smooth_function_data(150, rng2);

  ForestConfig cfg;
  cfg.num_trees = param.trees;
  cfg.tree.max_depth = param.max_depth;
  cfg.tree.min_samples_leaf = param.min_leaf;
  RandomForest forest;
  util::Rng fit_rng(34);
  forest.fit(train, cfg, fit_rng);

  const double mean_label = util::mean(train.labels());
  double model_sq = 0.0, mean_sq = 0.0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const double em = forest.predict(test.row(i)) - test.y(i);
    const double eb = mean_label - test.y(i);
    model_sq += em * em;
    mean_sq += eb * eb;
  }
  EXPECT_LT(model_sq, mean_sq);
}

INSTANTIATE_TEST_SUITE_P(
    HyperParameters, ForestConfigSweep,
    ::testing::Values(ForestParam{1, 0, 1}, ForestParam{10, 0, 1},
                      ForestParam{50, 0, 1}, ForestParam{20, 4, 1},
                      ForestParam{20, 0, 5}, ForestParam{20, 8, 3},
                      ForestParam{5, 12, 2}, ForestParam{30, 6, 10}));

}  // namespace
}  // namespace pwu::rf
