// Race stress harness — these tests exist to be run under ThreadSanitizer
// (the `tsan` preset). They hammer the two places where threads genuinely
// share mutable state:
//
//   * SessionManager — per-session driver threads ask/tell concurrently
//     while background refits run on a shared worker pool and a poller
//     thread reads status/list/checkpoint through the const paths.
//   * FlatForest — one compiled forest and one feature matrix evaluated
//     from several threads at once, each fanning out over the same pool.
//
// Under a plain build they still pass (and assert determinism: concurrent
// drivers must reproduce the single-threaded labels exactly), so they run
// in every suite; TSAN is what turns a latent race into a failure.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "rf/dataset.hpp"
#include "rf/feature_matrix.hpp"
#include "rf/random_forest.hpp"
#include "service/session_manager.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workloads/registry.hpp"

namespace pwu::service {
namespace {

SessionSpec stress_spec(std::uint64_t seed) {
  SessionSpec spec;
  spec.workload = "gesummv";
  spec.learner.n_init = 6;
  spec.learner.n_batch = 2;
  spec.learner.n_max = 14;
  spec.learner.forest.num_trees = 8;
  spec.pool_size = 120;
  spec.seed = seed;
  return spec;
}

/// Client loop: measure with the stream the server hands back, tell in ask
/// order. Identical to the single-threaded driver in test_service.cpp so
/// the concurrent runs below are label-for-label comparable.
SessionStatus drive(SessionManager& manager, const std::string& name) {
  const SessionStatus st = manager.status(name);
  const auto workload = workloads::make_workload(st.workload);
  util::Rng measure_rng(st.measure_seed);
  for (;;) {
    const auto batch = manager.ask(name);
    if (batch.empty()) break;
    for (const Candidate& c : batch) {
      manager.tell(name, c.config,
                   workload->measure(c.config, measure_rng, 1));
    }
  }
  return manager.status(name);
}

TEST(RaceStress, SessionManagerConcurrentAskTellRefit) {
  constexpr std::size_t kSessions = 4;

  // Reference labels from a serial manager, one session at a time.
  std::vector<double> serial_best(kSessions);
  {
    SessionManager serial;
    for (std::size_t i = 0; i < kSessions; ++i) {
      const std::string name = "s" + std::to_string(i);
      serial.create(name, stress_spec(1000 + 17 * i));
      serial_best[i] = drive(serial, name).best_observed;
    }
  }

  // Concurrent run: one driver thread per session, refits offloaded to a
  // shared 4-worker pool so fits of different sessions overlap, plus a
  // poller thread reading every const entry point while drivers mutate.
  util::ThreadPool workers(4);
  SessionManager manager(&workers);
  for (std::size_t i = 0; i < kSessions; ++i) {
    manager.create("s" + std::to_string(i), stress_spec(1000 + 17 * i));
  }

  std::atomic<std::size_t> finished{0};
  std::vector<SessionStatus> final_status(kSessions);
  std::vector<std::thread> drivers;
  drivers.reserve(kSessions);
  for (std::size_t i = 0; i < kSessions; ++i) {
    drivers.emplace_back([&, i] {
      final_status[i] = drive(manager, "s" + std::to_string(i));
      finished.fetch_add(1, std::memory_order_relaxed);
    });
  }

  std::atomic<std::size_t> polls{0};
  std::thread poller([&] {
    while (finished.load(std::memory_order_relaxed) < kSessions) {
      const auto all = manager.list();
      EXPECT_EQ(all.size(), kSessions);
      for (const auto& st : all) {
        EXPECT_LE(st.labeled, st.n_max);
        std::ostringstream checkpoint;
        manager.checkpoint(st.name, checkpoint);
        EXPECT_FALSE(checkpoint.str().empty());
      }
      polls.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  for (auto& t : drivers) t.join();
  poller.join();

  EXPECT_GT(polls.load(), 0u);
  for (std::size_t i = 0; i < kSessions; ++i) {
    EXPECT_TRUE(final_status[i].done);
    EXPECT_EQ(final_status[i].labeled, 14u);
    EXPECT_EQ(final_status[i].pending, 0u);
    // Concurrency must change timing only, never a label.
    EXPECT_EQ(final_status[i].best_observed, serial_best[i]);
  }
}

TEST(RaceStress, SessionManagerCreateCloseChurnWhileDriving) {
  // Registry-level churn: while two long-lived sessions are being driven,
  // another thread creates and closes short-lived sessions, stressing the
  // registry mutex against the per-entry mutexes.
  util::ThreadPool workers(4);
  SessionManager manager(&workers);
  manager.create("a", stress_spec(7));
  manager.create("b", stress_spec(8));

  std::atomic<bool> driving{true};
  std::thread churn([&] {
    std::size_t n = 0;
    while (driving.load(std::memory_order_relaxed)) {
      const std::string name = "tmp" + std::to_string(n++ % 3);
      manager.create(name, stress_spec(9000 + n));
      manager.ask(name);  // leave a batch outstanding, then drop it
      EXPECT_TRUE(manager.close(name));
      std::this_thread::yield();
    }
  });

  std::thread da([&] { drive(manager, "a"); });
  std::thread db([&] { drive(manager, "b"); });
  da.join();
  db.join();
  driving.store(false, std::memory_order_relaxed);
  churn.join();

  EXPECT_TRUE(manager.status("a").done);
  EXPECT_TRUE(manager.status("b").done);
  EXPECT_EQ(manager.size(), 2u);
}

TEST(RaceStress, CloseAndDestroyWithRefitsInFlight) {
  // Regression for a use-after-free: the refit task used to capture a raw
  // AskTellSession*, so close() (or ~SessionManager) could free the
  // session while the pool was still fitting it. The task now owns the
  // Entry via shared_ptr, making teardown-while-fitting safe. Each round
  // schedules refits on a slow-ish pool and immediately tears down; ASAN /
  // TSAN turn any revival of the bug into a failure.
  const auto workload = workloads::make_workload("gesummv");
  for (int round = 0; round < 6; ++round) {
    util::ThreadPool workers(2);
    auto manager = std::make_unique<SessionManager>(&workers);
    for (int s = 0; s < 3; ++s) {
      const std::string name = "r" + std::to_string(s);
      manager->create(name, stress_spec(400 + 10 * round + s));
      // Complete the cold batch: the tell of the last label schedules a
      // background refit on the pool.
      util::Rng measure(manager->status(name).measure_seed);
      for (const Candidate& c : manager->ask(name)) {
        manager->tell(name, c.config, workload->measure(c.config, measure, 1));
      }
    }
    // Close one session with its refit possibly still running, then drop
    // the whole manager the same way. Both must block on (or safely
    // disown) the in-flight fits — never free state under them.
    EXPECT_TRUE(manager->close("r0"));
    if (round % 2 == 0) manager->drain();
    manager.reset();
  }
}

TEST(RaceStress, ConcurrentDegradedAsksWhileRefitsRun) {
  // Deadline-0 drivers race their own background refits: every ask is
  // answered immediately (fresh or degraded), tells block only for the
  // fit in flight, and the run still finishes every session's budget.
  // Under TSAN this exercises last_good snapshots, the degraded rng, and
  // the watchdog fields against the refit worker.
  constexpr std::size_t kSessions = 4;
  util::ThreadPool workers(4);
  SessionManager manager(&workers);
  const auto workload = workloads::make_workload("gesummv");
  for (std::size_t i = 0; i < kSessions; ++i) {
    manager.create("d" + std::to_string(i), stress_spec(600 + 23 * i));
  }

  std::atomic<std::size_t> finished{0};
  std::atomic<std::size_t> degraded{0};
  std::vector<std::thread> drivers;
  drivers.reserve(kSessions);
  for (std::size_t i = 0; i < kSessions; ++i) {
    drivers.emplace_back([&, i] {
      const std::string name = "d" + std::to_string(i);
      util::Rng measure(manager.status(name).measure_seed);
      for (;;) {
        const AskOutcome out = manager.ask_with_deadline(name, 0, 0);
        if (out.degraded != DegradedMode::None) {
          degraded.fetch_add(1, std::memory_order_relaxed);
        }
        if (out.candidates.empty()) break;
        for (const Candidate& c : out.candidates) {
          manager.tell(name, c.config,
                       workload->measure(c.config, measure, 1));
        }
      }
      finished.fetch_add(1, std::memory_order_relaxed);
    });
  }
  std::thread poller([&] {
    while (finished.load(std::memory_order_relaxed) < kSessions) {
      const HealthReport health = manager.health();
      EXPECT_EQ(health.sessions.size(), kSessions);
      std::this_thread::yield();
    }
  });
  for (auto& t : drivers) t.join();
  poller.join();

  for (std::size_t i = 0; i < kSessions; ++i) {
    const SessionStatus st = manager.status("d" + std::to_string(i));
    EXPECT_TRUE(st.done);
    EXPECT_EQ(st.labeled, 14u);
  }
  const HealthReport health = manager.health();
  EXPECT_EQ(health.degraded_stale_asks + health.degraded_random_asks,
            degraded.load());
  EXPECT_EQ(health.overloaded_sheds, 0u);
}

TEST(RaceStress, ConcurrentFusedAsksWhileRefitsSwap) {
  // Two fuser threads each drive a disjoint trio of sessions through
  // ask_fused while their tells schedule background refits on the shared
  // pool — fused scoring passes, refit swaps, and a health/checkpoint
  // poller all overlap. Fusion must stay a pure scheduling change: every
  // session's labels match the serial single-session reference exactly.
  constexpr std::size_t kGroups = 2;
  constexpr std::size_t kPerGroup = 3;
  const auto workload = workloads::make_workload("gesummv");

  std::vector<double> serial_best(kGroups * kPerGroup);
  {
    SessionManager serial;
    for (std::size_t i = 0; i < serial_best.size(); ++i) {
      const std::string name = "f" + std::to_string(i);
      serial.create(name, stress_spec(2000 + 31 * i));
      serial_best[i] = drive(serial, name).best_observed;
    }
  }

  util::ThreadPool workers(4);
  SessionManager manager(&workers);
  for (std::size_t i = 0; i < serial_best.size(); ++i) {
    manager.create("f" + std::to_string(i), stress_spec(2000 + 31 * i));
  }

  std::atomic<std::size_t> finished{0};
  std::vector<std::thread> fusers;
  fusers.reserve(kGroups);
  for (std::size_t g = 0; g < kGroups; ++g) {
    fusers.emplace_back([&, g] {
      std::vector<std::string> names;
      std::vector<util::Rng> measure;
      for (std::size_t k = 0; k < kPerGroup; ++k) {
        names.push_back("f" + std::to_string(g * kPerGroup + k));
        measure.emplace_back(manager.status(names.back()).measure_seed);
      }
      bool open = true;
      while (open) {
        open = false;
        std::vector<FusedAskRequest> requests;
        for (const auto& name : names) requests.push_back({name, 0});
        const auto results = manager.ask_fused(requests, -1);
        for (std::size_t k = 0; k < kPerGroup; ++k) {
          EXPECT_TRUE(results[k].error.empty()) << results[k].error;
          if (results[k].outcome.candidates.empty()) continue;
          open = true;
          for (const Candidate& c : results[k].outcome.candidates) {
            manager.tell(names[k], c.config,
                         workload->measure(c.config, measure[k], 1));
          }
        }
      }
      finished.fetch_add(1, std::memory_order_relaxed);
    });
  }

  std::thread poller([&] {
    while (finished.load(std::memory_order_relaxed) < kGroups) {
      const HealthReport health = manager.health();
      EXPECT_EQ(health.sessions.size(), serial_best.size());
      std::this_thread::yield();
    }
  });
  for (auto& t : fusers) t.join();
  poller.join();

  for (std::size_t i = 0; i < serial_best.size(); ++i) {
    const SessionStatus st = manager.status("f" + std::to_string(i));
    EXPECT_TRUE(st.done);
    EXPECT_EQ(st.labeled, 14u);
    EXPECT_EQ(st.best_observed, serial_best[i]);
  }
  EXPECT_GT(manager.health().fused_groups, 0u);
}

TEST(RaceStress, DeferredCheckpointCommitKeepsTheNewestImage) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "pwu_race_ckpt";
  fs::remove_all(dir);
  fs::create_directories(dir);

  SessionSpec spec = stress_spec(4242);
  spec.learner.n_init = 8;
  spec.learner.n_batch = 6;
  spec.learner.n_max = 32;

  SessionManager manager;
  manager.enable_auto_checkpoint(dir.string(), 1);
  const SessionStatus created = manager.create("s", spec);
  const auto workload = workloads::make_workload(created.workload);
  util::Rng measure_rng(created.measure_seed);

  // Measure each batch serially (the measure stream is ordered), then fan
  // the tells across threads so the deferred checkpoint commits — which
  // run after the session mutex is released — race on the write mutex.
  constexpr std::size_t kTellers = 4;
  for (;;) {
    const auto batch = manager.ask("s");
    if (batch.empty()) break;
    std::vector<double> measured(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      measured[i] = workload->measure(batch[i].config, measure_rng, 1);
    }
    std::vector<std::thread> tellers;
    tellers.reserve(kTellers);
    for (std::size_t t = 0; t < kTellers; ++t) {
      tellers.emplace_back([&, t] {
        for (std::size_t i = t; i < batch.size(); i += kTellers) {
          manager.tell("s", batch[i].config, measured[i]);
        }
      });
    }
    for (auto& th : tellers) th.join();
  }
  const SessionStatus final_status = manager.status("s");
  EXPECT_EQ(final_status.labeled, final_status.n_max);

  // Whatever commit won last must be the newest image: the file parses
  // (no torn tmp collision) and carries the final state, not a stale one
  // that overwrote a newer commit.
  SessionManager restarted;
  const ResumeOutcome recovered =
      restarted.resume_from_file("s", (dir / "s.ckpt").string());
  EXPECT_FALSE(recovered.used_fallback);
  EXPECT_EQ(recovered.status.labeled, final_status.labeled);
  EXPECT_EQ(recovered.status.best_observed, final_status.best_observed);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace pwu::service

namespace pwu::rf {
namespace {

TEST(RaceStress, FlatForestSharedParallelEval) {
  // One compiled forest + one feature matrix, shared (read-only) across
  // reader threads that each fan their evaluation out over one shared
  // worker pool. Every thread must see bit-identical results.
  const auto workload = workloads::make_workload("gesummv");
  const auto& space = workload->space();
  util::Rng rng(0xACE5);

  Dataset train(space.num_params(), space.categorical_mask(),
                space.cardinalities());
  for (std::size_t i = 0; i < 90; ++i) {
    const auto config = space.random_config(rng);
    train.add(space.features(config), workload->measure(config, rng, 1));
  }

  ForestConfig cfg;
  cfg.num_trees = 12;
  util::Rng fit_rng(31);
  RandomForest forest;
  forest.fit(train, cfg, fit_rng);

  FeatureMatrix probes = FeatureMatrix::with_capacity(space.num_params(), 200);
  for (std::size_t i = 0; i < 200; ++i) {
    space.write_features(space.random_config(rng), probes.append_row());
  }
  const std::vector<PredictionStats> reference =
      forest.predict_stats_batch(probes);

  constexpr std::size_t kReaders = 4;
  constexpr int kRounds = 8;
  util::ThreadPool pool(4);
  std::vector<std::vector<PredictionStats>> results(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      for (int round = 0; round < kRounds; ++round) {
        results[r] = forest.predict_stats_batch(probes, &pool);
      }
    });
  }
  for (auto& t : readers) t.join();

  for (std::size_t r = 0; r < kReaders; ++r) {
    ASSERT_EQ(results[r].size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(results[r][i].mean, reference[i].mean);
      EXPECT_EQ(results[r][i].variance, reference[i].variance);
    }
  }
}

}  // namespace
}  // namespace pwu::rf
