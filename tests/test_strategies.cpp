// Sampling-strategy semantics, including the paper's limit claims for PWU
// (Section II-C): alpha -> 1 reduces to MaxU, alpha -> 0 to the coefficient
// of variation.

#include "core/sampling_strategy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <set>

namespace pwu::core {
namespace {

PoolPrediction fixture_prediction() {
  // Six candidates spanning the (mu, sigma) plane:
  //   idx  mu     sigma
  //   0    0.10   0.01   fast, certain
  //   1    0.10   0.20   fast, uncertain        <- PWU favourite
  //   2    1.00   0.25   slow, most uncertain   <- MaxU favourite
  //   3    1.00   0.01   slow, certain
  //   4    0.05   0.02   fastest, fairly certain <- BestPerf favourite
  //   5    0.50   0.10   middling
  PoolPrediction p;
  p.mean = {0.10, 0.10, 1.00, 1.00, 0.05, 0.50};
  p.stddev = {0.01, 0.20, 0.25, 0.01, 0.02, 0.10};
  return p;
}

TEST(PwuScores, MatchesEquationOne) {
  const PoolPrediction p = fixture_prediction();
  const double alpha = 0.05;
  const auto scores = pwu_scores(p, alpha);
  ASSERT_EQ(scores.size(), p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(scores[i], p.stddev[i] / std::pow(p.mean[i], 1.0 - alpha),
                1e-12);
  }
}

TEST(PwuScores, AlphaOneIsPureUncertainty) {
  const PoolPrediction p = fixture_prediction();
  const auto scores = pwu_scores(p, 1.0);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(scores[i], p.stddev[i], 1e-12);
  }
}

TEST(PwuScores, AlphaZeroIsCoefficientOfVariation) {
  const PoolPrediction p = fixture_prediction();
  const auto scores = pwu_scores(p, 0.0);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(scores[i], p.stddev[i] / p.mean[i], 1e-12);
  }
}

TEST(PwuScores, RejectsAlphaOutsideUnitInterval) {
  const PoolPrediction p = fixture_prediction();
  EXPECT_THROW(pwu_scores(p, -0.1), std::invalid_argument);
  EXPECT_THROW(pwu_scores(p, 1.1), std::invalid_argument);
}

TEST(PwuStrategy, PrefersHighPerformanceAmongEqualUncertainty) {
  // Equal sigma, different mu: the faster candidate must win.
  PoolPrediction p;
  p.mean = {1.0, 0.1};
  p.stddev = {0.1, 0.1};
  util::Rng rng(1);
  const auto pick = make_pwu(0.05)->select(p, 1, rng);
  ASSERT_EQ(pick.size(), 1u);
  EXPECT_EQ(pick[0], 1u);
}

TEST(PwuStrategy, PrefersUncertaintyAmongEqualPerformance) {
  PoolPrediction p;
  p.mean = {0.1, 0.1};
  p.stddev = {0.01, 0.2};
  util::Rng rng(2);
  EXPECT_EQ(make_pwu(0.05)->select(p, 1, rng)[0], 1u);
}

TEST(PwuStrategy, SelectsFastUncertainOverSlowUncertain) {
  const PoolPrediction p = fixture_prediction();
  util::Rng rng(3);
  // Candidate 1 (fast, uncertain) must beat candidate 2 (slow, slightly
  // more uncertain) at small alpha.
  EXPECT_EQ(make_pwu(0.05)->select(p, 1, rng)[0], 1u);
}

TEST(PwuStrategy, AlphaOneMatchesMaxUSelection) {
  const PoolPrediction p = fixture_prediction();
  util::Rng rng_a(4), rng_b(4);
  const auto pwu_pick = make_pwu(1.0)->select(p, 3, rng_a);
  const auto maxu_pick = make_max_uncertainty()->select(p, 3, rng_b);
  EXPECT_EQ(pwu_pick, maxu_pick);
}

TEST(MaxUStrategy, PicksHighestSigma) {
  const PoolPrediction p = fixture_prediction();
  util::Rng rng(5);
  const auto picks = make_max_uncertainty()->select(p, 2, rng);
  ASSERT_EQ(picks.size(), 2u);
  EXPECT_EQ(picks[0], 2u);  // sigma 0.25
  EXPECT_EQ(picks[1], 1u);  // sigma 0.20
}

TEST(BestPerfStrategy, PicksLowestMean) {
  const PoolPrediction p = fixture_prediction();
  util::Rng rng(6);
  const auto picks = make_best_performance()->select(p, 2, rng);
  EXPECT_EQ(picks[0], 4u);  // mu 0.05
  // mu 0.10 tie between 0 and 1: lowest index wins.
  EXPECT_EQ(picks[1], 0u);
}

TEST(PbusStrategy, MostUncertainInsideBiasSet) {
  const PoolPrediction p = fixture_prediction();
  util::Rng rng(7);
  // Bias fraction 0.5 of 6 candidates -> bias set {4, 0, 1} (fastest 3);
  // the most uncertain there is candidate 1 — NOT the global-max 2.
  const auto pick = make_pbus(0.5)->select(p, 1, rng);
  ASSERT_EQ(pick.size(), 1u);
  EXPECT_EQ(pick[0], 1u);
}

TEST(PbusStrategy, NeverLeavesTheBiasSet) {
  const PoolPrediction p = fixture_prediction();
  util::Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    const auto picks = make_pbus(0.34)->select(p, 2, rng);
    for (std::size_t idx : picks) {
      // Bias set of ceil(0.34*6)=3 fastest: {4, 0, 1}.
      EXPECT_TRUE(idx == 4 || idx == 0 || idx == 1) << idx;
    }
  }
}

TEST(PbusStrategy, BiasSetExpandsToBatch) {
  PoolPrediction p;
  p.mean = {3.0, 2.0, 1.0};
  p.stddev = {0.3, 0.2, 0.1};
  util::Rng rng(9);
  // q tiny but batch = 2: bias set must hold at least the batch.
  const auto picks = make_pbus(0.01)->select(p, 2, rng);
  std::set<std::size_t> set(picks.begin(), picks.end());
  EXPECT_EQ(set.size(), 2u);
}

TEST(PbusStrategy, RejectsBadBiasFraction) {
  EXPECT_THROW(make_pbus(0.0), std::invalid_argument);
  EXPECT_THROW(make_pbus(1.5), std::invalid_argument);
}

TEST(BrsStrategy, StaysInsidePredictedTopFraction) {
  const PoolPrediction p = fixture_prediction();
  util::Rng rng(10);
  for (int trial = 0; trial < 50; ++trial) {
    const auto picks = make_biased_random(0.5)->select(p, 2, rng);
    for (std::size_t idx : picks) {
      EXPECT_TRUE(idx == 4 || idx == 0 || idx == 1) << idx;
    }
  }
}

TEST(BrsStrategy, RandomizesWithinTopSet) {
  const PoolPrediction p = fixture_prediction();
  util::Rng rng(11);
  std::set<std::size_t> seen;
  for (int trial = 0; trial < 100; ++trial) {
    for (std::size_t idx : make_biased_random(0.5)->select(p, 1, rng)) {
      seen.insert(idx);
    }
  }
  EXPECT_GT(seen.size(), 1u);  // not stuck on one candidate
}

TEST(UniformRandomStrategy, CoversThePool) {
  const PoolPrediction p = fixture_prediction();
  util::Rng rng(12);
  std::set<std::size_t> seen;
  for (int trial = 0; trial < 200; ++trial) {
    for (std::size_t idx : make_uniform_random()->select(p, 1, rng)) {
      ASSERT_LT(idx, p.size());
      seen.insert(idx);
    }
  }
  EXPECT_EQ(seen.size(), p.size());
}

TEST(EpsilonGreedy, ZeroEpsilonMatchesPwu) {
  const PoolPrediction p = fixture_prediction();
  util::Rng rng_a(13), rng_b(13);
  EXPECT_EQ(make_epsilon_greedy_pwu(0.05, 0.0)->select(p, 2, rng_a),
            make_pwu(0.05)->select(p, 2, rng_b));
}

TEST(EpsilonGreedy, SelectionsAreDistinct) {
  const PoolPrediction p = fixture_prediction();
  util::Rng rng(14);
  for (int trial = 0; trial < 50; ++trial) {
    const auto picks = make_epsilon_greedy_pwu(0.05, 0.5)->select(p, 3, rng);
    std::set<std::size_t> set(picks.begin(), picks.end());
    EXPECT_EQ(set.size(), 3u);
  }
}

TEST(ExpectedImprovement, ScoresMatchClosedForm) {
  PoolPrediction p;
  p.mean = {1.0};
  p.stddev = {0.5};
  const double incumbent = 1.2;
  const auto scores = ei_scores(p, incumbent);
  const double z = (incumbent - 1.0) / 0.5;
  const double pdf = std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
  EXPECT_NEAR(scores[0], 0.5 * (z * normal_cdf(z) + pdf), 1e-12);
}

TEST(ExpectedImprovement, ZeroSigmaFallsBackToPlainImprovement) {
  PoolPrediction p;
  p.mean = {0.5, 2.0};
  p.stddev = {0.0, 0.0};
  const auto scores = ei_scores(p, 1.0);
  EXPECT_DOUBLE_EQ(scores[0], 0.5);  // improves by 0.5
  EXPECT_DOUBLE_EQ(scores[1], 0.0);  // no improvement
}

TEST(ExpectedImprovement, EiIsPositiveAndMonotoneInSigma) {
  PoolPrediction p;
  p.mean = {2.0, 2.0, 2.0};          // all worse than the incumbent...
  p.stddev = {0.1, 0.5, 2.0};        // ...but increasingly uncertain
  const auto scores = ei_scores(p, 1.0);
  EXPECT_GT(scores[0], 0.0);
  EXPECT_LT(scores[0], scores[1]);
  EXPECT_LT(scores[1], scores[2]);
}

TEST(ExpectedImprovement, SelectsBestExpectedImprover) {
  PoolPrediction p;
  p.mean = {0.10, 0.10, 1.00};
  p.stddev = {0.001, 0.20, 0.20};
  p.best_observed = 0.11;
  util::Rng rng(20);
  // Candidate 1: predicted at the incumbent but very uncertain -> largest
  // expected improvement. Candidate 0 is certain (no upside), candidate 2
  // far worse.
  EXPECT_EQ(make_expected_improvement()->select(p, 1, rng)[0], 1u);
}

TEST(ExpectedImprovement, FallsBackWithoutIncumbent) {
  PoolPrediction p;
  p.mean = {0.5, 0.4};
  p.stddev = {0.1, 0.1};
  // best_observed defaults to NaN -> incumbent = min mean.
  util::Rng rng(21);
  const auto picks = make_expected_improvement()->select(p, 1, rng);
  ASSERT_EQ(picks.size(), 1u);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
}

class BatchContract
    : public ::testing::TestWithParam<std::string> {};

// Every strategy must return exactly `batch` distinct in-range indices.
TEST_P(BatchContract, ReturnsDistinctInRangeBatch) {
  const PoolPrediction p = fixture_prediction();
  StrategyPtr strategy = make_strategy(GetParam(), 0.05);
  util::Rng rng(15);
  for (std::size_t batch : {1u, 2u, 4u, 6u}) {
    const auto picks = strategy->select(p, batch, rng);
    EXPECT_EQ(picks.size(), batch) << strategy->name();
    std::set<std::size_t> set(picks.begin(), picks.end());
    EXPECT_EQ(set.size(), batch) << strategy->name();
    for (std::size_t idx : picks) EXPECT_LT(idx, p.size());
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, BatchContract,
                         ::testing::Values("pwu", "pbus", "maxu", "bestperf",
                                           "brs", "random", "cv", "egreedy",
                                           "ei"),
                         [](const auto& info) { return info.param; });

TEST(StrategyFactory, KnownNamesAndAlphaPlumbing) {
  EXPECT_NE(make_strategy("pwu", 0.1), nullptr);
  EXPECT_THROW(make_strategy("nope"), std::invalid_argument);
  // "cv" is PWU at alpha 0.
  const PoolPrediction p = fixture_prediction();
  util::Rng rng_a(16), rng_b(16);
  EXPECT_EQ(make_strategy("cv")->select(p, 2, rng_a),
            make_pwu(0.0)->select(p, 2, rng_b));
}

TEST(StrategyFactory, StandardNamesMatchThePaper) {
  const auto names = standard_strategy_names();
  EXPECT_EQ(names.size(), 6u);
  EXPECT_EQ(names[0], "pwu");
  EXPECT_EQ(names[1], "pbus");
}

TEST(TopKHelpers, OrderAndClamp) {
  const std::vector<double> scores = {1.0, 5.0, 3.0};
  EXPECT_EQ(top_k_indices(scores, 2),
            (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(bottom_k_indices(scores, 2),
            (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(top_k_indices(scores, 10).size(), 3u);  // clamped
}

}  // namespace
}  // namespace pwu::core
