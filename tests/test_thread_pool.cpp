#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace pwu::util {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int {
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPartialRange) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  pool.parallel_for(10, 20, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 145);  // 10 + 11 + ... + 19
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ParallelForRethrowsBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 10,
                                 [](std::size_t i) {
                                   if (i == 7) throw std::logic_error("bad");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> order;
  pool.parallel_for(0, 5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ManyTasksComplete) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  futures.reserve(200);
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([i] { return i; }));
  }
  long sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(sum, 199 * 200 / 2);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] { return 1; }), std::runtime_error);
}

TEST(ThreadPool, ParallelForAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW(pool.parallel_for(0, 4, [](std::size_t) {}),
               std::runtime_error);
}

TEST(ThreadPool, ShutdownIsIdempotentAndDrainsQueuedWork) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([&done] { done.fetch_add(1); }));
  }
  pool.shutdown();
  pool.shutdown();  // second call is a no-op
  for (auto& f : futures) f.get();
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, SingleThreadSubmitAndExceptionPaths) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
  // Inline parallel_for still rethrows body exceptions.
  EXPECT_THROW(pool.parallel_for(0, 3,
                                 [](std::size_t i) {
                                   if (i == 1) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().num_threads(), 1u);
}

}  // namespace
}  // namespace pwu::util
