#include "sim/executor.hpp"
#include "sim/noise.hpp"

#include <gtest/gtest.h>

#include "workloads/synthetic.hpp"

namespace pwu::sim {
namespace {

TEST(NoiseModel, NoneIsIdentity) {
  const NoiseModel none = NoiseModel::none();
  util::Rng rng(1);
  for (double t : {0.001, 1.0, 100.0}) {
    EXPECT_DOUBLE_EQ(none.apply(t, rng), t);
  }
}

TEST(NoiseModel, JitterIsMeanPreserving) {
  NoiseModel noise;
  noise.lognormal_sigma = 0.1;
  noise.spike_probability = 0.0;
  util::Rng rng(2);
  double sum = 0.0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) sum += noise.apply(1.0, rng);
  EXPECT_NEAR(sum / draws, 1.0, 0.01);
}

TEST(NoiseModel, SpikesOnlyIncrease) {
  NoiseModel noise;
  noise.lognormal_sigma = 0.0;
  noise.spike_probability = 1.0;  // always spike
  noise.spike_scale = 2.0;
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const double v = noise.apply(1.0, rng);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 2.0);
  }
}

TEST(NoiseModel, SpikeFrequencyMatchesProbability) {
  NoiseModel noise;
  noise.lognormal_sigma = 0.0;
  noise.spike_probability = 0.2;
  noise.spike_scale = 3.0;
  util::Rng rng(4);
  int spikes = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    if (noise.apply(1.0, rng) > 1.0) ++spikes;
  }
  EXPECT_NEAR(static_cast<double>(spikes) / draws, 0.2, 0.02);
}

TEST(NoiseModel, OutputAlwaysPositive) {
  NoiseModel noise;
  noise.lognormal_sigma = 0.5;
  noise.spike_probability = 0.5;
  util::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(noise.apply(1e-6, rng), 0.0);
  }
}

TEST(Executor, AveragesRepetitionsAndAccountsCost) {
  // Noiseless workload: the measurement equals base time exactly and the
  // accounted cost is repetitions x base time.
  auto workload = workloads::make_quadratic_bowl(2, 5, 0.1, /*noisy=*/false);
  util::Rng rng(6);
  const space::Configuration config = workload->space().random_config(rng);
  const double base = workload->base_time(config);

  Executor executor(35);
  const MeasurementResult measured = executor.measure(*workload, config, rng);
  ASSERT_TRUE(measured.ok());
  EXPECT_NEAR(measured.time, base, 1e-12);
  EXPECT_NEAR(measured.cost, 35.0 * base, 1e-9);
  EXPECT_NEAR(executor.total_cost_seconds(), 35.0 * base, 1e-9);
  EXPECT_EQ(executor.total_runs(), 35u);
  EXPECT_EQ(executor.total_measurements(), 1u);
}

TEST(Executor, RepetitionAveragingSuppressesNoise) {
  auto workload = workloads::make_quadratic_bowl(2, 5, 0.1, /*noisy=*/true);
  util::Rng rng(7);
  const space::Configuration config = workload->space().random_config(rng);
  const double base = workload->base_time(config);

  // Single-run spread vs 35-run-averaged spread around the true value.
  Executor one(1), many(35);
  double err_one = 0.0, err_many = 0.0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    err_one += std::abs(one.measure(*workload, config, rng).time - base);
    err_many += std::abs(many.measure(*workload, config, rng).time - base);
  }
  EXPECT_LT(err_many, err_one * 0.5);
}

TEST(Executor, ResetClearsAccounting) {
  auto workload = workloads::make_quadratic_bowl(1, 3);
  util::Rng rng(8);
  Executor executor(2);
  executor.measure(*workload, workload->space().random_config(rng), rng);
  executor.reset();
  EXPECT_DOUBLE_EQ(executor.total_cost_seconds(), 0.0);
  EXPECT_EQ(executor.total_runs(), 0u);
}

TEST(Executor, RejectsNonPositiveRepetitions) {
  EXPECT_THROW(Executor(0), std::invalid_argument);
  EXPECT_THROW(Executor(-1), std::invalid_argument);
}

}  // namespace
}  // namespace pwu::sim
