// End-to-end behaviour: the full Algorithm-1 pipeline on synthetic and
// paper workloads, including the headline qualitative claim — PWU reaches
// lower top-alpha error than passive sampling at the same budget, and PBUS's
// redundancy signature (Fig. 9) is visible in the selection records.

#include <gtest/gtest.h>

#include <cmath>

#include "core/active_learner.hpp"
#include "core/experiment.hpp"
#include "util/statistics.hpp"
#include "workloads/registry.hpp"
#include "workloads/synthetic.hpp"

namespace pwu::core {
namespace {

TEST(Integration, FullPipelineOnAtaxKernel) {
  auto atax = workloads::make_workload("atax");
  util::Rng rng(1);
  const auto split = space::make_pool_split(atax->space(), 400, 200, rng);
  const TestSet test = build_test_set(*atax, split.test, rng);

  LearnerConfig cfg;
  cfg.n_init = 10;
  cfg.n_max = 60;
  cfg.forest.num_trees = 20;
  cfg.eval_every = 10;
  cfg.eval_alphas = {0.05};
  ActiveLearner learner(*atax, cfg);

  const auto result = learner.run(*make_pwu(0.05), split.pool, test, rng);
  EXPECT_EQ(result.train_configs.size(), 60u);
  // Error at the end must improve on the cold-start error.
  EXPECT_LT(result.trace.back().top_alpha_rmse[0],
            result.trace.front().top_alpha_rmse[0]);
}

TEST(Integration, FullPipelineOnEnumerableApplicationSpace) {
  // kripke: the pool split enumerates the whole space.
  auto kripke = workloads::make_workload("kripke");
  util::Rng rng(2);
  const auto split =
      space::make_pool_split(kripke->space(), 7000, 3000, rng);
  const TestSet test = build_test_set(*kripke, split.test, rng);

  LearnerConfig cfg;
  cfg.n_init = 10;
  cfg.n_max = 50;
  cfg.forest.num_trees = 20;
  cfg.eval_every = 20;
  ActiveLearner learner(*kripke, cfg);
  const auto result = learner.run(*make_pwu(0.05), split.pool, test, rng);
  EXPECT_EQ(result.train_configs.size(), 50u);
  EXPECT_TRUE(std::isfinite(result.trace.back().top_alpha_rmse[0]));
}

TEST(Integration, PwuBeatsPassiveSamplingOnTopAlphaError) {
  // The paper's core claim, on a controlled synthetic workload where the
  // high-performance region is a small pocket. Averaged over repeats to be
  // robust; generous margin (>= means "not worse").
  auto workload = workloads::make_mixed_modes(4, 3, 12, 0.1);
  ExperimentSpec spec;
  spec.strategies = {"pwu", "random"};
  spec.alpha = 0.05;
  spec.repeats = 3;
  spec.pool_size = 400;
  spec.test_size = 200;
  spec.learner.n_init = 10;
  spec.learner.n_max = 80;
  spec.learner.forest.num_trees = 20;
  spec.learner.eval_every = 10;
  spec.seed = 11;

  const ExperimentResult result = run_experiment(*workload, spec);
  const double pwu_final = result.find("pwu").final_rmse();
  const double random_final = result.find("random").final_rmse();
  EXPECT_LE(pwu_final, random_final * 1.05);
}

TEST(Integration, PwuSelectionsConcentrateOnFastPredictions) {
  // PWU's picks should sit at lower predicted time than MaxU's (it weights
  // performance), while still carrying real uncertainty.
  auto atax = workloads::make_workload("atax");
  util::Rng rng(3);
  const auto split = space::make_pool_split(atax->space(), 400, 150, rng);
  const TestSet test = build_test_set(*atax, split.test, rng);
  LearnerConfig cfg;
  cfg.n_init = 10;
  cfg.n_max = 50;
  cfg.forest.num_trees = 20;
  cfg.eval_every = 50;
  ActiveLearner learner(*atax, cfg);

  util::Rng rng_a(4), rng_b(4);
  const auto pwu = learner.run(*make_pwu(0.05), split.pool, test, rng_a);
  const auto maxu =
      learner.run(*make_max_uncertainty(), split.pool, test, rng_b);

  auto mean_predicted = [](const LearnerResult& r) {
    std::vector<double> mu;
    for (const auto& sel : r.selections) mu.push_back(sel.predicted_mean);
    return util::mean(mu);
  };
  EXPECT_LT(mean_predicted(pwu), mean_predicted(maxu));
}

TEST(Integration, Fig9SignaturePbusPicksLowerUncertaintyThanPwu) {
  // Section IV-C / Fig. 9: PBUS over-samples the low-uncertainty
  // high-performance corner; PWU's selections carry more uncertainty.
  auto atax = workloads::make_workload("atax");
  util::Rng rng(5);
  const auto split = space::make_pool_split(atax->space(), 400, 150, rng);
  const TestSet test = build_test_set(*atax, split.test, rng);
  LearnerConfig cfg;
  cfg.n_init = 10;
  cfg.n_max = 70;
  cfg.forest.num_trees = 20;
  cfg.eval_every = 70;
  ActiveLearner learner(*atax, cfg);

  util::Rng rng_a(6), rng_b(6);
  const auto pwu = learner.run(*make_pwu(0.01), split.pool, test, rng_a);
  const auto pbus = learner.run(*make_pbus(0.10), split.pool, test, rng_b);

  auto mean_sigma = [](const LearnerResult& r) {
    std::vector<double> sigma;
    for (const auto& sel : r.selections) sigma.push_back(sel.predicted_stddev);
    return util::mean(sigma);
  };
  EXPECT_GT(mean_sigma(pwu), mean_sigma(pbus));
}

TEST(Integration, AllStandardStrategiesCompleteOnAKernel) {
  auto gesummv = workloads::make_workload("gesummv");
  util::Rng rng(7);
  const auto split = space::make_pool_split(gesummv->space(), 200, 100, rng);
  const TestSet test = build_test_set(*gesummv, split.test, rng);
  LearnerConfig cfg;
  cfg.n_init = 10;
  cfg.n_max = 30;
  cfg.forest.num_trees = 10;
  cfg.eval_every = 10;
  ActiveLearner learner(*gesummv, cfg);
  for (const auto& name : standard_strategy_names()) {
    util::Rng run_rng(8);
    StrategyPtr strategy = make_strategy(name, 0.05);
    const auto result = learner.run(*strategy, split.pool, test, run_rng);
    EXPECT_EQ(result.train_configs.size(), 30u) << name;
    EXPECT_TRUE(std::isfinite(result.trace.back().top_alpha_rmse[0]))
        << name;
  }
}

TEST(Integration, ConstantLabelWorkloadDoesNotBreakTheLoop) {
  // Failure injection: a degenerate black box with identical times — the
  // forest collapses to one leaf and uncertainty is zero everywhere, but
  // Algorithm 1 must still terminate cleanly.
  space::ParameterSpace s;
  s.add(space::Parameter::int_range("x", 0, 31));
  s.add(space::Parameter::int_range("y", 0, 31));
  auto constant = workloads::make_custom(
      "constant", std::move(s),
      [](const space::Configuration&) { return 0.5; });
  util::Rng rng(9);
  const auto split = space::make_pool_split(constant->space(), 100, 50, rng);
  const TestSet test = build_test_set(*constant, split.test, rng);
  LearnerConfig cfg;
  cfg.n_init = 5;
  cfg.n_max = 20;
  cfg.forest.num_trees = 5;
  ActiveLearner learner(*constant, cfg);
  const auto result = learner.run(*make_pwu(0.05), split.pool, test, rng);
  EXPECT_EQ(result.train_configs.size(), 20u);
  EXPECT_NEAR(result.trace.back().top_alpha_rmse[0], 0.0, 1e-9);
}

}  // namespace
}  // namespace pwu::core
