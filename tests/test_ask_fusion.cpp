// Cross-session ask fusion (SessionManager::ask_fused) is a scheduling
// optimization and nothing more: fused sessions must hand out the exact
// candidate sequences their individual ask() calls would have, config for
// config and prediction bit for bit, because every session still consumes
// its own rng stream. These tests drive fused and unfused manager fleets
// through whole sessions and require identity, plus pin the per-request
// error isolation and the fusion counters.

#include "service/session_manager.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workloads/registry.hpp"

namespace pwu::service {
namespace {

SessionSpec fleet_spec(std::uint64_t seed) {
  SessionSpec spec;
  spec.workload = "gesummv";
  spec.learner.n_init = 5;
  spec.learner.n_batch = 2;
  spec.learner.n_max = 15;
  spec.learner.forest.num_trees = 8;
  spec.pool_size = 140;
  spec.test_size = 40;
  spec.seed = seed;
  return spec;
}

std::vector<std::string> fleet_names(std::size_t n) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < n; ++i) {
    names.push_back("s" + std::to_string(i));
  }
  return names;
}

void expect_same_candidates(const std::vector<Candidate>& fused,
                            const std::vector<Candidate>& plain,
                            const std::string& context) {
  ASSERT_EQ(fused.size(), plain.size()) << context;
  for (std::size_t i = 0; i < fused.size(); ++i) {
    SCOPED_TRACE(context + " candidate " + std::to_string(i));
    EXPECT_EQ(fused[i].config, plain[i].config);
    EXPECT_EQ(fused[i].has_prediction, plain[i].has_prediction);
    // Bit-identity, not tolerance: the fused scoring pass runs the same
    // flat-forest blocks the unfused ask would.
    EXPECT_EQ(fused[i].predicted_mean, plain[i].predicted_mean);
    EXPECT_EQ(fused[i].predicted_stddev, plain[i].predicted_stddev);
    EXPECT_EQ(fused[i].iteration, plain[i].iteration);
  }
}

TEST(AskFusion, FusedSessionsMatchUnfusedBitForBit) {
  // Two identical fleets, one driven through ask_fused, one through plain
  // ask(); same measurement streams. Every ask window and every label must
  // coincide exactly — the protocol cannot tell the paths apart.
  constexpr std::size_t kSessions = 4;
  util::ThreadPool workers(3);
  SessionManager fused_mgr(&workers);
  SessionManager plain_mgr(&workers);
  const auto names = fleet_names(kSessions);
  std::vector<util::Rng> measure(kSessions, util::Rng(0));
  const auto workload = workloads::make_workload("gesummv");
  for (std::size_t i = 0; i < kSessions; ++i) {
    const SessionSpec spec = fleet_spec(100 + i);
    fused_mgr.create(names[i], spec);
    const SessionStatus st = plain_mgr.create(names[i], spec);
    measure[i] = util::Rng(st.measure_seed);
  }

  bool any_open = true;
  std::size_t windows = 0;
  while (any_open) {
    any_open = false;
    ++windows;
    std::vector<FusedAskRequest> requests;
    for (const auto& name : names) requests.push_back({name, 0});
    const std::vector<FusedAskResult> fused =
        fused_mgr.ask_fused(requests, -1);
    ASSERT_EQ(fused.size(), kSessions);
    for (std::size_t i = 0; i < kSessions; ++i) {
      ASSERT_TRUE(fused[i].error.empty()) << fused[i].error;
      EXPECT_EQ(fused[i].session, names[i]);
      const std::vector<Candidate> plain = plain_mgr.ask(names[i]);
      expect_same_candidates(fused[i].outcome.candidates, plain,
                             names[i] + " window " +
                                 std::to_string(windows));
      if (plain.empty()) continue;
      any_open = true;
      // One measurement stream per session feeds both fleets: fork it per
      // candidate so both tells see identical labels.
      for (const Candidate& c : plain) {
        const double label = workload->measure(c.config, measure[i], 1);
        fused_mgr.tell(names[i], c.config, label);
        plain_mgr.tell(names[i], c.config, label);
      }
    }
    ASSERT_LT(windows, 50u) << "fleet failed to converge";
  }
  // Whole-session identity: final state agrees too.
  for (const auto& name : names) {
    const SessionStatus f = fused_mgr.status(name);
    const SessionStatus p = plain_mgr.status(name);
    EXPECT_TRUE(f.done);
    EXPECT_EQ(f.labeled, p.labeled);
    EXPECT_EQ(f.iteration, p.iteration);
    EXPECT_EQ(f.best_observed, p.best_observed);
    EXPECT_EQ(f.cumulative_cost, p.cumulative_cost);
  }
  // The model-phase windows actually fused: one scoring group per window
  // once every session left cold start.
  const HealthReport health = fused_mgr.health();
  EXPECT_GT(health.fused_groups, 0u);
  EXPECT_GE(health.fused_scored_asks, health.fused_groups);
}

TEST(AskFusion, SerialManagerFusesIdentically) {
  // No worker pool at all: the fused scoring pass runs serially and must
  // still match plain asks (the parallel region is an implementation
  // detail, not part of the contract).
  SessionManager fused_mgr;
  SessionManager plain_mgr;
  const SessionSpec spec = fleet_spec(7);
  fused_mgr.create("a", spec);
  fused_mgr.create("b", fleet_spec(8));
  plain_mgr.create("a", spec);
  plain_mgr.create("b", fleet_spec(8));
  const auto workload = workloads::make_workload("gesummv");
  util::Rng measure_a(fused_mgr.status("a").measure_seed);
  util::Rng measure_b(fused_mgr.status("b").measure_seed);

  for (int window = 0; window < 4; ++window) {
    const auto fused = fused_mgr.ask_fused({{"a", 0}, {"b", 0}}, -1);
    ASSERT_TRUE(fused[0].error.empty());
    ASSERT_TRUE(fused[1].error.empty());
    expect_same_candidates(fused[0].outcome.candidates,
                           plain_mgr.ask("a"), "a");
    expect_same_candidates(fused[1].outcome.candidates,
                           plain_mgr.ask("b"), "b");
    for (const Candidate& c : fused[0].outcome.candidates) {
      const double label = workload->measure(c.config, measure_a, 1);
      fused_mgr.tell("a", c.config, label);
      plain_mgr.tell("a", c.config, label);
    }
    for (const Candidate& c : fused[1].outcome.candidates) {
      const double label = workload->measure(c.config, measure_b, 1);
      fused_mgr.tell("b", c.config, label);
      plain_mgr.tell("b", c.config, label);
    }
  }
}

TEST(AskFusion, PerRequestErrorsAreIsolated) {
  SessionManager manager;
  manager.create("alive", fleet_spec(3));
  const auto results = manager.ask_fused(
      {{"missing", 0}, {"alive", 0}, {"alive", 0}}, -1);
  ASSERT_EQ(results.size(), 3u);
  // Unknown session: its slot errors, nobody else is disturbed.
  EXPECT_FALSE(results[0].error.empty());
  EXPECT_FALSE(results[0].overloaded);
  // The live session answers its cold start.
  EXPECT_TRUE(results[1].error.empty()) << results[1].error;
  EXPECT_EQ(results[1].outcome.candidates.size(), 5u);
  // A duplicate name is rejected (one outstanding batch per session).
  EXPECT_FALSE(results[2].error.empty());
}

TEST(AskFusion, MixedWorkloadsGroupSeparatelyAndStillMatch) {
  // Different fingerprints (different workloads) score in separate groups
  // but one ask_fused call still serves both correctly.
  util::ThreadPool workers(2);
  SessionManager fused_mgr(&workers);
  SessionManager plain_mgr(&workers);
  SessionSpec gesummv = fleet_spec(11);
  SessionSpec atax = fleet_spec(12);
  atax.workload = "atax";
  fused_mgr.create("g", gesummv);
  fused_mgr.create("a", atax);
  plain_mgr.create("g", gesummv);
  plain_mgr.create("a", atax);
  const auto wl_g = workloads::make_workload("gesummv");
  const auto wl_a = workloads::make_workload("atax");
  util::Rng measure_g(fused_mgr.status("g").measure_seed);
  util::Rng measure_a(fused_mgr.status("a").measure_seed);

  for (int window = 0; window < 3; ++window) {
    const auto fused = fused_mgr.ask_fused({{"g", 0}, {"a", 0}}, -1);
    ASSERT_TRUE(fused[0].error.empty());
    ASSERT_TRUE(fused[1].error.empty());
    expect_same_candidates(fused[0].outcome.candidates,
                           plain_mgr.ask("g"), "g");
    expect_same_candidates(fused[1].outcome.candidates,
                           plain_mgr.ask("a"), "a");
    for (const Candidate& c : fused[0].outcome.candidates) {
      const double label = wl_g->measure(c.config, measure_g, 1);
      fused_mgr.tell("g", c.config, label);
      plain_mgr.tell("g", c.config, label);
    }
    for (const Candidate& c : fused[1].outcome.candidates) {
      const double label = wl_a->measure(c.config, measure_a, 1);
      fused_mgr.tell("a", c.config, label);
      plain_mgr.tell("a", c.config, label);
    }
  }
}

TEST(AskFusion, EmptyRequestListIsANoOp) {
  SessionManager manager;
  EXPECT_TRUE(manager.ask_fused({}, -1).empty());
}

}  // namespace
}  // namespace pwu::service
