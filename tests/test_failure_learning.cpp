// Failure-aware active learning: the FailurePolicy backoff schedule, the
// session's tell_failure state machine (retry/drop/censor), and the
// acceptance property — a full learning run under an injected FaultModel on
// real SPAPT workloads completes with failed configurations never
// re-proposed, retries within budget, timeout cost charged to CC, and no
// censored label in the RF training set.

#include "core/active_learner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/sampling_strategy.hpp"
#include "service/ask_tell_session.hpp"
#include "sim/executor.hpp"
#include "sim/fault_model.hpp"
#include "space/pool.hpp"
#include "util/rng.hpp"
#include "workloads/registry.hpp"
#include "workloads/synthetic.hpp"

namespace pwu::core {
namespace {

using service::AskTellSession;
using service::Candidate;
using service::FailureAction;
using service::StrategySpec;

TEST(FailurePolicy, BackoffDoublesFromBaseAndCaps) {
  FailurePolicy policy;
  policy.backoff_base_seconds = 0.5;
  policy.backoff_cap_seconds = 8.0;
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(1), 0.5);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(2), 1.0);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(3), 2.0);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(4), 4.0);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(5), 8.0);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(6), 8.0);  // capped
}

class TellFailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload_ = workloads::make_quadratic_bowl(4, 8, 0.1, /*noisy=*/true);
    util::Rng rng(11);
    pool_ = space::make_pool_split(workload_->space(), 300, 0, rng).pool;
  }

  LearnerConfig small_config() {
    LearnerConfig cfg;
    cfg.n_init = 8;
    cfg.n_batch = 2;
    cfg.n_max = 24;
    cfg.forest.num_trees = 10;
    return cfg;
  }

  workloads::WorkloadPtr workload_;
  std::vector<space::Configuration> pool_;
};

TEST_F(TellFailureTest, CrashRetriesWithBackoffThenDrops) {
  AskTellSession session(workload_->space(), StrategySpec{}, small_config(),
                         pool_, /*seed=*/5);
  const auto batch = session.ask();
  ASSERT_FALSE(batch.empty());
  const auto& victim = batch.front().config;
  const FailurePolicy& policy = session.config().failure;

  double expected_cost = 0.0;
  for (std::size_t attempt = 1; attempt <= policy.max_retries; ++attempt) {
    const auto outcome =
        session.tell_failure(victim, sim::FailureKind::Crash, 0.25);
    EXPECT_EQ(outcome.action, FailureAction::Retry);
    EXPECT_EQ(outcome.attempts, attempt);
    EXPECT_DOUBLE_EQ(outcome.backoff_seconds,
                     policy.backoff_seconds(attempt));
    expected_cost += 0.25 + outcome.backoff_seconds;
    // Still outstanding: the candidate must be re-measured, not dropped.
    EXPECT_FALSE(session.is_failed(victim));
    EXPECT_EQ(session.pending_count(), batch.size());
  }
  EXPECT_EQ(session.transient_retries(), policy.max_retries);

  // One failure past the budget drops it into the failed set.
  const auto dropped =
      session.tell_failure(victim, sim::FailureKind::Crash, 0.25);
  EXPECT_EQ(dropped.action, FailureAction::Dropped);
  EXPECT_EQ(dropped.attempts, policy.max_retries + 1);
  EXPECT_DOUBLE_EQ(dropped.backoff_seconds, 0.0);
  expected_cost += 0.25;
  EXPECT_TRUE(session.is_failed(victim));
  ASSERT_EQ(session.failed().size(), 1u);
  EXPECT_EQ(session.failed().front().kind, sim::FailureKind::Crash);
  EXPECT_EQ(session.failed().front().attempts, policy.max_retries + 1);
  EXPECT_EQ(session.pending_count(), batch.size() - 1);
  EXPECT_NEAR(session.cumulative_cost(), expected_cost, 1e-12);
  EXPECT_NEAR(session.failure_cost(), expected_cost, 1e-12);
  // No failure path ever writes a training label.
  EXPECT_EQ(session.num_labeled(), 0u);
}

TEST_F(TellFailureTest, CompileErrorDropsImmediately) {
  AskTellSession session(workload_->space(), StrategySpec{}, small_config(),
                         pool_, /*seed=*/6);
  const auto batch = session.ask();
  const auto outcome = session.tell_failure(
      batch.front().config, sim::FailureKind::CompileError, 0.0);
  EXPECT_EQ(outcome.action, FailureAction::Dropped);
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_TRUE(session.is_failed(batch.front().config));
  EXPECT_TRUE(session.censored().empty());
  EXPECT_DOUBLE_EQ(session.cumulative_cost(), 0.0);
}

TEST_F(TellFailureTest, TimeoutChargesCostAndRecordsCensoredObservation) {
  AskTellSession session(workload_->space(), StrategySpec{}, small_config(),
                         pool_, /*seed=*/7);
  const auto batch = session.ask();
  const auto& slow = batch.front().config;
  const auto outcome =
      session.tell_failure(slow, sim::FailureKind::Timeout, 30.0);
  EXPECT_EQ(outcome.action, FailureAction::Dropped);
  EXPECT_TRUE(session.is_failed(slow));
  ASSERT_EQ(session.censored().size(), 1u);
  EXPECT_EQ(session.censored().front().config, slow);
  EXPECT_DOUBLE_EQ(session.censored().front().lower_bound, 30.0);
  // The harness timeout is real wall-clock the tuner paid.
  EXPECT_DOUBLE_EQ(session.cumulative_cost(), 30.0);
  EXPECT_DOUBLE_EQ(session.failure_cost(), 30.0);
  // Censored observations carry no label and never enter best tracking.
  EXPECT_EQ(session.num_labeled(), 0u);
  EXPECT_TRUE(std::isnan(session.best_observed()));
}

TEST_F(TellFailureTest, RejectsUnknownCandidatesAndKindNone) {
  AskTellSession session(workload_->space(), StrategySpec{}, small_config(),
                         pool_, /*seed=*/8);
  const auto batch = session.ask();
  EXPECT_THROW(
      session.tell_failure(batch.front().config, sim::FailureKind::None),
      std::invalid_argument);
  util::Rng rng(99);
  space::Configuration stranger = workload_->space().random_config(rng);
  while (std::any_of(batch.begin(), batch.end(), [&](const Candidate& c) {
    return c.config == stranger;
  })) {
    stranger = workload_->space().random_config(rng);
  }
  EXPECT_THROW(session.tell_failure(stranger, sim::FailureKind::Crash),
               std::invalid_argument);
}

// The acceptance scenario, observable end to end: drive a session over a
// real SPAPT workload with an injected FaultModel and check every
// robustness invariant along the way.
void drive_spapt_with_faults(const std::string& workload_name,
                             std::uint64_t seed) {
  SCOPED_TRACE(workload_name);
  const auto workload = workloads::make_workload(workload_name);

  sim::FaultConfig fc;
  fc.compile_fail_fraction = 0.10;
  fc.crash_fraction = 0.10;
  fc.crash_probability = 0.5;
  fc.timeout_fraction = 0.05;
  fc.timeout_seconds = 30.0;
  fc.seed = seed;
  const sim::FaultModel faults(fc);
  sim::Executor executor(1, &faults);

  LearnerConfig cfg;
  cfg.n_init = 8;
  cfg.n_batch = 2;
  cfg.n_max = 24;
  cfg.forest.num_trees = 10;

  util::Rng rng(seed);
  auto pool = space::make_pool_split(workload->space(), 300, 0, rng).pool;
  AskTellSession session(workload->space(), StrategySpec{}, cfg, pool, seed);
  util::Rng measure_rng(rng.next_u64());

  std::set<std::vector<std::uint32_t>> proposed;
  const auto levels_of = [](const space::Configuration& c) {
    const auto levels = c.levels();
    return std::vector<std::uint32_t>(levels.begin(), levels.end());
  };

  while (!session.done()) {
    auto batch = session.ask();
    if (batch.empty()) break;
    for (const Candidate& c : batch) {
      // Never re-proposed: neither a failed nor an already-asked config
      // may ever come out of ask() again.
      EXPECT_FALSE(session.is_failed(c.config));
      EXPECT_TRUE(proposed.insert(levels_of(c.config)).second);
    }
    while (!batch.empty()) {
      std::vector<Candidate> retry;
      for (const Candidate& c : batch) {
        const auto measured = executor.measure(*workload, c.config,
                                               measure_rng);
        if (measured.ok()) {
          session.tell(c.config, measured.time);
          continue;
        }
        const auto outcome =
            session.tell_failure(c.config, measured.status, measured.cost);
        // Retries stay within the configured budget.
        EXPECT_LE(outcome.attempts, cfg.failure.max_retries + 1);
        if (outcome.action == FailureAction::Retry) retry.push_back(c);
      }
      batch = std::move(retry);
    }
  }

  // The run completed its budget despite the failures.
  EXPECT_EQ(session.num_labeled(), cfg.n_max);
  EXPECT_GT(session.failed().size(), 0u);  // 25% fault mass over 80+ asks

  // Failed and censored configurations never reached the training set.
  std::set<std::vector<std::uint32_t>> trained;
  for (const auto& c : session.train_configs()) {
    trained.insert(levels_of(c));
  }
  EXPECT_EQ(trained.size(), session.train_configs().size());
  for (const auto& f : session.failed()) {
    EXPECT_EQ(trained.count(levels_of(f.config)), 0u);
  }
  for (const auto& censored : session.censored()) {
    EXPECT_EQ(trained.count(levels_of(censored.config)), 0u);
    EXPECT_DOUBLE_EQ(censored.lower_bound, fc.timeout_seconds);
  }
  EXPECT_EQ(session.train_labels().size(), session.train_configs().size());

  // Cost accounting: CC = sum of labels + every failure charge, and each
  // timeout contributed its full harness timeout to the failure side.
  const double label_cost =
      std::accumulate(session.train_labels().begin(),
                      session.train_labels().end(), 0.0);
  EXPECT_NEAR(session.cumulative_cost(),
              label_cost + session.failure_cost(), 1e-6);
  EXPECT_GE(session.failure_cost(),
            fc.timeout_seconds * static_cast<double>(
                                     session.censored().size()));
}

TEST(FailureLearning, SpaptAtaxCompletesUnderFaults) {
  drive_spapt_with_faults("atax", 17);
}

TEST(FailureLearning, SpaptGesummvCompletesUnderFaults) {
  drive_spapt_with_faults("gesummv", 29);
}

TEST(FailureLearning, RunWithExecutorReportsFailureAccounting) {
  const auto workload = workloads::make_workload("atax");
  sim::FaultConfig fc;
  fc.compile_fail_fraction = 0.10;
  fc.crash_fraction = 0.10;
  fc.crash_probability = 0.5;
  fc.timeout_fraction = 0.05;
  fc.seed = 23;
  const sim::FaultModel faults(fc);
  sim::Executor executor(1, &faults);

  LearnerConfig cfg;
  cfg.n_init = 8;
  cfg.n_batch = 2;
  cfg.n_max = 24;
  cfg.forest.num_trees = 10;
  cfg.eval_every = 4;

  util::Rng rng(31);
  auto split = space::make_pool_split(workload->space(), 300, 120, rng);
  const TestSet test = build_test_set(*workload, split.test, rng);
  const StrategyPtr strategy = make_strategy("pwu", 0.05);
  const ActiveLearner learner(*workload, cfg);
  const LearnerResult result = learner.run_with_executor(
      *strategy, split.pool, test, executor, rng);

  EXPECT_EQ(result.train_labels.size(), cfg.n_max);
  EXPECT_GT(result.failed_configs, 0u);
  EXPECT_GT(result.failure_cost, 0.0);
  ASSERT_FALSE(result.trace.empty());
  const double label_cost = std::accumulate(
      result.train_labels.begin(), result.train_labels.end(), 0.0);
  EXPECT_NEAR(result.trace.back().cumulative_cost,
              label_cost + result.failure_cost, 1e-6);
  // The executor saw every failure the session recorded, plus retries.
  EXPECT_GE(executor.failed_measurements(),
            result.failed_configs);
  EXPECT_NE(result.model, nullptr);
}

TEST(FailureLearning, HealthyExecutorMatchesPlainRunExactly) {
  const auto workload = workloads::make_workload("gesummv");
  LearnerConfig cfg;
  cfg.n_init = 8;
  cfg.n_batch = 2;
  cfg.n_max = 20;
  cfg.forest.num_trees = 8;
  cfg.eval_every = 4;

  util::Rng split_rng(41);
  const auto split =
      space::make_pool_split(workload->space(), 250, 100, split_rng);
  const TestSet test = build_test_set(*workload, split.test, split_rng);
  const StrategyPtr strategy = make_strategy("pwu", 0.05);
  const ActiveLearner learner(*workload, cfg);

  util::Rng rng_plain(55), rng_exec(55);
  const LearnerResult plain =
      learner.run(*strategy, split.pool, test, rng_plain);
  sim::Executor executor(cfg.measure_repetitions);
  const LearnerResult viaexec = learner.run_with_executor(
      *strategy, split.pool, test, executor, rng_exec);

  ASSERT_EQ(viaexec.train_labels.size(), plain.train_labels.size());
  for (std::size_t i = 0; i < plain.train_labels.size(); ++i) {
    EXPECT_EQ(viaexec.train_labels[i], plain.train_labels[i]) << i;
    EXPECT_EQ(viaexec.train_configs[i], plain.train_configs[i]) << i;
  }
  EXPECT_EQ(viaexec.failed_configs, 0u);
  EXPECT_EQ(viaexec.transient_retries, 0u);
  EXPECT_DOUBLE_EQ(viaexec.failure_cost, 0.0);
}

TEST_F(TellFailureTest, FailureStateSurvivesCheckpointRoundTrip) {
  AskTellSession session(workload_->space(), StrategySpec{}, small_config(),
                         pool_, /*seed=*/61);
  util::Rng measure_rng(62);

  // First batch: one crash retry in flight, one timeout, one compile
  // error, the rest labeled — a checkpoint mid-battle.
  auto batch = session.ask();
  ASSERT_GE(batch.size(), 4u);
  session.tell_failure(batch[0].config, sim::FailureKind::Crash, 0.2);
  session.tell_failure(batch[1].config, sim::FailureKind::Timeout, 30.0);
  session.tell_failure(batch[2].config, sim::FailureKind::CompileError, 0.0);
  for (std::size_t i = 3; i < batch.size(); ++i) {
    session.tell(batch[i].config,
                 workload_->measure(batch[i].config, measure_rng, 1));
  }

  std::ostringstream image;
  session.save(image);
  std::istringstream in(image.str());
  AskTellSession restored = AskTellSession::restore(workload_->space(), in);

  // The failure state round-trips exactly...
  EXPECT_EQ(restored.failed().size(), session.failed().size());
  EXPECT_EQ(restored.censored().size(), session.censored().size());
  EXPECT_DOUBLE_EQ(restored.failure_cost(), session.failure_cost());
  EXPECT_EQ(restored.transient_retries(), session.transient_retries());
  EXPECT_TRUE(restored.is_failed(batch[1].config));
  EXPECT_TRUE(restored.is_failed(batch[2].config));
  // ...including the in-flight retry counter of the pending crash.
  std::ostringstream image2;
  restored.save(image2);
  EXPECT_EQ(image.str(), image2.str());

  // Both copies, driven identically, finish bit-identically.
  util::Rng rng_a(63), rng_b(63);
  const space::Configuration crasher = batch[0].config;
  const auto finish = [&](AskTellSession& s, util::Rng& mrng) {
    // The only candidate still outstanding is the crash-retry; let it
    // succeed now, then drive the rest of the session normally.
    if (s.pending_count() > 0) {
      s.tell(crasher, workload_->measure(crasher, mrng, 1));
    }
    while (!s.done()) {
      for (const Candidate& c : s.ask()) {
        s.tell(c.config, workload_->measure(c.config, mrng, 1));
      }
    }
  };
  finish(session, rng_a);
  finish(restored, rng_b);
  EXPECT_EQ(session.train_labels(), restored.train_labels());
  EXPECT_EQ(session.cumulative_cost(), restored.cumulative_cost());
}

}  // namespace
}  // namespace pwu::core
