// SessionManager + JSON-lines protocol — registry semantics, worker-pool
// offloaded refits (results must match the single-threaded path exactly),
// manager-level checkpoint/resume, and the request/response dispatch.

#include "service/protocol.hpp"
#include "service/session_manager.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/thread_pool.hpp"
#include "workloads/registry.hpp"

namespace pwu::service {
namespace {

namespace json = util::json;

SessionSpec small_spec() {
  SessionSpec spec;
  spec.workload = "gesummv";
  spec.learner.n_init = 6;
  spec.learner.n_batch = 2;
  spec.learner.n_max = 18;
  spec.learner.forest.num_trees = 8;
  spec.pool_size = 150;
  spec.seed = 13;
  return spec;
}

/// Client loop against the manager: measure with the stream the server
/// hands back, tell in ask order.
SessionStatus drive(SessionManager& manager, const std::string& name) {
  const SessionStatus st = manager.status(name);
  const auto workload = workloads::make_workload(st.workload);
  util::Rng measure_rng(st.measure_seed);
  for (;;) {
    const auto batch = manager.ask(name);
    if (batch.empty()) break;
    for (const Candidate& c : batch) {
      manager.tell(name, c.config,
                   workload->measure(c.config, measure_rng, 1));
    }
  }
  return manager.status(name);
}

TEST(SessionManager, CreateAskTellLifecycle) {
  SessionManager manager;
  const SessionStatus created = manager.create("s1", small_spec());
  EXPECT_EQ(created.name, "s1");
  EXPECT_EQ(created.workload, "gesummv");
  EXPECT_EQ(created.phase, "cold-start");
  EXPECT_EQ(created.labeled, 0u);
  EXPECT_NE(created.measure_seed, 0u);
  EXPECT_EQ(manager.size(), 1u);

  const SessionStatus final_status = drive(manager, "s1");
  EXPECT_TRUE(final_status.done);
  EXPECT_EQ(final_status.labeled, 18u);
  EXPECT_EQ(final_status.pending, 0u);
  EXPECT_GT(final_status.cumulative_cost, 0.0);

  EXPECT_TRUE(manager.close("s1"));
  EXPECT_FALSE(manager.close("s1"));
  EXPECT_EQ(manager.size(), 0u);
}

TEST(SessionManager, DuplicateNameAndUnknownWorkloadThrow) {
  SessionManager manager;
  manager.create("s1", small_spec());
  EXPECT_THROW(manager.create("s1", small_spec()), std::invalid_argument);
  auto bad = small_spec();
  bad.workload = "no-such-kernel";
  EXPECT_THROW(manager.create("s2", bad), std::invalid_argument);
  EXPECT_THROW(manager.ask("missing"), std::invalid_argument);
  EXPECT_THROW(manager.status("missing"), std::invalid_argument);
}

TEST(SessionManager, ListReportsAllSessions) {
  SessionManager manager;
  manager.create("a", small_spec());
  auto other = small_spec();
  other.workload = "atax";
  other.seed = 99;
  manager.create("b", other);
  const auto all = manager.list();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].name, "a");
  EXPECT_EQ(all[1].name, "b");
  EXPECT_EQ(all[1].workload, "atax");
}

TEST(SessionManager, WorkerPoolRefitsMatchSingleThreadedExactly) {
  // Two managers, same specs; one offloads refits to a pool. The labels
  // must be bit-identical — threading may change *when* the fit runs,
  // never its result.
  util::ThreadPool pool(3);
  SessionManager threaded(&pool);
  SessionManager serial;
  auto spec_x = small_spec();
  spec_x.seed = 101;
  auto spec_y = small_spec();
  spec_y.seed = 202;
  threaded.create("x", spec_x);
  threaded.create("y", spec_y);
  serial.create("x", spec_x);
  serial.create("y", spec_y);
  // Interleave the two threaded sessions so their refits overlap.
  const auto stx = threaded.status("x");
  const auto sty = threaded.status("y");
  const auto wl = workloads::make_workload(stx.workload);
  util::Rng rng_x(stx.measure_seed), rng_y(sty.measure_seed);
  bool progress = true;
  while (progress) {
    const auto bx = threaded.ask("x");
    for (const Candidate& c : bx) {
      threaded.tell("x", c.config, wl->measure(c.config, rng_x, 1));
    }
    const auto by = threaded.ask("y");
    for (const Candidate& c : by) {
      threaded.tell("y", c.config, wl->measure(c.config, rng_y, 1));
    }
    progress = !bx.empty() || !by.empty();
  }
  const auto fx = drive(serial, "x");
  const auto fy = drive(serial, "y");
  EXPECT_EQ(threaded.status("x").cumulative_cost, fx.cumulative_cost);
  EXPECT_EQ(threaded.status("y").cumulative_cost, fy.cumulative_cost);
  EXPECT_EQ(threaded.status("x").best_observed, fx.best_observed);
  EXPECT_EQ(threaded.status("y").best_observed, fy.best_observed);
}

TEST(SessionManager, CheckpointResumeViaStreams) {
  SessionManager manager;
  manager.create("s1", small_spec());
  const SessionStatus st = manager.status("s1");
  const auto workload = workloads::make_workload(st.workload);
  util::Rng measure_rng(st.measure_seed);
  // Complete the cold start only, then checkpoint.
  for (const Candidate& c : manager.ask("s1")) {
    manager.tell("s1", c.config, workload->measure(c.config, measure_rng, 1));
  }
  std::stringstream ckpt;
  manager.checkpoint("s1", ckpt);
  manager.close("s1");

  const SessionStatus resumed = manager.resume("s1", ckpt);
  EXPECT_EQ(resumed.labeled, 6u);
  EXPECT_EQ(resumed.workload, "gesummv");
  EXPECT_EQ(resumed.strategy, "pwu");
  EXPECT_EQ(resumed.measure_seed, st.measure_seed);

  const SessionStatus final_status = drive(manager, "s1");
  EXPECT_TRUE(final_status.done);
  EXPECT_EQ(final_status.labeled, 18u);
}

// ---- Protocol layer ----

json::Value req(const std::string& text) { return json::parse(text); }

TEST(Protocol, CreateAskTellRoundTrip) {
  SessionManager manager;
  const json::Value created = handle_request(
      manager,
      req(R"({"op":"create","session":"p1","workload":"gesummv",
              "n_init":4,"n_batch":1,"n_max":8,"pool_size":100,
              "trees":6,"seed":21})"));
  ASSERT_TRUE(created.at("ok").as_bool()) << created.dump();
  const std::string seed_str = created.at("measure_seed").as_string();
  util::Rng measure_rng(std::stoull(seed_str));
  const auto workload = workloads::make_workload("gesummv");

  const json::Value asked = handle_request(
      manager, req(R"({"op":"ask","session":"p1"})"));
  ASSERT_TRUE(asked.at("ok").as_bool());
  EXPECT_FALSE(asked.at("done").as_bool());
  const json::Array& candidates = asked.at("candidates").as_array();
  ASSERT_EQ(candidates.size(), 4u);

  const space::Configuration config =
      configuration_from_json(candidates[0].at("levels"));
  const double label = workload->measure(config, measure_rng, 1);
  json::Object tell_fields{{"op", json::Value("tell")},
                           {"session", json::Value("p1")},
                           {"levels", candidates[0].at("levels")},
                           {"time", json::Value(label)}};
  const json::Value told =
      handle_request(manager, json::Value(std::move(tell_fields)));
  ASSERT_TRUE(told.at("ok").as_bool()) << told.dump();
  EXPECT_DOUBLE_EQ(told.at("labeled").as_number(), 1.0);
  EXPECT_FALSE(told.at("refit").as_bool());  // batch not yet complete
}

TEST(Protocol, ErrorsComeBackAsResponses) {
  SessionManager manager;
  const json::Value unknown_op =
      handle_request(manager, req(R"({"op":"frobnicate"})"));
  EXPECT_FALSE(unknown_op.at("ok").as_bool());
  EXPECT_TRUE(unknown_op.at("error").is_string());

  const json::Value missing_session =
      handle_request(manager, req(R"({"op":"ask","session":"ghost"})"));
  EXPECT_FALSE(missing_session.at("ok").as_bool());

  const json::Value bad_create = handle_request(
      manager, req(R"({"op":"create","session":"x"})"));  // no workload
  EXPECT_FALSE(bad_create.at("ok").as_bool());
}

TEST(Protocol, ServeLoopHandlesLinesAndShutdown) {
  SessionManager manager;
  std::istringstream in(
      "{\"op\":\"create\",\"session\":\"s\",\"workload\":\"gesummv\","
      "\"n_init\":4,\"n_max\":8,\"pool_size\":100,\"trees\":6}\n"
      "\n"                    // blank line skipped
      "this is not json\n"    // parse error -> error response, loop survives
      "{\"op\":\"list\"}\n"
      "{\"op\":\"shutdown\"}\n"
      "{\"op\":\"list\"}\n");  // never reached
  std::ostringstream out;
  const std::size_t handled = run_serve_loop(in, out, manager);
  EXPECT_EQ(handled, 4u);

  std::istringstream lines(out.str());
  std::string line;
  std::vector<json::Value> responses;
  while (std::getline(lines, line)) responses.push_back(json::parse(line));
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_TRUE(responses[0].at("ok").as_bool());
  EXPECT_FALSE(responses[1].at("ok").as_bool());  // the non-JSON line
  EXPECT_TRUE(responses[2].at("ok").as_bool());
  EXPECT_TRUE(responses[3].at("shutdown").as_bool());
}

TEST(Protocol, StatusSerializationIsFaithful) {
  SessionManager manager;
  manager.create("s1", small_spec());
  const SessionStatus st = manager.status("s1");
  const json::Value v = status_to_json(st);
  EXPECT_EQ(v.at("session").as_string(), "s1");
  EXPECT_EQ(v.at("workload").as_string(), "gesummv");
  EXPECT_EQ(v.at("strategy").as_string(), "pwu");
  EXPECT_EQ(v.at("phase").as_string(), "cold-start");
  // 64-bit seed travels as a decimal string, exactly.
  EXPECT_EQ(v.at("measure_seed").as_string(), std::to_string(st.measure_seed));
  EXPECT_DOUBLE_EQ(v.at("n_max").as_number(),
                   static_cast<double>(st.n_max));
}

TEST(Protocol, CheckpointAndResumeThroughFiles) {
  SessionManager manager;
  handle_request(manager,
                 req(R"({"op":"create","session":"c1","workload":"gesummv",
                         "n_init":4,"n_max":8,"pool_size":100,"trees":6,
                         "seed":5})"));
  const std::string path = ::testing::TempDir() + "pwu_protocol_test.ckpt";
  json::Object ckpt_fields{{"op", json::Value("checkpoint")},
                           {"session", json::Value("c1")},
                           {"path", json::Value(path)}};
  const json::Value saved =
      handle_request(manager, json::Value(std::move(ckpt_fields)));
  ASSERT_TRUE(saved.at("ok").as_bool()) << saved.dump();
  handle_request(manager, req(R"({"op":"close","session":"c1"})"));

  json::Object resume_fields{{"op", json::Value("resume")},
                             {"session", json::Value("c1")},
                             {"path", json::Value(path)}};
  const json::Value resumed =
      handle_request(manager, json::Value(std::move(resume_fields)));
  ASSERT_TRUE(resumed.at("ok").as_bool()) << resumed.dump();
  EXPECT_EQ(manager.size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pwu::service
