// The SIMD kernel tiers and the quantized 8-byte layout share one
// contract with the flat engine: any dispatch level and either node
// layout may change throughput only — never a single output bit. These
// tests sweep every compiled tier over adversarial hand-built trees,
// fitted forests on extreme-value data, the full workload registry, and
// the golden pre-overhaul fixture.

#include "rf/simd_eval.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "rf/feature_matrix.hpp"
#include "rf/flat_forest.hpp"
#include "rf/quantized_layout.hpp"
#include "rf/random_forest.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workloads/registry.hpp"

#ifndef PWU_TEST_DATA_DIR
#define PWU_TEST_DATA_DIR "tests/data"
#endif

namespace pwu::rf {
namespace {

/// Every tier the dispatcher can actually select on this build + CPU.
std::vector<simd::Level> available_levels() {
  std::vector<simd::Level> levels = {simd::Level::Scalar};
  if (simd::detected_level() >= simd::Level::Sse2) {
    levels.push_back(simd::Level::Sse2);
  }
  if (simd::detected_level() >= simd::Level::Avx2) {
    levels.push_back(simd::Level::Avx2);
  }
  return levels;
}

/// RAII override so a failing EXPECT cannot leak a pinned level.
struct LevelGuard {
  explicit LevelGuard(simd::Level level) { simd::set_level_override(level); }
  ~LevelGuard() { simd::clear_level_override(); }
};

TEST(SimdEval, LevelParsingAndDetection) {
  EXPECT_STREQ(simd::level_name(simd::Level::Scalar), "scalar");
  EXPECT_STREQ(simd::level_name(simd::Level::Sse2), "sse2");
  EXPECT_STREQ(simd::level_name(simd::Level::Avx2), "avx2");
  EXPECT_EQ(simd::parse_level("avx2"), simd::Level::Avx2);
  EXPECT_EQ(simd::parse_level("sse2"), simd::Level::Sse2);
  EXPECT_EQ(simd::parse_level("scalar"), simd::Level::Scalar);
  EXPECT_FALSE(simd::parse_level("avx512").has_value());
  EXPECT_FALSE(simd::parse_level(nullptr).has_value());
  // The override clamps to what this CPU supports, so active <= detected
  // always holds.
  for (const simd::Level level : available_levels()) {
    LevelGuard guard(level);
    EXPECT_EQ(simd::active_level(), level);
  }
  EXPECT_LE(static_cast<int>(simd::active_level()),
            static_cast<int>(simd::detected_level()));
}

// ---- direct kernel tests on hand-built node tables ------------------------
//
// The kernels see raw FlatNode arrays, so adversarial shapes (single leaf,
// right-spine chains deeper than any fitted tree, threshold extremes) can
// be laid out by hand in BFS order (right child = left + 1) without
// coaxing the fitter into producing them.

TEST(SimdEval, SingleLeafTreeAllTiers) {
  const std::vector<FlatNode> nodes = {{3.25, -1, -1}};
  const std::vector<double> rows(17, 0.0);  // 17 rows x 1 col, odd tail
  for (const simd::Level level : available_levels()) {
    SCOPED_TRACE(simd::level_name(level));
    std::vector<double> out(17, -1.0);
    simd::flat_tree_kernel(level)(nodes.data(), rows.data(), 1, 17,
                                  out.data());
    for (double v : out) EXPECT_EQ(v, 3.25);
  }
}

TEST(SimdEval, DeepRightSpineChainAllTiers) {
  // 40 levels of "feature 0 <= i ? leaf : deeper": a row with value v lands
  // on the leaf for floor(v)+1 (clamped), exercising lanes that finish many
  // levels apart and the full-lane leaf blend.
  constexpr int kDepth = 40;
  std::vector<FlatNode> nodes;
  for (int i = 0; i < kDepth; ++i) {
    FlatNode split;
    split.feature = 0;
    split.payload = static_cast<double>(i);
    split.left = static_cast<std::int32_t>(nodes.size()) + 1;
    nodes.push_back(split);                       // index 2i
    nodes.push_back({100.0 + i, -1, -1});         // left leaf, index 2i+1
    // right child = 2i+2 = the next split (or the final leaf below)
  }
  nodes.push_back({999.0, -1, -1});
  ASSERT_EQ(nodes.size(), 2u * kDepth + 1);
  // BFS indexing fix-up: the loop above built a left-leaning array where
  // right = left + 1 only holds if the next split immediately follows the
  // leaf — which it does: split i at 2i, leaf at 2i+1, split i+1 at 2i+2.
  std::vector<double> rows;
  std::vector<double> expect;
  for (int r = 0; r < 27; ++r) {
    const double v = static_cast<double>(r) - 3.5;  // negatives, .5 offsets
    rows.push_back(v);
    int i = 0;
    while (i < kDepth && !(v <= static_cast<double>(i))) ++i;
    expect.push_back(i < kDepth ? 100.0 + i : 999.0);
  }
  for (const simd::Level level : available_levels()) {
    SCOPED_TRACE(simd::level_name(level));
    std::vector<double> out(rows.size(), -1.0);
    simd::flat_tree_kernel(level)(nodes.data(), rows.data(), 1, rows.size(),
                                  out.data());
    for (std::size_t r = 0; r < rows.size(); ++r) {
      EXPECT_EQ(out[r], expect[r]) << "row " << r;
    }
  }
}

TEST(SimdEval, ThresholdExtremesRouteIdenticallyAllTiers) {
  // One split on feature 1 at threshold 0.0; probes hit +-0.0, denormals,
  // +-DBL_MAX, and values on both sides of the boundary. 3-wide rows make
  // the stride gather arithmetic non-trivial.
  const std::vector<FlatNode> nodes = {
      {0.0, 1, 1}, {-1.0, -1, -1}, {+1.0, -1, -1}};
  const std::vector<double> probes = {
      0.0, -0.0, std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      -std::numeric_limits<double>::max(), 1e-300, -1e-300, 0.5, -0.5};
  std::vector<double> rows;
  for (const double p : probes) {
    rows.push_back(1e9);  // feature 0: must be ignored
    rows.push_back(p);
    rows.push_back(-1e9);
  }
  std::vector<double> reference(probes.size());
  for (std::size_t r = 0; r < probes.size(); ++r) {
    reference[r] = probes[r] <= 0.0 ? -1.0 : +1.0;
  }
  for (const simd::Level level : available_levels()) {
    SCOPED_TRACE(simd::level_name(level));
    std::vector<double> out(probes.size(), 0.0);
    simd::flat_tree_kernel(level)(nodes.data(), rows.data(), 3,
                                  probes.size(), out.data());
    for (std::size_t r = 0; r < probes.size(); ++r) {
      EXPECT_EQ(out[r], reference[r]) << "probe " << probes[r];
    }
  }
}

// ---- fitted forests: every tier == the tree-walk reference ----------------

Dataset space_dataset(const workloads::Workload& workload, std::size_t n,
                      util::Rng& rng) {
  const auto& space = workload.space();
  Dataset data(space.num_params(), space.categorical_mask(),
               space.cardinalities());
  for (std::size_t i = 0; i < n; ++i) {
    const auto config = space.random_config(rng);
    data.add(space.features(config), workload.measure(config, rng, 1));
  }
  return data;
}

TEST(SimdEval, EveryTierBitExactAcrossAllWorkloadSpaces) {
  util::ThreadPool pool(3);
  for (const auto& name : workloads::all_names()) {
    SCOPED_TRACE(name);
    const auto workload = workloads::make_workload(name);
    util::Rng rng(0x51D + std::hash<std::string>{}(name) % 1000);
    const Dataset train = space_dataset(*workload, 70, rng);

    ForestConfig cfg;
    cfg.num_trees = 11;
    util::Rng fit_rng(17);
    RandomForest forest;
    forest.fit(train, cfg, fit_rng);

    const auto& space = workload->space();
    FeatureMatrix probes = FeatureMatrix::with_capacity(space.num_params(), 90);
    for (std::size_t i = 0; i < 90; ++i) {
      space.write_features(space.random_config(rng), probes.append_row());
    }

    std::vector<PredictionStats> reference(probes.num_rows());
    for (std::size_t i = 0; i < probes.num_rows(); ++i) {
      reference[i] = forest.predict_stats_reference(probes.row(i));
    }
    for (const simd::Level level : available_levels()) {
      SCOPED_TRACE(simd::level_name(level));
      LevelGuard guard(level);
      const auto serial = forest.predict_stats_batch(probes);
      const auto parallel = forest.predict_stats_batch(probes, &pool);
      for (std::size_t i = 0; i < probes.num_rows(); ++i) {
        EXPECT_EQ(serial[i].mean, reference[i].mean);
        EXPECT_EQ(serial[i].variance, reference[i].variance);
        EXPECT_EQ(parallel[i].mean, reference[i].mean);
        EXPECT_EQ(parallel[i].variance, reference[i].variance);
      }
    }
  }
}

TEST(QuantizedForest, RoutingEquivalentAcrossAllWorkloadSpacesAndTiers) {
  // The compaction contract: 8-byte nodes with rank-coded thresholds agree
  // with the 16-byte layout label for label — every mean and variance bit
  // — on the paper's full problem set, at every dispatch level.
  util::ThreadPool pool(3);
  for (const auto& name : workloads::all_names()) {
    SCOPED_TRACE(name);
    const auto workload = workloads::make_workload(name);
    util::Rng rng(0x0A7 + std::hash<std::string>{}(name) % 1000);
    const Dataset train = space_dataset(*workload, 70, rng);

    ForestConfig cfg;
    cfg.num_trees = 9;
    util::Rng fit_rng(23);
    RandomForest forest;
    forest.fit(train, cfg, fit_rng);

    QuantizedForest quant;
    ASSERT_TRUE(quant.build(forest.flat()));
    EXPECT_EQ(quant.num_trees(), forest.flat().num_trees());
    EXPECT_EQ(quant.num_nodes(), forest.flat().num_nodes());
    // The whole point of the compaction: half the node bytes. (The total
    // footprint also carries the threshold codebooks and the leaf-value
    // table, so on tiny leaf-heavy forests it can exceed the flat layout;
    // the node-array halving is the invariant, the side tables are bounded
    // by one double per leaf plus one per distinct threshold.)
    EXPECT_EQ(quant.nodes().size() * sizeof(QuantNode),
              forest.flat().nodes().size() * sizeof(rf::FlatNode) / 2);
    EXPECT_LE(quant.memory_bytes(),
              forest.flat().memory_bytes() + forest.flat().memory_bytes() / 2);

    const auto& space = workload->space();
    FeatureMatrix probes =
        FeatureMatrix::with_capacity(space.num_params(), 100);
    for (std::size_t i = 0; i < 100; ++i) {
      space.write_features(space.random_config(rng), probes.append_row());
    }

    for (const simd::Level level : available_levels()) {
      SCOPED_TRACE(simd::level_name(level));
      LevelGuard guard(level);
      std::vector<PredictionStats> full(probes.num_rows());
      std::vector<PredictionStats> compact(probes.num_rows());
      forest.flat().predict_stats(probes, full);
      quant.predict_stats(probes, compact);
      std::vector<PredictionStats> compact_mt(probes.num_rows());
      quant.predict_stats(probes, compact_mt, &pool);
      for (std::size_t i = 0; i < probes.num_rows(); ++i) {
        EXPECT_EQ(compact[i].mean, full[i].mean);
        EXPECT_EQ(compact[i].variance, full[i].variance);
        EXPECT_EQ(compact_mt[i].mean, full[i].mean);
        EXPECT_EQ(compact_mt[i].variance, full[i].variance);
      }
    }
  }
}

TEST(QuantizedForest, GoldenFixtureAgreesAtEveryTier) {
  const std::string path =
      std::string(PWU_TEST_DATA_DIR) + "/golden_forest_v0.txt";
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing fixture " << path;
  std::string t1, t2, t3;
  ASSERT_TRUE(in >> t1 >> t2 >> t3);
  ASSERT_EQ(t2, "MODEL");
  RandomForest forest;
  forest.load(in);

  QuantizedForest quant;
  ASSERT_TRUE(quant.build(forest.flat()));

  ASSERT_TRUE(in >> t1 >> t2 >> t3);
  ASSERT_EQ(t2, "PREDICTIONS");
  std::size_t count = 0;
  ASSERT_TRUE(in >> count);
  FeatureMatrix probes = FeatureMatrix::with_capacity(4, count);
  std::vector<double> expected_mean(count);
  std::vector<double> expected_variance(count);
  std::vector<double> row(4);
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_TRUE(in >> row[0] >> row[1] >> row[2] >> row[3] >>
                expected_mean[i] >> expected_variance[i]);
    auto dst = probes.append_row();
    for (std::size_t c = 0; c < 4; ++c) dst[c] = row[c];
  }
  for (const simd::Level level : available_levels()) {
    SCOPED_TRACE(simd::level_name(level));
    LevelGuard guard(level);
    std::vector<PredictionStats> out(count);
    quant.predict_stats(probes, out);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(out[i].mean, expected_mean[i]) << "row " << i;
      EXPECT_EQ(out[i].variance, expected_variance[i]) << "row " << i;
    }
  }
}

TEST(QuantizedForest, ExtremeValueForestSurvivesCompaction) {
  // Labels and features spanning ~600 orders of magnitude: rank coding
  // must reproduce the exact threshold doubles (no midpoint snapping), so
  // even pathological split values round-trip.
  util::Rng rng(404);
  Dataset data(2);
  for (int i = 0; i < 120; ++i) {
    const double a = std::ldexp(rng.uniform(0.5, 1.0),
                              static_cast<int>(rng.uniform_int(-300, 300)));
    const double b = rng.uniform(-1e9, 1e9);
    data.add(std::vector<double>{a, b}, std::log(std::abs(a)) + b * 1e-9);
  }
  ForestConfig cfg;
  cfg.num_trees = 6;
  RandomForest forest;
  forest.fit(data, cfg, rng);

  QuantizedForest quant;
  ASSERT_TRUE(quant.build(forest.flat()));

  FeatureMatrix probes = FeatureMatrix::with_capacity(2, 64);
  for (int i = 0; i < 64; ++i) {
    auto dst = probes.append_row();
    dst[0] = std::ldexp(rng.uniform(0.5, 1.0),
                              static_cast<int>(rng.uniform_int(-300, 300)));
    dst[1] = rng.uniform(-1e9, 1e9);
  }
  for (const simd::Level level : available_levels()) {
    SCOPED_TRACE(simd::level_name(level));
    LevelGuard guard(level);
    std::vector<PredictionStats> full(64), compact(64);
    forest.flat().predict_stats(probes, full);
    quant.predict_stats(probes, compact);
    for (std::size_t i = 0; i < 64; ++i) {
      EXPECT_EQ(compact[i].mean, full[i].mean);
      EXPECT_EQ(compact[i].variance, full[i].variance);
    }
  }
}

TEST(QuantizedForest, EmptyAndErrorPaths) {
  QuantizedForest quant;
  EXPECT_TRUE(quant.empty());
  EXPECT_FALSE(quant.build(FlatForest{}));  // nothing to compact
  EXPECT_TRUE(quant.empty());

  util::Rng rng(7);
  Dataset data(1);
  for (int i = 0; i < 30; ++i) {
    data.add(std::vector<double>{rng.uniform(0.0, 1.0)},
             rng.uniform(0.0, 1.0));
  }
  ForestConfig cfg;
  cfg.num_trees = 3;
  RandomForest forest;
  forest.fit(data, cfg, rng);
  ASSERT_TRUE(quant.build(forest.flat()));
  EXPECT_FALSE(quant.empty());

  std::vector<PredictionStats> wrong(2);
  const FeatureMatrix rows = FeatureMatrix::from_rows({{0.5}});
  EXPECT_THROW(quant.predict_stats(rows, wrong), std::invalid_argument);
  quant.clear();
  std::vector<PredictionStats> one(1);
  EXPECT_THROW(quant.predict_stats(rows, one), std::logic_error);
}

}  // namespace
}  // namespace pwu::rf
