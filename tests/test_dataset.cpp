#include "rf/dataset.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace pwu::rf {
namespace {

TEST(Dataset, AddAndAccess) {
  Dataset d(2);
  d.add(std::vector<double>{1.0, 2.0}, 10.0);
  d.add(std::vector<double>{3.0, 4.0}, 20.0);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_DOUBLE_EQ(d.x(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(d.x(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(d.y(1), 20.0);
  const auto row = d.row(1);
  EXPECT_DOUBLE_EQ(row[1], 4.0);
  EXPECT_DOUBLE_EQ(d.labels()[0], 10.0);
}

TEST(Dataset, RowWidthMismatchThrows) {
  Dataset d(2);
  EXPECT_THROW(d.add(std::vector<double>{1.0}, 5.0), std::invalid_argument);
}

TEST(Dataset, NonFiniteValuesRejected) {
  Dataset d(1);
  EXPECT_THROW(d.add(std::vector<double>{std::nan("")}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(d.add(std::vector<double>{1.0}, INFINITY),
               std::invalid_argument);
}

TEST(Dataset, CategoricalSchemaValidated) {
  // Categorical feature needs a cardinality.
  EXPECT_THROW(Dataset(2, {true, false}), std::invalid_argument);
  // Cardinality above 64 unsupported (mask is 64-bit).
  EXPECT_THROW(Dataset(1, {true}, {65}), std::invalid_argument);
  // Mask size mismatch.
  EXPECT_THROW(Dataset(2, {true}), std::invalid_argument);
  // Valid construction.
  const Dataset ok(2, {true, false}, {5, 0});
  EXPECT_TRUE(ok.is_categorical(0));
  EXPECT_FALSE(ok.is_categorical(1));
  EXPECT_EQ(ok.cardinality(0), 5u);
  EXPECT_EQ(ok.cardinality(1), 0u);
}

TEST(Dataset, CategoricalValuesValidatedOnAdd) {
  // Regression: an out-of-range categorical value used to flow into split
  // finding, where the level index walks past the per-level buffers and a
  // level >= 64 shifts a 64-bit mask out of range (undefined behavior).
  // Now the offending row is rejected at insertion.
  Dataset d(2, {true, false}, {5, 0});
  d.add(std::vector<double>{4.0, 1.5}, 1.0);   // top level is fine
  EXPECT_THROW(d.add(std::vector<double>{5.0, 0.0}, 1.0),
               std::invalid_argument);         // == cardinality
  EXPECT_THROW(d.add(std::vector<double>{-1.0, 0.0}, 1.0),
               std::invalid_argument);         // negative level
  EXPECT_THROW(d.add(std::vector<double>{2.5, 0.0}, 1.0),
               std::invalid_argument);         // non-integral level
  EXPECT_THROW(d.add(std::vector<double>{100.0, 0.0}, 1.0),
               std::invalid_argument);         // would shift a mask by >= 64
  // The numerical column stays unrestricted.
  d.add(std::vector<double>{0.0, -123.75}, 2.0);
  EXPECT_EQ(d.size(), 2u);
}

TEST(Dataset, AllNumericalByDefault) {
  const Dataset d(3);
  EXPECT_FALSE(d.is_categorical(0));
  EXPECT_FALSE(d.is_categorical(2));
  EXPECT_EQ(d.cardinality(1), 0u);
}

TEST(Dataset, EmptyLikePreservesSchema) {
  Dataset d(2, {true, false}, {4, 0});
  d.add(std::vector<double>{1.0, 2.0}, 3.0);
  const Dataset e = d.empty_like();
  EXPECT_EQ(e.size(), 0u);
  EXPECT_EQ(e.num_features(), 2u);
  EXPECT_TRUE(e.is_categorical(0));
  EXPECT_EQ(e.cardinality(0), 4u);
}

}  // namespace
}  // namespace pwu::rf
