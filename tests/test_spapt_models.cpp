// Kernel-specific behaviour of the SPAPT simulators: the cost models must
// reproduce the qualitative physics the real transformations exhibit.

#include <gtest/gtest.h>

#include <cmath>

#include "workloads/registry.hpp"
#include "workloads/spapt/spapt_common.hpp"

namespace pwu::workloads::spapt {
namespace {

// Builds a config with every parameter at a given level (clamped).
space::Configuration uniform_level(const space::ParameterSpace& s,
                                   std::size_t level) {
  std::vector<std::uint32_t> levels(s.num_params());
  for (std::size_t i = 0; i < s.num_params(); ++i) {
    levels[i] = static_cast<std::uint32_t>(
        std::min<std::size_t>(level, s.param(i).num_levels() - 1));
  }
  return space::Configuration(std::move(levels));
}

space::Configuration with_param(const space::ParameterSpace& s,
                                space::Configuration base,
                                const std::string& name, std::uint32_t level) {
  base.set_level(s.index_of(name), level);
  return base;
}

TEST(SpaptCommon, TileLevelsMatchTableI) {
  const auto& tiles = tile_levels();
  EXPECT_EQ(tiles, (std::vector<double>{1, 16, 32, 64, 128, 256, 512}));
  EXPECT_EQ(regtile_levels(), (std::vector<double>{1, 8, 32}));
  EXPECT_EQ(kMaxUnroll, 31);
}

TEST(SpaptKernels, AdiMatchesTableIParameterLayout) {
  auto adi = make_adi();
  const auto& s = adi->space();
  // Table I: 8 tiles, 4 unroll-jam, 4 regtiles, 2+2 flags = 20 parameters.
  EXPECT_EQ(s.num_params(), 20u);
  std::size_t tiles = 0, unrolls = 0, regtiles = 0, flags = 0;
  for (std::size_t i = 0; i < s.num_params(); ++i) {
    switch (s.param(i).kind()) {
      case space::ParamKind::kOrdinal:
        (s.param(i).num_levels() == 7 ? tiles : regtiles) += 1;
        break;
      case space::ParamKind::kIntRange:
        ++unrolls;
        EXPECT_EQ(s.param(i).num_levels(), 31u);
        break;
      case space::ParamKind::kBoolean:
        ++flags;
        break;
      default:
        FAIL() << "unexpected parameter kind in ADI";
    }
  }
  EXPECT_EQ(tiles, 8u);
  EXPECT_EQ(unrolls, 4u);
  EXPECT_EQ(regtiles, 4u);
  EXPECT_EQ(flags, 4u);
}

TEST(SpaptKernels, Dgemv3HasThePaperMaximumParamCount) {
  EXPECT_EQ(make_dgemv3()->space().num_params(), 38u);
}

TEST(SpaptKernels, JacobiHasThePaperMinimumParamCount) {
  EXPECT_EQ(make_jacobi()->space().num_params(), 8u);
}

TEST(SpaptKernels, KernelTimesAreSubSecondScale) {
  // Paper III-B: kernel executions are "usually less than one second".
  util::Rng rng(1);
  for (const auto& name : kernel_names()) {
    auto k = make_workload(name);
    double total = 0.0;
    const int draws = 50;
    for (int i = 0; i < draws; ++i) {
      total += k->base_time(k->space().random_config(rng));
    }
    const double mean = total / draws;
    EXPECT_GT(mean, 1e-3) << name;
    EXPECT_LT(mean, 5.0) << name;
  }
}

TEST(SpaptKernels, VectorizationHelpsAVectorFriendlyKernel) {
  // mm with a large j-tile: enabling VEC must reduce time.
  auto mm = make_mm();
  const auto& s = mm->space();
  space::Configuration base = uniform_level(s, 2);  // tiles = 32
  base = with_param(s, base, "T2", 4);              // j-tile 128
  const auto vec_on = with_param(s, base, "VEC", 1);
  const auto vec_off = with_param(s, base, "VEC", 0);
  EXPECT_LT(mm->base_time(vec_on), mm->base_time(vec_off));
}

TEST(SpaptKernels, ExcessiveUnrollJamHurts) {
  // bicg carries high register demand: jamming both loops to 31x31 must be
  // slower than a moderate 4x2.
  auto bicg = make_bicg();
  const auto& s = bicg->space();
  space::Configuration moderate = uniform_level(s, 2);
  moderate = with_param(s, moderate, "U1", 3);   // factor 4
  moderate = with_param(s, moderate, "U2", 1);   // factor 2
  space::Configuration excessive = moderate;
  excessive = with_param(s, excessive, "U1", 30);  // factor 31
  excessive = with_param(s, excessive, "U2", 30);
  EXPECT_GT(bicg->base_time(excessive), bicg->base_time(moderate));
}

TEST(SpaptKernels, TilingSweetSpotExistsForMm) {
  // mm: tiny tiles (1) and huge tiles (512) must both lose to a moderate
  // cache-sized tile on the k dimension.
  auto mm = make_mm();
  const auto& s = mm->space();
  auto timed = [&](std::uint32_t tile_level) {
    space::Configuration c = uniform_level(s, 2);
    c = with_param(s, c, "T1", tile_level);
    c = with_param(s, c, "T2", tile_level);
    c = with_param(s, c, "T3", tile_level);
    return mm->base_time(c);
  };
  const double tiny = timed(0);     // 1
  const double sweet = timed(3);    // 64
  const double huge = timed(6);     // 512
  EXPECT_LT(sweet, tiny);
  EXPECT_LT(sweet, huge);
}

TEST(SpaptKernels, AdiColumnSweepMoreTileSensitiveThanRowSweep) {
  // Growing the column-sweep tiles from 32 to 512 must hurt more than the
  // same change on the row sweep (stride-N vs unit-stride).
  auto adi = make_adi();
  const auto& s = adi->space();
  const space::Configuration base = uniform_level(s, 2);
  auto grow = [&](int first_tile, space::Configuration c) {
    for (int t = first_tile; t < first_tile + 4; ++t) {
      c = with_param(s, c, "T" + std::to_string(t), 6);  // 512
    }
    return c;
  };
  const double base_t = adi->base_time(base);
  const double row_grown = adi->base_time(grow(1, base));   // tiles T1..T4
  const double col_grown = adi->base_time(grow(5, base));   // tiles T5..T8
  EXPECT_GT(col_grown - base_t, row_grown - base_t);
}

TEST(SpaptKernels, MvtFusionWinsOnAverage) {
  // Fusion triggers when both halves share their tiles. Compare each
  // random config against its tile-matched twin: the matched twin must be
  // faster on average (it reads A once), even though individual tile
  // changes also shift cache behaviour.
  auto mvt = make_mvt();
  const auto& s = mvt->space();
  util::Rng rng(7);
  double fused_total = 0.0, unfused_total = 0.0;
  int pairs = 0;
  for (int i = 0; i < 200; ++i) {
    space::Configuration c = s.random_config(rng);
    // Twin: copy the first half's tiles onto the second half -> fused.
    space::Configuration twin = c;
    twin.set_level(s.index_of("T3"), c.level(s.index_of("T1")));
    twin.set_level(s.index_of("T4"), c.level(s.index_of("T2")));
    if (twin == c) continue;  // already matched, no contrast
    // Then deliberately mismatch c (ensure the unfused branch).
    fused_total += mvt->base_time(twin);
    unfused_total += mvt->base_time(c);
    ++pairs;
  }
  ASSERT_GT(pairs, 100);
  EXPECT_LT(fused_total, unfused_total);
}

TEST(SpaptKernels, JacobiTimeSkewingWins) {
  // Enabling time skewing (T2 > 1) on the bandwidth-bound stencil should
  // beat the unskewed sweep for a reasonable space tile.
  auto jacobi = make_jacobi();
  const auto& s = jacobi->space();
  space::Configuration unskewed = uniform_level(s, 2);
  unskewed = with_param(s, unskewed, "T2", 0);  // time tile 1
  space::Configuration skewed = unskewed;
  skewed = with_param(s, skewed, "T2", 2);      // time tile 32
  EXPECT_LT(jacobi->base_time(skewed), jacobi->base_time(unskewed));
}

TEST(SpaptKernels, HighPerformanceRegionIsSmall) {
  // The motivation for top-alpha modeling: configurations within 1.25x of
  // the sampled best should be a small minority.
  util::Rng rng(2);
  auto atax = make_atax();
  std::vector<double> times;
  times.reserve(2000);
  for (int i = 0; i < 2000; ++i) {
    times.push_back(atax->base_time(atax->space().random_config(rng)));
  }
  const double best = *std::min_element(times.begin(), times.end());
  int good = 0;
  for (double t : times) {
    if (t < 1.25 * best) ++good;
  }
  EXPECT_LT(good, 400);  // < 20% of the space near-optimal
}

}  // namespace
}  // namespace pwu::workloads::spapt
