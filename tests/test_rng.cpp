#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace pwu::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng rng(0);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 50; ++i) values.insert(rng.next_u64());
  EXPECT_GT(values.size(), 45u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(13);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(42, 42), 42);
  }
}

TEST(Rng, IndexStaysBelowBound) {
  Rng rng(15);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_LT(rng.index(17), 17u);
  }
}

TEST(Rng, IndexIsApproximatelyUniform) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) ++counts[rng.index(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), draws / 10.0, draws * 0.01);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(21);
  int hits = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / draws, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  double sum = 0.0, sq = 0.0;
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / draws, 0.0, 0.03);
  EXPECT_NEAR(sq / draws, 1.0, 0.05);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(25);
  double sum = 0.0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / draws, 10.0, 0.1);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(27);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
  }
}

TEST(Rng, MeanOneLognormal) {
  // exp(N(-s^2/2, s)) has expectation 1 — the noise model relies on this.
  Rng rng(29);
  const double sigma = 0.3;
  double sum = 0.0;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) {
    sum += rng.lognormal(-0.5 * sigma * sigma, sigma);
  }
  EXPECT_NEAR(sum / draws, 1.0, 0.01);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(31);
  Rng child1 = parent.fork();
  Rng child2 = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.next_u64() == child2.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(33);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(35);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  const std::vector<int> original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(37);
  for (std::size_t k : {1u, 5u, 50u, 99u, 100u}) {
    auto sample = rng.sample_without_replacement(100, k);
    EXPECT_EQ(sample.size(), k);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), k);
    for (std::size_t idx : sample) EXPECT_LT(idx, 100u);
  }
}

TEST(Rng, SampleWithoutReplacementRejectsOversizedK) {
  Rng rng(39);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(Rng, SampleWithoutReplacementIsUniform) {
  // Each element of a population of 20 should appear in a k=5 sample with
  // probability 1/4.
  Rng rng(41);
  std::vector<int> counts(20, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (std::size_t idx : rng.sample_without_replacement(20, 5)) {
      ++counts[idx];
    }
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.25, 0.02);
  }
}

TEST(Rng, BootstrapIndicesShapeAndRange) {
  Rng rng(43);
  auto boot = rng.bootstrap_indices(50);
  EXPECT_EQ(boot.size(), 50u);
  for (std::size_t idx : boot) EXPECT_LT(idx, 50u);
}

TEST(Rng, BootstrapHasRepeats) {
  // A bootstrap of n = 100 leaves ~36.8% of elements out; repeats are near
  // certain.
  Rng rng(45);
  auto boot = rng.bootstrap_indices(100);
  std::set<std::size_t> unique(boot.begin(), boot.end());
  EXPECT_LT(unique.size(), 100u);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(47);
  const std::vector<double> weights = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  const int draws = 30000;
  for (int i = 0; i < draws; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / draws, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / draws, 0.75, 0.02);
}

TEST(Rng, WeightedIndexRejectsBadWeights) {
  Rng rng(49);
  const std::vector<double> zero = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zero), std::invalid_argument);
  const std::vector<double> negative = {1.0, -1.0};
  EXPECT_THROW(rng.weighted_index(negative), std::invalid_argument);
}

}  // namespace
}  // namespace pwu::util
