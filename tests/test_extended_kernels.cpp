// Behaviour of the six extended SPAPT kernel simulators (the problems the
// paper's evaluation skipped), mirroring test_spapt_models.cpp's style.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "workloads/registry.hpp"
#include "workloads/spapt/spapt_common.hpp"

namespace pwu::workloads::spapt {
namespace {

space::Configuration uniform_level(const space::ParameterSpace& s,
                                   std::size_t level) {
  std::vector<std::uint32_t> levels(s.num_params());
  for (std::size_t i = 0; i < s.num_params(); ++i) {
    levels[i] = static_cast<std::uint32_t>(
        std::min<std::size_t>(level, s.param(i).num_levels() - 1));
  }
  return space::Configuration(std::move(levels));
}

space::Configuration with_param(const space::ParameterSpace& s,
                                space::Configuration base,
                                const std::string& name, std::uint32_t level) {
  base.set_level(s.index_of(name), level);
  return base;
}

TEST(ExtendedKernels, ParameterCounts) {
  EXPECT_EQ(make_trmm()->space().num_params(), 14u);
  EXPECT_EQ(make_syrk()->space().num_params(), 13u);
  EXPECT_EQ(make_syr2k()->space().num_params(), 14u);
  EXPECT_EQ(make_fdtd()->space().num_params(), 11u);
  EXPECT_EQ(make_stencil3d()->space().num_params(), 12u);
  EXPECT_EQ(make_covariance()->space().num_params(), 18u);
}

TEST(ExtendedKernels, TrmmCheaperThanEquivalentDenseMm) {
  // The triangle halves the work: at comparable problem sizes and a shared
  // mid-range configuration, trmm should be clearly cheaper than the dense
  // product of its own size class.
  auto trmm = make_trmm();
  const auto c = uniform_level(trmm->space(), 3);
  auto syrk = make_syrk();
  const auto c2 = uniform_level(syrk->space(), 3);
  // Equal N (950) and both triangular: times in the same ballpark.
  const double ratio = trmm->base_time(c) / syrk->base_time(c2);
  EXPECT_GT(ratio, 0.2);
  EXPECT_LT(ratio, 5.0);
}

TEST(ExtendedKernels, SyrkSharedPanelRewardsSquareTiles) {
  auto syrk = make_syrk();
  const auto& s = syrk->space();
  // ti == tj shares the A panel between row/column access (see model);
  // compare against a config differing only by a mismatched tj one level
  // up, with everything else identical.
  space::Configuration square = uniform_level(s, 3);
  space::Configuration skewed = with_param(s, square, "T2", 4);
  // The skewed variant pays the doubled panel share; it must not be
  // cheaper than the square one by more than its tile-size advantage, and
  // typically is more expensive.
  EXPECT_LT(syrk->base_time(square), syrk->base_time(skewed) * 1.2);
}

TEST(ExtendedKernels, Syr2kMoreBandwidthBoundThanSyrk) {
  // Streaming two matrices instead of one: at an untiled (cache-hostile)
  // config, syr2k's slowdown relative to its own best should exceed
  // syrk's.
  auto syrk = make_syrk();
  auto syr2k = make_syr2k();
  auto spread = [&](Workload& w) {
    util::Rng rng(1);
    double best = 1e300, worst = 0.0;
    for (int i = 0; i < 400; ++i) {
      const double t = w.base_time(w.space().random_config(rng));
      best = std::min(best, t);
      worst = std::max(worst, t);
    }
    return worst / best;
  };
  EXPECT_GT(spread(*syr2k), 0.5 * spread(*syrk));  // same order of spread
}

TEST(ExtendedKernels, FdtdMatchingPhaseTilesWin) {
  auto fdtd = make_fdtd();
  const auto& s = fdtd->space();
  // Matched phase tiles (all level 2 = 32) keep hz resident between
  // phases; mismatching only the second phase's tiles loses that.
  space::Configuration matched = uniform_level(s, 2);
  space::Configuration mismatched = with_param(s, matched, "T3", 4);
  mismatched = with_param(s, mismatched, "T4", 4);
  EXPECT_LT(fdtd->base_time(matched), fdtd->base_time(mismatched));
}

TEST(ExtendedKernels, FdtdUntiledPaysStreamingCost) {
  auto fdtd = make_fdtd();
  const auto& s = fdtd->space();
  space::Configuration tiled = uniform_level(s, 2);    // 32x32 tiles
  space::Configuration untiled = uniform_level(s, 2);
  for (const char* t : {"T1", "T2", "T3", "T4"}) {
    untiled = with_param(s, untiled, t, 0);            // tile size 1
  }
  EXPECT_GT(fdtd->base_time(untiled), fdtd->base_time(tiled));
}

TEST(ExtendedKernels, Stencil3dPlaneBlockingMatters) {
  auto st = make_stencil3d();
  const auto& s = st->space();
  // Moderate (i,j) tiles shrink the three-plane working set; full-size
  // tiles (512 > N=200) spill it.
  space::Configuration blocked = uniform_level(s, 2);   // 32
  space::Configuration unblocked = uniform_level(s, 6); // 512 (clamped to N)
  EXPECT_LT(st->base_time(blocked), st->base_time(unblocked));
}

TEST(ExtendedKernels, Stencil3dTinyTilesPayHaloOverhead) {
  auto st = make_stencil3d();
  const auto& s = st->space();
  space::Configuration moderate = uniform_level(s, 2);
  space::Configuration tiny = uniform_level(s, 0);  // all tiles 1
  EXPECT_GT(st->base_time(tiny), st->base_time(moderate));
}

TEST(ExtendedKernels, CovarianceCheaperThanCorrelation) {
  // Same problem size (900); covariance skips the stddev sweep, so at a
  // matched mid-range configuration it should not exceed correlation.
  auto cov = make_covariance();
  auto corr = make_correlation();
  const auto c_cov = uniform_level(cov->space(), 3);
  const auto c_corr = uniform_level(corr->space(), 3);
  EXPECT_LT(cov->base_time(c_cov), corr->base_time(c_corr) * 1.5);
}

TEST(ExtendedKernels, AllHaveInteriorStructure) {
  // Each extended kernel's best sampled config must beat both the all-min
  // and all-max corner configs — i.e. the optimum is interior, the
  // defining property of a non-trivial tuning problem.
  util::Rng rng(2);
  for (const auto& name : extended_kernel_names()) {
    auto w = make_workload(name);
    const auto& s = w->space();
    double best_random = 1e300;
    for (int i = 0; i < 600; ++i) {
      best_random =
          std::min(best_random, w->base_time(s.random_config(rng)));
    }
    const double corner_lo = w->base_time(uniform_level(s, 0));
    const double corner_hi = w->base_time(uniform_level(s, 6));
    EXPECT_LT(best_random, corner_lo) << name;
    EXPECT_LT(best_random, corner_hi) << name;
  }
}

}  // namespace
}  // namespace pwu::workloads::spapt
