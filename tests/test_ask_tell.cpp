// AskTellSession — state-machine semantics of the inverted Algorithm 1,
// checkpoint/resume bit-identity, and the subsystem's acceptance property:
// a session driven via ask/tell for >= 50 samples reproduces the exact
// training set of the equivalent core::ActiveLearner::run.

#include "service/ask_tell_session.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "core/active_learner.hpp"
#include "core/metrics.hpp"
#include "core/sampling_strategy.hpp"
#include "workloads/synthetic.hpp"

namespace pwu::service {
namespace {

class AskTellSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload_ = workloads::make_quadratic_bowl(4, 8, 0.1, /*noisy=*/true);
    util::Rng rng(11);
    const auto split =
        space::make_pool_split(workload_->space(), 300, 0, rng);
    pool_ = split.pool;
  }

  core::LearnerConfig small_config() {
    core::LearnerConfig cfg;
    cfg.n_init = 8;
    cfg.n_batch = 2;
    cfg.n_max = 24;
    cfg.forest.num_trees = 10;
    return cfg;
  }

  /// Plays the client role: measures every asked candidate and tells the
  /// label back, in ask order.
  void drive_to_completion(AskTellSession& session, util::Rng& measure_rng) {
    while (!session.done()) {
      for (const Candidate& c : session.ask()) {
        session.tell(c.config, workload_->measure(c.config, measure_rng, 1));
      }
    }
  }

  workloads::WorkloadPtr workload_;
  std::vector<space::Configuration> pool_;
};

TEST_F(AskTellSessionTest, ColdStartPhaseAndFirstAsk) {
  AskTellSession session(workload_->space(), StrategySpec{}, small_config(),
                         pool_, /*seed=*/5);
  EXPECT_EQ(session.phase(), SessionPhase::ColdStart);
  EXPECT_EQ(session.num_labeled(), 0u);
  EXPECT_EQ(session.model(), nullptr);

  const auto batch = session.ask();
  ASSERT_EQ(batch.size(), 8u);  // n_init uniform picks
  EXPECT_EQ(session.phase(), SessionPhase::AwaitingTells);
  for (const Candidate& c : batch) {
    EXPECT_FALSE(c.has_prediction);  // no surrogate yet
    EXPECT_EQ(c.iteration, 0u);
  }
}

TEST_F(AskTellSessionTest, AskWhileBatchOutstandingThrows) {
  AskTellSession session(workload_->space(), StrategySpec{}, small_config(),
                         pool_, 5);
  (void)session.ask();
  EXPECT_THROW(session.ask(), std::logic_error);
}

TEST_F(AskTellSessionTest, TellOfUnknownConfigurationThrows) {
  AskTellSession session(workload_->space(), StrategySpec{}, small_config(),
                         pool_, 5);
  EXPECT_THROW(session.tell(pool_.front(), 1.0), std::invalid_argument);
}

TEST_F(AskTellSessionTest, BatchCompletionMakesRefitDue) {
  AskTellSession session(workload_->space(), StrategySpec{}, small_config(),
                         pool_, 5);
  util::Rng measure_rng(77);
  const auto batch = session.ask();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const bool completed = session.tell(
        batch[i].config,
        workload_->measure(batch[i].config, measure_rng, 1));
    EXPECT_EQ(completed, i + 1 == batch.size());
  }
  EXPECT_TRUE(session.refit_due());
  EXPECT_EQ(session.phase(), SessionPhase::Ready);
  EXPECT_TRUE(session.refit());
  EXPECT_FALSE(session.refit_due());
  ASSERT_NE(session.model(), nullptr);
  EXPECT_TRUE(session.model()->fitted());
}

TEST_F(AskTellSessionTest, StrategyBatchesCarryPredictions) {
  AskTellSession session(workload_->space(), StrategySpec{}, small_config(),
                         pool_, 5);
  util::Rng measure_rng(77);
  for (const Candidate& c : session.ask()) {
    session.tell(c.config, workload_->measure(c.config, measure_rng, 1));
  }
  const auto batch = session.ask();  // refits implicitly, then selects
  ASSERT_EQ(batch.size(), 2u);       // n_batch
  for (const Candidate& c : batch) {
    EXPECT_TRUE(c.has_prediction);
    EXPECT_GE(c.predicted_stddev, 0.0);
    EXPECT_EQ(c.iteration, 1u);
    EXPECT_TRUE(std::isfinite(c.predicted_mean));
  }
}

TEST_F(AskTellSessionTest, RunsToBudgetWithExactAccounting) {
  const auto cfg = small_config();
  AskTellSession session(workload_->space(), StrategySpec{}, cfg, pool_, 5);
  util::Rng measure_rng(77);
  drive_to_completion(session, measure_rng);
  EXPECT_EQ(session.phase(), SessionPhase::Done);
  EXPECT_EQ(session.num_labeled(), cfg.n_max);
  EXPECT_EQ(session.train_configs().size(), cfg.n_max);
  EXPECT_EQ(session.train_labels().size(), cfg.n_max);
  EXPECT_EQ(session.pool_remaining(), pool_.size() - cfg.n_max);
  // cold start carries no selection records; every strategy pick does
  EXPECT_EQ(session.selections().size(), cfg.n_max - cfg.n_init);
  EXPECT_GT(session.cumulative_cost(), 0.0);
  EXPECT_TRUE(std::isfinite(session.best_observed()));
  EXPECT_TRUE(session.ask().empty());  // done sessions hand out nothing
}

TEST_F(AskTellSessionTest, ExplicitAskCountOverridesBatchSize) {
  AskTellSession session(workload_->space(), StrategySpec{}, small_config(),
                         pool_, 5);
  util::Rng measure_rng(77);
  for (const Candidate& c : session.ask()) {
    session.tell(c.config, workload_->measure(c.config, measure_rng, 1));
  }
  EXPECT_EQ(session.ask(5).size(), 5u);
}

TEST_F(AskTellSessionTest, PoolSmallerThanColdStartThrows) {
  auto cfg = small_config();
  std::vector<space::Configuration> tiny(pool_.begin(), pool_.begin() + 4);
  EXPECT_THROW(
      AskTellSession(workload_->space(), StrategySpec{}, cfg, tiny, 5),
      std::invalid_argument);
}

TEST_F(AskTellSessionTest, SaveRequiresOwnedStrategy) {
  const auto strategy = core::make_strategy("pwu", 0.05);
  AskTellSession session(workload_->space(), *strategy, small_config(),
                         pool_, /*warm_start=*/nullptr, 5);
  std::ostringstream os;
  EXPECT_THROW(session.save(os), std::logic_error);
}

TEST_F(AskTellSessionTest, CheckpointResumeContinuesBitIdentically) {
  const auto cfg = small_config();
  AskTellSession live(workload_->space(), StrategySpec{}, cfg, pool_, 5);
  util::Rng measure_rng(77);

  // Label half the budget, then checkpoint with no batch outstanding.
  while (live.num_labeled() < cfg.n_max / 2) {
    for (const Candidate& c : live.ask()) {
      live.tell(c.config, workload_->measure(c.config, measure_rng, 1));
    }
  }
  live.refit();
  std::stringstream ckpt;
  live.save(ckpt);
  AskTellSession resumed = AskTellSession::restore(workload_->space(), ckpt);
  EXPECT_EQ(resumed.num_labeled(), live.num_labeled());
  EXPECT_EQ(resumed.pool_remaining(), live.pool_remaining());
  EXPECT_EQ(resumed.iteration(), live.iteration());

  // Both finish from the same measurement stream position.
  util::Rng measure_rng_resumed = measure_rng;
  drive_to_completion(live, measure_rng);
  drive_to_completion(resumed, measure_rng_resumed);

  EXPECT_EQ(live.train_labels(), resumed.train_labels());
  EXPECT_EQ(live.train_configs().size(), resumed.train_configs().size());
  for (std::size_t i = 0; i < live.train_configs().size(); ++i) {
    EXPECT_EQ(live.train_configs()[i], resumed.train_configs()[i]) << i;
  }
  EXPECT_EQ(live.cumulative_cost(), resumed.cumulative_cost());
}

TEST_F(AskTellSessionTest, CheckpointWithPendingBatchRoundTrips) {
  const auto cfg = small_config();
  AskTellSession live(workload_->space(), StrategySpec{}, cfg, pool_, 5);
  util::Rng measure_rng(77);
  const auto batch = live.ask();
  // Tell half of the cold start, then save mid-batch.
  for (std::size_t i = 0; i < batch.size() / 2; ++i) {
    live.tell(batch[i].config,
              workload_->measure(batch[i].config, measure_rng, 1));
  }
  std::stringstream ckpt;
  live.save(ckpt);
  AskTellSession resumed = AskTellSession::restore(workload_->space(), ckpt);
  EXPECT_EQ(resumed.pending_count(), live.pending_count());
  EXPECT_EQ(resumed.phase(), SessionPhase::AwaitingTells);

  util::Rng measure_rng_resumed = measure_rng;
  for (std::size_t i = batch.size() / 2; i < batch.size(); ++i) {
    live.tell(batch[i].config,
              workload_->measure(batch[i].config, measure_rng, 1));
    resumed.tell(batch[i].config,
                 workload_->measure(batch[i].config, measure_rng_resumed, 1));
  }
  drive_to_completion(live, measure_rng);
  drive_to_completion(resumed, measure_rng_resumed);
  EXPECT_EQ(live.train_labels(), resumed.train_labels());
}

TEST_F(AskTellSessionTest, RestoreRejectsGarbage) {
  std::istringstream bad("not a checkpoint");
  EXPECT_THROW(AskTellSession::restore(workload_->space(), bad),
               std::runtime_error);
}

// ---- Acceptance property: ask/tell == batch driver, >= 50 samples. ----

TEST(AskTellEquivalence, FiftyPlusSamplesMatchActiveLearnerRun) {
  const auto workload =
      workloads::make_quadratic_bowl(4, 8, 0.1, /*noisy=*/true);
  core::LearnerConfig cfg;
  cfg.n_init = 10;
  cfg.n_batch = 1;
  cfg.n_max = 52;
  cfg.forest.num_trees = 12;
  cfg.eval_every = cfg.n_max;  // evaluation density is irrelevant here

  // Canonical derivation (mirrors core::run_experiment's first repeat).
  util::Rng master(29);
  util::Rng split_rng = master.fork();
  const auto split =
      space::make_pool_split(workload->space(), 400, 100, split_rng);
  const core::TestSet test =
      core::build_test_set(*workload, split.test, split_rng);
  util::Rng run_rng = master.fork();
  util::Rng run_rng_batch = run_rng;  // same stream for the batch driver

  // Service side: the session draws (session_seed, measure_seed) exactly
  // as ActiveLearner::run does from its rng argument.
  const std::uint64_t session_seed = run_rng.next_u64();
  util::Rng measure_rng(run_rng.next_u64());
  AskTellSession session(workload->space(), StrategySpec{"pwu", 0.05}, cfg,
                         split.pool, session_seed);
  std::size_t told = 0;
  while (!session.done()) {
    for (const Candidate& c : session.ask()) {
      session.tell(c.config, workload->measure(c.config, measure_rng, 1));
      ++told;
    }
    session.refit();
  }
  ASSERT_GE(told, 50u);

  // Batch side: one ActiveLearner::run from the pristine stream copy.
  const core::ActiveLearner learner(*workload, cfg);
  const core::LearnerResult batch = learner.run(
      *core::make_strategy("pwu", 0.05), split.pool, test, run_rng_batch);

  ASSERT_EQ(batch.train_configs.size(), session.train_configs().size());
  for (std::size_t i = 0; i < batch.train_configs.size(); ++i) {
    EXPECT_EQ(batch.train_configs[i], session.train_configs()[i]) << i;
  }
  EXPECT_EQ(batch.train_labels, session.train_labels());
}

}  // namespace
}  // namespace pwu::service
