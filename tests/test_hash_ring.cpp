// HashRing — the properties the router's placement and failover logic
// rely on (see the header contract): deterministic placement, bounded
// spread, minimal remapping on membership change, and the distinct-owner
// failover order.

#include "router/hash_ring.hpp"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace pwu::router {
namespace {

std::vector<std::string> make_keys(std::size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back("session-" + std::to_string(i));
  }
  return keys;
}

HashRing make_ring(std::size_t shards, std::size_t vnodes = 128) {
  HashRing ring(vnodes);
  for (std::size_t i = 0; i < shards; ++i) {
    ring.add("shard-" + std::to_string(i));
  }
  return ring;
}

TEST(Fnv1a64, MatchesReferenceVectors) {
  // Published FNV-1a 64 test vectors — the ring must hash identically on
  // every platform, which std::hash does not guarantee.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(HashRing, PlacementIsDeterministicAcrossInstances) {
  const HashRing a = make_ring(5);
  const HashRing b = make_ring(5);
  for (const std::string& key : make_keys(2000)) {
    EXPECT_EQ(a.owner(key), b.owner(key)) << key;
  }
}

TEST(HashRing, InsertionOrderDoesNotAffectPlacement) {
  HashRing forward(64);
  HashRing backward(64);
  const std::vector<std::string> members = {"a", "b", "c", "d"};
  for (const std::string& m : members) forward.add(m);
  for (auto it = members.rbegin(); it != members.rend(); ++it) {
    backward.add(*it);
  }
  for (const std::string& key : make_keys(1000)) {
    EXPECT_EQ(forward.owner(key), backward.owner(key)) << key;
  }
}

TEST(HashRing, SpreadStaysNearTheMean) {
  // 128 vnodes keeps every shard within a modest factor of the mean — the
  // property that makes "re-home onto the ring owner" a balanced policy.
  const HashRing ring = make_ring(4);
  const auto keys = make_keys(20000);
  std::map<std::string, std::size_t> counts;
  for (const std::string& key : keys) counts[ring.owner(key)] += 1;
  ASSERT_EQ(counts.size(), 4u);
  const double mean = static_cast<double>(keys.size()) / 4.0;
  for (const auto& [shard, count] : counts) {
    EXPECT_GT(count, 0.5 * mean) << shard;
    EXPECT_LT(count, 1.6 * mean) << shard;
  }
}

TEST(HashRing, RemovingAShardOnlyMovesItsOwnKeys) {
  HashRing ring = make_ring(5);
  const auto keys = make_keys(5000);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = ring.owner(key);

  ASSERT_TRUE(ring.remove("shard-2"));
  std::size_t moved = 0;
  for (const std::string& key : keys) {
    const std::string& now = ring.owner(key);
    if (before[key] == "shard-2") {
      EXPECT_NE(now, "shard-2");
      ++moved;
    } else {
      // The failover guarantee: survivors' sessions never move.
      EXPECT_EQ(now, before[key]) << key;
    }
  }
  EXPECT_GT(moved, 0u);
}

TEST(HashRing, AddingAShardOnlyClaimsKeys) {
  HashRing ring = make_ring(4);
  const auto keys = make_keys(5000);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = ring.owner(key);

  ring.add("shard-new");
  for (const std::string& key : keys) {
    const std::string& now = ring.owner(key);
    // A key either stays put or moves to the new shard — never between
    // two old shards.
    if (now != before[key]) EXPECT_EQ(now, "shard-new") << key;
  }
}

TEST(HashRing, AddNodeIsDeterministicAcrossInstances) {
  // Growth is a pure function of (members, vnodes): two rings that grow
  // through add_node in different orders agree with a ring built whole.
  HashRing grown(64);
  for (int i = 3; i >= 0; --i) {
    EXPECT_TRUE(grown.add_node("shard-" + std::to_string(i)));
  }
  const HashRing built = make_ring(4, 64);
  for (const std::string& key : make_keys(2000)) {
    EXPECT_EQ(grown.owner(key), built.owner(key)) << key;
  }
}

TEST(HashRing, AddNodeReportsMembershipChange) {
  HashRing ring = make_ring(2);
  EXPECT_FALSE(ring.add_node("shard-0"));  // already a member — no-op
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_TRUE(ring.add_node("shard-2"));
  EXPECT_FALSE(ring.add_node("shard-2"));
  EXPECT_EQ(ring.size(), 3u);
}

TEST(HashRing, AddNodeKeepsSpreadNearTheMean) {
  // The grown ring must stay as balanced as one built at that size, or
  // live growth would concentrate load instead of relieving it.
  HashRing ring = make_ring(3);
  ASSERT_TRUE(ring.add_node("shard-3"));
  const auto keys = make_keys(20000);
  std::map<std::string, std::size_t> counts;
  for (const std::string& key : keys) counts[ring.owner(key)] += 1;
  ASSERT_EQ(counts.size(), 4u);
  const double mean = static_cast<double>(keys.size()) / 4.0;
  for (const auto& [shard, count] : counts) {
    EXPECT_GT(count, 0.5 * mean) << shard;
    EXPECT_LT(count, 1.6 * mean) << shard;
  }
}

TEST(HashRing, AddNodeMovesOnlyKeysTheNewShardClaims) {
  // The minimal-remap property migration rides on: the set of sessions to
  // transfer is exactly {key : owner(key) == new shard afterwards}; every
  // other placement is untouched, and the new shard claims a non-trivial
  // share.
  HashRing ring = make_ring(4);
  const auto keys = make_keys(5000);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = ring.owner(key);

  ASSERT_TRUE(ring.add_node("shard-4"));
  std::size_t claimed = 0;
  for (const std::string& key : keys) {
    const std::string& now = ring.owner(key);
    if (now != before[key]) {
      EXPECT_EQ(now, "shard-4") << key;
      ++claimed;
    }
  }
  EXPECT_GT(claimed, 0u);
  EXPECT_LT(claimed, keys.size() / 2);  // far less than a full reshuffle
}

TEST(HashRing, GrowThenShrinkRoundTripsToTheOriginalPlacement) {
  HashRing ring = make_ring(4);
  const auto keys = make_keys(2000);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = ring.owner(key);

  ASSERT_TRUE(ring.add_node("shard-grow"));
  ASSERT_TRUE(ring.remove("shard-grow"));
  for (const std::string& key : keys) {
    EXPECT_EQ(ring.owner(key), before[key]) << key;
  }
}

TEST(HashRing, RemoveThenReaddRestoresPlacement) {
  HashRing ring = make_ring(4);
  const auto keys = make_keys(1000);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = ring.owner(key);
  ASSERT_TRUE(ring.remove("shard-1"));
  ring.add("shard-1");
  for (const std::string& key : keys) {
    EXPECT_EQ(ring.owner(key), before[key]) << key;
  }
}

TEST(HashRing, OwnersGivesDistinctFailoverOrder) {
  const HashRing ring = make_ring(4);
  for (const std::string& key : make_keys(500)) {
    const auto order = ring.owners(key, 3);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], ring.owner(key));
    EXPECT_NE(order[0], order[1]);
    EXPECT_NE(order[0], order[2]);
    EXPECT_NE(order[1], order[2]);
  }
}

TEST(HashRing, OwnersPredictsFailoverTarget) {
  // owners(key, 2)[1] is the shard that inherits `key` when its owner
  // dies — the exact re-home target the router picks.
  HashRing ring = make_ring(4);
  for (const std::string& key : make_keys(500)) {
    const auto order = ring.owners(key, 2);
    ASSERT_EQ(order.size(), 2u);
    HashRing after = make_ring(4);
    ASSERT_TRUE(after.remove(order[0]));
    EXPECT_EQ(after.owner(key), order[1]) << key;
  }
}

TEST(HashRing, OwnersCapsAtMembership) {
  const HashRing ring = make_ring(2);
  const auto order = ring.owners("key", 5);
  EXPECT_EQ(order.size(), 2u);
}

TEST(HashRing, MembershipEdgeCases) {
  HashRing ring(16);
  EXPECT_TRUE(ring.empty());
  EXPECT_THROW(ring.owner("key"), std::logic_error);
  EXPECT_FALSE(ring.remove("ghost"));

  ring.add("only");
  ring.add("only");  // idempotent
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.owner("anything"), "only");
  EXPECT_TRUE(ring.contains("only"));

  EXPECT_TRUE(ring.remove("only"));
  EXPECT_TRUE(ring.empty());
  EXPECT_THROW(ring.owner("key"), std::logic_error);
}

TEST(HashRing, MembersListsSorted) {
  HashRing ring(8);
  ring.add("zeta");
  ring.add("alpha");
  ring.add("mid");
  const auto members = ring.members();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0], "alpha");
  EXPECT_EQ(members[1], "mid");
  EXPECT_EQ(members[2], "zeta");
}

}  // namespace
}  // namespace pwu::router
