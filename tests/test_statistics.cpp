#include "util/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace pwu::util {
namespace {

const std::vector<double> kSample = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};

TEST(Statistics, MeanOfKnownSample) { EXPECT_DOUBLE_EQ(mean(kSample), 5.0); }

TEST(Statistics, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Statistics, PopulationVarianceOfKnownSample) {
  EXPECT_DOUBLE_EQ(population_variance(kSample), 4.0);
}

TEST(Statistics, SampleVarianceUsesBesselCorrection) {
  EXPECT_NEAR(variance(kSample), 4.0 * 8.0 / 7.0, 1e-12);
}

TEST(Statistics, VarianceOfSingletonIsZero) {
  const std::vector<double> one = {3.0};
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
}

TEST(Statistics, StddevIsSqrtVariance) {
  EXPECT_DOUBLE_EQ(stddev(kSample), std::sqrt(variance(kSample)));
}

TEST(Statistics, MinMax) {
  EXPECT_DOUBLE_EQ(min_value(kSample), 2.0);
  EXPECT_DOUBLE_EQ(max_value(kSample), 9.0);
}

TEST(Statistics, MedianEvenCount) {
  EXPECT_DOUBLE_EQ(median(kSample), 4.5);
}

TEST(Statistics, MedianOddCount) {
  const std::vector<double> odd = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
}

TEST(Statistics, QuantileEndpoints) {
  EXPECT_DOUBLE_EQ(quantile(kSample, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(quantile(kSample, 1.0), 9.0);
}

TEST(Statistics, QuantileInterpolates) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
}

TEST(Statistics, QuantileClampsOutOfRangeQ) {
  EXPECT_DOUBLE_EQ(quantile(kSample, -1.0), 2.0);
  EXPECT_DOUBLE_EQ(quantile(kSample, 2.0), 9.0);
}

TEST(Statistics, RmsePerfectPredictionIsZero) {
  EXPECT_DOUBLE_EQ(rmse(kSample, kSample), 0.0);
}

TEST(Statistics, RmseKnownValue) {
  const std::vector<double> truth = {0.0, 0.0};
  const std::vector<double> pred = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(rmse(truth, pred), std::sqrt(12.5));
}

TEST(Statistics, RmseSizeMismatchThrows) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(rmse(a, b), std::invalid_argument);
}

TEST(Statistics, MaeKnownValue) {
  const std::vector<double> truth = {1.0, 2.0, 3.0};
  const std::vector<double> pred = {2.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(mae(truth, pred), 1.0);
}

TEST(Statistics, MapeSkipsZeroTruth) {
  const std::vector<double> truth = {0.0, 2.0};
  const std::vector<double> pred = {5.0, 3.0};
  EXPECT_DOUBLE_EQ(mape(truth, pred), 0.5);
}

TEST(Statistics, KendallTauPerfectAgreement) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(kendall_tau(a, a), 1.0);
}

TEST(Statistics, KendallTauPerfectDisagreement) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b = {4.0, 3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(kendall_tau(a, b), -1.0);
}

TEST(Statistics, KendallTauTinyInput) {
  const std::vector<double> a = {1.0};
  EXPECT_DOUBLE_EQ(kendall_tau(a, a), 0.0);
}

TEST(Statistics, PearsonLinearRelation) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
}

TEST(Statistics, PearsonConstantSideIsZero) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(pearson(a, b), 0.0);
}

TEST(Statistics, ArgsortIsAscendingAndStable) {
  const std::vector<double> v = {3.0, 1.0, 2.0, 1.0};
  const auto idx = argsort(v);
  ASSERT_EQ(idx.size(), 4u);
  EXPECT_EQ(idx[0], 1u);  // first 1.0 (stability)
  EXPECT_EQ(idx[1], 3u);  // second 1.0
  EXPECT_EQ(idx[2], 2u);
  EXPECT_EQ(idx[3], 0u);
}

TEST(Statistics, ArgminArgmax) {
  const std::vector<double> v = {3.0, -1.0, 7.0, 2.0};
  EXPECT_EQ(argmin(v), 1u);
  EXPECT_EQ(argmax(v), 2u);
  EXPECT_THROW(argmin(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(argmax(std::vector<double>{}), std::invalid_argument);
}

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats rs;
  for (double v : kSample) rs.add(v);
  EXPECT_EQ(rs.count(), kSample.size());
  EXPECT_NEAR(rs.mean(), mean(kSample), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(kSample), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats left, right, whole;
  for (std::size_t i = 0; i < kSample.size(); ++i) {
    (i < 3 ? left : right).add(kSample[i]);
    whole.add(kSample[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);  // empty right
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // empty left
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Statistics, SummarizeKnownSample) {
  const Summary s = summarize(kSample);
  EXPECT_EQ(s.count, kSample.size());
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
  EXPECT_LE(s.q25, s.median);
  EXPECT_LE(s.median, s.q75);
}

TEST(Statistics, SummarizeEmpty) {
  const Summary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

}  // namespace
}  // namespace pwu::util
