// Router — placement, aggregation, and the failover contract, driven
// entirely in-process (InProcessTransport shards) so every path runs in
// the fast suite. The kill-switch transport below injects the two
// connection-death shapes the multi-process chaos harness produces with
// real SIGKILLs:
//
//   kill-on-send  the request never reached the worker (crash before
//                 apply) — failover must *replay* it on the new home;
//   kill-on-recv  the worker applied (and auto-checkpointed) the request
//                 but the response was lost (crash mid-fit) — a success
//                 tell must be *synthesized*, never replayed.
//
// Equivalence oracle throughout: the response stream through the router —
// across shard deaths — must be bit-identical (modulo the "checkpoint"
// path field) to a plain serve loop on one healthy SessionManager.

#include "router/router.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "router/hash_ring.hpp"
#include "service/protocol.hpp"
#include "service/transport.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "workloads/registry.hpp"

namespace pwu::router {
namespace {

namespace json = util::json;
namespace fs = std::filesystem;

// ---- fixtures --------------------------------------------------------------

std::string fresh_dir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() / ("pwu_router_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Transport wrapper injecting deterministic connection death around an
/// owned in-process worker (auto-checkpointing every tell, like the real
/// pwu_serve workers the router spawns).
class KillSwitchTransport : public service::Transport {
 public:
  explicit KillSwitchTransport(const std::string& checkpoint_dir)
      : inner_(nullptr, service::ServiceLimits{}, checkpoint_dir, 1) {}

  /// Dies on the `nth` (1-based) send whose line contains `needle`,
  /// *before* the worker sees it.
  void arm_send_kill(std::string needle, int nth) {
    send_needle_ = std::move(needle);
    send_countdown_ = nth;
  }

  /// Applies the `nth` matching request but loses the response — the
  /// "crashed after the mutation, before the ack" shape.
  void arm_recv_kill(std::string needle, int nth) {
    recv_needle_ = std::move(needle);
    recv_countdown_ = nth;
  }

  void send(const std::string& line) override {
    if (dead_) throw service::TransportError("connection killed");
    if (send_countdown_ > 0 && line.find(send_needle_) != std::string::npos &&
        --send_countdown_ == 0) {
      dead_ = true;
      throw service::TransportError("connection killed on send");
    }
    const bool poison = recv_countdown_ > 0 &&
                        line.find(recv_needle_) != std::string::npos &&
                        --recv_countdown_ == 0;
    inner_.send(line);
    poison_.push_back(poison);
  }

  std::string recv() override {
    if (dead_) throw service::TransportError("connection killed");
    const bool poison = poison_.front();
    poison_.erase(poison_.begin());
    const std::string line = inner_.recv();
    if (poison) {
      dead_ = true;
      throw service::TransportError("connection killed on recv");
    }
    return line;
  }

  bool alive() const override { return !dead_; }

 private:
  service::InProcessTransport inner_;
  std::string send_needle_;
  int send_countdown_ = 0;
  std::string recv_needle_;
  int recv_countdown_ = 0;
  std::vector<bool> poison_;
  bool dead_ = false;
};

/// Two-shard router over kill-switch transports; the raw pointers stay
/// valid for arming (the Router owns the transports).
struct Fleet {
  std::unique_ptr<Router> router;
  KillSwitchTransport* t0 = nullptr;
  KillSwitchTransport* t1 = nullptr;
  std::string dir0;
  std::string dir1;
};

Fleet make_fleet(const std::string& tag, RouterOptions options = {}) {
  Fleet fleet;
  fleet.dir0 = fresh_dir(tag + "_s0");
  fleet.dir1 = fresh_dir(tag + "_s1");
  auto t0 = std::make_unique<KillSwitchTransport>(fleet.dir0);
  auto t1 = std::make_unique<KillSwitchTransport>(fleet.dir1);
  fleet.t0 = t0.get();
  fleet.t1 = t1.get();
  std::vector<ShardSpec> specs(2);
  specs[0].name = "s0";
  specs[0].transport = std::move(t0);
  specs[0].checkpoint_dir = fleet.dir0;
  specs[1].name = "s1";
  specs[1].transport = std::move(t1);
  specs[1].checkpoint_dir = fleet.dir1;
  fleet.router = std::make_unique<Router>(std::move(specs), options);
  return fleet;
}

/// The shard (by fleet slot) owning `session` under the default ring.
int owner_slot(const std::string& session) {
  HashRing ring;
  ring.add("s0");
  ring.add("s1");
  return ring.owner(session) == "s0" ? 0 : 1;
}

/// A session name owned by fleet slot `slot` ("s0" or "s1").
std::string session_on(int slot, int salt = 0) {
  for (int i = salt * 1000;; ++i) {
    const std::string name = "sess-" + std::to_string(i);
    if (owner_slot(name) == slot) return name;
  }
}

// ---- protocol helpers ------------------------------------------------------

json::Value create_request(const std::string& name, unsigned seed) {
  return json::parse(
      R"({"op":"create","session":")" + name +
      R"(","workload":"gesummv","n_init":6,"n_batch":2,"n_max":18,)"
      R"("trees":8,"pool_size":150,"seed":)" + std::to_string(seed) + "}");
}

json::Value session_request(const std::string& op, const std::string& name) {
  json::Object obj;
  obj.emplace("op", json::Value(op));
  obj.emplace("session", json::Value(name));
  return json::Value(std::move(obj));
}

json::Value tell_request(const std::string& name, const json::Value& levels,
                         double time) {
  json::Object obj;
  obj.emplace("op", json::Value("tell"));
  obj.emplace("session", json::Value(name));
  obj.emplace("levels", levels);
  obj.emplace("time", json::Value(time));
  return json::Value(std::move(obj));
}

/// Drops the "checkpoint" field (an absolute path that legitimately
/// differs across homes/runs) so streams compare bit-identically.
std::string canonical(json::Value response) {
  if (response.is_object()) response.as_object().erase("checkpoint");
  return response.dump();
}

/// One protocol round against any dispatcher, retrying structured
/// redirects (the touch itself is the re-home trigger).
template <typename Dispatch>
json::Value call(Dispatch&& dispatch, const json::Value& request) {
  for (int attempt = 0; attempt < 20; ++attempt) {
    json::Value response = dispatch(request);
    if (!response.bool_or("redirected", false)) return response;
  }
  ADD_FAILURE() << "request redirected 20 times: " << request.dump();
  return json::Value();
}

/// Drives one session to completion through `dispatch`, recording every
/// canonicalized response — the comparison stream.
template <typename Dispatch>
std::vector<std::string> drive(Dispatch&& dispatch, const std::string& name,
                               unsigned seed) {
  std::vector<std::string> stream;
  const json::Value created = call(dispatch, create_request(name, seed));
  EXPECT_TRUE(created.bool_or("ok", false)) << created.dump();
  stream.push_back(canonical(created));
  const auto workload = workloads::make_workload("gesummv");
  util::Rng measure_rng(
      std::stoull(created.at("measure_seed").as_string()));
  for (;;) {
    const json::Value batch = call(dispatch, session_request("ask", name));
    EXPECT_TRUE(batch.bool_or("ok", false)) << batch.dump();
    stream.push_back(canonical(batch));
    const json::Array& candidates = batch.at("candidates").as_array();
    if (candidates.empty()) break;
    for (const json::Value& candidate : candidates) {
      const auto config =
          service::configuration_from_json(candidate.at("levels"));
      const double t = workload->measure(config, measure_rng, 1);
      const json::Value told =
          call(dispatch, tell_request(name, candidate.at("levels"), t));
      EXPECT_TRUE(told.bool_or("ok", false)) << told.dump();
      stream.push_back(canonical(told));
    }
  }
  stream.push_back(canonical(call(dispatch, session_request("status", name))));
  return stream;
}

/// The oracle: the same session driven against a lone healthy manager.
std::vector<std::string> drive_direct(const std::string& name,
                                      unsigned seed) {
  service::SessionManager manager;
  return drive(
      [&](const json::Value& request) {
        return service::handle_request(manager, request);
      },
      name, seed);
}

std::vector<std::string> drive_router(Router& router, const std::string& name,
                                      unsigned seed) {
  return drive(
      [&](const json::Value& request) { return router.handle(request); },
      name, seed);
}

// ---- placement & equivalence ----------------------------------------------

TEST(Router, MatchesDirectServeBitExact) {
  Fleet fleet = make_fleet("equiv");
  const std::string name = session_on(0);
  const auto via_router = drive_router(*fleet.router, name, 42);
  const auto direct = drive_direct(name, 42);
  ASSERT_EQ(via_router.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(via_router[i], direct[i]) << "response " << i;
  }
  EXPECT_EQ(fleet.router->stats().failovers, 0u);
  EXPECT_EQ(fleet.router->sessions_tracked(), 1u);

  const json::Value closed =
      fleet.router->handle(session_request("close", name));
  EXPECT_TRUE(closed.bool_or("ok", false));
  EXPECT_EQ(fleet.router->sessions_tracked(), 0u);
}

TEST(Router, SessionsLandOnTheirRingOwners) {
  Fleet fleet = make_fleet("placement");
  const std::string on0 = session_on(0);
  const std::string on1 = session_on(1);
  ASSERT_TRUE(
      fleet.router->handle(create_request(on0, 1)).bool_or("ok", false));
  ASSERT_TRUE(
      fleet.router->handle(create_request(on1, 2)).bool_or("ok", false));
  // The worker-side auto-checkpoint directory tells us where each session
  // physically lives: the router's baseline checkpoint lands at the home.
  EXPECT_TRUE(fs::exists(fs::path(fleet.dir0) / (on0 + ".ckpt")));
  EXPECT_TRUE(fs::exists(fs::path(fleet.dir1) / (on1 + ".ckpt")));
  EXPECT_FALSE(fs::exists(fs::path(fleet.dir1) / (on0 + ".ckpt")));
}

// ---- failover: the three resolution shapes --------------------------------

TEST(Router, KillOnRecvMidTellSynthesizesTheLostAck) {
  // The worker applies and auto-checkpoints the tell, then "crashes"
  // before answering (the mid-fit kill). Replaying would double-apply;
  // the router must synthesize the ack from the resumed status — and the
  // synthesized line must be indistinguishable from the healthy one.
  Fleet fleet = make_fleet("synth");
  const std::string name = session_on(0);
  fleet.t0->arm_recv_kill(R"("op":"tell")", 5);

  const auto via_router = drive_router(*fleet.router, name, 7);
  const auto direct = drive_direct(name, 7);
  ASSERT_EQ(via_router.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(via_router[i], direct[i]) << "response " << i;
  }
  EXPECT_EQ(fleet.router->stats().failovers, 1u);
  EXPECT_EQ(fleet.router->stats().rehomes, 1u);
  EXPECT_EQ(fleet.router->stats().synthesized, 1u);
  EXPECT_EQ(fleet.router->stats().replays, 0u);
  EXPECT_FALSE(fleet.router->shard_up("s0"));
  EXPECT_TRUE(fleet.router->shard_up("s1"));
}

TEST(Router, KillOnSendMidTellReplaysTheUnappliedTell) {
  // Death *before* the worker saw the tell: nothing was applied, so the
  // replay on the new home is the first (and only) application.
  Fleet fleet = make_fleet("replay_tell");
  const std::string name = session_on(1);
  fleet.t1->arm_send_kill(R"("op":"tell")", 4);

  const auto via_router = drive_router(*fleet.router, name, 9);
  const auto direct = drive_direct(name, 9);
  ASSERT_EQ(via_router.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(via_router[i], direct[i]) << "response " << i;
  }
  EXPECT_EQ(fleet.router->stats().failovers, 1u);
  EXPECT_EQ(fleet.router->stats().synthesized, 0u);
  EXPECT_EQ(fleet.router->stats().replays, 1u);
}

TEST(Router, KillOnRecvMidAskReplaysBitIdentically) {
  // The dying worker consumed pool candidates serving the ask, but the
  // response was lost. Resume rolls the survivor back to the pre-ask
  // checkpoint, so the replay regenerates the *same* candidates.
  Fleet fleet = make_fleet("replay_ask");
  const std::string name = session_on(0);
  fleet.t0->arm_recv_kill(R"("op":"ask")", 3);

  const auto via_router = drive_router(*fleet.router, name, 11);
  const auto direct = drive_direct(name, 11);
  ASSERT_EQ(via_router.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(via_router[i], direct[i]) << "response " << i;
  }
  EXPECT_EQ(fleet.router->stats().failovers, 1u);
  EXPECT_EQ(fleet.router->stats().replays, 1u);
}

TEST(Router, ReplayLogRestoresOutstandingCandidatesAcrossFailover) {
  // An *acked* ask lives only in worker memory until the next tell
  // checkpoints it. Kill the shard after the ack (on a status probe): the
  // re-home must replay the logged ask so the client's outstanding
  // candidates are still tellable on the new home.
  Fleet fleet = make_fleet("replay_log");
  const std::string name = session_on(0);
  Router& router = *fleet.router;

  const json::Value created = router.handle(create_request(name, 21));
  ASSERT_TRUE(created.bool_or("ok", false));
  const json::Value batch = router.handle(session_request("ask", name));
  ASSERT_TRUE(batch.bool_or("ok", false));
  const json::Array candidates = batch.at("candidates").as_array();
  ASSERT_FALSE(candidates.empty());

  fleet.t0->arm_recv_kill(R"("op":"status")", 1);
  const json::Value status = router.handle(session_request("status", name));
  ASSERT_TRUE(status.bool_or("ok", false)) << status.dump();
  EXPECT_EQ(router.stats().failovers, 1u);
  EXPECT_EQ(router.stats().rehomes, 1u);
  // The replayed status must see the outstanding candidates.
  EXPECT_EQ(status.at("status").number_or("pending", -1.0),
            static_cast<double>(candidates.size()));

  // And the client can still tell every candidate it holds.
  const auto workload = workloads::make_workload("gesummv");
  util::Rng measure_rng(std::stoull(created.at("measure_seed").as_string()));
  for (const json::Value& candidate : candidates) {
    const auto config =
        service::configuration_from_json(candidate.at("levels"));
    const double t = workload->measure(config, measure_rng, 1);
    const json::Value told =
        router.handle(tell_request(name, candidate.at("levels"), t));
    EXPECT_TRUE(told.bool_or("ok", false)) << told.dump();
  }
}

TEST(Router, ReplayDisabledAnswersRedirectedAndRecovers) {
  RouterOptions options;
  options.replay_in_flight = false;
  options.retry_after_ms = 25;
  Fleet fleet = make_fleet("redirect", options);
  const std::string name = session_on(0);
  Router& router = *fleet.router;

  ASSERT_TRUE(router.handle(create_request(name, 3)).bool_or("ok", false));
  fleet.t0->arm_send_kill(R"("op":"ask")", 1);
  const json::Value redirected = router.handle(session_request("ask", name));
  EXPECT_FALSE(redirected.bool_or("ok", true));
  EXPECT_TRUE(redirected.bool_or("redirected", false));
  EXPECT_EQ(redirected.number_or("retry_after_ms", 0.0), 25.0);
  EXPECT_GE(router.stats().redirects, 1u);

  // The session was already re-homed during failover; the client's retry
  // succeeds on the survivor.
  const json::Value retried = router.handle(session_request("ask", name));
  EXPECT_TRUE(retried.bool_or("ok", false)) << retried.dump();
  EXPECT_EQ(router.parked_sessions(), 0u);
}

TEST(Router, TotalFleetLossParksSessionsAndRefusesCreates) {
  Fleet fleet = make_fleet("loss");
  const std::string name = session_on(0);
  Router& router = *fleet.router;
  ASSERT_TRUE(router.handle(create_request(name, 5)).bool_or("ok", false));

  // Both shards die: the in-flight request's failover cascades through
  // the survivor when the re-home attempt hits it.
  fleet.t0->arm_send_kill(R"("op":"ask")", 1);
  fleet.t1->arm_send_kill(R"("op":"resume")", 1);
  const json::Value response = router.handle(session_request("ask", name));
  EXPECT_FALSE(response.bool_or("ok", true));
  EXPECT_TRUE(response.bool_or("redirected", false)) << response.dump();
  EXPECT_EQ(router.parked_sessions(), 1u);
  EXPECT_TRUE(router.ring().empty());

  // Parked sessions keep answering redirected — never "unknown session".
  const json::Value again = router.handle(session_request("status", name));
  EXPECT_TRUE(again.bool_or("redirected", false));
  // New sessions are refused outright: there is nowhere to place them.
  const json::Value refused = router.handle(create_request("other", 6));
  EXPECT_FALSE(refused.bool_or("ok", true));
  EXPECT_NE(refused.string_or("error", "").find("all shards are down"),
            std::string::npos);
}

// ---- aggregation ----------------------------------------------------------

TEST(Router, HealthAggregatesShardsRingAndCounters) {
  Fleet fleet = make_fleet("health");
  const std::string name = session_on(0);
  ASSERT_TRUE(
      fleet.router->handle(create_request(name, 1)).bool_or("ok", false));

  const json::Value response =
      fleet.router->handle(json::parse(R"({"op":"health"})"));
  ASSERT_TRUE(response.bool_or("ok", false));
  const json::Value& health = response.at("health");
  EXPECT_EQ(health.string_or("role", ""), "router");
  EXPECT_EQ(health.at("ring").number_or("vnodes", 0.0), 128.0);
  EXPECT_EQ(health.at("ring").at("members").as_array().size(), 2u);
  EXPECT_EQ(health.number_or("sessions_tracked", -1.0), 1.0);
  EXPECT_EQ(health.number_or("sessions_parked", -1.0), 0.0);

  const json::Array& shards = health.at("shards").as_array();
  ASSERT_EQ(shards.size(), 2u);
  double homed = 0.0;
  for (const json::Value& shard : shards) {
    EXPECT_EQ(shard.string_or("state", ""), "up");
    // Each up shard embeds its worker's own health report.
    EXPECT_TRUE(shard.at("worker").is_object()) << shard.dump();
    homed += shard.number_or("sessions", 0.0);
  }
  EXPECT_EQ(homed, 1.0);
  EXPECT_TRUE(health.at("counters").has("failovers"));
  EXPECT_TRUE(health.at("counters").has("synthesized"));
}

TEST(Router, HealthReportsDeadShardDown) {
  Fleet fleet = make_fleet("health_down");
  const std::string name = session_on(0);
  ASSERT_TRUE(
      fleet.router->handle(create_request(name, 1)).bool_or("ok", false));
  fleet.t0->arm_send_kill(R"("op":"status")", 1);
  ASSERT_TRUE(fleet.router->handle(session_request("status", name))
                  .bool_or("ok", false));

  const json::Value response =
      fleet.router->handle(json::parse(R"({"op":"health"})"));
  const json::Array& shards = response.at("health").at("shards").as_array();
  ASSERT_EQ(shards.size(), 2u);
  for (const json::Value& shard : shards) {
    const bool is_dead = shard.string_or("shard", "") == "s0";
    EXPECT_EQ(shard.string_or("state", ""), is_dead ? "down" : "up");
    if (is_dead) {
      EXPECT_EQ(shard.number_or("rehomed_away", -1.0), 1.0);
      EXPECT_FALSE(shard.has("worker"));
    }
  }
  EXPECT_EQ(response.at("health").at("ring").at("members").as_array().size(),
            1u);
}

TEST(Router, ListMergesSessionsAcrossShards) {
  Fleet fleet = make_fleet("list");
  const std::string on0 = session_on(0);
  const std::string on1 = session_on(1);
  ASSERT_TRUE(
      fleet.router->handle(create_request(on0, 1)).bool_or("ok", false));
  ASSERT_TRUE(
      fleet.router->handle(create_request(on1, 2)).bool_or("ok", false));

  const json::Value response =
      fleet.router->handle(json::parse(R"({"op":"list"})"));
  ASSERT_TRUE(response.bool_or("ok", false));
  const json::Array& sessions = response.at("sessions").as_array();
  ASSERT_EQ(sessions.size(), 2u);
  std::vector<std::string> names;
  for (const json::Value& s : sessions) {
    names.push_back(s.string_or("session", ""));
  }
  EXPECT_NE(std::find(names.begin(), names.end(), on0), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), on1), names.end());
}

// ---- batches ---------------------------------------------------------------

TEST(Router, BatchMatchesSequentialHandling) {
  // Same requests through handle_batch on one fleet and handle() on a
  // twin: pipelining may change syscall shape, never responses.
  Fleet batched = make_fleet("batch_a");
  Fleet sequential = make_fleet("batch_b");
  const std::string on0 = session_on(0);
  const std::string on1 = session_on(1);

  std::vector<json::Value> requests;
  requests.push_back(create_request(on0, 31));
  requests.push_back(create_request(on1, 32));
  requests.push_back(session_request("ask", on0));
  requests.push_back(session_request("ask", on1));
  requests.push_back(session_request("status", on0));
  requests.push_back(session_request("status", on1));
  requests.push_back(json::parse(R"({"op":"nonsense"})"));

  const auto batch_responses = batched.router->handle_batch(requests);
  ASSERT_EQ(batch_responses.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(canonical(batch_responses[i]),
              canonical(sequential.router->handle(requests[i])))
        << "request " << i;
  }
}

TEST(Router, BatchResolvesUnansweredTailAfterMidWindowDeath) {
  // Two sessions pipelined onto one shard; the window dies on the first
  // response. The unanswered tail must still come back answered — via
  // re-home and replay — not as errors.
  Fleet fleet = make_fleet("batch_death");
  Fleet control = make_fleet("batch_ctrl");
  const std::string a = session_on(0, 1);
  const std::string b = session_on(0, 2);
  for (Fleet* f : {&fleet, &control}) {
    ASSERT_TRUE(f->router->handle(create_request(a, 41)).bool_or("ok", false));
    ASSERT_TRUE(f->router->handle(create_request(b, 42)).bool_or("ok", false));
  }
  fleet.t0->arm_recv_kill(R"("op":"ask")", 1);

  std::vector<json::Value> window;
  window.push_back(session_request("ask", a));
  window.push_back(session_request("ask", b));
  const auto responses = fleet.router->handle_batch(window);
  const auto expected = control.router->handle_batch(window);
  ASSERT_EQ(responses.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(canonical(responses[i]), canonical(expected[i]))
        << "slot " << i;
  }
  EXPECT_EQ(fleet.router->stats().failovers, 1u);
  EXPECT_EQ(fleet.router->stats().rehomes, 2u);
}

// ---- request plumbing ------------------------------------------------------

TEST(Router, RequestLevelErrorsAreStructured) {
  Fleet fleet = make_fleet("errors");
  const json::Value unknown =
      fleet.router->handle(json::parse(R"({"op":"warp"})"));
  EXPECT_FALSE(unknown.bool_or("ok", true));
  EXPECT_NE(unknown.string_or("error", "").find("unknown op"),
            std::string::npos);

  const json::Value no_session =
      fleet.router->handle(json::parse(R"({"op":"ask"})"));
  EXPECT_FALSE(no_session.bool_or("ok", true));

  // Worker-side errors pass through untouched.
  const json::Value missing =
      fleet.router->handle(session_request("status", "ghost"));
  EXPECT_FALSE(missing.bool_or("ok", true));
  EXPECT_FALSE(missing.has("redirected"));
}

TEST(Router, RunRouterLoopSpeaksTheLineProtocol) {
  Fleet fleet = make_fleet("loop");
  const std::string name = session_on(0);
  std::stringstream in;
  in << create_request(name, 51).dump() << "\n"
     << "\n"  // blank line: skipped, no response
     << "this is not json\n"
     << session_request("status", name).dump() << "\n"
     << R"({"op":"shutdown"})" << "\n"
     << session_request("status", name).dump() << "\n";  // after shutdown
  std::stringstream out;
  const std::size_t handled = run_router_loop(in, out, *fleet.router);
  EXPECT_EQ(handled, 4u);  // create, parse error, status, shutdown

  std::vector<json::Value> responses;
  std::string line;
  while (std::getline(out, line)) responses.push_back(json::parse(line));
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_TRUE(responses[0].bool_or("ok", false));
  EXPECT_FALSE(responses[1].bool_or("ok", true));  // parse error
  EXPECT_TRUE(responses[2].bool_or("ok", false));
  EXPECT_TRUE(responses[3].bool_or("shutdown", false));
}

}  // namespace
}  // namespace pwu::router
