// Cross-module edge cases that the per-module suites don't reach.

#include <gtest/gtest.h>

#include <cmath>

#include "core/active_learner.hpp"
#include "gp/gaussian_process.hpp"
#include "space/pool.hpp"
#include "util/ascii_chart.hpp"
#include "util/rng.hpp"
#include "workloads/synthetic.hpp"

namespace pwu {
namespace {

TEST(GpEdgeCases, DuplicateRowsTriggerJitterEscalation) {
  // Identical inputs with identical labels make the kernel matrix exactly
  // singular at zero noise; the fit must survive via jitter escalation.
  rf::Dataset train(1);
  for (int i = 0; i < 12; ++i) {
    train.add(std::vector<double>{1.0}, 2.0);
    train.add(std::vector<double>{3.0}, 4.0);
  }
  gp::GaussianProcess model;
  gp::GpConfig config;
  config.noise_variance = 1e-12;  // start from (nearly) no jitter
  EXPECT_NO_THROW(model.fit(train, config));
  EXPECT_NEAR(model.predict(std::vector<double>{1.0}), 2.0, 0.2);
}

TEST(GpEdgeCases, VarianceNearNoiseLevelAtTrainingPoints) {
  rf::Dataset train(1);
  util::Rng rng(1);
  for (int i = 0; i < 25; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    train.add(std::vector<double>{x}, x);
  }
  gp::GaussianProcess model;
  gp::GpConfig config;
  config.noise_variance = 1e-6;
  model.fit(train, config);
  // At an exact training input the posterior collapses toward the noise
  // floor — far below the prior variance.
  const auto at_train = model.predict_full(train.row(0));
  EXPECT_LT(at_train.variance, 0.05);
}

TEST(RngEdgeCases, UniformIntExtremes) {
  util::Rng rng(2);
  // Near-full-range bounds must not overflow.
  for (int i = 0; i < 100; ++i) {
    const std::int64_t v = rng.uniform_int(-1'000'000'000'000LL,
                                           1'000'000'000'000LL);
    EXPECT_GE(v, -1'000'000'000'000LL);
    EXPECT_LE(v, 1'000'000'000'000LL);
  }
  // Negative-only range.
  for (int i = 0; i < 100; ++i) {
    const std::int64_t v = rng.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(RngEdgeCases, SampleWithoutReplacementFullPopulation) {
  util::Rng rng(3);
  auto all = rng.sample_without_replacement(8, 8);
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(all[i], i);
}

TEST(LearnerEdgeCases, MeasurementRepetitionsFeedAveragedLabels) {
  // measure_repetitions = 35 (the paper's kernel protocol): labels are
  // run averages, so their deviation from the noiseless truth shrinks
  // relative to single-run labels; CC still sums the averaged labels.
  auto workload = workloads::make_quadratic_bowl(3, 8, 0.1, /*noisy=*/true);
  util::Rng rng(4);
  const auto split =
      space::make_pool_split(workload->space(), 200, 100, rng);
  const auto test = core::build_test_set(*workload, split.test, rng);

  auto run_with_reps = [&](int reps) {
    core::LearnerConfig cfg;
    cfg.n_init = 10;
    cfg.n_max = 30;
    cfg.forest.num_trees = 10;
    cfg.measure_repetitions = reps;
    core::ActiveLearner learner(*workload, cfg);
    util::Rng run_rng(5);
    return learner.run(*core::make_pwu(0.05), split.pool, test, run_rng);
  };
  const auto single = run_with_reps(1);
  const auto averaged = run_with_reps(35);

  auto label_noise = [&](const core::LearnerResult& r) {
    double acc = 0.0;
    for (std::size_t i = 0; i < r.train_configs.size(); ++i) {
      acc += std::abs(r.train_labels[i] -
                      workload->base_time(r.train_configs[i]));
    }
    return acc / static_cast<double>(r.train_configs.size());
  };
  EXPECT_LT(label_noise(averaged), label_noise(single));
  EXPECT_NEAR(averaged.trace.back().cumulative_cost,
              core::cumulative_cost(averaged.train_labels), 1e-9);
}

TEST(LearnerEdgeCases, ThreadPoolPathMatchesSerialPath) {
  auto workload = workloads::make_quadratic_bowl(3, 8, 0.1, true);
  util::Rng rng(6);
  const auto split =
      space::make_pool_split(workload->space(), 300, 100, rng);
  const auto test = core::build_test_set(*workload, split.test, rng);
  core::LearnerConfig cfg;
  cfg.n_init = 10;
  cfg.n_max = 25;
  cfg.forest.num_trees = 12;
  core::ActiveLearner learner(*workload, cfg);

  util::ThreadPool pool(3);
  util::Rng rng_a(7), rng_b(7);
  const auto serial =
      learner.run(*core::make_pwu(0.05), split.pool, test, rng_a, nullptr);
  const auto threaded =
      learner.run(*core::make_pwu(0.05), split.pool, test, rng_b, &pool);
  ASSERT_EQ(serial.train_configs.size(), threaded.train_configs.size());
  for (std::size_t i = 0; i < serial.train_configs.size(); ++i) {
    EXPECT_EQ(serial.train_configs[i], threaded.train_configs[i]);
  }
}

TEST(ChartEdgeCases, LogXAxisRenders) {
  util::ChartSeries s;
  s.label = "decade";
  s.marker = '*';
  for (int i = 0; i < 6; ++i) {
    s.x.push_back(std::pow(10.0, i));
    s.y.push_back(i);
  }
  util::ChartOptions opt;
  opt.log_x = true;
  const std::string out = util::render_chart({s}, opt);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(PoolEdgeCases, SplitOnBoundarySizedSpace) {
  // Space exactly equal to the requested sample count: enumeration path.
  space::ParameterSpace s;
  s.add(space::Parameter::int_range("a", 0, 9));
  s.add(space::Parameter::int_range("b", 0, 9));
  util::Rng rng(8);
  const auto split = space::make_pool_split(s, 70, 30, rng);
  EXPECT_EQ(split.pool.size() + split.test.size(), 100u);
}

}  // namespace
}  // namespace pwu
