// Fixture: the clean shape and the two justified shapes. clean_flush()
// serializes under the lock and writes after releasing it — nothing to
// report. The other two opens carry blocking-ok justifications in both
// accepted comment positions (trailing, and full-line covering the next
// line), which suppress rather than silence-by-accident.
#include <fstream>
#include <mutex>
#include <string>

namespace pwu {

class CleanJournalSink {
 public:
  void clean_flush(const std::string& path) {
    std::string image;
    {
      std::lock_guard<std::mutex> lock(clean_journal_mu_);
      image = std::to_string(seq_);
    }
    std::ofstream out(path);
    out << image;
  }

  void justified_flush_trailing(const std::string& path) {
    std::lock_guard<std::mutex> lock(clean_journal_mu_);
    std::ofstream out(path);  // pwu-lint: blocking-ok(fixture: single-writer sink, the lock only orders writers)
    out << seq_;
  }

  void justified_flush_full_line(const std::string& path) {
    std::lock_guard<std::mutex> lock(clean_journal_mu_);
    // pwu-lint: blocking-ok(fixture: the full-line form covers the open below)
    std::ofstream out(path);
    out << seq_;
  }

 private:
  std::mutex clean_journal_mu_;
  long seq_ = 0;
};

}  // namespace pwu
