// Fixture: the clean twin of replicate_write_hit.cpp. Every replication-
// path write happens under the checkpoint-write mutex — mirroring a
// record and committing a promoted shadow both serialize against the
// primary's checkpoint writers, so newest-wins ordering holds on disk. A
// write-mode stream outside a replication-path function is also fine.
#include <fstream>
#include <mutex>
#include <string>

namespace pwu {

namespace util {
void atomic_write_file(const std::string& path, const std::string& payload);
}  // namespace util

class CleanReplicaApplier {
 public:
  void apply_replicate_record(const std::string& path,
                              const std::string& image) {
    std::lock_guard<std::mutex> lock(replica_ckpt_write_mutex_);
    util::atomic_write_file(path, image);
    ++applied_;
  }

  void promote_shadow(const std::string& path, const std::string& image) {
    std::lock_guard<std::mutex> lock(replica_ckpt_write_mutex_);
    util::atomic_write_file(path, image);
  }

  // Not on the replication path: the rule must not reach past its name
  // gate, even for a bare write-mode stream open.
  void journal_note(const std::string& path) {
    std::ofstream out(path);
    out << applied_;
  }

 private:
  std::mutex replica_ckpt_write_mutex_;
  long applied_ = 0;
};

}  // namespace pwu
