// Fixture: blocking work under a held lock — all three shapes the rule
// classifies. Each method of JournalSink holds journal_mu_ across a
// blocking primitive: a file-stream open, a std::filesystem call, and a
// send on a *Transport class.
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>

namespace pwu {

class PipeFixtureTransport {
 public:
  void send_frame(int frame) { frames_ += frame; }

 private:
  int frames_ = 0;
};

class JournalSink {
 public:
  void journal_flush_now(const std::string& path) {
    std::lock_guard<std::mutex> lock(journal_mu_);
    std::ofstream out(path);
    out << seq_;
  }

  void journal_prune(const std::string& path) {
    std::lock_guard<std::mutex> lock(journal_mu_);
    std::filesystem::remove(path);
  }

  void journal_send_locked(int frame) {
    std::lock_guard<std::mutex> lock(journal_mu_);
    transport_.send_frame(frame);
  }

 private:
  std::mutex journal_mu_;
  PipeFixtureTransport transport_;
  long seq_ = 0;
};

}  // namespace pwu
