// Fixture: replication-path write sites outside the checkpoint-write
// discipline. apply_replicate_record() mirrors the image with no lock at
// all; promote_shadow() writes under the registry mutex, which is not the
// checkpoint-write mutex — both race the primary's own checkpoint writers
// for the same image file.
#include <mutex>
#include <string>

namespace pwu {

namespace util {
void atomic_write_file(const std::string& path, const std::string& payload);
}  // namespace util

class ReplicaApplier {
 public:
  void apply_replicate_record(const std::string& path,
                              const std::string& image) {
    util::atomic_write_file(path, image);
    ++applied_;
  }

  void promote_shadow(const std::string& path, const std::string& image) {
    std::lock_guard<std::mutex> lock(replica_registry_mutex_);
    util::atomic_write_file(path, image);
  }

 private:
  std::mutex replica_registry_mutex_;
  long applied_ = 0;
};

}  // namespace pwu
