// Fixture: the src/rf/simd_eval* prefix is the sanctioned home of raw
// intrinsics; the same include is clean here.
#include <emmintrin.h>
#include <immintrin.h>

int simd_eval_fixture() { return 0; }
