// Fixture: raw generator construction outside util/rng — one no-raw-rand hit.
#include <random>

unsigned unseeded() {
  std::mt19937 gen(42);
  return gen();
}
