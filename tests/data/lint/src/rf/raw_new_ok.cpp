// Fixture: deleted special members and factory helpers are not owning
// allocations — no no-raw-new findings.
#include <memory>

struct NoCopy {
  NoCopy() = default;
  NoCopy(const NoCopy&) = delete;
  NoCopy& operator=(const NoCopy&) = delete;
};

std::unique_ptr<int> factory() { return std::make_unique<int>(3); }
