// Fixture: hygienic header — no findings.
#pragma once

#include <vector>

namespace fixture {
inline std::vector<int> three() { return {1, 2, 3}; }
}  // namespace fixture
