// Fixture: missing #pragma once and a file-scope using-directive — two
// header-hygiene hits.
#include <vector>

using namespace std;

inline vector<int> three() { return {1, 2, 3}; }
