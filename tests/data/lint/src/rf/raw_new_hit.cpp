// Fixture: owning new + delete — two no-raw-new hits.

int leak_prone() {
  int* p = new int(3);
  int v = *p;
  delete p;
  return v;
}
