// Fixture: transport fd writes outside the framing layer. Both methods of
// RetryPipeTransport push bytes straight onto the pipe — one with a bare
// write(), one ::-qualified — so the length prefix, the CRC, and the
// short-write/EINTR loop the framing writer owns are all bypassed; the
// peer sees unframed (and, on a short write, torn) bytes.
#include <string>
#include <unistd.h>

namespace pwu::service {

class RetryPipeTransport {
 public:
  void send_line(const std::string& line) {
    write(to_child_, line.data(), line.size());
  }

  void flush_backlog() {
    ::write(to_child_, backlog_.data(), backlog_.size());
    backlog_.clear();
  }

 private:
  int to_child_ = -1;
  std::string backlog_;
};

}  // namespace pwu::service
