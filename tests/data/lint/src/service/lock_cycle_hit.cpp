// Fixture: classic ABBA lock-order inversion in one class. refresh() takes
// stats_mu_ then cache_mu_; invalidate() takes the same pair in the
// opposite order — two threads interleaving these deadlock. lock-graph
// must report the two-node cycle with a witness location per edge.
#include <mutex>

namespace pwu {

class MetricsCache {
 public:
  void refresh() {
    std::lock_guard<std::mutex> stats(stats_mu_);
    std::lock_guard<std::mutex> cache(cache_mu_);
    ++version_;
  }

  void invalidate() {
    std::lock_guard<std::mutex> cache(cache_mu_);
    std::lock_guard<std::mutex> stats(stats_mu_);
    version_ = 0;
  }

 private:
  std::mutex stats_mu_;
  std::mutex cache_mu_;
  int version_ = 0;
};

}  // namespace pwu
