// Fixture: the clean twin of framed_write_hit.cpp. The raw fd write lives
// in write_wire_frame() — the framing layer itself, exempt by name — and
// every other path goes through it. A stream-receiver `os.write(...)` is
// not a wire write, and a raw write() in a class that is not a *Transport
// is outside the rule's scope entirely.
#include <ostream>
#include <string>
#include <unistd.h>

namespace pwu::service {

class CleanFramedTransport {
 public:
  void send(const std::string& line) { write_wire_frame(line + "\n"); }

  void write_wire_frame(const std::string& payload) {
    write(to_child_, payload.data(), payload.size());
  }

  void journal_to(std::ostream& os, const std::string& note) {
    os.write(note.data(), static_cast<long>(note.size()));
  }

 private:
  int to_child_ = -1;
};

// Not a *Transport class: the name gate keeps checkpoint-image and journal
// fd writes out of this rule (they have their own disciplines).
class ScratchSpill {
 public:
  void spill(int fd, const std::string& blob) {
    write(fd, blob.data(), blob.size());
  }
};

}  // namespace pwu::service
