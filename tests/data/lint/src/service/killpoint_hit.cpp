// Fixture: killpoints in unsafe positions. marker_commit() fires one while
// its write handle is still open — a kill there leaves a torn file outside
// the atomic-writer protocol; KillpointCounter::bump_locked() fires one
// under a mutex, which the chaos resume proof cannot replay (the process
// dies owning the lock).
#include <cstdio>
#include <mutex>
#include <string>

#include "util/chaos.hpp"

namespace pwu {

void marker_commit(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("begin", f);
  util::killpoint("marker.mid_write");
  std::fputs("end", f);
  std::fclose(f);
}

class KillpointCounter {
 public:
  void bump_locked() {
    std::lock_guard<std::mutex> lock(counter_mu_);
    util::killpoint("counter.bump");
    ++count_;
  }

 private:
  std::mutex counter_mu_;
  long count_ = 0;
};

}  // namespace pwu
