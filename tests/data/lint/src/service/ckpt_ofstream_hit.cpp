// Fixture: direct final-path ofstream in service code -> atomic-checkpoint.
#include <fstream>

void save_checkpoint(const char* path) {
  std::ofstream out(path);  // truncates in place: a crash here tears the file
  out << "state\n";
}
