// Fixture: the sanctioned persistence path -> no atomic-checkpoint finding.
#include <sstream>
#include <string>

namespace pwu::util {
void atomic_write_file(const std::string&, const std::string&);
}

void save_checkpoint(const std::string& path) {
  std::ostringstream image;
  image << "state\n";
  pwu::util::atomic_write_file(path, image.str());
}
