// Fixture for no-unlocked-mutable: `count_` is annotated as guarded by
// `mu_`; the annotation applies to every same-stem file (guarded.cpp).
#pragma once

#include <mutex>

class Guarded {
 public:
  void locked_add();
  void unlocked_add();
  void suppressed_add();

 private:
  int count_ = 0;  // pwu-lint: guarded-by(mu_)
  std::mutex mu_;
};
