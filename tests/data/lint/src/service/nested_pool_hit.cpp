// Fixture: reconstruction of the PR-3 nested-parallelism deadlock. tell()
// schedules a refit while still holding state_mu_; on a helping-join pool
// the calling thread executes queued worker bodies inline (modeled by
// parallel_refit's tail call), and the worker re-enters record_progress(),
// which blocks on state_mu_ again. lock-graph must report the self-cycle
// through the call chain, and blocking-under-lock must flag the
// parallel_for reached while the session lock is held.
#include <mutex>

namespace pwu {

class FixturePool {
 public:
  template <typename Body>
  void parallel_for(int n, Body&& body);
};

class NestedPoolStore {
 public:
  void tell(int rows) {
    std::lock_guard<std::mutex> lock(state_mu_);
    pending_ += rows;
    parallel_refit(pending_);
  }

  void parallel_refit(int rows) {
    pool_.parallel_for(rows, [this](int row) { record_progress(row); });
    record_progress(rows);  // helping join: the caller runs the tail task
  }

  void record_progress(int row) {
    std::lock_guard<std::mutex> lock(state_mu_);
    done_ = row;
  }

 private:
  FixturePool pool_;
  std::mutex state_mu_;
  int pending_ = 0;
  int done_ = 0;
};

}  // namespace pwu
