// Fixture: the same two-mutex shape as lock_cycle_hit.cpp but with a
// consistent acquisition order (meta_mu_ before row_mu_ everywhere).
// A one-way ordering has no cycle: lock-graph stays silent.
#include <mutex>

namespace pwu {

class OrderedCache {
 public:
  void ordered_refresh() {
    std::lock_guard<std::mutex> meta(meta_mu_);
    std::lock_guard<std::mutex> rows(row_mu_);
    ++ordered_version_;
  }

  void ordered_invalidate() {
    std::lock_guard<std::mutex> meta(meta_mu_);
    std::lock_guard<std::mutex> rows(row_mu_);
    ordered_version_ = 0;
  }

 private:
  std::mutex meta_mu_;
  std::mutex row_mu_;
  int ordered_version_ = 0;
};

}  // namespace pwu
