// Fixture: the safe killpoint shapes. The write handle closes with its
// scope before the killpoint fires, and the counter releases its lock
// before its killpoint — both are replayable by the chaos harness.
#include <cstdio>
#include <mutex>
#include <string>

#include "util/chaos.hpp"

namespace pwu {

void marker_commit_safe(const std::string& path) {
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("payload", f);
    std::fclose(f);
  }
  util::killpoint("marker.after_close");
}

class SafeKillpointCounter {
 public:
  void bump_then_kill() {
    {
      std::lock_guard<std::mutex> lock(safe_counter_mu_);
      ++count_;
    }
    util::killpoint("counter.unlocked");
  }

 private:
  std::mutex safe_counter_mu_;
  long count_ = 0;
};

}  // namespace pwu
