#pragma once

#include <cstddef>
#include <deque>

namespace fixture {

// Bounded: the cap is declared right next to the buffer, so every reader
// (and the lint rule) can see the limit from the declaration.
struct BoundedBacklog {
  std::size_t max_backlog = 64;
  std::deque<int> backlog_;
};

}  // namespace fixture
