// Fixture: guarded-field access — locked (miss), unlocked (hit), and
// unlocked-but-suppressed (annotated region).
#include "guarded.hpp"

void Guarded::locked_add() {
  std::lock_guard lock(mu_);
  count_ += 1;
}

void Guarded::unlocked_add() {
  count_ += 1;
}

void Guarded::suppressed_add() {
  count_ += 1;  // pwu-lint: allow(no-unlocked-mutable)
}
