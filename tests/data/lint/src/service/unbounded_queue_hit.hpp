#pragma once

#include <deque>
#include <queue>

namespace fixture {

// A backlog that grows without restraint: the rule fires.
struct PendingBacklog {
  std::deque<int> backlog_;
};

struct SuppressedBacklog {
  // Documented elsewhere; locally waived.
  std::queue<int> waiting_;  // pwu-lint: allow(no-unbounded-queue)
};

}  // namespace fixture
