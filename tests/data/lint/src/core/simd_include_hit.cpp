// Fixture: raw intrinsics header outside the dispatch layer must fire
// no-unchecked-simd on the include line.
#include <immintrin.h>

int simd_include_hit() { return 0; }
