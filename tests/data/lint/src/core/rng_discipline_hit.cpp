// Fixture: Rng draws outside the stream discipline. pick_row() draws
// through an unannotated parameter, derive_stream() forks an unannotated
// member, and opaque_draw() uses a strong draw name on a receiver the
// index cannot type at all — each is a distinct failure message.
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace pwu {

class Ticker;

class NoisyPicker {
 public:
  std::size_t pick_row(util::Rng& rng, std::size_t n) {
    return rng.uniform_int(n);
  }

  util::Rng derive_stream() { return scratch_.fork(); }

  std::size_t opaque_draw(Ticker& ticker, std::size_t n) {
    return ticker.next_u64() % n;
  }

 private:
  util::Rng scratch_;
};

}  // namespace pwu
