// Fixture: the disciplined shapes. Every draw resolves to a
// PWU_RNG_STREAM-annotated member, parameter, or local — including a fork
// that inherits its source's sanction — and a weak draw name on a
// non-Rng receiver stays silent (index() on a matrix is not a draw).
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace pwu {

class Matrix;

class DisciplinedPicker {
 public:
  std::size_t disciplined_pick(util::Rng& rng PWU_RNG_STREAM(row_pick),
                               std::size_t n) {
    return rng.uniform_int(n);
  }

  util::Rng disciplined_derive() { return sanctioned_.fork(); }

  std::size_t fork_and_draw(std::size_t n) {
    util::Rng local PWU_RNG_STREAM(local_scan)(7);
    util::Rng child = local.fork();
    return child.uniform_int(n);
  }

  double weak_name_elsewhere(const Matrix& m);

 private:
  util::Rng sanctioned_ PWU_RNG_STREAM(scratch);
};

double DisciplinedPicker::weak_name_elsewhere(const Matrix& m) {
  return m.index(2);  // weak draw name on a non-Rng receiver: silent
}

}  // namespace pwu
