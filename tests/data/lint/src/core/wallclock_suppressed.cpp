// Fixture: same wall-clock read, silenced by a same-line allow comment.
#include <chrono>

long wallclock_now_suppressed() {
  return std::chrono::steady_clock::now()  // pwu-lint: allow(no-wallclock)
      .time_since_epoch()
      .count();
}
