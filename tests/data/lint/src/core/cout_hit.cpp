// Fixture: direct stdout from library code — one no-cout-logging hit.
#include <iostream>

void chatty() { std::cout << "library code must not own stdout\n"; }
