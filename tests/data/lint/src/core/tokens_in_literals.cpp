// Fixture: rule tokens inside string literals and comments never fire.
// Mentioning system_clock, mt19937, std::cout or new here is fine.

const char* kLiterals =
    "std::chrono::system_clock mt19937 std::cout new delete time(";
const char* kRaw = R"(random_device steady_clock printf("x"))";
/* block comment: srand(42); high_resolution_clock */
