// Fixture (pairs with xfile_metrics.cpp): half of a cross-file lock-order
// inversion between two file-scoped mutexes. pipeline_publish() holds
// pipeline_mu and calls into the metrics side, which acquires metrics_mu;
// xfile_metrics.cpp closes the loop in the other order. Neither file is
// wrong in isolation — only the whole-project lock graph sees the cycle.
#include <mutex>

namespace pwu {

std::mutex pipeline_mu;
int published_rows = 0;

void metrics_note_publish();

void pipeline_publish() {
  std::lock_guard<std::mutex> lock(pipeline_mu);
  ++published_rows;
  metrics_note_publish();
}

void pipeline_reset() {
  std::lock_guard<std::mutex> lock(pipeline_mu);
  published_rows = 0;
}

}  // namespace pwu
