// Fixture: wall-clock read in checkpointable code — one no-wallclock hit.
#include <chrono>

long wallclock_now() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}
