// Fixture: regression for the multi-line blind spot. The old line scanner
// matched within physical lines, so a statement split right after `std::`
// hid the raw rand() call. Token-stream matching spans the break: both the
// qualified sequence and the bare call-form report.
#include <cstdlib>

namespace pwu {

int multiline_draw() {
  return std::
      rand() % 6;
}

}  // namespace pwu
