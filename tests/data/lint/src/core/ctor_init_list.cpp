// Fixture: indexer regression — the `!=` inside the constructor's init
// list must not be read as a top-level `=` (which would classify the body
// brace as an aggregate initializer and skip the whole body). The
// killpoint held under table_mu_ below only reports when the ctor body
// was actually indexed, so its finding is the proof.
#include <mutex>

#include "util/chaos.hpp"

namespace pwu {

class InitListTable {
 public:
  explicit InitListTable(const int* ticks)
      : ticks_(ticks != nullptr ? *ticks : 0) {
    std::lock_guard<std::mutex> lock(table_mu_);
    util::killpoint("init_list.ctor");
  }

 private:
  std::mutex table_mu_;
  int ticks_ = 0;
};

}  // namespace pwu
