// Fixture (pairs with xfile_pipeline.cpp): the other half of the
// cross-file inversion. metrics_report() holds metrics_mu and calls back
// into the pipeline side, which acquires pipeline_mu — the reverse of the
// order xfile_pipeline.cpp establishes.
#include <mutex>

namespace pwu {

std::mutex metrics_mu;
int publish_count = 0;

void pipeline_reset();

void metrics_note_publish() {
  std::lock_guard<std::mutex> lock(metrics_mu);
  ++publish_count;
}

void metrics_report() {
  std::lock_guard<std::mutex> lock(metrics_mu);
  pipeline_reset();
}

}  // namespace pwu
