// Fixture: a file-wide exemption silences every hit of that rule.
// pwu-lint: allow-file(no-wallclock)
#include <chrono>

long first() { return std::chrono::system_clock::now().time_since_epoch().count(); }
long second() { return std::chrono::steady_clock::now().time_since_epoch().count(); }
