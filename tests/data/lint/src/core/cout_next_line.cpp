// Fixture: allow-next-line covers exactly one line.
#include <iostream>

void next_line_demo() {
  // pwu-lint: allow-next-line(no-cout-logging)
  std::cout << "suppressed\n";
  std::cout << "still a finding\n";
}
