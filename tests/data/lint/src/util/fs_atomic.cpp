// Fixture: the sanctioned exemption. killpoint-safety skips its open-file
// clause for src/util/fs_atomic.* — the atomic writer's killpoints sit
// deliberately inside the torn-tmp window the chaos harness probes, so a
// killpoint with the .tmp stream still open reports nothing here (and
// only here).
#include <fstream>
#include <string>

#include "util/chaos.hpp"

namespace pwu::util {

void fixture_tmp_write(const std::string& path, const std::string& body) {
  std::ofstream out(path + ".tmp");
  out << body;
  util::killpoint("fs_atomic.tmp_written");
}

}  // namespace pwu::util
