// Fixture: src/util/rng.* is the sanctioned home of raw RNG machinery, so
// generator tokens here are exempt from no-raw-rand.
#include <random>

unsigned sanctioned() {
  std::random_device device;
  std::mt19937 gen(device());
  return gen();
}
