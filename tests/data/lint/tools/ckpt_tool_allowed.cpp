// Fixture: tools are in atomic-checkpoint scope; an allow-comment silences
// a deliberate non-checkpoint write (counts as suppressed, not a finding).
#include <fstream>

void dump_scratch(const char* path) {
  std::ofstream out(path);  // pwu-lint: allow(atomic-checkpoint)
  out << "scratch\n";
}
