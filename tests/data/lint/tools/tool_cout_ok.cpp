// Fixture: tools own their stdout — std::cout here is not a finding.
#include <iostream>

int main() {
  std::cout << "tools may print\n";
  return 0;
}
