# Always-redirecting front-end stub for the cli_client_redirect_reresolve
# regression: answers every request with the structured redirected refusal
# a router emits while a session is re-homing. A correct client must stop
# hammering this endpoint after its per-endpoint redirect budget and
# re-resolve through the next --endpoints entry (a live server); the old
# behavior — burning the whole retry budget here — exits with a server
# error instead. Run as `sh redirect_stub.sh` (kept /bin/sh-portable).
while IFS= read -r _line; do
  printf '%s\n' '{"ok":false,"error":"stub front-end: ring view stale","redirected":true,"retry_after_ms":1}'
done
