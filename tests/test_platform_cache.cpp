#include "sim/cache_model.hpp"
#include "sim/platform.hpp"

#include <gtest/gtest.h>

namespace pwu::sim {
namespace {

TEST(Platform, TableIvValues) {
  const Platform a = platform_a();
  EXPECT_EQ(a.name, "Platform A");
  EXPECT_DOUBLE_EQ(a.freq_ghz, 2.5);
  EXPECT_EQ(a.cores, 24);
  EXPECT_DOUBLE_EQ(a.memory_gib, 64.0);
  EXPECT_FALSE(a.has_network());

  const Platform b = platform_b();
  EXPECT_EQ(b.name, "Platform B");
  EXPECT_DOUBLE_EQ(b.freq_ghz, 2.4);
  EXPECT_EQ(b.cores, 28);
  EXPECT_DOUBLE_EQ(b.memory_gib, 128.0);
  EXPECT_TRUE(b.has_network());
  EXPECT_DOUBLE_EQ(b.network_bandwidth_gbs, 12.5);  // 100 Gbps
}

TEST(Platform, CycleAndFlopTimes) {
  const Platform a = platform_a();
  EXPECT_DOUBLE_EQ(a.cycle_seconds(), 1e-9 / 2.5);
  // 2 flops/cycle at 2.5 GHz = 5 GFLOP/s scalar.
  EXPECT_NEAR(a.scalar_flop_seconds(5e9), 1.0, 1e-12);
}

TEST(CacheModel, AccessTimeMonotoneInWorkingSet) {
  const Platform p = platform_a();
  const CacheModel cache(p);
  double prev = 0.0;
  // Sweep from 1 KiB to 1 GiB: access time must be non-decreasing.
  for (double ws = 1024.0; ws <= 1024.0 * 1024.0 * 1024.0; ws *= 2.0) {
    const double t = cache.access_seconds(ws);
    EXPECT_GT(t, 0.0);
    EXPECT_GE(t, prev - 1e-15);
    prev = t;
  }
}

TEST(CacheModel, L1ResidentIsFastMemoryResidentIsSlow) {
  const Platform p = platform_a();
  const CacheModel cache(p);
  const double t_l1 = cache.access_seconds(4.0 * 1024.0);          // 4 KiB
  const double t_mem = cache.access_seconds(4.0 * 1024e6);         // 4 GB
  EXPECT_GT(t_mem / t_l1, 2.0);  // clear staircase between extremes
}

TEST(CacheModel, HitRatioBoundsAndMonotonicity) {
  const Platform p = platform_a();
  const CacheModel cache(p);
  double prev = 1.0;
  for (double ws = 1024.0; ws <= 8.0 * 1024e6; ws *= 4.0) {
    const double h = cache.hit_ratio(ws);
    EXPECT_GE(h, 0.0);
    EXPECT_LE(h, 1.0);
    EXPECT_LE(h, prev + 1e-12);
    prev = h;
  }
  EXPECT_GT(cache.hit_ratio(1024.0), 0.95);
  EXPECT_LT(cache.hit_ratio(8.0 * 1024e6), 0.1);
}

TEST(CacheModel, TilingPenaltyAtLeastOne) {
  const Platform p = platform_a();
  const CacheModel cache(p);
  for (double ws = 512.0; ws <= 1024e6; ws *= 8.0) {
    for (double bpf : {0.5, 2.0, 8.0}) {
      EXPECT_GE(cache.tiling_penalty(ws, bpf), 1.0);
    }
  }
}

TEST(CacheModel, TilingPenaltyGrowsWithWorkingSet) {
  const Platform p = platform_a();
  const CacheModel cache(p);
  const double small = cache.tiling_penalty(8.0 * 1024.0, 8.0);
  const double large = cache.tiling_penalty(512.0 * 1024e3, 8.0);
  EXPECT_GT(large, small);
}

TEST(CacheModel, HigherIntensityLessMemorySensitive) {
  // Compute-bound loops (low bytes/flop) are hurt less by spilling out of
  // cache than bandwidth-bound ones.
  const Platform p = platform_a();
  const CacheModel cache(p);
  const double ws = 64.0 * 1024e3;  // well past L2
  const double compute_bound = cache.tiling_penalty(ws, 0.5);
  const double memory_bound = cache.tiling_penalty(ws, 8.0);
  EXPECT_GT(memory_bound, compute_bound);
}

}  // namespace
}  // namespace pwu::sim
