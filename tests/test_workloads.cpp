// Contract tests every registered workload must satisfy — parameterized
// over the paper's full benchmark set (12 SPAPT kernels + 2 applications).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "workloads/registry.hpp"

namespace pwu::workloads {
namespace {

class WorkloadContract : public ::testing::TestWithParam<std::string> {
 protected:
  WorkloadPtr workload_ = make_workload(GetParam());
};

TEST_P(WorkloadContract, NameMatchesRegistryKey) {
  EXPECT_EQ(workload_->name(), GetParam());
}

TEST_P(WorkloadContract, SpaceSizeInPaperRange) {
  const auto& space = workload_->space();
  EXPECT_GE(space.num_params(), 4u);
  EXPECT_LE(space.num_params(), 38u);
  // Kernels: the paper quotes 10^10..10^30; our domain choices put every
  // kernel in 10^7..10^35 (jacobi/gesummv land slightly under 10^8, dgemv3
  // slightly over 10^34 — same order-of-magnitude regime, vastly larger
  // than any enumerable pool). Applications are small discrete spaces.
  const bool is_app = GetParam() == "kripke" || GetParam() == "hypre";
  if (is_app) {
    EXPECT_LT(space.log10_size(), 5.0);
  } else {
    EXPECT_GE(space.log10_size(), 7.0);
    EXPECT_LE(space.log10_size(), 35.0);
  }
}

TEST_P(WorkloadContract, BaseTimePositiveFiniteAcrossSpace) {
  util::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto config = workload_->space().random_config(rng);
    const double t = workload_->base_time(config);
    ASSERT_TRUE(std::isfinite(t)) << workload_->space().describe(config);
    ASSERT_GT(t, 0.0) << workload_->space().describe(config);
    ASSERT_LT(t, 3600.0) << workload_->space().describe(config);
  }
}

TEST_P(WorkloadContract, BaseTimeIsDeterministic) {
  util::Rng rng(2);
  const auto config = workload_->space().random_config(rng);
  EXPECT_DOUBLE_EQ(workload_->base_time(config),
                   workload_->base_time(config));
}

TEST_P(WorkloadContract, PerformanceSurfaceIsNonConstant) {
  // The tuning problem must be non-trivial: a clear spread between good
  // and bad configurations.
  util::Rng rng(3);
  double best = 1e300, worst = 0.0;
  for (int i = 0; i < 300; ++i) {
    const double t =
        workload_->base_time(workload_->space().random_config(rng));
    best = std::min(best, t);
    worst = std::max(worst, t);
  }
  EXPECT_GT(worst / best, 1.5) << "performance surface too flat";
}

TEST_P(WorkloadContract, EvaluateAddsNoiseAroundBaseTime) {
  util::Rng rng(4);
  const auto config = workload_->space().random_config(rng);
  const double base = workload_->base_time(config);
  double sum = 0.0;
  bool any_different = false;
  const int runs = 200;
  for (int i = 0; i < runs; ++i) {
    const double t = workload_->evaluate(config, rng);
    EXPECT_GT(t, 0.0);
    if (t != base) any_different = true;
    sum += t;
  }
  EXPECT_TRUE(any_different);  // noise model active on all benchmarks
  // Averaged measurement tracks base within the noise envelope (spikes are
  // positively biased, so allow generous upside).
  EXPECT_NEAR(sum / runs, base, base * 0.15);
}

TEST_P(WorkloadContract, MeasureAveragesRepetitions) {
  util::Rng rng_a(5);
  util::Rng rng_b(5);
  const auto config = workload_->space().random_config(rng_a);
  const auto config_b = workload_->space().random_config(rng_b);
  ASSERT_EQ(config, config_b);  // same rng stream -> same config
  const double m = workload_->measure(config, rng_a, 35);
  const double base = workload_->base_time(config);
  EXPECT_NEAR(m, base, base * 0.2);
  EXPECT_THROW(workload_->measure(config, rng_a, 0), std::invalid_argument);
}

TEST_P(WorkloadContract, DescribeRendersEveryConfig) {
  util::Rng rng(6);
  const auto config = workload_->space().random_config(rng);
  const std::string d = workload_->space().describe(config);
  EXPECT_FALSE(d.empty());
  EXPECT_NE(d.find('='), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(FullSuite, WorkloadContract,
                         ::testing::ValuesIn(full_suite_names()),
                         [](const auto& info) { return info.param; });

TEST(Registry, NamesArePartitionedAndUnique) {
  const auto kernels = kernel_names();
  const auto extended = extended_kernel_names();
  const auto apps = application_names();
  EXPECT_EQ(kernels.size(), 12u);   // the paper's 12 SPAPT kernels
  EXPECT_EQ(extended.size(), 6u);   // completing the 18-problem suite
  EXPECT_EQ(apps.size(), 2u);
  const auto all = all_names();
  EXPECT_EQ(all.size(), 14u);       // the paper's benchmark set
  const auto full = full_suite_names();
  EXPECT_EQ(full.size(), 20u);
  std::set<std::string> unique(full.begin(), full.end());
  EXPECT_EQ(unique.size(), 20u);
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_workload("not-a-benchmark"), std::invalid_argument);
}

TEST(Registry, EveryNameConstructs) {
  for (const auto& name : full_suite_names()) {
    EXPECT_NO_THROW({
      auto w = make_workload(name);
      EXPECT_NE(w, nullptr);
    }) << name;
  }
}

}  // namespace
}  // namespace pwu::workloads
