// Algorithm-1 bookkeeping invariants: pool/train accounting, trace shape,
// monotone cumulative cost, no repeated evaluations.

#include "core/active_learner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "workloads/synthetic.hpp"

namespace pwu::core {
namespace {

class ActiveLearnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload_ = workloads::make_quadratic_bowl(4, 8, 0.1, /*noisy=*/true);
    util::Rng rng(1);
    const auto split =
        space::make_pool_split(workload_->space(), 300, 150, rng);
    pool_ = split.pool;
    test_ = build_test_set(*workload_, split.test, rng);
  }

  LearnerConfig small_config() {
    LearnerConfig cfg;
    cfg.n_init = 10;
    cfg.n_batch = 1;
    cfg.n_max = 40;
    cfg.forest.num_trees = 15;
    cfg.eval_every = 5;
    cfg.eval_alphas = {0.05, 0.10};
    return cfg;
  }

  workloads::WorkloadPtr workload_;
  std::vector<space::Configuration> pool_;
  TestSet test_;
};

TEST_F(ActiveLearnerTest, ReachesNMaxTrainingSamples) {
  ActiveLearner learner(*workload_, small_config());
  util::Rng rng(2);
  const auto result =
      learner.run(*make_pwu(0.05), pool_, test_, rng);
  EXPECT_EQ(result.train_configs.size(), 40u);
  EXPECT_EQ(result.train_labels.size(), 40u);
  EXPECT_TRUE(result.model->fitted());
}

TEST_F(ActiveLearnerTest, NoConfigurationEvaluatedTwice) {
  ActiveLearner learner(*workload_, small_config());
  util::Rng rng(3);
  const auto result = learner.run(*make_pwu(0.05), pool_, test_, rng);
  std::unordered_set<space::Configuration, space::ConfigurationHash> seen;
  for (const auto& c : result.train_configs) {
    EXPECT_TRUE(seen.insert(c).second) << "duplicate evaluation";
  }
}

TEST_F(ActiveLearnerTest, EveryTrainingConfigCameFromThePool) {
  ActiveLearner learner(*workload_, small_config());
  util::Rng rng(4);
  const auto result = learner.run(*make_pwu(0.05), pool_, test_, rng);
  std::unordered_set<space::Configuration, space::ConfigurationHash> pool_set(
      pool_.begin(), pool_.end());
  for (const auto& c : result.train_configs) {
    EXPECT_TRUE(pool_set.contains(c));
  }
}

TEST_F(ActiveLearnerTest, TraceShapeAndMonotoneCost) {
  ActiveLearner learner(*workload_, small_config());
  util::Rng rng(5);
  const auto result = learner.run(*make_pwu(0.05), pool_, test_, rng);
  ASSERT_GE(result.trace.size(), 2u);
  // First record is the cold start, last is at n_max.
  EXPECT_EQ(result.trace.front().num_samples, 10u);
  EXPECT_EQ(result.trace.back().num_samples, 40u);
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_GT(result.trace[i].num_samples, result.trace[i - 1].num_samples);
    EXPECT_GT(result.trace[i].cumulative_cost,
              result.trace[i - 1].cumulative_cost);
  }
  // Two eval alphas requested -> two RMSE entries per record, all finite.
  for (const auto& rec : result.trace) {
    ASSERT_EQ(rec.top_alpha_rmse.size(), 2u);
    EXPECT_TRUE(std::isfinite(rec.top_alpha_rmse[0]));
    EXPECT_TRUE(std::isfinite(rec.top_alpha_rmse[1]));
    EXPECT_TRUE(std::isfinite(rec.full_rmse));
  }
}

TEST_F(ActiveLearnerTest, CumulativeCostEqualsSumOfLabels) {
  ActiveLearner learner(*workload_, small_config());
  util::Rng rng(6);
  const auto result = learner.run(*make_pwu(0.05), pool_, test_, rng);
  EXPECT_NEAR(result.trace.back().cumulative_cost,
              cumulative_cost(result.train_labels), 1e-9);
}

TEST_F(ActiveLearnerTest, SelectionsRecordedForEveryIterationPick) {
  ActiveLearner learner(*workload_, small_config());
  util::Rng rng(7);
  const auto result = learner.run(*make_pwu(0.05), pool_, test_, rng);
  // 40 total - 10 cold start = 30 strategy selections.
  EXPECT_EQ(result.selections.size(), 30u);
  for (const auto& sel : result.selections) {
    EXPECT_GE(sel.iteration, 1u);
    EXPECT_GT(sel.predicted_mean, 0.0);
    EXPECT_GE(sel.predicted_stddev, 0.0);
    EXPECT_GT(sel.measured, 0.0);
  }
}

TEST_F(ActiveLearnerTest, EvalEveryControlsTraceDensity) {
  LearnerConfig dense = small_config();
  dense.eval_every = 1;
  LearnerConfig sparse = small_config();
  sparse.eval_every = 10;
  util::Rng rng_a(8), rng_b(8);
  const auto dense_result = ActiveLearner(*workload_, dense)
                                .run(*make_pwu(0.05), pool_, test_, rng_a);
  const auto sparse_result = ActiveLearner(*workload_, sparse)
                                 .run(*make_pwu(0.05), pool_, test_, rng_b);
  EXPECT_GT(dense_result.trace.size(), sparse_result.trace.size());
  // eval_every=1: cold start + one record per iteration.
  EXPECT_EQ(dense_result.trace.size(), 31u);
}

TEST_F(ActiveLearnerTest, BatchGreaterThanOneSupported) {
  LearnerConfig cfg = small_config();
  cfg.n_batch = 5;
  ActiveLearner learner(*workload_, cfg);
  util::Rng rng(9);
  const auto result = learner.run(*make_pwu(0.05), pool_, test_, rng);
  EXPECT_EQ(result.train_configs.size(), 40u);
  // 30 post-cold-start picks in batches of 5 -> 6 iterations.
  std::unordered_set<std::size_t> iterations;
  for (const auto& sel : result.selections) iterations.insert(sel.iteration);
  EXPECT_EQ(iterations.size(), 6u);
}

TEST_F(ActiveLearnerTest, SmallPoolTerminatesEarly) {
  LearnerConfig cfg = small_config();
  cfg.n_max = 1000;  // far beyond the pool
  ActiveLearner learner(*workload_, cfg);
  util::Rng rng(10);
  std::vector<space::Configuration> tiny_pool(pool_.begin(),
                                              pool_.begin() + 25);
  const auto result = learner.run(*make_pwu(0.05), tiny_pool, test_, rng);
  EXPECT_EQ(result.train_configs.size(), 25u);  // pool exhausted cleanly
}

TEST_F(ActiveLearnerTest, DeterministicGivenSeed) {
  ActiveLearner learner(*workload_, small_config());
  util::Rng rng_a(42), rng_b(42);
  const auto a = learner.run(*make_pwu(0.05), pool_, test_, rng_a);
  const auto b = learner.run(*make_pwu(0.05), pool_, test_, rng_b);
  ASSERT_EQ(a.train_configs.size(), b.train_configs.size());
  for (std::size_t i = 0; i < a.train_configs.size(); ++i) {
    EXPECT_EQ(a.train_configs[i], b.train_configs[i]);
    EXPECT_DOUBLE_EQ(a.train_labels[i], b.train_labels[i]);
  }
}

TEST_F(ActiveLearnerTest, StrategiesProduceDifferentTrajectories) {
  ActiveLearner learner(*workload_, small_config());
  util::Rng rng_a(11), rng_b(11);
  const auto pwu = learner.run(*make_pwu(0.05), pool_, test_, rng_a);
  const auto bestperf =
      learner.run(*make_best_performance(), pool_, test_, rng_b);
  EXPECT_NE(pwu.train_configs, bestperf.train_configs);
}

TEST_F(ActiveLearnerTest, ConfigValidation) {
  LearnerConfig bad = small_config();
  bad.n_init = 0;
  EXPECT_THROW(ActiveLearner(*workload_, bad), std::invalid_argument);
  bad = small_config();
  bad.n_batch = 0;
  EXPECT_THROW(ActiveLearner(*workload_, bad), std::invalid_argument);
  bad = small_config();
  bad.n_max = 5;  // < n_init
  EXPECT_THROW(ActiveLearner(*workload_, bad), std::invalid_argument);
  bad = small_config();
  bad.eval_every = 0;
  EXPECT_THROW(ActiveLearner(*workload_, bad), std::invalid_argument);
}

TEST_F(ActiveLearnerTest, PoolSmallerThanInitRejected) {
  ActiveLearner learner(*workload_, small_config());
  util::Rng rng(12);
  std::vector<space::Configuration> tiny(pool_.begin(), pool_.begin() + 5);
  EXPECT_THROW(learner.run(*make_pwu(0.05), tiny, test_, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace pwu::core
