// pwu_lint engine tests — each rule's hit/miss/suppression paths run over
// the fixture tree under tests/data/lint/, which mirrors the repo layout
// (src/core, src/rf, src/service, src/util, tools) so the path-scoped rules
// exercise their real scoping logic.

#include "lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#ifndef PWU_TEST_DATA_DIR
#define PWU_TEST_DATA_DIR "tests/data"
#endif

namespace pwu::lint {
namespace {

const char* kFixtureRoot = PWU_TEST_DATA_DIR "/lint";

Report scan(Options options = {}) { return run(kFixtureRoot, options); }

bool has_finding(const Report& report, const std::string& rule,
                 const std::string& file, std::size_t line) {
  return std::any_of(report.findings.begin(), report.findings.end(),
                     [&](const Finding& f) {
                       return f.rule == rule && f.file == file &&
                              f.line == line;
                     });
}

std::size_t count_rule(const Report& report, const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(report.findings.begin(), report.findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

TEST(PwuLint, FixtureTreeProducesExactlyTheExpectedFindings) {
  const Report report = scan();
  EXPECT_EQ(report.files_scanned, 22u);
  EXPECT_EQ(report.baselined, 0u);
  EXPECT_EQ(report.active_count(), 12u);

  // Hits, one per fixture trap.
  EXPECT_TRUE(has_finding(report, "no-cout-logging",
                          "src/core/cout_hit.cpp", 4));
  EXPECT_TRUE(has_finding(report, "no-cout-logging",
                          "src/core/cout_next_line.cpp", 7));
  EXPECT_TRUE(has_finding(report, "no-wallclock",
                          "src/core/wallclock_hit.cpp", 5));
  EXPECT_TRUE(has_finding(report, "header-hygiene",
                          "src/rf/bad_header.hpp", 1));  // missing pragma once
  EXPECT_TRUE(has_finding(report, "header-hygiene",
                          "src/rf/bad_header.hpp", 5));  // using namespace
  EXPECT_TRUE(has_finding(report, "no-raw-new",
                          "src/rf/raw_new_hit.cpp", 4));
  EXPECT_TRUE(has_finding(report, "no-raw-new",
                          "src/rf/raw_new_hit.cpp", 6));
  EXPECT_TRUE(has_finding(report, "no-raw-rand",
                          "src/rf/raw_rand_hit.cpp", 5));
  EXPECT_TRUE(has_finding(report, "no-unlocked-mutable",
                          "src/service/guarded.cpp", 11));
  EXPECT_TRUE(has_finding(report, "atomic-checkpoint",
                          "src/service/ckpt_ofstream_hit.cpp", 5));
  EXPECT_TRUE(has_finding(report, "no-unbounded-queue",
                          "src/service/unbounded_queue_hit.hpp", 10));
  EXPECT_TRUE(has_finding(report, "no-unchecked-simd",
                          "src/core/simd_include_hit.cpp", 3));

  // Misses: clean fixtures and path exemptions contribute nothing.
  EXPECT_EQ(count_rule(report, "no-raw-rand"), 1u);   // src/util/rng.cpp exempt
  EXPECT_EQ(count_rule(report, "no-cout-logging"), 2u);  // tools/ exempt
  EXPECT_EQ(count_rule(report, "no-raw-new"), 2u);    // `= delete` is not a hit
  EXPECT_EQ(count_rule(report, "header-hygiene"), 2u);  // good_header.hpp clean
  // atomic_write_file call sites are clean; only the raw ofstream fires.
  EXPECT_EQ(count_rule(report, "atomic-checkpoint"), 1u);
  // bounded_queue_ok.hpp declares its cap next to the deque: no finding.
  EXPECT_EQ(count_rule(report, "no-unbounded-queue"), 1u);
  // simd_eval_fixture.cpp sits under the sanctioned src/rf/simd_eval*
  // prefix: only the src/core include fires.
  EXPECT_EQ(count_rule(report, "no-unchecked-simd"), 1u);
  // Tokens inside strings, raw strings, and comments never fire.
  for (const Finding& f : report.findings) {
    EXPECT_NE(f.file, "src/core/tokens_in_literals.cpp") << f.rule;
  }

  // Suppressions: allow (wallclock_suppressed) + allow-next-line (one of the
  // two couts in cout_next_line) + allow-file (two wallclock reads in
  // allow_file.cpp) + allow (ckpt_tool_allowed's ofstream — which also
  // proves tools/ is inside atomic-checkpoint's scope). Same-line allows on
  // no-unlocked-mutable fields are skipped before matching, so guarded.cpp's
  // suppressed_add adds nothing. The allow on unbounded_queue_hit.hpp's
  // second queue member is the sixth suppression.
  EXPECT_EQ(report.suppressed, 6u);

  // Deterministic ordering: sorted by (file, line, rule).
  const auto before = [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  };
  EXPECT_TRUE(std::is_sorted(report.findings.begin(), report.findings.end(),
                             before));
}

TEST(PwuLint, BaselineRoundTripGrandfathersEveryFinding) {
  const Report dirty = scan();
  ASSERT_EQ(dirty.active_count(), 12u);

  const std::string path = testing::TempDir() + "pwu_lint_test.baseline";
  {
    std::ofstream os(path);
    ASSERT_TRUE(os.good());
    write_baseline(os, dirty);
  }

  Options options;
  options.baseline_path = path;
  const Report clean = scan(options);
  EXPECT_EQ(clean.findings.size(), 12u);  // still visible...
  EXPECT_EQ(clean.baselined, 12u);        // ...but all grandfathered
  EXPECT_EQ(clean.active_count(), 0u);   // so the run passes
  std::remove(path.c_str());
}

TEST(PwuLint, MissingBaselineFileActsAsEmpty) {
  Options options;
  options.baseline_path = testing::TempDir() + "does_not_exist.baseline";
  const Report report = scan(options);
  EXPECT_EQ(report.baselined, 0u);
  EXPECT_EQ(report.active_count(), 12u);
}

TEST(PwuLint, RulesFilterRestrictsTheScan) {
  Options options;
  options.rules = {"no-cout-logging"};
  const Report report = scan(options);
  EXPECT_EQ(report.findings.size(), 2u);
  for (const Finding& f : report.findings) {
    EXPECT_EQ(f.rule, "no-cout-logging");
  }
}

TEST(PwuLint, UnknownRuleAndMissingRootThrow) {
  Options options;
  options.rules = {"no-such-rule"};
  EXPECT_THROW(scan(options), std::runtime_error);
  EXPECT_THROW(run("/nonexistent/scan/root", Options{}), std::runtime_error);
}

TEST(PwuLint, BaselineKeyIgnoresLineNumbers) {
  Finding a{"no-raw-new", "src/x.cpp", 10, "msg", "int* p = new int;", false};
  Finding b = a;
  b.line = 99;  // content hash keys the baseline, not position
  EXPECT_EQ(baseline_key(a), baseline_key(b));
  b.excerpt = "int* q = new int;";
  EXPECT_NE(baseline_key(a), baseline_key(b));
}

TEST(PwuLint, CatalogListsEveryRuleOnce) {
  const auto& catalog = rule_catalog();
  std::vector<std::string> names;
  for (const RuleInfo& rule : catalog) names.emplace_back(rule.name);
  std::sort(names.begin(), names.end());
  EXPECT_TRUE(std::adjacent_find(names.begin(), names.end()) == names.end());
  const std::vector<std::string> expected = {
      "atomic-checkpoint",   "header-hygiene",     "no-cout-logging",
      "no-raw-new",          "no-raw-rand",        "no-unbounded-queue",
      "no-unchecked-simd",   "no-unlocked-mutable", "no-wallclock"};
  EXPECT_EQ(names, expected);
}

TEST(PwuLint, JsonAndTextOutputsCarryTheFindings) {
  const Report report = scan();
  std::ostringstream text;
  print_text(text, report);
  EXPECT_NE(text.str().find("no-raw-rand"), std::string::npos);
  EXPECT_NE(text.str().find("12 finding(s)"), std::string::npos);

  std::ostringstream json;
  print_json(json, report);
  EXPECT_EQ(json.str().front(), '{');
  EXPECT_NE(json.str().find("\"findings\""), std::string::npos);
  EXPECT_NE(json.str().find("\"no-unlocked-mutable\""), std::string::npos);
  EXPECT_NE(json.str().find("\"suppressed\":6"), std::string::npos);
}

}  // namespace
}  // namespace pwu::lint
