// pwu_lint engine tests — each rule's hit/miss/suppression paths run over
// the fixture tree under tests/data/lint/, which mirrors the repo layout
// (src/core, src/rf, src/router, src/service, src/util, tools) so the
// path-scoped rules exercise their real scoping logic. The flow-aware
// rules (lock-graph, blocking-under-lock, rng-stream-discipline,
// killpoint-safety, replicate-write-discipline, framed-write-discipline)
// get seeded violation fixtures plus clean twins, and the tokenizer/indexer
// get direct unit tests via source_from_string.

#include "index.hpp"
#include "lint.hpp"
#include "tokenizer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#ifndef PWU_TEST_DATA_DIR
#define PWU_TEST_DATA_DIR "tests/data"
#endif

namespace pwu::lint {
namespace {

const char* kFixtureRoot = PWU_TEST_DATA_DIR "/lint";

constexpr std::size_t kFixtureFiles = 40;
constexpr std::size_t kActiveFindings = 31;
constexpr std::size_t kSuppressed = 8;

Report scan(Options options = {}) { return run(kFixtureRoot, options); }

bool has_finding(const Report& report, const std::string& rule,
                 const std::string& file, std::size_t line) {
  return std::any_of(report.findings.begin(), report.findings.end(),
                     [&](const Finding& f) {
                       return f.rule == rule && f.file == file &&
                              f.line == line;
                     });
}

const Finding* find_finding(const Report& report, const std::string& rule,
                            const std::string& file) {
  for (const Finding& f : report.findings) {
    if (f.rule == rule && f.file == file) return &f;
  }
  return nullptr;
}

std::size_t count_rule(const Report& report, const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(report.findings.begin(), report.findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

std::size_t count_file(const Report& report, const std::string& file) {
  return static_cast<std::size_t>(
      std::count_if(report.findings.begin(), report.findings.end(),
                    [&](const Finding& f) { return f.file == file; }));
}

TEST(PwuLint, FixtureTreeProducesExactlyTheExpectedFindings) {
  const Report report = scan();
  EXPECT_EQ(report.files_scanned, kFixtureFiles);
  EXPECT_EQ(report.baselined, 0u);
  EXPECT_EQ(report.active_count(), kActiveFindings);

  // Line-rule hits, one per fixture trap.
  EXPECT_TRUE(has_finding(report, "no-cout-logging",
                          "src/core/cout_hit.cpp", 4));
  EXPECT_TRUE(has_finding(report, "no-cout-logging",
                          "src/core/cout_next_line.cpp", 7));
  EXPECT_TRUE(has_finding(report, "no-wallclock",
                          "src/core/wallclock_hit.cpp", 5));
  EXPECT_TRUE(has_finding(report, "header-hygiene",
                          "src/rf/bad_header.hpp", 1));  // missing pragma once
  EXPECT_TRUE(has_finding(report, "header-hygiene",
                          "src/rf/bad_header.hpp", 5));  // using namespace
  EXPECT_TRUE(has_finding(report, "no-raw-new",
                          "src/rf/raw_new_hit.cpp", 4));
  EXPECT_TRUE(has_finding(report, "no-raw-new",
                          "src/rf/raw_new_hit.cpp", 6));
  EXPECT_TRUE(has_finding(report, "no-raw-rand",
                          "src/rf/raw_rand_hit.cpp", 5));
  EXPECT_TRUE(has_finding(report, "no-unlocked-mutable",
                          "src/service/guarded.cpp", 11));
  EXPECT_TRUE(has_finding(report, "atomic-checkpoint",
                          "src/service/ckpt_ofstream_hit.cpp", 5));
  EXPECT_TRUE(has_finding(report, "no-unbounded-queue",
                          "src/service/unbounded_queue_hit.hpp", 10));
  EXPECT_TRUE(has_finding(report, "no-unchecked-simd",
                          "src/core/simd_include_hit.cpp", 3));

  // Misses: clean fixtures and path exemptions contribute nothing.
  EXPECT_EQ(count_rule(report, "no-raw-rand"), 3u);   // src/util/rng.cpp exempt
  EXPECT_EQ(count_rule(report, "no-cout-logging"), 2u);  // tools/ exempt
  EXPECT_EQ(count_rule(report, "no-raw-new"), 2u);    // `= delete` is not a hit
  EXPECT_EQ(count_rule(report, "header-hygiene"), 2u);  // good_header.hpp clean
  // atomic_write_file call sites are clean; only the raw ofstream fires.
  EXPECT_EQ(count_rule(report, "atomic-checkpoint"), 1u);
  // bounded_queue_ok.hpp declares its cap next to the deque: no finding.
  EXPECT_EQ(count_rule(report, "no-unbounded-queue"), 1u);
  // simd_eval_fixture.cpp sits under the sanctioned src/rf/simd_eval*
  // prefix: only the src/core include fires.
  EXPECT_EQ(count_rule(report, "no-unchecked-simd"), 1u);
  // Flow rules, counted exactly (per-fixture detail in the tests below).
  EXPECT_EQ(count_rule(report, "lock-graph"), 3u);
  EXPECT_EQ(count_rule(report, "blocking-under-lock"), 4u);
  EXPECT_EQ(count_rule(report, "rng-stream-discipline"), 3u);
  EXPECT_EQ(count_rule(report, "killpoint-safety"), 3u);
  EXPECT_EQ(count_rule(report, "replicate-write-discipline"), 2u);
  EXPECT_EQ(count_rule(report, "framed-write-discipline"), 2u);
  // Tokens inside strings, raw strings, and comments never fire.
  for (const Finding& f : report.findings) {
    EXPECT_NE(f.file, "src/core/tokens_in_literals.cpp") << f.rule;
  }

  // Suppressions: allow (wallclock_suppressed) + allow-next-line (one of the
  // two couts in cout_next_line) + allow-file (two wallclock reads in
  // allow_file.cpp) + allow (ckpt_tool_allowed's ofstream — which also
  // proves tools/ is inside atomic-checkpoint's scope) + the allow on
  // unbounded_queue_hit.hpp's second queue member + the two blocking-ok
  // forms in block_lock_ok.cpp.
  EXPECT_EQ(report.suppressed, kSuppressed);

  // Deterministic ordering: sorted by (file, line, rule).
  const auto before = [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  };
  EXPECT_TRUE(std::is_sorted(report.findings.begin(), report.findings.end(),
                             before));
}

// ---------------------------------------------------------------------------
// lock-graph
// ---------------------------------------------------------------------------

TEST(PwuLint, LockGraphReportsAbbaInversionOnce) {
  const Report report = scan();
  const Finding* f =
      find_finding(report, "lock-graph", "src/service/lock_cycle_hit.cpp");
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("lock-order cycle"), std::string::npos);
  EXPECT_NE(f->message.find("MetricsCache::stats_mu_"), std::string::npos);
  EXPECT_NE(f->message.find("MetricsCache::cache_mu_"), std::string::npos);
  // One finding per cycle, with a witness location for each edge.
  EXPECT_EQ(count_file(report, "src/service/lock_cycle_hit.cpp"), 1u);
  EXPECT_NE(f->message.find("lock_cycle_hit.cpp:19"), std::string::npos);
  EXPECT_NE(f->message.find("lock_cycle_hit.cpp:13"), std::string::npos);
  // The consistently-ordered twin is silent.
  EXPECT_EQ(count_file(report, "src/service/lock_cycle_ok.cpp"), 0u);
}

TEST(PwuLint, LockGraphCatchesTheNestedParallelismDeadlock) {
  // The PR-3 shape: tell() holds the session mutex across a refit that the
  // helping-join pool runs inline, and the worker re-locks the same mutex.
  // The cycle is only visible through the call chain — no single function
  // acquires twice.
  const Report report = scan();
  const Finding* f =
      find_finding(report, "lock-graph", "src/service/nested_pool_hit.cpp");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->line, 23u);  // the call made while state_mu_ is held
  EXPECT_NE(f->message.find("self-deadlock"), std::string::npos);
  EXPECT_NE(f->message.find("NestedPoolStore::state_mu_"), std::string::npos);
  EXPECT_NE(f->message.find("via call to NestedPoolStore::parallel_refit"),
            std::string::npos);
}

TEST(PwuLint, LockGraphSeesCyclesAcrossFiles) {
  // Neither xfile_*.cpp is wrong in isolation; only the merged project
  // index exposes the two-mutex cycle between them.
  const Report report = scan();
  const Finding* f =
      find_finding(report, "lock-graph", "src/core/xfile_metrics.cpp");
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("xfile_metrics::metrics_mu"), std::string::npos);
  EXPECT_NE(f->message.find("xfile_pipeline::pipeline_mu"), std::string::npos);
  EXPECT_NE(f->message.find("xfile_pipeline.cpp:18"), std::string::npos);
}

// ---------------------------------------------------------------------------
// blocking-under-lock
// ---------------------------------------------------------------------------

TEST(PwuLint, BlockingUnderLockFlagsAllThreeShapes) {
  const Report report = scan();
  // Direct file-stream open, std::filesystem call, *Transport method.
  EXPECT_TRUE(has_finding(report, "blocking-under-lock",
                          "src/router/block_lock_hit.cpp", 24));
  EXPECT_TRUE(has_finding(report, "blocking-under-lock",
                          "src/router/block_lock_hit.cpp", 30));
  EXPECT_TRUE(has_finding(report, "blocking-under-lock",
                          "src/router/block_lock_hit.cpp", 35));
  const Finding* f = find_finding(report, "blocking-under-lock",
                                  "src/router/block_lock_hit.cpp");
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("JournalSink::journal_mu_"), std::string::npos);
  // Serialize-under-lock / write-after-release is the sanctioned pattern,
  // and both blocking-ok comment positions suppress (counted above).
  EXPECT_EQ(count_file(report, "src/router/block_lock_ok.cpp"), 0u);
}

TEST(PwuLint, BlockingUnderLockReachesThroughTheCallGraph) {
  const Report report = scan();
  const Finding* f = find_finding(report, "blocking-under-lock",
                                  "src/service/nested_pool_hit.cpp");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->line, 23u);  // flagged at the call site under the lock...
  // ...with the chain and the primitive's own location in the message.
  EXPECT_NE(f->message.find("NestedPoolStore::parallel_refit"),
            std::string::npos);
  EXPECT_NE(f->message.find("parallel_for"), std::string::npos);
  EXPECT_NE(f->message.find("nested_pool_hit.cpp:27"), std::string::npos);
}

// ---------------------------------------------------------------------------
// rng-stream-discipline
// ---------------------------------------------------------------------------

TEST(PwuLint, RngDisciplineFlagsUnannotatedDraws) {
  const Report report = scan();
  // Unannotated parameter, unannotated member, untypeable receiver.
  EXPECT_TRUE(has_finding(report, "rng-stream-discipline",
                          "src/core/rng_discipline_hit.cpp", 15));
  EXPECT_TRUE(has_finding(report, "rng-stream-discipline",
                          "src/core/rng_discipline_hit.cpp", 18));
  EXPECT_TRUE(has_finding(report, "rng-stream-discipline",
                          "src/core/rng_discipline_hit.cpp", 21));
  const Finding* f = find_finding(report, "rng-stream-discipline",
                                  "src/core/rng_discipline_hit.cpp");
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("PWU_RNG_STREAM"), std::string::npos);
  // Annotated member/param/local — and a fork inheriting its source's
  // sanction — are all clean; weak draw names on non-Rng receivers stay
  // silent.
  EXPECT_EQ(count_file(report, "src/core/rng_discipline_ok.cpp"), 0u);
}

// ---------------------------------------------------------------------------
// killpoint-safety
// ---------------------------------------------------------------------------

TEST(PwuLint, KillpointSafetyFlagsBothClauses) {
  const Report report = scan();
  // Open write handle still in scope.
  EXPECT_TRUE(has_finding(report, "killpoint-safety",
                          "src/service/killpoint_hit.cpp", 17));
  // Mutex held across the killpoint.
  EXPECT_TRUE(has_finding(report, "killpoint-safety",
                          "src/service/killpoint_hit.cpp", 26));
  // Scope-closed handle and released lock are both safe.
  EXPECT_EQ(count_file(report, "src/service/killpoint_ok.cpp"), 0u);
  // src/util/fs_atomic.* is exempt from the open-file clause by design:
  // its killpoints deliberately straddle the torn-tmp window.
  EXPECT_EQ(count_file(report, "src/util/fs_atomic.cpp"), 0u);
}

TEST(PwuLint, CtorInitListBodyIsIndexedDespiteComparisonOperators) {
  // Regression: the `!=` inside a ctor init list once classified the body
  // brace as an aggregate initializer, skipping the body entirely. The
  // killpoint-under-lock finding inside the ctor proves the body is seen.
  const Report report = scan();
  EXPECT_TRUE(has_finding(report, "killpoint-safety",
                          "src/core/ctor_init_list.cpp", 17));
}

// ---------------------------------------------------------------------------
// replicate-write-discipline
// ---------------------------------------------------------------------------

TEST(PwuLint, ReplicateWriteDisciplineFlagsUndisciplinedWrites) {
  const Report report = scan();
  // No lock at all, and a lock that is not the checkpoint-write mutex.
  EXPECT_TRUE(has_finding(report, "replicate-write-discipline",
                          "src/router/replicate_write_hit.cpp", 19));
  EXPECT_TRUE(has_finding(report, "replicate-write-discipline",
                          "src/router/replicate_write_hit.cpp", 25));
  const Finding* f = find_finding(report, "replicate-write-discipline",
                                  "src/router/replicate_write_hit.cpp");
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("ckpt_write_mutex"), std::string::npos);
  // Writes under the checkpoint-write mutex — and write sites in functions
  // that are not on the replication path — are clean.
  EXPECT_EQ(count_file(report, "src/router/replicate_write_ok.cpp"), 0u);
}

// ---------------------------------------------------------------------------
// framed-write-discipline
// ---------------------------------------------------------------------------

TEST(PwuLint, FramedWriteDisciplineFlagsRawFdWritesInTransports) {
  const Report report = scan();
  // A bare write() and a ::-qualified one, both in *Transport methods whose
  // names lack "frame".
  EXPECT_TRUE(has_finding(report, "framed-write-discipline",
                          "src/service/framed_write_hit.cpp", 14));
  EXPECT_TRUE(has_finding(report, "framed-write-discipline",
                          "src/service/framed_write_hit.cpp", 18));
  const Finding* f = find_finding(report, "framed-write-discipline",
                                  "src/service/framed_write_hit.cpp");
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("bypasses the framing layer"), std::string::npos);
  // The framing writer itself, a stream-receiver write, and a raw write in
  // a non-Transport class are all clean.
  EXPECT_EQ(count_file(report, "src/service/framed_write_ok.cpp"), 0u);
}

// ---------------------------------------------------------------------------
// Multi-line statements (satellite regression)
// ---------------------------------------------------------------------------

TEST(PwuLint, MultiLineStatementCannotHideRawRand) {
  // `std::` at end-of-line + `rand()` on the next line: the token stream
  // spans the break, so both the qualified sequence and the call form fire.
  const Report report = scan();
  EXPECT_TRUE(has_finding(report, "no-raw-rand",
                          "src/core/multiline_rand_hit.cpp", 10));
  EXPECT_TRUE(has_finding(report, "no-raw-rand",
                          "src/core/multiline_rand_hit.cpp", 11));
}

// ---------------------------------------------------------------------------
// Tokenizer unit tests
// ---------------------------------------------------------------------------

TEST(PwuLintTokenizer, LiteralsCommentsAndRawStringsAreBlanked) {
  const SourceFile f = source_from_string(
      "src/core/t.cpp",
      "const char* s = R\"(std::rand() still text)\";\n"
      "int a = 1;  // std::rand() in a comment\n"
      "/* std::rand() in a block */ int b = 2;\n"
      "char c = 'r';\n");
  for (const Token& t : tokenize(f)) {
    EXPECT_NE(t.text, "rand") << "line " << t.line;
  }
}

TEST(PwuLintTokenizer, TemplateCloseIsTwoTokensAndSpansLines) {
  const SourceFile f = source_from_string(
      "src/core/t.cpp",
      "std::vector<std::vector<int>> grid;\n"
      "int x = std::\n"
      "    rand();\n");
  const std::vector<Token> toks = tokenize(f);
  // '>>' tokenizes as two closers, so angle matching never jams.
  const std::size_t closers = static_cast<std::size_t>(
      std::count_if(toks.begin(), toks.end(),
                    [](const Token& t) { return t.text == ">"; }));
  EXPECT_EQ(closers, 2u);
  // The qualified call is one consecutive token sequence across lines.
  bool matched = false;
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (match_tokens(toks, i, {"std", "::", "rand", "("})) {
      matched = true;
      EXPECT_LT(toks[i].line, toks[i + 2].line);  // spans the break
    }
  }
  EXPECT_TRUE(matched);
}

TEST(PwuLintTokenizer, MacroContinuationLinesAreSkipped) {
  const SourceFile f = source_from_string(
      "src/core/t.cpp",
      "#define LOG(x) \\\n"
      "  do_log(x)\n"
      "int live() { return 1; }\n");
  const std::vector<Token> toks = tokenize(f);
  for (const Token& t : toks) EXPECT_NE(t.text, "do_log");
  EXPECT_TRUE(std::any_of(toks.begin(), toks.end(),
                          [](const Token& t) { return t.text == "live"; }));
}

TEST(PwuLintTokenizer, BlockingOkCoversItsOwnLineOrTheNext) {
  const SourceFile trailing = source_from_string(
      "src/core/t.cpp", "open_it();  // pwu-lint: blocking-ok(reason)\n");
  const Directives dt = parse_directives(trailing);
  ASSERT_EQ(dt.allowed.count(1), 1u);
  EXPECT_EQ(dt.allowed.at(1).count("blocking-under-lock"), 1u);

  const SourceFile full_line = source_from_string(
      "src/core/t.cpp",
      "// pwu-lint: blocking-ok(reason)\n"
      "open_it();\n");
  const Directives df = parse_directives(full_line);
  ASSERT_EQ(df.allowed.count(2), 1u);
  EXPECT_EQ(df.allowed.at(2).count("blocking-under-lock"), 1u);
}

// ---------------------------------------------------------------------------
// Indexer unit tests
// ---------------------------------------------------------------------------

TEST(PwuLintIndex, AnnotatedFieldsStayVisible) {
  // Regression: the "skip function declarations" paren test used to eat
  // fields whose annotation macro carries an argument list.
  const SourceFile f = source_from_string(
      "src/core/t.cpp",
      "class Owner {\n"
      " public:\n"
      "  int touch();\n"
      " private:\n"
      "  util::Rng jitter_ PWU_RNG_STREAM(retry_jitter);\n"
      "  std::mutex mu_;\n"
      "  long count_ PWU_GUARDED_BY(mu_) = 0;\n"
      "};\n");
  const FileIndex fi = index_file(f, tokenize(f));
  ASSERT_EQ(fi.classes.size(), 1u);
  const Field* jitter = fi.classes[0].find_field("jitter_");
  ASSERT_NE(jitter, nullptr);
  EXPECT_TRUE(jitter->is_rng);
  EXPECT_EQ(jitter->rng_stream, "retry_jitter");
  const Field* count = fi.classes[0].find_field("count_");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->guarded_by, "mu_");
  const Field* mu = fi.classes[0].find_field("mu_");
  ASSERT_NE(mu, nullptr);
  EXPECT_TRUE(mu->is_mutex);
  // The method declaration is not a field.
  EXPECT_EQ(fi.classes[0].find_field("touch"), nullptr);
}

TEST(PwuLintIndex, RngParamAnnotationAndNameAreParsed) {
  const SourceFile f = source_from_string(
      "src/core/t.cpp",
      "double pick(util::Rng& rng PWU_RNG_STREAM(sel), const std::string& s) "
      "{ return 0.0; }\n");
  const FileIndex fi = index_file(f, tokenize(f));
  ASSERT_EQ(fi.functions.size(), 1u);
  ASSERT_EQ(fi.functions[0].params.size(), 2u);
  EXPECT_EQ(fi.functions[0].params[0].name, "rng");
  EXPECT_TRUE(fi.functions[0].params[0].is_rng);
  EXPECT_EQ(fi.functions[0].params[0].rng_stream, "sel");
}

TEST(PwuLintIndex, LockEventsCarryGuardSemantics) {
  const SourceFile f = source_from_string(
      "src/core/t.cpp",
      "void locked() {\n"
      "  std::unique_lock<std::mutex> lk(mu, std::defer_lock);\n"
      "  lk.lock();\n"
      "}\n");
  const FileIndex fi = index_file(f, tokenize(f));
  ASSERT_EQ(fi.functions.size(), 1u);
  const Event* lock_ev = nullptr;
  for (const Event& e : fi.functions[0].events) {
    if (e.kind == EventKind::Lock) lock_ev = &e;
  }
  ASSERT_NE(lock_ev, nullptr);
  EXPECT_TRUE(lock_ev->defer_lock);
  EXPECT_TRUE(lock_ev->is_unique_lock);
  EXPECT_EQ(lock_ev->guard_var, "lk");
  ASSERT_EQ(lock_ev->lock_args.size(), 1u);
  EXPECT_EQ(lock_ev->lock_args[0], "mu");
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

TEST(PwuLint, BaselineRoundTripGrandfathersEveryFinding) {
  const Report dirty = scan();
  ASSERT_EQ(dirty.active_count(), kActiveFindings);

  const std::string path = testing::TempDir() + "pwu_lint_test.baseline";
  {
    std::ofstream os(path);
    ASSERT_TRUE(os.good());
    write_baseline(os, dirty);
  }

  Options options;
  options.baseline_path = path;
  const Report clean = scan(options);
  EXPECT_EQ(clean.findings.size(), kActiveFindings);  // still visible...
  EXPECT_EQ(clean.baselined, kActiveFindings);  // ...but all grandfathered
  EXPECT_EQ(clean.active_count(), 0u);          // so the run passes
  std::remove(path.c_str());
}

TEST(PwuLint, BaselineIsCanonicallySortedAndDeduplicated) {
  const Report dirty = scan();
  std::ostringstream os;
  write_baseline(os, dirty);
  std::istringstream is(os.str());
  std::vector<std::string> keys;
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.front() != '#') keys.push_back(line);
  }
  EXPECT_FALSE(keys.empty());
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_TRUE(std::adjacent_find(keys.begin(), keys.end()) == keys.end());
}

TEST(PwuLint, MissingBaselineFileActsAsEmpty) {
  Options options;
  options.baseline_path = testing::TempDir() + "does_not_exist.baseline";
  const Report report = scan(options);
  EXPECT_EQ(report.baselined, 0u);
  EXPECT_EQ(report.active_count(), kActiveFindings);
}

TEST(PwuLint, BaselineKeyIgnoresLineNumbers) {
  Finding a{"no-raw-new", "src/x.cpp", 10, "msg", "int* p = new int;", false};
  Finding b = a;
  b.line = 99;  // content hash keys the baseline, not position
  EXPECT_EQ(baseline_key(a), baseline_key(b));
  b.excerpt = "int* q = new int;";
  EXPECT_NE(baseline_key(a), baseline_key(b));
}

// ---------------------------------------------------------------------------
// CLI surface
// ---------------------------------------------------------------------------

TEST(PwuLint, RulesFilterRestrictsTheScan) {
  Options options;
  options.rules = {"no-cout-logging"};
  const Report report = scan(options);
  EXPECT_EQ(report.findings.size(), 2u);
  for (const Finding& f : report.findings) {
    EXPECT_EQ(f.rule, "no-cout-logging");
  }
}

TEST(PwuLint, FlowRulesCanRunAlone) {
  Options options;
  options.rules = {"lock-graph"};
  const Report report = scan(options);
  EXPECT_EQ(report.findings.size(), 3u);
  for (const Finding& f : report.findings) {
    EXPECT_EQ(f.rule, "lock-graph");
  }
}

TEST(PwuLint, UnknownRuleAndMissingRootThrow) {
  Options options;
  options.rules = {"no-such-rule"};
  EXPECT_THROW(scan(options), std::runtime_error);
  EXPECT_THROW(run("/nonexistent/scan/root", Options{}), std::runtime_error);
}

TEST(PwuLint, CatalogListsEveryRuleOnceInReportingOrder) {
  const auto& catalog = rule_catalog();
  std::vector<std::string> names;
  for (const RuleInfo& rule : catalog) names.emplace_back(rule.name);
  // The nine line rules in their original order, then the six flow rules.
  const std::vector<std::string> expected = {
      "no-raw-rand",        "no-wallclock",        "no-cout-logging",
      "header-hygiene",     "no-raw-new",          "atomic-checkpoint",
      "no-unbounded-queue", "no-unlocked-mutable", "no-unchecked-simd",
      "lock-graph",         "blocking-under-lock", "rng-stream-discipline",
      "killpoint-safety",   "replicate-write-discipline",
      "framed-write-discipline"};
  EXPECT_EQ(names, expected);
  std::sort(names.begin(), names.end());
  EXPECT_TRUE(std::adjacent_find(names.begin(), names.end()) == names.end());
}

TEST(PwuLint, JsonTextAndSarifOutputsCarryTheFindings) {
  const Report report = scan();
  std::ostringstream text;
  print_text(text, report);
  EXPECT_NE(text.str().find("no-raw-rand"), std::string::npos);
  EXPECT_NE(text.str().find("31 finding(s)"), std::string::npos);

  std::ostringstream json;
  print_json(json, report);
  EXPECT_EQ(json.str().front(), '{');
  EXPECT_NE(json.str().find("\"findings\""), std::string::npos);
  EXPECT_NE(json.str().find("\"no-unlocked-mutable\""), std::string::npos);
  EXPECT_NE(json.str().find("\"suppressed\":8"), std::string::npos);

  std::ostringstream sarif;
  print_sarif(sarif, report);
  EXPECT_EQ(sarif.str().front(), '{');
  EXPECT_NE(sarif.str().find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.str().find("\"ruleId\":\"lock-graph\""), std::string::npos);
  // Every catalog rule is declared in the driver block.
  for (const RuleInfo& rule : rule_catalog()) {
    EXPECT_NE(sarif.str().find(std::string("\"id\":\"") + rule.name + "\""),
              std::string::npos)
        << rule.name;
  }
}

}  // namespace
}  // namespace pwu::lint
