// Comparing sampling strategies on hypre: run the paper's five methods on
// the solver-selection problem and report error-at-budget plus the cost
// each strategy spent on labeling — a compact Fig. 4/5 for one application.
//
//   $ ./tune_hypre [repeats=2]

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "util/table.hpp"
#include "workloads/hypre_model.hpp"

int main(int argc, char** argv) {
  using namespace pwu;
  const std::size_t repeats =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 2;

  const auto hypre = workloads::make_hypre();
  std::cout << "hypre (27pt 3D Laplacian via new_ij): "
            << static_cast<long long>(hypre->space().size())
            << " configurations\n";

  core::ExperimentSpec spec;
  spec.strategies = core::standard_strategy_names();
  spec.alpha = 0.05;
  spec.repeats = repeats;
  spec.pool_size = 7000;  // enumerable space: split covers everything
  spec.test_size = 3000;
  spec.learner.n_init = 10;
  spec.learner.n_max = 100;
  spec.learner.forest.num_trees = 40;
  spec.learner.eval_every = 15;
  spec.seed = 11;

  std::cout << "running " << spec.strategies.size() << " strategies x "
            << repeats << " repeats (budget " << spec.learner.n_max
            << " evaluations each)...\n\n";
  const auto result = core::run_experiment(*hypre, spec);

  core::print_rmse_chart(std::cout, result, "hypre: top-5% RMSE vs #samples");
  core::print_rmse_vs_cost_chart(std::cout, result,
                                 "hypre: top-5% RMSE vs cumulative cost");

  util::TextTable table;
  table.set_header({"strategy", "final RMSE (s)", "total labeling cost (s)"});
  for (const auto& series : result.series) {
    table.add_row({series.strategy,
                   util::TextTable::cell_sci(series.final_rmse()),
                   util::TextTable::cell(series.points.back().cc_mean, 1)});
  }
  table.print(std::cout);

  const double speedup = core::cost_speedup(result, "pwu", "pbus");
  if (std::isfinite(speedup)) {
    std::cout << "\nPWU reaches PBUS's matched error level at "
              << util::TextTable::cell(speedup, 2)
              << "x lower cumulative cost\n";
  }
  return 0;
}
