// CLI for ad-hoc strategy comparisons on any registered benchmark:
//
//   $ ./compare_strategies <workload> [alpha=0.05] [n_max=120] [repeats=2]
//   $ ./compare_strategies mm 0.01 200 3
//
// Prints the paper-style RMSE/CC table and charts for all six standard
// strategies plus the epsilon-greedy extension.

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace pwu;
  if (argc < 2) {
    std::cout << "usage: compare_strategies <workload> [alpha] [n_max] "
                 "[repeats]\nworkloads:";
    for (const auto& name : workloads::all_names()) std::cout << " " << name;
    std::cout << "\n";
    return 1;
  }
  const std::string name = argv[1];
  const double alpha = argc > 2 ? std::atof(argv[2]) : 0.05;
  const std::size_t n_max =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 120;
  const std::size_t repeats =
      argc > 4 ? static_cast<std::size_t>(std::atoi(argv[4])) : 2;

  const auto workload = workloads::make_workload(name);

  core::ExperimentSpec spec;
  spec.strategies = core::standard_strategy_names();
  spec.strategies.push_back("egreedy");
  spec.alpha = alpha;
  spec.repeats = repeats;
  spec.pool_size = 1400;
  spec.test_size = 600;
  spec.learner.n_init = 10;
  spec.learner.n_max = n_max;
  spec.learner.forest.num_trees = 40;
  spec.learner.eval_every = std::max<std::size_t>(1, n_max / 12);
  spec.seed = 2026;

  if (workload->space().size() < 1e6L) {
    const auto total = static_cast<std::size_t>(workload->space().size());
    spec.learner.n_max = std::min(spec.learner.n_max, total * 7 / 10);
  }

  std::cout << "comparing " << spec.strategies.size() << " strategies on "
            << name << " (alpha=" << alpha << ", budget "
            << spec.learner.n_max << ", " << repeats << " repeats)\n\n";
  const auto result = core::run_experiment(*workload, spec);

  core::print_series_table(std::cout, result);
  core::print_rmse_chart(std::cout, result,
                         name + ": top-alpha RMSE vs #samples");
  core::print_rmse_vs_cost_chart(std::cout, result,
                                 name + ": RMSE vs cumulative cost");

  const double speedup = core::cost_speedup(result, "pwu", "pbus");
  if (std::isfinite(speedup)) {
    std::cout << "PWU vs PBUS cost speedup at matched error: "
              << util::TextTable::cell(speedup, 2) << "x\n";
  }
  return 0;
}
