// Quickstart: build a performance model for a SPAPT kernel with PWU active
// learning in ~40 lines of user code.
//
//   $ ./quickstart [workload=atax] [n_max=120]
//
// Walks through the full pipeline: pool construction, Algorithm 1 with the
// PWU strategy, error reporting, and reading the best configuration off the
// learned model.

#include <cstdlib>
#include <iostream>

#include "core/active_learner.hpp"
#include "space/pool.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace pwu;

  const std::string name = argc > 1 ? argv[1] : "atax";
  const std::size_t n_max =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 120;

  // 1. The tuning target: any registered benchmark (or your own Workload).
  const auto workload = workloads::make_workload(name);
  std::cout << "workload: " << workload->name() << " ("
            << workload->space().num_params() << " parameters, 10^"
            << util::TextTable::cell(workload->space().log10_size(), 1)
            << " configurations)\n";

  // 2. A finite pool stands in for the intractable space (paper: 10,000
  //    uniform samples split 70/30 into pool and held-out test set).
  util::Rng rng(42);
  const auto split =
      space::make_pool_split(workload->space(), 1400, 600, rng);
  const auto test = core::build_test_set(*workload, split.test, rng);

  // 3. Algorithm 1 with the Performance-Weighted-Uncertainty strategy.
  core::LearnerConfig config;
  config.n_init = 10;                 // cold-start size
  config.n_batch = 1;                 // evaluations per iteration
  config.n_max = n_max;               // total labeling budget
  config.forest.num_trees = 40;
  config.eval_alphas = {0.05};        // score the top-5% band
  config.eval_every = 10;

  core::ActiveLearner learner(*workload, config);
  const auto strategy = core::make_pwu(/*alpha=*/0.05);
  std::cout << "running active learning (" << strategy->name() << ", budget "
            << n_max << " evaluations)...\n\n";
  const auto result = learner.run(*strategy, split.pool, test, rng);

  // 4. The learning curve.
  util::TextTable table;
  table.set_header({"#samples", "top-5% RMSE (s)", "cumulative cost (s)"});
  for (const auto& record : result.trace) {
    table.add_row({std::to_string(record.num_samples),
                   util::TextTable::cell_sci(record.top_alpha_rmse[0]),
                   util::TextTable::cell(record.cumulative_cost, 2)});
  }
  table.print(std::cout);

  // 5. Use the learned model: the cheapest predicted configuration in the
  //    pool of everything we never ran.
  double best_pred = 1e300;
  std::size_t best_idx = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const double pred = result.model->predict(test.features.row(i));
    if (pred < best_pred) {
      best_pred = pred;
      best_idx = i;
    }
  }
  std::cout << "\nmodel's favourite configuration (never executed during "
               "training):\n  "
            << workload->space().describe(split.test[best_idx])
            << "\n  predicted " << util::TextTable::cell(best_pred, 4)
            << " s, actually measured "
            << util::TextTable::cell(test.labels[best_idx], 4) << " s\n";
  return 0;
}
