// Tuning a parallel application: model kripke's 2304-point configuration
// space with a fraction of the evaluations, then inspect which parameters
// matter via permutation importance.
//
//   $ ./tune_kripke [budget=80]

#include <cstdlib>
#include <iostream>

#include "core/active_learner.hpp"
#include "space/pool.hpp"
#include "util/statistics.hpp"
#include "util/table.hpp"
#include "workloads/kripke_model.hpp"

int main(int argc, char** argv) {
  using namespace pwu;
  const std::size_t budget =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 80;

  const auto kripke = workloads::make_kripke();
  const auto& space = kripke->space();
  std::cout << "kripke: " << space.num_params() << " parameters, "
            << static_cast<long long>(space.size())
            << " total configurations; labeling budget " << budget << "\n";

  // Enumerable space: the pool split covers the whole space 70/30.
  util::Rng rng(7);
  const auto split = space::make_pool_split(space, 7000, 3000, rng);
  const auto test = core::build_test_set(*kripke, split.test, rng);

  core::LearnerConfig config;
  config.n_init = 10;
  config.n_max = budget;
  config.forest.num_trees = 40;
  config.eval_alphas = {0.05};
  config.eval_every = 10;
  core::ActiveLearner learner(*kripke, config);
  const auto result =
      learner.run(*core::make_pwu(0.05), split.pool, test, rng);

  std::cout << "\nfinal top-5% RMSE after " << budget << "/"
            << split.pool.size() << " pool evaluations: "
            << util::TextTable::cell_sci(
                   result.trace.back().top_alpha_rmse[0])
            << " s\n";

  // What did the model learn matters? Permutation importance over the
  // evaluated training set.
  rf::Dataset train(space.num_params(), space.categorical_mask(),
                    space.cardinalities());
  for (std::size_t i = 0; i < result.train_configs.size(); ++i) {
    train.add(space.features(result.train_configs[i]),
              result.train_labels[i]);
  }
  const rf::RandomForest* forest = core::as_forest(*result.model);
  const auto importance = forest->permutation_importance(train, rng);
  util::TextTable table;
  table.set_header({"parameter", "importance (MSE increase)"});
  for (std::size_t i = 0; i < space.num_params(); ++i) {
    table.add_row({space.param(i).name(),
                   util::TextTable::cell_sci(importance[i])});
  }
  std::cout << "\npermutation feature importance:\n";
  table.print(std::cout);

  // Best configuration among the model's predictions over the test set.
  std::size_t best = 0;
  double best_pred = 1e300;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const double p = result.model->predict(test.features.row(i));
    if (p < best_pred) {
      best_pred = p;
      best = i;
    }
  }
  const double true_best = util::min_value(test.labels);
  std::cout << "\nrecommended configuration: "
            << space.describe(split.test[best]) << "\n  measured "
            << util::TextTable::cell(test.labels[best], 2)
            << " s (test-set optimum " << util::TextTable::cell(true_best, 2)
            << " s)\n";
  return 0;
}
