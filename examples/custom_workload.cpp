// Bringing your own black box: wrap any config -> seconds function as a
// Workload and hand it to the active learner. Here: a mock "GPU kernel
// launch" tuning problem (block size, items per thread, staging buffer,
// algorithm variant) with a hand-written cost function standing in for a
// real measurement harness — in production this lambda would execute your
// program and time it.
//
//   $ ./custom_workload

#include <cmath>
#include <iostream>

#include "core/active_learner.hpp"
#include "space/pool.hpp"
#include "util/table.hpp"
#include "workloads/synthetic.hpp"

int main() {
  using namespace pwu;

  // 1. Declare the parameter space.
  space::ParameterSpace gpu_space;
  gpu_space.add(space::Parameter::ordinal(
      "block_size", {32, 64, 128, 256, 512, 1024}));
  gpu_space.add(space::Parameter::int_range("items_per_thread", 1, 16));
  gpu_space.add(space::Parameter::boolean("use_shared_staging"));
  gpu_space.add(space::Parameter::categorical(
      "variant", {"scalar", "vectorized", "warp_shuffle"}));

  // 2. Declare the black box. In a real deployment this runs the program.
  auto launch_time = [&gpu_space](const space::Configuration& c) {
    const double block = gpu_space.param(0).numeric_value(c.level(0));
    const double ipt = gpu_space.param(1).numeric_value(c.level(1));
    const bool staging = c.level(2) == 1;
    const std::size_t variant = c.level(3);

    // Occupancy curve: too-small blocks underfill SMs, too-big ones limit
    // resident blocks.
    const double occupancy =
        1.0 / (1.0 + std::pow(std::log2(block / 256.0), 2.0) * 0.15);
    // ILP from items-per-thread saturates, then registers spill.
    const double ilp = std::min(ipt, 8.0) / (ipt > 8.0 ? ipt / 8.0 : 1.0);
    const double variant_gain[3] = {1.0, 0.62, 0.55};
    double t = 2e-3 / (occupancy * (0.5 + 0.5 * ilp / 8.0));
    t *= variant_gain[variant];
    // Shared-memory staging helps the scalar variant only.
    if (staging) t *= variant == 0 ? 0.8 : 1.05;
    return t;
  };

  sim::NoiseModel noise;
  noise.lognormal_sigma = 0.02;  // launch-timer jitter
  auto workload = workloads::make_custom("gpu_reduce", std::move(gpu_space),
                                         launch_time, noise);

  std::cout << "custom workload '" << workload->name() << "': "
            << static_cast<long long>(workload->space().size())
            << " configurations\n";

  // 3. Model it. Small space -> the split enumerates everything.
  util::Rng rng(3);
  const auto split = space::make_pool_split(workload->space(), 500, 200, rng);
  const auto test = core::build_test_set(*workload, split.test, rng);

  core::LearnerConfig config;
  config.n_init = 8;
  config.n_max = 48;
  config.forest.num_trees = 30;
  config.eval_alphas = {0.10};
  config.eval_every = 8;
  core::ActiveLearner learner(*workload, config);
  const auto result =
      learner.run(*core::make_pwu(0.10), split.pool, test, rng);

  util::TextTable table;
  table.set_header({"#samples", "top-10% RMSE (s)"});
  for (const auto& record : result.trace) {
    table.add_row({std::to_string(record.num_samples),
                   util::TextTable::cell_sci(record.top_alpha_rmse[0])});
  }
  table.print(std::cout);

  // 4. Ask the model for the best launch configuration.
  std::size_t best = 0;
  double best_pred = 1e300;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const double p = result.model->predict(test.features.row(i));
    if (p < best_pred) {
      best_pred = p;
      best = i;
    }
  }
  std::cout << "\nrecommended launch config: "
            << workload->space().describe(split.test[best]) << "\n("
            << util::TextTable::cell(test.labels[best] * 1e3, 3)
            << " ms measured, model spent only " << result.train_labels.size()
            << " of " << split.pool.size() + test.size()
            << " possible launches)\n";
  return 0;
}
