#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/statistics.hpp"

namespace pwu::core {

TestSet build_test_set(const workloads::Workload& workload,
                       std::span<const space::Configuration> configs,
                       util::Rng& rng, int repetitions) {
  TestSet test;
  const auto& space = workload.space();
  test.features =
      rf::FeatureMatrix::with_capacity(space.num_params(), configs.size());
  test.labels.reserve(configs.size());
  for (const auto& config : configs) {
    space.write_features(config, test.features.append_row());
    test.labels.push_back(workload.measure(config, rng, repetitions));
  }
  test.ranking = util::argsort(test.labels);
  return test;
}

namespace detail {

double ranked_prefix_rmse(const PredictFn& predict, const TestSet& test,
                          std::size_t count) {
  if (test.size() == 0) {
    throw std::invalid_argument("ranked_prefix_rmse: empty test set");
  }
  count = std::clamp<std::size_t>(count, 1, test.size());
  double acc = 0.0;
  for (std::size_t r = 0; r < count; ++r) {
    const std::size_t i = test.ranking[r];
    const double err = predict(test.features.row(i)) - test.labels[i];
    acc += err * err;
  }
  return std::sqrt(acc / static_cast<double>(count));
}

std::size_t alpha_prefix(const TestSet& test, double alpha) {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("top_alpha_rmse: alpha must be in (0, 1]");
  }
  return static_cast<std::size_t>(
      std::floor(static_cast<double>(test.size()) * alpha));
}

double ranking_tau_impl(const PredictFn& predict, const TestSet& test) {
  std::vector<double> predicted(test.size());
  for (std::size_t i = 0; i < test.size(); ++i) {
    predicted[i] = predict(test.features.row(i));
  }
  return util::kendall_tau(test.labels, predicted);
}

}  // namespace detail

double cumulative_cost(std::span<const double> labels) {
  return std::accumulate(labels.begin(), labels.end(), 0.0);
}

}  // namespace pwu::core
