// BRS (Biased Random Sampling) — the paper's refined random baseline:
// sample uniformly, but only from the top p% of the *predicted* performance
// ranking. Cheap labels with some focus, but no redundancy control.

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/sampling_strategy.hpp"
#include "util/contracts.hpp"

namespace pwu::core {

namespace {

class BiasedRandomStrategy final : public SamplingStrategy {
 public:
  explicit BiasedRandomStrategy(double top_fraction)
      : top_fraction_(top_fraction),
        name_("brs(p=" + std::to_string(top_fraction) + ")") {
    if (top_fraction <= 0.0 || top_fraction > 1.0) {
      throw std::invalid_argument("BRS: top fraction must be in (0, 1]");
    }
  }

  const std::string& name() const override { return name_; }

  std::vector<std::size_t> select(const PoolPrediction& prediction,
                                  std::size_t batch,
                                  util::Rng& rng PWU_RNG_STREAM(strategy)) const override {
    const std::size_t n = prediction.size();
    const auto top_count = std::max<std::size_t>(
        batch, static_cast<std::size_t>(
                   std::ceil(top_fraction_ * static_cast<double>(n))));
    std::vector<std::size_t> top = bottom_k_indices(prediction.mean, top_count);
    std::vector<std::size_t> picks =
        rng.sample_without_replacement(top.size(), batch);
    std::vector<std::size_t> out;
    out.reserve(batch);
    for (std::size_t p : picks) out.push_back(top[p]);
    return out;
  }

 private:
  double top_fraction_;
  std::string name_;
};

}  // namespace

StrategyPtr make_biased_random(double top_fraction) {
  return std::make_unique<BiasedRandomStrategy>(top_fraction);
}

}  // namespace pwu::core
