// BestPerf: pure exploitation — always evaluate the configurations the
// model predicts fastest. Cheapest possible labels (Fig. 3) but the model
// never learns the boundary of the high-performance region, so its error
// plateaus early (Fig. 2).

#include "core/sampling_strategy.hpp"

namespace pwu::core {

namespace {

class BestPerformanceStrategy final : public SamplingStrategy {
 public:
  BestPerformanceStrategy() : name_("bestperf") {}

  const std::string& name() const override { return name_; }

  std::vector<std::size_t> select(const PoolPrediction& prediction,
                                  std::size_t batch,
                                  util::Rng& /*rng*/) const override {
    return bottom_k_indices(prediction.mean, batch);
  }

 private:
  std::string name_;
};

}  // namespace

StrategyPtr make_best_performance() {
  return std::make_unique<BestPerformanceStrategy>();
}

}  // namespace pwu::core
