// Diversity-aware batch PWU (extension for n_batch > 1).
//
// Plain top-k PWU batches can be nearly identical configurations — the
// top of the score ranking often sits in one small region, and evaluating
// k near-duplicates before the next refit wastes most of the batch. This
// strategy keeps PWU's scoring but greedily trades score against distance
// from the already-selected batch (a k-center-style rule), which is how
// batch-mode active learning is usually repaired in practice.

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/sampling_strategy.hpp"

namespace pwu::core {

namespace {

class DiversePwuStrategy final : public SamplingStrategy {
 public:
  DiversePwuStrategy(double alpha, double diversity_weight)
      : alpha_(alpha),
        weight_(diversity_weight),
        name_("diverse-pwu(alpha=" + std::to_string(alpha) +
              ",w=" + std::to_string(diversity_weight) + ")") {
    if (diversity_weight < 0.0) {
      throw std::invalid_argument(
          "diverse-pwu: diversity weight must be >= 0");
    }
  }

  const std::string& name() const override { return name_; }

  std::vector<std::size_t> select(const PoolPrediction& prediction,
                                  std::size_t batch,
                                  util::Rng& /*rng*/) const override {
    const std::vector<double> scores = pwu_scores(prediction, alpha_);
    if (batch <= 1 || prediction.features.empty() || weight_ == 0.0) {
      return top_k_indices(scores, batch);
    }

    const std::size_t n = prediction.size();
    const std::size_t dims = prediction.features.num_cols();

    // Per-dimension min-max normalization so no feature dominates the
    // distance.
    std::vector<double> lo(dims, std::numeric_limits<double>::infinity());
    std::vector<double> hi(dims, -std::numeric_limits<double>::infinity());
    for (std::size_t r = 0; r < prediction.features.num_rows(); ++r) {
      const auto row = prediction.features.row(r);
      for (std::size_t d = 0; d < dims; ++d) {
        lo[d] = std::min(lo[d], row[d]);
        hi[d] = std::max(hi[d], row[d]);
      }
    }
    std::vector<double> inv_range(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      inv_range[d] = hi[d] > lo[d] ? 1.0 / (hi[d] - lo[d]) : 0.0;
    }
    auto distance = [&](std::size_t a, std::size_t b) {
      const auto row_a = prediction.features.row(a);
      const auto row_b = prediction.features.row(b);
      double sq = 0.0;
      for (std::size_t d = 0; d < dims; ++d) {
        const double diff = (row_a[d] - row_b[d]) * inv_range[d];
        sq += diff * diff;
      }
      return std::sqrt(sq);
    };

    std::vector<std::size_t> picked;
    picked.reserve(batch);
    // Track each candidate's distance to the nearest picked point.
    std::vector<double> nearest(n, std::numeric_limits<double>::infinity());
    const double diameter = std::sqrt(static_cast<double>(dims));

    // First pick: pure score.
    std::size_t first = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (scores[i] > scores[first]) first = i;
    }
    picked.push_back(first);

    while (picked.size() < std::min(batch, n)) {
      for (std::size_t i = 0; i < n; ++i) {
        nearest[i] = std::min(nearest[i], distance(i, picked.back()));
      }
      double best_value = -1.0;
      std::size_t best_idx = n;
      for (std::size_t i = 0; i < n; ++i) {
        if (nearest[i] == 0.0) continue;  // already picked (or duplicate)
        const double spread = std::min(nearest[i] / diameter, 1.0);
        const double value = scores[i] * std::pow(spread, weight_);
        if (value > best_value) {
          best_value = value;
          best_idx = i;
        }
      }
      if (best_idx == n) break;  // everything is a duplicate of the batch
      picked.push_back(best_idx);
    }
    // Degenerate pools (all duplicates): top up by plain ranking.
    if (picked.size() < std::min(batch, n)) {
      for (std::size_t idx : top_k_indices(scores, n)) {
        if (picked.size() >= std::min(batch, n)) break;
        if (std::find(picked.begin(), picked.end(), idx) == picked.end()) {
          picked.push_back(idx);
        }
      }
    }
    return picked;
  }

 private:
  double alpha_;
  double weight_;
  std::string name_;
};

}  // namespace

StrategyPtr make_diverse_pwu(double alpha, double diversity_weight) {
  return std::make_unique<DiversePwuStrategy>(alpha, diversity_weight);
}

}  // namespace pwu::core
