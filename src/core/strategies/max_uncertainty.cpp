// MaxU: classic uncertainty sampling — evaluate wherever the ensemble
// disagrees most. Models the *whole* space equally well, which the paper
// shows wastes budget on the (irrelevant) poor-performance regions.

#include "core/sampling_strategy.hpp"

namespace pwu::core {

namespace {

class MaxUncertaintyStrategy final : public SamplingStrategy {
 public:
  MaxUncertaintyStrategy() : name_("maxu") {}

  const std::string& name() const override { return name_; }

  std::vector<std::size_t> select(const PoolPrediction& prediction,
                                  std::size_t batch,
                                  util::Rng& /*rng*/) const override {
    return top_k_indices(prediction.stddev, batch);
  }

 private:
  std::string name_;
};

}  // namespace

StrategyPtr make_max_uncertainty() {
  return std::make_unique<MaxUncertaintyStrategy>();
}

}  // namespace pwu::core
