// Extension beyond the paper: epsilon-greedy PWU. With probability epsilon
// each pick is uniform over the pool, otherwise it is the PWU argmax.
// Guards against surrogate lock-in when the forest is badly miscalibrated
// early on; the ablation bench quantifies whether plain PWU already
// explores enough (the paper's claim).

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "core/sampling_strategy.hpp"
#include "util/contracts.hpp"

namespace pwu::core {

namespace {

class EpsilonGreedyPwuStrategy final : public SamplingStrategy {
 public:
  EpsilonGreedyPwuStrategy(double alpha, double epsilon)
      : alpha_(alpha),
        epsilon_(epsilon),
        name_("egreedy-pwu(alpha=" + std::to_string(alpha) +
              ",eps=" + std::to_string(epsilon) + ")") {
    if (epsilon < 0.0 || epsilon > 1.0) {
      throw std::invalid_argument("epsilon-greedy: epsilon must be in [0,1]");
    }
  }

  const std::string& name() const override { return name_; }

  std::vector<std::size_t> select(const PoolPrediction& prediction,
                                  std::size_t batch,
                                  util::Rng& rng PWU_RNG_STREAM(strategy)) const override {
    const std::vector<double> scores = pwu_scores(prediction, alpha_);
    // Greedy ranking, long enough to backfill around random picks.
    std::vector<std::size_t> ranked =
        top_k_indices(scores, std::min(prediction.size(), batch * 2 + 8));

    std::vector<std::size_t> out;
    std::unordered_set<std::size_t> used;
    out.reserve(batch);
    std::size_t rank_pos = 0;
    while (out.size() < batch) {
      std::size_t pick;
      if (rng.bernoulli(epsilon_)) {
        pick = rng.index(prediction.size());
      } else if (rank_pos < ranked.size()) {
        pick = ranked[rank_pos++];
      } else {
        pick = rng.index(prediction.size());
      }
      if (used.insert(pick).second) out.push_back(pick);
    }
    return out;
  }

 private:
  double alpha_;
  double epsilon_;
  std::string name_;
};

}  // namespace

StrategyPtr make_epsilon_greedy_pwu(double alpha, double epsilon) {
  return std::make_unique<EpsilonGreedyPwuStrategy>(alpha, epsilon);
}

}  // namespace pwu::core
