// Performance Weighted Uncertainty sampling — the paper's contribution
// (Section II-C, Eq. 1).
//
// The score s_i = sigma_i / mu_i^(1-alpha) combines both objectives into a
// single continuous quantity instead of filtering on one before the other
// (PBUS): between two equally uncertain candidates the one predicted faster
// scores higher, and between two equally fast candidates the more uncertain
// one scores higher. At alpha = 1 the performance weight vanishes (pure
// uncertainty sampling); at alpha = 0 the score is the coefficient of
// variation sigma/mu — the risk/return statistic the paper draws the
// finance analogy with.

#include "core/sampling_strategy.hpp"

namespace pwu::core {

namespace {

class PwuStrategy final : public SamplingStrategy {
 public:
  explicit PwuStrategy(double alpha)
      : alpha_(alpha),
        name_("pwu(alpha=" + std::to_string(alpha) + ")") {}

  const std::string& name() const override { return name_; }

  std::vector<std::size_t> select(const PoolPrediction& prediction,
                                  std::size_t batch,
                                  util::Rng& /*rng*/) const override {
    const std::vector<double> scores = pwu_scores(prediction, alpha_);
    return top_k_indices(scores, batch);
  }

  double alpha() const { return alpha_; }

 private:
  double alpha_;
  std::string name_;
};

}  // namespace

StrategyPtr make_pwu(double alpha) {
  return std::make_unique<PwuStrategy>(alpha);
}

}  // namespace pwu::core
