// Performance-Biased Uncertainty Sampling (Balaprakash, Gramacy & Wild,
// CLUSTER 2013) — the strongest prior method the paper compares against.
//
// PBUS considers performance *before* uncertainty: it first restricts the
// pool to the candidates predicted to perform best (the bias set), then
// selects the most uncertain candidates inside that set. The paper's
// Section IV-C shows the failure mode this creates: once the model is
// confident about the high-performance region, the bias set has uniformly
// low uncertainty, and PBUS keeps resampling well-understood (redundant)
// configurations instead of exploring — exactly what Fig. 9 visualizes.

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/sampling_strategy.hpp"

namespace pwu::core {

namespace {

class PbusStrategy final : public SamplingStrategy {
 public:
  explicit PbusStrategy(double bias_fraction)
      : bias_fraction_(bias_fraction),
        name_("pbus(q=" + std::to_string(bias_fraction) + ")") {
    if (bias_fraction <= 0.0 || bias_fraction > 1.0) {
      throw std::invalid_argument("PBUS: bias fraction must be in (0, 1]");
    }
  }

  const std::string& name() const override { return name_; }

  std::vector<std::size_t> select(const PoolPrediction& prediction,
                                  std::size_t batch,
                                  util::Rng& /*rng*/) const override {
    const std::size_t n = prediction.size();
    // Bias set: the predicted-fastest q-fraction (at least `batch` so the
    // selection is always possible).
    const auto bias_count = std::max<std::size_t>(
        batch, static_cast<std::size_t>(
                   std::ceil(bias_fraction_ * static_cast<double>(n))));
    std::vector<std::size_t> bias_set =
        bottom_k_indices(prediction.mean, bias_count);

    // Most uncertain within the bias set.
    std::vector<double> bias_sigma(bias_set.size());
    for (std::size_t i = 0; i < bias_set.size(); ++i) {
      bias_sigma[i] = prediction.stddev[bias_set[i]];
    }
    std::vector<std::size_t> local = top_k_indices(bias_sigma, batch);
    std::vector<std::size_t> out;
    out.reserve(local.size());
    for (std::size_t l : local) out.push_back(bias_set[l]);
    return out;
  }

 private:
  double bias_fraction_;
  std::string name_;
};

}  // namespace

StrategyPtr make_pbus(double bias_fraction) {
  return std::make_unique<PbusStrategy>(bias_fraction);
}

}  // namespace pwu::core
