// Uniform random sampling — the passive-learning baseline every active
// method must beat.

#include "core/sampling_strategy.hpp"
#include "util/contracts.hpp"

namespace pwu::core {

namespace {

class UniformRandomStrategy final : public SamplingStrategy {
 public:
  UniformRandomStrategy() : name_("random") {}

  const std::string& name() const override { return name_; }

  std::vector<std::size_t> select(const PoolPrediction& prediction,
                                  std::size_t batch,
                                  util::Rng& rng PWU_RNG_STREAM(strategy)) const override {
    return rng.sample_without_replacement(prediction.size(), batch);
  }

 private:
  std::string name_;
};

}  // namespace

StrategyPtr make_uniform_random() {
  return std::make_unique<UniformRandomStrategy>();
}

}  // namespace pwu::core
