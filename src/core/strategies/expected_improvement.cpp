// Expected Improvement acquisition (SMAC-style, Hutter et al. — the
// paper's reference [22]). Included as an ablation: EI optimizes for
// *finding the single best configuration*, while the paper's goal is an
// accurate model of the whole high-performance band, so EI typically
// under-explores for the top-alpha RMSE objective.

#include <algorithm>
#include <cmath>
#include <numbers>

#include "core/sampling_strategy.hpp"

namespace pwu::core {

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::numbers::sqrt2);
}

std::vector<double> ei_scores(const PoolPrediction& prediction,
                              double incumbent) {
  std::vector<double> scores(prediction.size());
  for (std::size_t i = 0; i < prediction.size(); ++i) {
    const double mu = prediction.mean[i];
    const double sigma = prediction.stddev[i];
    const double gap = incumbent - mu;  // positive = predicted improvement
    if (sigma <= 1e-15) {
      scores[i] = std::max(gap, 0.0);
      continue;
    }
    const double z = gap / sigma;
    const double pdf =
        std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
    scores[i] = sigma * (z * normal_cdf(z) + pdf);
  }
  return scores;
}

namespace {

class ExpectedImprovementStrategy final : public SamplingStrategy {
 public:
  ExpectedImprovementStrategy() : name_("ei") {}

  const std::string& name() const override { return name_; }

  std::vector<std::size_t> select(const PoolPrediction& prediction,
                                  std::size_t batch,
                                  util::Rng& /*rng*/) const override {
    double incumbent = prediction.best_observed;
    if (!std::isfinite(incumbent)) {
      // No incumbent provided: fall back to the best prediction.
      incumbent = *std::min_element(prediction.mean.begin(),
                                    prediction.mean.end());
    }
    return top_k_indices(ei_scores(prediction, incumbent), batch);
  }

 private:
  std::string name_;
};

}  // namespace

StrategyPtr make_expected_improvement() {
  return std::make_unique<ExpectedImprovementStrategy>();
}

}  // namespace pwu::core
