#include "core/active_learner.hpp"

#include <algorithm>
#include <stdexcept>

namespace pwu::core {

ActiveLearner::ActiveLearner(const workloads::Workload& workload,
                             LearnerConfig config)
    : workload_(workload), config_(std::move(config)) {
  if (config_.n_init == 0) {
    throw std::invalid_argument("ActiveLearner: n_init must be > 0");
  }
  if (config_.n_batch == 0) {
    throw std::invalid_argument("ActiveLearner: n_batch must be > 0");
  }
  if (config_.n_max < config_.n_init) {
    throw std::invalid_argument("ActiveLearner: n_max must be >= n_init");
  }
  if (config_.eval_every == 0) {
    throw std::invalid_argument("ActiveLearner: eval_every must be > 0");
  }
}

LearnerResult ActiveLearner::run(const SamplingStrategy& strategy,
                                 std::vector<space::Configuration> pool_configs,
                                 const TestSet& test, util::Rng& rng,
                                 util::ThreadPool* thread_pool) const {
  return run_impl(strategy, std::move(pool_configs), test, nullptr, rng,
                  thread_pool);
}

LearnerResult ActiveLearner::run_warm(
    const SamplingStrategy& strategy,
    std::vector<space::Configuration> pool_configs, const TestSet& test,
    const rf::Dataset& warm_start, util::Rng& rng,
    util::ThreadPool* thread_pool) const {
  if (warm_start.num_features() != workload_.space().num_params()) {
    throw std::invalid_argument(
        "ActiveLearner::run_warm: warm-start feature schema mismatch");
  }
  return run_impl(strategy, std::move(pool_configs), test, &warm_start, rng,
                  thread_pool);
}

LearnerResult ActiveLearner::run_impl(
    const SamplingStrategy& strategy,
    std::vector<space::Configuration> pool_configs, const TestSet& test,
    const rf::Dataset* warm_start, util::Rng& rng,
    util::ThreadPool* thread_pool) const {
  const auto& param_space = workload_.space();
  if (pool_configs.size() < config_.n_init) {
    throw std::invalid_argument("ActiveLearner::run: pool smaller than n_init");
  }

  space::CandidatePool pool(std::move(pool_configs));
  rf::Dataset train(param_space.num_params(), param_space.categorical_mask(),
                    param_space.cardinalities());
  // Warm-start rows seed the model but are free (source-task labels) and
  // do not count toward the target budget.
  std::size_t warm_rows = 0;
  if (warm_start != nullptr) {
    for (std::size_t i = 0; i < warm_start->size(); ++i) {
      train.add(warm_start->row(i), warm_start->y(i));
    }
    warm_rows = warm_start->size();
  }
  // Target-sample count = train.size() - warm_rows below.

  LearnerResult result;
  double cumulative_cost = 0.0;

  auto evaluate_and_append = [&](space::Configuration config,
                                 const rf::PredictionStats* stats,
                                 std::size_t iteration) {
    const double label =
        workload_.measure(config, rng, config_.measure_repetitions);
    cumulative_cost += label;
    train.add(param_space.features(config), label);
    if (stats != nullptr) {
      result.selections.push_back(
          {iteration, stats->mean, stats->stddev, label});
    }
    result.train_configs.push_back(std::move(config));
    result.train_labels.push_back(label);
  };

  // ---- Cold start (Algorithm 1, lines 1-4). ----
  {
    std::vector<std::size_t> init_indices =
        pool.sample_indices(std::min(config_.n_init, pool.size()), rng);
    for (auto& config : pool.take_many(std::move(init_indices))) {
      evaluate_and_append(std::move(config), nullptr, 0);
    }
  }

  std::shared_ptr<Surrogate> model =
      make_surrogate(config_.surrogate, config_.forest, config_.gp);
  model->fit(train, rng, thread_pool);

  auto record = [&]() {
    IterationRecord rec;
    rec.num_samples = train.size() - warm_rows;
    rec.cumulative_cost = cumulative_cost;
    rec.top_alpha_rmse.reserve(config_.eval_alphas.size());
    for (double alpha : config_.eval_alphas) {
      rec.top_alpha_rmse.push_back(top_alpha_rmse(*model, test, alpha));
    }
    rec.full_rmse = full_rmse(*model, test);
    result.trace.push_back(std::move(rec));
  };
  record();

  // ---- Iteration phase (Algorithm 1, lines 5-9). ----
  std::size_t iteration = 0;
  while (train.size() - warm_rows < config_.n_max && !pool.empty()) {
    ++iteration;
    const std::size_t batch = std::min(
        {config_.n_batch, config_.n_max - (train.size() - warm_rows),
         pool.size()});

    // Predict over the current pool.
    PoolPrediction prediction;
    prediction.best_observed =
        *std::min_element(result.train_labels.begin(),
                          result.train_labels.end());
    prediction.mean.resize(pool.size());
    prediction.stddev.resize(pool.size());
    std::vector<rf::PredictionStats> stats(pool.size());
    {
      std::vector<std::vector<double>> rows;
      rows.reserve(pool.size());
      for (std::size_t i = 0; i < pool.size(); ++i) {
        rows.push_back(param_space.features(pool.at(i)));
      }
      stats = model->predict_stats_batch(rows, thread_pool);
      for (std::size_t i = 0; i < stats.size(); ++i) {
        prediction.mean[i] = stats[i].mean;
        prediction.stddev[i] = stats[i].stddev;
      }
      // Hand the feature rows to the strategy (diversity-aware batch
      // selection needs them; everything else ignores them).
      prediction.features = std::move(rows);
    }

    std::vector<std::size_t> selected =
        strategy.select(prediction, batch, rng);
    if (selected.empty()) {
      throw std::logic_error("SamplingStrategy returned an empty batch");
    }
    // Remove in descending index order so earlier removals (swap-with-last)
    // cannot disturb later indices, keeping each config paired with the
    // prediction it was selected under.
    std::sort(selected.begin(), selected.end());
    selected.erase(std::unique(selected.begin(), selected.end()),
                   selected.end());
    for (auto it = selected.rbegin(); it != selected.rend(); ++it) {
      const rf::PredictionStats selected_stat = stats.at(*it);
      evaluate_and_append(pool.take(*it), &selected_stat, iteration);
    }

    // Refit from scratch on the grown training set (Algorithm 1, line 8).
    model->fit(train, rng, thread_pool);

    const bool should_eval = iteration % config_.eval_every == 0 ||
                             train.size() - warm_rows >= config_.n_max ||
                             pool.empty();
    if (should_eval) record();
  }

  result.model = std::move(model);
  return result;
}

}  // namespace pwu::core
