#include "core/active_learner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "service/ask_tell_session.hpp"
#include "util/contracts.hpp"

namespace pwu::core {

double FailurePolicy::backoff_seconds(std::size_t attempt) const {
  if (attempt == 0) return 0.0;
  // base * 2^(attempt-1), capped. Computed multiplicatively so large
  // attempt counts saturate at the cap instead of overflowing.
  double wait = backoff_base_seconds;
  for (std::size_t i = 1; i < attempt && wait < backoff_cap_seconds; ++i) {
    wait *= 2.0;
  }
  return std::min(wait, backoff_cap_seconds);
}

ActiveLearner::ActiveLearner(const workloads::Workload& workload,
                             LearnerConfig config)
    : workload_(workload), config_(std::move(config)) {
  if (config_.n_init == 0) {
    throw std::invalid_argument("ActiveLearner: n_init must be > 0");
  }
  if (config_.n_batch == 0) {
    throw std::invalid_argument("ActiveLearner: n_batch must be > 0");
  }
  if (config_.n_max < config_.n_init) {
    throw std::invalid_argument("ActiveLearner: n_max must be >= n_init");
  }
  if (config_.eval_every == 0) {
    throw std::invalid_argument("ActiveLearner: eval_every must be > 0");
  }
}

LearnerResult ActiveLearner::run(const SamplingStrategy& strategy,
                                 std::vector<space::Configuration> pool_configs,
                                 const TestSet& test, util::Rng& rng,
                                 util::ThreadPool* thread_pool) const {
  return run_impl(strategy, std::move(pool_configs), test, nullptr, rng,
                  thread_pool);
}

LearnerResult ActiveLearner::run_warm(
    const SamplingStrategy& strategy,
    std::vector<space::Configuration> pool_configs, const TestSet& test,
    const rf::Dataset& warm_start, util::Rng& rng,
    util::ThreadPool* thread_pool) const {
  if (warm_start.num_features() != workload_.space().num_params()) {
    throw std::invalid_argument(
        "ActiveLearner::run_warm: warm-start feature schema mismatch");
  }
  return run_impl(strategy, std::move(pool_configs), test, &warm_start, rng,
                  thread_pool);
}

// Failure-aware driver: identical loop shape to run_impl, but every
// measurement goes through the executor and can fail. Transient failures
// are re-measured after the rest of the batch (still in ask order);
// deterministic ones drop into the session's failed set. The evaluation
// record is skipped while no surrogate exists yet — possible when failures
// stretch the cold start across several top-up batches.
LearnerResult ActiveLearner::run_with_executor(
    const SamplingStrategy& strategy,
    std::vector<space::Configuration> pool_configs, const TestSet& test,
    sim::Executor& executor, util::Rng& rng PWU_RNG_STREAM(run),
    util::ThreadPool* thread_pool) const {
  if (pool_configs.size() < config_.n_init) {
    throw std::invalid_argument(
        "ActiveLearner::run_with_executor: pool smaller than n_init");
  }

  const std::uint64_t session_seed = rng.next_u64();
  util::Rng measure_rng(rng.next_u64());

  service::AskTellSession session(workload_.space(), strategy, config_,
                                  std::move(pool_configs), nullptr,
                                  session_seed, thread_pool);

  LearnerResult result;
  auto measure_batch = [&](std::vector<service::Candidate> batch) {
    while (!batch.empty()) {
      std::vector<service::Candidate> retry;
      for (const auto& candidate : batch) {
        const sim::MeasurementResult measured =
            executor.measure(workload_, candidate.config, measure_rng);
        if (measured.ok()) {
          session.tell(candidate.config, measured.time);
          continue;
        }
        const service::FailureOutcome outcome = session.tell_failure(
            candidate.config, measured.status, measured.cost);
        if (outcome.action == service::FailureAction::Retry) {
          retry.push_back(candidate);
        }
      }
      batch = std::move(retry);
    }
    session.refit();
  };
  auto record = [&]() {
    if (session.model() == nullptr) return;
    IterationRecord rec;
    rec.num_samples = session.num_labeled();
    rec.cumulative_cost = session.cumulative_cost();
    rec.top_alpha_rmse.reserve(config_.eval_alphas.size());
    const Surrogate& model = *session.model();
    for (double alpha : config_.eval_alphas) {
      rec.top_alpha_rmse.push_back(top_alpha_rmse(model, test, alpha));
    }
    rec.full_rmse = full_rmse(model, test);
    result.trace.push_back(std::move(rec));
  };

  measure_batch(session.ask());
  record();
  while (!session.done()) {
    measure_batch(session.ask());
    const bool should_eval =
        session.iteration() % config_.eval_every == 0 || session.done();
    if (should_eval) record();
  }

  result.selections = session.selections();
  result.train_configs = session.train_configs();
  result.train_labels = session.train_labels();
  result.model = session.model();
  result.failed_configs = session.failed().size();
  result.transient_retries = session.transient_retries();
  result.failure_cost = session.failure_cost();
  return result;
}

// Thin driver over service::AskTellSession — the single Algorithm-1 loop
// shared with the tuning service. The driver owns what a service client
// would: the measurement callback, the held-out evaluation, and the trace.
LearnerResult ActiveLearner::run_impl(
    const SamplingStrategy& strategy,
    std::vector<space::Configuration> pool_configs, const TestSet& test,
    const rf::Dataset* warm_start, util::Rng& rng PWU_RNG_STREAM(run),
    util::ThreadPool* thread_pool) const {
  if (pool_configs.size() < config_.n_init) {
    throw std::invalid_argument("ActiveLearner::run: pool smaller than n_init");
  }

  // Two independent streams derived from the caller's rng, in the same
  // order the service derives them from one seed: the session stream
  // (sampling, strategy tie-breaks, forest fits) and the measurement
  // stream (the client side of ask/tell). This is what makes a service
  // session and a batch run with the same seed produce identical training
  // sets (see tests/test_ask_tell.cpp).
  const std::uint64_t session_seed = rng.next_u64();
  util::Rng measure_rng(rng.next_u64());

  service::AskTellSession session(workload_.space(), strategy, config_,
                                  std::move(pool_configs), warm_start,
                                  session_seed, thread_pool);

  LearnerResult result;
  auto measure_batch = [&](const std::vector<service::Candidate>& batch) {
    for (const auto& candidate : batch) {
      session.tell(candidate.config,
                   workload_.measure(candidate.config, measure_rng,
                                     config_.measure_repetitions));
    }
    session.refit();
  };
  auto record = [&]() {
    IterationRecord rec;
    rec.num_samples = session.num_labeled();
    rec.cumulative_cost = session.cumulative_cost();
    rec.top_alpha_rmse.reserve(config_.eval_alphas.size());
    const Surrogate& model = *session.model();
    for (double alpha : config_.eval_alphas) {
      rec.top_alpha_rmse.push_back(top_alpha_rmse(model, test, alpha));
    }
    rec.full_rmse = full_rmse(model, test);
    result.trace.push_back(std::move(rec));
  };

  // Cold start (Algorithm 1, lines 1-4), then one record.
  measure_batch(session.ask());
  record();

  // Iteration phase (Algorithm 1, lines 5-9).
  while (!session.done()) {
    measure_batch(session.ask());
    const bool should_eval =
        session.iteration() % config_.eval_every == 0 || session.done();
    if (should_eval) record();
  }

  result.selections = session.selections();
  result.train_configs = session.train_configs();
  result.train_labels = session.train_labels();
  result.model = session.model();
  return result;
}

}  // namespace pwu::core
