// Sampling strategies for Algorithm 1 (paper Section II-C).
//
// Every strategy sees the surrogate model's pool predictions — mean
// execution time mu_i (lower = higher performance) and uncertainty sigma_i
// (across-tree spread) — and picks a batch of pool indices to evaluate next:
//
//   PWU        s = sigma / mu^(1-alpha), take argmax          (Eq. 1, ours)
//   PBUS       restrict to the predicted-best q-fraction, then take the most
//              uncertain inside it (Balaprakash et al. 2013)
//   MaxU       take argmax sigma (classic uncertainty sampling)
//   BestPerf   take argmin mu (pure exploitation)
//   BRS        uniform among the predicted-best p-fraction
//   Uniform    uniform over the pool (passive learning)
//   eps-PWU    PWU with epsilon-uniform exploration (extension)

#pragma once

#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "rf/feature_matrix.hpp"
#include "util/rng.hpp"

namespace pwu::core {

/// Surrogate predictions over the current candidate pool.
struct PoolPrediction {
  std::vector<double> mean;    // predicted execution time (seconds)
  std::vector<double> stddev;  // across-tree uncertainty
  /// Best (smallest) execution time measured so far — the incumbent that
  /// improvement-based acquisitions (EI) compare against. NaN when the
  /// caller does not track it; EI then treats the smallest predicted mean
  /// as the incumbent.
  double best_observed = std::numeric_limits<double>::quiet_NaN();
  /// Candidate feature rows (optional; filled by the active learner), one
  /// per pool entry in one contiguous matrix. Diversity-aware batch
  /// strategies need them; plain strategies ignore them. Empty =
  /// unavailable.
  rf::FeatureMatrix features;

  std::size_t size() const { return mean.size(); }
};

class SamplingStrategy {
 public:
  virtual ~SamplingStrategy() = default;

  virtual const std::string& name() const = 0;

  /// Selects `batch` distinct pool indices (batch is clamped to the pool
  /// size by the caller contract: prediction.size() >= batch >= 1).
  virtual std::vector<std::size_t> select(const PoolPrediction& prediction,
                                          std::size_t batch,
                                          util::Rng& rng) const = 0;
};

using StrategyPtr = std::unique_ptr<SamplingStrategy>;

// ---- factories ----

/// Performance-Weighted Uncertainty (Eq. 1). alpha in [0, 1]: the fraction
/// of the performance ranking considered high-performance; alpha -> 1
/// degenerates to MaxU, alpha -> 0 to the coefficient of variation.
StrategyPtr make_pwu(double alpha);

/// Performance-Biased Uncertainty Sampling: most-uncertain inside the
/// predicted-best `bias_fraction` of the pool.
StrategyPtr make_pbus(double bias_fraction = 0.10);

StrategyPtr make_max_uncertainty();
StrategyPtr make_best_performance();

/// Biased Random Sampling: uniform among the predicted-best `top_fraction`.
StrategyPtr make_biased_random(double top_fraction = 0.10);

StrategyPtr make_uniform_random();

/// Extension: PWU with probability-epsilon uniform exploration.
StrategyPtr make_epsilon_greedy_pwu(double alpha, double epsilon = 0.1);

/// Expected Improvement over the incumbent (Hutter et al.'s SMAC — the
/// paper's sequential-modeling related work [22]). A *tuning*-oriented
/// acquisition: maximizes E[max(best - Y, 0)] under Y ~ N(mu, sigma^2).
StrategyPtr make_expected_improvement();

/// Extension for batch mode (n_batch > 1): PWU scores with greedy
/// diversity — after the top-scored pick, each further pick maximizes
/// score * (normalized distance to the already-picked set)^diversity_weight
/// over min-max-normalized features, suppressing near-duplicate batches.
/// Falls back to plain PWU ranking when the pool prediction carries no
/// feature vectors or for batch size 1.
StrategyPtr make_diverse_pwu(double alpha, double diversity_weight = 1.0);

/// By-name construction used by benches/CLIs. Known names: pwu, pbus, maxu,
/// bestperf, brs, random, cv (= pwu with alpha 0), egreedy. `alpha` feeds
/// pwu/egreedy; the fraction knobs of pbus/brs keep their defaults.
StrategyPtr make_strategy(const std::string& name, double alpha = 0.05);

/// The paper's five compared methods plus the passive baseline.
std::vector<std::string> standard_strategy_names();

// ---- shared helpers ----

/// Indices of the k largest scores (ties broken by index; k clamped).
std::vector<std::size_t> top_k_indices(std::span<const double> scores,
                                       std::size_t k);

/// Indices of the k smallest values.
std::vector<std::size_t> bottom_k_indices(std::span<const double> values,
                                          std::size_t k);

/// The PWU score vector s = sigma / mu^(1-alpha) (Eq. 1), entry-wise, with
/// mu clamped to a small positive floor.
std::vector<double> pwu_scores(const PoolPrediction& prediction, double alpha);

/// Expected-improvement score vector against `incumbent` (smaller times
/// improve): EI_i = sigma_i * (z Phi(z) + phi(z)), z = (incumbent - mu_i) /
/// sigma_i; zero-uncertainty candidates get max(incumbent - mu, 0).
std::vector<double> ei_scores(const PoolPrediction& prediction,
                              double incumbent);

/// Standard normal CDF.
double normal_cdf(double z);

}  // namespace pwu::core
