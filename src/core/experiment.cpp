#include "core/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/contracts.hpp"
#include "util/logging.hpp"
#include "util/statistics.hpp"

namespace pwu::core {

double StrategySeries::cost_to_reach_rmse(double target) const {
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].rmse_mean <= target) {
      if (i == 0) return points[i].cc_mean;
      // Linear interpolation between the bracketing evaluation points.
      const auto& lo = points[i - 1];
      const auto& hi = points[i];
      const double span = lo.rmse_mean - hi.rmse_mean;
      if (span <= 0.0) return hi.cc_mean;
      const double t = (lo.rmse_mean - target) / span;
      return lo.cc_mean + t * (hi.cc_mean - lo.cc_mean);
    }
  }
  return std::numeric_limits<double>::quiet_NaN();
}

double StrategySeries::final_rmse() const {
  return points.empty() ? std::numeric_limits<double>::quiet_NaN()
                        : points.back().rmse_mean;
}

double StrategySeries::best_rmse() const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& p : points) best = std::min(best, p.rmse_mean);
  return points.empty() ? std::numeric_limits<double>::quiet_NaN() : best;
}

const StrategySeries& ExperimentResult::find(
    const std::string& strategy) const {
  for (const auto& s : series) {
    if (s.strategy == strategy) return s;
  }
  throw std::out_of_range("ExperimentResult: no series for strategy '" +
                          strategy + "'");
}

ExperimentResult run_experiment(const workloads::Workload& workload,
                                const ExperimentSpec& spec,
                                util::ThreadPool* thread_pool) {
  if (spec.strategies.empty()) {
    throw std::invalid_argument("run_experiment: no strategies given");
  }
  if (spec.repeats == 0) {
    throw std::invalid_argument("run_experiment: repeats must be > 0");
  }

  LearnerConfig learner_config = spec.learner;
  // The experiment metric alpha drives the evaluation; make sure it is
  // among the evaluated alphas (first slot).
  learner_config.eval_alphas = {spec.alpha};

  ActiveLearner learner(workload, learner_config);
  util::Rng master PWU_RNG_STREAM(experiment_master)(spec.seed);

  // traces[strategy][repeat]
  std::vector<std::vector<std::vector<IterationRecord>>> traces(
      spec.strategies.size());

  for (std::size_t rep = 0; rep < spec.repeats; ++rep) {
    util::Rng split_rng = master.fork();
    const space::PoolSplit split = space::make_pool_split(
        workload.space(), spec.pool_size, spec.test_size, split_rng);
    const TestSet test =
        build_test_set(workload, split.test, split_rng,
                       learner_config.measure_repetitions);

    for (std::size_t s = 0; s < spec.strategies.size(); ++s) {
      StrategyPtr strategy = make_strategy(spec.strategies[s], spec.alpha);
      util::Rng run_rng = master.fork();
      LearnerResult run_result = learner.run(*strategy, split.pool, test,
                                             run_rng, thread_pool);
      traces[s].push_back(std::move(run_result.trace));
    }
    util::log_debug() << workload.name() << ": repeat " << (rep + 1) << "/"
                      << spec.repeats << " done";
  }

  // Aggregate point-wise across repeats. All repeats share the evaluation
  // grid; guard with the min length anyway.
  ExperimentResult result;
  result.workload = workload.name();
  result.alpha = spec.alpha;
  for (std::size_t s = 0; s < spec.strategies.size(); ++s) {
    StrategySeries series;
    series.strategy = spec.strategies[s];
    std::size_t min_len = std::numeric_limits<std::size_t>::max();
    for (const auto& trace : traces[s]) {
      min_len = std::min(min_len, trace.size());
    }
    if (min_len == std::numeric_limits<std::size_t>::max()) min_len = 0;
    for (std::size_t p = 0; p < min_len; ++p) {
      util::RunningStats rmse_stats, cc_stats, full_stats;
      for (const auto& trace : traces[s]) {
        rmse_stats.add(trace[p].top_alpha_rmse.at(0));
        cc_stats.add(trace[p].cumulative_cost);
        full_stats.add(trace[p].full_rmse);
      }
      SeriesPoint point;
      point.num_samples = traces[s].front()[p].num_samples;
      point.rmse_mean = rmse_stats.mean();
      point.rmse_stddev = rmse_stats.stddev();
      point.cc_mean = cc_stats.mean();
      point.cc_stddev = cc_stats.stddev();
      point.full_rmse_mean = full_stats.mean();
      series.points.push_back(point);
    }
    result.series.push_back(std::move(series));
  }
  return result;
}

double cost_speedup(const ExperimentResult& result,
                    const std::string& pwu_name,
                    const std::string& baseline_name, double rmse_margin) {
  const StrategySeries& ours = result.find(pwu_name);
  const StrategySeries& baseline = result.find(baseline_name);
  const double target =
      rmse_margin * std::max(ours.best_rmse(), baseline.best_rmse());
  const double cost_ours = ours.cost_to_reach_rmse(target);
  const double cost_baseline = baseline.cost_to_reach_rmse(target);
  if (!std::isfinite(cost_ours) || !std::isfinite(cost_baseline) ||
      cost_ours <= 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return cost_baseline / cost_ours;
}

}  // namespace pwu::core
