// The paper's experiment protocol (Sections III-D, IV): for each workload,
// repeat Algorithm 1 `repeats` times per strategy — each repeat on a fresh
// pool/test split — and average the per-iteration metrics across repeats.
// Within one repeat, every strategy runs on the *same* split (paired
// comparison), as the paper's shared-pool protocol implies.

#pragma once

#include <string>
#include <vector>

#include "core/active_learner.hpp"
#include "core/sampling_strategy.hpp"
#include "util/thread_pool.hpp"
#include "workloads/workload.hpp"

namespace pwu::core {

struct ExperimentSpec {
  /// Strategy names understood by make_strategy().
  std::vector<std::string> strategies;
  /// Feeds both the PWU score exponent and the evaluation metric; the paper
  /// couples them (Sections II-C, III-C).
  double alpha = 0.05;
  std::size_t repeats = 10;
  std::size_t pool_size = 7000;
  std::size_t test_size = 3000;
  LearnerConfig learner;
  std::uint64_t seed = 42;
};

struct SeriesPoint {
  std::size_t num_samples = 0;
  double rmse_mean = 0.0;
  double rmse_stddev = 0.0;
  double cc_mean = 0.0;
  double cc_stddev = 0.0;
  double full_rmse_mean = 0.0;
};

struct StrategySeries {
  std::string strategy;
  std::vector<SeriesPoint> points;

  /// Smallest mean CC at which the series' RMSE first drops to `target`
  /// (linear interpolation between evaluation points); NaN if never reached.
  double cost_to_reach_rmse(double target) const;
  /// Final (converged) RMSE of the series.
  double final_rmse() const;
  /// Minimum RMSE attained anywhere on the series.
  double best_rmse() const;
};

struct ExperimentResult {
  std::string workload;
  double alpha = 0.0;
  std::vector<StrategySeries> series;

  const StrategySeries& find(const std::string& strategy) const;
};

/// Runs the full protocol. Traces of different repeats are aligned on
/// their shared evaluation grid (same eval_every => same num_samples
/// sequence) and averaged point-wise.
ExperimentResult run_experiment(const workloads::Workload& workload,
                                const ExperimentSpec& spec,
                                util::ThreadPool* thread_pool = nullptr);

/// Fig. 7's headline statistic: the CC-at-matched-error ratio
/// cost(baseline) / cost(pwu), where the matched error is
/// `rmse_margin` x the worse of the two strategies' best RMSE (so both
/// series provably reach it). NaN when either series never converges.
double cost_speedup(const ExperimentResult& result,
                    const std::string& pwu_name,
                    const std::string& baseline_name,
                    double rmse_margin = 1.10);

}  // namespace pwu::core
