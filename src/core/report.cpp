#include "core/report.hpp"

#include <ostream>

#include "util/ascii_chart.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace pwu::core {

char strategy_marker(const std::string& strategy_name) {
  if (strategy_name == "pwu") return '*';
  if (strategy_name == "pbus") return 'o';
  if (strategy_name == "maxu") return 'u';
  if (strategy_name == "bestperf") return 'b';
  if (strategy_name == "brs") return 'r';
  if (strategy_name == "random") return '.';
  if (strategy_name == "cv") return 'c';
  if (strategy_name == "egreedy") return 'e';
  return '+';
}

void print_series_table(std::ostream& os, const ExperimentResult& result) {
  util::TextTable table;
  std::vector<std::string> header = {"n"};
  for (const auto& series : result.series) {
    header.push_back(series.strategy + ":rmse");
    header.push_back(series.strategy + ":cc");
  }
  table.set_header(std::move(header));

  std::size_t rows = 0;
  for (const auto& series : result.series) {
    rows = std::max(rows, series.points.size());
  }
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    std::size_t n = 0;
    for (const auto& series : result.series) {
      if (r < series.points.size()) {
        n = series.points[r].num_samples;
        break;
      }
    }
    row.push_back(std::to_string(n));
    for (const auto& series : result.series) {
      if (r < series.points.size()) {
        row.push_back(util::TextTable::cell_sci(series.points[r].rmse_mean));
        row.push_back(util::TextTable::cell(series.points[r].cc_mean, 2));
      } else {
        row.push_back("-");
        row.push_back("-");
      }
    }
    table.add_row(std::move(row));
  }
  table.print(os);
}

namespace {

void print_chart_impl(std::ostream& os, const ExperimentResult& result,
                      const std::string& title, bool y_is_cost,
                      bool x_is_cost) {
  std::vector<util::ChartSeries> chart_series;
  for (const auto& series : result.series) {
    util::ChartSeries cs;
    cs.label = series.strategy;
    cs.marker = strategy_marker(series.strategy);
    for (const auto& p : series.points) {
      cs.x.push_back(x_is_cost ? p.cc_mean
                               : static_cast<double>(p.num_samples));
      cs.y.push_back(y_is_cost ? p.cc_mean : p.rmse_mean);
    }
    chart_series.push_back(std::move(cs));
  }
  util::ChartOptions options;
  options.title = title;
  options.x_label = x_is_cost ? "cumulative cost (s)" : "#samples";
  options.y_label = y_is_cost ? "cumulative cost (s)" : "top-alpha RMSE";
  options.log_y = !y_is_cost;  // error curves span orders of magnitude
  os << util::render_chart(chart_series, options);
}

}  // namespace

void print_rmse_chart(std::ostream& os, const ExperimentResult& result,
                      const std::string& title) {
  print_chart_impl(os, result, title, /*y_is_cost=*/false,
                   /*x_is_cost=*/false);
}

void print_cost_chart(std::ostream& os, const ExperimentResult& result,
                      const std::string& title) {
  print_chart_impl(os, result, title, /*y_is_cost=*/true, /*x_is_cost=*/false);
}

void print_rmse_vs_cost_chart(std::ostream& os,
                              const ExperimentResult& result,
                              const std::string& title) {
  print_chart_impl(os, result, title, /*y_is_cost=*/false,
                   /*x_is_cost=*/true);
}

void write_series_csv(const std::string& out_dir,
                      const ExperimentResult& result,
                      const std::string& tag) {
  if (out_dir.empty()) return;
  util::CsvWriter csv(out_dir + "/" + result.workload + "_" + tag + ".csv");
  csv.write_header({"strategy", "n", "rmse_mean", "rmse_stddev", "cc_mean",
                    "cc_stddev", "full_rmse_mean"});
  for (const auto& series : result.series) {
    for (const auto& p : series.points) {
      csv.write_row({series.strategy, util::CsvWriter::field(p.num_samples),
                     util::CsvWriter::field(p.rmse_mean),
                     util::CsvWriter::field(p.rmse_stddev),
                     util::CsvWriter::field(p.cc_mean),
                     util::CsvWriter::field(p.cc_stddev),
                     util::CsvWriter::field(p.full_rmse_mean)});
    }
  }
}

}  // namespace pwu::core
