#include "core/convergence.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace pwu::core {

std::size_t convergence_point(const std::vector<IterationRecord>& trace,
                              const ConvergenceCriterion& criterion,
                              std::size_t alpha_index) {
  if (criterion.window == 0) {
    throw std::invalid_argument("convergence_point: window must be > 0");
  }
  if (trace.size() <= criterion.window) return trace.size();

  auto rmse_at = [&](std::size_t i) {
    const auto& values = trace[i].top_alpha_rmse;
    if (alpha_index >= values.size()) {
      throw std::out_of_range("convergence_point: alpha_index out of range");
    }
    return values[alpha_index];
  };

  // best_before[i]: best RMSE over trace[0..i].
  double best_before = rmse_at(0);
  for (std::size_t end = criterion.window; end < trace.size(); ++end) {
    const std::size_t start = end - criterion.window;
    // Fold records up to the window start into the prefix best.
    best_before = std::min(best_before, rmse_at(start));
    double best_in_window = std::numeric_limits<double>::infinity();
    for (std::size_t i = start + 1; i <= end; ++i) {
      best_in_window = std::min(best_in_window, rmse_at(i));
    }
    const bool enough_samples =
        trace[end].num_samples >= criterion.min_samples;
    const double improvement =
        best_before > 0.0 ? (best_before - best_in_window) / best_before
                          : 0.0;
    if (enough_samples && improvement < criterion.min_relative_improvement) {
      return end;
    }
  }
  return trace.size();
}

std::size_t converged_sample_count(const std::vector<IterationRecord>& trace,
                                   const ConvergenceCriterion& criterion,
                                   std::size_t alpha_index) {
  const std::size_t point = convergence_point(trace, criterion, alpha_index);
  return point < trace.size() ? trace[point].num_samples : 0;
}

std::size_t converged_sample_count(const StrategySeries& series,
                                   const ConvergenceCriterion& criterion) {
  // Adapt the averaged series into the trace shape the detector scans.
  std::vector<IterationRecord> trace;
  trace.reserve(series.points.size());
  for (const auto& p : series.points) {
    IterationRecord rec;
    rec.num_samples = p.num_samples;
    rec.top_alpha_rmse = {p.rmse_mean};
    trace.push_back(std::move(rec));
  }
  return converged_sample_count(trace, criterion, 0);
}

}  // namespace pwu::core
