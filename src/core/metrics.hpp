// Evaluation metrics (paper Section III-C): top-alpha RMSE over the
// performance ranking (Eq. 2) and cumulative labeling cost CC (Eq. 3).
//
// The accuracy metrics are templates over any model exposing
// `double predict(std::span<const double>) const` — the random forest, a
// Surrogate, or a Gaussian process all qualify.

#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "rf/feature_matrix.hpp"
#include "space/configuration.hpp"
#include "space/parameter_space.hpp"
#include "util/rng.hpp"
#include "workloads/workload.hpp"

namespace pwu::core {

/// Held-out test set with labels measured up front (paper Section III-C:
/// "the label of every configuration is measured in advance") and its
/// ascending performance ranking (smallest execution time first).
struct TestSet {
  /// One feature row per test configuration, contiguous.
  rf::FeatureMatrix features;
  std::vector<double> labels;
  /// Indices sorted by label ascending (rank 0 = highest performance).
  std::vector<std::size_t> ranking;

  std::size_t size() const { return labels.size(); }
};

/// Builds a TestSet by measuring each configuration `repetitions` times.
TestSet build_test_set(const workloads::Workload& workload,
                       std::span<const space::Configuration> configs,
                       util::Rng& rng, int repetitions = 1);

using PredictFn = std::function<double(std::span<const double>)>;

namespace detail {
/// RMSE of `predict` over the first `count` entries of the performance
/// ranking (count clamped to [1, n]); throws on an empty test set.
double ranked_prefix_rmse(const PredictFn& predict, const TestSet& test,
                          std::size_t count);
/// Validates alpha in (0, 1] and converts it to the Eq. 2 prefix length.
std::size_t alpha_prefix(const TestSet& test, double alpha);
/// Kendall tau between true and predicted labels over the whole test set.
double ranking_tau_impl(const PredictFn& predict, const TestSet& test);
}  // namespace detail

/// Eq. 2: RMSE of the model over the top floor(n * alpha) samples of the
/// *true* performance ranking (at least 1 sample).
template <typename Model>
double top_alpha_rmse(const Model& model, const TestSet& test, double alpha) {
  return detail::ranked_prefix_rmse(
      [&model](std::span<const double> row) { return model.predict(row); },
      test, detail::alpha_prefix(test, alpha));
}

/// RMSE over the entire test set.
template <typename Model>
double full_rmse(const Model& model, const TestSet& test) {
  return detail::ranked_prefix_rmse(
      [&model](std::span<const double> row) { return model.predict(row); },
      test, test.size());
}

/// Rank fidelity of the model over the whole test set (Kendall tau between
/// true and predicted times) — a supplementary metric beyond the paper.
template <typename Model>
double ranking_tau(const Model& model, const TestSet& test) {
  return detail::ranking_tau_impl(
      [&model](std::span<const double> row) { return model.predict(row); },
      test);
}

/// Eq. 3: cumulative cost of a sequence of measured execution times.
double cumulative_cost(std::span<const double> labels);

}  // namespace pwu::core
