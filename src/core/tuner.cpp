#include "core/tuner.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/contracts.hpp"

namespace pwu::core {

TuningTrace tune_with_annotator(
    const workloads::Workload& workload,
    std::span<const space::Configuration> candidates,
    const TunerConfig& config, util::Rng& rng PWU_RNG_STREAM(tuner),
    const std::function<double(const space::Configuration&)>& annotate) {
  if (candidates.size() < config.n_init + config.iterations) {
    throw std::invalid_argument(
        "tune_with_annotator: candidate set smaller than the tuning budget");
  }
  const auto& param_space = workload.space();
  rf::Dataset train(param_space.num_params(), param_space.categorical_mask(),
                    param_space.cardinalities());

  std::vector<char> evaluated(candidates.size(), 0);
  TuningTrace trace;
  double best = std::numeric_limits<double>::infinity();

  auto commit = [&](std::size_t idx) {
    evaluated[idx] = 1;
    const double label = annotate(candidates[idx]);
    train.add(param_space.features(candidates[idx]), label);
    // Score against ground truth (noiseless model time).
    const double true_time = workload.base_time(candidates[idx]);
    if (true_time < best) {
      best = true_time;
      trace.best_config = candidates[idx];
    }
    trace.best_true_time.push_back(best);
  };

  for (std::size_t idx :
       rng.sample_without_replacement(candidates.size(), config.n_init)) {
    commit(idx);
  }

  rf::RandomForest model;
  for (std::size_t it = 0; it < config.iterations; ++it) {
    model.fit(train, config.forest, rng);
    double best_pred = std::numeric_limits<double>::infinity();
    std::size_t best_idx = candidates.size();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (evaluated[i]) continue;
      const double pred = model.predict(param_space.features(candidates[i]));
      if (pred < best_pred) {
        best_pred = pred;
        best_idx = i;
      }
    }
    if (best_idx == candidates.size()) break;  // pool exhausted
    commit(best_idx);
  }
  return trace;
}

TuningTrace tune_direct(const workloads::Workload& workload,
                        std::span<const space::Configuration> candidates,
                        const TunerConfig& config, util::Rng& rng) {
  return tune_with_annotator(
      workload, candidates, config, rng,
      [&](const space::Configuration& c) { return workload.evaluate(c, rng); });
}

}  // namespace pwu::core
