// Surrogate-model abstraction for the active-learning loop.
//
// The paper's method is defined around a random forest (Section II-B), but
// it explicitly frames the choice against the "common choice" of Gaussian
// processes. Both are available behind this interface so the RF-vs-GP
// comparison (bench/ablation_surrogate) runs through the identical
// Algorithm-1 code path.

#pragma once

#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gp/gaussian_process.hpp"
#include "rf/random_forest.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/watchdog.hpp"

namespace pwu::core {

class Surrogate {
 public:
  virtual ~Surrogate() = default;

  virtual const std::string& name() const = 0;

  /// (Re)fits the model from scratch on the dataset. `cancel` is polled at
  /// family-specific safe points (between forest trees); a requested
  /// cancellation throws util::Cancelled and leaves the model unfitted.
  virtual void fit(const rf::Dataset& data, util::Rng& rng,
                   util::ThreadPool* pool = nullptr,
                   const util::CancelToken* cancel = nullptr) = 0;

  virtual bool fitted() const = 0;

  /// Point prediction plus predictive uncertainty.
  virtual rf::PredictionStats predict_stats(
      std::span<const double> row) const = 0;

  /// Batched prediction over a contiguous row matrix; the default
  /// implementation loops (optionally in parallel via `pool`), the forest
  /// routes to its flat blocked evaluator.
  virtual std::vector<rf::PredictionStats> predict_stats_batch(
      const rf::FeatureMatrix& rows, util::ThreadPool* pool = nullptr) const;

  /// Point prediction (the posterior/ensemble mean).
  double predict(std::span<const double> row) const {
    return predict_stats(row).mean;
  }

  /// Persists the fitted model state; returns false when the family has no
  /// serialized form (the caller must then refit from the training data —
  /// bit-identical only for families whose fit consumes no rng draws).
  virtual bool save_model(std::ostream&) const { return false; }
  /// Restores state written by save_model(); returns false when
  /// unsupported.
  virtual bool load_model(std::istream&) { return false; }

  /// Approximate resident heap footprint of the fitted model (0 when a
  /// family does not account for itself).
  virtual std::size_t memory_bytes() const { return 0; }
};

using SurrogatePtr = std::unique_ptr<Surrogate>;

/// Random-forest surrogate — the paper's model.
class RandomForestSurrogate final : public Surrogate {
 public:
  explicit RandomForestSurrogate(rf::ForestConfig config);

  const std::string& name() const override { return name_; }
  void fit(const rf::Dataset& data, util::Rng& rng,
           util::ThreadPool* pool = nullptr,
           const util::CancelToken* cancel = nullptr) override;
  bool fitted() const override { return forest_.fitted(); }
  rf::PredictionStats predict_stats(std::span<const double> row) const override;
  std::vector<rf::PredictionStats> predict_stats_batch(
      const rf::FeatureMatrix& rows, util::ThreadPool* pool) const override;

  /// Forest text serialization — predictions round-trip exactly, which is
  /// what makes session checkpoint/resume bit-identical.
  bool save_model(std::ostream& os) const override;
  bool load_model(std::istream& is) override;
  std::size_t memory_bytes() const override { return forest_.memory_bytes(); }

  const rf::RandomForest& forest() const { return forest_; }

 private:
  std::string name_ = "random-forest";
  rf::ForestConfig config_;
  rf::RandomForest forest_;
};

/// Gaussian-process surrogate — the alternative the paper argues against
/// for mixed spaces.
class GaussianProcessSurrogate final : public Surrogate {
 public:
  explicit GaussianProcessSurrogate(gp::GpConfig config);

  const std::string& name() const override { return name_; }
  void fit(const rf::Dataset& data, util::Rng& rng,
           util::ThreadPool* pool = nullptr,
           const util::CancelToken* cancel = nullptr) override;
  bool fitted() const override { return gp_.fitted(); }
  rf::PredictionStats predict_stats(std::span<const double> row) const override;
  std::size_t memory_bytes() const override;

  const gp::GaussianProcess& model() const { return gp_; }

 private:
  std::string name_ = "gaussian-process";
  gp::GpConfig config_;
  gp::GaussianProcess gp_;
};

/// "rf" or "gp".
SurrogatePtr make_surrogate(const std::string& kind,
                            const rf::ForestConfig& forest_config = {},
                            const gp::GpConfig& gp_config = {});

/// Returns the underlying forest when `surrogate` is a
/// RandomForestSurrogate, nullptr otherwise (e.g. for permutation
/// importance, which is forest-specific here).
const rf::RandomForest* as_forest(const Surrogate& surrogate);

}  // namespace pwu::core
