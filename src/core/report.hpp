// Console/CSV rendering of experiment results — the output layer of the
// figure-reproduction benches.

#pragma once

#include <iosfwd>
#include <string>

#include "core/experiment.hpp"

namespace pwu::core {

/// Paper-style table: one row per evaluation point, one (RMSE, CC) column
/// pair per strategy.
void print_series_table(std::ostream& os, const ExperimentResult& result);

/// ASCII line chart of RMSE vs num_samples (Fig. 2/4a/6 style).
void print_rmse_chart(std::ostream& os, const ExperimentResult& result,
                      const std::string& title);

/// ASCII line chart of CC vs num_samples (Fig. 3/4b style).
void print_cost_chart(std::ostream& os, const ExperimentResult& result,
                      const std::string& title);

/// ASCII line chart of RMSE vs cumulative cost (Fig. 5 style).
void print_rmse_vs_cost_chart(std::ostream& os,
                              const ExperimentResult& result,
                              const std::string& title);

/// Dumps the full result into `<out_dir>/<workload>_<tag>.csv`
/// (columns: strategy, n, rmse_mean, rmse_stddev, cc_mean, cc_stddev,
/// full_rmse_mean). No-op when out_dir is empty.
void write_series_csv(const std::string& out_dir,
                      const ExperimentResult& result, const std::string& tag);

/// Marker characters assigned to strategies, stable across charts.
char strategy_marker(const std::string& strategy_name);

}  // namespace pwu::core
