// Convergence detection for the active-learning trace.
//
// The paper fixes n_max = 500 "because the model begins to converge when
// collecting about 500 samples" — a manual judgement. This module makes it
// operational: a sliding-window test that declares convergence when the
// best top-alpha RMSE has stopped improving by more than a relative
// tolerance over a window of evaluations, so budgets can be chosen
// adaptively instead of hand-picked.

#pragma once

#include <cstddef>
#include <vector>

#include "core/active_learner.hpp"
#include "core/experiment.hpp"

namespace pwu::core {

struct ConvergenceCriterion {
  /// Evaluations (trace records) the improvement is measured across.
  std::size_t window = 5;
  /// Declare convergence when the windowed best improves the overall best
  /// by less than this relative fraction.
  double min_relative_improvement = 0.02;
  /// Never declare convergence before this many training samples.
  std::size_t min_samples = 50;
};

/// Index of the first trace record at which the criterion is met, or
/// trace.size() when the run never converges. The scan compares each
/// window's best RMSE against the best seen before the window.
std::size_t convergence_point(const std::vector<IterationRecord>& trace,
                              const ConvergenceCriterion& criterion = {},
                              std::size_t alpha_index = 0);

/// Convenience: the number of training samples at the convergence point
/// (0 when the run never converges).
std::size_t converged_sample_count(
    const std::vector<IterationRecord>& trace,
    const ConvergenceCriterion& criterion = {}, std::size_t alpha_index = 0);

/// Same detector over a repeat-averaged experiment series (rmse_mean
/// curve). Returns 0 when the series never converges.
std::size_t converged_sample_count(const StrategySeries& series,
                                   const ConvergenceCriterion& criterion = {});

}  // namespace pwu::core
