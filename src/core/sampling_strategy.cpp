#include "core/sampling_strategy.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace pwu::core {

std::vector<std::size_t> top_k_indices(std::span<const double> scores,
                                       std::size_t k) {
  k = std::min(k, scores.size());
  std::vector<std::size_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(), [&](std::size_t a, std::size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  idx.resize(k);
  return idx;
}

std::vector<std::size_t> bottom_k_indices(std::span<const double> values,
                                          std::size_t k) {
  k = std::min(k, values.size());
  std::vector<std::size_t> idx(values.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(), [&](std::size_t a, std::size_t b) {
                      if (values[a] != values[b]) return values[a] < values[b];
                      return a < b;
                    });
  idx.resize(k);
  return idx;
}

std::vector<double> pwu_scores(const PoolPrediction& prediction,
                               double alpha) {
  if (alpha < 0.0 || alpha > 1.0) {
    throw std::invalid_argument("pwu_scores: alpha must lie in [0, 1]");
  }
  const double exponent = 1.0 - alpha;
  std::vector<double> scores(prediction.size());
  for (std::size_t i = 0; i < prediction.size(); ++i) {
    // Execution times are strictly positive; the floor only guards against
    // a degenerate model emitting ~0.
    const double mu = std::max(prediction.mean[i], 1e-12);
    scores[i] = prediction.stddev[i] / std::pow(mu, exponent);
  }
  return scores;
}

StrategyPtr make_strategy(const std::string& name, double alpha) {
  if (name == "pwu") return make_pwu(alpha);
  if (name == "pbus") return make_pbus();
  if (name == "maxu") return make_max_uncertainty();
  if (name == "bestperf") return make_best_performance();
  if (name == "brs") return make_biased_random();
  if (name == "random") return make_uniform_random();
  if (name == "cv") return make_pwu(0.0);
  if (name == "egreedy") return make_epsilon_greedy_pwu(alpha);
  if (name == "ei") return make_expected_improvement();
  if (name == "diverse") return make_diverse_pwu(alpha);
  throw std::invalid_argument("make_strategy: unknown strategy '" + name +
                              "'");
}

std::vector<std::string> standard_strategy_names() {
  return {"pwu", "pbus", "maxu", "bestperf", "brs", "random"};
}

}  // namespace pwu::core
