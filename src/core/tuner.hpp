// Model-based performance tuning (paper Section IV-C "Performance Tuning",
// Fig. 8): iteratively evaluate the configuration the surrogate predicts
// fastest, with two kinds of annotators —
//   direct:    the true program execution labels each pick (ground truth);
//   surrogate: a pre-trained model's prediction is *treated as* the
//              observation, so thousands of tuning steps cost nothing.
// The recorded metric is the best *true* execution time among the
// configurations the tuner has committed to so far.

#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "rf/random_forest.hpp"
#include "space/configuration.hpp"
#include "util/rng.hpp"
#include "workloads/workload.hpp"

namespace pwu::core {

struct TuningTrace {
  /// best_true_time[i]: best noiseless time among the first i+1 picks.
  std::vector<double> best_true_time;
  /// The configuration achieving the final best.
  space::Configuration best_config;
};

struct TunerConfig {
  std::size_t n_init = 10;     // cold-start evaluations
  std::size_t iterations = 50; // model-guided picks after cold start
  rf::ForestConfig forest;
};

/// Generic model-based tuning skeleton: cold start, then repeatedly
/// evaluate the unevaluated candidate with the best predicted time, label
/// it via `annotate`, refit, and track the best *true* time seen.
TuningTrace tune_with_annotator(
    const workloads::Workload& workload,
    std::span<const space::Configuration> candidates,
    const TunerConfig& config, util::Rng& rng,
    const std::function<double(const space::Configuration&)>& annotate);

/// Direct tuning: every pick is labeled by actually running the workload.
TuningTrace tune_direct(const workloads::Workload& workload,
                        std::span<const space::Configuration> candidates,
                        const TunerConfig& config, util::Rng& rng);

/// Surrogate tuning: picks are labeled by a model's predictions; only the
/// reported best-so-far consults the true (noiseless) time, mirroring how
/// the paper scores the surrogate-annotated tuner against ground truth.
/// `Model` needs `double predict(std::span<const double>) const` — the
/// random forest, a Surrogate, or a Gaussian process.
template <typename Model>
TuningTrace tune_with_surrogate(
    const workloads::Workload& workload, const Model& surrogate,
    std::span<const space::Configuration> candidates,
    const TunerConfig& config, util::Rng& rng) {
  const auto& param_space = workload.space();
  return tune_with_annotator(
      workload, candidates, config, rng,
      [&](const space::Configuration& c) {
        return surrogate.predict(param_space.features(c));
      });
}

}  // namespace pwu::core
