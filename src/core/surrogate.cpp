#include "core/surrogate.hpp"

#include <stdexcept>

namespace pwu::core {

std::vector<rf::PredictionStats> Surrogate::predict_stats_batch(
    const rf::FeatureMatrix& rows, util::ThreadPool* pool) const {
  const std::size_t n = rows.num_rows();
  std::vector<rf::PredictionStats> out(n);
  auto body = [&](std::size_t i) { out[i] = predict_stats(rows.row(i)); };
  if (pool != nullptr && pool->num_threads() > 1 && n > 256) {
    pool->parallel_for(0, n, body);
  } else {
    for (std::size_t i = 0; i < n; ++i) body(i);
  }
  return out;
}

RandomForestSurrogate::RandomForestSurrogate(rf::ForestConfig config)
    : config_(config) {}

void RandomForestSurrogate::fit(const rf::Dataset& data, util::Rng& rng,
                                util::ThreadPool* pool,
                                const util::CancelToken* cancel) {
  forest_.fit(data, config_, rng, pool, cancel);
}

rf::PredictionStats RandomForestSurrogate::predict_stats(
    std::span<const double> row) const {
  return forest_.predict_stats(row);
}

std::vector<rf::PredictionStats> RandomForestSurrogate::predict_stats_batch(
    const rf::FeatureMatrix& rows, util::ThreadPool* pool) const {
  return forest_.predict_stats_batch(rows, pool);
}

bool RandomForestSurrogate::save_model(std::ostream& os) const {
  forest_.save(os);
  return true;
}

bool RandomForestSurrogate::load_model(std::istream& is) {
  forest_.load(is);
  return true;
}

GaussianProcessSurrogate::GaussianProcessSurrogate(gp::GpConfig config)
    : config_(std::move(config)) {}

void GaussianProcessSurrogate::fit(const rf::Dataset& data,
                                   util::Rng& /*rng*/,
                                   util::ThreadPool* /*pool*/,
                                   const util::CancelToken* cancel) {
  // The GP fit is one monolithic Cholesky — no interior safe point, so the
  // token is only honored at the boundary.
  if (cancel != nullptr) cancel->throw_if_requested();
  gp_.fit(data, config_);
}

rf::PredictionStats GaussianProcessSurrogate::predict_stats(
    std::span<const double> row) const {
  const gp::GpPrediction p = gp_.predict_full(row);
  return rf::PredictionStats{p.mean, p.variance, p.stddev};
}

std::size_t GaussianProcessSurrogate::memory_bytes() const {
  // Dominated by the n x n kernel matrix and its Cholesky factor.
  const std::size_t n = gp_.num_train();
  return n * n * 2 * sizeof(double);
}

SurrogatePtr make_surrogate(const std::string& kind,
                            const rf::ForestConfig& forest_config,
                            const gp::GpConfig& gp_config) {
  if (kind == "rf") {
    return std::make_unique<RandomForestSurrogate>(forest_config);
  }
  if (kind == "gp") {
    return std::make_unique<GaussianProcessSurrogate>(gp_config);
  }
  throw std::invalid_argument("make_surrogate: unknown surrogate '" + kind +
                              "'");
}

const rf::RandomForest* as_forest(const Surrogate& surrogate) {
  const auto* rf_surrogate =
      dynamic_cast<const RandomForestSurrogate*>(&surrogate);
  return rf_surrogate != nullptr ? &rf_surrogate->forest() : nullptr;
}

}  // namespace pwu::core
