// Algorithm 1 (paper Section II-A): pool-based active learning around a
// random-forest surrogate.
//
//   1. cold start: evaluate n_init uniform picks, fit the forest
//   2. loop until |train| = n_max:
//        strategy selects n_batch pool configs from (mu, sigma)
//        evaluate them, append to the training set, refit from scratch
//
// After every `eval_every`-th iteration the learner scores the model on the
// held-out test set (top-alpha RMSE per requested alpha, plus full RMSE)
// and records the cumulative labeling cost — the raw series behind every
// figure in the paper.

#pragma once

#include <functional>
#include <vector>

#include "core/metrics.hpp"
#include "core/sampling_strategy.hpp"
#include "core/surrogate.hpp"
#include "rf/random_forest.hpp"
#include "sim/executor.hpp"
#include "space/pool.hpp"
#include "util/thread_pool.hpp"

namespace pwu::core {

/// How the learner reacts to failed measurements (sim::FailureKind).
/// Transient failures (crashes) are retried with capped exponential
/// backoff whose wait is charged to cumulative cost — a real tuner blocks
/// on the re-run; deterministic failures (compile errors, timeouts) and
/// exhausted retries enter a persisted failed-config set that is never
/// proposed again.
struct FailurePolicy {
  /// Transient retries per candidate before it is dropped as failed.
  std::size_t max_retries = 3;
  /// First retry waits this long (simulated seconds, charged to CC)...
  double backoff_base_seconds = 0.5;
  /// ...doubling per attempt up to this cap.
  double backoff_cap_seconds = 8.0;

  /// Deterministic backoff charge for the attempt-th retry (1-based).
  double backoff_seconds(std::size_t attempt) const;
};

struct LearnerConfig {
  std::size_t n_init = 10;   // paper Section III-D
  std::size_t n_batch = 1;   // paper Section III-D
  std::size_t n_max = 500;   // paper Section III-D
  /// Surrogate family: "rf" (the paper's model) or "gp" (the Section II-B
  /// alternative, for comparison).
  std::string surrogate = "rf";
  rf::ForestConfig forest;
  gp::GpConfig gp;
  std::vector<double> eval_alphas = {0.05};
  std::size_t eval_every = 1;
  /// Repetitions averaged per measurement (paper: 35 for kernels); the
  /// *averaged* label feeds both training and CC, matching the paper.
  int measure_repetitions = 1;
  FailurePolicy failure;
};

struct IterationRecord {
  std::size_t num_samples = 0;
  double cumulative_cost = 0.0;
  /// One entry per LearnerConfig::eval_alphas.
  std::vector<double> top_alpha_rmse;
  double full_rmse = 0.0;
};

/// One selected sample with the prediction it was selected under —
/// the raw data of the paper's Fig. 9 scatter.
struct SelectionRecord {
  std::size_t iteration = 0;
  double predicted_mean = 0.0;
  double predicted_stddev = 0.0;
  double measured = 0.0;
};

struct LearnerResult {
  std::vector<IterationRecord> trace;
  std::vector<SelectionRecord> selections;
  /// Final trained surrogate (shared so results are copyable).
  std::shared_ptr<Surrogate> model;
  std::vector<space::Configuration> train_configs;
  std::vector<double> train_labels;
  /// Failure accounting (run_with_executor only; zero otherwise).
  std::size_t failed_configs = 0;
  std::size_t transient_retries = 0;
  double failure_cost = 0.0;
};

class ActiveLearner {
 public:
  ActiveLearner(const workloads::Workload& workload, LearnerConfig config);

  /// Runs Algorithm 1. `pool` is consumed conceptually (copied internally);
  /// `test` must outlive the call. The result trace has one entry per
  /// evaluation point (cold start + every eval_every-th iteration + final).
  LearnerResult run(const SamplingStrategy& strategy,
                    std::vector<space::Configuration> pool,
                    const TestSet& test, util::Rng& rng,
                    util::ThreadPool* thread_pool = nullptr) const;

  /// Warm-started variant (the paper's Section VI future work: avoid
  /// building models from scratch for a related kernel/platform).
  /// `warm_start` rows seed the training set before the cold start; their
  /// labels came from the *source* task, so they contribute no target
  /// cumulative cost and do not count toward n_max. Feature schema must
  /// match the workload's space.
  LearnerResult run_warm(const SamplingStrategy& strategy,
                         std::vector<space::Configuration> pool,
                         const TestSet& test, const rf::Dataset& warm_start,
                         util::Rng& rng,
                         util::ThreadPool* thread_pool = nullptr) const;

  /// Failure-aware variant: measurements go through `executor` (typically
  /// carrying a sim::FaultModel) and failed ones follow config().failure —
  /// transient crashes are retried with backoff, deterministic failures are
  /// dropped into the session's failed set, and censored labels never reach
  /// the training set. With an all-healthy executor this is label-for-label
  /// identical to run() when executor.repetitions() ==
  /// config().measure_repetitions.
  LearnerResult run_with_executor(const SamplingStrategy& strategy,
                                  std::vector<space::Configuration> pool,
                                  const TestSet& test, sim::Executor& executor,
                                  util::Rng& rng,
                                  util::ThreadPool* thread_pool = nullptr) const;

  const LearnerConfig& config() const { return config_; }

 private:
  LearnerResult run_impl(const SamplingStrategy& strategy,
                         std::vector<space::Configuration> pool,
                         const TestSet& test, const rf::Dataset* warm_start,
                         util::Rng& rng,
                         util::ThreadPool* thread_pool) const;

  const workloads::Workload& workload_;
  LearnerConfig config_;
};

}  // namespace pwu::core
