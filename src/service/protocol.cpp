#include "service/protocol.hpp"

#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "sim/fault_model.hpp"
#include "util/fs_atomic.hpp"
#include "util/killpoints.hpp"

namespace pwu::service {

namespace json = util::json;

namespace {

std::size_t size_field(const json::Value& request, const std::string& key,
                       std::size_t fallback) {
  const double v = request.number_or(key, static_cast<double>(fallback));
  // Doubles above 2^53 (or fractional ones) do not denote an exact count;
  // casting them to size_t would be UB-adjacent nonsense. Reject instead.
  if (v < 0.0 || v != std::floor(v) || v > 9007199254740992.0) {
    throw std::invalid_argument("field '" + key +
                                "' must be a non-negative integer");
  }
  return static_cast<std::size_t>(v);
}

/// size_field with a sanity ceiling: session-shape fields this large are
/// typos or attacks, and either way would try to allocate the moon.
std::size_t bounded_size_field(const json::Value& request,
                               const std::string& key, std::size_t fallback) {
  constexpr std::size_t kMaxSaneSize = std::size_t{1} << 24;
  const std::size_t v = size_field(request, key, fallback);
  if (v > kMaxSaneSize) {
    throw std::invalid_argument("field '" + key + "' exceeds the sane limit (" +
                                std::to_string(kMaxSaneSize) + ")");
  }
  return v;
}

std::string required_string(const json::Value& request,
                            const std::string& key) {
  const json::Value& v = request.at(key);
  if (!v.is_string()) {
    throw std::invalid_argument("missing string field '" + key + "'");
  }
  return v.as_string();
}

json::Value error_response(const std::string& message) {
  json::Object obj;
  obj.emplace("ok", json::Value(false));
  obj.emplace("error", json::Value(message));
  return json::Value(std::move(obj));
}

json::Value ok_response(json::Object fields = {}) {
  fields.emplace("ok", json::Value(true));
  return json::Value(std::move(fields));
}

json::Value health_to_json(const HealthReport& report) {
  json::Object obj;
  obj.emplace("sessions_live", json::Value(report.sessions_live));
  obj.emplace("sessions_evicted", json::Value(report.sessions_evicted));
  obj.emplace("sessions_quarantined",
              json::Value(report.sessions_quarantined));
  obj.emplace("sessions_busy", json::Value(report.sessions_busy));
  obj.emplace("sessions_shadow", json::Value(report.sessions_shadow));
  obj.emplace("refits_in_flight", json::Value(report.refits_in_flight));
  obj.emplace("refits_deferred", json::Value(report.refits_deferred));
  obj.emplace("budget_used_bytes", json::Value(report.budget_used_bytes));
  obj.emplace("budget_capacity_bytes",
              json::Value(report.budget_capacity_bytes));
  obj.emplace("overloaded_sheds",
              json::Value(static_cast<std::size_t>(report.overloaded_sheds)));
  obj.emplace("degraded_stale_asks", json::Value(static_cast<std::size_t>(
                                         report.degraded_stale_asks)));
  obj.emplace("degraded_random_asks", json::Value(static_cast<std::size_t>(
                                          report.degraded_random_asks)));
  obj.emplace("evictions",
              json::Value(static_cast<std::size_t>(report.evictions)));
  obj.emplace("lazy_resumes",
              json::Value(static_cast<std::size_t>(report.lazy_resumes)));
  obj.emplace("watchdog_timeouts", json::Value(static_cast<std::size_t>(
                                       report.watchdog_timeouts)));
  obj.emplace("idem_replays",
              json::Value(static_cast<std::size_t>(report.idem_replays)));
  obj.emplace("fence_epoch",
              json::Value(static_cast<std::size_t>(report.fence_epoch)));
  json::Array sessions;
  sessions.reserve(report.sessions.size());
  for (const SessionHealth& sh : report.sessions) {
    json::Object s;
    s.emplace("session", json::Value(sh.name));
    s.emplace("state", json::Value(sh.state));
    if (sh.shadow) s.emplace("shadow", json::Value(true));
    s.emplace("footprint_bytes", json::Value(sh.footprint_bytes));
    if (!sh.phase.empty()) {
      s.emplace("phase", json::Value(sh.phase));
      s.emplace("pending", json::Value(sh.pending));
      s.emplace("refit_in_flight", json::Value(sh.refit_in_flight));
      s.emplace("refit_deferred", json::Value(sh.refit_deferred));
      s.emplace("refit_timeouts", json::Value(sh.refit_timeouts));
      s.emplace("degraded_stale_asks", json::Value(sh.degraded_stale_asks));
      s.emplace("degraded_random_asks", json::Value(sh.degraded_random_asks));
    }
    sessions.push_back(json::Value(std::move(s)));
  }
  obj.emplace("sessions", json::Value(std::move(sessions)));
  return json::Value(std::move(obj));
}

}  // namespace

/// Ops that change durable or model state — the ones idempotency keys and
/// fencing epochs exist for. ask mutates the learner's pending set, so a
/// stale-epoch or duplicated ask is just as dangerous as a tell.
bool is_mutating_op(const std::string& op) {
  return op == "create" || op == "ask" || op == "tell" || op == "resume" ||
         op == "checkpoint" || op == "import" || op == "replicate" ||
         op == "promote" || op == "close";
}

std::string frame_header(std::string_view payload) {
  char crc_hex[9];
  std::snprintf(crc_hex, sizeof crc_hex, "%08x", util::crc32(payload));
  std::string header(kFrameMagic);
  header += std::to_string(payload.size());
  header += ' ';
  header += crc_hex;
  return header;
}

std::string frame_encode(std::string_view payload) {
  std::string wire = frame_header(payload);
  wire += '\n';
  wire.append(payload);
  wire += '\n';
  return wire;
}

bool parse_frame_header(std::string_view line, FrameHeader& out) {
  if (line.substr(0, kFrameMagic.size()) != kFrameMagic) return false;
  std::string_view rest = line.substr(kFrameMagic.size());
  const std::size_t space = rest.find(' ');
  if (space == std::string_view::npos || space == 0) return false;
  const std::string_view len_text = rest.substr(0, space);
  const std::string_view crc_text = rest.substr(space + 1);
  if (crc_text.size() != 8) return false;
  std::size_t len = 0;
  for (const char c : len_text) {
    if (c < '0' || c > '9') return false;
    if (len > (static_cast<std::size_t>(-1) - 9) / 10) return false;
    len = len * 10 + static_cast<std::size_t>(c - '0');
  }
  std::uint32_t crc = 0;
  for (const char c : crc_text) {
    std::uint32_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint32_t>(c - 'a') + 10;
    } else {
      return false;
    }
    crc = (crc << 4) | digit;
  }
  out.len = len;
  out.crc = crc;
  return true;
}

bool frame_payload_matches(const FrameHeader& header,
                           std::string_view payload) {
  return payload.size() == header.len && util::crc32(payload) == header.crc;
}

SessionSpec spec_from_json(const json::Value& request) {
  SessionSpec spec;
  spec.workload = required_string(request, "workload");
  spec.strategy = request.string_or("strategy", spec.strategy);
  spec.alpha = request.number_or("alpha", spec.alpha);
  spec.learner.n_init = bounded_size_field(request, "n_init", spec.learner.n_init);
  spec.learner.n_batch =
      bounded_size_field(request, "n_batch", spec.learner.n_batch);
  spec.learner.n_max = bounded_size_field(request, "n_max", 150);
  spec.learner.surrogate =
      request.string_or("surrogate", spec.learner.surrogate);
  spec.learner.forest.num_trees =
      bounded_size_field(request, "trees", spec.learner.forest.num_trees);
  spec.learner.eval_every =
      bounded_size_field(request, "eval_every", spec.learner.eval_every);
  spec.learner.measure_repetitions = static_cast<int>(bounded_size_field(
      request, "measure_reps",
      static_cast<std::size_t>(spec.learner.measure_repetitions)));
  spec.pool_size = bounded_size_field(request, "pool_size", spec.pool_size);
  spec.test_size = bounded_size_field(request, "test_size", spec.test_size);
  if (request.has("seed")) {
    const json::Value& seed = request.at("seed");
    // Accept a number (exact up to 2^53) or a decimal string (full 64-bit).
    if (seed.is_string()) {
      spec.seed = std::stoull(seed.as_string());
    } else {
      spec.seed = static_cast<std::uint64_t>(seed.as_number());
    }
  }
  return spec;
}

json::Value status_to_json(const SessionStatus& status) {
  json::Object obj;
  obj.emplace("session", json::Value(status.name));
  obj.emplace("workload", json::Value(status.workload));
  obj.emplace("strategy", json::Value(status.strategy));
  obj.emplace("alpha", json::Value(status.alpha));
  obj.emplace("phase", json::Value(status.phase));
  obj.emplace("labeled", json::Value(status.labeled));
  obj.emplace("n_max", json::Value(status.n_max));
  obj.emplace("pending", json::Value(status.pending));
  obj.emplace("iteration", json::Value(status.iteration));
  obj.emplace("pool_remaining", json::Value(status.pool_remaining));
  obj.emplace("cumulative_cost", json::Value(status.cumulative_cost));
  if (std::isfinite(status.best_observed)) {
    obj.emplace("best_observed", json::Value(status.best_observed));
  }
  obj.emplace("done", json::Value(status.done));
  obj.emplace("measure_seed",
              json::Value(std::to_string(status.measure_seed)));
  return json::Value(std::move(obj));
}

json::Value candidate_to_json(const Candidate& candidate) {
  json::Object obj;
  json::Array levels;
  levels.reserve(candidate.config.size());
  for (std::uint32_t level : candidate.config.levels()) {
    levels.emplace_back(static_cast<std::size_t>(level));
  }
  obj.emplace("levels", json::Value(std::move(levels)));
  obj.emplace("iteration", json::Value(candidate.iteration));
  if (candidate.has_prediction) {
    obj.emplace("mean", json::Value(candidate.predicted_mean));
    obj.emplace("stddev", json::Value(candidate.predicted_stddev));
  }
  return json::Value(std::move(obj));
}

space::Configuration configuration_from_json(const json::Value& levels) {
  if (!levels.is_array()) {
    throw std::invalid_argument("'levels' must be an array of level indices");
  }
  std::vector<std::uint32_t> out;
  out.reserve(levels.as_array().size());
  for (const json::Value& v : levels.as_array()) {
    const double d = v.as_number();
    if (d < 0.0 || d != std::floor(d) || d > 4294967295.0) {
      throw std::invalid_argument("'levels' entries must be integers in "
                                  "[0, 2^32)");
    }
    out.push_back(static_cast<std::uint32_t>(d));
  }
  return space::Configuration(std::move(out));
}

namespace {

/// The op dispatch proper — fencing, idempotency replay, and rid echo are
/// layered on top by handle_request.
json::Value dispatch_request(SessionManager& manager,
                             const json::Value& request) {
  try {
    const std::string op = required_string(request, "op");

    if (op == "shutdown") {
      // Graceful: join in-flight refits and flush final auto-checkpoints
      // before acknowledging, so a scripted shutdown never loses a tell.
      manager.drain();
      return ok_response({{"shutdown", json::Value(true)}});
    }
    if (op == "list") {
      json::Array sessions;
      for (const SessionStatus& status : manager.list()) {
        sessions.push_back(status_to_json(status));
      }
      return ok_response({{"sessions", json::Value(std::move(sessions))}});
    }
    if (op == "health") {
      return ok_response({{"health", health_to_json(manager.health())}});
    }
    if (op == "hello") {
      // Framing negotiation: the serve loop watches for this op and flips
      // its responses to framed when "frame" is true. The response itself
      // also reports the fence epoch so a reconnecting client learns
      // immediately whether it is stale.
      return ok_response(
          {{"proto", json::Value(std::string("pwu1"))},
           {"frame", json::Value(request.bool_or("frame", false))},
           {"fence_epoch",
            json::Value(static_cast<std::size_t>(manager.fence_epoch()))}});
    }
    if (op == "fence") {
      const json::Value& epoch = request.at("epoch");
      if (!epoch.is_number()) {
        throw std::invalid_argument("missing number field 'epoch'");
      }
      manager.raise_fence(static_cast<std::uint64_t>(epoch.as_number()));
      return ok_response(
          {{"epoch",
            json::Value(static_cast<std::size_t>(manager.fence_epoch()))}});
    }

    // Reject unknown ops before demanding their operands, so a typo'd op
    // is reported as such rather than as a missing 'session'.
    if (op != "create" && op != "ask" && op != "tell" && op != "status" &&
        op != "close" && op != "checkpoint" && op != "resume" &&
        op != "replicate" && op != "promote" && op != "export" &&
        op != "import") {
      return error_response("unknown op '" + op + "'");
    }
    const std::string name = required_string(request, "session");
    if (op == "create") {
      const SessionStatus status = manager.create(name, spec_from_json(request));
      return ok_response(
          {{"session", json::Value(name)},
           {"measure_seed", json::Value(std::to_string(status.measure_seed))},
           {"status", status_to_json(status)}});
    }
    if (op == "ask") {
      // Chaos/bench instant: the ask request arrived but nothing has been
      // applied — dying here forces the router to recover the session and
      // replay the ask, isolating pure recovery cost (no refit rides on
      // the replayed request).
      util::killpoint("protocol.ask");
      const std::size_t count = bounded_size_field(request, "count", 0);
      // Per-request deadline override; -1 = block for the fresh model.
      std::int64_t deadline_ms = manager.limits().ask_deadline_ms;
      if (request.has("deadline_ms")) {
        const double d = request.at("deadline_ms").as_number();
        if (d != std::floor(d) || d < -1.0 || d > 86400000.0) {
          throw std::invalid_argument(
              "field 'deadline_ms' must be an integer in [-1, 86400000]");
        }
        deadline_ms = static_cast<std::int64_t>(d);
      }
      const AskOutcome outcome =
          manager.ask_with_deadline(name, count, deadline_ms);
      json::Array arr;
      arr.reserve(outcome.candidates.size());
      for (const Candidate& cand : outcome.candidates) {
        arr.push_back(candidate_to_json(cand));
      }
      json::Object fields{{"candidates", json::Value(std::move(arr))},
                          {"done", json::Value(outcome.candidates.empty())}};
      if (outcome.degraded != DegradedMode::None) {
        fields.emplace("degraded",
                       json::Value(std::string(to_string(outcome.degraded))));
      }
      return ok_response(std::move(fields));
    }
    if (op == "tell") {
      // Optional "status" routes failed measurements: "ok" (default) is a
      // successful label, anything else goes through the failure path.
      const std::string status_name = request.string_or("status", "ok");
      const std::optional<sim::FailureKind> kind =
          sim::failure_kind_from_string(status_name);
      if (!kind.has_value()) {
        throw std::invalid_argument("unknown status '" + status_name + "'");
      }
      if (*kind == sim::FailureKind::None) {
        const json::Value& time = request.at("time");
        if (!time.is_number()) {
          throw std::invalid_argument("missing number field 'time'");
        }
        const TellOutcome outcome = manager.tell(
            name, configuration_from_json(request.at("levels")),
            time.as_number());
        json::Object fields{{"labeled", json::Value(outcome.labeled)},
                            {"refit", json::Value(outcome.batch_complete)},
                            {"done", json::Value(outcome.done)}};
        if (!outcome.checkpoint_path.empty()) {
          fields.emplace("checkpoint", json::Value(outcome.checkpoint_path));
        }
        return ok_response(std::move(fields));
      }
      const double cost = request.number_or("cost", 0.0);
      if (!(cost >= 0.0)) {
        throw std::invalid_argument("field 'cost' must be non-negative");
      }
      const FailureTellOutcome outcome = manager.tell_failure(
          name, configuration_from_json(request.at("levels")), *kind, cost);
      json::Object fields{
          {"failure", json::Value(std::string(sim::to_string(*kind)))},
          {"action",
           json::Value(std::string(outcome.action == FailureAction::Retry
                                       ? "retry"
                                       : "dropped"))},
          {"attempts", json::Value(outcome.attempts)},
          {"backoff_seconds", json::Value(outcome.backoff_seconds)},
          {"refit", json::Value(outcome.batch_complete)},
          {"done", json::Value(outcome.done)},
          {"failed_total", json::Value(outcome.failed_total)}};
      if (!outcome.checkpoint_path.empty()) {
        fields.emplace("checkpoint", json::Value(outcome.checkpoint_path));
      }
      return ok_response(std::move(fields));
    }
    if (op == "status") {
      return ok_response({{"status", status_to_json(manager.status(name))}});
    }
    if (op == "close") {
      const bool closed = manager.close(name);
      if (!closed) return error_response("no session named '" + name + "'");
      return ok_response({{"closed", json::Value(name)}});
    }
    if (op == "checkpoint") {
      const std::string path = required_string(request, "path");
      if (path.empty()) {
        throw std::invalid_argument("'path' must be a non-empty string");
      }
      manager.checkpoint_to_file(name, path);
      return ok_response({{"path", json::Value(path)}});
    }
    if (op == "resume") {
      const std::string path = required_string(request, "path");
      if (path.empty()) {
        throw std::invalid_argument("'path' must be a non-empty string");
      }
      const ResumeOutcome outcome = manager.resume_from_file(name, path);
      return ok_response(
          {{"measure_seed",
            json::Value(std::to_string(outcome.status.measure_seed))},
           {"recovered", json::Value(outcome.used_fallback)},
           {"source", json::Value(outcome.source_path)},
           {"status", status_to_json(outcome.status)}});
    }
    if (op == "replicate") {
      // One op record streamed from the session's primary. The record is
      // an ordinary protocol request applied to the local shadow copy —
      // determinism-by-re-execution is what keeps the shadow bit-identical
      // to the primary — so the dispatch is just a recursive
      // handle_request, with the inner response echoed under "applied" for
      // the replicator's digest check.
      const json::Value& record = request.at("record");
      if (!record.is_object()) {
        throw std::invalid_argument("'record' must be an object");
      }
      const std::string inner_op = required_string(record, "op");
      if (inner_op != "create" && inner_op != "ask" && inner_op != "tell" &&
          inner_op != "close" && inner_op != "resume" &&
          inner_op != "checkpoint") {
        throw std::invalid_argument("op '" + inner_op +
                                    "' cannot be replicated");
      }
      if (required_string(record, "session") != name) {
        throw std::invalid_argument(
            "replicate record names a different session");
      }
      // The record is acked upstream but not yet applied here — exactly
      // the window where a standby death must degrade to cold re-home.
      util::killpoint("protocol.replicate");
      json::Value applied = handle_request(manager, record);
      const bool inner_ok = applied.bool_or("ok", false);
      if (inner_ok && inner_op != "close") manager.mark_shadow(name, true);
      if (!inner_ok) {
        json::Value response =
            error_response("replicate: inner op '" + inner_op +
                           "' failed: " + applied.string_or("error", "?"));
        response.as_object().emplace("applied", std::move(applied));
        return response;
      }
      return ok_response({{"applied", std::move(applied)}});
    }
    if (op == "promote") {
      // Zero-cold-start failover: the shadow's state is already current,
      // so promotion is just dropping the shadow mark.
      util::killpoint("protocol.promote");
      manager.mark_shadow(name, false);
      return ok_response({{"status", status_to_json(manager.status(name))}});
    }
    if (op == "export") {
      // Chunked so a large forest image fits through the 1 MiB line cap.
      constexpr std::size_t kMaxChunkBytes = 256 * 1024;
      const std::size_t offset = size_field(request, "offset", 0);
      std::size_t max_bytes =
          size_field(request, "max_bytes", kMaxChunkBytes);
      if (max_bytes == 0 || max_bytes > kMaxChunkBytes) {
        max_bytes = kMaxChunkBytes;
      }
      util::killpoint("protocol.export");
      const std::string image = manager.export_image(name);
      if (offset > image.size()) {
        throw std::invalid_argument("export offset past the image end");
      }
      std::string chunk = image.substr(offset, max_bytes);
      const bool eof = offset + chunk.size() >= image.size();
      return ok_response({{"chunk", json::Value(std::move(chunk))},
                          {"offset", json::Value(offset)},
                          {"total", json::Value(image.size())},
                          {"eof", json::Value(eof)}});
    }
    if (op == "import") {
      if (request.has("chunk")) {
        const json::Value& chunk = request.at("chunk");
        if (!chunk.is_string()) {
          throw std::invalid_argument("'chunk' must be a string");
        }
        manager.import_append(name, chunk.as_string());
      }
      if (request.bool_or("abort", false)) {
        manager.import_abort(name);
        return ok_response({{"aborted", json::Value(name)}});
      }
      if (request.bool_or("commit", false)) {
        const SessionStatus status =
            manager.import_commit(name, request.bool_or("shadow", false));
        return ok_response({{"status", status_to_json(status)}});
      }
      return ok_response({{"staged", json::Value(true)}});
    }
    return error_response("unknown op '" + op + "'");
  } catch (const OverloadError& e) {
    // Structural refusal, not a failure: the client is told when to come
    // back instead of being disconnected or blocked.
    json::Value response = error_response(e.what());
    response.as_object().emplace("overloaded", json::Value(true));
    response.as_object().emplace(
        "retry_after_ms",
        json::Value(static_cast<double>(e.retry_after_ms())));
    return response;
  } catch (const std::exception& e) {
    return error_response(e.what());
  }
}

}  // namespace

util::json::Value handle_request(SessionManager& manager,
                                 const json::Value& request) {
  json::Value response = [&]() -> json::Value {
    try {
      const std::string op = required_string(request, "op");

      // Fencing: a write stamped with an epoch below the highest this
      // server has seen comes from a router whose view of the ring
      // predates a failover or grow — rejecting it closes the split-brain
      // window. Any in-range epoch raises the fence monotonically.
      if (request.has("epoch") && request.at("epoch").is_number()) {
        const std::uint64_t epoch =
            static_cast<std::uint64_t>(request.at("epoch").as_number());
        const std::uint64_t fence = manager.fence_epoch();
        if (is_mutating_op(op) && epoch < fence) {
          json::Value fenced = error_response(
              "stale epoch " + std::to_string(epoch) + " < fence " +
              std::to_string(fence));
          fenced.as_object().emplace("fenced", json::Value(true));
          fenced.as_object().emplace(
              "epoch", json::Value(static_cast<std::size_t>(fence)));
          return fenced;
        }
        manager.raise_fence(epoch);
      }

      // Idempotency: a duplicated or retried mutating op (same
      // client-generated key) replays the original reply instead of
      // re-executing — the whole-client-path version of the router's
      // exactly-once tells.
      const std::string idem = request.string_or("idem", "");
      const std::string session = request.string_or("session", "");
      const bool dedup =
          !idem.empty() && !session.empty() && is_mutating_op(op);
      if (dedup) {
        if (std::optional<std::string> prior =
                manager.idempotent_reply(session, idem)) {
          return json::parse(*prior);
        }
      }
      json::Value fresh = dispatch_request(manager, request);
      // Overload sheds are transient refusals — remembering one would
      // replay it at the retry that the shed itself asked for.
      if (dedup && !fresh.bool_or("overloaded", false)) {
        manager.remember_reply(session, idem, fresh.dump());
      }
      return fresh;
    } catch (const std::exception& e) {
      return error_response(e.what());
    }
  }();
  // Echo the request id (if any) so pipelining clients can re-match
  // duplicated or reordered replies. Echoed after idempotency replay: the
  // replayed reply must carry the *retry's* rid, not the original's.
  if (request.is_object() && request.has("rid") &&
      request.at("rid").is_string()) {
    response.as_object()["rid"] = json::Value(request.at("rid").as_string());
  }
  return response;
}

std::size_t run_serve_loop(std::istream& in, std::ostream& out,
                           SessionManager& manager) {
  // Requests beyond this size are rejected up front: a runaway or
  // malicious line must not balloon the JSON parser, and the loop (and
  // every other session) keeps serving afterwards.
  constexpr std::size_t kMaxRequestBytes = 1 << 20;
  std::size_t handled = 0;
  bool framed_out = false;
  const auto respond = [&](const json::Value& response) {
    const std::string payload = response.dump();
    if (framed_out) {
      out << frame_encode(payload);
    } else {
      out << payload << '\n';
    }
    out.flush();
    ++handled;
  };
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    // Framed request: a `pwu1 <len> <crc32>` header line, payload on the
    // next line. A damaged frame (bad length, bad CRC, missing payload) is
    // reported as a structured bad_frame error — never mis-parsed — and
    // the loop resyncs at the next line.
    FrameHeader header;
    if (parse_frame_header(line, header)) {
      if (header.len > kMaxRequestBytes) {
        json::Value bad = error_response("frame exceeds 1 MiB");
        bad.as_object().emplace("bad_frame", json::Value(true));
        respond(bad);
        continue;
      }
      std::string payload;
      if (!std::getline(in, payload)) {
        json::Value bad =
            error_response("truncated frame: stream ended before payload");
        bad.as_object().emplace("bad_frame", json::Value(true));
        respond(bad);
        break;
      }
      if (!frame_payload_matches(header, payload)) {
        json::Value bad = error_response("frame checksum mismatch");
        bad.as_object().emplace("bad_frame", json::Value(true));
        respond(bad);
        continue;
      }
      line = std::move(payload);
    }
    if (line.size() > kMaxRequestBytes) {
      respond(error_response("request line exceeds 1 MiB"));
      continue;
    }
    json::Value response;
    bool shutdown = false;
    bool hello_frame = false;
    try {
      const json::Value request = json::parse(line);
      response = handle_request(manager, request);
      if (request.string_or("op", "") == "hello" &&
          response.bool_or("ok", false)) {
        hello_frame = request.bool_or("frame", false);
      }
      const json::Value& flag = response.at("shutdown");
      shutdown = flag.is_bool() && flag.as_bool();
    } catch (const std::exception& e) {
      response = error_response(e.what());
    }
    // The hello reply itself is already framed when framing was requested:
    // the client asked for frames, so it can parse one immediately.
    if (hello_frame) framed_out = true;
    respond(response);
    if (shutdown) break;
  }
  return handled;
}

}  // namespace pwu::service
