#include "service/session_manager.hpp"

#include <algorithm>
#include <chrono>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "rf/flat_forest.hpp"
#include "space/pool.hpp"
#include "util/contracts.hpp"
#include "util/fs_atomic.hpp"
#include "util/killpoints.hpp"
#include "util/logging.hpp"
#include "workloads/registry.hpp"

namespace pwu::service {

namespace {

/// Session names become checkpoint file names, so they must be
/// filesystem-safe: no separators, no traversal, no shell surprises.
void validate_session_name(const std::string& name, const char* who) {
  if (name.empty()) {
    throw std::invalid_argument(std::string(who) + ": empty session name");
  }
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) {
      throw std::invalid_argument(
          std::string(who) + ": session name '" + name +
          "' contains characters outside [A-Za-z0-9._-]");
    }
  }
  if (name[0] == '.') {
    throw std::invalid_argument(std::string(who) + ": session name '" + name +
                                "' must not start with '.'");
  }
}

/// Parsed form of a checkpoint() stream: the wrapper header plus the
/// restored session. Shared by resume() and the lazy eviction-resume path.
struct ParsedCheckpoint {
  SessionSpec spec;
  std::uint64_t measure_seed = 0;
  std::unique_ptr<AskTellSession> session;
};

ParsedCheckpoint parse_checkpoint(std::istream& is,
                                  util::ThreadPool* workers) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "pwu-session-file" ||
      version != 1) {
    throw std::runtime_error("SessionManager::resume: bad checkpoint header");
  }
  ParsedCheckpoint parsed;
  std::string token;
  if (!(is >> token >> parsed.spec.workload) || token != "workload") {
    throw std::runtime_error("SessionManager::resume: bad workload line");
  }
  if (!(is >> token >> parsed.spec.pool_size >> parsed.spec.test_size >>
        parsed.spec.seed) ||
      token != "sizes") {
    throw std::runtime_error("SessionManager::resume: bad sizes line");
  }
  if (!(is >> token >> parsed.measure_seed) || token != "measure_seed") {
    throw std::runtime_error("SessionManager::resume: bad measure_seed line");
  }

  const workloads::WorkloadPtr workload =
      workloads::make_workload(parsed.spec.workload);
  parsed.session = std::make_unique<AskTellSession>(
      AskTellSession::restore(workload->space(), is, workers));
  // Surface the restored strategy/config in status output.
  if (parsed.session->strategy_spec().has_value()) {
    parsed.spec.strategy = parsed.session->strategy_spec()->name;
    parsed.spec.alpha = parsed.session->strategy_spec()->alpha;
  }
  parsed.spec.learner = parsed.session->config();
  return parsed;
}

}  // namespace

SessionManager::SessionManager(util::ThreadPool* workers, ServiceLimits limits,
                               const util::TickSource* ticks)
    : workers_(workers),
      limits_(limits),
      ticks_(ticks != nullptr ? ticks : &default_ticks_),
      budget_(limits.memory_budget_bytes) {}

SessionManager::~SessionManager() {
  std::lock_guard registry_lock(registry_mutex_);
  for (auto& [name, entry] : sessions_) {
    std::lock_guard entry_lock(entry->mutex);
    try {
      join_refit(*entry);
    } catch (...) {
      // A refit that was cancelled (or failed) with nobody left to care:
      // destruction must not throw.
    }
  }
}

// Callers hold entry.mutex; the lock lives one frame up, so the lock-
// discipline lint needs explicit annotation here.
void SessionManager::join_refit(Entry& entry) {
  if (entry.refit.valid()) {  // pwu-lint: allow(no-unlocked-mutable)
    // Rethrows a failed refit to the next caller.
    entry.refit.get();  // pwu-lint: allow(no-unlocked-mutable)
  }
}

void SessionManager::touch(Entry& entry) const {
  entry.last_touch.store(
      touch_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);
}

void SessionManager::shed(const std::string& what) const {
  overloaded_sheds_.fetch_add(1, std::memory_order_relaxed);
  throw OverloadError(what, limits_.retry_after_ms);
}

void SessionManager::update_footprint(const std::string& name,
                                      Entry& entry) const {
  // Caller holds entry.mutex with no refit in flight (memory_bytes reads
  // the model the fit would be replacing).
  const std::size_t bytes = entry.session->memory_bytes();
  entry.footprint.store(bytes, std::memory_order_relaxed);
  budget_.charge(name, bytes);
}

std::shared_ptr<SessionManager::Entry> SessionManager::find(
    const std::string& name) const {
  std::lock_guard lock(registry_mutex_);
  const auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    throw std::invalid_argument("SessionManager: no session named '" + name +
                                "'");
  }
  PWU_ENSURE(it->second != nullptr &&
                 (it->second->session != nullptr ||
                  it->second->evicted.load(std::memory_order_relaxed)),
             "find: registry entry for '" << name << "' lost its session");
  return it->second;
}

SessionStatus SessionManager::status_locked(const std::string& name,
                                            const Entry& entry) const {
  PWU_REQUIRE(entry.session != nullptr,
              "status_locked: entry '" << name << "' has no session");
  const AskTellSession& session = *entry.session;
  SessionStatus status;
  status.name = name;
  status.workload = entry.spec.workload;
  status.strategy = entry.spec.strategy;
  status.alpha = entry.spec.alpha;
  status.phase = to_string(session.phase());
  status.labeled = session.num_labeled();
  status.n_max = session.config().n_max;
  status.pending = session.pending_count();
  status.iteration = session.iteration();
  status.pool_remaining = session.pool_remaining();
  status.cumulative_cost = session.cumulative_cost();
  status.best_observed = session.best_observed();
  status.done = session.done();
  status.measure_seed = entry.measure_seed;
  return status;
}

void SessionManager::ensure_resumed(const std::string& name, Entry& entry,
                                    const AutoCheckpointPolicy& policy) const {
  if (entry.session != nullptr) return;
  PWU_ASSERT(entry.evicted.load(std::memory_order_relaxed),
             "ensure_resumed: entry '" << name
                                       << "' has no session but is not "
                                          "marked evicted");
  const std::string path = policy.dir + "/" + name + ".ckpt";
  const util::RecoveredRead read = util::read_checkpoint_with_fallback(path);
  if (read.status != util::ReadStatus::Ok) {
    throw std::runtime_error(
        std::string("SessionManager: cannot resume evicted session '") + name +
        "': " + util::to_string(read.status) + " checkpoint '" + path + "'");
  }
  std::istringstream is(read.payload);
  ParsedCheckpoint parsed = parse_checkpoint(is, workers_);
  entry.session = std::move(parsed.session);  // pwu-lint: allow(no-unlocked-mutable)
  entry.spec = std::move(parsed.spec);
  entry.measure_seed = parsed.measure_seed;
  entry.evicted.store(false, std::memory_order_relaxed);
  lazy_resumes_.fetch_add(1, std::memory_order_relaxed);
  update_footprint(name, entry);
}

SessionStatus SessionManager::create(const std::string& name,
                                     const SessionSpec& spec) {
  validate_session_name(name, "SessionManager::create");
  // Cheap admission pre-check before the expensive pool build; the
  // authoritative check happens again under the registry lock at insert.
  if (limits_.max_sessions != 0 && size() >= limits_.max_sessions) {
    shed("session cap (" + std::to_string(limits_.max_sessions) +
         ") reached");
  }
  const workloads::WorkloadPtr workload =
      workloads::make_workload(spec.workload);

  // Seed derivation mirrors one repeat of core::run_experiment: a split
  // stream for the pool, then a run stream whose first two draws become
  // the session seed and the client's measurement seed. A batch
  // ActiveLearner::run over the same derivation is label-for-label
  // identical to this session (tests/test_ask_tell.cpp).
  util::Rng master PWU_RNG_STREAM(session_derivation)(spec.seed);
  util::Rng split_rng = master.fork();
  space::PoolSplit split = space::make_pool_split(
      workload->space(), spec.pool_size, spec.test_size, split_rng);
  util::Rng run_rng = master.fork();
  const std::uint64_t session_seed = run_rng.next_u64();
  const std::uint64_t measure_seed = run_rng.next_u64();

  auto entry = std::make_shared<Entry>();
  entry->session = std::make_unique<AskTellSession>(
      workload->space(), StrategySpec{spec.strategy, spec.alpha}, spec.learner,
      std::move(split.pool), session_seed, workers_);
  entry->spec = spec;
  entry->measure_seed = measure_seed;

  SessionStatus status;
  {
    std::lock_guard lock(registry_mutex_);
    if (limits_.max_sessions != 0 &&
        sessions_.size() >= limits_.max_sessions) {
      shed("session cap (" + std::to_string(limits_.max_sessions) +
           ") reached");
    }
    const auto [it, inserted] = sessions_.emplace(name, std::move(entry));
    if (!inserted) {
      throw std::invalid_argument("SessionManager::create: session '" + name +
                                  "' already exists");
    }
    touch(*it->second);
    it->second->footprint.store(it->second->session->memory_bytes(),
                                std::memory_order_relaxed);
    budget_.charge(name, it->second->footprint.load(std::memory_order_relaxed));
    status = status_locked(name, *it->second);
  }
  enforce_budget();
  return status;
}

std::vector<Candidate> SessionManager::ask(const std::string& name,
                                           std::size_t count) {
  return ask_with_deadline(name, count, limits_.ask_deadline_ms).candidates;
}

AskOutcome SessionManager::ask_with_deadline(const std::string& name,
                                             std::size_t count,
                                             std::int64_t deadline_ms) {
  const AutoCheckpointPolicy policy = auto_checkpoint_policy();
  const std::shared_ptr<Entry> entry = find(name);
  AskOutcome outcome;
  {
    std::lock_guard lock(entry->mutex);
    touch(*entry);
    ensure_resumed(name, *entry, policy);  // pwu-lint: blocking-ok(lazy resume must swap entry->session in atomically; the restore refit runs on the helping pool and takes no lock)
    if (entry->quarantined) {
      shed("session '" + name + "' is quarantined (repeated refit timeouts)");
    }
    if (limits_.max_pending_asks != 0) {
      const auto& config = entry->session->config();
      // Cold start always serves exactly n_init, regardless of any explicit
      // count (Algorithm 1, lines 1-4); size the admission check the way
      // the session will actually answer.
      const std::size_t want =
          entry->session->phase() == SessionPhase::ColdStart
              ? config.n_init
              : (count != 0 ? count : config.n_batch);
      if (want > limits_.max_pending_asks) {
        shed("ask for " + std::to_string(want) +
             " candidates exceeds the pending-ask cap (" +
             std::to_string(limits_.max_pending_asks) + ")");
      }
    }
    bool fresh = settle_refit(entry, deadline_ms);  // pwu-lint: blocking-ok(inline-fallback fit only; parallel_for helping-join takes no lock, entry.mutex is a leaf here)
    if (fresh && entry->session->refit_due() && deadline_ms >= 0 &&
        workers_ != nullptr && workers_->num_threads() > 1) {
      // A due-but-unscheduled refit (restored checkpoint, lazy resume):
      // run it on the pool and hold it to the same deadline instead of
      // letting ask() block on it inline.
      schedule_refit(entry);  // pwu-lint: blocking-ok(single-thread fallback runs the fit inline; the pool path is type-erased and lock-free)
      fresh = settle_refit(entry, deadline_ms);  // pwu-lint: blocking-ok(inline-fallback fit only; parallel_for helping-join takes no lock, entry.mutex is a leaf here)
    }
    if (entry->quarantined) {
      shed("session '" + name + "' is quarantined (repeated refit timeouts)");
    }
    if (fresh) {
      outcome.candidates = entry->session->ask(count);  // pwu-lint: blocking-ok(batch scoring on the helping pool; entry.mutex is a leaf, no lock is taken inside predict)
      update_footprint(name, *entry);
    } else {
      const core::Surrogate* stale = entry->last_good.get();
      const bool scored = stale != nullptr && stale->fitted();
      outcome.candidates = entry->session->ask_degraded(count, stale);  // pwu-lint: blocking-ok(batch scoring on the helping pool; entry.mutex is a leaf, no lock is taken inside predict)
      if (!outcome.candidates.empty()) {
        outcome.degraded =
            scored ? DegradedMode::StaleModel : DegradedMode::Random;
        (scored ? degraded_stale_total_ : degraded_random_total_)
            .fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  enforce_budget();
  return outcome;
}

namespace {

/// Sessions fuse their scoring passes only when they agree on workload and
/// pool sizing — the shape under which interleaving their row blocks in
/// one parallel region is obviously safe and load-balanced.
std::string workload_fingerprint(const SessionSpec& spec) {
  return spec.workload + "/" + std::to_string(spec.pool_size) + "/" +
         std::to_string(spec.test_size);
}

}  // namespace

std::vector<FusedAskResult> SessionManager::ask_fused(
    const std::vector<FusedAskRequest>& requests, std::int64_t deadline_ms) {
  const AutoCheckpointPolicy policy = auto_checkpoint_policy();
  std::vector<FusedAskResult> results(requests.size());

  // Resolve every name first (find() takes the registry mutex, which must
  // never be acquired under an entry mutex). Duplicate names are rejected:
  // a session cannot hold two outstanding batches, and admitting the pair
  // would self-deadlock the sorted multi-lock below.
  std::vector<std::shared_ptr<Entry>> entries(requests.size());
  std::map<std::string, std::shared_ptr<Entry>> by_name;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    results[i].session = requests[i].session;
    if (by_name.count(requests[i].session) != 0) {
      results[i].error = "ask_fused: duplicate session '" +
                         requests[i].session + "' in one fused request";
      continue;
    }
    try {
      entries[i] = find(requests[i].session);
      by_name.emplace(requests[i].session, entries[i]);
    } catch (const std::invalid_argument& e) {
      results[i].error = e.what();
    }
  }

  {
    // Lock the entries in sorted-name order — one global order shared by
    // every multi-lock acquirer keeps concurrent ask_fused calls (and the
    // single-lock operations, which trivially respect any order)
    // deadlock-free.
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(by_name.size());
    for (auto& [name, entry] : by_name) locks.emplace_back(entry->mutex);

    // Per-request admission, mirroring ask_with_deadline exactly. Requests
    // whose session is cold-starting or done complete here (no scoring
    // pass exists); the rest park their AskPlan for the fused pass.
    struct ScoringJob {
      std::size_t index = 0;  // into requests/results
      AskPlan plan;
      std::vector<rf::PredictionStats> stats;
    };
    std::vector<ScoringJob> jobs;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const std::shared_ptr<Entry>& entry = entries[i];
      if (!results[i].error.empty() || entry == nullptr) continue;
      const std::string& name = requests[i].session;
      const std::size_t count = requests[i].count;
      try {
        touch(*entry);
        ensure_resumed(name, *entry, policy);
        if (entry->quarantined) {
          shed("session '" + name +
               "' is quarantined (repeated refit timeouts)");
        }
        if (limits_.max_pending_asks != 0) {
          const auto& config = entry->session->config();
          const std::size_t want =
              entry->session->phase() == SessionPhase::ColdStart
                  ? config.n_init
                  : (count != 0 ? count : config.n_batch);
          if (want > limits_.max_pending_asks) {
            shed("ask for " + std::to_string(want) +
                 " candidates exceeds the pending-ask cap (" +
                 std::to_string(limits_.max_pending_asks) + ")");
          }
        }
        bool fresh = settle_refit(entry, deadline_ms);
        if (fresh && entry->session->refit_due() && deadline_ms >= 0 &&
            workers_ != nullptr && workers_->num_threads() > 1) {
          schedule_refit(entry);
          fresh = settle_refit(entry, deadline_ms);
        }
        if (entry->quarantined) {
          shed("session '" + name +
               "' is quarantined (repeated refit timeouts)");
        }
        if (fresh) {
          AskPlan plan = entry->session->plan_ask(count);
          if (!plan.needs_scores) {
            results[i].outcome.candidates = std::move(plan.candidates);
            update_footprint(name, *entry);
          } else {
            jobs.push_back({i, std::move(plan), {}});
          }
        } else {
          const core::Surrogate* stale = entry->last_good.get();
          const bool scored = stale != nullptr && stale->fitted();
          results[i].outcome.candidates =
              entry->session->ask_degraded(count, stale);
          if (!results[i].outcome.candidates.empty()) {
            results[i].outcome.degraded =
                scored ? DegradedMode::StaleModel : DegradedMode::Random;
            (scored ? degraded_stale_total_ : degraded_random_total_)
                .fetch_add(1, std::memory_order_relaxed);
          }
        }
      } catch (const OverloadError& e) {
        results[i].error = e.what();
        results[i].overloaded = true;
      } catch (const std::exception& e) {
        results[i].error = e.what();
      }
    }

    // Fused scoring: group by workload fingerprint and run each group's
    // pool predictions as ONE flattened (job, row-block) parallel region.
    // Flat-forest row blocks evaluate independently, so any schedule over
    // them — including interleaving blocks of different sessions' forests
    // — yields bit-identical stats to each session scoring alone.
    std::map<std::string, std::vector<std::size_t>> groups;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const Entry& entry = *entries[jobs[j].index];
      groups[workload_fingerprint(entry.spec)].push_back(j);
    }
    for (const auto& [fingerprint, members] : groups) {
      struct BlockTask {
        std::size_t job = 0;  // into jobs
        std::size_t begin = 0;
        std::size_t end = 0;
      };
      std::vector<BlockTask> tasks;
      std::vector<std::size_t> fallback;  // non-forest surrogates (GP)
      for (const std::size_t j : members) {
        const std::size_t i = jobs[j].index;
        const AskTellSession& session = *entries[i]->session;
        const std::size_t n = session.pool_features().num_rows();
        jobs[j].stats.resize(n);
        const rf::RandomForest* forest = core::as_forest(*session.model());
        if (forest == nullptr) {
          fallback.push_back(j);
          continue;
        }
        for (std::size_t begin = 0; begin < n;
             begin += rf::FlatForest::kRowBlock) {
          tasks.push_back(
              {j, begin, std::min(begin + rf::FlatForest::kRowBlock, n)});
        }
      }
      auto run_task = [&](std::size_t k, std::vector<double>& scratch) {
        const BlockTask& task = tasks[k];
        const std::size_t i = jobs[task.job].index;
        const AskTellSession& session = *entries[i]->session;
        core::as_forest(*session.model())
            ->flat()
            .predict_stats_block(session.pool_features(), task.begin,
                                 task.end, jobs[task.job].stats, scratch);
      };
      if (workers_ != nullptr && workers_->num_threads() > 1 &&
          tasks.size() > 1) {
        workers_->parallel_for(0, tasks.size(), [&](std::size_t k) {
          thread_local std::vector<double> scratch;
          run_task(k, scratch);
        });
      } else {
        std::vector<double> scratch;
        for (std::size_t k = 0; k < tasks.size(); ++k) run_task(k, scratch);
      }
      // Surrogates without a flat forest (the GP) cannot join the block
      // grid; score them exactly as their own ask() would have.
      for (const std::size_t j : fallback) {
        const std::size_t i = jobs[j].index;
        const AskTellSession& session = *entries[i]->session;
        jobs[j].stats =
            session.model()->predict_stats_batch(session.pool_features(),
                                                 workers_);
      }
      fused_groups_.fetch_add(1, std::memory_order_relaxed);
      fused_scored_.fetch_add(members.size(), std::memory_order_relaxed);
    }

    // Finish in request order: each session replays its strategy selection
    // on its own rng, exactly as its unfused ask() would have.
    for (ScoringJob& job : jobs) {
      const std::size_t i = job.index;
      const std::string& name = requests[i].session;
      try {
        results[i].outcome.candidates =
            entries[i]->session->finish_ask(job.plan, job.stats);
        update_footprint(name, *entries[i]);
      } catch (const std::exception& e) {
        results[i].error = e.what();
      }
    }
  }
  enforce_budget();
  return results;
}

void SessionManager::schedule_refit(const std::shared_ptr<Entry>& entry) const {
  // Caller holds entry->mutex. Snapshot the current model first: it is
  // what deadline-expired asks score the pool with while the fresh fit
  // runs, and shared ownership keeps it alive even after the fit swaps
  // session->model().
  entry->last_good = entry->session->model();  // pwu-lint: allow(no-unlocked-mutable)
  if (workers_ != nullptr && workers_->num_threads() > 1) {
    if (limits_.max_refit_queue != 0 &&
        refits_in_flight_.load(std::memory_order_relaxed) >=
            limits_.max_refit_queue) {
      // Queue full: leave the fit due inside the session (it survives
      // checkpoints that way) and re-attempt on the next touch.
      entry->refit_deferred = true;  // pwu-lint: allow(no-unlocked-mutable)
      return;
    }
    auto cancel = std::make_shared<util::CancelToken>();
    entry->refit_cancel = cancel;  // pwu-lint: allow(no-unlocked-mutable)
    entry->refit_watchdog.arm(*ticks_, limits_.refit_watchdog_ms);
    refits_in_flight_.fetch_add(1, std::memory_order_relaxed);
    // The task owns the entry shared_ptr (never a raw session pointer):
    // close(), eviction, or manager destruction cannot free session state
    // while the fit is running. It runs without entry->mutex — every other
    // session operation settles the future before touching fields the fit
    // uses (model_, rng_, the training set).
    // pwu-lint: allow-next-line(no-unlocked-mutable)
    entry->refit = workers_->submit([this, entry, cancel] {
      struct Decrement {
        const std::atomic<std::size_t>& counter;
        ~Decrement() {
          const_cast<std::atomic<std::size_t>&>(counter).fetch_sub(
              1, std::memory_order_relaxed);
        }
      } decrement{refits_in_flight_};
      // pwu-lint: allow-next-line(no-unlocked-mutable)
      entry->session->refit(cancel.get());
    });
  } else {
    entry->session->refit();  // pwu-lint: allow(no-unlocked-mutable)
  }
}

bool SessionManager::settle_refit(const std::shared_ptr<Entry>& entry,
                                  std::int64_t deadline_ms) const {
  // Caller holds entry->mutex.
  for (;;) {
    // pwu-lint: allow-next-line(no-unlocked-mutable)
    if (entry->refit_deferred && !entry->refit.valid()) {
      entry->refit_deferred = false;  // pwu-lint: allow(no-unlocked-mutable)
      schedule_refit(entry);
      if (entry->refit_deferred) {  // pwu-lint: allow(no-unlocked-mutable)
        // Still no queue slot. A blocking caller runs the fit inline
        // rather than busy-wait for a slot; a deadline caller degrades.
        if (deadline_ms >= 0) return false;
        entry->refit_deferred = false;  // pwu-lint: allow(no-unlocked-mutable)
        entry->session->refit();  // pwu-lint: allow(no-unlocked-mutable)
        return true;
      }
    }
    if (!entry->refit.valid()) return true;  // pwu-lint: allow(no-unlocked-mutable)

    if (deadline_ms < 0) {
      entry->refit.wait();  // pwu-lint: allow(no-unlocked-mutable)
      // pwu-lint: allow-next-line(no-unlocked-mutable)
    } else if (entry->refit.wait_for(std::chrono::milliseconds(
                   deadline_ms)) !=
               std::future_status::ready) {
      // Deadline expired with the fit still running. If it has also blown
      // its watchdog budget, ask it to stop burning a worker; the
      // cancellation is harvested (and the fit requeued or the session
      // quarantined) on a later settle.
      // pwu-lint: allow-next-line(no-unlocked-mutable)
      if (entry->refit_watchdog.expired() && entry->refit_cancel != nullptr &&
          !entry->refit_cancel->requested()) {  // pwu-lint: allow(no-unlocked-mutable)
        entry->refit_cancel->request();  // pwu-lint: allow(no-unlocked-mutable)
        watchdog_timeouts_.fetch_add(1, std::memory_order_relaxed);
      }
      return false;
    }

    std::future<void> settled = std::move(entry->refit);  // pwu-lint: allow(no-unlocked-mutable)
    entry->refit_watchdog.disarm();
    entry->refit_cancel.reset();  // pwu-lint: allow(no-unlocked-mutable)
    try {
      settled.get();
      return true;
    } catch (const util::Cancelled&) {
      // The watchdog cancelled this fit. The session rolled its rng back,
      // so a requeued fit replays identically.
      ++entry->refit_timeouts;  // pwu-lint: allow(no-unlocked-mutable)
      if (entry->refit_timeouts > limits_.refit_retries) {  // pwu-lint: allow(no-unlocked-mutable)
        entry->quarantined = true;  // pwu-lint: allow(no-unlocked-mutable)
        return false;
      }
      schedule_refit(entry);
      // Loop: wait for (or degrade around) the requeued fit.
    }
  }
}

TellOutcome SessionManager::tell(const std::string& name,
                                 const space::Configuration& config,
                                 double measured_time) {
  // Snapshot before locking the entry: registry_mutex_ is ordered before
  // entry mutexes, so it must never be acquired while one is held.
  const AutoCheckpointPolicy policy = auto_checkpoint_policy();
  const std::shared_ptr<Entry> entry = find(name);
  TellOutcome outcome;
  PendingCheckpoint pending;
  {
    std::lock_guard lock(entry->mutex);
    touch(*entry);
    ensure_resumed(name, *entry, policy);  // pwu-lint: blocking-ok(lazy resume must swap entry->session in atomically; the restore refit runs on the helping pool and takes no lock)
    if (entry->quarantined) {
      shed("session '" + name + "' is quarantined (repeated refit timeouts)");
    }
    // A tell writes the training set the refit is reading — it must never
    // overlap an in-flight fit. Within the deadline we wait; past it we
    // shed (degrading is not an option for writes).
    if (!settle_refit(entry, limits_.ask_deadline_ms)) {  // pwu-lint: blocking-ok(inline-fallback fit only; parallel_for helping-join takes no lock, entry.mutex is a leaf here)
      if (entry->quarantined) {
        shed("session '" + name +
             "' is quarantined (repeated refit timeouts)");
      }
      shed("session '" + name + "' refit still in flight");
    }
    outcome.batch_complete = entry->session->tell(config, measured_time);
    outcome.labeled = entry->session->num_labeled();
    outcome.done = entry->session->done();
    // Serialize the checkpoint before scheduling the refit: a refit-due
    // session image restores exactly (the refit replays from the saved
    // rng). The file write itself is deferred past the locked scope.
    pending = maybe_auto_checkpoint(name, *entry, policy);
    outcome.checkpoint_path = pending.path;
    update_footprint(name, *entry);
    if (outcome.batch_complete) schedule_refit(entry);  // pwu-lint: blocking-ok(single-thread fallback runs the fit inline; the pool path is type-erased and lock-free)
  }
  // The tell is applied in memory but its checkpoint is not yet on disk —
  // exactly the window the chaos harness proves recoverable.
  util::killpoint("session_manager.tell.applied");
  commit_checkpoint(*entry, pending);
  enforce_budget();
  return outcome;
}

FailureTellOutcome SessionManager::tell_failure(
    const std::string& name, const space::Configuration& config,
    sim::FailureKind kind, double cost_seconds) {
  const AutoCheckpointPolicy policy = auto_checkpoint_policy();
  const std::shared_ptr<Entry> entry = find(name);
  FailureTellOutcome outcome;
  PendingCheckpoint pending;
  {
    std::lock_guard lock(entry->mutex);
    touch(*entry);
    ensure_resumed(name, *entry, policy);  // pwu-lint: blocking-ok(lazy resume must swap entry->session in atomically; the restore refit runs on the helping pool and takes no lock)
    if (entry->quarantined) {
      shed("session '" + name + "' is quarantined (repeated refit timeouts)");
    }
    if (!settle_refit(entry, limits_.ask_deadline_ms)) {  // pwu-lint: blocking-ok(inline-fallback fit only; parallel_for helping-join takes no lock, entry.mutex is a leaf here)
      if (entry->quarantined) {
        shed("session '" + name +
             "' is quarantined (repeated refit timeouts)");
      }
      shed("session '" + name + "' refit still in flight");
    }
    const FailureOutcome result =
        entry->session->tell_failure(config, kind, cost_seconds);
    outcome.action = result.action;
    outcome.attempts = result.attempts;
    outcome.backoff_seconds = result.backoff_seconds;
    outcome.batch_complete = result.batch_complete;
    outcome.done = entry->session->done();
    outcome.failed_total = entry->session->failed().size();
    pending = maybe_auto_checkpoint(name, *entry, policy);
    outcome.checkpoint_path = pending.path;
    update_footprint(name, *entry);
    if (outcome.batch_complete) schedule_refit(entry);  // pwu-lint: blocking-ok(single-thread fallback runs the fit inline; the pool path is type-erased and lock-free)
  }
  // Applied in memory, not yet checkpointed (see tell()).
  util::killpoint("session_manager.tell.applied");
  commit_checkpoint(*entry, pending);
  enforce_budget();
  return outcome;
}

SessionStatus SessionManager::status(const std::string& name) const {
  const AutoCheckpointPolicy policy = auto_checkpoint_policy();
  const std::shared_ptr<Entry> entry = find(name);
  std::lock_guard lock(entry->mutex);
  ensure_resumed(name, *entry, policy);  // pwu-lint: blocking-ok(lazy resume must swap entry->session in atomically; the restore refit runs on the helping pool and takes no lock)
  // Bring the refit to rest within the configured deadline; when it is
  // still running past the deadline, report anyway — everything
  // status_locked reads is disjoint from what the fit writes.
  settle_refit(entry, limits_.ask_deadline_ms);  // pwu-lint: blocking-ok(inline-fallback fit only; parallel_for helping-join takes no lock, entry.mutex is a leaf here)
  return status_locked(name, *entry);
}

std::vector<SessionStatus> SessionManager::list() const {
  std::vector<std::string> names;
  {
    std::lock_guard lock(registry_mutex_);
    names.reserve(sessions_.size());
    for (const auto& [name, entry] : sessions_) {
      // Shadows are replication infrastructure, not tenant sessions: an
      // aggregating router must never see the same session from both its
      // primary and its standby.
      if (entry->shadow.load(std::memory_order_relaxed)) continue;
      names.push_back(name);
    }
  }
  std::vector<SessionStatus> statuses;
  statuses.reserve(names.size());
  for (const auto& name : names) {
    try {
      statuses.push_back(status(name));
    } catch (const std::invalid_argument&) {
      // Closed between the snapshot and the status call — skip.
    }
  }
  return statuses;
}

HealthReport SessionManager::health() const {
  HealthReport report;
  report.refits_in_flight = refits_in_flight_.load(std::memory_order_relaxed);
  report.budget_used_bytes = budget_.used();
  report.budget_capacity_bytes = budget_.capacity();
  report.overloaded_sheds = overloaded_sheds_.load(std::memory_order_relaxed);
  report.degraded_stale_asks =
      degraded_stale_total_.load(std::memory_order_relaxed);
  report.degraded_random_asks =
      degraded_random_total_.load(std::memory_order_relaxed);
  report.evictions = evictions_.load(std::memory_order_relaxed);
  report.lazy_resumes = lazy_resumes_.load(std::memory_order_relaxed);
  report.watchdog_timeouts =
      watchdog_timeouts_.load(std::memory_order_relaxed);
  report.fused_groups = fused_groups_.load(std::memory_order_relaxed);
  report.fused_scored_asks = fused_scored_.load(std::memory_order_relaxed);
  report.idem_replays = idem_replays_.load(std::memory_order_relaxed);
  report.fence_epoch = fence_epoch_.load(std::memory_order_relaxed);

  std::vector<std::pair<std::string, std::shared_ptr<Entry>>> entries;
  {
    std::lock_guard lock(registry_mutex_);
    entries.reserve(sessions_.size());
    for (const auto& [name, entry] : sessions_) {
      entries.emplace_back(name, entry);
    }
  }
  for (const auto& [name, entry] : entries) {
    SessionHealth sh;
    sh.name = name;
    sh.footprint_bytes = entry->footprint.load(std::memory_order_relaxed);
    sh.shadow = entry->shadow.load(std::memory_order_relaxed);
    if (sh.shadow) ++report.sessions_shadow;
    std::unique_lock lock(entry->mutex, std::try_to_lock);
    if (!lock.owns_lock()) {
      sh.state = "busy";
      ++report.sessions_busy;
    } else if (entry->session == nullptr) {
      sh.state = "evicted";
      ++report.sessions_evicted;
    } else {
      sh.state = entry->quarantined ? "quarantined" : "live";
      sh.phase = to_string(entry->session->phase());
      sh.pending = entry->session->pending_count();
      sh.refit_in_flight = entry->refit.valid();
      sh.refit_deferred = entry->refit_deferred;
      sh.refit_timeouts = entry->refit_timeouts;
      sh.degraded_stale_asks = entry->session->degraded_stale_asks();
      sh.degraded_random_asks = entry->session->degraded_random_asks();
      if (entry->quarantined) {
        ++report.sessions_quarantined;
      } else {
        ++report.sessions_live;
      }
      if (sh.refit_deferred) ++report.refits_deferred;
    }
    report.sessions.push_back(std::move(sh));
  }
  return report;
}

bool SessionManager::close(const std::string& name) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard lock(registry_mutex_);
    const auto it = sessions_.find(name);
    if (it == sessions_.end()) return false;
    entry = std::move(it->second);
    sessions_.erase(it);
  }
  // Drain the refit outside the registry lock so closing a busy session
  // does not stall unrelated requests.
  {
    std::lock_guard entry_lock(entry->mutex);
    try {
      join_refit(*entry);
    } catch (...) {
      // The session is being discarded; a failed or cancelled refit has
      // nobody left to report to.
    }
  }
  budget_.charge(name, 0);
  {
    // The dedup window dies with the session: a duplicate arriving after
    // close answers "no session named ..." like any other stale request.
    std::lock_guard idem_lock(idem_mutex_);
    idem_windows_.erase(name);
  }
  return true;
}

std::optional<std::string> SessionManager::idempotent_reply(
    const std::string& session, const std::string& key) {
  std::lock_guard lock(idem_mutex_);
  const auto window = idem_windows_.find(session);
  if (window == idem_windows_.end()) return std::nullopt;
  const auto hit = window->second.replies.find(key);
  if (hit == window->second.replies.end()) return std::nullopt;
  idem_replays_.fetch_add(1, std::memory_order_relaxed);
  return hit->second;
}

void SessionManager::remember_reply(const std::string& session,
                                    const std::string& key,
                                    std::string reply) {
  std::lock_guard lock(idem_mutex_);
  if (idem_window_cap_ == 0) return;
  IdemWindow& window = idem_windows_[session];
  const auto [it, inserted] =
      window.replies.emplace(key, std::move(reply));
  if (!inserted) return;  // first reply wins; duplicates replay it
  window.order.push_back(key);
  while (window.order.size() > idem_window_cap_) {
    window.replies.erase(window.order.front());
    window.order.erase(window.order.begin());
  }
}

void SessionManager::set_idempotency_window(std::size_t per_session_keys) {
  std::lock_guard lock(idem_mutex_);
  idem_window_cap_ = per_session_keys;
  if (idem_window_cap_ == 0) idem_windows_.clear();
}

std::size_t SessionManager::idempotency_window() const {
  std::lock_guard lock(idem_mutex_);
  return idem_window_cap_;
}

void SessionManager::raise_fence(std::uint64_t epoch) {
  std::uint64_t current = fence_epoch_.load(std::memory_order_relaxed);
  while (epoch > current &&
         !fence_epoch_.compare_exchange_weak(current, epoch,
                                             std::memory_order_relaxed)) {
  }
}

void SessionManager::serialize_locked(const Entry& entry, std::ostream& os) {
  os << "pwu-session-file 1\n";
  os << "workload " << entry.spec.workload << '\n';
  os << "sizes " << entry.spec.pool_size << ' ' << entry.spec.test_size << ' '
     << entry.spec.seed << '\n';
  os << "measure_seed " << entry.measure_seed << '\n';
  entry.session->save(os);
}

void SessionManager::checkpoint(const std::string& name,
                                std::ostream& os) const {
  const AutoCheckpointPolicy policy = auto_checkpoint_policy();
  const std::shared_ptr<Entry> entry = find(name);
  std::lock_guard lock(entry->mutex);
  ensure_resumed(name, *entry, policy);  // pwu-lint: blocking-ok(lazy resume must swap entry->session in atomically; the restore refit runs on the helping pool and takes no lock)
  join_refit(*entry);
  serialize_locked(*entry, os);
}

std::string SessionManager::checkpoint_to_file(const std::string& name,
                                               const std::string& path) const {
  const AutoCheckpointPolicy policy = auto_checkpoint_policy();
  const std::shared_ptr<Entry> entry = find(name);
  PendingCheckpoint pending;
  pending.forced = true;
  pending.path = path;
  {
    std::lock_guard lock(entry->mutex);
    ensure_resumed(name, *entry, policy);  // pwu-lint: blocking-ok(lazy resume must swap entry->session in atomically; the restore refit runs on the helping pool and takes no lock)
    join_refit(*entry);
    std::ostringstream image;
    serialize_locked(*entry, image);
    pending.image = image.str();
    pending.seq = ++entry->ckpt_seq;
  }
  commit_checkpoint(*entry, pending);
  return path;
}

SessionManager::AutoCheckpointPolicy SessionManager::auto_checkpoint_policy()
    const {
  std::lock_guard lock(registry_mutex_);
  return AutoCheckpointPolicy{auto_checkpoint_dir_, auto_checkpoint_every_};
}

SessionManager::PendingCheckpoint SessionManager::maybe_auto_checkpoint(
    const std::string& name, Entry& entry,
    const AutoCheckpointPolicy& policy) {
  PendingCheckpoint pending;
  if (policy.every == 0) return pending;
  // Caller holds entry.mutex (same contract as join_refit).
  if (++entry.tells_since_checkpoint < policy.every) return pending;  // pwu-lint: allow(no-unlocked-mutable)
  entry.tells_since_checkpoint = 0;  // pwu-lint: allow(no-unlocked-mutable)
  pending.path = policy.dir + "/" + name + ".ckpt";
  std::ostringstream image;
  serialize_locked(entry, image);
  pending.image = image.str();
  pending.seq = ++entry.ckpt_seq;  // pwu-lint: allow(no-unlocked-mutable)
  return pending;
}

void SessionManager::commit_checkpoint(Entry& entry,
                                       const PendingCheckpoint& pending) {
  if (pending.path.empty()) return;
  std::lock_guard lock(entry.ckpt_write_mutex);
  // Newest wins: if a concurrent tell already committed a later image (or
  // an eviction wrote the final one), this stale image must not land.
  if (!pending.forced && pending.seq <= entry.ckpt_written_seq) return;
  // pwu-lint: blocking-ok(ckpt_write_mutex exists precisely to serialize checkpoint writers; entry.mutex is NOT held here)
  util::atomic_write_file(pending.path, pending.image);
  if (pending.seq > entry.ckpt_written_seq) {
    entry.ckpt_written_seq = pending.seq;
  }
}

ResumeOutcome SessionManager::resume_from_file(const std::string& name,
                                               const std::string& path) {
  const util::RecoveredRead read = util::read_checkpoint_with_fallback(path);
  if (read.status != util::ReadStatus::Ok) {
    throw std::runtime_error(std::string("SessionManager::resume_from_file: ") +
                             util::to_string(read.status) + " checkpoint '" +
                             path + "'");
  }
  if (read.used_fallback) {
    util::log_warn() << "checkpoint '" << path
                     << "' is truncated or corrupt; restoring from last good "
                        "copy '"
                     << read.source_path << "'";
  }
  std::istringstream is(read.payload);
  ResumeOutcome outcome;
  outcome.status = resume(name, is);
  outcome.used_fallback = read.used_fallback;
  outcome.source_path = read.source_path;
  return outcome;
}

void SessionManager::enable_auto_checkpoint(std::string directory,
                                            std::size_t every_tells) {
  std::lock_guard lock(registry_mutex_);
  auto_checkpoint_dir_ = std::move(directory);
  auto_checkpoint_every_ = every_tells;
}

void SessionManager::enforce_budget() {
  if (limits_.memory_budget_bytes == 0) return;
  if (!budget_.over_capacity()) return;
  const AutoCheckpointPolicy policy = auto_checkpoint_policy();
  if (policy.dir.empty()) return;  // nowhere to evict to

  // Oldest logical touch first. try_lock only: a session someone is using
  // is by definition not idle, and eviction must never wait behind it.
  std::vector<std::pair<std::string, std::shared_ptr<Entry>>> entries;
  {
    std::lock_guard lock(registry_mutex_);
    entries.reserve(sessions_.size());
    for (const auto& [name, entry] : sessions_) {
      entries.emplace_back(name, entry);
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              return a.second->last_touch.load(std::memory_order_relaxed) <
                     b.second->last_touch.load(std::memory_order_relaxed);
            });
  for (const auto& [name, entry] : entries) {
    if (!budget_.over_capacity()) break;
    std::unique_lock lock(entry->mutex, std::try_to_lock);
    if (!lock.owns_lock()) continue;
    if (entry->session == nullptr) continue;          // already evicted
    if (entry->refit.valid()) continue;  // fit in flight — not idle
    std::ostringstream image;
    serialize_locked(*entry, image);
    {
      // entry->mutex stays held across the write: the eviction image and
      // session teardown must be atomic to other users of the entry. The
      // write-seq stamp invalidates any still-pending deferred commit so
      // it cannot clobber this final image after the session is gone.
      std::lock_guard write_lock(entry->ckpt_write_mutex);
      // pwu-lint: blocking-ok(eviction write-then-free must be atomic; the entry is idle by try_lock and nobody can be waiting on ckpt_write_mutex with entry.mutex held)
      util::atomic_write_file(policy.dir + "/" + name + ".ckpt", image.str());
      entry->ckpt_written_seq = ++entry->ckpt_seq;
    }
    entry->tells_since_checkpoint = 0;
    // A deferred fit is captured by the session's refit_due flag inside
    // the checkpoint; it replays after the lazy resume.
    entry->refit_deferred = false;
    entry->session.reset();
    entry->last_good.reset();
    entry->evicted.store(true, std::memory_order_relaxed);
    entry->footprint.store(0, std::memory_order_relaxed);
    budget_.charge(name, 0);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SessionManager::drain() {
  std::string dir;
  bool auto_enabled = false;
  std::vector<std::pair<std::string, std::shared_ptr<Entry>>> entries;
  {
    std::lock_guard lock(registry_mutex_);
    dir = auto_checkpoint_dir_;
    auto_enabled = auto_checkpoint_every_ != 0;
    entries.reserve(sessions_.size());
    for (const auto& [name, entry] : sessions_) entries.emplace_back(name, entry);
  }
  for (const auto& [name, entry] : entries) {
    std::lock_guard entry_lock(entry->mutex);
    try {
      join_refit(*entry);
    } catch (...) {
      // A cancelled or failed refit must not abort the shutdown barrier:
      // the fit stays recorded as due inside the session, so the final
      // checkpoint replays it on resume.
    }
    if (entry->session == nullptr) continue;  // evicted: already on disk
    if (auto_enabled) {
      std::ostringstream image;
      serialize_locked(*entry, image);
      {
        // Final shutdown image: held under entry->mutex so no tell can
        // interleave, stamped so a straggling deferred commit is dropped.
        std::lock_guard write_lock(entry->ckpt_write_mutex);
        // pwu-lint: blocking-ok(shutdown barrier; the final image must supersede any in-flight deferred commit)
        util::atomic_write_file(dir + "/" + name + ".ckpt", image.str());
        entry->ckpt_written_seq = ++entry->ckpt_seq;
      }
      entry->tells_since_checkpoint = 0;
    }
  }
}

SessionStatus SessionManager::resume(const std::string& name,
                                     std::istream& is) {
  validate_session_name(name, "SessionManager::resume");
  if (limits_.max_sessions != 0 && size() >= limits_.max_sessions) {
    shed("session cap (" + std::to_string(limits_.max_sessions) +
         ") reached");
  }
  ParsedCheckpoint parsed = parse_checkpoint(is, workers_);
  auto entry = std::make_shared<Entry>();
  entry->session = std::move(parsed.session);
  entry->spec = std::move(parsed.spec);
  entry->measure_seed = parsed.measure_seed;

  SessionStatus status;
  {
    std::lock_guard lock(registry_mutex_);
    if (limits_.max_sessions != 0 &&
        sessions_.size() >= limits_.max_sessions) {
      shed("session cap (" + std::to_string(limits_.max_sessions) +
           ") reached");
    }
    const auto [it, inserted] = sessions_.emplace(name, std::move(entry));
    if (!inserted) {
      throw std::invalid_argument("SessionManager::resume: session '" + name +
                                  "' already exists");
    }
    touch(*it->second);
    it->second->footprint.store(it->second->session->memory_bytes(),
                                std::memory_order_relaxed);
    budget_.charge(name, it->second->footprint.load(std::memory_order_relaxed));
    status = status_locked(name, *it->second);
  }
  enforce_budget();
  return status;
}

std::size_t SessionManager::size() const {
  std::lock_guard lock(registry_mutex_);
  return sessions_.size();
}

void SessionManager::mark_shadow(const std::string& name, bool shadow) {
  find(name)->shadow.store(shadow, std::memory_order_relaxed);
}

bool SessionManager::is_shadow(const std::string& name) const {
  return find(name)->shadow.load(std::memory_order_relaxed);
}

std::string SessionManager::export_image(const std::string& name) const {
  std::ostringstream image;
  checkpoint(name, image);
  return image.str();
}

void SessionManager::import_append(const std::string& name,
                                   const std::string& chunk) {
  validate_session_name(name, "SessionManager::import_append");
  std::lock_guard lock(registry_mutex_);
  import_staging_[name] += chunk;
}

SessionStatus SessionManager::import_commit(const std::string& name,
                                            bool shadow) {
  std::string image;
  {
    std::lock_guard lock(registry_mutex_);
    const auto it = import_staging_.find(name);
    if (it == import_staging_.end()) {
      throw std::invalid_argument(
          "SessionManager::import_commit: no staged image for '" + name +
          "'");
    }
    image = std::move(it->second);
    import_staging_.erase(it);
  }
  // The staged bytes have been consumed but no session installed yet —
  // dying here must leave the source copy authoritative (the migration
  // coordinator aborts and keeps the old home).
  util::killpoint("session_manager.import.commit");
  std::istringstream is(image);
  SessionStatus status = resume(name, is);
  if (shadow) mark_shadow(name, true);
  return status;
}

void SessionManager::import_abort(const std::string& name) {
  std::lock_guard lock(registry_mutex_);
  import_staging_.erase(name);
}

}  // namespace pwu::service
