#include "service/session_manager.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "space/pool.hpp"
#include "util/contracts.hpp"
#include "workloads/registry.hpp"

namespace pwu::service {

SessionManager::SessionManager(util::ThreadPool* workers)
    : workers_(workers) {}

SessionManager::~SessionManager() {
  std::lock_guard registry_lock(registry_mutex_);
  for (auto& [name, entry] : sessions_) {
    std::lock_guard entry_lock(entry->mutex);
    join_refit(*entry);
  }
}

// Callers hold entry.mutex; the lock lives one frame up, so the lock-
// discipline lint needs explicit annotation here.
void SessionManager::join_refit(Entry& entry) {
  if (entry.refit.valid()) {  // pwu-lint: allow(no-unlocked-mutable)
    // Rethrows a failed refit to the next caller.
    entry.refit.get();  // pwu-lint: allow(no-unlocked-mutable)
  }
}

std::shared_ptr<SessionManager::Entry> SessionManager::find(
    const std::string& name) const {
  std::lock_guard lock(registry_mutex_);
  const auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    throw std::invalid_argument("SessionManager: no session named '" + name +
                                "'");
  }
  PWU_ENSURE(it->second != nullptr && it->second->session != nullptr,
             "find: registry entry for '" << name << "' lost its session");
  return it->second;
}

SessionStatus SessionManager::status_locked(const std::string& name,
                                            const Entry& entry) const {
  PWU_REQUIRE(entry.session != nullptr,
              "status_locked: entry '" << name << "' has no session");
  const AskTellSession& session = *entry.session;
  SessionStatus status;
  status.name = name;
  status.workload = entry.spec.workload;
  status.strategy = entry.spec.strategy;
  status.alpha = entry.spec.alpha;
  status.phase = to_string(session.phase());
  status.labeled = session.num_labeled();
  status.n_max = session.config().n_max;
  status.pending = session.pending_count();
  status.iteration = session.iteration();
  status.pool_remaining = session.pool_remaining();
  status.cumulative_cost = session.cumulative_cost();
  status.best_observed = session.best_observed();
  status.done = session.done();
  status.measure_seed = entry.measure_seed;
  return status;
}

SessionStatus SessionManager::create(const std::string& name,
                                     const SessionSpec& spec) {
  if (name.empty()) {
    throw std::invalid_argument("SessionManager::create: empty session name");
  }
  const workloads::WorkloadPtr workload =
      workloads::make_workload(spec.workload);

  // Seed derivation mirrors one repeat of core::run_experiment: a split
  // stream for the pool, then a run stream whose first two draws become
  // the session seed and the client's measurement seed. A batch
  // ActiveLearner::run over the same derivation is label-for-label
  // identical to this session (tests/test_ask_tell.cpp).
  util::Rng master(spec.seed);
  util::Rng split_rng = master.fork();
  space::PoolSplit split = space::make_pool_split(
      workload->space(), spec.pool_size, spec.test_size, split_rng);
  util::Rng run_rng = master.fork();
  const std::uint64_t session_seed = run_rng.next_u64();
  const std::uint64_t measure_seed = run_rng.next_u64();

  auto entry = std::make_shared<Entry>();
  entry->session = std::make_unique<AskTellSession>(
      workload->space(), StrategySpec{spec.strategy, spec.alpha}, spec.learner,
      std::move(split.pool), session_seed, workers_);
  entry->spec = spec;
  entry->measure_seed = measure_seed;

  std::lock_guard lock(registry_mutex_);
  const auto [it, inserted] = sessions_.emplace(name, std::move(entry));
  if (!inserted) {
    throw std::invalid_argument("SessionManager::create: session '" + name +
                                "' already exists");
  }
  return status_locked(name, *it->second);
}

std::vector<Candidate> SessionManager::ask(const std::string& name,
                                           std::size_t count) {
  const std::shared_ptr<Entry> entry = find(name);
  std::lock_guard lock(entry->mutex);
  join_refit(*entry);
  return entry->session->ask(count);
}

TellOutcome SessionManager::tell(const std::string& name,
                                 const space::Configuration& config,
                                 double measured_time) {
  const std::shared_ptr<Entry> entry = find(name);
  std::lock_guard lock(entry->mutex);
  join_refit(*entry);
  TellOutcome outcome;
  outcome.batch_complete = entry->session->tell(config, measured_time);
  outcome.labeled = entry->session->num_labeled();
  outcome.done = entry->session->done();
  if (outcome.batch_complete) {
    // The refit is due; run it off-thread so refits of different sessions
    // overlap. The entry mutex is NOT held by the task — the next
    // operation on this session joins the future first.
    AskTellSession* session = entry->session.get();
    if (workers_ != nullptr && workers_->num_threads() > 1) {
      entry->refit = workers_->submit([session] { session->refit(); });
    } else {
      session->refit();
    }
  }
  return outcome;
}

SessionStatus SessionManager::status(const std::string& name) const {
  const std::shared_ptr<Entry> entry = find(name);
  std::lock_guard lock(entry->mutex);
  join_refit(*entry);
  return status_locked(name, *entry);
}

std::vector<SessionStatus> SessionManager::list() const {
  std::vector<std::string> names;
  {
    std::lock_guard lock(registry_mutex_);
    names.reserve(sessions_.size());
    for (const auto& [name, entry] : sessions_) names.push_back(name);
  }
  std::vector<SessionStatus> statuses;
  statuses.reserve(names.size());
  for (const auto& name : names) {
    try {
      statuses.push_back(status(name));
    } catch (const std::invalid_argument&) {
      // Closed between the snapshot and the status call — skip.
    }
  }
  return statuses;
}

bool SessionManager::close(const std::string& name) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard lock(registry_mutex_);
    const auto it = sessions_.find(name);
    if (it == sessions_.end()) return false;
    entry = std::move(it->second);
    sessions_.erase(it);
  }
  // Drain the refit outside the registry lock so closing a busy session
  // does not stall unrelated requests.
  std::lock_guard entry_lock(entry->mutex);
  join_refit(*entry);
  return true;
}

void SessionManager::checkpoint(const std::string& name,
                                std::ostream& os) const {
  const std::shared_ptr<Entry> entry = find(name);
  std::lock_guard lock(entry->mutex);
  join_refit(*entry);
  os << "pwu-session-file 1\n";
  os << "workload " << entry->spec.workload << '\n';
  os << "sizes " << entry->spec.pool_size << ' ' << entry->spec.test_size
     << ' ' << entry->spec.seed << '\n';
  os << "measure_seed " << entry->measure_seed << '\n';
  entry->session->save(os);
}

SessionStatus SessionManager::resume(const std::string& name,
                                     std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "pwu-session-file" ||
      version != 1) {
    throw std::runtime_error("SessionManager::resume: bad checkpoint header");
  }
  SessionSpec spec;
  std::string token;
  std::uint64_t measure_seed = 0;
  if (!(is >> token >> spec.workload) || token != "workload") {
    throw std::runtime_error("SessionManager::resume: bad workload line");
  }
  if (!(is >> token >> spec.pool_size >> spec.test_size >> spec.seed) ||
      token != "sizes") {
    throw std::runtime_error("SessionManager::resume: bad sizes line");
  }
  if (!(is >> token >> measure_seed) || token != "measure_seed") {
    throw std::runtime_error("SessionManager::resume: bad measure_seed line");
  }

  const workloads::WorkloadPtr workload =
      workloads::make_workload(spec.workload);
  auto entry = std::make_shared<Entry>();
  entry->session = std::make_unique<AskTellSession>(
      AskTellSession::restore(workload->space(), is, workers_));
  // Surface the restored strategy/config in status output.
  if (entry->session->strategy_spec().has_value()) {
    spec.strategy = entry->session->strategy_spec()->name;
    spec.alpha = entry->session->strategy_spec()->alpha;
  }
  spec.learner = entry->session->config();
  entry->spec = std::move(spec);
  entry->measure_seed = measure_seed;

  std::lock_guard lock(registry_mutex_);
  const auto [it, inserted] = sessions_.emplace(name, std::move(entry));
  if (!inserted) {
    throw std::invalid_argument("SessionManager::resume: session '" + name +
                                "' already exists");
  }
  return status_locked(name, *it->second);
}

std::size_t SessionManager::size() const {
  std::lock_guard lock(registry_mutex_);
  return sessions_.size();
}

}  // namespace pwu::service
