#include "service/session_manager.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "space/pool.hpp"
#include "util/contracts.hpp"
#include "util/fs_atomic.hpp"
#include "util/killpoints.hpp"
#include "util/logging.hpp"
#include "workloads/registry.hpp"

namespace pwu::service {

namespace {

/// Session names become checkpoint file names, so they must be
/// filesystem-safe: no separators, no traversal, no shell surprises.
void validate_session_name(const std::string& name, const char* who) {
  if (name.empty()) {
    throw std::invalid_argument(std::string(who) + ": empty session name");
  }
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) {
      throw std::invalid_argument(
          std::string(who) + ": session name '" + name +
          "' contains characters outside [A-Za-z0-9._-]");
    }
  }
  if (name[0] == '.') {
    throw std::invalid_argument(std::string(who) + ": session name '" + name +
                                "' must not start with '.'");
  }
}

}  // namespace

SessionManager::SessionManager(util::ThreadPool* workers)
    : workers_(workers) {}

SessionManager::~SessionManager() {
  std::lock_guard registry_lock(registry_mutex_);
  for (auto& [name, entry] : sessions_) {
    std::lock_guard entry_lock(entry->mutex);
    join_refit(*entry);
  }
}

// Callers hold entry.mutex; the lock lives one frame up, so the lock-
// discipline lint needs explicit annotation here.
void SessionManager::join_refit(Entry& entry) {
  if (entry.refit.valid()) {  // pwu-lint: allow(no-unlocked-mutable)
    // Rethrows a failed refit to the next caller.
    entry.refit.get();  // pwu-lint: allow(no-unlocked-mutable)
  }
}

std::shared_ptr<SessionManager::Entry> SessionManager::find(
    const std::string& name) const {
  std::lock_guard lock(registry_mutex_);
  const auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    throw std::invalid_argument("SessionManager: no session named '" + name +
                                "'");
  }
  PWU_ENSURE(it->second != nullptr && it->second->session != nullptr,
             "find: registry entry for '" << name << "' lost its session");
  return it->second;
}

SessionStatus SessionManager::status_locked(const std::string& name,
                                            const Entry& entry) const {
  PWU_REQUIRE(entry.session != nullptr,
              "status_locked: entry '" << name << "' has no session");
  const AskTellSession& session = *entry.session;
  SessionStatus status;
  status.name = name;
  status.workload = entry.spec.workload;
  status.strategy = entry.spec.strategy;
  status.alpha = entry.spec.alpha;
  status.phase = to_string(session.phase());
  status.labeled = session.num_labeled();
  status.n_max = session.config().n_max;
  status.pending = session.pending_count();
  status.iteration = session.iteration();
  status.pool_remaining = session.pool_remaining();
  status.cumulative_cost = session.cumulative_cost();
  status.best_observed = session.best_observed();
  status.done = session.done();
  status.measure_seed = entry.measure_seed;
  return status;
}

SessionStatus SessionManager::create(const std::string& name,
                                     const SessionSpec& spec) {
  validate_session_name(name, "SessionManager::create");
  const workloads::WorkloadPtr workload =
      workloads::make_workload(spec.workload);

  // Seed derivation mirrors one repeat of core::run_experiment: a split
  // stream for the pool, then a run stream whose first two draws become
  // the session seed and the client's measurement seed. A batch
  // ActiveLearner::run over the same derivation is label-for-label
  // identical to this session (tests/test_ask_tell.cpp).
  util::Rng master(spec.seed);
  util::Rng split_rng = master.fork();
  space::PoolSplit split = space::make_pool_split(
      workload->space(), spec.pool_size, spec.test_size, split_rng);
  util::Rng run_rng = master.fork();
  const std::uint64_t session_seed = run_rng.next_u64();
  const std::uint64_t measure_seed = run_rng.next_u64();

  auto entry = std::make_shared<Entry>();
  entry->session = std::make_unique<AskTellSession>(
      workload->space(), StrategySpec{spec.strategy, spec.alpha}, spec.learner,
      std::move(split.pool), session_seed, workers_);
  entry->spec = spec;
  entry->measure_seed = measure_seed;

  std::lock_guard lock(registry_mutex_);
  const auto [it, inserted] = sessions_.emplace(name, std::move(entry));
  if (!inserted) {
    throw std::invalid_argument("SessionManager::create: session '" + name +
                                "' already exists");
  }
  return status_locked(name, *it->second);
}

std::vector<Candidate> SessionManager::ask(const std::string& name,
                                           std::size_t count) {
  const std::shared_ptr<Entry> entry = find(name);
  std::lock_guard lock(entry->mutex);
  join_refit(*entry);
  return entry->session->ask(count);
}

void SessionManager::schedule_refit(Entry& entry) {
  // The refit is due; run it off-thread so refits of different sessions
  // overlap. The entry mutex is NOT held by the task — the next
  // operation on this session joins the future first.
  AskTellSession* session = entry.session.get();
  if (workers_ != nullptr && workers_->num_threads() > 1) {
    // Caller holds entry.mutex (same contract as join_refit).
    // pwu-lint: allow-next-line(no-unlocked-mutable)
    entry.refit = workers_->submit([session] { session->refit(); });
  } else {
    session->refit();  // pwu-lint: allow(no-unlocked-mutable)
  }
}

SessionManager::AutoCheckpointPolicy SessionManager::auto_checkpoint_policy()
    const {
  std::lock_guard lock(registry_mutex_);
  return AutoCheckpointPolicy{auto_checkpoint_dir_, auto_checkpoint_every_};
}

void SessionManager::maybe_auto_checkpoint(const std::string& name,
                                           Entry& entry,
                                           const AutoCheckpointPolicy& policy,
                                           std::string& checkpoint_path) {
  if (policy.every == 0) return;
  // Caller holds entry.mutex (same contract as join_refit).
  if (++entry.tells_since_checkpoint < policy.every) return;  // pwu-lint: allow(no-unlocked-mutable)
  entry.tells_since_checkpoint = 0;  // pwu-lint: allow(no-unlocked-mutable)
  const std::string path = policy.dir + "/" + name + ".ckpt";
  std::ostringstream image;
  serialize_locked(entry, image);
  util::atomic_write_file(path, image.str());
  checkpoint_path = path;
}

TellOutcome SessionManager::tell(const std::string& name,
                                 const space::Configuration& config,
                                 double measured_time) {
  // Snapshot before locking the entry: registry_mutex_ is ordered before
  // entry mutexes, so it must never be acquired while one is held.
  const AutoCheckpointPolicy policy = auto_checkpoint_policy();
  const std::shared_ptr<Entry> entry = find(name);
  std::lock_guard lock(entry->mutex);
  join_refit(*entry);
  TellOutcome outcome;
  outcome.batch_complete = entry->session->tell(config, measured_time);
  util::killpoint("session_manager.tell.applied");
  outcome.labeled = entry->session->num_labeled();
  outcome.done = entry->session->done();
  // Checkpoint before scheduling the refit: a refit-due session image
  // restores exactly (the refit replays from the saved rng), and writing
  // now avoids blocking on the background fit.
  maybe_auto_checkpoint(name, *entry, policy, outcome.checkpoint_path);
  if (outcome.batch_complete) schedule_refit(*entry);
  return outcome;
}

FailureTellOutcome SessionManager::tell_failure(
    const std::string& name, const space::Configuration& config,
    sim::FailureKind kind, double cost_seconds) {
  const AutoCheckpointPolicy policy = auto_checkpoint_policy();
  const std::shared_ptr<Entry> entry = find(name);
  std::lock_guard lock(entry->mutex);
  join_refit(*entry);
  const FailureOutcome result =
      entry->session->tell_failure(config, kind, cost_seconds);
  util::killpoint("session_manager.tell.applied");
  FailureTellOutcome outcome;
  outcome.action = result.action;
  outcome.attempts = result.attempts;
  outcome.backoff_seconds = result.backoff_seconds;
  outcome.batch_complete = result.batch_complete;
  outcome.done = entry->session->done();
  outcome.failed_total = entry->session->failed().size();
  maybe_auto_checkpoint(name, *entry, policy, outcome.checkpoint_path);
  if (outcome.batch_complete) schedule_refit(*entry);
  return outcome;
}

SessionStatus SessionManager::status(const std::string& name) const {
  const std::shared_ptr<Entry> entry = find(name);
  std::lock_guard lock(entry->mutex);
  join_refit(*entry);
  return status_locked(name, *entry);
}

std::vector<SessionStatus> SessionManager::list() const {
  std::vector<std::string> names;
  {
    std::lock_guard lock(registry_mutex_);
    names.reserve(sessions_.size());
    for (const auto& [name, entry] : sessions_) names.push_back(name);
  }
  std::vector<SessionStatus> statuses;
  statuses.reserve(names.size());
  for (const auto& name : names) {
    try {
      statuses.push_back(status(name));
    } catch (const std::invalid_argument&) {
      // Closed between the snapshot and the status call — skip.
    }
  }
  return statuses;
}

bool SessionManager::close(const std::string& name) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard lock(registry_mutex_);
    const auto it = sessions_.find(name);
    if (it == sessions_.end()) return false;
    entry = std::move(it->second);
    sessions_.erase(it);
  }
  // Drain the refit outside the registry lock so closing a busy session
  // does not stall unrelated requests.
  std::lock_guard entry_lock(entry->mutex);
  join_refit(*entry);
  return true;
}

void SessionManager::serialize_locked(const Entry& entry, std::ostream& os) {
  os << "pwu-session-file 1\n";
  os << "workload " << entry.spec.workload << '\n';
  os << "sizes " << entry.spec.pool_size << ' ' << entry.spec.test_size << ' '
     << entry.spec.seed << '\n';
  os << "measure_seed " << entry.measure_seed << '\n';
  entry.session->save(os);
}

void SessionManager::checkpoint(const std::string& name,
                                std::ostream& os) const {
  const std::shared_ptr<Entry> entry = find(name);
  std::lock_guard lock(entry->mutex);
  join_refit(*entry);
  serialize_locked(*entry, os);
}

std::string SessionManager::checkpoint_to_file(const std::string& name,
                                               const std::string& path) const {
  const std::shared_ptr<Entry> entry = find(name);
  std::lock_guard lock(entry->mutex);
  join_refit(*entry);
  std::ostringstream image;
  serialize_locked(*entry, image);
  util::atomic_write_file(path, image.str());
  return path;
}

ResumeOutcome SessionManager::resume_from_file(const std::string& name,
                                               const std::string& path) {
  const util::RecoveredRead read = util::read_checkpoint_with_fallback(path);
  if (read.status != util::ReadStatus::Ok) {
    throw std::runtime_error(std::string("SessionManager::resume_from_file: ") +
                             util::to_string(read.status) + " checkpoint '" +
                             path + "'");
  }
  if (read.used_fallback) {
    util::log_warn() << "checkpoint '" << path
                     << "' is truncated or corrupt; restoring from last good "
                        "copy '"
                     << read.source_path << "'";
  }
  std::istringstream is(read.payload);
  ResumeOutcome outcome;
  outcome.status = resume(name, is);
  outcome.used_fallback = read.used_fallback;
  outcome.source_path = read.source_path;
  return outcome;
}

void SessionManager::enable_auto_checkpoint(std::string directory,
                                            std::size_t every_tells) {
  std::lock_guard lock(registry_mutex_);
  auto_checkpoint_dir_ = std::move(directory);
  auto_checkpoint_every_ = every_tells;
}

void SessionManager::drain() {
  std::string dir;
  bool auto_enabled = false;
  std::vector<std::pair<std::string, std::shared_ptr<Entry>>> entries;
  {
    std::lock_guard lock(registry_mutex_);
    dir = auto_checkpoint_dir_;
    auto_enabled = auto_checkpoint_every_ != 0;
    entries.reserve(sessions_.size());
    for (const auto& [name, entry] : sessions_) entries.emplace_back(name, entry);
  }
  for (const auto& [name, entry] : entries) {
    std::lock_guard entry_lock(entry->mutex);
    join_refit(*entry);
    if (auto_enabled) {
      std::ostringstream image;
      serialize_locked(*entry, image);
      util::atomic_write_file(dir + "/" + name + ".ckpt", image.str());
      entry->tells_since_checkpoint = 0;
    }
  }
}

SessionStatus SessionManager::resume(const std::string& name,
                                     std::istream& is) {
  validate_session_name(name, "SessionManager::resume");
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "pwu-session-file" ||
      version != 1) {
    throw std::runtime_error("SessionManager::resume: bad checkpoint header");
  }
  SessionSpec spec;
  std::string token;
  std::uint64_t measure_seed = 0;
  if (!(is >> token >> spec.workload) || token != "workload") {
    throw std::runtime_error("SessionManager::resume: bad workload line");
  }
  if (!(is >> token >> spec.pool_size >> spec.test_size >> spec.seed) ||
      token != "sizes") {
    throw std::runtime_error("SessionManager::resume: bad sizes line");
  }
  if (!(is >> token >> measure_seed) || token != "measure_seed") {
    throw std::runtime_error("SessionManager::resume: bad measure_seed line");
  }

  const workloads::WorkloadPtr workload =
      workloads::make_workload(spec.workload);
  auto entry = std::make_shared<Entry>();
  entry->session = std::make_unique<AskTellSession>(
      AskTellSession::restore(workload->space(), is, workers_));
  // Surface the restored strategy/config in status output.
  if (entry->session->strategy_spec().has_value()) {
    spec.strategy = entry->session->strategy_spec()->name;
    spec.alpha = entry->session->strategy_spec()->alpha;
  }
  spec.learner = entry->session->config();
  entry->spec = std::move(spec);
  entry->measure_seed = measure_seed;

  std::lock_guard lock(registry_mutex_);
  const auto [it, inserted] = sessions_.emplace(name, std::move(entry));
  if (!inserted) {
    throw std::invalid_argument("SessionManager::resume: session '" + name +
                                "' already exists");
  }
  return status_locked(name, *it->second);
}

std::size_t SessionManager::size() const {
  std::lock_guard lock(registry_mutex_);
  return sessions_.size();
}

}  // namespace pwu::service
