#include "service/transport.hpp"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

#include "service/protocol.hpp"
#include "util/json.hpp"

namespace pwu::service {

// ---- InProcessTransport ----------------------------------------------------

InProcessTransport::InProcessTransport(util::ThreadPool* workers,
                                       ServiceLimits limits,
                                       const std::string& checkpoint_dir,
                                       std::size_t checkpoint_every)
    : manager_(workers, limits) {
  if (!checkpoint_dir.empty() && checkpoint_every != 0) {
    manager_.enable_auto_checkpoint(checkpoint_dir, checkpoint_every);
  }
}

void InProcessTransport::send(const std::string& line) {
  util::json::Value response;
  try {
    response = handle_request(manager_, util::json::parse(line));
  } catch (const std::exception& e) {
    util::json::Object err;
    err.emplace("ok", util::json::Value(false));
    err.emplace("error", util::json::Value(std::string(e.what())));
    response = util::json::Value(std::move(err));
  }
  replies_.push_back(response.dump());
}

std::string InProcessTransport::recv() {
  if (next_reply_ >= replies_.size()) {
    throw TransportError("recv without a pending request");
  }
  std::string line = std::move(replies_[next_reply_]);
  ++next_reply_;
  if (next_reply_ == replies_.size()) {
    replies_.clear();
    next_reply_ = 0;
  }
  return line;
}

// ---- PipeTransport ---------------------------------------------------------

PipeTransport::PipeTransport(std::string command, double timeout_seconds)
    : command_(std::move(command)), timeout_(timeout_seconds) {}

PipeTransport::~PipeTransport() { teardown(); }

void PipeTransport::ensure_running() {
  if (pid_ > 0) return;
  failed_ = false;
  int to_child[2];    // parent writes -> child stdin
  int from_child[2];  // child stdout -> parent reads
  if (pipe(to_child) != 0 || pipe(from_child) != 0) {
    throw TransportError("pipe: " + std::string(std::strerror(errno)));
  }
  const pid_t pid = fork();
  if (pid < 0) {
    throw TransportError("fork: " + std::string(std::strerror(errno)));
  }
  if (pid == 0) {
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    execl("/bin/sh", "sh", "-c", command_.c_str(),
          static_cast<char*>(nullptr));
    _exit(127);
  }
  close(to_child[0]);
  close(from_child[1]);
  pid_ = pid;
  to_child_ = to_child[1];
  from_child_ = from_child[0];
  buffer_.clear();
}

void PipeTransport::send(const std::string& line) {
  ensure_running();
  std::string payload = line;
  payload.push_back('\n');
  std::size_t written = 0;
  while (written < payload.size()) {
    const ssize_t n =
        write(to_child_, payload.data() + written, payload.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("server closed the connection (write: " +
           std::string(std::strerror(errno)) + ")");
    }
    written += static_cast<std::size_t>(n);
  }
}

std::string PipeTransport::recv() {
  if (pid_ <= 0) throw TransportError("recv on a dead connection");
  // Transport deadlines are genuinely wall-clock: they time out a peer
  // *process*, not checkpointable tuning state.
  const auto deadline =
      std::chrono::steady_clock::now() +  // pwu-lint: allow(no-wallclock)
      std::chrono::milliseconds(static_cast<long>(timeout_ * 1000.0));
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    const auto remaining =
        deadline - std::chrono::steady_clock::now();  // pwu-lint: allow(no-wallclock)
    const long remaining_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
            .count();
    if (remaining_ms <= 0) fail("response timed out");
    struct pollfd pfd;
    pfd.fd = from_child_;
    pfd.events = POLLIN;
    const int ready = poll(&pfd, 1, static_cast<int>(remaining_ms));
    if (ready < 0) {
      if (errno == EINTR) continue;
      fail("poll: " + std::string(std::strerror(errno)));
    }
    if (ready == 0) fail("response timed out");
    char chunk[4096];
    const ssize_t n = read(from_child_, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("read: " + std::string(std::strerror(errno)));
    }
    if (n == 0) fail("server closed the connection");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void PipeTransport::fail(const std::string& what) {
  failed_ = true;
  teardown();
  throw TransportError(what);
}

void PipeTransport::teardown() {
  if (to_child_ >= 0) close(to_child_);
  if (from_child_ >= 0) close(from_child_);
  to_child_ = from_child_ = -1;
  if (pid_ > 0) {
    kill(pid_, SIGTERM);
    waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }
  buffer_.clear();
}

}  // namespace pwu::service
