#include "service/transport.hpp"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

#include "service/protocol.hpp"
#include "util/json.hpp"

namespace pwu::service {

// ---- InProcessTransport ----------------------------------------------------

InProcessTransport::InProcessTransport(util::ThreadPool* workers,
                                       ServiceLimits limits,
                                       const std::string& checkpoint_dir,
                                       std::size_t checkpoint_every)
    : manager_(workers, limits) {
  if (!checkpoint_dir.empty() && checkpoint_every != 0) {
    manager_.enable_auto_checkpoint(checkpoint_dir, checkpoint_every);
  }
}

void InProcessTransport::send(const std::string& line) {
  util::json::Value response;
  try {
    response = handle_request(manager_, util::json::parse(line));
  } catch (const std::exception& e) {
    util::json::Object err;
    err.emplace("ok", util::json::Value(false));
    err.emplace("error", util::json::Value(std::string(e.what())));
    response = util::json::Value(std::move(err));
  }
  replies_.push_back(response.dump());
}

std::string InProcessTransport::recv() {
  if (next_reply_ >= replies_.size()) {
    throw TransportError("recv without a pending request");
  }
  std::string line = std::move(replies_[next_reply_]);
  ++next_reply_;
  if (next_reply_ == replies_.size()) {
    replies_.clear();
    next_reply_ = 0;
  }
  return line;
}

// ---- PipeTransport ---------------------------------------------------------

PipeTransport::PipeTransport(std::string command, double timeout_seconds)
    : command_(std::move(command)), timeout_(timeout_seconds) {}

PipeTransport::~PipeTransport() { teardown(); }

void PipeTransport::ensure_running() {
  if (pid_ > 0) return;
  failed_ = false;
  int to_child[2];    // parent writes -> child stdin
  int from_child[2];  // child stdout -> parent reads
  if (pipe(to_child) != 0 || pipe(from_child) != 0) {
    throw TransportError("pipe: " + std::string(std::strerror(errno)));
  }
  const pid_t pid = fork();
  if (pid < 0) {
    throw TransportError("fork: " + std::string(std::strerror(errno)));
  }
  if (pid == 0) {
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    execl("/bin/sh", "sh", "-c", command_.c_str(),
          static_cast<char*>(nullptr));
    _exit(127);
  }
  close(to_child[0]);
  close(from_child[1]);
  pid_ = pid;
  to_child_ = to_child[1];
  from_child_ = from_child[0];
  buffer_.clear();
}

void PipeTransport::send(const std::string& line) {
  ensure_running();
  std::string payload = line;
  payload.push_back('\n');
  write_wire_frame(payload);
}

void PipeTransport::send_frame(const std::string& header,
                               const std::string& payload) {
  // Header + payload in one write: the server's reader gets the whole
  // message from a single pipe wakeup instead of blocking again between
  // the header and the payload line.
  ensure_running();
  std::string wire;
  wire.reserve(header.size() + payload.size() + 2);
  wire += header;
  wire += '\n';
  wire += payload;
  wire += '\n';
  write_wire_frame(wire);
}

void PipeTransport::write_wire_frame(const std::string& payload) {
  // A child that died mid-conversation turns write() into SIGPIPE, which
  // would kill *us* instead of surfacing a retryable TransportError; report
  // it as EPIPE like every other connection failure.
  signal(SIGPIPE, SIG_IGN);
  std::size_t written = 0;
  while (written < payload.size()) {
    const ssize_t n =
        write(to_child_, payload.data() + written, payload.size() - written);
    if (n < 0) {
      // EINTR: a signal landed before any byte moved — retry the same span.
      // A *short* write (0 < n < remaining) is not an error at all; the
      // loop advances `written` and continues, so replies larger than the
      // pipe buffer go out whole instead of truncated.
      if (errno == EINTR) continue;
      fail("server closed the connection (write: " +
           std::string(std::strerror(errno)) + ")");
    }
    written += static_cast<std::size_t>(n);
  }
}

std::string PipeTransport::recv() {
  if (pid_ <= 0) throw TransportError("recv on a dead connection");
  // Transport deadlines are genuinely wall-clock: they time out a peer
  // *process*, not checkpointable tuning state.
  const auto deadline =
      std::chrono::steady_clock::now() +  // pwu-lint: allow(no-wallclock)
      std::chrono::milliseconds(static_cast<long>(timeout_ * 1000.0));
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    const auto remaining =
        deadline - std::chrono::steady_clock::now();  // pwu-lint: allow(no-wallclock)
    const long remaining_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
            .count();
    if (remaining_ms <= 0) fail("response timed out");
    struct pollfd pfd;
    pfd.fd = from_child_;
    pfd.events = POLLIN;
    const int ready = poll(&pfd, 1, static_cast<int>(remaining_ms));
    if (ready < 0) {
      if (errno == EINTR) continue;
      fail("poll: " + std::string(std::strerror(errno)));
    }
    if (ready == 0) fail("response timed out");
    // A long reply arrives as several short reads (pipe buffers are small);
    // keep appending until the newline shows up — never surface a
    // truncated line as if it were complete.
    char chunk[4096];
    const ssize_t n = read(from_child_, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("read: " + std::string(std::strerror(errno)));
    }
    if (n == 0) {
      if (!buffer_.empty()) {
        fail("server closed the connection mid-reply (" +
             std::to_string(buffer_.size()) + " bytes of a truncated line)");
      }
      fail("server closed the connection");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void PipeTransport::fail(const std::string& what) {
  failed_ = true;
  teardown();
  throw TransportError(what);
}

void PipeTransport::teardown() {
  if (to_child_ >= 0) close(to_child_);
  if (from_child_ >= 0) close(from_child_);
  to_child_ = from_child_ = -1;
  if (pid_ > 0) {
    kill(pid_, SIGTERM);
    waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }
  buffer_.clear();
}

// ---- FramedTransport -------------------------------------------------------

FramedTransport::FramedTransport(std::unique_ptr<Transport> inner)
    : inner_(std::move(inner)) {}

void FramedTransport::ensure_running() {
  // A connection that observed a failure respawns as a *fresh* process,
  // which starts in legacy (unframed) mode — renegotiate.
  if (!inner_->alive()) negotiated_ = false;
  inner_->ensure_running();
}

void FramedTransport::negotiate() {
  negotiated_ = true;
  peer_framed_ = false;
  has_pushback_ = false;
  // The hello itself goes out unframed (a legacy server must be able to
  // parse it); the reply tells us which dialect the peer speaks: a framed
  // server flips to framed *before* answering, so the reply arrives as a
  // `pwu1` header + payload. A legacy server answers an unframed
  // unknown-op error, and we stay in passthrough mode.
  inner_->send("{\"frame\":true,\"op\":\"hello\"}");
  const std::string first = inner_->recv();
  FrameHeader header;
  if (!parse_frame_header(first, header)) return;
  peer_framed_ = true;
  const std::string payload = inner_->recv();
  if (!frame_payload_matches(header, payload)) {
    // The hello reply was corrupted in flight; the peer is still framed and
    // we are at a frame boundary, so negotiation itself succeeded.
    ++corrupt_replies_;
  }
}

void FramedTransport::send(const std::string& line) {
  if (!negotiated_) negotiate();
  if (!peer_framed_) {
    inner_->send(line);
    return;
  }
  // Two inner lines per message: header, then payload. send_frame keeps
  // the pair atomic — one write on a real fd, one fault-injection unit on
  // a simulated wire.
  inner_->send_frame(frame_header(line), line);
}

std::string FramedTransport::next_line() {
  if (has_pushback_) {
    has_pushback_ = false;
    return std::move(pushback_);
  }
  return inner_->recv();
}

std::string FramedTransport::recv() {
  if (!negotiated_) negotiate();
  if (!peer_framed_) return inner_->recv();
  const std::string first = next_line();
  FrameHeader header;
  if (!parse_frame_header(first, header)) {
    // Corrupted header. The unit's payload line is still in flight —
    // consume it so the next recv() starts at a frame boundary. If what we
    // read turns out to be a *valid* header (the garbage line stood alone),
    // push it back instead of eating the next reply.
    ++resyncs_;
    ++corrupt_replies_;
    std::string second = inner_->recv();
    FrameHeader next_header;
    if (parse_frame_header(second, next_header)) {
      pushback_ = std::move(second);
      has_pushback_ = true;
    }
    throw FrameError("corrupt frame header; resynced to next frame");
  }
  const std::string payload = next_line();
  if (!frame_payload_matches(header, payload)) {
    ++corrupt_replies_;
    throw FrameError("frame checksum mismatch (" +
                     std::to_string(payload.size()) + " bytes vs " +
                     std::to_string(header.len) + " declared)");
  }
  return payload;
}

}  // namespace pwu::service
