// Connection layer of the JSON-lines protocol, shared by every client of
// a tuning server: pwu_client, the pwu_router shard tier, benches, tests.
//
// A Transport moves protocol *lines*; it knows nothing about ops or
// sessions. Two implementations:
//
//   InProcessTransport  dispatches straight into an owned SessionManager —
//                       no process boundary, for tests and benches.
//   PipeTransport       spawns a server command under /bin/sh with the
//                       protocol on its stdin/stdout and reads responses
//                       with a poll() deadline.
//
// send()/recv() are split so callers can *pipeline*: write a window of
// requests before draining the (in-order) responses — the router fans a
// batch out to its shards this way. Connection-level failures (dead
// server, hung response, broken pipe) throw TransportError, which is the
// retryable category; structured {"ok":false} responses are not transport
// errors and come back as ordinary lines.

#pragma once

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <sys/types.h>
#include <vector>

#include "service/session_manager.hpp"

namespace pwu::service {

/// Connection-level failure (dead server, hung response, broken pipe) —
/// retryable, unlike a structured server-side error.
struct TransportError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// A reply arrived but failed frame verification (CRC mismatch, length
/// mismatch, lost frame) — the *connection* is healthy and already resynced
/// to the next frame boundary, so the right response is to re-send the
/// request (idempotency keys make that safe), not to fail the peer over.
/// Deliberately NOT a TransportError: catching it as one would treat a
/// single corrupted line as a dead shard.
struct FrameError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Queues/writes one JSON request line. Throws TransportError when the
  /// connection is down and cannot accept it.
  virtual void send(const std::string& line) = 0;

  /// Returns the next response line, in request order. Throws
  /// TransportError on connection failure or deadline expiry.
  virtual std::string recv() = 0;

  /// Writes one framed message: a `pwu1 <len> <crc32>` header line plus
  /// its payload line. The default is two send() calls; transports that
  /// own a real fd override it to ship the pair in a single write, so the
  /// peer never wakes on a bare header and blocks again for the payload.
  virtual void send_frame(const std::string& header,
                          const std::string& payload) {
    send(header);
    send(payload);
  }

  /// One round-trip: send + recv.
  std::string request(const std::string& line) {
    send(line);
    return recv();
  }

  /// (Re)establishes the connection if it is down; no-op when healthy.
  /// NOTE: for a stateful server this starts a *fresh* process — any
  /// session state of the previous incarnation is gone (recoverable only
  /// through checkpoints).
  virtual void ensure_running() {}

  /// False once the connection has failed (until ensure_running()).
  virtual bool alive() const { return true; }
};

/// Dispatches straight into an owned SessionManager — no process boundary.
/// send() handles the request immediately and queues the response line for
/// recv(), preserving the pipelining contract.
class InProcessTransport : public Transport {
 public:
  /// `workers`/`limits` configure the embedded manager; a non-empty
  /// `checkpoint_dir` enables auto-checkpointing every
  /// `checkpoint_every` tells (the substrate router failover rides on).
  explicit InProcessTransport(util::ThreadPool* workers = nullptr,
                              ServiceLimits limits = {},
                              const std::string& checkpoint_dir = "",
                              std::size_t checkpoint_every = 1);

  void send(const std::string& line) override;
  std::string recv() override;

  SessionManager& manager() { return manager_; }

 private:
  SessionManager manager_;
  // Queued responses: vector + cursor instead of a deque so the growth is
  // bounded by the pipelining window (compacted once drained).
  std::vector<std::string> replies_;
  std::size_t next_reply_ = 0;
};

/// Runs the server command under /bin/sh with the protocol on its
/// stdin/stdout; recv() honors a per-response poll() deadline. The
/// destructor (and any failure) terminates the child.
class PipeTransport : public Transport {
 public:
  PipeTransport(std::string command, double timeout_seconds);
  ~PipeTransport() override;

  PipeTransport(const PipeTransport&) = delete;
  PipeTransport& operator=(const PipeTransport&) = delete;

  void send(const std::string& line) override;
  void send_frame(const std::string& header,
                  const std::string& payload) override;
  std::string recv() override;
  void ensure_running() override;
  /// "Not spawned yet" is alive (the child starts lazily on first send);
  /// only an observed connection failure marks the transport dead.
  bool alive() const override { return !failed_; }

  /// The command this transport (re)spawns.
  const std::string& command() const { return command_; }

 private:
  /// Tears the dead connection down (so the next ensure_running respawns)
  /// and reports the failure as retryable.
  [[noreturn]] void fail(const std::string& what);
  void teardown();
  /// The single raw-fd write chokepoint: every byte this transport puts on
  /// the wire goes through here (lint: framed-write-discipline).
  void write_wire_frame(const std::string& payload);

  std::string command_;
  double timeout_;
  pid_t pid_ = -1;
  int to_child_ = -1;
  int from_child_ = -1;
  bool failed_ = false;
  std::string buffer_;
};

/// Decorator that speaks the checksummed `pwu1 <len> <crc32>` framing over
/// any inner Transport. send() wraps the request in a frame; recv() expects
/// a framed reply (negotiated once via {"op":"hello","frame":true}),
/// verifies length + CRC, and throws FrameError on a corrupted or
/// truncated frame — after resyncing, so the *next* recv() starts at a
/// frame boundary. Unframed lines from a legacy server pass through (they
/// predate negotiation, e.g. the hello reply itself on an old binary).
class FramedTransport : public Transport {
 public:
  explicit FramedTransport(std::unique_ptr<Transport> inner);

  void send(const std::string& line) override;
  std::string recv() override;
  void ensure_running() override;
  bool alive() const override { return inner_->alive(); }

  Transport& inner() { return *inner_; }

  /// Replies that failed frame verification (each also threw FrameError).
  std::size_t corrupt_replies() const { return corrupt_replies_; }
  /// Garbage lines skipped while hunting for a frame header.
  std::size_t resyncs() const { return resyncs_; }

 private:
  /// Sends the hello that flips the server to framed responses. Runs once
  /// per (re)connection, lazily before the first framed exchange.
  void negotiate();
  /// Next line: the pushed-back one if any, else inner recv.
  std::string next_line();

  std::unique_ptr<Transport> inner_;
  bool negotiated_ = false;
  bool peer_framed_ = false;
  bool has_pushback_ = false;
  std::string pushback_;
  std::size_t corrupt_replies_ = 0;
  std::size_t resyncs_ = 0;
};

}  // namespace pwu::service
