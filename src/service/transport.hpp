// Connection layer of the JSON-lines protocol, shared by every client of
// a tuning server: pwu_client, the pwu_router shard tier, benches, tests.
//
// A Transport moves protocol *lines*; it knows nothing about ops or
// sessions. Two implementations:
//
//   InProcessTransport  dispatches straight into an owned SessionManager —
//                       no process boundary, for tests and benches.
//   PipeTransport       spawns a server command under /bin/sh with the
//                       protocol on its stdin/stdout and reads responses
//                       with a poll() deadline.
//
// send()/recv() are split so callers can *pipeline*: write a window of
// requests before draining the (in-order) responses — the router fans a
// batch out to its shards this way. Connection-level failures (dead
// server, hung response, broken pipe) throw TransportError, which is the
// retryable category; structured {"ok":false} responses are not transport
// errors and come back as ordinary lines.

#pragma once

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <sys/types.h>
#include <vector>

#include "service/session_manager.hpp"

namespace pwu::service {

/// Connection-level failure (dead server, hung response, broken pipe) —
/// retryable, unlike a structured server-side error.
struct TransportError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Queues/writes one JSON request line. Throws TransportError when the
  /// connection is down and cannot accept it.
  virtual void send(const std::string& line) = 0;

  /// Returns the next response line, in request order. Throws
  /// TransportError on connection failure or deadline expiry.
  virtual std::string recv() = 0;

  /// One round-trip: send + recv.
  std::string request(const std::string& line) {
    send(line);
    return recv();
  }

  /// (Re)establishes the connection if it is down; no-op when healthy.
  /// NOTE: for a stateful server this starts a *fresh* process — any
  /// session state of the previous incarnation is gone (recoverable only
  /// through checkpoints).
  virtual void ensure_running() {}

  /// False once the connection has failed (until ensure_running()).
  virtual bool alive() const { return true; }
};

/// Dispatches straight into an owned SessionManager — no process boundary.
/// send() handles the request immediately and queues the response line for
/// recv(), preserving the pipelining contract.
class InProcessTransport : public Transport {
 public:
  /// `workers`/`limits` configure the embedded manager; a non-empty
  /// `checkpoint_dir` enables auto-checkpointing every
  /// `checkpoint_every` tells (the substrate router failover rides on).
  explicit InProcessTransport(util::ThreadPool* workers = nullptr,
                              ServiceLimits limits = {},
                              const std::string& checkpoint_dir = "",
                              std::size_t checkpoint_every = 1);

  void send(const std::string& line) override;
  std::string recv() override;

  SessionManager& manager() { return manager_; }

 private:
  SessionManager manager_;
  // Queued responses: vector + cursor instead of a deque so the growth is
  // bounded by the pipelining window (compacted once drained).
  std::vector<std::string> replies_;
  std::size_t next_reply_ = 0;
};

/// Runs the server command under /bin/sh with the protocol on its
/// stdin/stdout; recv() honors a per-response poll() deadline. The
/// destructor (and any failure) terminates the child.
class PipeTransport : public Transport {
 public:
  PipeTransport(std::string command, double timeout_seconds);
  ~PipeTransport() override;

  PipeTransport(const PipeTransport&) = delete;
  PipeTransport& operator=(const PipeTransport&) = delete;

  void send(const std::string& line) override;
  std::string recv() override;
  void ensure_running() override;
  /// "Not spawned yet" is alive (the child starts lazily on first send);
  /// only an observed connection failure marks the transport dead.
  bool alive() const override { return !failed_; }

  /// The command this transport (re)spawns.
  const std::string& command() const { return command_; }

 private:
  /// Tears the dead connection down (so the next ensure_running respawns)
  /// and reports the failure as retryable.
  [[noreturn]] void fail(const std::string& what);
  void teardown();

  std::string command_;
  double timeout_;
  pid_t pid_ = -1;
  int to_child_ = -1;
  int from_child_ = -1;
  bool failed_ = false;
  std::string buffer_;
};

}  // namespace pwu::service
