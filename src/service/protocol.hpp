// JSON-lines request/response protocol for the tuning service.
//
// One JSON object per line in, one per line out — pipe-friendly, so
// `pwu_serve` is scriptable with a shell heredoc and testable with string
// streams. Every response carries "ok"; failures carry "error" and never
// tear the server down.
//
//   {"op":"create","session":"s1","workload":"atax","strategy":"pwu",
//    "alpha":0.05,"n_init":10,"n_batch":1,"n_max":60,"pool_size":400,
//    "test_size":200,"trees":25,"seed":7}
//     -> {"ok":true,"session":"s1","measure_seed":"1234...","status":{...}}
//   {"op":"ask","session":"s1","count":1}
//     -> {"ok":true,"done":false,"candidates":[{"levels":[3,0,5],
//         "mean":0.41,"stddev":0.07,"iteration":1}]}
//   {"op":"tell","session":"s1","levels":[3,0,5],"time":0.3977}
//     -> {"ok":true,"labeled":11,"refit":true,"done":false}
//   {"op":"tell","session":"s1","levels":[3,0,5],"status":"crash","cost":0.2}
//     -> {"ok":true,"failure":"crash","action":"retry","attempts":1,
//         "backoff_seconds":0.5,"refit":false,"done":false,"failed_total":0}
//   {"op":"status","session":"s1"} | {"op":"list"} | {"op":"health"} |
//   {"op":"close","session":"s1"} |
//   {"op":"checkpoint","session":"s1","path":"/tmp/s1.ckpt"} |
//   {"op":"resume","session":"s1","path":"/tmp/s1.ckpt"} |
//   {"op":"shutdown"}
//
// Replication & migration ops (the router's HA substrate — see
// src/router/replication.hpp and DESIGN.md §14):
//   {"op":"replicate","session":"s1","record":{...}}
//     applies the wrapped op record to a live shadow copy of the session
//     (create/resume records instantiate the shadow); answers the inner
//     response under "applied" so the replicator can verify digests.
//   {"op":"promote","session":"s1"}
//     flips the shadow into an ordinary serving session and returns its
//     status — zero-cold-start failover.
//   {"op":"export","session":"s1","offset":0,"max_bytes":262144}
//     one chunk of the session's checkpoint image ("chunk","offset",
//     "total","eof") — keeps migration transfers under the line cap.
//   {"op":"import","session":"s1","chunk":"..."} stages bytes;
//   {"op":"import","session":"s1","commit":true,"shadow":false} installs
//   the staged image as a live session; {"op":"import","session":"s1",
//   "abort":true} discards the staging slot.
//
// tell's optional "status" ("ok" | "compile_error" | "crash" | "timeout")
// routes failed measurements; "cost" is the simulated seconds the failed
// attempt burned. checkpoint writes atomically (tmp + CRC footer + fsync +
// rename, previous copy kept as .bak); resume verifies the CRC and falls
// back to the .bak — reporting "recovered":true — when the newest copy is
// torn. shutdown drains in-flight refits (and final auto-checkpoints)
// before acknowledging.
//
// Overload behavior (see service/overload.hpp): a request refused by
// admission control answers {"ok":false,"overloaded":true,
// "retry_after_ms":N,...} — clients back off and retry. ask accepts an
// optional "deadline_ms" (-1 = block for the fresh model); a batch served
// past its deadline carries "degraded":"stale_model"|"random". health
// reports per-session state, queue depths, budget usage, and the
// shed/degraded counters without blocking on busy sessions.
//
// Network resilience (DESIGN.md §15):
//   * Checksummed wire framing: a message may arrive as two lines,
//     `pwu1 <len> <crc32-hex>` then the payload. The length and CRC are
//     verified before parsing, so a corrupted or truncated line is detected
//     and reported (`{"ok":false,"bad_frame":true,...}`) instead of being
//     mis-parsed; readers resync at the next `pwu1 ` header. Legacy
//     unframed lines are always accepted. {"op":"hello","frame":true}
//     negotiates framed *responses* for the rest of the connection.
//   * Request ids: any request may carry "rid" (a string); the response
//     echoes it, which is what lets pipelining clients re-match duplicated
//     or reordered replies.
//   * Idempotency: mutating ops may carry "idem" (a client-generated key).
//     The manager keeps a bounded per-session window of (key -> reply) and
//     replays the original reply on duplicates, so a retry after a lost or
//     corrupted reply never double-applies a tell.
//   * Fencing: requests may carry "epoch" (the router's ring epoch). A
//     mutating op whose epoch is below the highest this server has seen
//     answers {"ok":false,"fenced":true,"epoch":<fence>} — a partitioned
//     stale primary cannot write after its standby was promoted.
//     {"op":"fence","epoch":N} raises the fence explicitly.
//
// measure_seed is a decimal *string*: 64-bit seeds do not survive the trip
// through a JSON double.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "service/session_manager.hpp"
#include "util/json.hpp"

namespace pwu::service {

// ---- checksummed wire framing ----------------------------------------------

/// Magic that opens a frame header line: `pwu1 <len> <crc32-hex>`.
inline constexpr std::string_view kFrameMagic = "pwu1 ";

struct FrameHeader {
  std::size_t len = 0;       // payload bytes (the next line, sans newline)
  std::uint32_t crc = 0;     // IEEE CRC32 of the payload bytes
};

/// Renders the header line (no trailing newline) for `payload`.
std::string frame_header(std::string_view payload);

/// The full two-line wire form: header + '\n' + payload + '\n'.
std::string frame_encode(std::string_view payload);

/// Parses a `pwu1 <len> <crc32-hex>` header line. Returns false when the
/// line is not a well-formed frame header (callers then treat it as a
/// legacy unframed payload, or as garbage to resync past).
bool parse_frame_header(std::string_view line, FrameHeader& out);

/// Verifies `payload` against a parsed header (length and CRC both match).
bool frame_payload_matches(const FrameHeader& header, std::string_view payload);

/// Ops that change durable or model state — the ones idempotency keys and
/// fencing epochs apply to (ask included: it mutates the learner's pending
/// set, so duplicating or stale-writing it corrupts a session like a tell).
bool is_mutating_op(const std::string& op);

/// Parses a create request's tuning fields into a SessionSpec (defaults
/// match the pwu_run CLI). Throws std::invalid_argument on missing or
/// malformed fields.
SessionSpec spec_from_json(const util::json::Value& request);

util::json::Value status_to_json(const SessionStatus& status);
util::json::Value candidate_to_json(const Candidate& candidate);

/// Converts a "levels" JSON array to a Configuration (validated against
/// `space` by the session when told).
space::Configuration configuration_from_json(const util::json::Value& levels);

/// Dispatches one request object against the manager. Never throws for
/// request-level errors — they come back as {"ok":false,"error":...}.
/// A {"op":"shutdown"} request responds {"ok":true,"shutdown":true}.
util::json::Value handle_request(SessionManager& manager,
                                 const util::json::Value& request);

/// Reads JSON lines from `in` until EOF or a shutdown request, writing one
/// response line each. Blank lines are skipped; parse errors produce error
/// responses. Framed requests (a `pwu1` header line followed by the
/// payload) are verified and unwrapped; {"op":"hello","frame":true} flips
/// responses to framed for the rest of the loop. Returns the number of
/// requests handled.
std::size_t run_serve_loop(std::istream& in, std::ostream& out,
                           SessionManager& manager);

}  // namespace pwu::service
