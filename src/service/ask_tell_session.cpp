#include "service/ask_tell_session.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "util/contracts.hpp"
#include "util/killpoints.hpp"

namespace pwu::service {

namespace {

void validate_config(const core::LearnerConfig& config) {
  if (config.n_init == 0) {
    throw std::invalid_argument("AskTellSession: n_init must be > 0");
  }
  if (config.n_batch == 0) {
    throw std::invalid_argument("AskTellSession: n_batch must be > 0");
  }
  if (config.n_max < config.n_init) {
    throw std::invalid_argument("AskTellSession: n_max must be >= n_init");
  }
  if (config.eval_every == 0) {
    throw std::invalid_argument("AskTellSession: eval_every must be > 0");
  }
  if (!(config.failure.backoff_base_seconds >= 0.0) ||
      !(config.failure.backoff_cap_seconds >=
        config.failure.backoff_base_seconds)) {
    throw std::invalid_argument(
        "AskTellSession: failure backoff must satisfy 0 <= base <= cap");
  }
}

}  // namespace

const char* to_string(SessionPhase phase) {
  switch (phase) {
    case SessionPhase::ColdStart: return "cold-start";
    case SessionPhase::AwaitingTells: return "awaiting-tells";
    case SessionPhase::Ready: return "ready";
    case SessionPhase::Done: return "done";
  }
  return "unknown";
}

AskTellSession::AskTellSession(const space::ParameterSpace& space,
                               core::LearnerConfig config,
                               std::vector<space::Configuration> pool,
                               std::uint64_t seed, util::ThreadPool* workers)
    : space_(space),
      config_(std::move(config)),
      workers_(workers),
      pool_(std::move(pool)),
      train_(space_.num_params(), space_.categorical_mask(),
             space_.cardinalities()),
      rng_(seed),
      // Fixed decorrelation constant: the degraded stream is a deterministic
      // function of the session seed but statistically independent of rng_.
      degraded_rng_(seed ^ 0xd5a61266f0c9392dULL) {
  rebuild_pool_features();
}

void AskTellSession::rebuild_pool_features() {
  pool_features_ =
      rf::FeatureMatrix::with_capacity(space_.num_params(), pool_.size());
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    space_.write_features(pool_.at(i), pool_features_.append_row());
  }
}

AskTellSession::AskTellSession(const space::ParameterSpace& space,
                               StrategySpec spec, core::LearnerConfig config,
                               std::vector<space::Configuration> pool,
                               std::uint64_t seed, util::ThreadPool* workers)
    : AskTellSession(space, std::move(config), std::move(pool), seed,
                     workers) {
  validate_config(config_);
  if (pool_.size() < config_.n_init) {
    throw std::invalid_argument("AskTellSession: pool smaller than n_init");
  }
  owned_strategy_ = core::make_strategy(spec.name, spec.alpha);
  strategy_ = owned_strategy_.get();
  spec_ = std::move(spec);
}

AskTellSession::AskTellSession(const space::ParameterSpace& space,
                               const core::SamplingStrategy& strategy,
                               core::LearnerConfig config,
                               std::vector<space::Configuration> pool,
                               const rf::Dataset* warm_start,
                               std::uint64_t seed, util::ThreadPool* workers)
    : AskTellSession(space, std::move(config), std::move(pool), seed,
                     workers) {
  validate_config(config_);
  if (pool_.size() < config_.n_init) {
    throw std::invalid_argument("AskTellSession: pool smaller than n_init");
  }
  strategy_ = &strategy;
  if (warm_start != nullptr) {
    if (warm_start->num_features() != space_.num_params()) {
      throw std::invalid_argument(
          "AskTellSession: warm-start feature schema mismatch");
    }
    for (std::size_t i = 0; i < warm_start->size(); ++i) {
      train_.add(warm_start->row(i), warm_start->y(i));
    }
    warm_rows_ = warm_start->size();
  }
}

bool AskTellSession::done() const {
  if (!pending_.empty()) return false;
  // An exhausted pool ends the session even mid-cold-start (every candidate
  // may have failed); otherwise the budget decides once cold start is over.
  if (pool_.empty()) return true;
  return cold_start_done_ && num_labeled() >= config_.n_max;
}

SessionPhase AskTellSession::phase() const {
  if (!pending_.empty()) return SessionPhase::AwaitingTells;
  if (!cold_start_done_) return SessionPhase::ColdStart;
  if (done()) return SessionPhase::Done;
  return SessionPhase::Ready;
}

double AskTellSession::best_observed() const {
  if (train_labels_.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return *std::min_element(train_labels_.begin(), train_labels_.end());
}

std::vector<Candidate> AskTellSession::ask(std::size_t n) {
  AskPlan plan = plan_ask(n);
  if (!plan.needs_scores) return std::move(plan.candidates);
  const std::vector<rf::PredictionStats> stats =
      model_->predict_stats_batch(pool_features_, workers_);
  return finish_ask(plan, stats);
}

AskPlan AskTellSession::plan_ask(std::size_t n) {
  AskPlan plan;
  if (!pending_.empty()) {
    throw std::logic_error(
        "AskTellSession::ask: previous batch still awaiting tells");
  }
  refit();
  if (done()) return plan;

  if (!cold_start_done_) {
    // Cold start (Algorithm 1, lines 1-4): exactly n_init uniform picks,
    // regardless of the requested batch size. When failures dropped part of
    // a previous cold-start batch, top up with the shortfall only — the
    // first ask (num_labeled() == 0) is bit-identical to the pre-failure
    // behavior.
    PWU_ASSERT(num_labeled() < config_.n_init,
               "ask: cold start still open with n_init labels");
    std::vector<std::size_t> init_indices = pool_.sample_indices(
        std::min(config_.n_init - num_labeled(), pool_.size()), rng_);
    // Mirror take_many's removal sequence (sorted unique, descending) on the
    // feature rows so pool_ and pool_features_ stay index-aligned.
    std::sort(init_indices.begin(), init_indices.end());
    init_indices.erase(
        std::unique(init_indices.begin(), init_indices.end()),
        init_indices.end());
    for (auto it = init_indices.rbegin(); it != init_indices.rend(); ++it) {
      pool_features_.remove_row_swap(*it);
    }
    for (auto& config : pool_.take_many(std::move(init_indices))) {
      Candidate cand;
      cand.config = std::move(config);
      pending_.push_back(std::move(cand));
    }
    PWU_ENSURE(phase() == SessionPhase::AwaitingTells,
               "ask: cold start must leave the session awaiting tells, got "
                   << to_string(phase()));
    PWU_ENSURE(pool_.size() == pool_features_.num_rows(),
               "ask: pool/features desync " << pool_.size() << " vs "
                                            << pool_features_.num_rows());
    plan.candidates = pending_;
    return plan;
  }

  // Iteration phase (Algorithm 1, lines 5-9): predict over the pool, let
  // the strategy pick a batch. The prediction pass itself is deferred to
  // finish_ask so a fused caller can batch it with other sessions'.
  PWU_ASSERT(model_ != nullptr,
             "ask: cold start complete but no fitted surrogate");
  ++iteration_;
  const std::size_t want = n == 0 ? config_.n_batch : n;
  plan.batch = std::min({want, config_.n_max - num_labeled(), pool_.size()});
  plan.needs_scores = true;
  return plan;
}

std::vector<Candidate> AskTellSession::finish_ask(
    const AskPlan& plan, const std::vector<rf::PredictionStats>& stats) {
  PWU_REQUIRE(plan.needs_scores,
              "finish_ask: plan was already complete (cold start or done)");
  PWU_REQUIRE(stats.size() == pool_.size(),
              "finish_ask: " << stats.size() << " scores for "
                             << pool_.size() << " pool rows");
  core::PoolPrediction prediction;
  prediction.best_observed = best_observed();
  prediction.mean.resize(pool_.size());
  prediction.stddev.resize(pool_.size());
  for (std::size_t i = 0; i < stats.size(); ++i) {
    prediction.mean[i] = stats[i].mean;
    prediction.stddev[i] = stats[i].stddev;
  }
  prediction.features = pool_features_;

  std::vector<std::size_t> selected =
      strategy_->select(prediction, plan.batch, rng_);
  if (selected.empty()) {
    throw std::logic_error("SamplingStrategy returned an empty batch");
  }
  // Remove in descending index order so earlier removals (swap-with-last)
  // cannot disturb later indices, keeping each config paired with the
  // prediction it was selected under.
  std::sort(selected.begin(), selected.end());
  selected.erase(std::unique(selected.begin(), selected.end()),
                 selected.end());
  for (auto it = selected.rbegin(); it != selected.rend(); ++it) {
    Candidate cand;
    cand.has_prediction = true;
    cand.predicted_mean = stats.at(*it).mean;
    cand.predicted_stddev = stats.at(*it).stddev;
    cand.iteration = iteration_;
    cand.config = pool_.take(*it);
    pool_features_.remove_row_swap(*it);
    pending_.push_back(std::move(cand));
  }
  PWU_ENSURE(phase() == SessionPhase::AwaitingTells,
             "ask: a non-empty batch must leave the session awaiting tells");
  PWU_ENSURE(pool_.size() == pool_features_.num_rows(),
             "ask: pool/features desync " << pool_.size() << " vs "
                                          << pool_features_.num_rows());
  return pending_;
}

std::vector<Candidate> AskTellSession::ask_degraded(
    std::size_t n, const core::Surrogate* stale) {
  if (!pending_.empty()) {
    throw std::logic_error(
        "AskTellSession::ask_degraded: previous batch still awaiting tells");
  }
  if (done()) return {};

  ++iteration_;
  const std::size_t want = n == 0 ? config_.n_batch : n;
  const std::size_t batch =
      std::min({want, config_.n_max - num_labeled(), pool_.size()});

  std::vector<std::size_t> selected;
  std::vector<rf::PredictionStats> stats;
  const bool scored = stale != nullptr && stale->fitted();
  if (scored) {
    // Score the pool with the caller's last-good snapshot — serially
    // (nullptr pool): the worker threads are busy with the very refit this
    // ask is degrading around.
    stats = stale->predict_stats_batch(pool_features_, nullptr);
    core::PoolPrediction prediction;
    prediction.best_observed = best_observed();
    prediction.mean.resize(pool_.size());
    prediction.stddev.resize(pool_.size());
    for (std::size_t i = 0; i < stats.size(); ++i) {
      prediction.mean[i] = stats[i].mean;
      prediction.stddev[i] = stats[i].stddev;
    }
    prediction.features = pool_features_;
    selected = strategy_->select(prediction, batch, degraded_rng_);
    if (selected.empty()) {
      throw std::logic_error("SamplingStrategy returned an empty batch");
    }
    ++degraded_stale_asks_;
  } else {
    selected = pool_.sample_indices(batch, degraded_rng_);
    ++degraded_random_asks_;
  }

  std::sort(selected.begin(), selected.end());
  selected.erase(std::unique(selected.begin(), selected.end()),
                 selected.end());
  for (auto it = selected.rbegin(); it != selected.rend(); ++it) {
    Candidate cand;
    if (scored) {
      cand.has_prediction = true;
      cand.predicted_mean = stats.at(*it).mean;
      cand.predicted_stddev = stats.at(*it).stddev;
    }
    cand.iteration = iteration_;
    cand.config = pool_.take(*it);
    pool_features_.remove_row_swap(*it);
    pending_.push_back(std::move(cand));
  }
  PWU_ENSURE(phase() == SessionPhase::AwaitingTells,
             "ask_degraded: a non-empty batch must leave the session "
             "awaiting tells");
  PWU_ENSURE(pool_.size() == pool_features_.num_rows(),
             "ask_degraded: pool/features desync "
                 << pool_.size() << " vs " << pool_features_.num_rows());
  return pending_;
}

bool AskTellSession::tell(const space::Configuration& config,
                          double measured_time) {
  const auto it =
      std::find_if(pending_.begin(), pending_.end(),
                   [&](const Candidate& c) { return c.config == config; });
  if (it == pending_.end()) {
    throw std::invalid_argument(
        "AskTellSession::tell: configuration is not an outstanding candidate");
  }
  append_label(*it, measured_time);
  pending_.erase(it);
  if (!pending_.empty()) return false;
  on_batch_drained();
  return true;
}

FailureOutcome AskTellSession::tell_failure(const space::Configuration& config,
                                            sim::FailureKind kind,
                                            double cost_seconds) {
  if (kind == sim::FailureKind::None) {
    throw std::invalid_argument(
        "AskTellSession::tell_failure: kind None is a success; use tell()");
  }
  if (!(cost_seconds >= 0.0)) {  // also rejects NaN
    throw std::invalid_argument(
        "AskTellSession::tell_failure: cost_seconds must be >= 0");
  }
  const auto it =
      std::find_if(pending_.begin(), pending_.end(),
                   [&](const Candidate& c) { return c.config == config; });
  if (it == pending_.end()) {
    throw std::invalid_argument(
        "AskTellSession::tell_failure: configuration is not an outstanding "
        "candidate");
  }

  // The failed attempt's wall-clock is real tuning time: charge it.
  cumulative_cost_ += cost_seconds;
  failure_cost_ += cost_seconds;
  ++it->failures;

  FailureOutcome outcome;
  outcome.attempts = it->failures;
  if (kind == sim::FailureKind::Crash &&
      it->failures <= config_.failure.max_retries) {
    // Transient: keep the candidate outstanding and charge the backoff wait
    // the tuner would block on before re-running.
    ++transient_retries_;
    outcome.action = FailureAction::Retry;
    outcome.backoff_seconds = config_.failure.backoff_seconds(it->failures);
    cumulative_cost_ += outcome.backoff_seconds;
    failure_cost_ += outcome.backoff_seconds;
    return outcome;
  }

  // Deterministic failure or retries exhausted: the configuration enters
  // the failed set and is never proposed again. A timeout additionally
  // yields a right-censored observation (true time > cost_seconds) that is
  // recorded but deliberately kept out of the training set.
  if (kind == sim::FailureKind::Timeout) {
    censored_.push_back({it->config, cost_seconds});
  }
  add_failed({it->config, kind, it->failures});
  pending_.erase(it);
  outcome.action = FailureAction::Dropped;
  if (pending_.empty()) {
    outcome.batch_complete = true;
    on_batch_drained();
  }
  return outcome;
}

void AskTellSession::on_batch_drained() {
  PWU_ASSERT(pending_.empty(), "on_batch_drained: batch not drained");
  if (!cold_start_done_) {
    if (num_labeled() < config_.n_init && !pool_.empty()) {
      // Failures left the cold start short and the pool can still top it
      // up: the next ask() draws the shortfall, no refit yet.
      return;
    }
    cold_start_done_ = true;
    refit_due_ = num_labeled() > 0 || warm_rows_ > 0;
    labels_in_batch_ = 0;
    return;
  }
  refit_due_ = labels_in_batch_ > 0;
  labels_in_batch_ = 0;
}

void AskTellSession::add_failed(FailedConfig failed) {
  failed_lookup_.insert(failed.config);
  failed_.push_back(std::move(failed));
  PWU_ENSURE(failed_lookup_.size() == failed_.size(),
             "add_failed: duplicate entry in the failed set ("
                 << failed_.size() << " records, " << failed_lookup_.size()
                 << " unique)");
}

bool AskTellSession::refit(const util::CancelToken* cancel) {
  if (!refit_due_) return false;
  if (cancel != nullptr) cancel->throw_if_requested();
  // Snapshot the rng so a cancelled fit consumes no draws: the requeued
  // fit replays the identical tree streams, keeping cancelled-then-retried
  // sessions bit-identical to undisturbed ones.
  util::Rng snapshot = rng_;
  try {
    fit_model(cancel);
  } catch (...) {
    rng_ = snapshot;
    throw;  // refit_due_ stays true: the fit is still owed
  }
  refit_due_ = false;
  return true;
}

void AskTellSession::append_label(const Candidate& candidate,
                                  double measured_time) {
  cumulative_cost_ += measured_time;
  train_.add(space_.features(candidate.config), measured_time);
  if (candidate.has_prediction) {
    selections_.push_back({candidate.iteration, candidate.predicted_mean,
                           candidate.predicted_stddev, measured_time});
  }
  train_configs_.push_back(candidate.config);
  train_labels_.push_back(measured_time);
  ++labels_in_batch_;
  PWU_ENSURE(train_configs_.size() == train_labels_.size() &&
                 train_.size() == warm_rows_ + train_labels_.size(),
             "append_label: training-set desync: " << train_.size()
                                                   << " rows, " << warm_rows_
                                                   << " warm, "
                                                   << train_labels_.size()
                                                   << " labels");
}

void AskTellSession::fit_model(const util::CancelToken* cancel) {
  // Fit into a fresh surrogate and swap on success. Fits are from-scratch,
  // so this is bit-identical to refitting in place — and it keeps the
  // previous model_ (and every snapshot other threads hold of it) intact
  // when the fit is cancelled or throws.
  //
  // Crash site for the shard-failover harness: a worker killed here has
  // already applied and auto-checkpointed the tell that triggered the
  // refit, but never answers it — the router must synthesize the lost
  // response rather than replay (double-apply) it.
  util::killpoint("ask_tell_session.fit_model");
  core::SurrogatePtr fresh =
      core::make_surrogate(config_.surrogate, config_.forest, config_.gp);
  fresh->fit(train_, rng_, workers_, cancel);
  model_ = std::move(fresh);
}

std::size_t AskTellSession::memory_bytes() const {
  const std::size_t per_config =
      sizeof(space::Configuration) +
      space_.num_params() * sizeof(std::uint32_t);
  std::size_t total = pool_features_.memory_bytes() + train_.memory_bytes();
  if (model_ != nullptr) total += model_->memory_bytes();
  total += pool_.size() * per_config;
  total += (train_configs_.capacity() + pending_.capacity() +
            failed_.capacity()) *
           per_config;
  total += pending_.capacity() * (sizeof(Candidate) - sizeof(space::Configuration));
  total += train_labels_.capacity() * sizeof(double);
  total += selections_.capacity() * sizeof(core::SelectionRecord);
  return total;
}

// ---- checkpointing ----
//
// Text format in the style of rf::RandomForest::save: a magic/version
// header followed by sections. Doubles are written with max_digits10
// precision, which round-trips every finite value exactly.

namespace {

[[noreturn]] void restore_fail(const std::string& what) {
  throw std::runtime_error("AskTellSession::restore: " + what);
}

void expect_section(std::istream& is, const char* name) {
  std::string token;
  if (!(is >> token) || token != name) {
    restore_fail(std::string("missing section '") + name + "'");
  }
}

void write_levels(std::ostream& os, const space::Configuration& config) {
  for (std::size_t i = 0; i < config.size(); ++i) {
    os << config.level(i) << ' ';
  }
}

space::Configuration read_levels(std::istream& is,
                                 const space::ParameterSpace& space) {
  std::vector<std::uint32_t> levels(space.num_params());
  for (auto& level : levels) {
    if (!(is >> level)) restore_fail("bad configuration levels");
  }
  space::Configuration config(std::move(levels));
  if (!space.contains(config)) {
    restore_fail("configuration out of range for the space");
  }
  return config;
}

}  // namespace

void AskTellSession::save(std::ostream& os) const {
  if (!spec_.has_value()) {
    throw std::logic_error(
        "AskTellSession::save: session wraps an externally owned strategy "
        "and cannot be checkpointed");
  }
  const auto precision = os.precision();
  os.precision(std::numeric_limits<double>::max_digits10);

  os << "pwu-session 3\n";
  os << "strategy " << spec_->name << ' ' << spec_->alpha << '\n';
  os << "learner " << config_.n_init << ' ' << config_.n_batch << ' '
     << config_.n_max << ' ' << config_.surrogate << ' ' << config_.eval_every
     << ' ' << config_.measure_repetitions << '\n';
  os << "alphas " << config_.eval_alphas.size();
  for (double alpha : config_.eval_alphas) os << ' ' << alpha;
  os << '\n';
  os << "forest " << config_.forest.num_trees << ' '
     << config_.forest.tree.max_depth << ' '
     << config_.forest.tree.min_samples_leaf << ' '
     << config_.forest.tree.min_samples_split << ' '
     << config_.forest.tree.mtry << ' ' << (config_.forest.bootstrap ? 1 : 0)
     << ' ' << (config_.forest.compute_oob ? 1 : 0) << '\n';
  os << "gp " << config_.gp.kernel << ' ' << config_.gp.signal_variance << ' '
     << config_.gp.lengthscale << ' ' << config_.gp.noise_variance << ' '
     << (config_.gp.median_heuristic ? 1 : 0) << '\n';
  os << "failure_policy " << config_.failure.max_retries << ' '
     << config_.failure.backoff_base_seconds << ' '
     << config_.failure.backoff_cap_seconds << '\n';
  os << "progress " << iteration_ << ' ' << cumulative_cost_ << ' '
     << (cold_start_done_ ? 1 : 0) << ' ' << (refit_due_ ? 1 : 0) << '\n';
  os << "failprogress " << failure_cost_ << ' ' << transient_retries_ << ' '
     << labels_in_batch_ << '\n';
  os << "degraded " << degraded_stale_asks_ << ' ' << degraded_random_asks_
     << ' ';
  degraded_rng_.save(os);
  os << "rng ";
  rng_.save(os);

  os << "warm " << warm_rows_ << ' ' << train_.num_features() << '\n';
  for (std::size_t r = 0; r < warm_rows_; ++r) {
    for (double v : train_.row(r)) os << v << ' ';
    os << train_.y(r) << '\n';
  }
  os << "train " << train_configs_.size() << '\n';
  for (std::size_t i = 0; i < train_configs_.size(); ++i) {
    write_levels(os, train_configs_[i]);
    os << train_labels_[i] << '\n';
  }
  os << "pool " << pool_.size() << '\n';
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    write_levels(os, pool_.at(i));
    os << '\n';
  }
  os << "pending " << pending_.size() << '\n';
  for (const auto& cand : pending_) {
    write_levels(os, cand.config);
    os << (cand.has_prediction ? 1 : 0) << ' ' << cand.predicted_mean << ' '
       << cand.predicted_stddev << ' ' << cand.iteration << ' '
       << cand.failures << '\n';
  }
  os << "failed " << failed_.size() << '\n';
  for (const auto& failed : failed_) {
    write_levels(os, failed.config);
    os << sim::to_string(failed.kind) << ' ' << failed.attempts << '\n';
  }
  os << "censored " << censored_.size() << '\n';
  for (const auto& censored : censored_) {
    write_levels(os, censored.config);
    os << censored.lower_bound << '\n';
  }
  os << "selections " << selections_.size() << '\n';
  for (const auto& sel : selections_) {
    os << sel.iteration << ' ' << sel.predicted_mean << ' '
       << sel.predicted_stddev << ' ' << sel.measured << '\n';
  }

  os << "model " << (model_ != nullptr ? 1 : 0) << '\n';
  if (model_ != nullptr) {
    // Families without a serialized form (the GP) write nothing here;
    // restore() refits them from the training set, which is exact because
    // such fits consume no rng draws.
    model_->save_model(os);
  }
  os << "end\n";
  os.precision(precision);
}

AskTellSession AskTellSession::restore(const space::ParameterSpace& space,
                                       std::istream& is,
                                       util::ThreadPool* workers) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "pwu-session" || version < 1 ||
      version > 3) {
    restore_fail("bad header");
  }

  StrategySpec spec;
  expect_section(is, "strategy");
  if (!(is >> spec.name >> spec.alpha)) restore_fail("bad strategy line");

  core::LearnerConfig config;
  expect_section(is, "learner");
  if (!(is >> config.n_init >> config.n_batch >> config.n_max >>
        config.surrogate >> config.eval_every >>
        config.measure_repetitions)) {
    restore_fail("bad learner line");
  }
  expect_section(is, "alphas");
  std::size_t num_alphas = 0;
  if (!(is >> num_alphas)) restore_fail("bad alphas line");
  config.eval_alphas.resize(num_alphas);
  for (auto& alpha : config.eval_alphas) {
    if (!(is >> alpha)) restore_fail("bad alphas line");
  }
  expect_section(is, "forest");
  int bootstrap = 1, oob = 0;
  if (!(is >> config.forest.num_trees >> config.forest.tree.max_depth >>
        config.forest.tree.min_samples_leaf >>
        config.forest.tree.min_samples_split >> config.forest.tree.mtry >>
        bootstrap >> oob)) {
    restore_fail("bad forest line");
  }
  config.forest.bootstrap = bootstrap != 0;
  config.forest.compute_oob = oob != 0;
  expect_section(is, "gp");
  int median = 1;
  if (!(is >> config.gp.kernel >> config.gp.signal_variance >>
        config.gp.lengthscale >> config.gp.noise_variance >> median)) {
    restore_fail("bad gp line");
  }
  config.gp.median_heuristic = median != 0;
  if (version >= 2) {
    expect_section(is, "failure_policy");
    if (!(is >> config.failure.max_retries >>
          config.failure.backoff_base_seconds >>
          config.failure.backoff_cap_seconds)) {
      restore_fail("bad failure_policy line");
    }
  }

  expect_section(is, "progress");
  std::size_t iteration = 0;
  double cumulative_cost = 0.0;
  int cold_done = 0, refit_due = 0;
  if (!(is >> iteration >> cumulative_cost >> cold_done >> refit_due)) {
    restore_fail("bad progress line");
  }
  double failure_cost = 0.0;
  std::size_t transient_retries = 0, labels_in_batch = 0;
  if (version >= 2) {
    expect_section(is, "failprogress");
    if (!(is >> failure_cost >> transient_retries >> labels_in_batch)) {
      restore_fail("bad failprogress line");
    }
  }
  std::size_t degraded_stale = 0, degraded_random = 0;
  std::optional<util::Rng> degraded_rng;
  if (version >= 3) {
    expect_section(is, "degraded");
    if (!(is >> degraded_stale >> degraded_random)) {
      restore_fail("bad degraded line");
    }
    degraded_rng.emplace();
    degraded_rng->load(is);
  }
  expect_section(is, "rng");
  util::Rng rng;
  rng.load(is);

  expect_section(is, "warm");
  std::size_t warm_rows = 0, num_features = 0;
  if (!(is >> warm_rows >> num_features)) restore_fail("bad warm header");
  if (num_features != space.num_params()) {
    restore_fail("feature schema does not match the given space");
  }

  AskTellSession session(space, config, {}, 0, workers);
  session.spec_ = spec;
  session.owned_strategy_ = core::make_strategy(spec.name, spec.alpha);
  session.strategy_ = session.owned_strategy_.get();
  session.rng_ = rng;
  session.iteration_ = iteration;
  session.cumulative_cost_ = cumulative_cost;
  session.cold_start_done_ = cold_done != 0;
  session.refit_due_ = refit_due != 0;
  session.failure_cost_ = failure_cost;
  session.transient_retries_ = transient_retries;
  session.labels_in_batch_ = labels_in_batch;
  session.degraded_stale_asks_ = degraded_stale;
  session.degraded_random_asks_ = degraded_random;
  if (degraded_rng.has_value()) {
    session.degraded_rng_ = *degraded_rng;
  }
  // v1/v2 checkpoints predate the degraded stream: the constructor seeded
  // it from seed 0 (deterministically), which is fine — such sessions have
  // never consumed a degraded draw.
  session.warm_rows_ = warm_rows;

  std::vector<double> row(num_features);
  for (std::size_t r = 0; r < warm_rows; ++r) {
    double label = 0.0;
    for (auto& v : row) {
      if (!(is >> v)) restore_fail("bad warm row");
    }
    if (!(is >> label)) restore_fail("bad warm row");
    session.train_.add(row, label);
  }

  expect_section(is, "train");
  std::size_t train_count = 0;
  if (!(is >> train_count)) restore_fail("bad train header");
  session.train_configs_.reserve(train_count);
  session.train_labels_.reserve(train_count);
  for (std::size_t i = 0; i < train_count; ++i) {
    space::Configuration config_i = read_levels(is, space);
    double label = 0.0;
    if (!(is >> label)) restore_fail("bad train label");
    session.train_.add(space.features(config_i), label);
    session.train_configs_.push_back(std::move(config_i));
    session.train_labels_.push_back(label);
  }

  expect_section(is, "pool");
  std::size_t pool_count = 0;
  if (!(is >> pool_count)) restore_fail("bad pool header");
  {
    std::vector<space::Configuration> pool_configs;
    pool_configs.reserve(pool_count);
    for (std::size_t i = 0; i < pool_count; ++i) {
      pool_configs.push_back(read_levels(is, space));
    }
    session.pool_ = space::CandidatePool(std::move(pool_configs));
    session.rebuild_pool_features();
  }

  expect_section(is, "pending");
  std::size_t pending_count = 0;
  if (!(is >> pending_count)) restore_fail("bad pending header");
  for (std::size_t i = 0; i < pending_count; ++i) {
    Candidate cand;
    cand.config = read_levels(is, space);
    int has_prediction = 0;
    if (!(is >> has_prediction >> cand.predicted_mean >>
          cand.predicted_stddev >> cand.iteration)) {
      restore_fail("bad pending row");
    }
    if (version >= 2 && !(is >> cand.failures)) {
      restore_fail("bad pending row");
    }
    cand.has_prediction = has_prediction != 0;
    session.pending_.push_back(std::move(cand));
  }

  if (version >= 2) {
    expect_section(is, "failed");
    std::size_t failed_count = 0;
    if (!(is >> failed_count)) restore_fail("bad failed header");
    for (std::size_t i = 0; i < failed_count; ++i) {
      FailedConfig failed;
      failed.config = read_levels(is, space);
      std::string kind;
      if (!(is >> kind >> failed.attempts)) restore_fail("bad failed row");
      const auto parsed = sim::failure_kind_from_string(kind);
      if (!parsed.has_value() || *parsed == sim::FailureKind::None) {
        restore_fail("bad failure kind '" + kind + "'");
      }
      failed.kind = *parsed;
      session.add_failed(std::move(failed));
    }
    expect_section(is, "censored");
    std::size_t censored_count = 0;
    if (!(is >> censored_count)) restore_fail("bad censored header");
    for (std::size_t i = 0; i < censored_count; ++i) {
      CensoredObservation censored;
      censored.config = read_levels(is, space);
      if (!(is >> censored.lower_bound)) restore_fail("bad censored row");
      session.censored_.push_back(std::move(censored));
    }
    // A well-formed checkpoint never lists a failed configuration in the
    // pool (it was removed when asked), but a hand-edited or merged one
    // might; drop such entries rather than risk re-proposing them.
    if (!session.failed_.empty()) {
      std::vector<space::Configuration> kept;
      kept.reserve(session.pool_.size());
      for (std::size_t i = 0; i < session.pool_.size(); ++i) {
        if (!session.is_failed(session.pool_.at(i))) {
          kept.push_back(session.pool_.at(i));
        }
      }
      if (kept.size() != session.pool_.size()) {
        session.pool_ = space::CandidatePool(std::move(kept));
        session.rebuild_pool_features();
      }
    }
  }

  expect_section(is, "selections");
  std::size_t selection_count = 0;
  if (!(is >> selection_count)) restore_fail("bad selections header");
  for (std::size_t i = 0; i < selection_count; ++i) {
    core::SelectionRecord sel;
    if (!(is >> sel.iteration >> sel.predicted_mean >> sel.predicted_stddev >>
          sel.measured)) {
      restore_fail("bad selection row");
    }
    session.selections_.push_back(sel);
  }

  expect_section(is, "model");
  int has_model = 0;
  if (!(is >> has_model)) restore_fail("bad model flag");
  if (has_model != 0) {
    session.model_ = core::make_surrogate(config.surrogate, config.forest,
                                          config.gp);
    if (!session.model_->load_model(is)) {
      // No serialized form for this family: refit from the restored
      // training set. Exact for fits that consume no rng draws (GP); a
      // scratch copy keeps the real stream untouched either way.
      util::Rng scratch = session.rng_;
      session.model_->fit(session.train_, scratch, workers);
    }
  }
  expect_section(is, "end");
  return session;
}

}  // namespace pwu::service
