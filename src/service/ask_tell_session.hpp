// Inverted-control form of Algorithm 1 (the ask/tell pattern of
// sequential model-based optimization services).
//
// The batch loop in core::ActiveLearner owns the measurement callback; a
// tuning *service* cannot — the expensive run happens on the client's
// machine. AskTellSession turns the loop inside out:
//
//   ask()  -> the next batch of candidate configurations to measure
//             (cold-start picks first, then strategy selections with the
//             surrogate's predicted mu/sigma attached)
//   tell() -> hands one measured label back; when the outstanding batch is
//             complete the surrogate refit becomes due
//
// core::ActiveLearner::run is a thin driver over this class, so the batch
// benches and the service share one Algorithm-1 implementation. The whole
// dynamic state (training set, candidate pool, RNG, pending asks, history)
// serializes through save()/restore(), so a server restart loses no labels
// and — for the random-forest surrogate, whose trees round-trip exactly —
// the resumed session continues bit-identically.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/active_learner.hpp"
#include "core/sampling_strategy.hpp"
#include "core/surrogate.hpp"
#include "sim/fault_model.hpp"
#include "space/configuration.hpp"
#include "space/parameter_space.hpp"
#include "space/pool.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/watchdog.hpp"

namespace pwu::service {

/// Strategy-by-name (core::make_strategy) — the serializable form a
/// checkpoint can reconstruct.
struct StrategySpec {
  std::string name = "pwu";
  double alpha = 0.05;
};

/// One configuration handed out by ask(). Cold-start candidates carry no
/// prediction (has_prediction = false); strategy selections carry the
/// mu/sigma they were selected under (the paper's Fig. 9 raw data).
struct Candidate {
  space::Configuration config;
  bool has_prediction = false;
  double predicted_mean = 0.0;
  double predicted_stddev = 0.0;
  /// 0 = cold start, then 1, 2, ... per strategy batch.
  std::size_t iteration = 0;
  /// Failed measurement attempts reported via tell_failure so far.
  std::size_t failures = 0;
};

/// What the session decided about a failed measurement.
enum class FailureAction {
  Retry,    // transient: candidate stays outstanding, re-measure it
  Dropped,  // deterministic or retries exhausted: entered the failed set
};

struct FailureOutcome {
  FailureAction action = FailureAction::Dropped;
  /// Failed attempts for this candidate so far (including this one).
  std::size_t attempts = 0;
  /// Simulated wait charged to cumulative cost before the retry (0 when
  /// Dropped).
  double backoff_seconds = 0.0;
  /// True when this failure drained the batch (a refit may now be due).
  bool batch_complete = false;
};

/// A configuration the session gave up on. Never re-proposed; excluded
/// from best-performance tracking; persisted across checkpoint/resume.
struct FailedConfig {
  space::Configuration config;
  sim::FailureKind kind = sim::FailureKind::Crash;
  std::size_t attempts = 1;
};

/// A right-censored observation (the run exceeded `lower_bound` seconds —
/// a timeout). Kept out of the RF training set: tree surrogates treat any
/// stand-in value as a real label and skew both the model and uncertainty
/// estimates, so censored points are recorded but never trained on.
struct CensoredObservation {
  space::Configuration config;
  double lower_bound = 0.0;
};

/// Deferred form of ask() for cross-session ask fusion
/// (SessionManager::ask_fused). plan_ask() runs everything up to — but not
/// including — the pool scoring pass; when `needs_scores` is set the caller
/// computes exactly what ask() would have computed inline
/// (model()->predict_stats_batch over pool_features(), bit for bit — any
/// block schedule of the flat evaluator qualifies) and hands the stats to
/// finish_ask(), which replays the strategy selection on the session's own
/// rng stream. ask() itself is plan_ask + inline scoring + finish_ask, so
/// the fused and unfused paths share one implementation and cannot drift.
struct AskPlan {
  /// False: `candidates` already holds the complete answer (the session is
  /// done, or cold start — neither consults the surrogate). True: score
  /// the pool, then call finish_ask().
  bool needs_scores = false;
  std::vector<Candidate> candidates;
  /// Clamped batch size the strategy will be asked for.
  std::size_t batch = 0;
};

enum class SessionPhase {
  ColdStart,      // nothing asked yet; next ask() returns the n_init picks
  AwaitingTells,  // an ask() batch is outstanding
  Ready,          // fitted, budget remaining, no outstanding batch
  Done,           // n_max reached or pool exhausted
};

const char* to_string(SessionPhase phase);

class AskTellSession {
 public:
  /// Owning-strategy form (the service path). The strategy is built from
  /// `spec` via core::make_strategy, and the session is checkpointable.
  AskTellSession(const space::ParameterSpace& space, StrategySpec spec,
                 core::LearnerConfig config,
                 std::vector<space::Configuration> pool, std::uint64_t seed,
                 util::ThreadPool* workers = nullptr);

  /// Non-owning form (the ActiveLearner driver path): `strategy` must
  /// outlive the session. `warm_start` optionally seeds the training set
  /// with free source-task rows (they count toward neither budget nor
  /// cost). save() is unavailable — an externally owned strategy cannot be
  /// reconstructed from a checkpoint.
  AskTellSession(const space::ParameterSpace& space,
                 const core::SamplingStrategy& strategy,
                 core::LearnerConfig config,
                 std::vector<space::Configuration> pool,
                 const rf::Dataset* warm_start, std::uint64_t seed,
                 util::ThreadPool* workers = nullptr);

  AskTellSession(AskTellSession&&) = default;
  AskTellSession& operator=(AskTellSession&&) = default;

  /// Next batch to measure. `n` requests a batch size (clamped to the
  /// remaining budget and pool; 0 = the configured default: n_init during
  /// cold start, n_batch afterwards). Returns an empty vector when done.
  /// Throws std::logic_error while a previous batch is still outstanding.
  /// Performs any due refit first.
  std::vector<Candidate> ask(std::size_t n = 0);

  /// First half of ask(): identical admission, refit, cold start, and
  /// iteration accounting, stopping where ask() would score the pool. See
  /// AskPlan. Throws exactly where ask() throws.
  AskPlan plan_ask(std::size_t n = 0);

  /// Second half of ask(): `stats` must be the surrogate's prediction for
  /// every current pool row (stats[i] scores pool_features().row(i)),
  /// bit-identical to model()->predict_stats_batch — a fused caller gets
  /// that for free because flat-forest row blocks evaluate independently.
  std::vector<Candidate> finish_ask(const AskPlan& plan,
                                    const std::vector<rf::PredictionStats>& stats);

  /// Encoded pool rows (row i = features of the i-th remaining candidate)
  /// — what a fused caller scores between plan_ask and finish_ask.
  const rf::FeatureMatrix& pool_features() const { return pool_features_; }

  /// Deadline-expired form of ask(): answers *now*, without the due refit.
  /// When `stale` is a fitted surrogate (the caller's last-good snapshot)
  /// the pool is scored with it — serially, since the worker pool is busy
  /// with the refit being degraded around; otherwise the batch is drawn
  /// uniformly from the pool. Either way selection consumes the dedicated
  /// degraded rng stream, never rng_, so a later non-degraded ask of an
  /// *undisturbed* session replays bit-identically. Deliberately does not
  /// touch model_ or train_: it is safe to call while a refit for this
  /// session is running on another thread.
  std::vector<Candidate> ask_degraded(std::size_t n,
                                      const core::Surrogate* stale);

  /// Reports the measured execution time of an outstanding candidate
  /// (matched by configuration; any order within the batch is accepted,
  /// though replaying tells in ask order is what reproduces the batch
  /// driver bit-for-bit). Returns true when this tell completed the batch,
  /// i.e. a refit is now due. Throws std::invalid_argument for a
  /// configuration that is not outstanding.
  bool tell(const space::Configuration& config, double measured_time);

  /// Reports a *failed* measurement of an outstanding candidate.
  /// `cost_seconds` is the simulated wall-clock the failed attempt burned
  /// (crashed partial run, harness timeout) and is charged to cumulative
  /// cost. Transient kinds (Crash) are retried — the candidate stays
  /// outstanding and a capped exponential backoff wait is charged — until
  /// config().failure.max_retries is exhausted; deterministic kinds
  /// (CompileError, Timeout) drop the candidate into the failed set
  /// immediately. Timeouts additionally record a censored observation.
  /// No failure path ever writes a label into the training set. Throws
  /// std::invalid_argument for unknown candidates or kind == None.
  FailureOutcome tell_failure(const space::Configuration& config,
                              sim::FailureKind kind,
                              double cost_seconds = 0.0);

  /// (Re)fits the surrogate if a completed batch made it due. Kept separate
  /// from tell() so a session manager can run it on a worker thread;
  /// ask() calls it implicitly. Returns true when a fit ran. `cancel` is
  /// polled between forest trees: a cancelled refit throws util::Cancelled,
  /// keeps the previous model_, rolls rng_ back to its pre-fit state (so a
  /// retried fit replays identically), and leaves the refit due.
  bool refit(const util::CancelToken* cancel = nullptr);

  bool refit_due() const { return refit_due_; }

  /// True once the target budget n_max is labeled or the pool is exhausted
  /// (and no tells are outstanding).
  bool done() const;

  SessionPhase phase() const;

  // ---- observers ----
  std::size_t pending_count() const { return pending_.size(); }
  /// Target samples labeled so far (excludes warm-start rows).
  std::size_t num_labeled() const { return train_labels_.size(); }
  std::size_t iteration() const { return iteration_; }
  std::size_t pool_remaining() const { return pool_.size(); }
  double cumulative_cost() const { return cumulative_cost_; }
  /// Smallest measured time so far; NaN before the first tell. Failed and
  /// censored configurations never participate.
  double best_observed() const;

  // ---- failure observers ----
  const std::vector<FailedConfig>& failed() const { return failed_; }
  const std::vector<CensoredObservation>& censored() const {
    return censored_;
  }
  bool is_failed(const space::Configuration& config) const {
    return failed_lookup_.count(config) != 0;
  }
  /// Portion of cumulative_cost() spent on failed attempts and backoff.
  double failure_cost() const { return failure_cost_; }
  /// Transient retries granted across the whole session.
  std::size_t transient_retries() const { return transient_retries_; }

  // ---- degraded-ask observers ----
  /// Asks answered from a stale last-good model snapshot.
  std::size_t degraded_stale_asks() const { return degraded_stale_asks_; }
  /// Asks answered with seeded-random picks (no model available).
  std::size_t degraded_random_asks() const { return degraded_random_asks_; }

  /// Approximate resident heap footprint of the session's dynamic state
  /// (model, encoded pool, training set, histories) — what a
  /// util::ResourceBudget charges per session.
  std::size_t memory_bytes() const;

  const space::ParameterSpace& space() const { return space_; }
  const core::LearnerConfig& config() const { return config_; }
  /// Strategy spec for owned strategies; nullopt for the non-owning form.
  const std::optional<StrategySpec>& strategy_spec() const { return spec_; }
  const rf::Dataset& train() const { return train_; }
  const std::vector<space::Configuration>& train_configs() const {
    return train_configs_;
  }
  const std::vector<double>& train_labels() const { return train_labels_; }
  const std::vector<core::SelectionRecord>& selections() const {
    return selections_;
  }
  /// Fitted surrogate (nullptr-fitted only before the cold start
  /// completes). Shared so LearnerResult can carry it beyond the session.
  std::shared_ptr<core::Surrogate> model() const { return model_; }

  /// Serializes the complete dynamic state (strategy spec, learner config,
  /// rng, training set, remaining pool, pending asks, history, fitted
  /// model). Throws std::logic_error for sessions built around an
  /// externally owned strategy.
  void save(std::ostream& os) const;

  /// Rebuilds a session from a save() stream. `space` must be the space
  /// the checkpoint was taken against (the feature schema is validated).
  static AskTellSession restore(const space::ParameterSpace& space,
                                std::istream& is,
                                util::ThreadPool* workers = nullptr);

 private:
  AskTellSession(const space::ParameterSpace& space,
                 core::LearnerConfig config,
                 std::vector<space::Configuration> pool, std::uint64_t seed,
                 util::ThreadPool* workers);

  void append_label(const Candidate& candidate, double measured_time);
  /// Batch-completion bookkeeping shared by tell and tell_failure: decides
  /// cold-start completion (with failure top-up) and whether a refit is due
  /// (only when the drained batch added labels).
  void on_batch_drained();
  void add_failed(FailedConfig failed);
  void fit_model(const util::CancelToken* cancel);
  /// Re-encodes every pool configuration into pool_features_ (row i =
  /// features of pool_.at(i)).
  void rebuild_pool_features();

  space::ParameterSpace space_;
  core::LearnerConfig config_;
  std::optional<StrategySpec> spec_;      // set <=> strategy is owned
  core::StrategyPtr owned_strategy_;
  const core::SamplingStrategy* strategy_ = nullptr;
  util::ThreadPool* workers_ = nullptr;

  space::CandidatePool pool_;
  /// Encoded pool rows, index-aligned with pool_ across every swap-with-last
  /// removal — the batch the surrogate scores each iteration, encoded once
  /// per session instead of once per iteration.
  rf::FeatureMatrix pool_features_;
  rf::Dataset train_;
  std::size_t warm_rows_ = 0;
  std::vector<space::Configuration> train_configs_;
  std::vector<double> train_labels_;
  std::vector<core::SelectionRecord> selections_;
  std::vector<Candidate> pending_;
  std::vector<FailedConfig> failed_;
  std::unordered_set<space::Configuration, space::ConfigurationHash>
      failed_lookup_;
  std::vector<CensoredObservation> censored_;
  std::shared_ptr<core::Surrogate> model_;
  util::Rng rng_;
  /// Separate stream for degraded asks so they never perturb rng_ (the
  /// replayable Algorithm-1 stream) — and can run while a refit owns rng_.
  util::Rng degraded_rng_;
  std::size_t degraded_stale_asks_ = 0;
  std::size_t degraded_random_asks_ = 0;
  std::size_t iteration_ = 0;
  double cumulative_cost_ = 0.0;
  double failure_cost_ = 0.0;
  std::size_t transient_retries_ = 0;
  /// Labels added since the last completed batch — a drained batch only
  /// schedules a refit when this is non-zero (all-failed batches leave the
  /// training set, and therefore the model, unchanged).
  std::size_t labels_in_batch_ = 0;
  bool refit_due_ = false;
  bool cold_start_done_ = false;
};

}  // namespace pwu::service
