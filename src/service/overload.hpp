// Shared vocabulary of the overload-resilience layer.
//
// The service degrades along three axes, each with its own signal:
//
//   shed     — a cap was hit (sessions, pending asks, refit queue, memory).
//              The request is refused *structurally*: OverloadError carries a
//              retry_after_ms hint, the protocol turns it into
//              {"ok":false,"overloaded":true,...}, and pwu_client backs off
//              and retries. Nothing blocks, nothing aborts.
//   degrade  — an ask's deadline expired before the fresh surrogate was
//              ready. The session answers anyway, from the last-good model
//              snapshot (stale_model) or seeded-random picks during cold
//              start (random), and tags the response so the client knows
//              the prediction quality it got.
//   quarantine — refits for one session repeatedly blew the watchdog
//              budget. The session is fenced off (asks/tells shed) so it
//              cannot keep occupying a refit worker; close/checkpoint still
//              work.

#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/ask_tell_session.hpp"

namespace pwu::service {

/// Caps and budgets for a SessionManager. Every cap follows the same
/// convention: 0 (or a negative deadline) means "unlimited / legacy
/// blocking behavior", so a default-constructed ServiceLimits reproduces
/// the un-governed manager exactly.
struct ServiceLimits {
  /// Live (registered) sessions; 0 = unlimited.
  std::size_t max_sessions = 0;
  /// Candidates one ask may leave outstanding; 0 = unlimited.
  std::size_t max_pending_asks = 0;
  /// Refits allowed in flight across the manager before new ones are
  /// deferred to the next session touch; 0 = unlimited.
  std::size_t max_refit_queue = 0;
  /// Process-wide byte budget for session footprints; 0 = unlimited.
  /// Enforcement evicts idle sessions to checkpoint, so a budget requires
  /// auto-checkpointing to be enabled.
  std::size_t memory_budget_bytes = 0;
  /// Default ask/tell deadline: how long to wait for an in-flight refit
  /// before degrading (ask) or shedding (tell). Negative = block until the
  /// refit settles (legacy behavior); 0 = never wait.
  std::int64_t ask_deadline_ms = -1;
  /// Wall-clock budget per refit before the watchdog cancels it; 0 = off.
  std::int64_t refit_watchdog_ms = 0;
  /// Cancelled refits re-queued before the session is quarantined.
  std::size_t refit_retries = 1;
  /// Hint attached to every OverloadError.
  std::int64_t retry_after_ms = 100;
};

/// A request refused by admission control. Carries the back-off hint the
/// protocol layer forwards to clients.
class OverloadError : public std::runtime_error {
 public:
  OverloadError(const std::string& what, std::int64_t retry_after_ms)
      : std::runtime_error(what), retry_after_ms_(retry_after_ms) {}

  std::int64_t retry_after_ms() const { return retry_after_ms_; }

 private:
  std::int64_t retry_after_ms_;
};

/// How an ask's candidates were produced.
enum class DegradedMode {
  None,        // fresh surrogate (normal path)
  StaleModel,  // last-good surrogate snapshot scored the pool
  Random,      // seeded-random picks (no model available yet)
};

inline const char* to_string(DegradedMode mode) {
  switch (mode) {
    case DegradedMode::None: return "none";
    case DegradedMode::StaleModel: return "stale_model";
    case DegradedMode::Random: return "random";
  }
  return "none";
}

/// An ask answered under a deadline: the candidates plus how they were
/// produced.
struct AskOutcome {
  std::vector<Candidate> candidates;
  DegradedMode degraded = DegradedMode::None;
};

}  // namespace pwu::service
