// Thread-safe registry of named, concurrently running AskTellSessions —
// the stateful heart of the tuning service.
//
// Locking is two-level: a registry mutex guards the name -> entry map, and
// each entry carries its own mutex, so operations on different sessions
// never serialize against each other. When a tell() completes a batch, the
// surrogate refit is submitted to the shared util::ThreadPool and joined
// lazily by the next operation on that session — refits of different
// sessions proceed in parallel even when all requests arrive on one
// protocol thread (the pwu_serve stdin loop).

#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/active_learner.hpp"
#include "service/ask_tell_session.hpp"
#include "service/overload.hpp"
#include "util/contracts.hpp"
#include "util/resource_budget.hpp"
#include "util/thread_pool.hpp"
#include "util/watchdog.hpp"

namespace pwu::service {

/// Everything needed to (re)create a session deterministically. One master
/// seed drives the pool split and both session streams, in the same
/// derivation order core::run_experiment uses for its first repeat — so a
/// service session is label-for-label comparable to a batch run.
struct SessionSpec {
  std::string workload;
  std::string strategy = "pwu";
  double alpha = 0.05;
  core::LearnerConfig learner;
  std::size_t pool_size = 1500;
  /// Held-out configurations reserved by the pool split (the service never
  /// measures them; a client running its own evaluation uses them).
  std::size_t test_size = 0;
  std::uint64_t seed = 42;
};

struct SessionStatus {
  std::string name;
  std::string workload;
  std::string strategy;
  double alpha = 0.0;
  std::string phase;
  std::size_t labeled = 0;
  std::size_t n_max = 0;
  std::size_t pending = 0;
  std::size_t iteration = 0;
  std::size_t pool_remaining = 0;
  double cumulative_cost = 0.0;
  double best_observed = 0.0;  // NaN before the first tell
  bool done = false;
  /// Seed of the measurement stream a simulated client must use to
  /// reproduce the equivalent batch run (core::ActiveLearner::run).
  std::uint64_t measure_seed = 0;
};

struct TellOutcome {
  std::size_t labeled = 0;
  bool batch_complete = false;  // a refit was scheduled (or ran inline)
  bool done = false;
  /// Non-empty when this tell triggered an auto-checkpoint (the file it
  /// was atomically written to).
  std::string checkpoint_path;
};

struct FailureTellOutcome {
  FailureAction action = FailureAction::Dropped;
  std::size_t attempts = 0;
  double backoff_seconds = 0.0;
  bool batch_complete = false;
  bool done = false;
  /// Failed-set size after this report.
  std::size_t failed_total = 0;
  std::string checkpoint_path;
};

/// Result of a file-based resume, including whether crash recovery had to
/// fall back to the previous-good checkpoint copy.
struct ResumeOutcome {
  SessionStatus status;
  bool used_fallback = false;
  /// The file that actually supplied the state.
  std::string source_path;
};

/// One session's row in a health() report.
struct SessionHealth {
  std::string name;
  /// "live", "evicted" (checkpointed out under memory pressure),
  /// "quarantined" (repeated refit timeouts), or "busy" (another thread
  /// holds the session; health never blocks to find out more).
  std::string state;
  /// Warm-standby shadow copy of a session homed on another worker:
  /// replicated into, never listed, promoted on the primary's death.
  bool shadow = false;
  std::string phase;  // empty when busy or evicted
  std::size_t pending = 0;
  bool refit_in_flight = false;
  bool refit_deferred = false;
  std::size_t footprint_bytes = 0;
  std::size_t refit_timeouts = 0;
  std::size_t degraded_stale_asks = 0;
  std::size_t degraded_random_asks = 0;
};

/// One session's slot in an ask_fused() call.
struct FusedAskRequest {
  std::string session;
  /// Batch size (0 = the session default), as in ask().
  std::size_t count = 0;
};

/// Per-request outcome of ask_fused(). Exactly one of {outcome, error} is
/// meaningful: a failed request reports the error it would have thrown
/// from ask_with_deadline without disturbing its siblings.
struct FusedAskResult {
  std::string session;
  AskOutcome outcome;
  std::string error;
  /// The error was an OverloadError (shed), not a hard failure.
  bool overloaded = false;
};

/// Non-blocking process-level health snapshot (the `health` protocol op).
struct HealthReport {
  std::size_t sessions_live = 0;
  std::size_t sessions_evicted = 0;
  std::size_t sessions_quarantined = 0;
  std::size_t sessions_busy = 0;
  /// Warm-standby shadows hosted here (counted in the states above too).
  std::size_t sessions_shadow = 0;
  std::size_t refits_in_flight = 0;
  std::size_t refits_deferred = 0;
  std::size_t budget_used_bytes = 0;
  std::size_t budget_capacity_bytes = 0;  // 0 = unlimited
  std::uint64_t overloaded_sheds = 0;
  std::uint64_t degraded_stale_asks = 0;
  std::uint64_t degraded_random_asks = 0;
  std::uint64_t evictions = 0;
  std::uint64_t lazy_resumes = 0;
  std::uint64_t watchdog_timeouts = 0;
  /// Fingerprint groups whose pool scoring ran as one fused pass, and the
  /// sessions scored inside such passes (ask_fused).
  std::uint64_t fused_groups = 0;
  std::uint64_t fused_scored_asks = 0;
  /// Duplicated mutating ops answered from the idempotency window instead
  /// of re-executed, and the current fencing epoch (DESIGN.md §15).
  std::uint64_t idem_replays = 0;
  std::uint64_t fence_epoch = 0;
  std::vector<SessionHealth> sessions;
};

class SessionManager {
 public:
  /// `workers` parallelizes surrogate refits across sessions and within a
  /// forest fit; nullptr runs everything on the calling thread. `limits`
  /// turns on admission control / degraded asks / budgets; the default
  /// (all zeros, deadline -1) reproduces the un-governed legacy behavior
  /// exactly. `ticks` injects a clock for the refit watchdog — tests pass
  /// a util::ManualTickSource; nullptr uses the OS monotonic clock.
  explicit SessionManager(util::ThreadPool* workers = nullptr,
                          ServiceLimits limits = {},
                          const util::TickSource* ticks = nullptr);
  /// Joins outstanding background refits.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Creates a named session against a registry workload. Throws
  /// std::invalid_argument for duplicate names or unknown workloads.
  SessionStatus create(const std::string& name, const SessionSpec& spec);

  /// Next batch of candidates (count 0 = the session default). Uses the
  /// configured default deadline (limits().ask_deadline_ms); with the
  /// default limits this blocks on any in-flight refit, exactly like the
  /// pre-overload manager.
  std::vector<Candidate> ask(const std::string& name, std::size_t count = 0);

  /// ask() with an explicit deadline budget in milliseconds. Negative =
  /// block until the fresh surrogate is ready; otherwise, when an
  /// in-flight (or deferred) refit cannot settle within the budget, the
  /// batch is served degraded — scored by the last-good model snapshot
  /// (DegradedMode::StaleModel) or drawn seeded-random when no snapshot
  /// exists (DegradedMode::Random). Throws OverloadError when the session
  /// is quarantined or the request exceeds the pending-ask cap.
  AskOutcome ask_with_deadline(const std::string& name, std::size_t count,
                               std::int64_t deadline_ms);

  /// Serves several sessions' asks in one call, coalescing the surrogate
  /// scoring passes of sessions that share a workload fingerprint (same
  /// workload, pool sizing, and feature schema) into one flattened
  /// (session, row-block) parallel region — one trip through the worker
  /// pool instead of one per session. Protocol-invisible: every session
  /// consumes its own rng stream exactly as an individual
  /// ask_with_deadline(name, count, deadline_ms) would, so the returned
  /// candidate sequences are bit-identical to unfused asks (enforced by
  /// tests/test_ask_fusion.cpp). Per-request failures (unknown session,
  /// quarantine, pending-ask cap) are reported in that request's slot and
  /// never disturb the others. Duplicate session names are rejected (the
  /// second slot errors): a session cannot answer two asks at once anyway.
  std::vector<FusedAskResult> ask_fused(
      const std::vector<FusedAskRequest>& requests, std::int64_t deadline_ms);

  /// Reports one measured label. The refit triggered by a completed batch
  /// runs on the worker pool when one is available.
  TellOutcome tell(const std::string& name,
                   const space::Configuration& config, double measured_time);

  /// Reports one *failed* measurement (see AskTellSession::tell_failure).
  FailureTellOutcome tell_failure(const std::string& name,
                                  const space::Configuration& config,
                                  sim::FailureKind kind,
                                  double cost_seconds = 0.0);

  SessionStatus status(const std::string& name) const;
  /// Live sessions, shadow replicas excluded: a shadow is infrastructure
  /// state, and listing it would double-count the session fleet-wide.
  std::vector<SessionStatus> list() const;

  /// Marks (or clears) a session as a warm-standby shadow. Shadows are
  /// fully live AskTellSessions — asks/tells apply normally via the
  /// `replicate` op — but list() skips them and health() labels them, so
  /// an aggregating router never sees the same session twice. Promotion
  /// is just mark_shadow(name, false): the state is already current.
  void mark_shadow(const std::string& name, bool shadow);
  bool is_shadow(const std::string& name) const;

  /// Process-level health snapshot: per-session state, queue depths,
  /// budget usage, shed/degraded counters. Never blocks on a busy session
  /// and never triggers a lazy resume (health is a probe, not a touch).
  HealthReport health() const;

  const ServiceLimits& limits() const { return limits_; }

  /// Removes the session; returns false when the name is unknown.
  bool close(const std::string& name);

  /// Serializes the full session state (spec header + AskTellSession
  /// checkpoint) so a restarted server loses no labels.
  void checkpoint(const std::string& name, std::ostream& os) const;

  /// Recreates a session from a checkpoint() stream under `name`. The
  /// workload is rebuilt from the registry; resumed random-forest sessions
  /// continue bit-identically.
  SessionStatus resume(const std::string& name, std::istream& is);

  /// Atomically writes a checkpoint() image of the session to `path`
  /// (util::atomic_write_file: tmp + CRC footer + fsync + rename, previous
  /// good copy rotated to its .bak). Returns the path written.
  std::string checkpoint_to_file(const std::string& name,
                                 const std::string& path) const;

  /// resume() from a file written by checkpoint_to_file, falling back to
  /// the .bak copy — with a warning logged — when the newest copy is
  /// truncated or corrupt. Throws std::runtime_error when no good copy
  /// exists.
  ResumeOutcome resume_from_file(const std::string& name,
                                 const std::string& path);

  /// Serializes the session into one in-memory checkpoint image — the
  /// migration transfer format. Identical bytes to checkpoint(); exists so
  /// the protocol layer can chunk the image through the line-length cap.
  std::string export_image(const std::string& name) const;

  /// Staged, chunked import of an export_image() (the receiving side of a
  /// migration): import_append accumulates chunks under `name`,
  /// import_commit atomically turns the staged bytes into a live session
  /// (optionally a shadow) and clears the staging slot, import_abort
  /// discards it. A commit with no staged bytes or a malformed image
  /// throws and leaves the registry untouched.
  void import_append(const std::string& name, const std::string& chunk);
  SessionStatus import_commit(const std::string& name, bool shadow);
  void import_abort(const std::string& name);

  /// Auto-checkpoint every `every_tells` tells per session, to
  /// `<directory>/<session>.ckpt`. 0 disables. Session names are validated
  /// to be filesystem-safe at create/resume time, so the path is always
  /// well-formed.
  void enable_auto_checkpoint(std::string directory, std::size_t every_tells);

  /// Graceful-shutdown barrier: joins every in-flight background refit and
  /// (when auto-checkpointing is enabled) writes a final checkpoint of
  /// every session, so nothing told before shutdown is lost.
  void drain();

  std::size_t size() const;

  // ---- wire-level idempotency (DESIGN.md §15) ------------------------------

  /// The remembered reply for a (session, key) pair, or nullopt when the
  /// key is unseen. A hit means the request is a duplicate (retry after a
  /// lost/corrupted reply, or a transport-level duplication) and the
  /// original reply must be replayed instead of re-executing the op.
  std::optional<std::string> idempotent_reply(const std::string& session,
                                              const std::string& key);

  /// Remembers `reply` for a (session, key) pair. The window is bounded
  /// per session (oldest key evicted past the cap) and dropped wholesale
  /// when the session closes.
  void remember_reply(const std::string& session, const std::string& key,
                      std::string reply);

  /// Per-session idempotency-window capacity in keys (default 32; 0
  /// disables dedup entirely).
  void set_idempotency_window(std::size_t per_session_keys);
  std::size_t idempotency_window() const;

  // ---- fencing epochs (DESIGN.md §15) --------------------------------------

  /// Highest ring epoch this server has seen. Mutating ops stamped with a
  /// lower epoch are rejected by the protocol layer as `fenced`.
  std::uint64_t fence_epoch() const {
    return fence_epoch_.load(std::memory_order_relaxed);
  }

  /// Raises the fence monotonically (lower values are ignored).
  void raise_fence(std::uint64_t epoch);

 private:
  struct Entry {
    mutable std::mutex mutex;
    /// Serializes checkpoint-file writes for this entry so tell() can
    /// commit its serialized image *after* releasing `mutex` (no file I/O
    /// under the session lock). Ordered strictly after `mutex`: it may be
    /// taken while `mutex` is held (eviction, drain), never the reverse.
    mutable std::mutex ckpt_write_mutex;
    /// Null while the session is evicted to checkpoint (evicted == true);
    /// ensure_resumed() restores it on the next touch.
    std::unique_ptr<AskTellSession> session;
    SessionSpec spec;
    std::uint64_t measure_seed = 0;
    /// Pending background refit; settled before the next operation.
    std::future<void> refit PWU_GUARDED_BY(mutex);
    /// Tells since the last auto-checkpoint.
    std::size_t tells_since_checkpoint PWU_GUARDED_BY(mutex) = 0;
    /// Monotone stamp assigned to each serialized checkpoint image.
    std::uint64_t ckpt_seq PWU_GUARDED_BY(mutex) = 0;
    /// Stamp of the newest image actually written; commit_checkpoint
    /// skips stale pending images so a delayed writer can never clobber a
    /// newer checkpoint (or an eviction image).
    std::uint64_t ckpt_written_seq PWU_GUARDED_BY(ckpt_write_mutex) = 0;
    /// Model snapshot taken just before each refit starts — what a
    /// deadline-expired ask scores the pool with. Shared: the snapshot
    /// stays valid even while the refit replaces session->model().
    std::shared_ptr<core::Surrogate> last_good PWU_GUARDED_BY(mutex);
    /// Token of the in-flight refit; requested when the watchdog expires.
    std::shared_ptr<util::CancelToken> refit_cancel PWU_GUARDED_BY(mutex);
    /// Armed for the lifetime of each in-flight refit (internally locked).
    util::Watchdog refit_watchdog;
    /// Refits of this session cancelled by the watchdog so far.
    std::size_t refit_timeouts PWU_GUARDED_BY(mutex) = 0;
    /// A due refit could not be queued (refit-queue cap); re-attempted on
    /// the next touch. The fit itself stays recorded in the session's
    /// refit_due flag, so deferral survives checkpoint/eviction.
    bool refit_deferred PWU_GUARDED_BY(mutex) = false;
    /// Repeated refit timeouts exceeded limits_.refit_retries: asks and
    /// tells are shed; status/close/checkpoint still work.
    bool quarantined PWU_GUARDED_BY(mutex) = false;
    /// Session state lives in `<checkpoint dir>/<name>.ckpt`, not memory.
    std::atomic<bool> evicted{false};
    /// Warm-standby shadow replica (see mark_shadow).
    std::atomic<bool> shadow{false};
    /// Last memory_bytes() charged to the process budget.
    std::atomic<std::size_t> footprint{0};
    /// Logical LRU stamp (global touch counter, not wall-clock).
    std::atomic<std::uint64_t> last_touch{0};
  };

  std::shared_ptr<Entry> find(const std::string& name) const;
  SessionStatus status_locked(const std::string& name,
                              const Entry& entry) const;
  static void join_refit(Entry& entry);
  /// Writes the checkpoint image (spec header + session save) of a locked
  /// entry into `os`.
  static void serialize_locked(const Entry& entry, std::ostream& os);
  /// Snapshot of the auto-checkpoint settings, read under registry_mutex_.
  /// Callers take it *before* locking an entry mutex: the registry mutex is
  /// always ordered before entry mutexes, never acquired under one.
  struct AutoCheckpointPolicy {
    std::string dir;
    std::size_t every = 0;
  };
  AutoCheckpointPolicy auto_checkpoint_policy() const;
  /// A checkpoint image serialized under entry.mutex whose file write is
  /// deferred until after the lock is released (commit_checkpoint). An
  /// empty path means "nothing to write".
  struct PendingCheckpoint {
    std::string path;
    std::string image;
    std::uint64_t seq = 0;
    /// Explicit checkpoint_to_file requests always write, even when an
    /// auto-checkpoint with a newer stamp has already landed: the caller
    /// asked for a file at that path and must get one.
    bool forced = false;
  };
  /// Runs the every-N auto-checkpoint policy on a locked entry after a
  /// tell. Serializes only — returns the pending image for the caller to
  /// commit outside entry.mutex. Takes the policy snapshot by value so it
  /// never touches registry_mutex_ while the caller holds entry.mutex.
  static PendingCheckpoint maybe_auto_checkpoint(
      const std::string& name, Entry& entry,
      const AutoCheckpointPolicy& policy);
  /// Writes a pending image under entry.ckpt_write_mutex (caller must NOT
  /// hold entry.mutex). Newest wins: a pending image staler than the last
  /// committed one is dropped unless `forced`.
  static void commit_checkpoint(Entry& entry,
                                const PendingCheckpoint& pending);
  /// Submits the session's due refit to the worker pool (caller holds
  /// entry->mutex). The task captures the entry shared_ptr — never a raw
  /// session pointer — so close()/~SessionManager()/eviction cannot free
  /// state under a running fit. Sets entry->refit_deferred instead when
  /// the refit-queue cap is full.
  void schedule_refit(const std::shared_ptr<Entry>& entry) const;
  /// Brings the entry's refit to rest within `deadline_ms` (caller holds
  /// entry->mutex). Returns true when no refit is outstanding afterwards
  /// (the model is fresh); false when the caller should degrade. Harvests
  /// watchdog-cancelled fits: requeues them up to limits_.refit_retries,
  /// then marks the entry quarantined.
  bool settle_refit(const std::shared_ptr<Entry>& entry,
                    std::int64_t deadline_ms) const;
  /// Lazily restores an evicted session from its checkpoint file (caller
  /// holds entry->mutex).
  void ensure_resumed(const std::string& name, Entry& entry,
                      const AutoCheckpointPolicy& policy) const;
  /// Recomputes the session footprint and charges it to the budget
  /// (caller holds entry->mutex with no refit in flight).
  void update_footprint(const std::string& name, Entry& entry) const;
  /// Evicts least-recently-touched idle sessions to checkpoint until the
  /// budget is back under capacity. Takes no entry locks it cannot get
  /// without blocking; callers must hold no locks.
  void enforce_budget();
  /// Stamps the entry's LRU counter.
  void touch(Entry& entry) const;
  /// Counts a shed and throws OverloadError with the configured hint.
  [[noreturn]] void shed(const std::string& what) const;

  mutable std::mutex registry_mutex_;
  std::map<std::string, std::shared_ptr<Entry>> sessions_ PWU_GUARDED_BY(registry_mutex_);
  util::ThreadPool* workers_ = nullptr;
  ServiceLimits limits_;
  util::SteadyTickSource default_ticks_;
  const util::TickSource* ticks_ = nullptr;
  mutable util::ResourceBudget budget_;
  std::string auto_checkpoint_dir_ PWU_GUARDED_BY(registry_mutex_);
  std::size_t auto_checkpoint_every_ PWU_GUARDED_BY(registry_mutex_) = 0;
  /// Partially transferred import images, keyed by session name (see
  /// import_append/import_commit).
  std::map<std::string, std::string> import_staging_ PWU_GUARDED_BY(registry_mutex_);
  mutable std::atomic<std::size_t> refits_in_flight_{0};
  mutable std::atomic<std::uint64_t> touch_clock_{0};
  mutable std::atomic<std::uint64_t> overloaded_sheds_{0};
  mutable std::atomic<std::uint64_t> degraded_stale_total_{0};
  mutable std::atomic<std::uint64_t> degraded_random_total_{0};
  mutable std::atomic<std::uint64_t> evictions_{0};
  mutable std::atomic<std::uint64_t> lazy_resumes_{0};
  mutable std::atomic<std::uint64_t> watchdog_timeouts_{0};
  mutable std::atomic<std::uint64_t> fused_groups_{0};
  mutable std::atomic<std::uint64_t> fused_scored_{0};

  /// Idempotency windows live beside the registry (own leaf mutex, never
  /// held together with registry or entry mutexes) so dedup bookkeeping
  /// cannot perturb the session locking order. `order` is a bounded FIFO
  /// of keys (capacity idem_window_cap_), oldest evicted first.
  struct IdemWindow {
    std::map<std::string, std::string> replies;
    std::vector<std::string> order;
  };
  mutable std::mutex idem_mutex_;
  std::map<std::string, IdemWindow> idem_windows_ PWU_GUARDED_BY(idem_mutex_);
  std::size_t idem_window_cap_ PWU_GUARDED_BY(idem_mutex_) = 32;
  mutable std::atomic<std::uint64_t> idem_replays_{0};
  std::atomic<std::uint64_t> fence_epoch_{0};
};

}  // namespace pwu::service
