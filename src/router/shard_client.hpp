// Per-shard connection of the router tier.
//
// Wraps a service::Transport with the policies a front-end needs:
//
//   pipelining  — call_pipelined() writes a window of requests before
//                 draining the (in-order) responses, so N independent
//                 sessions on one shard cost one round of syscalls and the
//                 worker process computes while later requests are in its
//                 stdin buffer.
//   overload    — a structured {"ok":false,"overloaded":true} refusal is
//                 retried up to `retries` times, honoring the server's
//                 retry_after_ms hint jittered to [0.5, 1.5)x from a
//                 seeded stream (a recovering worker must not be
//                 stampeded, and tests must be reproducible). Safe for
//                 every op: admission control sheds *before* mutating.
//   fail-fast   — a connection-level failure (dead worker, response past
//                 the transport deadline) marks the client dead and
//                 surfaces as service::TransportError. The router treats
//                 that as shard death and fails over from checkpoints; a
//                 wedged worker is indistinguishable from a crashed one
//                 and is handled the same way.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "service/transport.hpp"
#include "util/contracts.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace pwu::router {

struct ShardClientOptions {
  /// Structured-overload retries per request (transport failures are never
  /// retried — they are shard death).
  int retries = 3;
  /// Fallback backoff when the server sends no retry_after_ms hint.
  int backoff_ms = 50;
  /// Seed of the jitter stream (independent of all tuning streams).
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ULL;
};

class ShardClient {
 public:
  ShardClient(std::string name, std::unique_ptr<service::Transport> transport,
              ShardClientOptions options = {});

  const std::string& name() const { return name_; }
  bool alive() const { return alive_ && transport_->alive(); }

  /// One request round-trip with overload retry. Throws
  /// service::TransportError on connection death (after marking the
  /// client dead); returns the parsed response otherwise (including
  /// {"ok":false} protocol errors — those are the caller's to interpret).
  util::json::Value call(const util::json::Value& request);

  /// Pipelined window: sends every request, then drains the responses in
  /// order. An overloaded response is retried individually (the rest of
  /// the window is already in flight). On transport failure mid-window
  /// the client is marked dead and the partial result says how far the
  /// drain got — the router resolves the unanswered tail through
  /// failover. Never throws for the window itself.
  struct PipelineResult {
    /// In-order responses for requests [0, responses.size()).
    std::vector<util::json::Value> responses;
    /// True when the connection died before the window drained; requests
    /// [responses.size(), window) are unanswered.
    bool died = false;
    std::string error;
  };
  PipelineResult call_pipelined(
      const std::vector<util::json::Value>& requests);

  /// Requests answered / transport failures / overload retries so far.
  std::uint64_t requests() const { return requests_; }
  std::uint64_t overload_retries() const { return overload_retries_; }

  /// Marks the shard dead without touching the transport (used when a
  /// sibling operation already detected the death).
  void mark_dead() { alive_ = false; }

 private:
  /// Re-requests `request` while the response is a structured overload
  /// refusal, sleeping the jittered hint between attempts.
  util::json::Value retry_overloaded(const util::json::Value& request,
                                     util::json::Value response);

  std::string name_;
  std::unique_ptr<service::Transport> transport_;
  ShardClientOptions options_;
  util::Rng jitter_ PWU_RNG_STREAM(retry_jitter);
  bool alive_ = true;
  std::uint64_t requests_ = 0;
  std::uint64_t overload_retries_ = 0;
};

}  // namespace pwu::router
