// Per-shard connection of the router tier.
//
// Wraps a service::Transport with the policies a front-end needs:
//
//   pipelining  — call_pipelined() writes a window of requests before
//                 draining the (in-order) responses, so N independent
//                 sessions on one shard cost one round of syscalls and the
//                 worker process computes while later requests are in its
//                 stdin buffer.
//   overload    — a structured {"ok":false,"overloaded":true} refusal is
//                 retried up to `retries` times, honoring the server's
//                 retry_after_ms hint jittered to [0.5, 1.5)x from a
//                 seeded stream (a recovering worker must not be
//                 stampeded, and tests must be reproducible). Safe for
//                 every op: admission control sheds *before* mutating.
//   fail-fast   — a connection-level failure (dead worker, response past
//                 the transport deadline) marks the client dead and
//                 surfaces as service::TransportError. The router treats
//                 that as shard death and fails over from checkpoints; a
//                 wedged worker is indistinguishable from a crashed one
//                 and is handled the same way.
//   resilience  — every request is stamped with a unique "rid" and replies
//                 are matched by the echoed rid, so a duplicated or
//                 reordered reply (an unreliable wire, a server-side
//                 idempotent replay) re-syncs instead of desyncing the
//                 window. A service::FrameError (corrupt/lost reply on a
//                 checksummed connection) re-sends the unanswered requests
//                 with the same rid and idempotency key, bounded by
//                 `retries`. Mutating requests that carry no "idem" yet get
//                 one stamped here; when an epoch provider is wired (the
//                 router's ring), the current fencing epoch is stamped
//                 into every request at *send* time — replayed requests
//                 are restamped, so a post-failover replay never fences
//                 itself. rid/epoch stamps are stripped from returned
//                 responses; callers see the same payloads as before.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "service/transport.hpp"
#include "util/contracts.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace pwu::router {

struct ShardClientOptions {
  /// Structured-overload retries per request (transport failures are never
  /// retried — they are shard death).
  int retries = 3;
  /// Fallback backoff when the server sends no retry_after_ms hint.
  int backoff_ms = 50;
  /// Seed of the jitter stream (independent of all tuning streams).
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ULL;
};

class ShardClient {
 public:
  ShardClient(std::string name, std::unique_ptr<service::Transport> transport,
              ShardClientOptions options = {});

  const std::string& name() const { return name_; }
  bool alive() const { return alive_ && transport_->alive(); }

  /// One request round-trip with overload retry. Throws
  /// service::TransportError on connection death (after marking the
  /// client dead); returns the parsed response otherwise (including
  /// {"ok":false} protocol errors — those are the caller's to interpret).
  util::json::Value call(const util::json::Value& request);

  /// Pipelined window: sends every request, then drains the responses in
  /// order. An overloaded response is retried individually (the rest of
  /// the window is already in flight). On transport failure mid-window
  /// the client is marked dead and the partial result says how far the
  /// drain got — the router resolves the unanswered tail through
  /// failover. Never throws for the window itself.
  struct PipelineResult {
    /// In-order responses for requests [0, responses.size()).
    std::vector<util::json::Value> responses;
    /// True when the connection died before the window drained; requests
    /// [responses.size(), window) are unanswered.
    bool died = false;
    std::string error;
  };
  PipelineResult call_pipelined(
      const std::vector<util::json::Value>& requests);

  /// Requests answered / transport failures / overload retries so far.
  std::uint64_t requests() const { return requests_; }
  std::uint64_t overload_retries() const { return overload_retries_; }
  /// Replies that failed frame verification and were retried.
  std::uint64_t corrupt_replies() const { return corrupt_replies_; }

  /// Marks the shard dead without touching the transport (used when a
  /// sibling operation already detected the death).
  void mark_dead() { alive_ = false; }

  /// Wires the fencing-epoch source (the router's ring). Every request is
  /// stamped with the *current* epoch at send time.
  void set_epoch_provider(std::function<std::uint64_t()> provider) {
    epoch_provider_ = std::move(provider);
  }

  /// Best-effort round-trip that ignores the dead-mark: the router's
  /// fence sweep uses it to reach a shard that was declared dead by a
  /// partition but whose process survived. Returns nullopt when the
  /// transport observed a real failure (never respawns the worker) or the
  /// request fails at the connection level; never changes alive().
  std::optional<util::json::Value> probe(const util::json::Value& request);

 private:
  /// Re-requests `request` while the response is a structured overload
  /// refusal, sleeping the jittered hint between attempts.
  util::json::Value retry_overloaded(const util::json::Value& request,
                                     util::json::Value response);

  /// Stamps rid / epoch / missing idem onto a copy (see header comment);
  /// returns the copy and the rid via `rid_out`.
  util::json::Value stamp(const util::json::Value& request,
                          std::string& rid_out);

  /// One rid-matched round-trip with FrameError resend (no overload
  /// handling, no alive_ bookkeeping).
  util::json::Value roundtrip(const util::json::Value& request);

  /// Jittered pause before a frame-corruption resend.
  void frame_backoff();

  std::string name_;
  std::unique_ptr<service::Transport> transport_;
  ShardClientOptions options_;
  util::Rng jitter_ PWU_RNG_STREAM(retry_jitter);
  std::function<std::uint64_t()> epoch_provider_;
  bool alive_ = true;
  std::uint64_t requests_ = 0;
  std::uint64_t overload_retries_ = 0;
  std::uint64_t corrupt_replies_ = 0;
  std::uint64_t rid_counter_ = 0;
};

}  // namespace pwu::router
