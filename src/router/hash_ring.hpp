// Deterministic consistent-hash ring mapping session names to shards.
//
// Each shard contributes `vnodes` virtual points placed by FNV-1a (plus a
// splitmix64 finalizer for high-bit dispersion) over "<shard>#<vnode>"; a
// key is owned by the first point clockwise of its finalized hash. The
// properties the router (and the test suite) rely on:
//
//   deterministic  — placement is a pure function of (members, vnodes);
//                    identical across processes, runs, and platforms
//                    (FNV-1a, never std::hash).
//   balanced       — with enough vnodes, keys spread across shards within
//                    a small factor of the mean.
//   minimal        — removing a shard moves only the keys it owned
//                    (each to its ring successor); adding one moves only
//                    the keys the new shard now owns. Every other
//                    key -> shard assignment is untouched, which is what
//                    lets the router re-home a dead shard's sessions
//                    without disturbing the survivors'.
//
// Ring points are keyed by (hash, shard) pairs, so vnode hash collisions
// have a deterministic order instead of an insertion-order one.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace pwu::router {

/// FNV-1a 64-bit — the ring's (and the lint baseline's) portable hash.
std::uint64_t fnv1a64(const std::string& text);

class HashRing {
 public:
  /// `vnodes` virtual points per shard; more points = tighter balance at
  /// the cost of a larger ring map. 128 keeps the spread within ~25% of
  /// the mean for small fleets.
  explicit HashRing(std::size_t vnodes = 128);

  /// Adds a shard's vnodes. Adding a present member is a no-op.
  void add(const std::string& shard);

  /// Growth-contract entry point: adds a shard and reports whether the
  /// membership actually changed. The minimal-remapping guarantee is the
  /// same one `add` provides — only keys whose clockwise-first point now
  /// belongs to the new shard move (each *from* its previous owner), every
  /// other key -> shard assignment is untouched, and a later remove() of
  /// the same shard restores the original placement exactly. The router's
  /// live-growth path calls this so migration can enumerate precisely the
  /// sessions that change hands.
  bool add_node(const std::string& shard);

  /// Removes a shard's vnodes; returns false when it was not a member.
  bool remove(const std::string& shard);

  bool contains(const std::string& shard) const;
  bool empty() const { return members_.empty(); }
  std::size_t size() const { return members_.size(); }
  std::size_t vnodes() const { return vnodes_; }

  /// Fencing epoch: bumped by every membership change (failover removal,
  /// growth, shutdown drain). The router stamps it into forwarded
  /// requests; a shard that has seen epoch E rejects writes carrying less
  /// (DESIGN.md §15), so a partitioned stale primary cannot mutate state
  /// after the membership change that replaced it.
  std::uint64_t epoch() const { return epoch_; }

  /// Members in sorted order (deterministic listing for health reports).
  std::vector<std::string> members() const;

  /// The shard owning `key`. Throws std::logic_error on an empty ring.
  const std::string& owner(const std::string& key) const;

  /// The first `n` *distinct* shards clockwise of `key` — owner first,
  /// then its successors (the failover order: owners(key, 2)[1] is the
  /// shard that inherits `key` if its owner dies). Returns fewer when the
  /// ring has fewer members.
  std::vector<std::string> owners(const std::string& key,
                                  std::size_t n) const;

 private:
  std::size_t vnodes_;
  /// (point hash, shard) -> shard. The shard in the key makes collision
  /// order deterministic; the mapped value avoids re-deriving it.
  std::map<std::pair<std::uint64_t, std::string>, const std::string*> ring_;
  /// Stable storage for member names (ring_ points into this map's keys).
  std::map<std::string, bool> members_;
  std::uint64_t epoch_ = 0;
};

}  // namespace pwu::router
