// Front-end of the sharded serving tier: speaks the JSON-lines protocol
// to clients and fans requests out to N backend pwu_serve workers over
// the same protocol.
//
// Placement  — session names map to shards through a deterministic
//              consistent-hash ring (HashRing); membership shrinks on
//              shard death and grows through add_shard (the "grow" op),
//              which migrates exactly the sessions the new shard claims
//              — checkpoint image + replay tail over the transport —
//              before flipping ring ownership atomically. Sessions the
//              new shard does not claim never move.
// Replication— every worker auto-checkpoints each session to its own
//              directory after every tell (the PR-4 atomic-write
//              substrate); the router additionally writes a baseline
//              checkpoint right after each create/resume/re-home so even
//              a session that never told a label can fail over.
// Failover   — a connection-level failure (dead or wedged worker)
//              declares the shard down: it leaves the ring and every
//              session homed there is resumed — bit-identically, from its
//              newest good checkpoint — onto its new ring owner. The
//              request that *detected* the death is then resolved
//              exactly-once:
//                * a success-tell whose label the dying worker already
//                  applied and checkpointed (the worker checkpoints
//                  before the inline refit, so "killed mid-fit" lands
//                  here) is answered synthetically from the resumed
//                  status — replaying it would double-apply the label;
//                * everything else (asks, not-yet-applied tells, status,
//                  ...) is replayed verbatim on the new home.
//              Sessions that cannot be re-homed yet (no survivor, target
//              overloaded) are parked: their requests answer
//              {"ok":false,"redirected":true,"retry_after_ms":N} until a
//              later touch re-homes them — clients back off and retry,
//              never observing a lost session.
// Warm standby— with options.standby, each session's ring successor hosts
//              a live *shadow*: the router streams every acked mutating
//              op (wrapped in the `replicate` protocol op, see
//              router/replication.hpp) and the standby re-executes it,
//              so shadow state tracks the client-visible ack horizon
//              exactly. On primary death failover *promotes* the shadow
//              — one `promote` round-trip, no checkpoint load — after
//              verifying the flushed ack horizon against the promoted
//              status. A stale shadow (digest/labeled mismatch, missed
//              records, dead standby) is never promoted; those sessions
//              take the cold checkpoint path above unchanged.
//
// The router is deliberately single-threaded and wall-clock-free in its
// decision logic (health probing is request-count based), so multi-
// process chaos runs are deterministic. Failure-report tells
// (status != "ok") are replayed at-least-once on failover: they never
// enter the training set, but the per-candidate attempt counter may count
// one extra attempt for the crashed instant.

#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "router/hash_ring.hpp"
#include "router/replication.hpp"
#include "router/shard_client.hpp"
#include "service/transport.hpp"
#include "util/json.hpp"

namespace pwu::router {

struct RouterOptions {
  /// Virtual nodes per shard on the placement ring.
  std::size_t vnodes = 128;
  /// Back-off hint attached to redirected responses.
  std::int64_t retry_after_ms = 100;
  /// When false, an in-flight request interrupted by shard death answers
  /// redirected instead of being replayed on the new home (already-applied
  /// tells are still answered synthetically — a client retry of those
  /// would double-apply). Chaos tests use this to exercise the client's
  /// redirected handling.
  bool replay_in_flight = true;
  /// Probe every up shard's health after this many handled requests
  /// (deterministic cadence; 0 = probe only on demand via the health op).
  std::size_t probe_every = 0;
  /// Acked-but-not-yet-durable asks above this count force an explicit
  /// checkpoint instead of growing the replay log without bound.
  std::size_t max_replay_log = 64;
  /// Warm-standby replication: stream acked ops to each session's ring
  /// successor and promote its live shadow on primary death.
  bool standby = false;
  /// Flush the replication outbox once this many acked ops are queued
  /// (lower = smaller promotion-time flush, more replication round-trips).
  std::size_t replication_lag_max = 4;
  /// Speak checksummed `pwu1` framing to the shards: every ShardSpec
  /// transport (initial fleet and grown shards alike) is wrapped in a
  /// service::FramedTransport, so corruption on the router<->worker hop is
  /// detected and retried instead of mis-parsed.
  bool frame = false;
};

/// One backend worker: a transport speaking the JSON-lines protocol and
/// the directory its auto-checkpoints land in (which failover reads).
struct ShardSpec {
  std::string name;
  std::unique_ptr<service::Transport> transport;
  std::string checkpoint_dir;
};

struct RouterStats {
  std::uint64_t requests = 0;     // client requests handled
  std::uint64_t forwards = 0;     // requests forwarded to shards
  std::uint64_t failovers = 0;    // shards declared dead
  std::uint64_t rehomes = 0;      // sessions resumed onto a new home
  std::uint64_t replays = 0;      // in-flight requests replayed after failover
  std::uint64_t synthesized = 0;  // applied-tell responses synthesized
  std::uint64_t redirects = 0;    // redirected responses sent to clients
  std::uint64_t promotions = 0;   // shadows promoted on primary death
  std::uint64_t standby_fallbacks = 0;  // promotions that fell back cold
  std::uint64_t replicated_ops = 0;     // op records acked by standbys
  std::uint64_t migrated_sessions = 0;  // sessions moved by ring growth
  std::uint64_t grows = 0;              // shards added to the ring
  std::uint64_t fences_delivered = 0;   // fence epochs pushed to stale shards
};

class Router {
 public:
  Router(std::vector<ShardSpec> shards, RouterOptions options = {},
         ShardClientOptions client_options = {});

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Dispatches one request. Never throws for request-level errors — they
  /// come back as {"ok":false,...} responses, exactly like
  /// service::handle_request.
  util::json::Value handle(const util::json::Value& request);

  /// Dispatches a window of requests, pipelining per shard: consecutive
  /// ask/tell/status runs targeting one shard cost one send/drain round
  /// while other shards compute concurrently. Per-session request order
  /// is preserved; responses come back in request order.
  std::vector<util::json::Value> handle_batch(
      const std::vector<util::json::Value>& requests);

  /// Grows the ring by one shard with live session migration: probes the
  /// new worker, transfers every session the grown ring would assign to
  /// it (chunked export -> import -> labeled-count verification -> durable
  /// checkpoint at the new home), then flips ring ownership atomically.
  /// The router is single-threaded, so in-flight requests are drained by
  /// construction — handle_batch flushes pipelined windows before any
  /// non-pipelinable op, and "grow" is not pipelinable. On any failure the
  /// growth aborts without touching ring membership: the half-added shard
  /// is declared down and sessions already copied to it fail over back
  /// onto the old ring owners from the checkpoints migration just wrote.
  /// Returns the protocol response ({"ok":true,"added":...,"migrated":N}
  /// or {"ok":false,...}).
  util::json::Value add_shard(ShardSpec spec);

  /// Wires the "grow" protocol op: the factory turns a shard name into a
  /// ShardSpec (spawning the worker process); add_shard does the rest.
  void set_grow_factory(
      std::function<ShardSpec(const std::string&)> factory) {
    grow_factory_ = std::move(factory);
  }

  // ---- introspection (tests, health) ----
  const HashRing& ring() const { return ring_; }
  const RouterStats& stats() const { return stats_; }
  std::size_t sessions_tracked() const { return records_.size(); }
  std::size_t parked_sessions() const;
  bool shard_up(const std::string& name) const;
  const StandbyTracker& standbys() const { return standbys_; }

 private:
  struct Shard {
    std::string name;
    std::string checkpoint_dir;
    std::unique_ptr<ShardClient> client;
    bool up = true;
    /// Sessions re-homed away from this shard after it died.
    std::size_t rehomed_away = 0;
  };

  /// What the router remembers per session — enough to route, to decide
  /// replay-vs-synthesize, and to enumerate a dead shard's tenants.
  struct SessionRecord {
    std::size_t home = 0;  // index into shards_
    /// Labels acknowledged to the client so far (from forwarded tell /
    /// create / resume responses).
    std::size_t labeled = 0;
    /// Home shard died and no survivor has resumed the session yet.
    bool parked = false;
    /// Status captured from the most recent re-home resume (what an
    /// in-flight tell is synthesized from).
    bool resumed_valid = false;
    std::size_t resumed_labeled = 0;
    std::size_t resumed_pending = 0;
    bool resumed_done = false;
    /// Acked ask requests since the session's last durable checkpoint.
    /// Asks mutate only in-memory worker state, so failover replays them
    /// after the resume — from the same state they first ran against,
    /// which regenerates bit-identical candidates (the set the client is
    /// still measuring). Cleared whenever a checkpoint lands; bounded by
    /// forcing a checkpoint past options.max_replay_log entries.
    std::vector<std::string> replay_log;
  };

  util::json::Value dispatch(const util::json::Value& request);
  util::json::Value handle_list();
  util::json::Value handle_health();
  util::json::Value handle_shutdown();

  /// Forward-with-failover loop for a session-scoped request (see the
  /// failover contract in the header comment).
  util::json::Value forward_session_request(const std::string& name,
                                            const util::json::Value& request);

  /// Resolves a request that was in flight when its shard died (failover
  /// already ran): synthesize the response if the lost request was a tell
  /// the dying worker provably applied and checkpointed, redirect when
  /// replay is disabled, replay on the new home otherwise.
  util::json::Value resolve_interrupted(const std::string& name,
                                        const util::json::Value& request);

  /// Updates the session table from a successful forwarded response and
  /// writes the post-create/post-resume baseline checkpoint.
  void bookkeep(const std::string& name, const std::string& op,
                std::size_t shard, const util::json::Value& request,
                const util::json::Value& response);

  /// Declares a shard dead: drops it from the ring and re-homes every
  /// session it hosted onto the sessions' new ring owners. Idempotent.
  void failover(std::size_t dead);

  /// Resumes one parked-or-dying session onto its current ring owner from
  /// its newest checkpoint (the cold path). Retires any shadow first —
  /// the target is usually the shard hosting it, and the resume would
  /// collide with the shadow's name. Returns true when the session is
  /// live again.
  bool rehome_session(const std::string& name, SessionRecord& record);

  // ---- warm-standby replication ----

  /// Starts replicating `name` onto shard `standby`: arms the tracker,
  /// queues the bootstrap records (resume from the primary's durable
  /// image over the shared checkpoint filesystem, a mirror checkpoint to
  /// the standby's own path, then the replay tail), and flushes
  /// immediately. The immediate flush is a soundness requirement, not an
  /// optimization: the primary's checkpoint file advances with every
  /// tell, so a lazily-applied bootstrap resume would load an image
  /// *newer* than the queued replay records assume and double-apply them.
  void arm_standby(const std::string& name, SessionRecord& record,
                   std::size_t standby);

  /// Queues one acked op record and flushes once the outbox reaches
  /// options.replication_lag_max.
  void replicate_op(const std::string& name, OpRecord record);

  /// Queues a checkpoint record targeting the standby's own path, so the
  /// shadow's durable horizon advances whenever the primary's does.
  /// Called before every replay-log clear that an explicit primary
  /// checkpoint triggers. No-op when the session has no healthy standby.
  void mirror_checkpoint(const std::string& name);

  /// Streams the pending outbox to the standby and verifies every ack.
  /// Returns true when the shadow is caught up to the ack horizon; false
  /// marks it stale (mismatch) or fails the standby over (death).
  bool flush_replication(const std::string& name);

  /// Warm failover: flushes, promotes the shadow in place, verifies the
  /// promoted labeled count against the ack horizon, and flips the
  /// session's home to the standby — keeping the replay log, whose asks
  /// live in the shadow's memory but may postdate its disk image exactly
  /// as they did the primary's. False = caller takes the cold path.
  bool promote_session(const std::string& name, SessionRecord& record);

  /// Closes `name`'s shadow on its host (best-effort) and drops tracking.
  void retire_standby(const std::string& name);

  /// Re-establishes the desired standby (ring successor) for every live
  /// session whose shadow is missing, stale, misplaced, or down.
  /// Idempotent; called after membership changes.
  void rearm_standbys();

  /// Moves one session to shard `to`: chunked export from its home,
  /// staged import + commit on `to`, labeled-count verification, durable
  /// checkpoint at the new home, then the ownership flip and a
  /// best-effort close of the old copy. The exported image is the live
  /// in-memory state (pending asks included), so the replay log is
  /// subsumed and cleared. Returns false (session unmoved) on any
  /// failure.
  bool migrate_session(const std::string& name, SessionRecord& record,
                       std::size_t to);

  /// Discards `name`'s staged import bytes on shard `to` (best-effort).
  void abort_import(const std::string& name, std::size_t to);

  /// Request-count-based health probe of every up shard (probe_every).
  void probe_all();

  /// Stamps a deterministic idempotency key onto a mutating client
  /// request that carries none (a copy; non-mutating requests pass
  /// through). Stamped once per logical client op, so failover replays
  /// and corrupted-reply resends all reuse the key — the wire-level
  /// exactly-once guarantee.
  util::json::Value stamp_idempotency(const util::json::Value& request);

  /// Delivers {"op":"fence","epoch":ring.epoch()} to every dead shard
  /// whose process is still reachable (a partition survivor), closing the
  /// split-brain window: once fenced, the stale primary rejects writes
  /// older than the membership change that replaced it. Unreachable
  /// shards stay pending and are retried by the next sweep.
  void sweep_fences();

  std::size_t shard_index(const std::string& name) const;
  std::size_t shard_of(const std::string& session) const;
  std::string checkpoint_path(std::size_t shard,
                              const std::string& session) const;
  util::json::Value redirected_response(const std::string& why);

  std::vector<Shard> shards_;
  HashRing ring_;
  RouterOptions options_;
  ShardClientOptions client_options_;
  std::map<std::string, SessionRecord> records_;
  RouterStats stats_;
  StandbyTracker standbys_;
  std::function<ShardSpec(const std::string&)> grow_factory_;
  /// Dead shards not yet confirmed fenced (indexes into shards_).
  std::vector<std::size_t> pending_fences_;
  std::uint64_t idem_counter_ = 0;
};

/// Reads JSON lines from `in` until EOF or a shutdown request, writing one
/// response line each — the pwu_router main loop, mirroring
/// service::run_serve_loop (same 1 MiB line cap, same blank-line and
/// parse-error behavior). Returns the number of requests handled.
std::size_t run_router_loop(std::istream& in, std::ostream& out,
                            Router& router);

}  // namespace pwu::router
