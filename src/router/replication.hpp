// Warm-standby replication bookkeeping for the router tier.
//
// The router keeps one StandbyState per session: which shard hosts the
// session's live shadow (its ring successor), whether that shadow is
// trustworthy, and the outbox of op records acked to the client but not
// yet streamed to the standby. Workers never talk to each other — stdio
// pipes fan out from the router only — so the router streams records on
// the primary's behalf, realizing the "primary streams to its standby"
// contract without a worker-to-worker channel.
//
// An OpRecord wraps the exact protocol request the primary acked, plus two
// verification hooks: the canonical digest of the primary's response and
// the labeled count it reported. The standby applies the record to its
// shadow session (determinism-by-re-execution: identical op sequence in,
// bit-identical state out) and echoes the inner response; any mismatch
// marks the standby stale, and a stale standby is never promoted — the
// router falls back to the PR-6 cold checkpoint path instead. Only ACKED
// ops are ever enqueued, which is what makes promotion exactly-once safe:
// the shadow's state always equals the client-visible ack horizon, so the
// request interrupted by the primary's death is always replayed, never
// synthesized (the shadow cannot have seen it).

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace pwu::router {

/// One acked client op queued for the session's standby.
struct OpRecord {
  /// The original protocol request line (re-parsed when wrapped).
  std::string request;
  /// Labeled count the primary reported in its ack; npos = don't check
  /// (asks and closes carry no labeled count).
  std::size_t expect_labeled = static_cast<std::size_t>(-1);
  /// Canonical digest of the primary's response (response_digest); 0 =
  /// don't check (records whose responses legitimately differ between
  /// primary and standby, e.g. checkpoint paths).
  std::uint64_t digest = 0;
};

/// Replication state of one session's standby.
struct StandbyState {
  /// Index of the shard hosting the shadow (into the router's shard list).
  std::size_t shard = 0;
  /// A shadow exists (or is being bootstrapped) on `shard`.
  bool valid = false;
  /// The shadow diverged (digest/labeled mismatch) or missed records; it
  /// must never be promoted until re-armed from scratch.
  bool stale = false;
  /// Records the standby has applied and acked.
  std::size_t acked_ops = 0;
  /// Acked-to-client, not-yet-streamed records (the replication lag).
  std::vector<OpRecord> outbox;
};

/// Session -> StandbyState map with the transitions the router needs.
class StandbyTracker {
 public:
  /// Starts fresh replication of `session` onto `shard` (drops any prior
  /// state, including staleness).
  void arm(const std::string& session, std::size_t shard);

  /// Queues one acked op record; no-op when the session is untracked.
  void enqueue(const std::string& session, OpRecord record);

  /// Removes and returns the pending outbox (empty when untracked).
  std::vector<OpRecord> take_outbox(const std::string& session);

  /// Credits `n` applied-and-verified records.
  void ack(const std::string& session, std::size_t n);

  void mark_stale(const std::string& session);
  void drop(const std::string& session);

  /// Marks every session whose standby lives on `shard` stale — the shard
  /// died or left, so its shadows are gone.
  void invalidate_shard(std::size_t shard);

  /// nullptr when untracked.
  const StandbyState* state(const std::string& session) const;

  /// Outbox depth (0 when untracked): how many acked ops the shadow has
  /// not seen yet.
  std::size_t lag(const std::string& session) const;

 private:
  std::map<std::string, StandbyState> sessions_;
};

/// Canonical digest of a protocol response: the "checkpoint" field (a
/// worker-local file path) is erased, then the dump is FNV-1a hashed.
/// Primary and standby answering an op identically — the bit-identical
/// re-execution invariant — is exactly digest equality.
std::uint64_t response_digest(const util::json::Value& response);

/// Wraps a record into the `replicate` protocol request the standby gets.
/// Throws on an unparseable record (cannot happen for records built from
/// requests the router already parsed).
util::json::Value make_replicate_request(const std::string& session,
                                         const OpRecord& record);

/// Verifies a standby's replicate ack against the record's hooks: outer ok,
/// inner applied ok, digest match (when armed), labeled match (when armed,
/// against "labeled" or "status".labeled of the applied response).
bool replicate_ack_matches(const OpRecord& record,
                           const util::json::Value& reply);

}  // namespace pwu::router
