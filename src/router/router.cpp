#include "router/router.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "service/protocol.hpp"
#include "util/logging.hpp"

namespace pwu::router {

namespace json = util::json;

namespace {

json::Value error_response(const std::string& message) {
  json::Object obj;
  obj.emplace("ok", json::Value(false));
  obj.emplace("error", json::Value(message));
  return json::Value(std::move(obj));
}

json::Value ok_response(json::Object fields) {
  fields.emplace("ok", json::Value(true));
  return json::Value(std::move(fields));
}

std::string required_op(const json::Value& request) {
  const json::Value& op = request.at("op");
  if (!op.is_string()) {
    throw std::invalid_argument("missing string field 'op'");
  }
  return op.as_string();
}

bool is_session_op(const std::string& op) {
  return op == "create" || op == "ask" || op == "tell" || op == "status" ||
         op == "close" || op == "checkpoint" || op == "resume";
}

/// A tell carrying a successful measurement — the one request kind whose
/// replay could double-apply (it appends to the training set exactly once
/// per label).
bool is_success_tell(const json::Value& request) {
  return request.string_or("op", "") == "tell" &&
         request.string_or("status", "ok") == "ok";
}

std::size_t status_count(const json::Value& status, const std::string& key) {
  return static_cast<std::size_t>(status.number_or(key, 0.0));
}

json::Value make_request(json::Object fields) {
  return json::Value(std::move(fields));
}

}  // namespace

Router::Router(std::vector<ShardSpec> shards, RouterOptions options,
               ShardClientOptions client_options)
    : ring_(options.vnodes), options_(options),
      client_options_(client_options) {
  if (shards.empty()) {
    throw std::invalid_argument("Router: at least one shard is required");
  }
  shards_.reserve(shards.size());
  for (ShardSpec& spec : shards) {
    if (spec.name.empty()) {
      throw std::invalid_argument("Router: shard names must be non-empty");
    }
    if (ring_.contains(spec.name)) {
      throw std::invalid_argument("Router: duplicate shard name '" +
                                  spec.name + "'");
    }
    Shard shard;
    shard.name = spec.name;
    shard.checkpoint_dir = std::move(spec.checkpoint_dir);
    if (options_.frame) {
      spec.transport = std::make_unique<service::FramedTransport>(
          std::move(spec.transport));
    }
    shard.client = std::make_unique<ShardClient>(
        spec.name, std::move(spec.transport), client_options);
    // Requests carry the ring epoch of the moment they hit the wire, so a
    // failover replay is restamped with the *new* epoch and never fences
    // itself.
    shard.client->set_epoch_provider([this] { return ring_.epoch(); });
    ring_.add(shard.name);
    shards_.push_back(std::move(shard));
  }
}

std::size_t Router::parked_sessions() const {
  std::size_t n = 0;
  for (const auto& [name, rec] : records_) n += rec.parked ? 1 : 0;
  return n;
}

bool Router::shard_up(const std::string& name) const {
  for (const Shard& shard : shards_) {
    if (shard.name == name) return shard.up;
  }
  return false;
}

std::size_t Router::shard_index(const std::string& name) const {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].name == name) return i;
  }
  throw std::logic_error("Router: '" + name + "' is not a known shard");
}

std::size_t Router::shard_of(const std::string& session) const {
  return shard_index(ring_.owner(session));
}

std::string Router::checkpoint_path(std::size_t shard,
                                    const std::string& session) const {
  // Same path the worker's auto-checkpoints use (<dir>/<session>.ckpt), so
  // the baseline write and every subsequent tell refresh one file and
  // failover always resumes the newest image.
  return shards_[shard].checkpoint_dir + "/" + session + ".ckpt";
}

json::Value Router::redirected_response(const std::string& why) {
  ++stats_.redirects;
  json::Object obj;
  obj.emplace("ok", json::Value(false));
  obj.emplace("error", json::Value(why));
  obj.emplace("redirected", json::Value(true));
  obj.emplace("retry_after_ms",
              json::Value(static_cast<double>(options_.retry_after_ms)));
  return json::Value(std::move(obj));
}

json::Value Router::handle(const json::Value& request) {
  ++stats_.requests;
  if (options_.probe_every != 0 &&
      stats_.requests % options_.probe_every == 0) {
    probe_all();
  }
  try {
    return dispatch(request);
  } catch (const std::exception& e) {
    return error_response(e.what());
  }
}

json::Value Router::dispatch(const json::Value& request) {
  const std::string op = required_op(request);
  if (op == "shutdown") return handle_shutdown();
  if (op == "list") return handle_list();
  if (op == "health") return handle_health();
  if (op == "grow") {
    if (grow_factory_ == nullptr) {
      return error_response("grow is not configured on this router");
    }
    const json::Value& shard = request.at("shard");
    if (!shard.is_string() || shard.as_string().empty()) {
      throw std::invalid_argument("missing string field 'shard'");
    }
    return add_shard(grow_factory_(shard.as_string()));
  }
  if (!is_session_op(op)) return error_response("unknown op '" + op + "'");
  const json::Value& session = request.at("session");
  if (!session.is_string()) {
    throw std::invalid_argument("missing string field 'session'");
  }
  return forward_session_request(session.as_string(),
                                 stamp_idempotency(request));
}

json::Value Router::stamp_idempotency(const json::Value& request) {
  if (!request.is_object() ||
      !service::is_mutating_op(request.string_or("op", "")) ||
      !request.string_or("idem", "").empty()) {
    return request;
  }
  json::Value stamped = request;
  ++idem_counter_;
  stamped.as_object()["idem"] = json::Value("rt#" + std::to_string(
                                                idem_counter_));
  return stamped;
}

json::Value Router::forward_session_request(const std::string& name,
                                            const json::Value& request) {
  auto it = records_.find(name);
  if (it != records_.end() && it->second.parked) {
    // A touch is the retry trigger for parked sessions: try to re-home
    // now, and only redirect the client when that still fails.
    if (!rehome_session(name, it->second)) {
      return redirected_response("session '" + name +
                                 "' is re-homing after shard failure");
    }
  }
  if (ring_.empty()) {
    return error_response("all shards are down");
  }
  const std::size_t target = (it != records_.end() && !it->second.parked)
                                 ? it->second.home
                                 : shard_of(name);
  try {
    json::Value response = shards_[target].client->call(request);
    ++stats_.forwards;
    bookkeep(name, required_op(request), target, request, response);
    return response;
  } catch (const service::TransportError&) {
    failover(target);
    return resolve_interrupted(name, request);
  }
}

json::Value Router::resolve_interrupted(const std::string& name,
                                        const json::Value& request) {
  // `request` was in flight — sent, possibly applied, but unanswered —
  // when its shard died; failover() has already run.
  const auto it = records_.find(name);
  if (it != records_.end() && !it->second.parked &&
      it->second.resumed_valid && is_success_tell(request) &&
      it->second.resumed_labeled >= it->second.labeled + 1) {
    // The dying worker applied and checkpointed this tell (workers
    // checkpoint before the inline refit, so crash-mid-fit lands here)
    // but the response was lost. Replaying would double-apply the label,
    // so the response is synthesized from the resumed status instead.
    // With pipelined same-session tells several may be unacked; each
    // synthesis advances by one, reconstructing the pending count that
    // label saw (later applied tells each consumed one pending
    // candidate).
    SessionRecord& rec = it->second;
    const std::size_t labeled = rec.labeled + 1;
    const std::size_t pending_then =
        rec.resumed_pending + (rec.resumed_labeled - labeled);
    json::Object fields;
    fields.emplace("ok", json::Value(true));
    fields.emplace("labeled", json::Value(labeled));
    fields.emplace("refit", json::Value(pending_then == 0));
    fields.emplace("done", json::Value(rec.resumed_done &&
                                       labeled == rec.resumed_labeled));
    rec.labeled = labeled;
    ++stats_.synthesized;
    return json::Value(std::move(fields));
  }
  if (!options_.replay_in_flight) {
    return redirected_response("shard died mid-request; session '" + name +
                               "' re-homed");
  }
  // Not (provably) applied: replay verbatim on the session's new home.
  // Safe for asks/status/creates (resume rolled the state back to before
  // them) and for the not-yet-applied tell. A further death during the
  // replay recurses, bounded by the shard count.
  ++stats_.replays;
  return forward_session_request(name, request);
}

void Router::bookkeep(const std::string& name, const std::string& op,
                      std::size_t shard, const json::Value& request,
                      const json::Value& response) {
  if (!response.bool_or("ok", false)) return;
  if (op == "create" || op == "resume") {
    // Baseline checkpoint before installing the record: a session becomes
    // the router's responsibility only once it has a durable image. If the
    // shard dies in between, the create/resume simply replays on the new
    // ring owner — nothing durable was lost.
    const json::Value ack = shards_[shard].client->call(
        make_request({{"op", json::Value("checkpoint")},
                      {"session", json::Value(name)},
                      {"path", json::Value(checkpoint_path(shard, name))}}));
    if (!ack.bool_or("ok", false)) {
      util::log_warn() << "router: baseline checkpoint for session '" << name
                       << "' on shard '" << shards_[shard].name
                       << "' failed: " << ack.string_or("error", "unknown");
    }
    SessionRecord rec;
    rec.home = shard;
    rec.labeled = status_count(response.at("status"), "labeled");
    records_[name] = std::move(rec);
    if (options_.standby) {
      // A prior shadow (from a close/resume drill) is obsolete; arm the
      // ring successor fresh from the baseline image just written.
      retire_standby(name);
      const auto order = ring_.owners(name, 2);
      if (order.size() >= 2) {
        arm_standby(name, records_[name], shard_index(order[1]));
      }
    }
    return;
  }
  const auto it = records_.find(name);
  if (it == records_.end()) return;
  SessionRecord& rec = it->second;
  if (op == "ask") {
    // Asks mutate only in-memory worker state (the outstanding-candidate
    // set); they become durable at the next tell checkpoint. Until then
    // the acked request is kept for replay so failover can reconstruct
    // exactly what the client holds.
    rec.replay_log.push_back(request.dump());
    if (options_.standby) {
      OpRecord record;
      record.request = request.dump();
      record.digest = response_digest(response);
      replicate_op(name, std::move(record));
    }
    if (rec.replay_log.size() > options_.max_replay_log) {
      shards_[shard].client->call(
          make_request({{"op", json::Value("checkpoint")},
                        {"session", json::Value(name)},
                        {"path", json::Value(checkpoint_path(shard, name))}}));
      mirror_checkpoint(name);
      rec.replay_log.clear();
    }
    return;
  }
  if (op == "tell") {
    rec.labeled = static_cast<std::size_t>(response.number_or(
        "labeled", static_cast<double>(rec.labeled)));
    if (options_.standby) {
      // The standby re-executes the tell and auto-checkpoints it to its
      // own directory exactly like the primary did, so the durable
      // horizons advance in lockstep without a mirror record.
      OpRecord record;
      record.request = request.dump();
      record.digest = response_digest(response);
      if (response.has("labeled")) record.expect_labeled = rec.labeled;
      replicate_op(name, std::move(record));
    }
    // A checkpoint path in the response means the worker persisted the
    // post-tell state — every ask before it is durable now.
    if (response.has("checkpoint")) rec.replay_log.clear();
    return;
  }
  if (op == "checkpoint") {
    // An explicit checkpoint to the home directory is as good as an
    // auto-checkpoint (same file failover reads). Mirror it before
    // clearing so the standby's durable horizon advances too.
    if (request.string_or("path", "") == checkpoint_path(shard, name)) {
      mirror_checkpoint(name);
      rec.replay_log.clear();
    }
    return;
  }
  if (op == "close") {
    retire_standby(name);
    records_.erase(records_.find(name));
    return;
  }
}

void Router::failover(std::size_t dead) {
  Shard& shard = shards_[dead];
  if (!shard.up) return;
  shard.up = false;
  shard.client->mark_dead();
  ring_.remove(shard.name);  // bumps the fencing epoch
  ++stats_.failovers;
  // A "death" observed through a partition leaves a live stale primary
  // behind; queue it for fencing so it can never apply a write from
  // before this membership change once the partition heals.
  pending_fences_.push_back(dead);
  // Shadows hosted *on* the dead shard are gone with it; shadows of
  // sessions homed there are exactly what failover promotes.
  standbys_.invalidate_shard(dead);
  util::log_warn() << "router: shard '" << shard.name
                   << "' is down; re-homing its sessions onto "
                   << ring_.size() << " survivor(s)";
  for (auto& [name, rec] : records_) {
    if (rec.home != dead || rec.parked) continue;
    rec.parked = true;
    rec.resumed_valid = false;
    if (promote_session(name, rec)) continue;
    if (options_.standby) ++stats_.standby_fallbacks;
    rehome_session(name, rec);
  }
  rearm_standbys();
}

bool Router::rehome_session(const std::string& name, SessionRecord& record) {
  // The cold-rehome target is usually the ring successor — the very shard
  // hosting this session's shadow, if one exists. Retire it first or the
  // resume below would collide with the shadow's name.
  retire_standby(name);
  // record.home is the shard the session last lived on; its checkpoint
  // directory holds the newest durable image (auto-checkpoints and the
  // router's baseline write share one path).
  const std::string source = checkpoint_path(record.home, name);
  for (;;) {
    if (ring_.empty()) {
      util::log_error() << "router: no shard left to re-home session '"
                        << name << "' onto";
      return false;
    }
    const std::size_t target = shard_of(name);
    try {
      const json::Value resumed = shards_[target].client->call(
          make_request({{"op", json::Value("resume")},
                        {"session", json::Value(name)},
                        {"path", json::Value(source)}}));
      if (!resumed.bool_or("ok", false)) {
        util::log_warn() << "router: re-homing session '" << name
                         << "' onto shard '" << shards_[target].name
                         << "' failed: "
                         << resumed.string_or("error", "unknown");
        return false;  // stays parked; the next touch retries
      }
      // Replay the asks acked since the last durable checkpoint: resuming
      // rolled the worker back to that checkpoint, and replaying the same
      // requests from the same state regenerates bit-identical candidates
      // — exactly the set the client is still measuring. One subtlety: the
      // dying worker may have checkpointed *past* the router's ack horizon
      // (a tell it applied but never answered — the crash-mid-fit case).
      // The resume status detects that: more labels than acked means the
      // image postdates every logged ask (they preceded the unacked tell
      // in session order), so replaying would double-consume candidates.
      const std::size_t labels_at_resume =
          status_count(resumed.at("status"), "labeled");
      if (labels_at_resume == record.labeled) {
        for (const std::string& line : record.replay_log) {
          const json::Value replayed =
              shards_[target].client->call(json::parse(line));
          if (!replayed.bool_or("ok", false)) {
            util::log_warn() << "router: ask replay for session '" << name
                             << "' failed: "
                             << replayed.string_or("error", "unknown");
          }
        }
      } else if (labels_at_resume < record.labeled) {
        // Should be impossible with checkpoint-every-tell workers: the
        // newest image lags labels the client was already told about.
        util::log_error() << "router: session '" << name << "' resumed at "
                          << labels_at_resume << " labels but " <<
            record.labeled << " were acknowledged — checkpoint lag?";
      }
      // Fresh status after the replays — the synthesize-vs-replay decision
      // for the in-flight request reads these counts.
      const json::Value status = shards_[target].client->call(
          make_request({{"op", json::Value("status")},
                        {"session", json::Value(name)}}));
      const json::Value& body = status.at("status");
      // Make the re-homed state (including replayed asks) durable at the
      // new home so a further failover starts from here.
      shards_[target].client->call(
          make_request({{"op", json::Value("checkpoint")},
                        {"session", json::Value(name)},
                        {"path", json::Value(checkpoint_path(target, name))}}));
      shards_[record.home].rehomed_away += 1;
      record.home = target;
      record.parked = false;
      record.resumed_valid = true;
      record.resumed_labeled = status_count(body, "labeled");
      record.resumed_pending = status_count(body, "pending");
      record.resumed_done = body.bool_or("done", false);
      record.replay_log.clear();
      ++stats_.rehomes;
      return true;
    } catch (const service::TransportError&) {
      // The chosen survivor died during the re-home. Cascade: declare it
      // down too (re-homing *its* sessions) and retry this session on the
      // next ring owner, still from the original source image — nothing
      // new became durable on the dead target.
      failover(target);
    }
  }
}

void Router::arm_standby(const std::string& name, SessionRecord& record,
                         std::size_t standby) {
  standbys_.arm(name, standby);
  {
    // Bootstrap from the primary's durable image over the shared
    // checkpoint filesystem. Checkpoint-every-tell workers keep that
    // image at the ack horizon's labeled count, so the expectation is
    // armed; asks past the last checkpoint follow as replay records.
    OpRecord record_resume;
    record_resume.request =
        make_request({{"op", json::Value("resume")},
                      {"session", json::Value(name)},
                      {"path", json::Value(
                                   checkpoint_path(record.home, name))}})
            .dump();
    record_resume.expect_labeled = record.labeled;
    standbys_.enqueue(name, std::move(record_resume));
  }
  {
    OpRecord record_ckpt;
    record_ckpt.request =
        make_request({{"op", json::Value("checkpoint")},
                      {"session", json::Value(name)},
                      {"path", json::Value(checkpoint_path(standby, name))}})
            .dump();
    standbys_.enqueue(name, std::move(record_ckpt));
  }
  for (const std::string& line : record.replay_log) {
    OpRecord record_ask;
    record_ask.request = line;
    standbys_.enqueue(name, std::move(record_ask));
  }
  // Flushing now (not lazily) is a soundness requirement: the primary's
  // checkpoint file advances with every tell, and a bootstrap resume
  // applied later would load an image newer than the queued replay
  // records assume — double-applying them into the shadow.
  flush_replication(name);
}

void Router::replicate_op(const std::string& name, OpRecord record) {
  standbys_.enqueue(name, std::move(record));
  if (standbys_.lag(name) >= options_.replication_lag_max) {
    flush_replication(name);
  }
}

void Router::mirror_checkpoint(const std::string& name) {
  if (!options_.standby) return;
  const StandbyState* st = standbys_.state(name);
  if (st == nullptr || !st->valid || st->stale) return;
  OpRecord record;
  record.request =
      make_request({{"op", json::Value("checkpoint")},
                    {"session", json::Value(name)},
                    {"path", json::Value(checkpoint_path(st->shard, name))}})
          .dump();
  replicate_op(name, std::move(record));
}

bool Router::flush_replication(const std::string& name) {
  const StandbyState* st = standbys_.state(name);
  if (st == nullptr || !st->valid || st->stale) return false;
  if (st->outbox.empty()) return true;
  const std::size_t standby = st->shard;
  if (!shards_[standby].up) {
    standbys_.mark_stale(name);
    return false;
  }
  const std::vector<OpRecord> records = standbys_.take_outbox(name);
  std::vector<json::Value> window;
  window.reserve(records.size());
  for (const OpRecord& record : records) {
    window.push_back(make_replicate_request(name, record));
  }
  ShardClient::PipelineResult result =
      shards_[standby].client->call_pipelined(window);
  if (result.died) {
    failover(standby);
    return false;
  }
  for (std::size_t k = 0; k < result.responses.size(); ++k) {
    if (!replicate_ack_matches(records[k], result.responses[k])) {
      // The shadow diverged (or refused a record): it can never be
      // promoted now. Cold failover remains available unchanged.
      standbys_.mark_stale(name);
      util::log_warn() << "router: standby for session '" << name
                       << "' on shard '" << shards_[standby].name
                       << "' went stale: "
                       << result.responses[k].string_or("error",
                                                        "ack mismatch");
      return false;
    }
  }
  standbys_.ack(name, records.size());
  stats_.replicated_ops += records.size();
  return true;
}

bool Router::promote_session(const std::string& name, SessionRecord& record) {
  if (!options_.standby) return false;
  const StandbyState* st = standbys_.state(name);
  if (st == nullptr || !st->valid || st->stale) return false;
  const std::size_t standby = st->shard;
  if (!shards_[standby].up) {
    standbys_.mark_stale(name);
    return false;
  }
  // Promotion is only sound when the shadow's host is the session's ring
  // owner under the shrunken ring — otherwise future requests would route
  // elsewhere and the promoted copy would be orphaned.
  if (ring_.empty() || shard_of(name) != standby) {
    standbys_.mark_stale(name);
    return false;
  }
  if (!flush_replication(name)) return false;
  try {
    const json::Value reply = shards_[standby].client->call(
        make_request({{"op", json::Value("promote")},
                      {"session", json::Value(name)}}));
    if (!reply.bool_or("ok", false)) {
      standbys_.mark_stale(name);
      util::log_warn() << "router: promoting session '" << name
                       << "' on shard '" << shards_[standby].name
                       << "' failed: " << reply.string_or("error", "unknown");
      return false;
    }
    const json::Value& body = reply.at("status");
    if (status_count(body, "labeled") != record.labeled) {
      // Only acked ops were ever streamed, so a promoted shadow whose
      // labeled count disagrees with the ack horizon missed or gained
      // records — never serve from it.
      standbys_.mark_stale(name);
      util::log_warn() << "router: session '" << name << "' promoted at "
                       << status_count(body, "labeled") << " labels but "
                       << record.labeled << " were acknowledged";
      return false;
    }
    record.home = standby;
    record.parked = false;
    record.resumed_valid = true;
    record.resumed_labeled = status_count(body, "labeled");
    record.resumed_pending = status_count(body, "pending");
    record.resumed_done = body.bool_or("done", false);
    // The replay log is KEPT: its asks live in the shadow's memory but may
    // postdate its disk image, exactly as they did the primary's. A later
    // cold failover of the promoted home replays them from the mirrored
    // checkpoints.
    standbys_.drop(name);
    ++stats_.promotions;
    return true;
  } catch (const service::TransportError&) {
    failover(standby);
    return false;
  }
}

void Router::retire_standby(const std::string& name) {
  const StandbyState* st = standbys_.state(name);
  if (st != nullptr && st->valid && st->shard < shards_.size() &&
      shards_[st->shard].up) {
    try {
      const json::Value closed = shards_[st->shard].client->call(
          make_request({{"op", json::Value("close")},
                        {"session", json::Value(name)}}));
      // A bootstrap that never applied leaves no shadow to close; the
      // structured "no session named" error is expected then.
      (void)closed;
    } catch (const service::TransportError&) {
      failover(st->shard);
    }
  }
  standbys_.drop(name);
}

void Router::rearm_standbys() {
  if (!options_.standby || ring_.size() < 2) return;
  for (auto& [name, rec] : records_) {
    if (rec.parked) continue;
    // Sessions whose home is down but not yet parked exist transiently
    // inside a cascading failover; arming them now would bootstrap from a
    // dead primary's (possibly replay-lagging) image — skip, the outer
    // failover loop reaches them next.
    if (!shards_[rec.home].up) continue;
    const std::vector<std::string> order = ring_.owners(name, 2);
    if (order.size() < 2) continue;
    const std::size_t desired = shard_index(order[1]);
    const StandbyState* st = standbys_.state(name);
    if (st != nullptr && st->valid && !st->stale && st->shard == desired &&
        shards_[desired].up) {
      continue;  // already the right, healthy standby
    }
    retire_standby(name);
    arm_standby(name, rec, desired);
  }
}

util::json::Value Router::add_shard(ShardSpec spec) {
  if (spec.name.empty()) {
    return error_response("grow: shard names must be non-empty");
  }
  for (const Shard& shard : shards_) {
    if (shard.name == spec.name) {
      return error_response("grow: duplicate shard name '" + spec.name + "'");
    }
  }
  if (spec.transport == nullptr) {
    return error_response("grow: shard '" + spec.name + "' has no transport");
  }
  Shard shard;
  shard.name = spec.name;
  shard.checkpoint_dir = std::move(spec.checkpoint_dir);
  if (options_.frame) {
    spec.transport = std::make_unique<service::FramedTransport>(
        std::move(spec.transport));
  }
  shard.client = std::make_unique<ShardClient>(
      spec.name, std::move(spec.transport), client_options_);
  shard.client->set_epoch_provider([this] { return ring_.epoch(); });
  // Probe before committing anything: a stillborn worker must not become
  // a shards_ entry (indices in records_ are forever).
  try {
    const json::Value probe =
        shard.client->call(make_request({{"op", json::Value("health")}}));
    if (!probe.bool_or("ok", false)) {
      return error_response("grow: shard '" + spec.name +
                            "' failed its health probe");
    }
  } catch (const service::TransportError&) {
    return error_response("grow: shard '" + spec.name + "' is unreachable");
  }
  shards_.push_back(std::move(shard));
  const std::size_t added = shards_.size() - 1;

  // Enumerate exactly the sessions the grown ring would hand to the new
  // shard — HashRing::add_node's minimal-remapping guarantee makes this
  // the complete migration set.
  HashRing grown = ring_;
  grown.add_node(shards_[added].name);
  std::vector<std::string> moving;
  for (const auto& [name, rec] : records_) {
    if (rec.parked) continue;  // parked sessions re-home by touch later
    if (grown.owner(name) == shards_[added].name) moving.push_back(name);
  }

  std::size_t migrated = 0;
  for (const std::string& name : moving) {
    SessionRecord& rec = records_[name];
    if (!migrate_session(name, rec, added)) {
      // All-or-nothing: the ring never learned the new shard, so
      // declaring it down re-homes any sessions already copied to it —
      // cold, from the checkpoints migration just wrote — back onto the
      // old owners. Client-visible placement is exactly the pre-grow one.
      util::log_warn() << "router: grow aborted; migration of session '"
                       << name << "' onto shard '" << shards_[added].name
                       << "' failed";
      failover(added);
      return error_response("grow aborted: migrating session '" + name +
                            "' failed");
    }
    ++migrated;
  }
  ring_.add_node(shards_[added].name);  // the atomic ownership flip
  ++stats_.grows;
  rearm_standbys();
  return ok_response({{"added", json::Value(shards_[added].name)},
                      {"migrated", json::Value(migrated)}});
}

bool Router::migrate_session(const std::string& name, SessionRecord& record,
                             std::size_t to) {
  const std::size_t from = record.home;
  // Chunked export -> staged import: the image is the live in-memory
  // state (pending asks included), so it subsumes the replay log, and the
  // chunking keeps every transfer line under the protocol's 1 MiB cap.
  std::size_t offset = 0;
  for (;;) {
    json::Value exported;
    try {
      exported = shards_[from].client->call(
          make_request({{"op", json::Value("export")},
                        {"session", json::Value(name)},
                        {"offset", json::Value(offset)}}));
    } catch (const service::TransportError&) {
      failover(from);
      return false;
    }
    if (!exported.bool_or("ok", false)) {
      util::log_warn() << "router: exporting session '" << name
                       << "' failed: "
                       << exported.string_or("error", "unknown");
      abort_import(name, to);
      return false;
    }
    const std::string& chunk = exported.at("chunk").as_string();
    try {
      const json::Value staged = shards_[to].client->call(
          make_request({{"op", json::Value("import")},
                        {"session", json::Value(name)},
                        {"chunk", json::Value(chunk)}}));
      if (!staged.bool_or("ok", false)) {
        abort_import(name, to);
        return false;
      }
    } catch (const service::TransportError&) {
      return false;  // caller declares `to` down
    }
    offset += chunk.size();
    if (exported.bool_or("eof", true)) break;
  }
  try {
    const json::Value committed = shards_[to].client->call(
        make_request({{"op", json::Value("import")},
                      {"session", json::Value(name)},
                      {"commit", json::Value(true)}}));
    if (!committed.bool_or("ok", false)) {
      util::log_warn() << "router: importing session '" << name
                       << "' failed: "
                       << committed.string_or("error", "unknown");
      return false;
    }
    const json::Value& body = committed.at("status");
    if (status_count(body, "labeled") != record.labeled) {
      util::log_warn() << "router: migrated session '" << name
                       << "' landed at " << status_count(body, "labeled")
                       << " labels but " << record.labeled
                       << " were acknowledged; discarding the copy";
      shards_[to].client->call(
          make_request({{"op", json::Value("close")},
                        {"session", json::Value(name)}}));
      return false;
    }
    // Durable at the new home before the flip: a death right after the
    // flip cold-rehomes from this image.
    shards_[to].client->call(
        make_request({{"op", json::Value("checkpoint")},
                      {"session", json::Value(name)},
                      {"path", json::Value(checkpoint_path(to, name))}}));
    retire_standby(name);
    record.home = to;
    record.parked = false;
    record.resumed_valid = true;
    record.resumed_labeled = status_count(body, "labeled");
    record.resumed_pending = status_count(body, "pending");
    record.resumed_done = body.bool_or("done", false);
    record.replay_log.clear();
    ++stats_.migrated_sessions;
  } catch (const service::TransportError&) {
    return false;  // caller declares `to` down
  }
  // Close the old copy last, best-effort: the home already flipped, so a
  // death here is an ordinary failover of a shard this session left.
  try {
    shards_[from].client->call(
        make_request({{"op", json::Value("close")},
                      {"session", json::Value(name)}}));
  } catch (const service::TransportError&) {
    failover(from);
  }
  return true;
}

void Router::abort_import(const std::string& name, std::size_t to) {
  try {
    shards_[to].client->call(make_request({{"op", json::Value("import")},
                                           {"session", json::Value(name)},
                                           {"abort", json::Value(true)}}));
  } catch (const service::TransportError&) {
    // The caller's abort path already treats `to` as suspect.
  }
}

void Router::probe_all() {
  const json::Value probe = make_request({{"op", json::Value("health")}});
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (!shards_[i].up) continue;
    try {
      shards_[i].client->call(probe);
    } catch (const service::TransportError&) {
      failover(i);
    }
  }
  sweep_fences();
}

void Router::sweep_fences() {
  if (pending_fences_.empty()) return;
  const json::Value fence = make_request(
      {{"op", json::Value("fence")},
       {"epoch", json::Value(static_cast<std::size_t>(ring_.epoch()))}});
  std::size_t kept = 0;
  for (const std::size_t dead : pending_fences_) {
    // probe() reaches through the dead-mark but never through a transport
    // that observed a real connection failure — a genuinely crashed
    // worker stays pending forever (harmless: it cannot write either).
    const std::optional<json::Value> reply =
        shards_[dead].client->probe(fence);
    if (reply.has_value() && reply->bool_or("ok", false)) {
      ++stats_.fences_delivered;
      util::log_warn() << "router: fenced stale shard '"
                       << shards_[dead].name << "' at epoch "
                       << ring_.epoch();
    } else {
      pending_fences_[kept] = dead;
      ++kept;
    }
  }
  pending_fences_.resize(kept);
}

json::Value Router::handle_list() {
  // A shard death mid-listing re-homes its sessions onto shards that may
  // already have been listed; restart the sweep so the merged view is a
  // consistent snapshot. Bounded: each restart removed a shard.
  for (;;) {
    json::Array sessions;
    bool restart = false;
    for (std::size_t i = 0; i < shards_.size() && !restart; ++i) {
      if (!shards_[i].up) continue;
      try {
        const json::Value response = shards_[i].client->call(
            make_request({{"op", json::Value("list")}}));
        if (response.bool_or("ok", false) &&
            response.at("sessions").is_array()) {
          for (const json::Value& s : response.at("sessions").as_array()) {
            sessions.push_back(s);
          }
        }
      } catch (const service::TransportError&) {
        failover(i);
        restart = true;
      }
    }
    if (!restart) {
      return ok_response({{"sessions", json::Value(std::move(sessions))}});
    }
  }
}

json::Value Router::handle_health() {
  // Settle membership first: dead-but-undetected workers fail over here,
  // so the report describes a stable fleet.
  probe_all();
  json::Array shard_arr;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = shards_[i];
    json::Object entry;
    entry.emplace("shard", json::Value(shard.name));
    entry.emplace("state", json::Value(shard.up ? "up" : "down"));
    std::size_t homed = 0;
    for (const auto& [name, rec] : records_) {
      homed += (rec.home == i && !rec.parked) ? 1 : 0;
    }
    entry.emplace("sessions", json::Value(homed));
    entry.emplace("rehomed_away", json::Value(shard.rehomed_away));
    entry.emplace("requests", json::Value(static_cast<std::size_t>(
                                  shard.client->requests())));
    entry.emplace("overload_retries",
                  json::Value(static_cast<std::size_t>(
                      shard.client->overload_retries())));
    entry.emplace("corrupt_replies",
                  json::Value(static_cast<std::size_t>(
                      shard.client->corrupt_replies())));
    if (shard.up) {
      try {
        const json::Value response = shard.client->call(
            make_request({{"op", json::Value("health")}}));
        if (response.bool_or("ok", false)) {
          entry.emplace("worker", response.at("health"));
        }
      } catch (const service::TransportError&) {
        // Raced a death between probe and report; the next health call
        // will show it down with its sessions re-homed.
        entry["state"] = json::Value("down");
      }
    }
    shard_arr.push_back(json::Value(std::move(entry)));
  }
  json::Object ring;
  ring.emplace("vnodes", json::Value(ring_.vnodes()));
  ring.emplace("epoch",
               json::Value(static_cast<std::size_t>(ring_.epoch())));
  json::Array members;
  for (const std::string& m : ring_.members()) members.emplace_back(m);
  ring.emplace("members", json::Value(std::move(members)));

  json::Object counters;
  counters.emplace("requests", json::Value(static_cast<std::size_t>(
                                   stats_.requests)));
  counters.emplace("forwards", json::Value(static_cast<std::size_t>(
                                   stats_.forwards)));
  counters.emplace("failovers", json::Value(static_cast<std::size_t>(
                                    stats_.failovers)));
  counters.emplace("rehomes", json::Value(static_cast<std::size_t>(
                                  stats_.rehomes)));
  counters.emplace("replays", json::Value(static_cast<std::size_t>(
                                  stats_.replays)));
  counters.emplace("synthesized", json::Value(static_cast<std::size_t>(
                                      stats_.synthesized)));
  counters.emplace("redirects", json::Value(static_cast<std::size_t>(
                                    stats_.redirects)));
  counters.emplace("promotions", json::Value(static_cast<std::size_t>(
                                     stats_.promotions)));
  counters.emplace("standby_fallbacks",
                   json::Value(static_cast<std::size_t>(
                       stats_.standby_fallbacks)));
  counters.emplace("replicated_ops", json::Value(static_cast<std::size_t>(
                                         stats_.replicated_ops)));
  counters.emplace("migrated_sessions",
                   json::Value(static_cast<std::size_t>(
                       stats_.migrated_sessions)));
  counters.emplace("grows", json::Value(static_cast<std::size_t>(
                                stats_.grows)));
  counters.emplace("fences_delivered",
                   json::Value(static_cast<std::size_t>(
                       stats_.fences_delivered)));
  counters.emplace("fences_pending", json::Value(pending_fences_.size()));

  // Aggregated replication view: per-session replay-log depth and
  // standby lag are the two numbers an operator watches to judge how warm
  // a failover would be right now.
  json::Object replication;
  replication.emplace("enabled", json::Value(options_.standby));
  replication.emplace("lag_max", json::Value(options_.replication_lag_max));
  replication.emplace("max_replay_log",
                      json::Value(options_.max_replay_log));
  json::Array repl_sessions;
  for (const auto& [name, rec] : records_) {
    json::Object entry;
    entry.emplace("session", json::Value(name));
    entry.emplace("home", json::Value(shards_[rec.home].name));
    entry.emplace("parked", json::Value(rec.parked));
    entry.emplace("replay_log_depth", json::Value(rec.replay_log.size()));
    const StandbyState* st = standbys_.state(name);
    entry.emplace("standby", json::Value(st != nullptr && st->valid
                                             ? shards_[st->shard].name
                                             : std::string()));
    entry.emplace("replication_lag", json::Value(standbys_.lag(name)));
    entry.emplace("stale", json::Value(st != nullptr && st->stale));
    repl_sessions.push_back(json::Value(std::move(entry)));
  }
  replication.emplace("sessions", json::Value(std::move(repl_sessions)));

  json::Object health;
  health.emplace("role", json::Value("router"));
  health.emplace("ring", json::Value(std::move(ring)));
  health.emplace("shards", json::Value(std::move(shard_arr)));
  health.emplace("sessions_tracked", json::Value(records_.size()));
  health.emplace("sessions_parked", json::Value(parked_sessions()));
  health.emplace("counters", json::Value(std::move(counters)));
  health.emplace("replication", json::Value(std::move(replication)));
  return ok_response({{"health", json::Value(std::move(health))}});
}

json::Value Router::handle_shutdown() {
  // Fan the graceful shutdown out: each worker drains refits and flushes
  // final checkpoints before acking. A worker that dies here is simply
  // marked down — no failover, the fleet is going away.
  const json::Value request = make_request({{"op", json::Value("shutdown")}});
  for (Shard& shard : shards_) {
    if (!shard.up) continue;
    try {
      shard.client->call(request);
    } catch (const service::TransportError&) {
      util::log_warn() << "router: shard '" << shard.name
                       << "' died during shutdown";
    }
    shard.up = false;
    shard.client->mark_dead();
    // Leave the ring too: a down shard that still owns keys would make a
    // late session request target it forever (failover is a no-op on an
    // already-down shard). With the ring empty, stragglers get the
    // structured "all shards are down" error instead.
    ring_.remove(shard.name);
  }
  return ok_response({{"shutdown", json::Value(true)}});
}

std::vector<json::Value> Router::handle_batch(
    const std::vector<json::Value>& requests_in) {
  // Stamp idempotency keys up front so the pipelined forward, any
  // corrupted-reply resend, and a failover replay of the same request all
  // carry the same key.
  std::vector<json::Value> requests;
  requests.reserve(requests_in.size());
  for (const json::Value& request : requests_in) {
    requests.push_back(stamp_idempotency(request));
  }
  std::vector<json::Value> responses(requests.size());
  // Per-shard windows accumulate until a request that cannot pipeline
  // (create/resume/close, admin ops, parked sessions, malformed) forces a
  // flush; that keeps per-session order intact while independent sessions
  // on one shard share a send/drain round.
  std::map<std::size_t, std::vector<std::size_t>> windows;

  const auto flush = [&]() {
    for (auto& [shard, indexes] : windows) {
      std::vector<json::Value> window;
      window.reserve(indexes.size());
      for (const std::size_t idx : indexes) window.push_back(requests[idx]);
      ShardClient::PipelineResult result =
          shards_[shard].client->call_pipelined(window);
      for (std::size_t k = 0; k < result.responses.size(); ++k) {
        const std::size_t idx = indexes[k];
        ++stats_.forwards;
        ++stats_.requests;
        bookkeep(requests[idx].at("session").as_string(),
                 requests[idx].string_or("op", ""), shard, requests[idx],
                 result.responses[k]);
        responses[idx] = std::move(result.responses[k]);
      }
      if (result.died) {
        failover(shard);
        // The unanswered tail was in flight when the shard died: resolve
        // each request in order — applied tells synthesize, the rest
        // replay on the sessions' new homes (or redirect while parked).
        for (std::size_t k = result.responses.size(); k < indexes.size();
             ++k) {
          const std::size_t idx = indexes[k];
          ++stats_.requests;
          responses[idx] = resolve_interrupted(
              requests[idx].at("session").as_string(), requests[idx]);
        }
      }
    }
    windows.clear();
  };

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const json::Value& request = requests[i];
    std::string op;
    bool pipelinable = false;
    try {
      op = required_op(request);
      if ((op == "ask" || op == "tell" || op == "status" ||
           op == "checkpoint") &&
          request.at("session").is_string()) {
        const std::string& name = request.at("session").as_string();
        const auto it = records_.find(name);
        const bool parked = it != records_.end() && it->second.parked;
        if (!parked && !ring_.empty()) {
          const std::size_t target =
              it != records_.end() ? it->second.home : shard_of(name);
          windows[target].push_back(i);
          pipelinable = true;
        }
      }
    } catch (const std::exception&) {
      pipelinable = false;
    }
    if (!pipelinable) {
      flush();
      responses[i] = handle(request);
    }
  }
  flush();
  return responses;
}

std::size_t run_router_loop(std::istream& in, std::ostream& out,
                            Router& router) {
  constexpr std::size_t kMaxRequestBytes = 1 << 20;
  constexpr std::size_t kMaxWindow = 256;
  std::size_t handled = 0;
  std::string line;
  bool shutdown = false;
  while (!shutdown && std::getline(in, line)) {
    // Greedy read: whatever further lines are already buffered join this
    // window, so clients that pipeline get shard-level pipelining for
    // free. The first line always blocks — no busy wait.
    std::vector<std::string> lines;
    lines.push_back(line);
    while (lines.size() < kMaxWindow && in.rdbuf()->in_avail() > 0 &&
           std::getline(in, line)) {
      lines.push_back(line);
    }

    std::vector<json::Value> batch;
    // Slot i of the window maps to batch position slots[i], or npos for
    // lines answered (or skipped) without forwarding.
    constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
    std::vector<std::size_t> slots(lines.size(), kNoSlot);
    std::vector<json::Value> immediate(lines.size());
    std::vector<bool> skip(lines.size(), false);
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const std::string& text = lines[i];
      if (text.find_first_not_of(" \t\r") == std::string::npos) {
        skip[i] = true;
        continue;
      }
      if (text.size() > kMaxRequestBytes) {
        immediate[i] = error_response("request line exceeds 1 MiB");
        continue;
      }
      try {
        slots[i] = batch.size();
        batch.push_back(json::parse(text));
      } catch (const std::exception& e) {
        slots[i] = kNoSlot;
        immediate[i] = error_response(e.what());
      }
    }

    const std::vector<json::Value> batch_responses =
        router.handle_batch(batch);
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (skip[i]) continue;
      const json::Value& response =
          slots[i] == kNoSlot ? immediate[i] : batch_responses[slots[i]];
      out << response.dump() << '\n';
      ++handled;
      const json::Value& flag = response.at("shutdown");
      if (flag.is_bool() && flag.as_bool()) {
        shutdown = true;
        break;
      }
    }
    out.flush();
  }
  return handled;
}

}  // namespace pwu::router
