#include "router/shard_client.hpp"

#include "router/hash_ring.hpp"

#include <chrono>
#include <thread>
#include <utility>

namespace pwu::router {

namespace json = util::json;

ShardClient::ShardClient(std::string name,
                         std::unique_ptr<service::Transport> transport,
                         ShardClientOptions options)
    : name_(std::move(name)),
      transport_(std::move(transport)),
      options_(options),
      jitter_(options.jitter_seed ^ fnv1a64(name_)) {}

namespace {

bool is_overloaded(const json::Value& response) {
  return response.is_object() && !response.bool_or("ok", true) &&
         response.bool_or("overloaded", false);
}

}  // namespace

json::Value ShardClient::call(const json::Value& request) {
  if (!alive()) {
    throw service::TransportError("shard '" + name_ + "' is down");
  }
  try {
    json::Value response = json::parse(transport_->request(request.dump()));
    ++requests_;
    if (is_overloaded(response)) {
      response = retry_overloaded(request, std::move(response));
    }
    return response;
  } catch (const service::TransportError&) {
    alive_ = false;
    throw;
  }
}

ShardClient::PipelineResult ShardClient::call_pipelined(
    const std::vector<json::Value>& requests) {
  PipelineResult result;
  if (!alive()) {
    result.died = true;
    result.error = "shard '" + name_ + "' is down";
    return result;
  }
  result.responses.reserve(requests.size());
  std::vector<std::size_t> overloaded;
  try {
    for (const json::Value& request : requests) {
      transport_->send(request.dump());
    }
    for (std::size_t i = 0; i < requests.size(); ++i) {
      json::Value response = json::parse(transport_->recv());
      ++requests_;
      if (is_overloaded(response)) overloaded.push_back(i);
      result.responses.push_back(std::move(response));
    }
    // Overloaded slots are re-requested only after the window drains — a
    // mid-drain resend would read a later slot's queued response as its
    // own. Admission control refused them before touching any state, so
    // the late resend is safe (and pipelined windows carry independent
    // sessions, so the reordering is invisible).
    for (const std::size_t i : overloaded) {
      result.responses[i] =
          retry_overloaded(requests[i], std::move(result.responses[i]));
    }
  } catch (const service::TransportError& e) {
    alive_ = false;
    result.died = true;
    result.error = e.what();
  }
  return result;
}

json::Value ShardClient::retry_overloaded(const json::Value& request,
                                          json::Value response) {
  for (int attempt = 0; attempt < options_.retries; ++attempt) {
    if (!is_overloaded(response)) return response;
    const double hint_ms = response.number_or(
        "retry_after_ms", static_cast<double>(options_.backoff_ms));
    const double wait_ms = hint_ms * (0.5 + jitter_.uniform());
    ++overload_retries_;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<long>(wait_ms)));
    response = json::parse(transport_->request(request.dump()));
    ++requests_;
  }
  return response;
}

}  // namespace pwu::router
