#include "router/shard_client.hpp"

#include "router/hash_ring.hpp"
#include "service/protocol.hpp"

#include <chrono>
#include <map>
#include <thread>
#include <utility>

namespace pwu::router {

namespace json = util::json;

namespace {

/// Unmatched replies tolerated per drain before declaring the connection
/// desynced beyond repair (duplicates and late retransmits are bounded by
/// the retry budget; an endless stray stream means a byzantine peer).
constexpr int kMaxStrayReplies = 64;

bool is_overloaded(const json::Value& response) {
  return response.is_object() && !response.bool_or("ok", true) &&
         response.bool_or("overloaded", false);
}

}  // namespace

ShardClient::ShardClient(std::string name,
                         std::unique_ptr<service::Transport> transport,
                         ShardClientOptions options)
    : name_(std::move(name)),
      transport_(std::move(transport)),
      options_(options),
      jitter_(options.jitter_seed ^ fnv1a64(name_)) {}

json::Value ShardClient::stamp(const json::Value& request,
                               std::string& rid_out) {
  json::Value stamped = request;
  rid_out.clear();
  if (!stamped.is_object()) return stamped;
  ++rid_counter_;
  rid_out = name_ + "#" + std::to_string(rid_counter_);
  json::Object& obj = stamped.as_object();
  obj["rid"] = json::Value(rid_out);
  if (epoch_provider_) {
    obj["epoch"] =
        json::Value(static_cast<std::size_t>(epoch_provider_()));
  }
  // Mutating requests that reach the wire without an idempotency key get
  // one here, so even router-internal traffic (resume, replicate,
  // migration imports) survives a corrupted-reply resend exactly-once.
  // Stamped once per logical call — every resend reuses the same key.
  if (service::is_mutating_op(stamped.string_or("op", "")) &&
      stamped.string_or("idem", "").empty() &&
      !stamped.string_or("session", "").empty()) {
    obj["idem"] = json::Value(name_ + "#i" + std::to_string(rid_counter_));
  }
  return stamped;
}

void ShardClient::frame_backoff() {
  const double wait_ms =
      static_cast<double>(options_.backoff_ms) * (0.5 + jitter_.uniform());
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<long>(wait_ms)));
}

json::Value ShardClient::roundtrip(const json::Value& request) {
  std::string rid;
  const json::Value stamped = stamp(request, rid);
  const std::string line = stamped.dump();
  int frame_retries = 0;
  for (;;) {
    try {
      transport_->send(line);
      for (int reads = 0; reads < kMaxStrayReplies; ++reads) {
        const std::string reply_line = transport_->recv();
        json::Value response;
        try {
          response = json::parse(reply_line);
        } catch (const std::exception&) {
          // Corruption on an unframed connection surfaces here instead of
          // as a FrameError; same recovery either way.
          throw service::FrameError("unparseable reply from '" + name_ +
                                    "'");
        }
        if (rid.empty()) return response;  // non-object request: legacy
        if (response.is_object() && response.string_or("rid", "") == rid) {
          response.as_object().erase("rid");
          return response;
        }
        // Stray: a duplicated reply, a late retransmit of an earlier
        // attempt, or a leftover from a previous drain — discard and keep
        // reading.
      }
      throw service::TransportError("shard '" + name_ +
                                    "': too many unmatched replies");
    } catch (const service::FrameError&) {
      ++corrupt_replies_;
      if (++frame_retries > options_.retries) {
        throw service::TransportError("shard '" + name_ +
                                      "': persistent reply corruption");
      }
      frame_backoff();
      // Loop resends the *same* line: same rid, same idempotency key — the
      // server replays the original reply if the lost one was applied.
    }
  }
}

json::Value ShardClient::call(const json::Value& request) {
  if (!alive()) {
    throw service::TransportError("shard '" + name_ + "' is down");
  }
  try {
    json::Value response = roundtrip(request);
    ++requests_;
    if (is_overloaded(response)) {
      response = retry_overloaded(request, std::move(response));
    }
    return response;
  } catch (const service::TransportError&) {
    alive_ = false;
    throw;
  }
}

std::optional<json::Value> ShardClient::probe(const json::Value& request) {
  // Reaching through the dead-mark is the point: a partition-declared
  // death leaves a live process behind, and the fence sweep must be able
  // to talk to it. But never touch a transport that observed a *real*
  // connection failure — sending there would respawn a fresh worker.
  if (!transport_->alive()) return std::nullopt;
  try {
    return roundtrip(request);
  } catch (const service::TransportError&) {
    return std::nullopt;
  }
}

ShardClient::PipelineResult ShardClient::call_pipelined(
    const std::vector<json::Value>& requests) {
  PipelineResult result;
  if (!alive()) {
    result.died = true;
    result.error = "shard '" + name_ + "' is down";
    return result;
  }
  const std::size_t n = requests.size();
  std::vector<std::string> lines(n);
  std::vector<json::Value> slots(n);
  std::vector<bool> answered(n, false);
  std::map<std::string, std::size_t> by_rid;
  for (std::size_t i = 0; i < n; ++i) {
    std::string rid;
    lines[i] = stamp(requests[i], rid).dump();
    if (!rid.empty()) by_rid.emplace(std::move(rid), i);
  }
  std::vector<std::size_t> overloaded;
  std::size_t pending = n;
  int frame_retries = 0;
  int strays = 0;
  const auto resend_unanswered = [&]() {
    ++corrupt_replies_;
    if (++frame_retries > options_.retries) {
      throw service::TransportError("shard '" + name_ +
                                    "': persistent reply corruption");
    }
    frame_backoff();
    // A corrupted or lost reply does not say whose it was; resend every
    // unanswered request. rid matching discards the resulting duplicates
    // and the servers' idempotency windows make re-execution safe.
    for (std::size_t i = 0; i < n; ++i) {
      if (!answered[i]) transport_->send(lines[i]);
    }
  };
  try {
    for (const std::string& line : lines) transport_->send(line);
    while (pending > 0) {
      std::string reply_line;
      try {
        reply_line = transport_->recv();
      } catch (const service::FrameError&) {
        resend_unanswered();
        continue;
      }
      json::Value response;
      try {
        response = json::parse(reply_line);
      } catch (const std::exception&) {
        resend_unanswered();
        continue;
      }
      const std::string rid =
          response.is_object() ? response.string_or("rid", "") : "";
      const auto match = by_rid.find(rid);
      if (match == by_rid.end() || answered[match->second]) {
        if (++strays > kMaxStrayReplies) {
          throw service::TransportError("shard '" + name_ +
                                        "': too many unmatched replies");
        }
        continue;
      }
      const std::size_t idx = match->second;
      response.as_object().erase("rid");
      ++requests_;
      answered[idx] = true;
      --pending;
      if (is_overloaded(response)) overloaded.push_back(idx);
      slots[idx] = std::move(response);
    }
    // Overloaded slots are re-requested only after the window drains — a
    // mid-drain resend would race the still-queued replies. Admission
    // control refused them before touching any state, so the late resend
    // is safe (and pipelined windows carry independent sessions, so the
    // reordering is invisible).
    for (const std::size_t i : overloaded) {
      slots[i] = retry_overloaded(requests[i], std::move(slots[i]));
    }
    result.responses = std::move(slots);
  } catch (const service::TransportError& e) {
    alive_ = false;
    result.died = true;
    result.error = e.what();
    // The answered *prefix* keeps the original partial-drain contract:
    // requests [responses.size(), n) are the router's to resolve through
    // failover (out-of-order answers past the first hole were applied,
    // and the failover path's synthesis/idempotency machinery re-derives
    // them rather than double-applying).
    for (std::size_t i = 0; i < n && answered[i]; ++i) {
      result.responses.push_back(std::move(slots[i]));
    }
  }
  return result;
}

json::Value ShardClient::retry_overloaded(const json::Value& request,
                                          json::Value response) {
  for (int attempt = 0; attempt < options_.retries; ++attempt) {
    if (!is_overloaded(response)) return response;
    const double hint_ms = response.number_or(
        "retry_after_ms", static_cast<double>(options_.backoff_ms));
    const double wait_ms = hint_ms * (0.5 + jitter_.uniform());
    ++overload_retries_;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<long>(wait_ms)));
    response = roundtrip(request);
    ++requests_;
  }
  return response;
}

}  // namespace pwu::router
