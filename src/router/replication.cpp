#include "router/replication.hpp"

#include <utility>

#include "router/hash_ring.hpp"

namespace pwu::router {

namespace json = util::json;

void StandbyTracker::arm(const std::string& session, std::size_t shard) {
  StandbyState state;
  state.shard = shard;
  state.valid = true;
  sessions_[session] = std::move(state);
}

void StandbyTracker::enqueue(const std::string& session, OpRecord record) {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return;
  it->second.outbox.push_back(std::move(record));
}

std::vector<OpRecord> StandbyTracker::take_outbox(const std::string& session) {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return {};
  std::vector<OpRecord> out = std::move(it->second.outbox);
  it->second.outbox.clear();
  return out;
}

void StandbyTracker::ack(const std::string& session, std::size_t n) {
  const auto it = sessions_.find(session);
  if (it != sessions_.end()) it->second.acked_ops += n;
}

void StandbyTracker::mark_stale(const std::string& session) {
  const auto it = sessions_.find(session);
  if (it != sessions_.end()) it->second.stale = true;
}

void StandbyTracker::drop(const std::string& session) {
  sessions_.erase(session);
}

void StandbyTracker::invalidate_shard(std::size_t shard) {
  for (auto& [session, state] : sessions_) {
    if (state.shard == shard) state.stale = true;
  }
}

const StandbyState* StandbyTracker::state(const std::string& session) const {
  const auto it = sessions_.find(session);
  return it == sessions_.end() ? nullptr : &it->second;
}

std::size_t StandbyTracker::lag(const std::string& session) const {
  const StandbyState* st = state(session);
  return st == nullptr ? 0 : st->outbox.size();
}

std::uint64_t response_digest(const json::Value& response) {
  json::Value canonical = response;
  if (canonical.is_object()) {
    // Checkpoint paths name worker-local files; primary and standby
    // legitimately differ there while agreeing on everything else.
    canonical.as_object().erase("checkpoint");
  }
  return fnv1a64(canonical.dump());
}

json::Value make_replicate_request(const std::string& session,
                                   const OpRecord& record) {
  json::Object obj;
  obj.emplace("op", json::Value("replicate"));
  obj.emplace("session", json::Value(session));
  obj.emplace("record", json::parse(record.request));
  return json::Value(std::move(obj));
}

namespace {

/// Labeled count of an applied response: tells report it top-level,
/// create/resume/promote report it inside "status".
std::size_t applied_labeled(const json::Value& applied) {
  if (applied.has("labeled")) {
    return static_cast<std::size_t>(applied.at("labeled").as_number());
  }
  if (applied.has("status")) {
    const json::Value& status = applied.at("status");
    if (status.is_object() && status.has("labeled")) {
      return static_cast<std::size_t>(status.at("labeled").as_number());
    }
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace

bool replicate_ack_matches(const OpRecord& record, const json::Value& reply) {
  if (!reply.bool_or("ok", false)) return false;
  if (!reply.has("applied")) return false;
  const json::Value& applied = reply.at("applied");
  if (!applied.bool_or("ok", false)) return false;
  if (record.digest != 0 && response_digest(applied) != record.digest) {
    return false;
  }
  if (record.expect_labeled != static_cast<std::size_t>(-1) &&
      applied_labeled(applied) != record.expect_labeled) {
    return false;
  }
  return true;
}

}  // namespace pwu::router
