#include "router/hash_ring.hpp"

#include <stdexcept>

namespace pwu::router {

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t h = 14695981039346656037ULL;  // FNV offset basis
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

namespace {

/// splitmix64 finalizer on top of FNV-1a: plain FNV of short, similar
/// strings ("shard-0#1", "shard-0#2", ...) leaves the high bits — the
/// bits that order the ring — poorly dispersed, which skews the spread.
/// The finalizer avalanches them; still a pure deterministic function.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t ring_point(const std::string& text) {
  return mix64(fnv1a64(text));
}

std::uint64_t vnode_hash(const std::string& shard, std::size_t vnode) {
  return ring_point(shard + "#" + std::to_string(vnode));
}

}  // namespace

HashRing::HashRing(std::size_t vnodes) : vnodes_(vnodes == 0 ? 1 : vnodes) {}

void HashRing::add(const std::string& shard) {
  const auto [member, inserted] = members_.emplace(shard, true);
  if (!inserted) return;
  const std::string* stable = &member->first;
  for (std::size_t v = 0; v < vnodes_; ++v) {
    ring_.emplace(std::make_pair(vnode_hash(shard, v), shard), stable);
  }
  ++epoch_;
}

bool HashRing::add_node(const std::string& shard) {
  if (members_.count(shard) != 0) return false;
  add(shard);
  return true;
}

bool HashRing::remove(const std::string& shard) {
  const auto member = members_.find(shard);
  if (member == members_.end()) return false;
  for (std::size_t v = 0; v < vnodes_; ++v) {
    ring_.erase(std::make_pair(vnode_hash(shard, v), shard));
  }
  members_.erase(member);
  ++epoch_;
  return true;
}

bool HashRing::contains(const std::string& shard) const {
  return members_.count(shard) != 0;
}

std::vector<std::string> HashRing::members() const {
  std::vector<std::string> out;
  out.reserve(members_.size());
  for (const auto& [name, _] : members_) out.push_back(name);
  return out;
}

const std::string& HashRing::owner(const std::string& key) const {
  if (ring_.empty()) {
    throw std::logic_error("HashRing::owner: the ring has no members");
  }
  // First point clockwise of the key's hash, wrapping past the top.
  auto it = ring_.lower_bound(std::make_pair(ring_point(key), std::string()));
  if (it == ring_.end()) it = ring_.begin();
  return *it->second;
}

std::vector<std::string> HashRing::owners(const std::string& key,
                                          std::size_t n) const {
  std::vector<std::string> out;
  if (ring_.empty() || n == 0) return out;
  auto it = ring_.lower_bound(std::make_pair(ring_point(key), std::string()));
  // Walk at most one full revolution, collecting distinct shards in
  // clockwise order.
  for (std::size_t steps = 0; steps < ring_.size() && out.size() < n;
       ++steps, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    const std::string& shard = *it->second;
    bool seen = false;
    for (const std::string& s : out) seen = seen || s == shard;
    if (!seen) out.push_back(shard);
  }
  return out;
}

}  // namespace pwu::router
