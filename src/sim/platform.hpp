// Machine descriptions for the performance simulators.
//
// These mirror the paper's Table IV plus the published microarchitectural
// parameters of the two CPUs (Haswell-EP E5-2680 v3 and Broadwell-EP
// E5-2680 v4), so the cache/network cost models have principled inputs.

#pragma once

#include <string>

namespace pwu::sim {

struct Platform {
  std::string name;
  std::string cpu;
  double freq_ghz = 2.5;
  int cores = 24;
  double memory_gib = 64.0;

  // Cache hierarchy (per core for L1/L2, shared L3).
  double l1_kib = 32.0;
  double l2_kib = 256.0;
  double l3_mib = 30.0;
  double l1_latency_cycles = 4.0;
  double l2_latency_cycles = 12.0;
  double l3_latency_cycles = 40.0;
  double memory_latency_ns = 90.0;
  double memory_bandwidth_gbs = 60.0;

  // Scalar double-precision FLOPs retired per cycle per core and the SIMD
  // width in doubles (AVX2 = 4).
  double flops_per_cycle = 2.0;
  double simd_width = 4.0;

  // Interconnect (0 bandwidth = no network, e.g. single-node Platform A use).
  double network_bandwidth_gbs = 0.0;
  double network_latency_us = 0.0;

  /// Seconds for `flops` scalar double-precision operations on one core.
  double scalar_flop_seconds(double flops) const;

  /// Cycle duration in seconds.
  double cycle_seconds() const;

  bool has_network() const { return network_bandwidth_gbs > 0.0; }
};

/// Platform A (Table IV): E5-2680 v3, 2.5 GHz, 24 cores, 64 GiB — the
/// single-node kernel platform.
Platform platform_a();

/// Platform B (Table IV): E5-2680 v4, 2.4 GHz, 28 cores, 128 GiB, 100 Gbps
/// Omni-Path — the parallel-application platform.
Platform platform_b();

}  // namespace pwu::sim
