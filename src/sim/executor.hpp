// Measurement protocol wrapper: runs a workload configuration the paper's
// way (k repetitions averaged) while accounting the *simulated wall-clock
// cost* of all runs — the quantity behind the paper's cumulative cost (CC).

#pragma once

#include <cstddef>

#include "space/configuration.hpp"
#include "util/rng.hpp"
#include "workloads/workload.hpp"

namespace pwu::sim {

class Executor {
 public:
  /// `repetitions`: runs averaged per measurement (paper: 35 for kernels,
  /// "several" for applications).
  explicit Executor(int repetitions = 1);

  /// Averaged measurement; accumulates the simulated cost of every
  /// individual run.
  double measure(const workloads::Workload& workload,
                 const space::Configuration& config, util::Rng& rng);

  /// Total simulated seconds spent executing programs so far.
  double total_cost_seconds() const { return total_cost_; }

  std::size_t total_runs() const { return total_runs_; }
  std::size_t total_measurements() const { return total_measurements_; }

  int repetitions() const { return repetitions_; }

  void reset();

 private:
  int repetitions_;
  double total_cost_ = 0.0;
  std::size_t total_runs_ = 0;
  std::size_t total_measurements_ = 0;
};

}  // namespace pwu::sim
