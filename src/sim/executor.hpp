// Measurement protocol wrapper: runs a workload configuration the paper's
// way (k repetitions averaged) while accounting the *simulated wall-clock
// cost* of all runs — the quantity behind the paper's cumulative cost (CC).
//
// With a FaultModel attached, measure() follows the failure semantics of a
// real autotuning harness: compile failures cost nothing but yield no
// label, a crash aborts the measurement after charging the partial run, and
// a hang is killed at the harness timeout — whose full duration is charged
// to cumulative cost, exactly how a real tuner pays for timeouts.

#pragma once

#include <cstddef>
#include <limits>

#include "sim/fault_model.hpp"
#include "space/configuration.hpp"
#include "util/rng.hpp"
#include "workloads/workload.hpp"

namespace pwu::sim {

/// Outcome of one (possibly multi-repetition) measurement.
struct MeasurementResult {
  FailureKind status = FailureKind::None;
  /// Averaged execution time; NaN unless status == None.
  double time = std::numeric_limits<double>::quiet_NaN();
  /// Simulated seconds charged for this measurement (completed runs,
  /// partial crashed run, or the harness timeout).
  double cost = 0.0;

  bool ok() const { return status == FailureKind::None; }
};

class Executor {
 public:
  /// `repetitions`: runs averaged per measurement (paper: 35 for kernels,
  /// "several" for applications). `faults` (optional, non-owning, must
  /// outlive the executor) injects the failure model; nullptr = all runs
  /// succeed.
  explicit Executor(int repetitions = 1, const FaultModel* faults = nullptr);

  /// One measurement under the failure model. Draw order per run is fixed
  /// (noise draw, then crash coin, then crash-fraction draw) so a seeded
  /// measurement stream replays bit-identically. Every charged second also
  /// accumulates into total_cost_seconds().
  MeasurementResult measure(const workloads::Workload& workload,
                            const space::Configuration& config,
                            util::Rng& rng);

  /// Total simulated seconds spent executing programs so far (successful
  /// runs, crashed partial runs, and timeouts alike).
  double total_cost_seconds() const { return total_cost_; }

  std::size_t total_runs() const { return total_runs_; }
  std::size_t total_measurements() const { return total_measurements_; }
  std::size_t failed_measurements() const { return failed_measurements_; }

  int repetitions() const { return repetitions_; }
  const FaultModel* fault_model() const { return faults_; }

  void reset();

 private:
  int repetitions_;
  const FaultModel* faults_ = nullptr;
  double total_cost_ = 0.0;
  std::size_t total_runs_ = 0;
  std::size_t total_measurements_ = 0;
  std::size_t failed_measurements_ = 0;
};

}  // namespace pwu::sim
