#include "sim/noise.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace pwu::sim {

double NoiseModel::apply(double seconds,
                         util::Rng& rng PWU_RNG_STREAM(measure_noise)) const {
  double value = seconds;
  if (lognormal_sigma > 0.0) {
    // Mean-one log-normal: exp(N(-sigma^2/2, sigma)).
    value *= rng.lognormal(-0.5 * lognormal_sigma * lognormal_sigma,
                           lognormal_sigma);
  }
  if (spike_probability > 0.0 && rng.bernoulli(spike_probability)) {
    value *= rng.uniform(1.0, spike_scale);
  }
  return value;
}

NoiseModel NoiseModel::none() {
  NoiseModel m;
  m.lognormal_sigma = 0.0;
  m.spike_probability = 0.0;
  return m;
}

}  // namespace pwu::sim
