#include "sim/platform.hpp"

namespace pwu::sim {

double Platform::cycle_seconds() const { return 1e-9 / freq_ghz; }

double Platform::scalar_flop_seconds(double flops) const {
  return flops / (flops_per_cycle * freq_ghz * 1e9);
}

Platform platform_a() {
  Platform p;
  p.name = "Platform A";
  p.cpu = "Intel Xeon E5-2680 v3 (Haswell-EP)";
  p.freq_ghz = 2.5;
  p.cores = 24;
  p.memory_gib = 64.0;
  p.l1_kib = 32.0;
  p.l2_kib = 256.0;
  p.l3_mib = 30.0;
  p.l1_latency_cycles = 4.0;
  p.l2_latency_cycles = 12.0;
  p.l3_latency_cycles = 42.0;
  p.memory_latency_ns = 90.0;
  p.memory_bandwidth_gbs = 68.0;
  p.flops_per_cycle = 2.0;
  p.simd_width = 4.0;  // AVX2 doubles
  return p;
}

Platform platform_b() {
  Platform p;
  p.name = "Platform B";
  p.cpu = "Intel Xeon E5-2680 v4 (Broadwell-EP)";
  p.freq_ghz = 2.4;
  p.cores = 28;
  p.memory_gib = 128.0;
  p.l1_kib = 32.0;
  p.l2_kib = 256.0;
  p.l3_mib = 35.0;
  p.l1_latency_cycles = 4.0;
  p.l2_latency_cycles = 12.0;
  p.l3_latency_cycles = 44.0;
  p.memory_latency_ns = 88.0;
  p.memory_bandwidth_gbs = 76.8;
  p.flops_per_cycle = 2.0;
  p.simd_width = 4.0;
  p.network_bandwidth_gbs = 100.0 / 8.0;  // 100 Gbps Omni-Path -> GB/s
  p.network_latency_us = 1.0;
  return p;
}

}  // namespace pwu::sim
