// Seeded, deterministic measurement-failure model.
//
// In the real system the paper describes, Orio-generated variants fail
// constantly: some configurations do not compile (too much unrolling, bad
// pragma combinations), some crash intermittently, and some run so slowly
// the harness kills them at a timeout — and the tuner still pays the
// timeout's wall-clock. The FaultModel reproduces these modes over the
// simulated workloads by hashing each configuration into [0,1) and carving
// that interval into failure regions:
//
//   [0, compile)                      -> CompileError   deterministic
//   [compile, compile+crash)          -> Crash region   transient, per-run p
//   [.., .. + timeout)                -> Timeout        deterministic hang
//   rest                              -> healthy
//
// The mapping is a pure function of (configuration, seed): the same config
// always lands in the same region, so deterministic failures are stable
// across retries and restarts, while crash-region *runs* flip a coin from
// the measurement rng — transient, exactly like flaky real hardware.

#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "space/configuration.hpp"

namespace pwu::sim {

/// Outcome taxonomy of one measurement attempt (None = success).
enum class FailureKind { None, CompileError, Crash, Timeout };

const char* to_string(FailureKind kind);

/// Parses to_string's names ("ok", "compile_error", "crash", "timeout");
/// nullopt otherwise — callers parsing untrusted input (protocol,
/// checkpoints) decide their own error path.
std::optional<FailureKind> failure_kind_from_string(const std::string& name);

struct FaultConfig {
  /// Fraction of the configuration space that fails to compile.
  double compile_fail_fraction = 0.04;
  /// Fraction of the space whose runs crash transiently...
  double crash_fraction = 0.04;
  /// ...each run with this probability.
  double crash_probability = 0.6;
  /// Fraction of the space that hangs until the harness timeout.
  double timeout_fraction = 0.02;
  /// Seconds charged to cumulative cost per timed-out measurement.
  double timeout_seconds = 30.0;
  /// Salt for the config -> region hash; different seeds move the regions.
  std::uint64_t seed = 0;
};

class FaultModel {
 public:
  /// All-healthy model (every region empty).
  FaultModel();
  /// Throws std::invalid_argument for negative fractions, fraction sums
  /// above 1, probabilities outside [0,1], or non-positive timeouts.
  explicit FaultModel(FaultConfig config);

  /// Deterministic region lookup — pure in (config, seed).
  FailureKind region(const space::Configuration& config) const;

  /// Position of `config` in [0,1) under this model's salt (for tests and
  /// diagnostics; region() is a partition of this value).
  double hash_unit(const space::Configuration& config) const;

  const FaultConfig& config() const { return config_; }

  /// True when every failure region is empty (the default model).
  bool all_healthy() const;

 private:
  FaultConfig config_;
};

}  // namespace pwu::sim
