#include "sim/executor.hpp"

#include <stdexcept>

#include "util/contracts.hpp"

namespace pwu::sim {

Executor::Executor(int repetitions, const FaultModel* faults)
    : repetitions_(repetitions), faults_(faults) {
  if (repetitions < 1) {
    throw std::invalid_argument("Executor: repetitions must be >= 1");
  }
}

MeasurementResult Executor::measure(const workloads::Workload& workload,
                                    const space::Configuration& config,
                                    util::Rng& rng PWU_RNG_STREAM(measure)) {
  MeasurementResult result;
  ++total_measurements_;
  const FailureKind region =
      faults_ != nullptr ? faults_->region(config) : FailureKind::None;

  if (region == FailureKind::CompileError) {
    // The variant never built: no runs happen, no execution time accrues.
    result.status = FailureKind::CompileError;
    ++failed_measurements_;
    return result;
  }
  if (region == FailureKind::Timeout) {
    // The first run hangs; the harness kills it at the timeout and charges
    // the full wait — one timeout per measurement, as a real harness would
    // not re-run a variant that just hung.
    result.status = FailureKind::Timeout;
    result.cost = faults_->config().timeout_seconds;
    total_cost_ += result.cost;
    ++total_runs_;
    ++failed_measurements_;
    return result;
  }

  double sum = 0.0;
  for (int r = 0; r < repetitions_; ++r) {
    const double t = workload.evaluate(config, rng);
    if (region == FailureKind::Crash &&
        rng.bernoulli(faults_->config().crash_probability)) {
      // The run died partway: charge the fraction it ran, abort the
      // measurement. The already-completed repetitions stay charged too.
      const double partial = rng.uniform() * t;
      result.status = FailureKind::Crash;
      result.cost += partial;
      total_cost_ += partial;
      ++total_runs_;
      ++failed_measurements_;
      return result;
    }
    sum += t;
    result.cost += t;
    total_cost_ += t;
    ++total_runs_;
  }
  result.time = sum / repetitions_;
  return result;
}

void Executor::reset() {
  total_cost_ = 0.0;
  total_runs_ = 0;
  total_measurements_ = 0;
  failed_measurements_ = 0;
}

}  // namespace pwu::sim
