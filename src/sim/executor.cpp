#include "sim/executor.hpp"

#include <stdexcept>

namespace pwu::sim {

Executor::Executor(int repetitions) : repetitions_(repetitions) {
  if (repetitions < 1) {
    throw std::invalid_argument("Executor: repetitions must be >= 1");
  }
}

double Executor::measure(const workloads::Workload& workload,
                         const space::Configuration& config, util::Rng& rng) {
  double sum = 0.0;
  for (int r = 0; r < repetitions_; ++r) {
    const double t = workload.evaluate(config, rng);
    sum += t;
    total_cost_ += t;
    ++total_runs_;
  }
  ++total_measurements_;
  return sum / repetitions_;
}

void Executor::reset() {
  total_cost_ = 0.0;
  total_runs_ = 0;
  total_measurements_ = 0;
}

}  // namespace pwu::sim
