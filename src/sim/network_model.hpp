// Alpha-beta communication model with contention, used by the kripke/hypre
// application simulators on Platform B.

#pragma once

#include <cstddef>

#include "sim/platform.hpp"

namespace pwu::sim {

class NetworkModel {
 public:
  explicit NetworkModel(const Platform& platform) : platform_(platform) {}

  /// Point-to-point message time: alpha + bytes / beta.
  double p2p_seconds(double bytes) const;

  /// Allreduce of `bytes` over `procs` ranks (recursive-doubling style:
  /// log2(p) rounds, each a p2p of the full payload).
  double allreduce_seconds(double bytes, std::size_t procs) const;

  /// One KBA sweep-plane pipeline fill+drain over a `px x py` process grid:
  /// the critical path crosses px + py - 2 stage boundaries.
  double sweep_pipeline_seconds(double stage_bytes, std::size_t px,
                                std::size_t py) const;

  /// Nearest-neighbour halo exchange per iteration (6 faces in 3D).
  double halo_exchange_seconds(double face_bytes) const;

  /// Contention multiplier: >1 when more ranks than physical cores share a
  /// node, and grows slowly with total rank count (switch congestion).
  double contention_factor(std::size_t procs) const;

  const Platform& platform() const { return platform_; }

 private:
  const Platform& platform_;
};

}  // namespace pwu::sim
