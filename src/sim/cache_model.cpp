#include "sim/cache_model.hpp"

#include <algorithm>
#include <cmath>

namespace pwu::sim {

double CacheModel::occupancy(double working_set_bytes,
                             double capacity_bytes) {
  // Logistic transition centered at the capacity boundary, two-octave wide:
  // returns ~0 when the working set is far below capacity (all hits) and ~1
  // far above (all spills to the next level).
  if (working_set_bytes <= 0.0) return 0.0;
  const double x = std::log2(working_set_bytes / capacity_bytes);
  return 1.0 / (1.0 + std::exp(-2.0 * x));
}

double CacheModel::access_seconds(double working_set_bytes) const {
  const Platform& p = platform_;
  const double cyc = p.cycle_seconds();
  const double l1 = p.l1_kib * 1024.0;
  const double l2 = p.l2_kib * 1024.0;
  const double l3 = p.l3_mib * 1024.0 * 1024.0;

  const double spill1 = occupancy(working_set_bytes, l1);
  const double spill2 = occupancy(working_set_bytes, l2);
  const double spill3 = occupancy(working_set_bytes, l3);

  // Fractions served per level: each level serves what spilled from the one
  // above but still fits here.
  const double f1 = 1.0 - spill1;
  const double f2 = spill1 * (1.0 - spill2);
  const double f3 = spill1 * spill2 * (1.0 - spill3);
  const double fm = spill1 * spill2 * spill3;

  // Per-8-byte-element streaming costs. Out-of-order execution and
  // hardware prefetch overlap a large share of each level's raw load
  // latency; the overlap factor shrinks with distance from the core
  // (L1 pipelines ~4 loads, memory prefetch hides ~8 line latencies but is
  // bounded below by the bandwidth limit).
  const double t1 = p.l1_latency_cycles * cyc / 4.0;
  const double t2 = p.l2_latency_cycles * cyc / 3.0;
  const double t3 = p.l3_latency_cycles * cyc / 2.5;
  const double tm = std::max(p.memory_latency_ns * 1e-9 / 8.0,
                             8.0 / (p.memory_bandwidth_gbs * 1e9));

  return f1 * t1 + f2 * t2 + f3 * t3 + fm * tm;
}

double CacheModel::hit_ratio(double working_set_bytes) const {
  const Platform& p = platform_;
  const double l3 = p.l3_mib * 1024.0 * 1024.0;
  return 1.0 - occupancy(working_set_bytes, l3);
}

double CacheModel::tiling_penalty(double working_set_bytes,
                                  double bytes_per_flop) const {
  const Platform& p = platform_;
  // Time per element = max(compute, memory); penalty is relative to the
  // pure-compute (L1-resident) case.
  const double compute = p.scalar_flop_seconds(1.0) *
                         std::max(1.0, 8.0 / std::max(bytes_per_flop, 1e-3));
  const double memory =
      access_seconds(working_set_bytes) * bytes_per_flop / 8.0;
  const double base =
      compute + access_seconds(0.5 * p.l1_kib * 1024.0) * bytes_per_flop / 8.0;
  return std::max(1.0, (compute + memory) / base);
}

}  // namespace pwu::sim
