#include "sim/fault_model.hpp"

#include <stdexcept>
#include <string>

namespace pwu::sim {

namespace {

/// splitmix64 finalizer — the same mixer util::Rng seeds through, giving
/// well-distributed region assignment even for near-identical level
/// vectors.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::None: return "ok";
    case FailureKind::CompileError: return "compile_error";
    case FailureKind::Crash: return "crash";
    case FailureKind::Timeout: return "timeout";
  }
  return "unknown";
}

std::optional<FailureKind> failure_kind_from_string(const std::string& name) {
  if (name == "ok") return FailureKind::None;
  if (name == "compile_error") return FailureKind::CompileError;
  if (name == "crash") return FailureKind::Crash;
  if (name == "timeout") return FailureKind::Timeout;
  return std::nullopt;
}

FaultModel::FaultModel() {
  config_.compile_fail_fraction = 0.0;
  config_.crash_fraction = 0.0;
  config_.timeout_fraction = 0.0;
}

FaultModel::FaultModel(FaultConfig config) : config_(config) {
  if (config_.compile_fail_fraction < 0.0 || config_.crash_fraction < 0.0 ||
      config_.timeout_fraction < 0.0) {
    throw std::invalid_argument("FaultModel: negative region fraction");
  }
  if (config_.compile_fail_fraction + config_.crash_fraction +
          config_.timeout_fraction >
      1.0) {
    throw std::invalid_argument("FaultModel: region fractions exceed 1");
  }
  if (config_.crash_probability < 0.0 || config_.crash_probability > 1.0) {
    throw std::invalid_argument("FaultModel: crash_probability outside [0,1]");
  }
  if (!(config_.timeout_seconds > 0.0)) {
    throw std::invalid_argument("FaultModel: timeout_seconds must be > 0");
  }
}

double FaultModel::hash_unit(const space::Configuration& config) const {
  std::uint64_t h = mix64(config_.seed ^ 0x5bf036258ed6c2d1ULL);
  for (std::uint32_t level : config.levels()) {
    h = mix64(h ^ level);
  }
  // Top 53 bits -> [0, 1), the same construction util::Rng::uniform uses.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

FailureKind FaultModel::region(const space::Configuration& config) const {
  if (all_healthy()) return FailureKind::None;
  const double u = hash_unit(config);
  double edge = config_.compile_fail_fraction;
  if (u < edge) return FailureKind::CompileError;
  edge += config_.crash_fraction;
  if (u < edge) return FailureKind::Crash;
  edge += config_.timeout_fraction;
  if (u < edge) return FailureKind::Timeout;
  return FailureKind::None;
}

bool FaultModel::all_healthy() const {
  return config_.compile_fail_fraction == 0.0 &&
         config_.crash_fraction == 0.0 && config_.timeout_fraction == 0.0;
}

}  // namespace pwu::sim
