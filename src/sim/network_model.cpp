#include "sim/network_model.hpp"

#include <algorithm>
#include <cmath>

namespace pwu::sim {

double NetworkModel::p2p_seconds(double bytes) const {
  const Platform& p = platform_;
  if (!p.has_network()) {
    // Intra-node: model as memcpy through shared memory.
    return 0.3e-6 + bytes / (0.5 * p.memory_bandwidth_gbs * 1e9);
  }
  return p.network_latency_us * 1e-6 + bytes / (p.network_bandwidth_gbs * 1e9);
}

double NetworkModel::allreduce_seconds(double bytes,
                                       std::size_t procs) const {
  if (procs <= 1) return 0.0;
  const double rounds = std::ceil(std::log2(static_cast<double>(procs)));
  return rounds * p2p_seconds(bytes) * contention_factor(procs);
}

double NetworkModel::sweep_pipeline_seconds(double stage_bytes, std::size_t px,
                                            std::size_t py) const {
  const std::size_t stages = (px > 0 ? px - 1 : 0) + (py > 0 ? py - 1 : 0);
  if (stages == 0) return 0.0;
  return static_cast<double>(stages) * p2p_seconds(stage_bytes) *
         contention_factor(px * py);
}

double NetworkModel::halo_exchange_seconds(double face_bytes) const {
  return 6.0 * p2p_seconds(face_bytes);
}

double NetworkModel::contention_factor(std::size_t procs) const {
  const Platform& p = platform_;
  double factor = 1.0;
  const auto cores = static_cast<std::size_t>(p.cores);
  if (procs > cores) {
    // Oversubscribed node: ranks time-share cores and NIC injection.
    factor *= 1.0 + 0.5 * (static_cast<double>(procs) /
                               static_cast<double>(cores) -
                           1.0);
  }
  // Mild switch-level congestion growth.
  factor *= 1.0 + 0.02 * std::log2(std::max<std::size_t>(procs, 1));
  return factor;
}

}  // namespace pwu::sim
