// Measurement noise model.
//
// Real kernel timings carry (a) multiplicative log-normal jitter from
// frequency scaling, TLB/cache state, and timer resolution, and (b) rare
// large spikes from OS interference (the "system noise" the paper suppresses
// with 35 repetitions). Both are reproduced here.

#pragma once

#include "util/rng.hpp"

namespace pwu::sim {

struct NoiseModel {
  /// Sigma of the log-normal multiplicative jitter (0.03 ~ 3% CoV).
  double lognormal_sigma = 0.03;
  /// Probability of an interference spike on a single run.
  double spike_probability = 0.01;
  /// Multiplier applied on a spike (uniform in [1, spike_scale]).
  double spike_scale = 1.6;

  /// One noisy observation of a true duration `seconds`.
  double apply(double seconds, util::Rng& rng) const;

  /// A noise model with everything disabled (for deterministic tests).
  static NoiseModel none();
};

}  // namespace pwu::sim
